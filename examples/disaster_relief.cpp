/// Disaster-relief scenario: the kind of disrupted network the DTN
/// literature motivates. A sparse field team (few nodes, short radios, a
/// long narrow strip) must move status reports back to a command post.
/// Connectivity is intermittent by construction; messages advance through
/// store-carry-forward. The example compares GLR against epidemic and
/// direct delivery under a tight per-node storage budget — the regime the
/// paper argues GLR is built for (Sec. 3.6).

#include <cstdio>

#include "experiment/scenario.hpp"

namespace {

void report(const char* name, const glr::experiment::ScenarioResult& r) {
  std::printf(
      "  %-16s delivery %5.1f%%   latency %6.1f s   hops %4.1f   peak "
      "storage max %3.0f / avg %5.1f\n",
      name, 100.0 * r.deliveryRatio, r.avgLatency, r.avgHops,
      r.maxPeakStorage, r.avgPeakStorage);
}

}  // namespace

int main() {
  using namespace glr::experiment;

  // A 3 km x 200 m corridor (a valley road), 30 relief workers/vehicles,
  // 80 m radios: partitions are the norm, not the exception.
  ScenarioConfig cfg;
  cfg.numNodes = 30;
  cfg.trafficNodes = 25;
  cfg.areaWidth = 3000.0;
  cfg.areaHeight = 200.0;
  cfg.radius = 80.0;
  cfg.speedMin = 0.5;
  cfg.speedMax = 15.0;
  cfg.numMessages = 150;
  cfg.simTime = 1500.0;
  cfg.storageLimit = 40;  // constrained field devices
  cfg.seed = 2026;

  std::printf(
      "Disaster-relief corridor: %d nodes, %.0fx%.0f m, %.0f m radios,\n"
      "%d reports, storage limit %zu messages/node, %.0f s horizon.\n\n",
      cfg.numNodes, cfg.areaWidth, cfg.areaHeight, cfg.radius,
      cfg.numMessages, cfg.storageLimit, cfg.simTime);

  cfg.protocol = Protocol::kGlr;
  report("GLR", runScenario(cfg));
  cfg.protocol = Protocol::kEpidemic;
  report("Epidemic", runScenario(cfg));
  cfg.protocol = Protocol::kSprayAndWait;
  report("Spray-and-wait", runScenario(cfg));
  cfg.protocol = Protocol::kDirectDelivery;
  report("Direct delivery", runScenario(cfg));

  std::printf(
      "\nReading guide: with tight buffers epidemic pays for storing\n"
      "everything everywhere; GLR's directed copies keep buffers small while\n"
      "still exploiting mobility. Direct delivery bounds the overhead from\n"
      "below and the delay from above.\n");
  return 0;
}
