/// Village-bus DTN (DakNet-style, cited by the paper as motivation): mostly
/// static village kiosks plus a few mobile couriers ("buses") that shuttle
/// between them. Demonstrates using the library's World/Agent API directly
/// — custom mobility models, hand-placed nodes, per-node agents — rather
/// than the packaged scenario runner.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/glr_agent.hpp"
#include "dtn/metrics.hpp"
#include "mobility/mobility.hpp"
#include "net/world.hpp"
#include "phy/propagation.hpp"
#include "sim/rng.hpp"

namespace {

using glr::geom::Point2;

/// A courier that ping-pongs along a fixed route at constant speed.
class ShuttleMobility final : public glr::mobility::MobilityModel {
 public:
  ShuttleMobility(Point2 a, Point2 b, double speed, double phase)
      : a_(a), b_(b), speed_(speed), phase_(phase) {}

  Point2 positionAt(glr::sim::SimTime t) override {
    const double leg = glr::geom::dist(a_, b_) / speed_;
    double u = std::fmod((t + phase_) / leg, 2.0);
    if (u > 1.0) u = 2.0 - u;  // return trip
    return a_ + (b_ - a_) * u;
  }

 private:
  Point2 a_, b_;
  double speed_;
  double phase_;
};

}  // namespace

int main() {
  glr::sim::Simulator sim;
  glr::phy::TwoRayGround propagation;
  glr::phy::RadioParams radio;
  radio.nominalRange = 120.0;
  glr::net::World world{sim, propagation, radio, glr::mac::MacParams{}};
  glr::dtn::MetricsCollector metrics;

  // Five villages along a 2.4 km road, far beyond radio range of each other.
  std::vector<Point2> villages{
      {100, 100}, {700, 140}, {1300, 90}, {1900, 150}, {2400, 100}};
  for (const Point2 v : villages) {
    world.addNode(std::make_unique<glr::mobility::StaticMobility>(v),
                  glr::sim::Rng{10 + static_cast<std::uint64_t>(v.x)});
  }
  // Two shuttles covering overlapping halves of the road.
  world.addNode(std::make_unique<ShuttleMobility>(Point2{100, 120},
                                                  Point2{1300, 120}, 8.0, 0.0),
                glr::sim::Rng{1001});
  world.addNode(std::make_unique<ShuttleMobility>(
                    Point2{1300, 120}, Point2{2400, 120}, 8.0, 60.0),
                glr::sim::Rng{1002});

  glr::core::GlrParams params;
  params.network.numNodes = world.numNodes();
  params.network.radius = radio.nominalRange;
  params.network.areaWidth = 2500.0;
  params.network.areaHeight = 300.0;
  // The decision rule sees a hopeless static topology; the couriers are the
  // transport. Three copies exploit both shuttles plus kiosk relays.
  params.copiesOverride = 3;

  std::vector<glr::core::GlrAgent*> agents;
  for (std::size_t i = 0; i < world.numNodes(); ++i) {
    auto agent = std::make_unique<glr::core::GlrAgent>(
        world, static_cast<int>(i), params, &metrics,
        glr::sim::Rng{500 + i});
    agents.push_back(agent.get());
    world.setAgent(static_cast<int>(i), std::move(agent));
  }
  world.start();

  // Village 0 sends hourly-ish reports to the district office at village 4,
  // which also answers back.
  for (int k = 0; k < 10; ++k) {
    sim.schedule(30.0 + 120.0 * k, [&agents] { agents[0]->originate(4); });
    sim.schedule(90.0 + 120.0 * k, [&agents] { agents[4]->originate(0); });
  }
  sim.run(3600.0);

  std::printf("Village-bus DTN after %.0f s:\n", sim.now());
  std::printf("  messages created  : %zu\n", metrics.createdCount());
  std::printf("  delivered         : %zu (%.0f%%)\n", metrics.deliveredCount(),
              100.0 * metrics.deliveryRatio());
  std::printf("  avg latency       : %.0f s (bus-bound, as expected)\n",
              metrics.avgLatency());
  std::printf("  avg hops          : %.1f\n", metrics.avgHops());
  std::printf(
      "\nNo end-to-end path ever exists here: deliveries ride the shuttles'\n"
      "store-carry-forward custody chain, exactly the DTN regime the paper\n"
      "targets.\n");
  return 0;
}
