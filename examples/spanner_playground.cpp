/// Spanner playground: the geometric machinery of GLR on a static network,
/// without any simulation. Reproduces the paper's Figure 2 idea: build the
/// LDTG planar spanner over a random deployment, extract the MaxDSTD /
/// MinDSTD / MidDSTD routes between a source and a destination, print them
/// side by side, and report spanner quality (planarity, stretch).
///
/// Usage: spanner_playground [seed] [nodes] [radius]

#include <cstdio>
#include <cstdlib>

#include "core/trees.hpp"
#include "geometry/delaunay.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "spanner/connectivity.hpp"
#include "spanner/ldtg.hpp"
#include "spanner/udg.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const int n = argc > 2 ? std::atoi(argv[2]) : 50;
  const double radius = argc > 3 ? std::atof(argv[3]) : 250.0;
  const double side = 1000.0;

  glr::sim::Rng rng{seed};
  std::vector<glr::geom::Point2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, side), rng.uniform(0, side)});
  }

  const auto udg = glr::spanner::buildUnitDiskGraph(pts, radius);
  const auto ldtg = glr::spanner::buildLdtg(pts, radius, 2);

  std::printf("Deployment: %d nodes in %.0f x %.0f, radius %.0f m (seed %llu)\n",
              n, side, side, radius,
              static_cast<unsigned long long>(seed));
  std::printf("UDG : %zu edges, %zu components\n", udg.numEdges(),
              glr::graph::componentCount(udg));
  std::printf("LDTG: %zu edges (%.0f%% of UDG), %zu components\n",
              ldtg.numEdges(),
              udg.numEdges() ? 100.0 * ldtg.numEdges() / udg.numEdges() : 0.0,
              glr::graph::componentCount(ldtg));
  std::printf("LDTG planar embedding: %s\n",
              glr::graph::isPlanarEmbedding(ldtg, pts) ? "yes" : "NO (bug!)");

  if (glr::graph::isConnected(udg)) {
    double worst = 1.0;
    for (int s = 0; s < n; ++s) {
      const auto du = glr::graph::dijkstra(udg, pts, s);
      const auto dl = glr::graph::dijkstra(ldtg, pts, s);
      for (int t = 0; t < n; ++t) {
        if (du[t] > 0.0) worst = std::max(worst, dl[t] / du[t]);
      }
    }
    std::printf("LDTG stretch vs UDG shortest paths: %.3f\n", worst);
  }

  const double thr =
      glr::spanner::connectivityThresholdRadius(n, 10.0, side, side);
  std::printf("Georgiou threshold: %.1f m -> Algorithm 1 sends %s\n", thr,
              radius >= thr ? "1 copy" : "3 copies");

  // Figure-2 style tree extraction between the two most distant nodes.
  int src = 0, dst = 1;
  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double d = glr::geom::dist(pts[i], pts[j]);
      if (d > best) {
        best = d;
        src = i;
        dst = j;
      }
    }
  }
  std::printf("\nDSTD routes from node %d to node %d (distance %.0f m):\n",
              src, dst, best);
  const struct {
    glr::dtn::TreeFlag flag;
    const char* name;
  } kinds[] = {{glr::dtn::TreeFlag::kMax, "MaxDSTD"},
               {glr::dtn::TreeFlag::kMin, "MinDSTD"},
               {glr::dtn::TreeFlag::kMid, "MidDSTD"}};
  for (const auto& k : kinds) {
    const auto path =
        glr::core::extractPath(ldtg, pts, src, pts[dst], k.flag);
    std::printf("  %s (%2zu hops):", k.name, path.size() - 1);
    for (const int v : path) std::printf(" %d", v);
    std::printf("%s\n", path.back() == dst ? "  [reached]" : "  [stalled]");
  }
  std::printf(
      "\nLike the paper's Figure 2, the three rules trace different routes;\n"
      "in the DTN protocol each message copy follows one of them.\n");
  return 0;
}
