/// Quickstart: the smallest end-to-end GLR simulation.
///
/// Builds the paper's default scenario (50 nodes, 1500 m x 300 m, random
/// waypoint, 100 m radio, simplified 802.11 MAC), injects 100 messages and
/// prints the headline delivery metrics. Start here to see the public API:
/// everything below is four calls — configure, run, read results.

#include <cstdio>

#include "experiment/scenario.hpp"

int main() {
  using namespace glr::experiment;

  ScenarioConfig cfg;                 // paper Table 1 defaults
  cfg.protocol = Protocol::kGlr;      // the paper's protocol
  cfg.radius = 100.0;                 // sparse regime: Algorithm 1 -> 3 copies
  cfg.numMessages = 100;
  cfg.simTime = 600.0;
  cfg.seed = 7;

  std::printf("Running GLR: %d nodes, %.0f m radius, %d messages, %.0f s...\n",
              cfg.numNodes, cfg.radius, cfg.numMessages, cfg.simTime);
  const ScenarioResult r = runScenario(cfg);

  std::printf("\nResults\n");
  std::printf("  delivery ratio : %.1f%% (%zu of %zu)\n",
              100.0 * r.deliveryRatio, r.delivered, r.created);
  std::printf("  avg latency    : %.1f s\n", r.avgLatency);
  std::printf("  avg hops       : %.1f\n", r.avgHops);
  std::printf("  peak storage   : max %.0f / avg %.1f messages per node\n",
              r.maxPeakStorage, r.avgPeakStorage);
  std::printf("  MAC data tx    : %llu (collisions: %llu)\n",
              static_cast<unsigned long long>(r.macDataTx),
              static_cast<unsigned long long>(r.collisions));
  std::printf("  simulated %llu events in %.2f s wall clock\n",
              static_cast<unsigned long long>(r.eventsExecuted),
              r.wallSeconds);

  // The same config with Protocol::kEpidemic runs the paper's baseline.
  cfg.protocol = Protocol::kEpidemic;
  const ScenarioResult e = runScenario(cfg);
  std::printf(
      "\nEpidemic baseline on the same topology/traffic: ratio %.1f%%, "
      "latency %.1f s, avg peak storage %.1f\n",
      100.0 * e.deliveryRatio, e.avgLatency, e.avgPeakStorage);
  return 0;
}
