/// Table 6 reproduction: hop counts vs radius, GLR vs epidemic.
/// Paper rows (radius: GLR / epidemic):
///   250: 3.40 / 3.19   200: 4.10 / 3.64   150: 5.23 / 4.58
///   100: 8.75 / 4.92    50: 17.32 / 3.92
/// GLR re-checks routes as nodes move, so its copies travel more hops; the
/// gap widens sharply as the network gets sparser.

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Table 6: hop counts vs radius (GLR vs epidemic)",
         "GLR hops exceed epidemic's, sharply so at 50 m");

  const struct {
    double r;
    const char* paper;
  } rows[] = {{250.0, "3.40 / 3.19"},
              {200.0, "4.10 / 3.64"},
              {150.0, "5.23 / 4.58"},
              {100.0, "8.75 / 4.92"},
              {50.0, "17.32 / 3.92"}};
  // Grid layout: [GLR row0, Epi row0, GLR row1, Epi row1, ...].
  std::vector<ScenarioConfig> grid;
  for (const auto& row : rows) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, row.r);
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    grid.push_back(g);
    grid.push_back(e);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "tab6");

  std::printf("\nradius | GLR hops      | Epidemic hops | paper (GLR/Epi)\n");
  std::printf("-------+---------------+---------------+----------------\n");
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Agg& ga = aggs[2 * i];
    const Agg& ea = aggs[2 * i + 1];
    std::printf("%4.0f m | %-13s | %-13s | %s\n", rows[i].r,
                fmtCI(ga.hops, 2).c_str(), fmtCI(ea.hops, 2).c_str(),
                rows[i].paper);
  }
  std::printf(
      "\nExpected shape: GLR >= epidemic everywhere; GLR's hop count grows\n"
      "sharply as radius shrinks while epidemic's stays nearly flat\n"
      "(paper Table 6).\n");
  return 0;
}
