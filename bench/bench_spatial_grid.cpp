/// Spatial-grid speedup bench: unit-disk graph construction via the uniform
/// grid (O(n*k)) vs the brute-force all-pairs scan (O(n^2)) at 1k / 10k /
/// 50k nodes. Density is held constant (the paper's 50 nodes per
/// 1500 m x 300 m at 100 m radius, ~area scaled with n) so the average
/// degree — and therefore the edge count per node — stays fixed while n
/// grows, which is exactly the regime where the quadratic scan collapses.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/spatial_grid.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "spanner/udg.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using glr::geom::Point2;
using glr::graph::Graph;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<Point2> randomPoints(int n, double w, double h,
                                 std::uint64_t seed) {
  glr::sim::Rng rng{seed};
  std::vector<Point2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, w), rng.uniform(0, h)});
  }
  return pts;
}

/// The pre-grid buildUnitDiskGraph, kept verbatim as the baseline.
Graph bruteForceUdg(const std::vector<Point2>& pts, double radius) {
  Graph g{pts.size()};
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (glr::geom::dist2(pts[i], pts[j]) <= r2) {
        g.addEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return g;
}

}  // namespace

int main() {
  constexpr double kRadius = 100.0;
  // Paper density: 50 nodes / (1500 * 300) m^2; area grows with n.
  constexpr double kAreaPerNode = 1500.0 * 300.0 / 50.0;

  std::printf("UDG construction, constant density, radius %.0f m\n", kRadius);
  std::printf("%8s %12s %12s %12s %10s %10s\n", "nodes", "edges",
              "brute (s)", "grid (s)", "speedup", "match");

  for (const int n : {1000, 10000, 50000}) {
    const double side = std::sqrt(kAreaPerNode * n);
    const auto pts = randomPoints(n, side, side, 42);

    const auto t0 = Clock::now();
    const Graph brute = bruteForceUdg(pts, kRadius);
    const double bruteSec = secondsSince(t0);

    const auto t1 = Clock::now();
    const Graph grid = glr::spanner::buildUnitDiskGraph(pts, kRadius);
    const double gridSec = secondsSince(t1);

    const bool match = brute.numEdges() == grid.numEdges() &&
                       brute.edges() == grid.edges();
    std::printf("%8d %12zu %12.4f %12.4f %9.1fx %10s\n", n, grid.numEdges(),
                bruteSec, gridSec, bruteSec / gridSec,
                match ? "yes" : "NO (BUG)");
    if (!match) return 1;
  }

  // Radius queries: the channel's receiver-enumeration pattern (one lookup
  // per transmission) vs scanning every node.
  std::printf("\nradius queries (10k lookups on 50k points)\n");
  {
    const int n = 50000;
    const double side = std::sqrt(kAreaPerNode * n);
    const auto pts = randomPoints(n, side, side, 7);
    const glr::geom::SpatialGrid gridIdx{pts, kRadius};
    glr::sim::Rng rng{11};

    std::vector<int> out;
    std::size_t total = 0;
    const auto t0 = Clock::now();
    for (int q = 0; q < 10000; ++q) {
      out.clear();
      gridIdx.queryRadius({rng.uniform(0, side), rng.uniform(0, side)},
                          kRadius, out);
      total += out.size();
    }
    const double gridSec = secondsSince(t0);

    std::size_t totalScan = 0;
    const double r2 = kRadius * kRadius;
    glr::sim::Rng rng2{11};
    const auto t1 = Clock::now();
    for (int q = 0; q < 10000; ++q) {
      const Point2 c{rng2.uniform(0, side), rng2.uniform(0, side)};
      for (const Point2& p : pts) {
        if (glr::geom::dist2(p, c) <= r2) ++totalScan;
      }
    }
    const double scanSec = secondsSince(t1);

    std::printf("  grid: %.4f s   scan: %.4f s   speedup %.1fx   %s\n",
                gridSec, scanSec, scanSec / gridSec,
                total == totalScan ? "(same hit count)" : "(MISMATCH)");
    if (total != totalScan) return 1;
  }
  return 0;
}
