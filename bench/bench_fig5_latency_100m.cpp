/// Figure 5 reproduction: average delivery latency vs number of messages in
/// transit at 100 m radius, GLR vs epidemic. Paper: GLR stays below
/// epidemic across the sweep (epidemic up to ~90 s).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 5: latency vs messages in transit (100 m radius)",
         "GLR below epidemic across the sweep; epidemic rises to ~90 s");

  const std::vector<int> counts = paperScale()
                                      ? std::vector<int>{400, 890, 1400, 1980}
                                      : std::vector<int>{200, 400, 890};
  std::vector<ScenarioConfig> grid;  // [GLR n0, Epi n0, GLR n1, ...]
  for (const int n : counts) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, 100.0);
    g.numMessages = n;
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    grid.push_back(g);
    grid.push_back(e);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "fig5");

  std::printf(
      "\nmessages | GLR ratio | GLR latency (s) | Epidemic ratio | Epidemic "
      "latency (s)\n");
  std::printf(
      "---------+-----------+-----------------+----------------+-------------"
      "--------\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const Agg& ga = aggs[2 * i];
    const Agg& ea = aggs[2 * i + 1];
    std::printf("  %5d  | %-9s | %-15s | %-14s | %s\n", counts[i],
                fmtPct(ga.ratio.mean).c_str(), fmtCI(ga.latency, 1).c_str(),
                fmtPct(ea.ratio.mean).c_str(), fmtCI(ea.latency, 1).c_str());
  }
  std::printf(
      "\nExpected shape: GLR latency below epidemic, gap widening with load\n"
      "as epidemic's summary-vector/data contention grows (paper Figure 5).\n");
  return 0;
}
