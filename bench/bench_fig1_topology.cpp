/// Figure 1 reproduction: connectivity of 50-node random topologies in a
/// 1000 m x 1000 m area at radii 250 m and 100 m. The paper shows two
/// example plots and argues: at 250 m "networks are either connected or
/// only a few nodes are disconnected"; at 100 m connection is "almost
/// impossible". We quantify that over many seeds: edge counts, component
/// counts, giant-component size, and the fraction of connected topologies,
/// plus the Georgiou threshold the copy-count decision uses.

#include <cstdio>
#include <vector>

#include "experiment/tables.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "spanner/connectivity.hpp"
#include "spanner/ldtg.hpp"
#include "spanner/udg.hpp"
#include "stats/summary.hpp"

namespace {

using glr::geom::Point2;

struct TopoStats {
  glr::stats::Summary edges;
  glr::stats::Summary components;
  glr::stats::Summary giant;
  glr::stats::Summary ldtgEdges;
  int connected = 0;
  int nearlyConnected = 0;  // giant component >= 45 of 50
};

TopoStats measure(double radius, int trials) {
  TopoStats s;
  for (int t = 0; t < trials; ++t) {
    glr::sim::Rng rng{10000 + static_cast<std::uint64_t>(t)};
    std::vector<Point2> pts;
    for (int i = 0; i < 50; ++i) {
      pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
    }
    const auto udg = glr::spanner::buildUnitDiskGraph(pts, radius);
    const auto labels = glr::graph::connectedComponents(udg);
    std::vector<int> sizes(labels.size(), 0);
    for (int l : labels) ++sizes[static_cast<std::size_t>(l)];
    int giant = 0;
    for (int c : sizes) giant = std::max(giant, c);

    s.edges.add(static_cast<double>(udg.numEdges()));
    s.components.add(
        static_cast<double>(glr::graph::componentCount(udg)));
    s.giant.add(giant);
    if (glr::graph::isConnected(udg)) ++s.connected;
    if (giant >= 45) ++s.nearlyConnected;

    const auto ldtg = glr::spanner::buildLdtg(pts, radius, 2);
    s.ldtgEdges.add(static_cast<double>(ldtg.numEdges()));
  }
  return s;
}

}  // namespace

int main() {
  const int trials = glr::experiment::paperScale() ? 100 : 30;
  std::printf(
      "\n=== Figure 1: topology of 50 nodes in 1000x1000, radius 250 vs 100 "
      "===\n");
  std::printf("(paper shows sample topologies; we aggregate %d seeds)\n\n",
              trials);

  const double thr =
      glr::spanner::connectivityThresholdRadius(50, 10.0, 1000.0, 1000.0);
  std::printf("Georgiou threshold radius (n=50, s=10): %.1f m\n\n", thr);

  std::printf(
      "radius | UDG edges     | components   | giant comp  | connected | "
      "giant>=45 | LDTG edges\n");
  std::printf(
      "-------+---------------+--------------+-------------+-----------+-----------+-----------\n");
  for (const double r : {250.0, 100.0}) {
    const auto s = measure(r, trials);
    std::printf(
        "%5.0fm | %6.1f ± %4.1f | %5.2f ± %4.2f | %5.1f ± %3.1f |   %3.0f%%    "
        "|   %3.0f%%    | %6.1f\n",
        r, s.edges.mean(), s.edges.stddev(), s.components.mean(),
        s.components.stddev(), s.giant.mean(), s.giant.stddev(),
        100.0 * s.connected / trials, 100.0 * s.nearlyConnected / trials,
        s.ldtgEdges.mean());
  }
  std::printf(
      "\nPaper's observation: at 250 m topologies are connected or nearly so;"
      "\nat 100 m connection is almost impossible. Expect connected%% high at"
      "\n250 m and ~0 at 100 m.\n");
  return 0;
}
