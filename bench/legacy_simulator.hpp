#pragma once
/// \file legacy_simulator.hpp
/// Frozen copy of the pre-slab event kernel (shared_ptr cancellation flags,
/// std::function callbacks, priority_queue of full Event structs). Kept
/// header-only under bench/ so `bench_sim_kernel` can measure the old and new
/// kernels side by side in one binary; nothing in src/ may include this.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace glr::bench::legacy {

using SimTime = double;

/// Cancellation token backed by a heap-allocated shared flag.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }

  [[nodiscard]] bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

/// The old deterministic scheduler, verbatim: three allocator round-trips per
/// event (shared flag, std::function closure, Event copy out of top()).
class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  EventHandle scheduleAt(SimTime t, Callback fn) {
    if (t < now_) {
      throw std::invalid_argument{"Simulator::scheduleAt: time is in the past"};
    }
    if (!fn) {
      throw std::invalid_argument{"Simulator::scheduleAt: empty callback"};
    }
    Event ev;
    ev.time = t;
    ev.seq = nextSeq_++;
    ev.fn = std::move(fn);
    ev.alive = std::make_shared<bool>(true);
    EventHandle handle{std::weak_ptr<bool>{ev.alive}};
    queue_.push(std::move(ev));
    return handle;
  }

  EventHandle schedule(SimTime delay, Callback fn) {
    return scheduleAt(now_ + delay, std::move(fn));
  }

  std::uint64_t run(SimTime until = kForever) {
    stopped_ = false;
    std::uint64_t ran = 0;
    for (;;) {
      skipCancelled();
      if (queue_.empty() || stopped_) break;
      if (queue_.top().time > until) break;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.time;
      *ev.alive = false;
      ev.fn();
      ++ran;
      ++executed_;
    }
    if (queue_.empty() && now_ < until && until < kForever) now_ = until;
    return ran;
  }

  std::uint64_t step(std::uint64_t n = 1) {
    std::uint64_t ran = 0;
    while (ran < n) {
      skipCancelled();
      if (queue_.empty()) break;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.time;
      *ev.alive = false;
      ev.fn();
      ++ran;
      ++executed_;
    }
    return ran;
  }

  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t eventsExecuted() const { return executed_; }
  [[nodiscard]] std::size_t queueSize() const { return queue_.size(); }

  [[nodiscard]] bool hasPending() {
    skipCancelled();
    return !queue_.empty();
  }

  static constexpr SimTime kForever = 1e300;

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skipCancelled() {
    while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace glr::bench::legacy
