/// Ablation bench for GLR's design choices (DESIGN.md §6) plus extension
/// baselines. Columns: delivery ratio, latency, hops, avg peak storage.
/// Rows:
///   * full GLR (Algorithm 1 copies, witness LDTG, face routing, custody)
///   * copies fixed to 1 / 3 / 5 (vs Algorithm 1's choice)
///   * face routing disabled
///   * LDel rule (no witness vetoes)
///   * custody disabled
///   * baselines: epidemic, direct delivery, binary spray-and-wait

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("GLR ablations and extension baselines (100 m, sparse regime)",
         "design-choice sensitivity; not a paper table");

  const int runs = defaultRuns();
  struct Row {
    std::string name;
    std::function<void(ScenarioConfig&)> tweak;
  };
  const std::vector<Row> rows = {
      {"GLR (full)           ", [](ScenarioConfig&) {}},
      {"GLR copies=1         ",
       [](ScenarioConfig& c) { c.copiesOverride = 1; }},
      {"GLR copies=5         ",
       [](ScenarioConfig& c) { c.copiesOverride = 5; }},
      {"GLR no face routing  ",
       [](ScenarioConfig& c) { c.faceRouting = false; }},
      {"GLR LDel (no witness)",
       [](ScenarioConfig& c) { c.witnessRule = false; }},
      {"GLR no custody       ", [](ScenarioConfig& c) { c.custody = false; }},
      {"Epidemic             ",
       [](ScenarioConfig& c) { c.protocol = Protocol::kEpidemic; }},
      {"Direct delivery      ",
       [](ScenarioConfig& c) { c.protocol = Protocol::kDirectDelivery; }},
      {"Spray-and-wait (L=8) ",
       [](ScenarioConfig& c) { c.protocol = Protocol::kSprayAndWait; }},
  };

  std::vector<ScenarioConfig> grid;
  for (const Row& row : rows) {
    ScenarioConfig cfg = benchConfig(Protocol::kGlr, 100.0);
    row.tweak(cfg);
    grid.push_back(cfg);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, runs, "ablation");

  std::printf(
      "\nvariant               | ratio  | latency (s)   | hops        | avg "
      "peak storage\n");
  std::printf(
      "----------------------+--------+---------------+-------------+--------"
      "---------\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Agg& a = aggs[i];
    std::printf("%s | %-6s | %-13s | %-11s | %s\n", rows[i].name.c_str(),
                fmtPct(a.ratio.mean).c_str(), fmtCI(a.latency, 1).c_str(),
                fmtCI(a.hops, 1).c_str(), fmtCI(a.avgPeak, 1).c_str());
  }
  std::printf(
      "\nReading guide: copies=1 in the sparse regime should cost latency;\n"
      "no-face should cost delivery/latency around voids; no-custody should\n"
      "cost delivery ratio; direct delivery bounds storage from below and\n"
      "latency from above.\n");
  return 0;
}
