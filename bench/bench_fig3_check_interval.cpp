/// Figure 3 reproduction: GLR delivery latency vs route-check interval
/// (paper: 0.6-1.6 s on the x-axis, latency ~18-25 s, 1980 messages,
/// 100 m radius). Expected shape: latency increases gently with the check
/// interval — more frequent checks mean more control traffic but lower
/// forwarding delay.

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 3: GLR latency vs route check interval (100 m)",
         "paper curve rises from ~19 s at 0.6 s to ~24 s at 1.6 s");

  const std::vector<double> intervals = {0.6, 0.8, 0.9, 1.2, 1.4, 1.6};
  std::vector<ScenarioConfig> grid;
  for (const double interval : intervals) {
    ScenarioConfig cfg = benchConfig(Protocol::kGlr, 100.0);
    cfg.checkInterval = interval;
    grid.push_back(cfg);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "fig3");

  std::printf("\ncheck interval | delivery ratio | avg latency (s)\n");
  std::printf("---------------+----------------+----------------\n");
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    std::printf("       %.1f s   | %-14s | %s\n", intervals[i],
                fmtPct(aggs[i].ratio.mean).c_str(),
                fmtCI(aggs[i].latency, 1).c_str());
  }
  std::printf(
      "\nExpected shape: latency grows with the interval (paper Figure 3).\n");
  return 0;
}
