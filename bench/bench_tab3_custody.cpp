/// Table 3 reproduction: delivery ratio with vs without custody transfer.
/// Paper (890 messages, 50 m, 1200 s):
///   without custody transfer: 84.7% ± 1%
///   with custody transfer:    97.9% ± 1%

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Table 3: delivery ratio with vs without custody transfer",
         "without 84.7% ± 1%, with 97.9% ± 1% (890 msgs, 50 m, 1200 s)");

  std::vector<ScenarioConfig> grid;
  for (const bool custody : {false, true}) {
    ScenarioConfig cfg = benchConfig(Protocol::kGlr, 50.0);
    cfg.numMessages = 890;   // the paper fixes this row's workload
    cfg.simTime = 1200.0;
    cfg.custody = custody;
    grid.push_back(cfg);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "tab3");

  std::printf("\ncustody  | delivery ratio   | paper\n");
  std::printf("---------+------------------+-----------\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const bool custody = grid[i].custody;
    const auto& ratio = aggs[i].ratio;
    glr::stats::ConfidenceInterval pct{ratio.mean * 100.0,
                                       ratio.halfwidth * 100.0, ratio.samples};
    std::printf("%s | %-14s %% | %s\n", custody ? "with    " : "without ",
                fmtCI(pct, 1).c_str(), custody ? "97.9% ± 1%" : "84.7% ± 1%");
  }
  std::printf(
      "\nExpected shape: custody transfer lifts the delivery ratio by\n"
      "recovering copies lost to collisions and vanished next hops.\n");
  return 0;
}
