/// \file bench_saturation.cpp
/// Overload survival: offered-load sweep to locate each protocol's
/// saturation knee. The paper's workload (one message per second) never
/// stresses the network; this bench drives Poisson offered load from well
/// below to far above capacity — finite interface queues and finite storage
/// — and records where goodput stops tracking load and delivery collapses,
/// for GLR (with and without its overload controls: buffer-pressure custody
/// watermark + AIMD custody window), epidemic and spray-and-wait.
///
/// Full mode also runs a million-message stress cell: the stochastic
/// traffic engine offering ~1.2M messages to a saturated GLR network, as a
/// scaling proof that overload is survived by counted rejection (queue
/// drops, custody refusals, evictions) rather than by unbounded buffers.
///
/// Usage: bench_saturation [--quick] [--out FILE.json]
///   --quick  CI mode: tiny cells, plus a 1-vs-2-thread bit-identical
///            cross-check over the whole grid (saturated queues, refusal
///            backoffs and fault-free overload paths under the parallel
///            engine) and skip the stress cell.
///   --out    machine-readable results (default BENCH_saturation.json).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"

namespace {

using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::Protocol;
using glr::experiment::runScenario;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::experiment::SweepRunner;

struct Variant {
  const char* name;
  Protocol protocol;
  bool overloadControls;  // GLR custody watermark + AIMD window
};

constexpr Variant kVariants[] = {
    {"GLR", Protocol::kGlr, false},
    {"GLR+ctl", Protocol::kGlr, true},
    {"Epidemic", Protocol::kEpidemic, false},
    {"SprayAndWait", Protocol::kSprayAndWait, false},
};

ScenarioConfig cellConfig(const Variant& v, double load, bool quick) {
  ScenarioConfig cfg;
  cfg.protocol = v.protocol;
  cfg.radius = quick ? 150.0 : 100.0;
  if (quick) {
    cfg.numNodes = 16;
    cfg.trafficNodes = 14;
    cfg.simTime = 90.0;
  } else {
    cfg.simTime = 600.0;
  }
  // Finite resources everywhere: saturation must be survived by counted
  // rejection, not absorbed by unbounded buffers.
  cfg.storageLimit = quick ? 16 : 40;
  cfg.traffic.model = "poisson";
  cfg.traffic.rate = load;
  if (v.overloadControls) {
    cfg.custodyWatermark = cfg.storageLimit / 2;
    cfg.congestionControl = true;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_saturation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<double> loads =
      quick ? std::vector<double>{0.5, 4.0, 16.0}
            : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  const int runs = glr::experiment::benchRuns(quick ? 1 : 2);

  std::vector<ScenarioConfig> grid;
  for (const Variant& v : kVariants) {
    for (const double load : loads) {
      grid.push_back(cellConfig(v, load, quick));
    }
  }

  glr::bench::banner("Saturation sweep: offered load vs. goodput",
                     "overload survival past the paper's 1 msg/s workload");
  std::printf("%zu cells (%zu variants x %zu loads), %d seed(s) each\n\n",
              grid.size(), std::size(kVariants), loads.size(), runs);

  SweepRunner::Options opts;
  opts.progress = true;
  opts.label = "saturation";
  if (quick) opts.threads = 1;  // doubles as the serial determinism baseline
  SweepRunner runner{opts};
  const std::vector<std::vector<ScenarioResult>> results =
      runner.run(grid, runs);

  if (quick) {
    SweepRunner::Options pairOpts;
    pairOpts.threads = 2;
    SweepRunner pairRunner{pairOpts};
    const auto threaded = pairRunner.run(grid, runs);
    for (std::size_t g = 0; g < results.size(); ++g) {
      for (std::size_t s = 0; s < results[g].size(); ++s) {
        if (!bitIdenticalIgnoringWall(results[g][s], threaded[g][s])) {
          std::fprintf(stderr,
                       "FATAL: cell %zu seed %zu diverged across thread "
                       "counts — overload determinism broken\n",
                       g, s);
          return 1;
        }
      }
    }
    std::printf("determinism: 1-thread and 2-thread grids bit-identical "
                "(%zu cells)\n\n",
                grid.size() * results.front().size());
  }

  // Per-cell means. Goodput = delivered / traffic window; the knee is where
  // it stops tracking offered load.
  struct Row {
    double created = 0, delivered = 0, goodput = 0, ratio = 0;
    double queueDrops = 0, rejects = 0, evictions = 0, refusals = 0;
  };
  std::vector<Row> rows(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double window = grid[i].simTime - grid[i].trafficStart;
    const double n = static_cast<double>(results[i].size());
    Row& row = rows[i];
    for (const ScenarioResult& r : results[i]) {
      row.created += static_cast<double>(r.created) / n;
      row.delivered += static_cast<double>(r.delivered) / n;
      row.ratio += r.deliveryRatio / n;
      row.queueDrops += static_cast<double>(r.macQueueDrops) / n;
      row.rejects += static_cast<double>(r.sendRejects) / n;
      row.evictions += static_cast<double>(r.bufferEvictions) / n;
      row.refusals += static_cast<double>(r.custodyRefusals) / n;
    }
    row.goodput = row.delivered / window;
  }

  std::printf("%-13s %8s %9s %9s %9s %10s %10s %10s %9s\n", "variant",
              "load/s", "created", "goodput/s", "delivery", "queueDrop",
              "rejects", "evictions", "refusals");
  for (std::size_t v = 0; v < std::size(kVariants); ++v) {
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const std::size_t i = v * loads.size() + l;
      const Row& row = rows[i];
      std::printf(
          "%-13s %8.2f %9.0f %9.2f %8.1f%% %10.0f %10.0f %10.0f %9.0f\n",
          kVariants[v].name, loads[l], row.created, row.goodput,
          100.0 * row.ratio, row.queueDrops, row.rejects, row.evictions,
          row.refusals);
    }
    std::printf("\n");
  }

  // Million-message stress cell (full mode): overload survived by counted
  // rejection at two orders of magnitude past the knee.
  ScenarioResult stress{};
  double stressWall = 0.0;
  bool haveStress = false;
  if (!quick) {
    ScenarioConfig cfg = cellConfig(kVariants[1], 3000.0, false);
    cfg.simTime = 400.0;  // ~1.17M offered messages
    const auto wall0 = std::chrono::steady_clock::now();
    stress = runScenario(cfg);
    stressWall = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall0)
                     .count();
    haveStress = true;
    std::printf(
        "stress   GLR+ctl @3000 msg/s x 390 s: %zu created, %zu delivered, "
        "%llu queueDrops, %llu rejects, %llu evictions, %llu refusals, "
        "%llu events, %.1f s wall\n",
        stress.created, stress.delivered,
        static_cast<unsigned long long>(stress.macQueueDrops),
        static_cast<unsigned long long>(stress.sendRejects),
        static_cast<unsigned long long>(stress.bufferEvictions),
        static_cast<unsigned long long>(stress.custodyRefusals),
        static_cast<unsigned long long>(stress.eventsExecuted), stressWall);
  }

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"saturation\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"seeds_per_cell\": %d,\n", runs);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t v = 0; v < std::size(kVariants); ++v) {
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const std::size_t i = v * loads.size() + l;
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"variant\": \"%s\", \"offered_load_per_s\": %.2f, "
                   "\"created\": %.1f, \"delivered\": %.1f, "
                   "\"goodput_per_s\": %.3f, \"delivery_ratio\": %.6f, "
                   "\"mac_queue_drops\": %.1f, \"send_rejects\": %.1f, "
                   "\"buffer_evictions\": %.1f, \"custody_refusals\": "
                   "%.1f}%s\n",
                   kVariants[v].name, loads[l], row.created, row.delivered,
                   row.goodput, row.ratio, row.queueDrops, row.rejects,
                   row.evictions, row.refusals,
                   i + 1 < rows.size() ? "," : "");
    }
  }
  std::fprintf(out, "  ]%s\n", haveStress ? "," : "");
  if (haveStress) {
    std::fprintf(out,
                 "  \"stress\": {\"variant\": \"GLR+ctl\", "
                 "\"offered_load_per_s\": 3000.0, \"window_s\": 390.0, "
                 "\"created\": %zu, \"delivered\": %zu, "
                 "\"mac_queue_drops\": %llu, \"send_rejects\": %llu, "
                 "\"buffer_evictions\": %llu, \"custody_refusals\": %llu, "
                 "\"events\": %llu, \"wall_seconds\": %.1f}\n",
                 stress.created, stress.delivered,
                 static_cast<unsigned long long>(stress.macQueueDrops),
                 static_cast<unsigned long long>(stress.sendRejects),
                 static_cast<unsigned long long>(stress.bufferEvictions),
                 static_cast<unsigned long long>(stress.custodyRefusals),
                 static_cast<unsigned long long>(stress.eventsExecuted),
                 stressWall);
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", outPath.c_str());
  return 0;
}
