/// Figure 6 reproduction: average delivery latency vs transmission radius
/// (50-250 m), GLR vs epidemic. Paper: both fall steeply with radius; GLR
/// is below epidemic (GLR uses 3 copies at 50/100 m, 1 copy beyond — our
/// Algorithm 1 makes the same choice automatically).

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 6: latency vs transmission radius (GLR vs epidemic)",
         "both drop with radius; GLR below epidemic at >=100 m");

  const std::vector<double> radii = {50.0, 100.0, 150.0, 200.0, 250.0};
  std::vector<ScenarioConfig> grid;  // [GLR r0, Epi r0, GLR r1, ...]
  for (const double r : radii) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, r);
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    grid.push_back(g);
    grid.push_back(e);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "fig6");

  std::printf(
      "\nradius | GLR copies | GLR ratio | GLR latency (s) | Epi ratio | Epi "
      "latency (s)\n");
  std::printf(
      "-------+------------+-----------+-----------------+-----------+-------"
      "--------\n");
  for (std::size_t i = 0; i < radii.size(); ++i) {
    const double r = radii[i];
    const Agg& ga = aggs[2 * i];
    const Agg& ea = aggs[2 * i + 1];
    const int copies = glr::core::decideCopyCount(
        {.numNodes = 50, .radius = r, .areaWidth = 1500, .areaHeight = 300,
         .confidence = 10.0});
    std::printf("%4.0f m |     %d      | %-9s | %-15s | %-9s | %s\n", r,
                copies, fmtPct(ga.ratio.mean).c_str(),
                fmtCI(ga.latency, 1).c_str(), fmtPct(ea.ratio.mean).c_str(),
                fmtCI(ea.latency, 1).c_str());
  }
  std::printf(
      "\nExpected shape: latency decreasing in radius for both protocols;\n"
      "Algorithm 1 switches to a single copy at 150 m+ (paper Figure 6).\n");
  return 0;
}
