/// Figure 6 reproduction: average delivery latency vs transmission radius
/// (50-250 m), GLR vs epidemic. Paper: both fall steeply with radius; GLR
/// is below epidemic (GLR uses 3 copies at 50/100 m, 1 copy beyond — our
/// Algorithm 1 makes the same choice automatically).

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 6: latency vs transmission radius (GLR vs epidemic)",
         "both drop with radius; GLR below epidemic at >=100 m");

  const int runs = defaultRuns();
  std::printf(
      "\nradius | GLR copies | GLR ratio | GLR latency (s) | Epi ratio | Epi "
      "latency (s)\n");
  std::printf(
      "-------+------------+-----------+-----------------+-----------+-------"
      "--------\n");
  for (const double r : {50.0, 100.0, 150.0, 200.0, 250.0}) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, r);
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    const Agg ga = runAgg(g, runs);
    const Agg ea = runAgg(e, runs);
    const int copies = glr::core::decideCopyCount(
        {.numNodes = 50, .radius = r, .areaWidth = 1500, .areaHeight = 300,
         .confidence = 10.0});
    std::printf("%4.0f m |     %d      | %-9s | %-15s | %-9s | %s\n", r,
                copies, fmtPct(ga.ratio.mean).c_str(),
                fmtCI(ga.latency, 1).c_str(), fmtPct(ea.ratio.mean).c_str(),
                fmtCI(ea.latency, 1).c_str());
  }
  std::printf(
      "\nExpected shape: latency decreasing in radius for both protocols;\n"
      "Algorithm 1 switches to a single copy at 150 m+ (paper Figure 6).\n");
  return 0;
}
