/// Table 4 reproduction: GLR storage requirement vs number of messages
/// (50 m, 3 copies). Paper rows (messages: max peak / avg peak):
///   400: 39.0 / 21.3   600: 43.9 / 25.8   890: 49.1 / 30.2
///   1180: 59.9 / 37.3  1980: 69.0 / 43.6
/// Epidemic's storage equals the number of messages in transit, so any
/// GLR column far below the message count reproduces the claim.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Table 4: GLR peak storage vs number of messages (50 m, 3 copies)",
         "max peak 39->69, avg peak 21->44 as messages go 400->1980");

  const std::vector<int> counts = paperScale()
                                      ? std::vector<int>{400, 600, 890, 1180, 1980}
                                      : std::vector<int>{400, 600, 890};
  std::vector<ScenarioConfig> grid;
  for (const int n : counts) {
    ScenarioConfig cfg = benchConfig(Protocol::kGlr, 50.0);
    cfg.numMessages = n;
    grid.push_back(cfg);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "tab4");

  std::printf(
      "\nmessages | max peak storage | avg peak storage | paper (max/avg)\n");
  std::printf(
      "---------+------------------+------------------+----------------\n");
  const char* paperRef[] = {"39.0 / 21.3", "43.9 / 25.8", "49.1 / 30.2",
                            "59.9 / 37.3", "69.0 / 43.6"};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const Agg& a = aggs[i];
    std::printf("  %5d  | %-16s | %-16s | %s\n", counts[i],
                fmtCI(a.maxPeak, 1).c_str(), fmtCI(a.avgPeak, 1).c_str(),
                paperRef[i]);
  }
  std::printf(
      "\nExpected shape: both peaks grow sublinearly with the message count\n"
      "and stay far below the epidemic footprint (= all messages on every\n"
      "node).\n");
  return 0;
}
