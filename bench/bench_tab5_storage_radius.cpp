/// Table 5 reproduction: GLR storage requirement vs radius (1980 messages;
/// 3 copies at 50/100 m, 1 copy beyond — Algorithm 1's own choice).
/// Paper rows (radius: max peak / avg peak):
///   250: 6.9 / 1.8   200: 14.3 / 3.3   150: 24.3 / 8.4
///   100: 48.4 / 25.8  50: 69.0 / 43.6

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Table 5: GLR peak storage vs radius",
         "storage shrinks with radius: max 69 -> 6.9 from 50 m to 250 m");

  const struct {
    double r;
    const char* paper;
  } rows[] = {{250.0, "6.9 / 1.8"},
              {200.0, "14.3 / 3.3"},
              {150.0, "24.3 / 8.4"},
              {100.0, "48.4 / 25.8"},
              {50.0, "69.0 / 43.6"}};
  std::vector<ScenarioConfig> grid;
  for (const auto& row : rows) {
    grid.push_back(benchConfig(Protocol::kGlr, row.r));
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "tab5");

  std::printf(
      "\nradius | max peak storage | avg peak storage | paper (max/avg)\n");
  std::printf(
      "-------+------------------+------------------+----------------\n");
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Agg& a = aggs[i];
    std::printf("%4.0f m | %-16s | %-16s | %s\n", rows[i].r,
                fmtCI(a.maxPeak, 1).c_str(), fmtCI(a.avgPeak, 1).c_str(),
                rows[i].paper);
  }
  std::printf(
      "\nExpected shape: the longer the radius, the smaller the storage\n"
      "requirement (paper Sec. 3.7), with a sharp drop once Algorithm 1\n"
      "switches to a single copy at 150 m.\n");
  return 0;
}
