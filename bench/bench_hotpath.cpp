/// \file bench_hotpath.cpp
/// End-to-end hot-path profiling harness (see README "Hot path anatomy").
///
/// Times two workloads on the rebuilt network hot path — epoch position
/// cache, batched SINR with the ring-buffer interference history, payload
/// arenas, and the scratch-reusing local Delaunay spanner:
///   * golden   — the mid-size GLR scenario the KernelRegression test pins
///                (glr-50n-400s-200msg-seed7); its event count is asserted
///                against the golden, so a speedup can never come from
///                silently simulating something else.
///   * worst    — the slowest mobility-matrix cell (epidemic + manhattan +
///                moderate churn: heaviest buffers, street-constrained
///                contact bursts, churn event load).
///   * sat      — a saturating Poisson load well past the knee (GLR with
///                custody watermark + AIMD window, finite storage): the
///                overload paths — queue rejection, custody refusal and
///                backoff, eviction — at steady state.
/// Each workload runs `repeats` times; the JSON records best-of wall and
/// Mev/s against the frozen PR-2 baseline (BENCH_kernel.json: 0.692 Mev/s
/// end-to-end).
///
/// The binary also installs a counting global allocator and records the
/// steady-state allocation count of a *repeat* golden run (arenas and
/// builder scratch already warm — the number CI pins with --max-allocs to
/// catch allocation regressions on the hot path).
///
/// A fourth cell reruns the golden scenario with the flight recorder on
/// (ScenarioConfig::tracePath set): it reports the tracing overhead
/// relative to the tracing-off golden, pins that observation does not
/// perturb the result (bit-identical modulo traceEventsRecorded), and
/// carries its own allocation budget — the recorder may allocate its fixed
/// setup (ring, stdio buffer, writer thread) but nothing per event.
///
/// Usage: bench_hotpath [--quick] [--out FILE.json] [--max-allocs N]
///                      [--max-allocs-sat N] [--max-allocs-trace N]
///                      [--max-trace-overhead PCT]
///   --quick       CI mode: scaled-down scenarios, 2 repeats (the second,
///                 warm repeat is what --max-allocs measures).
///   --out         machine-readable results (default BENCH_hotpath.json).
///   --max-allocs  exit nonzero if the warm golden run allocates more than
///                 N times (heap-profile smoke; 0 disables).
///   --max-allocs-sat  same budget gate for the warm saturated run, so an
///                 allocation regression on the overload paths (refusal
///                 acks, backoff requeues, evictions) cannot hide behind
///                 the lightly-loaded golden scenario (0 disables).
///   --max-allocs-trace  budget gate for the warm tracing-on golden run
///                 (0 disables). Should sit a small constant above
///                 --max-allocs: the gap is the recorder's fixed setup.
///   --max-trace-overhead  exit nonzero if tracing-on wall time exceeds
///                 tracing-off by more than PCT percent (0 disables; use
///                 on quiet machines — wall ratios are noisy in CI).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "counting_allocator.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace {

using glr::benchsupport::allocCount;

using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::Protocol;
using glr::experiment::runScenario;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;

/// The KernelRegression golden event count (commit 2ba2f4a); full mode
/// refuses to report a speedup on a run that diverged from it.
constexpr std::uint64_t kGoldenEvents = 2385279;
/// PR-2 end-to-end baseline on this scenario (BENCH_kernel.json).
constexpr double kBaselineMevPerS = 0.692;

struct Timed {
  ScenarioResult result;
  double bestWall = 0.0;
  double mevPerS = 0.0;
  long long warmAllocs = 0;  // allocation count of the last (warm) repeat
};

Timed timeScenario(const ScenarioConfig& cfg, int repeats) {
  Timed t;
  for (int r = 0; r < repeats; ++r) {
    const long long a0 = allocCount();
    const auto wall0 = std::chrono::steady_clock::now();
    ScenarioResult res = runScenario(cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    t.warmAllocs = allocCount() - a0;
    if (r == 0) {
      t.result = res;
      t.bestWall = wall;
    } else {
      if (!bitIdenticalIgnoringWall(t.result, res)) {
        std::fprintf(stderr,
                     "bench_hotpath: repeat run diverged (determinism bug)\n");
        std::exit(1);
      }
      t.bestWall = std::min(t.bestWall, wall);
    }
  }
  t.mevPerS = static_cast<double>(t.result.eventsExecuted) / t.bestWall / 1e6;
  return t;
}

ScenarioConfig goldenConfig(bool quick) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.radius = 100.0;
  cfg.seed = 7;
  if (quick) {
    cfg.simTime = 120.0;
    cfg.numMessages = 60;
  } else {
    cfg.simTime = 400.0;
    cfg.numMessages = 200;
  }
  return cfg;
}

ScenarioConfig worstMatrixCell(bool quick) {
  // Slowest cell of bench_mobility_matrix: epidemic floods under moderate
  // churn on the Manhattan grid (peak buffers of 400 messages/node).
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kEpidemic;
  cfg.mobility.model = "manhattan";
  cfg.churn = glr::experiment::churnPreset("moderate");
  cfg.radius = quick ? 150.0 : 100.0;
  cfg.numMessages = quick ? 30 : 400;
  cfg.simTime = quick ? 200.0 : 1200.0;
  return cfg;
}

ScenarioConfig saturatedConfig(bool quick) {
  // Poisson offered load well past the saturation knee, with every
  // overload control engaged: finite storage, custody watermark, AIMD
  // custody window. Exercises refusal acks, sender backoff and evictions
  // at steady state.
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.traffic.model = "poisson";
  cfg.congestionControl = true;
  if (quick) {
    cfg.numNodes = 16;
    cfg.trafficNodes = 14;
    cfg.radius = 150.0;
    cfg.simTime = 90.0;
    cfg.storageLimit = 16;
    cfg.traffic.rate = 30.0;
  } else {
    cfg.radius = 100.0;
    cfg.simTime = 300.0;
    cfg.storageLimit = 40;
    cfg.traffic.rate = 50.0;
  }
  cfg.custodyWatermark = cfg.storageLimit / 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  long long maxAllocs = 0;
  long long maxAllocsSat = 0;
  long long maxAllocsTrace = 0;
  double maxTraceOverheadPct = 0.0;
  std::string outPath = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--max-allocs") == 0 && i + 1 < argc) {
      maxAllocs = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-allocs-sat") == 0 && i + 1 < argc) {
      maxAllocsSat = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-allocs-trace") == 0 &&
               i + 1 < argc) {
      maxAllocsTrace = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-trace-overhead") == 0 &&
               i + 1 < argc) {
      maxTraceOverheadPct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out FILE] [--max-allocs N] "
                   "[--max-allocs-sat N] [--max-allocs-trace N] "
                   "[--max-trace-overhead PCT]\n",
                   argv[0]);
      return 2;
    }
  }
  const int repeats = quick ? 2 : 3;

  std::printf("hot-path bench (%s mode)\n", quick ? "quick" : "full");

  const auto golden = timeScenario(goldenConfig(quick), repeats);
  std::printf(
      "golden   glr-50n-%.0fs-%dmsg-seed7: %llu events, best %.3f s, "
      "%.3f Mev/s (PR-2 baseline %.3f => %.2fx), warm-run allocs %lld\n",
      goldenConfig(quick).simTime, goldenConfig(quick).numMessages,
      static_cast<unsigned long long>(golden.result.eventsExecuted),
      golden.bestWall, golden.mevPerS, kBaselineMevPerS,
      golden.mevPerS / kBaselineMevPerS, golden.warmAllocs);
  if (!quick && golden.result.eventsExecuted != kGoldenEvents) {
    std::fprintf(stderr,
                 "bench_hotpath: golden scenario executed %llu events, "
                 "expected %llu — results are not comparable\n",
                 static_cast<unsigned long long>(
                     golden.result.eventsExecuted),
                 static_cast<unsigned long long>(kGoldenEvents));
    return 1;
  }

  const auto worst = timeScenario(worstMatrixCell(quick), repeats);
  std::printf(
      "worst    epidemic/manhattan/moderate: %llu events, best %.3f s, "
      "%.3f Mev/s, warm-run allocs %lld\n",
      static_cast<unsigned long long>(worst.result.eventsExecuted),
      worst.bestWall, worst.mevPerS, worst.warmAllocs);

  // Tracing-on golden: same scenario with the flight recorder armed. The
  // trace file lands next to the JSON and is removed afterwards — the cell
  // measures recording cost, not disk archaeology.
  const std::string tracePath = "bench_hotpath_trace.bin";
  ScenarioConfig tracedCfg = goldenConfig(quick);
  tracedCfg.tracePath = tracePath;
  const auto traced = timeScenario(tracedCfg, repeats);
  std::remove(tracePath.c_str());
  {
    ScenarioResult masked = traced.result;
    masked.traceEventsRecorded = 0;
    if (!bitIdenticalIgnoringWall(masked, golden.result)) {
      std::fprintf(stderr,
                   "bench_hotpath: tracing-on golden diverged from "
                   "tracing-off — observation perturbed the simulation\n");
      return 1;
    }
  }
  const double traceOverheadPct =
      (traced.bestWall / golden.bestWall - 1.0) * 100.0;
  std::printf(
      "traced   golden + flight recorder: %llu events, %llu records, "
      "best %.3f s (overhead %+.1f%%), %.3f Mev/s, warm-run allocs %lld\n",
      static_cast<unsigned long long>(traced.result.eventsExecuted),
      static_cast<unsigned long long>(traced.result.traceEventsRecorded),
      traced.bestWall, traceOverheadPct, traced.mevPerS, traced.warmAllocs);

  const auto sat = timeScenario(saturatedConfig(quick), repeats);
  std::printf(
      "sat      glr+ctl/poisson-%.0fmsg-s: %llu events, %zu offered, "
      "%llu rejects, %llu evictions, %llu refusals, best %.3f s, "
      "%.3f Mev/s, warm-run allocs %lld\n",
      saturatedConfig(quick).traffic.rate,
      static_cast<unsigned long long>(sat.result.eventsExecuted),
      sat.result.created,
      static_cast<unsigned long long>(sat.result.sendRejects),
      static_cast<unsigned long long>(sat.result.bufferEvictions),
      static_cast<unsigned long long>(sat.result.custodyRefusals),
      sat.bestWall, sat.mevPerS, sat.warmAllocs);

  if (maxAllocs > 0 && golden.warmAllocs > maxAllocs) {
    std::fprintf(stderr,
                 "bench_hotpath: warm golden run allocated %lld times, "
                 "budget is %lld — hot-path allocation regression\n",
                 golden.warmAllocs, maxAllocs);
    return 1;
  }
  if (maxAllocsSat > 0 && sat.warmAllocs > maxAllocsSat) {
    std::fprintf(stderr,
                 "bench_hotpath: warm saturated run allocated %lld times, "
                 "budget is %lld — overload-path allocation regression\n",
                 sat.warmAllocs, maxAllocsSat);
    return 1;
  }
  if (maxAllocsTrace > 0 && traced.warmAllocs > maxAllocsTrace) {
    std::fprintf(stderr,
                 "bench_hotpath: warm tracing-on run allocated %lld times, "
                 "budget is %lld — the record() path must not allocate\n",
                 traced.warmAllocs, maxAllocsTrace);
    return 1;
  }
  if (maxTraceOverheadPct > 0.0 && traceOverheadPct > maxTraceOverheadPct) {
    std::fprintf(stderr,
                 "bench_hotpath: tracing overhead %.1f%% exceeds the "
                 "%.1f%% budget\n",
                 traceOverheadPct, maxTraceOverheadPct);
    return 1;
  }

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"hotpath\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out,
               "  \"golden\": {\"scenario\": \"glr-50n-%.0fs-%dmsg-seed7\", "
               "\"events\": %llu, \"best_wall_seconds\": %.3f, "
               "\"mev_per_s\": %.3f, \"baseline_mev_per_s\": %.3f, "
               "\"speedup_vs_pr2\": %.3f, \"warm_run_allocs\": %lld},\n",
               goldenConfig(quick).simTime, goldenConfig(quick).numMessages,
               static_cast<unsigned long long>(golden.result.eventsExecuted),
               golden.bestWall, golden.mevPerS, kBaselineMevPerS,
               golden.mevPerS / kBaselineMevPerS, golden.warmAllocs);
  std::fprintf(out,
               "  \"matrix_worst\": {\"cell\": "
               "\"Epidemic/manhattan/moderate\", \"events\": %llu, "
               "\"best_wall_seconds\": %.3f, \"mev_per_s\": %.3f, "
               "\"warm_run_allocs\": %lld},\n",
               static_cast<unsigned long long>(worst.result.eventsExecuted),
               worst.bestWall, worst.mevPerS, worst.warmAllocs);
  std::fprintf(out,
               "  \"traced_golden\": {\"scenario\": \"golden + flight "
               "recorder\", \"events\": %llu, \"trace_records\": %llu, "
               "\"best_wall_seconds\": %.3f, \"overhead_pct\": %.1f, "
               "\"mev_per_s\": %.3f, \"warm_run_allocs\": %lld},\n",
               static_cast<unsigned long long>(traced.result.eventsExecuted),
               static_cast<unsigned long long>(
                   traced.result.traceEventsRecorded),
               traced.bestWall, traceOverheadPct, traced.mevPerS,
               traced.warmAllocs);
  std::fprintf(out,
               "  \"saturated\": {\"cell\": \"GLR+ctl/poisson-%.0fmsg-s\", "
               "\"events\": %llu, \"offered\": %zu, \"send_rejects\": %llu, "
               "\"buffer_evictions\": %llu, \"custody_refusals\": %llu, "
               "\"best_wall_seconds\": %.3f, \"mev_per_s\": %.3f, "
               "\"warm_run_allocs\": %lld}\n",
               saturatedConfig(quick).traffic.rate,
               static_cast<unsigned long long>(sat.result.eventsExecuted),
               sat.result.created,
               static_cast<unsigned long long>(sat.result.sendRejects),
               static_cast<unsigned long long>(sat.result.bufferEvictions),
               static_cast<unsigned long long>(sat.result.custodyRefusals),
               sat.bestWall, sat.mevPerS, sat.warmAllocs);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
