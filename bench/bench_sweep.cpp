/// \file bench_sweep.cpp
/// Scaling bench for the deterministic parallel experiment engine
/// (src/experiment/runner.hpp): runs the Table-3 custody grid — the
/// canonical two-config sweep every table/figure bench is now built on — at
/// 1/2/4/8 threads and reports scenarios/sec and speedup over the 1-thread
/// (serial) pool. Every thread count re-runs the same cells; results are
/// cross-checked cell-for-cell against the serial run, so the bench doubles
/// as the engine's determinism guard.
///
/// Usage: bench_sweep [--quick] [--threads a,b,...] [--out FILE.json]
///   --quick    CI mode: tiny cells, 1 vs 2 threads, determinism check only.
///   --threads  comma-separated thread counts (default 1,2,4,8).
///   --out      machine-readable results (default BENCH_sweep.json; see
///              README "Running paper sweeps in parallel").
///
/// Note: speedup is bounded by the host's online cores (reported as
/// hardware_concurrency in the JSON) — on a 1-core container every thread
/// count measures ~1x, and the interesting output is the determinism check.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "experiment/tables.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using glr::experiment::Protocol;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::experiment::SweepRunner;

/// The Table-3 custody grid (890 messages, 50 m, 1200 s; custody off/on).
std::vector<ScenarioConfig> custodyGrid(bool quick) {
  std::vector<ScenarioConfig> grid;
  for (const bool custody : {false, true}) {
    ScenarioConfig cfg;
    cfg.protocol = Protocol::kGlr;
    cfg.radius = 50.0;
    cfg.custody = custody;
    if (quick) {
      cfg.numMessages = 60;
      cfg.simTime = 300.0;
    } else {
      cfg.numMessages = 890;
      cfg.simTime = 1200.0;
    }
    grid.push_back(cfg);
  }
  return grid;
}

struct Point {
  unsigned threads = 0;
  double wallSeconds = 0.0;
  double scenariosPerSec = 0.0;
  double speedup = 1.0;
  bool identical = true;  // vs the serial (1-thread) results
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_sweep.json";
  // Empty until parsing finishes: an explicit --threads list wins whatever
  // its position relative to --quick; the mode only picks the default.
  std::vector<unsigned> threadCounts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threadCounts.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0) break;
        threadCounts.push_back(static_cast<unsigned>(v));
        p = *end == ',' ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads a,b,...] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threadCounts.empty()) {
    threadCounts = quick ? std::vector<unsigned>{1, 2}
                         : std::vector<unsigned>{1, 2, 4, 8};
  }
  if (threadCounts.front() != 1) {
    threadCounts.insert(threadCounts.begin(), 1);  // serial baseline first
  }

  const std::vector<ScenarioConfig> grid = custodyGrid(quick);
  const int runs =
      glr::experiment::envInt("GLR_BENCH_RUNS", quick ? 2 : 8);
  const std::size_t cells = grid.size() * static_cast<std::size_t>(runs);
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("Sweep-engine bench (%s mode): Table-3 custody grid, "
              "%zu configs x %d seeds = %zu cells, host concurrency %u\n",
              quick ? "quick" : "full", grid.size(), runs, cells, hw);

  std::vector<std::vector<ScenarioResult>> serial;
  std::vector<Point> points;
  for (const unsigned t : threadCounts) {
    SweepRunner::Options opts;
    opts.threads = t;
    opts.label = "tab3-grid";
    SweepRunner runner{opts};

    const auto t0 = Clock::now();
    const auto results = runner.run(grid, runs);
    Point p;
    p.threads = t;
    p.wallSeconds = std::chrono::duration<double>(Clock::now() - t0).count();
    p.scenariosPerSec = static_cast<double>(cells) / p.wallSeconds;

    if (serial.empty()) {
      serial = results;  // t == 1: the baseline
    } else {
      for (std::size_t g = 0; g < results.size(); ++g) {
        for (std::size_t s = 0; s < results[g].size(); ++s) {
          if (!glr::experiment::bitIdenticalIgnoringWall(results[g][s],
                                                         serial[g][s])) {
            p.identical = false;
          }
        }
      }
    }
    p.speedup = points.empty() ? 1.0 : points.front().wallSeconds / p.wallSeconds;
    points.push_back(p);

    std::printf("%2u thread(s): %6.2fs wall, %5.2f scenarios/s, "
                "speedup %4.2fx, results %s\n",
                p.threads, p.wallSeconds, p.scenariosPerSec, p.speedup,
                p.identical ? "bit-identical to serial" : "DIVERGED");
  }

  bool allIdentical = true;
  for (const Point& p : points) allIdentical = allIdentical && p.identical;
  if (!allIdentical) {
    std::fprintf(stderr, "FATAL: parallel sweep diverged from the serial "
                         "path — determinism contract broken\n");
    return 1;
  }

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sweep\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"grid\": \"table3-custody\",\n");
  std::fprintf(out, "  \"configs\": %zu,\n", grid.size());
  std::fprintf(out, "  \"seeds_per_config\": %d,\n", runs);
  std::fprintf(out, "  \"cells\": %zu,\n", cells);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out,
               "  \"note\": \"speedup is bounded by hardware_concurrency; "
               "cells are independent compute-bound scenarios, so "
               "scenarios/sec scales with online cores\",\n");
  std::fprintf(out, "  \"bit_identical_to_serial\": true,\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %u, \"wall_seconds\": %.3f, "
                 "\"scenarios_per_sec\": %.3f, \"speedup\": %.3f}%s\n",
                 p.threads, p.wallSeconds, p.scenariosPerSec, p.speedup,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
