/// \file bench_mobility_matrix.cpp
/// Scenario-diversity matrix: GLR vs. epidemic vs. spray-and-wait across
/// every extension mobility model x churn level, executed as one
/// declarative SweepRunner grid. This is the workload the paper never ran —
/// its evaluation is random waypoint only — and the numbers show how each
/// protocol's delivery/latency/storage trade-off shifts when node density
/// concentrates (cluster), hugs the perimeter (direction), follows streets
/// (manhattan) or drifts smoothly (gauss_markov), with and without radios
/// duty-cycling off.
///
/// Usage: bench_mobility_matrix [--quick] [--out FILE.json]
///   --quick  CI mode: tiny cells, plus a 1-vs-2-thread bit-identical
///            cross-check over the whole matrix (guards the determinism of
///            every new mobility model and the churn event paths under the
///            parallel engine).
///   --out    machine-readable results (default BENCH_mobility.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"

namespace {

using glr::bench::Agg;
using glr::bench::aggregate;
using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::churnPreset;
using glr::experiment::Protocol;
using glr::experiment::protocolName;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::experiment::SweepRunner;

struct Cell {
  Protocol protocol;
  std::string mobility;
  std::string churn;
};

std::vector<ScenarioConfig> matrixGrid(const std::vector<Cell>& cells,
                                       bool quick) {
  std::vector<ScenarioConfig> grid;
  grid.reserve(cells.size());
  for (const Cell& cell : cells) {
    ScenarioConfig cfg;
    cfg.protocol = cell.protocol;
    cfg.mobility.model = cell.mobility;
    cfg.churn = churnPreset(cell.churn);
    cfg.radius = quick ? 150.0 : 100.0;
    if (quick) {
      cfg.numMessages = 30;
      cfg.simTime = 200.0;
    } else if (glr::experiment::paperScale()) {
      cfg.numMessages = 1980;
      cfg.simTime = 3800.0;
    } else {
      cfg.numMessages = 400;
      cfg.simTime = 1200.0;
    }
    grid.push_back(cfg);
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_mobility.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<Protocol> protocols = {
      Protocol::kGlr, Protocol::kEpidemic, Protocol::kSprayAndWait};
  const std::vector<std::string> mobilities =
      quick ? std::vector<std::string>{"direction", "gauss_markov",
                                       "manhattan", "cluster"}
            : std::vector<std::string>{"waypoint", "direction",
                                       "gauss_markov", "manhattan",
                                       "cluster"};
  const std::vector<std::string> churns = {"none", "moderate"};

  std::vector<Cell> cells;
  for (const auto& mob : mobilities) {
    for (const auto& churn : churns) {
      for (const Protocol p : protocols) cells.push_back({p, mob, churn});
    }
  }
  const std::vector<ScenarioConfig> grid = matrixGrid(cells, quick);
  const int runs = glr::experiment::benchRuns(quick ? 1 : 4);

  glr::bench::banner("Scenario-diversity matrix: protocol x mobility x churn",
                     "extension beyond the paper's waypoint-only evaluation");
  std::printf("%zu cells (%zu mobility x %zu churn x %zu protocols), "
              "%d seed(s) each\n\n",
              grid.size(), mobilities.size(), churns.size(), protocols.size(),
              runs);

  SweepRunner::Options opts;
  opts.progress = true;
  opts.label = "mobility-matrix";
  // Quick mode pins the table run to one thread so it doubles as the
  // serial baseline of the determinism check below (no third execution).
  if (quick) opts.threads = 1;
  SweepRunner runner{opts};
  const std::vector<std::vector<ScenarioResult>> results =
      runner.run(grid, runs);

  if (quick) {
    // Determinism guard: the whole matrix re-run on a different thread
    // count must land bit-identically — churn toggles, mobility draws,
    // heterogeneous event interleavings and all.
    SweepRunner::Options pairOpts;
    pairOpts.threads = 2;
    SweepRunner pairRunner{pairOpts};
    const auto threaded = pairRunner.run(grid, runs);
    const auto& serial = results;
    for (std::size_t g = 0; g < serial.size(); ++g) {
      for (std::size_t s = 0; s < serial[g].size(); ++s) {
        if (!bitIdenticalIgnoringWall(serial[g][s], threaded[g][s])) {
          std::fprintf(stderr,
                       "FATAL: cell %zu seed %zu diverged across thread "
                       "counts — scenario-diversity determinism broken\n",
                       g, s);
          return 1;
        }
      }
    }
    std::printf("determinism: 1-thread and 2-thread matrices bit-identical "
                "(%zu cells)\n\n",
                grid.size() * serial.front().size());

    // Per-cell event-count pins (seed 0). If any cell executes a different
    // number of events than when the pins were baked, the scenario being
    // measured changed — delivery/latency shifts in that cell are not
    // comparable until the pins are regenerated (GLR_QUICK_PIN_DUMP=1).
    static constexpr std::uint64_t kQuickEventPins[] = {
        160656, 137903, 93340,  155315, 131228, 87729,
        106162, 153236, 102237, 118186, 146995, 97502,
        153186, 136279, 94833,  155961, 129197, 91392,
        104843, 169694, 103491, 97269,  166528, 96872,
    };
    static_assert(std::size(kQuickEventPins) == 24,
                  "one pin per quick matrix cell");
    if (std::getenv("GLR_QUICK_PIN_DUMP") != nullptr) {
      std::printf("kQuickEventPins = {");
      for (const auto& cell : results) {
        std::printf("%llu, ",
                    static_cast<unsigned long long>(
                        cell.front().eventsExecuted));
      }
      std::printf("}\n\n");
    } else if (grid.size() == std::size(kQuickEventPins)) {
      for (std::size_t g = 0; g < grid.size(); ++g) {
        if (results[g][0].eventsExecuted != kQuickEventPins[g]) {
          std::fprintf(stderr,
                       "FATAL: cell %zu (%s/%s/%s) executed %llu events, "
                       "pinned %llu — the measured scenario changed\n",
                       g, protocolName(cells[g].protocol),
                       cells[g].mobility.c_str(), cells[g].churn.c_str(),
                       static_cast<unsigned long long>(
                           results[g][0].eventsExecuted),
                       static_cast<unsigned long long>(kQuickEventPins[g]));
          return 1;
        }
      }
      std::printf("event pins: all %zu quick cells match the baked "
                  "event counts\n\n",
                  grid.size());
    }
  }

  std::printf("%-13s %-13s %-9s %10s %12s %10s %12s\n", "protocol",
              "mobility", "churn", "delivery", "latency(s)", "avgPeak",
              "downDrops");
  std::vector<Agg> aggs;
  std::vector<double> downDrops;
  aggs.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Agg a = aggregate(results[i]);
    double drops = 0.0;
    for (const ScenarioResult& r : results[i]) {
      drops += static_cast<double>(r.macRadioDownDrops) /
               static_cast<double>(results[i].size());
    }
    std::printf("%-13s %-13s %-9s %9.1f%% %12.1f %10.1f %12.0f\n",
                protocolName(cells[i].protocol), cells[i].mobility.c_str(),
                cells[i].churn.c_str(), 100.0 * a.ratio.mean, a.latency.mean,
                a.avgPeak.mean, drops);
    aggs.push_back(a);
    downDrops.push_back(drops);
  }

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"mobility_matrix\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"seeds_per_cell\": %d,\n", runs);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    std::fprintf(out,
                 "    {\"protocol\": \"%s\", \"mobility\": \"%s\", "
                 "\"churn\": \"%s\", \"delivery_ratio\": %.6f, "
                 "\"latency_s\": %.3f, \"avg_peak_storage\": %.3f, "
                 "\"radio_down_drops\": %.0f}%s\n",
                 protocolName(cells[i].protocol), cells[i].mobility.c_str(),
                 cells[i].churn.c_str(), aggs[i].ratio.mean,
                 aggs[i].latency.mean, aggs[i].avgPeak.mean, downDrops[i],
                 i + 1 < aggs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", outPath.c_str());
  return 0;
}
