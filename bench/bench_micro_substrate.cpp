/// Substrate micro-benchmarks (google-benchmark): exact predicates,
/// Delaunay construction, LDTG construction, event-queue throughput,
/// random-waypoint evaluation and MAC saturation. These characterize the
/// costs behind every scenario second.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "geometry/delaunay.hpp"
#include "geometry/predicates.hpp"
#include "mac/mac.hpp"
#include "mobility/mobility.hpp"
#include "net/world.hpp"
#include "phy/propagation.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "spanner/ldtg.hpp"

namespace {

using glr::geom::Point2;

std::vector<Point2> randomPoints(int n, std::uint64_t seed = 7) {
  glr::sim::Rng rng{seed};
  std::vector<Point2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

void BM_Orient2dFiltered(benchmark::State& state) {
  const auto pts = randomPoints(1000);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = pts[i % 1000];
    const auto& b = pts[(i + 331) % 1000];
    const auto& c = pts[(i + 677) % 1000];
    benchmark::DoNotOptimize(glr::geom::orient2d(a, b, c));
    ++i;
  }
}
BENCHMARK(BM_Orient2dFiltered);

void BM_Orient2dExactPath(benchmark::State& state) {
  // Collinear points force the exact-arithmetic fallback every call.
  const Point2 a{0.5, 0.5}, b{12.0, 12.0}, c{24.0, 24.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(glr::geom::orient2d(a, b, c));
  }
}
BENCHMARK(BM_Orient2dExactPath);

void BM_Incircle(benchmark::State& state) {
  const auto pts = randomPoints(1000);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(glr::geom::incircle(
        pts[i % 997], pts[(i + 31) % 997], pts[(i + 61) % 997],
        pts[(i + 97) % 997]));
    ++i;
  }
}
BENCHMARK(BM_Incircle);

void BM_DelaunayBuild(benchmark::State& state) {
  const auto pts = randomPoints(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(glr::geom::Delaunay::build(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DelaunayBuild)->Arg(10)->Arg(30)->Arg(100)->Arg(300)->Complexity();

void BM_LdtgGlobalBuild(benchmark::State& state) {
  const auto pts = randomPoints(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(glr::spanner::buildLdtg(pts, 250.0, 2));
  }
}
BENCHMARK(BM_LdtgGlobalBuild)->Arg(50)->Arg(100);

void BM_LocalSpannerNeighbors(benchmark::State& state) {
  // The per-check cost each GLR node pays: local view of ~25 nodes.
  const auto pts = randomPoints(25, 11);
  std::vector<glr::spanner::KnownNode> known;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    known.push_back({static_cast<int>(i), pts[i],
                     glr::geom::dist(pts[0], pts[i]) <= 300.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        glr::spanner::localSpannerNeighbors(0, pts[0], known, 300.0, true));
  }
}
BENCHMARK(BM_LocalSpannerNeighbors);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    glr::sim::Simulator sim;
    glr::sim::Rng rng{3};
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule(rng.uniform(0.0, 100.0), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_RandomWaypointQuery(benchmark::State& state) {
  glr::mobility::RandomWaypoint m{{1500, 300}, 0.1, 20.0, 0.0, {10, 10},
                                  glr::sim::Rng{5}};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.37;
    benchmark::DoNotOptimize(m.positionAt(t));
  }
}
BENCHMARK(BM_RandomWaypointQuery);

void BM_MacSaturatedPair(benchmark::State& state) {
  // End-to-end MAC throughput: one saturated unicast pair, 1000-byte
  // payloads at 1 Mbps. items/s approximates deliverable packets/s.
  for (auto _ : state) {
    glr::sim::Simulator sim;
    glr::phy::TwoRayGround model;
    glr::phy::RadioParams radio;
    glr::net::World world{sim, model, radio, glr::mac::MacParams{}};
    world.addNode(
        std::make_unique<glr::mobility::StaticMobility>(Point2{0, 0}),
        glr::sim::Rng{1});
    world.addNode(
        std::make_unique<glr::mobility::StaticMobility>(Point2{100, 0}),
        glr::sim::Rng{2});
    int delivered = 0;
    world.macOf(1).setReceiveCallback(
        [&delivered](const glr::net::Packet&, int) { ++delivered; });
    for (int i = 0; i < 100; ++i) {
      glr::net::Packet p;
      p.bytes = 1000;
      p.kind = "x";
      world.macOf(0).send(std::move(p), 1);
    }
    sim.run(10.0);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MacSaturatedPair);

}  // namespace

BENCHMARK_MAIN();
