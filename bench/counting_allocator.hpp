#pragma once
/// \file counting_allocator.hpp
/// Global-allocator instrumentation shared by the heap-profile smoke
/// (bench_hotpath --max-allocs) and the zero-allocation steady-state test
/// (tests/test_hotpath.cpp): every allocation in the including binary bumps
/// one relaxed counter. Deallocation is not counted — the assertions are
/// about allocator traffic, and zero news implies zero deletes of new
/// memory.
///
/// IMPORTANT: replacement operator new/delete must not be inline, so this
/// header DEFINES them — include it from exactly one translation unit per
/// binary (both current users are single-TU executables).

#include <atomic>
#include <cstdlib>
#include <new>

namespace glr::benchsupport {

inline std::atomic<long long> gAllocs{0};

inline void* countedAlloc(std::size_t n) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc{};
}

inline void* countedAlignedAlloc(std::size_t n, std::size_t align) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc{};
}

inline long long allocCount() {
  return gAllocs.load(std::memory_order_relaxed);
}

}  // namespace glr::benchsupport

void* operator new(std::size_t n) {
  return glr::benchsupport::countedAlloc(n);
}
void* operator new[](std::size_t n) {
  return glr::benchsupport::countedAlloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return glr::benchsupport::countedAlignedAlloc(n,
                                                static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return glr::benchsupport::countedAlignedAlloc(n,
                                                static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
