/// Figure 4 reproduction: average delivery latency vs number of messages in
/// transit at 50 m radius, GLR vs epidemic. Paper: both rise with load;
/// epidemic slows down as contention grows (its curve reaches ~170 s at
/// 2000 messages).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 4: latency vs messages in transit (50 m radius)",
         "latency rises with load for both; epidemic suffers contention");

  const std::vector<int> counts = paperScale()
                                      ? std::vector<int>{400, 890, 1400, 1980}
                                      : std::vector<int>{200, 400, 890};
  std::vector<ScenarioConfig> grid;  // [GLR n0, Epi n0, GLR n1, ...]
  for (const int n : counts) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, 50.0);
    g.numMessages = n;
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    grid.push_back(g);
    grid.push_back(e);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "fig4");

  std::printf(
      "\nmessages | GLR ratio | GLR latency (s) | Epidemic ratio | Epidemic "
      "latency (s)\n");
  std::printf(
      "---------+-----------+-----------------+----------------+-------------"
      "--------\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const Agg& ga = aggs[2 * i];
    const Agg& ea = aggs[2 * i + 1];
    std::printf("  %5d  | %-9s | %-15s | %-14s | %s\n", counts[i],
                fmtPct(ga.ratio.mean).c_str(), fmtCI(ga.latency, 1).c_str(),
                fmtPct(ea.ratio.mean).c_str(), fmtCI(ea.latency, 1).c_str());
  }
  std::printf(
      "\nExpected shape: latency grows with messages in transit for both\n"
      "protocols (paper Figure 4). Note: with unlimited per-node storage our\n"
      "epidemic baseline is latency-strong at 50 m (flooding is\n"
      "latency-optimal given infinite resources); GLR's advantages at 50 m\n"
      "are storage (Tables 4/5) and delivery under storage limits (Fig. 7).\n");
  return 0;
}
