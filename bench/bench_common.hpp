#pragma once
/// \file bench_common.hpp
/// Shared support for the paper-reproduction benches.
///
/// Every bench prints the paper's reported numbers next to our measured
/// `mean ± CI90` so the shape comparison is one glance. Default scale is
/// reduced for wall-clock sanity (fewer seeds, shorter horizon, fewer
/// messages); set GLR_PAPER_SCALE=1 for the paper's full parameters and
/// GLR_BENCH_RUNS=<n> to override the seed count.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "experiment/tables.hpp"
#include "stats/summary.hpp"

namespace glr::bench {

using experiment::fmt;
using experiment::fmtCI;
using experiment::fmtPct;
using experiment::paperScale;
using experiment::Protocol;
using experiment::runScenarioSeeds;
using experiment::ScenarioConfig;
using experiment::ScenarioResult;

/// Aggregated multi-seed results with 90% confidence intervals.
struct Agg {
  stats::ConfidenceInterval ratio;
  stats::ConfidenceInterval latency;
  stats::ConfidenceInterval hops;
  stats::ConfidenceInterval maxPeak;
  stats::ConfidenceInterval avgPeak;
  double collisions = 0;
  double wallSeconds = 0;
};

inline Agg aggregate(const std::vector<ScenarioResult>& rs) {
  Agg a;
  a.ratio = stats::meanCI(
      experiment::metricAcross(rs, &ScenarioResult::deliveryRatio));
  a.latency =
      stats::meanCI(experiment::metricAcross(rs, &ScenarioResult::avgLatency));
  a.hops =
      stats::meanCI(experiment::metricAcross(rs, &ScenarioResult::avgHops));
  a.maxPeak = stats::meanCI(
      experiment::metricAcross(rs, &ScenarioResult::maxPeakStorage));
  a.avgPeak = stats::meanCI(
      experiment::metricAcross(rs, &ScenarioResult::avgPeakStorage));
  for (const auto& r : rs) {
    a.collisions += static_cast<double>(r.collisions) / rs.size();
    a.wallSeconds += r.wallSeconds;
  }
  return a;
}

inline Agg runAgg(const ScenarioConfig& cfg, int runs) {
  return aggregate(runScenarioSeeds(cfg, runs));
}

/// Declarative sweep: a bench lists every row's config up front, the
/// engine executes the whole (grid x seeds) cell set across
/// GLR_BENCH_THREADS workers, and the Aggs come back in grid order — one
/// per config, aggregated post-join from index-ordered results so the
/// printed `mean ± CI` is bit-identical to the old hand-rolled serial
/// loops at any thread count.
inline std::vector<Agg> sweepAgg(const std::vector<ScenarioConfig>& grid,
                                 int runs, const char* label = "sweep") {
  experiment::SweepRunner::Options opts;  // default thread count; the
  opts.progress = true;                   // runner caps workers at the
  opts.label = label;                     // cell count itself
  experiment::SweepRunner runner{opts};
  std::vector<Agg> out;
  out.reserve(grid.size());
  for (const auto& rs : runner.run(grid, runs)) out.push_back(aggregate(rs));
  return out;
}

/// Paper Table 1 defaults, scaled down unless GLR_PAPER_SCALE=1.
inline ScenarioConfig benchConfig(Protocol p, double radius) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.radius = radius;
  if (paperScale()) {
    cfg.numMessages = 1980;
    cfg.simTime = 3800.0;
  } else {
    cfg.numMessages = 400;
    cfg.simTime = 1200.0;
  }
  return cfg;
}

inline int defaultRuns() { return experiment::benchRuns(2); }

/// Reads one "<key>:  <n> kB" line from /proc/self/status; 0 if absent
/// (non-Linux platforms — the scale bench then skips its memory asserts).
inline std::size_t procStatusBytes(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t keyLen = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, keyLen) == 0 && line[keyLen] == ':') {
      kb = std::strtoull(line + keyLen + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Peak resident set size of this process so far (VmHWM).
inline std::size_t peakRssBytes() { return procStatusBytes("VmHWM"); }
/// Current resident set size (VmRSS).
inline std::size_t currentRssBytes() { return procStatusBytes("VmRSS"); }

/// Node-count override shared by the benches: GLR_BENCH_NODES in the
/// environment, typically mirrored by a --nodes flag. Returns `fallback`
/// when unset or unparseable.
inline int benchNodes(int fallback) {
  const char* env = std::getenv("GLR_BENCH_NODES");
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v >= 2 ? static_cast<int>(v) : fallback;
}

/// Rescales a scenario to `nodes` at constant node density: the area grows
/// with the population (aspect ratio preserved) and the traffic subset
/// keeps its share. Radio range, speeds and the rest are untouched, so the
/// local picture every node sees — expected degree, contact rate — matches
/// the base config at any population.
inline void scalePopulation(ScenarioConfig& cfg, int nodes) {
  if (nodes == cfg.numNodes) return;
  const double grow =
      static_cast<double>(nodes) / static_cast<double>(cfg.numNodes);
  const double lin = std::sqrt(grow);
  cfg.areaWidth *= lin;
  cfg.areaHeight *= lin;
  const double trafficShare = static_cast<double>(cfg.trafficNodes) /
                              static_cast<double>(cfg.numNodes);
  cfg.trafficNodes = std::max(
      2, std::min(nodes, static_cast<int>(trafficShare * nodes)));
  cfg.numNodes = nodes;
}

inline void banner(const char* title, const char* paperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paperRef);
  std::printf("Scale: %s (GLR_PAPER_SCALE=1 for full scale), %d seed(s), "
              "up to %u thread(s) (GLR_BENCH_THREADS; capped at the cell "
              "count)\n",
              paperScale() ? "paper" : "reduced", defaultRuns(),
              experiment::ThreadPool::defaultThreads());
  std::printf("================================================================\n");
}

}  // namespace glr::bench
