/// \file bench_scale.cpp
/// City-scale population sweep: how far the per-node-count scaling path
/// (tiled receiver index + calendar event queue + population pre-sizing)
/// carries the simulator on one machine.
///
/// Cells run at *constant density* (the area grows with the population, so
/// every node sees the paper's local picture) with a fixed small traffic
/// subset — the overwhelming majority of nodes are idle, so the recorded
/// resident bytes/node is effectively the idle-node footprint (see
/// kIdleBytesPerNodeCeiling). Per cell the JSON records events/sec and resident
/// bytes/node ((process peak RSS during the cell - RSS at cell start) /
/// nodes; cells run in ascending size so each cell owns the peak it sets).
///
/// Before the sweep, an A/B matrix at the smallest size asserts that every
/// {heap4, calendar} x {snapshot, tiled} combination produces bit-identical
/// ScenarioResults — the scaling path is an optimisation, not a model
/// change — so the large cells can run calendar+tiled with their numbers
/// meaning the same thing the golden path's would.
///
/// Usage: bench_scale [--quick] [--nodes N] [--out FILE.json]
///   --quick   CI mode: 1k + 10k cells only, short horizons, and a hard
///             assert that the 10k cell stays under the committed
///             resident-bytes-per-node ceiling.
///   --nodes   run one extra cell at exactly N nodes (also GLR_BENCH_NODES).
///   --out     machine-readable results (default BENCH_scale.json).
/// Full mode sweeps 1k / 10k / 100k full runs plus a 1M-node smoke cell.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

// Sanitizer shadow memory multiplies RSS by an arbitrary factor, so the
// idle-memory ceiling is only meaningful in plain builds; sanitized CI legs
// still get the A/B bit-identical gate and the completion check.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define GLR_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GLR_BENCH_SANITIZED 1
#endif
#endif
#ifndef GLR_BENCH_SANITIZED
#define GLR_BENCH_SANITIZED 0
#endif

namespace {

using glr::bench::benchNodes;
using glr::bench::currentRssBytes;
using glr::bench::peakRssBytes;
using glr::bench::scalePopulation;
using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::KernelQueue;
using glr::experiment::Protocol;
using glr::experiment::runScenario;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::experiment::SpatialIndexMode;

/// Idle-node resident ceiling the scale path commits to (bytes/node),
/// asserted on every >=10k cell. The roadmap's aspirational figure is 1 KB;
/// the measured floor of the current architecture is ~2.6 KB of constructed
/// state per node (MAC 696 B including its inline recent-tx ring, GLR agent
/// ~1 KB, mobility model + world entry) plus ~2 KB of bounded steady-state
/// tables (the two-hop neighbor knowledge the LDTG construction needs,
/// location observations, MAC dedup) and the kernel's event arena. Measured
/// at 10k nodes: ~5.4 KB/node after 10 sim-s, saturating near ~6.2 KB at
/// 30 sim-s as the eviction horizons fill — so the committed, regression-
/// guarded budget is 7 KB. What the ceiling really polices is boundedness:
/// before the eviction + calendar-calibration fixes in this change the same
/// cell measured 8.6 KB/node after 10 sim-s and grew without bound
/// (~350 B/node per sim-second); now growth stops at the eviction horizon.
/// Closing the gap to 1 KB needs SoA-pooled agents/MACs (roadmap item).
constexpr double kIdleBytesPerNodeCeiling = 7168.0;

/// Base config every cell scales from: the paper's GLR setup with a fixed
/// small traffic subset (45 senders regardless of population) so added
/// nodes are idle relays.
ScenarioConfig baseConfig(int nodes, double simTime, int messages) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.radius = 100.0;
  cfg.seed = 7;
  scalePopulation(cfg, nodes);
  cfg.trafficNodes = std::min(nodes, 45);
  cfg.simTime = simTime;
  cfg.numMessages = messages;
  cfg.kernelQueue = KernelQueue::kCalendar;
  cfg.spatialIndex = SpatialIndexMode::kTiled;
  // Steady-state table bounds: without eviction every node accumulates a
  // record for everything it has ever heard (~300 B/node per sim-second at
  // city densities), which would swamp the idle-node budget on any long
  // horizon. Applied identically across the A/B matrix, so the
  // bit-identical gate still covers the queue/index combinations.
  cfg.neighborEvictAfterFactor = 2.0;
  cfg.locationEvictAfter = 15.0;
  return cfg;
}

struct Cell {
  int nodes = 0;
  double simTime = 0.0;
  ScenarioResult result;
  double wall = 0.0;
  double eventsPerSec = 0.0;
  double bytesPerNode = 0.0;
  bool smoke = false;  // 1M cell: completion matters, numbers are indicative
};

Cell runCell(int nodes, double simTime, int messages, bool smoke) {
  Cell c;
  c.nodes = nodes;
  c.simTime = simTime;
  c.smoke = smoke;
  const std::size_t rss0 = currentRssBytes();
  const auto wall0 = std::chrono::steady_clock::now();
  c.result = runScenario(baseConfig(nodes, simTime, messages));
  c.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall0)
               .count();
  const std::size_t hwm = peakRssBytes();
  c.eventsPerSec = static_cast<double>(c.result.eventsExecuted) / c.wall;
  c.bytesPerNode = hwm > rss0 ? static_cast<double>(hwm - rss0) /
                                    static_cast<double>(nodes)
                              : 0.0;
  std::printf(
      "%8d nodes  %6.1f sim-s  %10llu events  %7.2f wall-s  "
      "%8.0f ev/s  %7.1f B/node%s\n",
      nodes, simTime,
      static_cast<unsigned long long>(c.result.eventsExecuted), c.wall,
      c.eventsPerSec, c.bytesPerNode, smoke ? "  [smoke]" : "");
  return c;
}

/// Runs the {queue} x {index} matrix at one size and asserts every combo
/// reproduces the golden-path (heap4 + snapshot) result bit for bit.
bool abMatrixIdentical(int nodes, double simTime, int messages) {
  ScenarioConfig cfg = baseConfig(nodes, simTime, messages);
  cfg.kernelQueue = KernelQueue::kHeap4;
  cfg.spatialIndex = SpatialIndexMode::kSnapshot;
  const ScenarioResult golden = runScenario(cfg);
  bool ok = true;
  for (const KernelQueue q : {KernelQueue::kHeap4, KernelQueue::kCalendar}) {
    for (const SpatialIndexMode s :
         {SpatialIndexMode::kSnapshot, SpatialIndexMode::kTiled}) {
      if (q == KernelQueue::kHeap4 && s == SpatialIndexMode::kSnapshot) {
        continue;
      }
      cfg.kernelQueue = q;
      cfg.spatialIndex = s;
      const ScenarioResult r = runScenario(cfg);
      const bool same = bitIdenticalIgnoringWall(golden, r);
      std::printf("A/B %dn %s+%s: %s\n", nodes,
                  q == KernelQueue::kCalendar ? "calendar" : "heap4",
                  s == SpatialIndexMode::kTiled ? "tiled" : "snapshot",
                  same ? "bit-identical" : "DIVERGED");
      ok = ok && same;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int extraNodes = benchNodes(0);
  std::string outPath = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      extraNodes = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--nodes N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("scale bench (%s mode): calendar queue + tiled index\n",
              quick ? "quick" : "full");

  // The A/B gate first: if any combination diverges, the sweep numbers
  // would not be comparable to the golden path and the bench must fail.
  const bool abOk = abMatrixIdentical(1000, quick ? 20.0 : 60.0, 40);
  if (!abOk) {
    std::fprintf(stderr, "bench_scale: A/B matrix diverged — aborting\n");
    return 1;
  }

  // Ascending cell sizes so each cell's RSS high-water delta is its own.
  std::vector<Cell> cells;
  if (quick) {
    cells.push_back(runCell(1000, 20.0, 40, false));
    cells.push_back(runCell(10000, 10.0, 40, false));
  } else {
    cells.push_back(runCell(1000, 60.0, 60, false));
    cells.push_back(runCell(10000, 30.0, 60, false));
    cells.push_back(runCell(100000, 10.0, 60, false));
  }
  if (extraNodes >= 2) {
    cells.push_back(runCell(extraNodes, quick ? 10.0 : 20.0, 40, false));
  }
  if (!quick) {
    // 1M-node smoke: construction + a short event horizon; completing at
    // all (and under the idle-memory ceiling) is the acceptance bar.
    cells.push_back(runCell(1000000, 1.5, 0, true));
  }

  // Idle-memory ceiling: meaningful from 10k nodes up (smaller cells are
  // dominated by fixed per-run overhead, not per-node state).
  bool memOk = true;
  for (const Cell& c : cells) {
    if (GLR_BENCH_SANITIZED != 0) {
      std::printf("idle-memory ceiling skipped (sanitized build)\n");
      break;
    }
    if (c.nodes < 10000 || c.bytesPerNode <= 0.0) continue;
    if (c.bytesPerNode > kIdleBytesPerNodeCeiling) {
      std::fprintf(stderr,
                   "bench_scale: %d-node cell resident %.1f bytes/node "
                   "exceeds the %.0f B idle ceiling\n",
                   c.nodes, c.bytesPerNode, kIdleBytesPerNodeCeiling);
      memOk = false;
    }
  }
  if (!memOk) return 1;

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"scale\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out,
               "  \"path\": \"calendar queue + tiled receiver index\",\n");
  std::fprintf(out, "  \"ab_matrix_bit_identical\": true,\n");
  std::fprintf(out, "  \"idle_bytes_per_node_ceiling\": %.0f,\n",
               kIdleBytesPerNodeCeiling);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"sim_seconds\": %.1f, "
                 "\"events\": %llu, \"wall_seconds\": %.2f, "
                 "\"events_per_sec\": %.0f, "
                 "\"resident_bytes_per_node\": %.1f, \"smoke\": %s}%s\n",
                 c.nodes, c.simTime,
                 static_cast<unsigned long long>(c.result.eventsExecuted),
                 c.wall, c.eventsPerSec, c.bytesPerNode,
                 c.smoke ? "true" : "false",
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
