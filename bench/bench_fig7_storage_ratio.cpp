/// Figure 7 reproduction: delivery ratio vs per-node storage limit at 50 m.
/// Paper (1980 messages in transit): epidemic's ratio starts dropping below
/// ~200 messages/node and collapses toward zero at small buffers; GLR holds
/// ~100% even at 100 messages/node.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 7: delivery ratio vs per-node storage limit (50 m)",
         "epidemic degrades below ~200 msgs/node; GLR holds ~100% at 100");

  const std::vector<std::size_t> limits = {25, 50, 100, 150, 200};
  std::vector<ScenarioConfig> grid;  // [GLR l0, Epi l0, GLR l1, ...]
  for (const std::size_t limit : limits) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, 50.0);
    g.storageLimit = limit;
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    grid.push_back(g);
    grid.push_back(e);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "fig7");

  std::printf("\nstorage/node | GLR ratio      | Epidemic ratio\n");
  std::printf("-------------+----------------+----------------\n");
  for (std::size_t i = 0; i < limits.size(); ++i) {
    std::printf("   %6zu    | %-14s | %s\n", limits[i],
                fmtPct(aggs[2 * i].ratio.mean).c_str(),
                fmtPct(aggs[2 * i + 1].ratio.mean).c_str());
  }
  std::printf(
      "\nExpected shape: GLR's controlled flooding keeps delivery high under\n"
      "tight buffers while epidemic, which stores everything everywhere,\n"
      "drops messages and loses delivery (paper Figure 7).\n");
  return 0;
}
