/// Figure 7 reproduction: delivery ratio vs per-node storage limit at 50 m.
/// Paper (1980 messages in transit): epidemic's ratio starts dropping below
/// ~200 messages/node and collapses toward zero at small buffers; GLR holds
/// ~100% even at 100 messages/node.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace glr::bench;

int main() {
  banner("Figure 7: delivery ratio vs per-node storage limit (50 m)",
         "epidemic degrades below ~200 msgs/node; GLR holds ~100% at 100");

  const int runs = defaultRuns();
  const std::vector<std::size_t> limits = {25, 50, 100, 150, 200};
  std::printf("\nstorage/node | GLR ratio      | Epidemic ratio\n");
  std::printf("-------------+----------------+----------------\n");
  for (const std::size_t limit : limits) {
    ScenarioConfig g = benchConfig(Protocol::kGlr, 50.0);
    g.storageLimit = limit;
    ScenarioConfig e = g;
    e.protocol = Protocol::kEpidemic;
    const Agg ga = runAgg(g, runs);
    const Agg ea = runAgg(e, runs);
    std::printf("   %6zu    | %-14s | %s\n", limit,
                fmtPct(ga.ratio.mean).c_str(), fmtPct(ea.ratio.mean).c_str());
  }
  std::printf(
      "\nExpected shape: GLR's controlled flooding keeps delivery high under\n"
      "tight buffers while epidemic, which stores everything everywhere,\n"
      "drops messages and loses delivery (paper Figure 7).\n");
  return 0;
}
