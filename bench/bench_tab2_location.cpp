/// Table 2 reproduction: message delivery under different destination
/// location knowledge. The paper's rows (100% delivery within 3800 s):
///
///   copies | location knowledge | latency      | hops        | storage
///   1      | all nodes know     | 120.2 ± 8.5  | 14.9 ± 0.3  | 38.3 ± 1.4
///   3      | only source knows  | 149.7 ± 9.6  | 17.3 ± 0.4  | 43.6 ± 1.4
///   1      | only source knows  | 156.1 ± 11.2 | 18.0 ± 0.3  | 40.3 ± 2.0
///   3      | no nodes know      | 212.4 ± 16.6 | 23.1 ± 0.5  | 50.9 ± 3.8
///
/// Expected ordering: oracle-1copy fastest; 3-copies-source-knows beats
/// 1-copy-source-knows (controlled flooding reduces latency); none-know
/// slowest with the most hops/storage.

#include <cstdio>

#include "bench_common.hpp"

using namespace glr::bench;
using glr::core::LocationMode;

int main() {
  banner("Table 2: delivery under location information availability (GLR)",
         "rows ordered oracle-1 < source-3 < source-1 < none-3 in latency");

  struct Row {
    int copies;
    LocationMode mode;
    const char* label;
    const char* paper;
  };
  const Row rows[] = {
      {1, LocationMode::kOracleAll, "1 copy, all nodes know ",
       "lat 120.2±8.5  hops 14.9 storage 38.3"},
      {3, LocationMode::kSourceKnows, "3 copies, source knows ",
       "lat 149.7±9.6  hops 17.3 storage 43.6"},
      {1, LocationMode::kSourceKnows, "1 copy, source knows   ",
       "lat 156.1±11.2 hops 18.0 storage 40.3"},
      {3, LocationMode::kNoneKnow, "3 copies, no nodes know",
       "lat 212.4±16.6 hops 23.1 storage 50.9"},
  };

  // The paper's location study is in the sparse regime (its latencies match
  // the 3800 s / multi-copy setting); we use the 100 m scenario. One config
  // per row, swept as a single cell grid.
  std::vector<ScenarioConfig> grid;
  for (const Row& row : rows) {
    ScenarioConfig cfg = benchConfig(Protocol::kGlr, 100.0);
    cfg.copiesOverride = row.copies;
    cfg.locationMode = row.mode;
    grid.push_back(cfg);
  }
  const std::vector<Agg> aggs = sweepAgg(grid, defaultRuns(), "tab2");

  std::printf(
      "\nconfiguration           | ratio  | latency (s)   | hops        | avg "
      "peak storage | paper\n");
  std::printf(
      "------------------------+--------+---------------+-------------+------"
      "-----------+------\n");
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Agg& a = aggs[i];
    std::printf("%s | %-6s | %-13s | %-11s | %-15s | %s\n", rows[i].label,
                fmtPct(a.ratio.mean, 1).c_str(), fmtCI(a.latency, 1).c_str(),
                fmtCI(a.hops, 1).c_str(), fmtCI(a.avgPeak, 1).c_str(),
                rows[i].paper);
  }
  std::printf(
      "\nExpected shape: latency ordering matches the paper's rows;\n"
      "none-know needs the most hops and storage.\n");
  return 0;
}
