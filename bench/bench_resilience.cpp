/// \file bench_resilience.cpp
/// Adversarial resilience: misbehaving-node sweep. A seeded fraction of the
/// population runs a blackhole — it accepts custody and copies, silently
/// drops every relayed bundle and never acks — and every bundle carries a
/// finite TTL, so time wasted on custody rounds into a sink converts into
/// counted expiry loss. The sweep drives the misbehaving fraction from 0 to
/// 40% for GLR with and without its custody-failure recovery sublayer
/// (suspicion scoring + suspect-avoiding reroute + bounded spray fallback)
/// against the epidemic and spray-and-wait baselines, under two mobility
/// models.
///
/// Every cell is audited for uncounted loss: created must not exceed
/// delivered + still-buffered + still-queued + the sum of counted drop
/// channels (adversary drops, evictions, expiries, MAC losses). A violation
/// is fatal — an adversary that can make bundles vanish without a counter
/// incrementing is a bookkeeping bug, not a result.
///
/// Usage: bench_resilience [--quick] [--out FILE.json]
///   --quick  CI mode: tiny cells, plus a 1-vs-2-thread bit-identical
///            cross-check over the whole grid (adversary assignment,
///            greyhole draws, suspicion state and spray fallbacks under the
///            parallel engine).
///   --out    machine-readable results (default BENCH_resilience.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"

namespace {

using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::Protocol;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::experiment::SweepRunner;

struct Variant {
  const char* name;
  Protocol protocol;
  bool recovery;  // GLR custody-failure detection + spray fallback
};

constexpr Variant kVariants[] = {
    {"GLR", Protocol::kGlr, false},
    {"GLR+rec", Protocol::kGlr, true},
    {"Epidemic", Protocol::kEpidemic, false},
    {"SprayAndWait", Protocol::kSprayAndWait, false},
};

constexpr const char* kMobilities[] = {"waypoint", "direction"};

ScenarioConfig cellConfig(const Variant& v, const char* mobility,
                          double fraction, bool quick) {
  ScenarioConfig cfg;
  cfg.protocol = v.protocol;
  cfg.mobility.model = mobility;
  cfg.glrRecovery = v.recovery;
  if (quick) {
    cfg.numNodes = 16;
    cfg.trafficNodes = 14;
    cfg.radius = 150.0;
    cfg.simTime = 80.0;
    cfg.numMessages = 40;
    cfg.messageTtl = 30.0;
  } else {
    cfg.numNodes = 100;
    cfg.trafficNodes = 75;
    cfg.radius = 115.0;
    cfg.simTime = 400.0;
    cfg.numMessages = 200;
    // Finite lifetime is what makes misbehavior measurable: custody GLR
    // never *loses* a bundle to a blackhole (the sender's cached copy
    // times out and returns to store), it only wastes rounds — the TTL
    // converts wasted rounds into counted expiry loss. Pedestrian speeds
    // keep a blackhole sitting as the geometrically-best neighbor for
    // many custody rounds instead of wandering away within one, so the
    // sweep measures detection-and-reroute rather than mobility luck.
    cfg.speedMin = 0.5;
    cfg.speedMax = 1.0;
    cfg.messageTtl = 28.0;
    // A silent sink's only signature is the missing ack, so the ack
    // timeout is the detector's clock: keep it tight, suspect a hop and
    // start cloning after a single silent custody round, leaving the
    // bundle most of its lifetime for the detour.
    cfg.cacheTimeout = 4.0;
    cfg.glrSuspicionThreshold = 1;
    cfg.glrRecoveryAfterFailures = 1;
    cfg.glrRecoveryFanout = 6;
    cfg.glrRecoveryCooldown = 4.0;
    cfg.glrSuspicionTtl = 1000.0;
  }
  if (fraction > 0.0) {
    cfg.faults.enabled = true;
    cfg.faults.params.adversary.blackholeFraction = fraction;
  }
  return cfg;
}

bool lossAccounted(const ScenarioResult& r) {
  const std::uint64_t countedDrops =
      r.advBlackholeDrops + r.advGreyholeDrops + r.advSelfishRefusals +
      r.bufferEvictions + r.expiredDrops + r.macQueueDrops + r.macRetryDrops +
      r.macRadioDownDrops;
  return r.created <=
         r.delivered + r.bufferedAtEnd + r.macQueueAtEnd + countedDrops;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<double> fractions =
      quick ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4};
  const int runs = glr::experiment::benchRuns(quick ? 1 : 3);

  std::vector<ScenarioConfig> grid;
  for (const char* mob : kMobilities) {
    for (const Variant& v : kVariants) {
      for (const double f : fractions) {
        grid.push_back(cellConfig(v, mob, f, quick));
      }
    }
  }

  glr::bench::banner("Resilience sweep: misbehaving-node fraction vs. delivery",
                     "custody-failure detection and recovery under blackholes");
  std::printf("%zu cells (%zu mobilities x %zu variants x %zu fractions), "
              "%d seed(s) each\n\n",
              grid.size(), std::size(kMobilities), std::size(kVariants),
              fractions.size(), runs);

  SweepRunner::Options opts;
  opts.progress = true;
  opts.label = "resilience";
  if (quick) opts.threads = 1;  // doubles as the serial determinism baseline
  SweepRunner runner{opts};
  const std::vector<std::vector<ScenarioResult>> results =
      runner.run(grid, runs);

  if (quick) {
    SweepRunner::Options pairOpts;
    pairOpts.threads = 2;
    SweepRunner pairRunner{pairOpts};
    const auto threaded = pairRunner.run(grid, runs);
    for (std::size_t g = 0; g < results.size(); ++g) {
      for (std::size_t s = 0; s < results[g].size(); ++s) {
        if (!bitIdenticalIgnoringWall(results[g][s], threaded[g][s])) {
          std::fprintf(stderr,
                       "FATAL: cell %zu seed %zu diverged across thread "
                       "counts — adversarial determinism broken\n",
                       g, s);
          return 1;
        }
      }
    }
    std::printf("determinism: 1-thread and 2-thread grids bit-identical "
                "(%zu cells)\n\n",
                grid.size() * results.front().size());

    // Per-cell event-count pins (seed 0), same contract as the mobility
    // matrix: a drifted count means the adversarial scenario changed and
    // the cell's numbers are not comparable to history. Regenerate with
    // GLR_QUICK_PIN_DUMP=1.
    static constexpr std::uint64_t kQuickEventPins[] = {
        111646, 34211, 124541, 45664, 21258, 21258, 24942, 22675,
        87731,  62419, 111180, 84551, 14936, 14657, 18990, 16362,
    };
    static_assert(std::size(kQuickEventPins) == 16,
                  "one pin per quick resilience cell");
    if (std::getenv("GLR_QUICK_PIN_DUMP") != nullptr) {
      std::printf("kQuickEventPins = {");
      for (const auto& cell : results) {
        std::printf("%llu, ",
                    static_cast<unsigned long long>(
                        cell.front().eventsExecuted));
      }
      std::printf("}\n\n");
    } else if (grid.size() == std::size(kQuickEventPins)) {
      for (std::size_t g = 0; g < grid.size(); ++g) {
        if (results[g][0].eventsExecuted != kQuickEventPins[g]) {
          std::fprintf(stderr,
                       "FATAL: cell %zu executed %llu events, pinned %llu "
                       "— the measured adversarial scenario changed\n",
                       g,
                       static_cast<unsigned long long>(
                           results[g][0].eventsExecuted),
                       static_cast<unsigned long long>(kQuickEventPins[g]));
          return 1;
        }
      }
      std::printf("event pins: all %zu quick cells match the baked "
                  "event counts\n\n",
                  grid.size());
    }
  }

  // The no-uncounted-loss audit, per run, before any aggregation.
  for (std::size_t g = 0; g < results.size(); ++g) {
    for (std::size_t s = 0; s < results[g].size(); ++s) {
      if (!lossAccounted(results[g][s])) {
        std::fprintf(stderr,
                     "FATAL: cell %zu seed %zu lost bundles without a "
                     "counter — uncounted loss under adversaries\n",
                     g, s);
        return 1;
      }
    }
  }
  std::printf("loss accounting: every created bundle in every cell is "
              "delivered, still held, or in a counted drop channel\n\n");

  struct Row {
    double created = 0, delivered = 0, ratio = 0, latency = 0;
    double blackholeDrops = 0, expired = 0;
    double suspicions = 0, skips = 0, activations = 0, sprays = 0;
  };
  std::vector<Row> rows(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double n = static_cast<double>(results[i].size());
    Row& row = rows[i];
    for (const ScenarioResult& r : results[i]) {
      row.created += static_cast<double>(r.created) / n;
      row.delivered += static_cast<double>(r.delivered) / n;
      row.ratio += r.deliveryRatio / n;
      row.latency += r.avgLatency / n;
      row.blackholeDrops += static_cast<double>(r.advBlackholeDrops) / n;
      row.expired += static_cast<double>(r.expiredDrops) / n;
      row.suspicions += static_cast<double>(r.glrSuspicionsRaised) / n;
      row.skips += static_cast<double>(r.glrSuspectSkips) / n;
      row.activations += static_cast<double>(r.glrRecoveryActivations) / n;
      row.sprays += static_cast<double>(r.glrRecoverySprays) / n;
    }
  }

  const std::size_t perMob = std::size(kVariants) * fractions.size();
  for (std::size_t m = 0; m < std::size(kMobilities); ++m) {
    std::printf("mobility: %s\n", kMobilities[m]);
    std::printf("%-13s %9s %9s %9s %9s %9s %9s %9s %8s\n", "variant",
                "bad frac", "delivery", "latency", "bh drops", "expired",
                "suspects", "skips", "sprays");
    for (std::size_t v = 0; v < std::size(kVariants); ++v) {
      for (std::size_t f = 0; f < fractions.size(); ++f) {
        const std::size_t i = m * perMob + v * fractions.size() + f;
        const Row& row = rows[i];
        std::printf("%-13s %8.0f%% %8.1f%% %8.2fs %9.0f %9.0f %9.0f %9.0f "
                    "%8.0f\n",
                    kVariants[v].name, 100.0 * fractions[f], 100.0 * row.ratio,
                    row.latency, row.blackholeDrops, row.expired,
                    row.suspicions, row.skips, row.sprays);
      }
      std::printf("\n");
    }
  }

  // Headline: the recovery sublayer must actually rescue delivery. At a
  // 20% blackhole population, GLR+rec has to beat plain GLR by >= 1.5x
  // (full mode; the quick grid is too small to carry the claim).
  bool gateChecked = false;
  double worstGain = 0.0;
  if (!quick) {
    std::size_t fIdx = fractions.size();
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      if (fractions[f] == 0.2) fIdx = f;
    }
    if (fIdx < fractions.size()) {
      gateChecked = true;
      worstGain = 1e300;
      for (std::size_t m = 0; m < std::size(kMobilities); ++m) {
        const double plain = rows[m * perMob + 0 * fractions.size() + fIdx].ratio;
        const double rec = rows[m * perMob + 1 * fractions.size() + fIdx].ratio;
        const double gain = plain > 0.0 ? rec / plain : 1e300;
        std::printf("recovery gain @20%% blackholes, %s: %.3f (GLR+rec %.1f%% "
                    "vs GLR %.1f%%)\n",
                    kMobilities[m], gain, 100.0 * rec, 100.0 * plain);
        if (gain < worstGain) worstGain = gain;
      }
      if (worstGain < 1.5) {
        std::fprintf(stderr,
                     "FATAL: recovery gain %.3f < 1.5 at 20%% blackholes — "
                     "the fallback layer is not earning its keep\n",
                     worstGain);
        return 1;
      }
      std::printf("\n");
    }
  }

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"resilience\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"seeds_per_cell\": %d,\n", runs);
  if (gateChecked) {
    std::fprintf(out,
                 "  \"recovery_gain_at_20pct_blackholes\": %.3f,\n"
                 "  \"recovery_gain_floor\": 1.5,\n",
                 worstGain);
  }
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t m = 0; m < std::size(kMobilities); ++m) {
    for (std::size_t v = 0; v < std::size(kVariants); ++v) {
      for (std::size_t f = 0; f < fractions.size(); ++f) {
        const std::size_t i = m * perMob + v * fractions.size() + f;
        const Row& row = rows[i];
        std::fprintf(
            out,
            "    {\"mobility\": \"%s\", \"variant\": \"%s\", "
            "\"misbehaving_fraction\": %.2f, \"created\": %.1f, "
            "\"delivered\": %.1f, \"delivery_ratio\": %.6f, "
            "\"avg_latency_s\": %.3f, \"blackhole_drops\": %.1f, "
            "\"expired_drops\": %.1f, \"suspicions\": %.1f, "
            "\"suspect_skips\": %.1f, \"recovery_activations\": %.1f, "
            "\"recovery_sprays\": %.1f}%s\n",
            kMobilities[m], kVariants[v].name, fractions[f], row.created,
            row.delivered, row.ratio, row.latency, row.blackholeDrops,
            row.expired, row.suspicions, row.skips, row.activations,
            row.sprays, i + 1 < rows.size() ? "," : "");
      }
    }
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
