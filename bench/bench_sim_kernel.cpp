/// \file bench_sim_kernel.cpp
/// A/B microbenchmark of the event kernel: the allocation-free slab + 4-ary
/// heap kernel (`glr::sim::Simulator`) against the frozen pre-PR kernel
/// (`bench/legacy_simulator.hpp`: shared_ptr cancellation flags,
/// std::function closures, priority_queue of full events).
///
/// Three microbench shapes cover the kernel's hot paths, each driven by
/// identical RNG streams on both kernels so the event sequences match:
///   * schedule-drain  — bulk scheduling then a full drain (pure push/pop).
///   * timer-churn     — steady state at fixed queue depth: every fired
///                       event reschedules one successor (MAC beacons,
///                       periodic route checks).
///   * cancel-churn    — ack-timer pattern: every fired event schedules a
///                       successor plus a timeout that is cancelled before
///                       it can fire (MAC ACK timeouts, custody timers).
/// Plus an end-to-end `runScenario` timing on the mid-size GLR scenario the
/// determinism regression test pins.
///
/// Usage: bench_sim_kernel [--quick] [--out FILE.json]
///   --quick  CI mode: small event counts, skips the end-to-end scenario.
///   --out    write machine-readable results (default BENCH_kernel.json;
///            see README "Simulation kernel & performance").

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "legacy_simulator.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Capture payload mirroring the protocol stack's custody/cache timers
/// (`[this, key, sentAt]` in glr_agent.cpp): 24 bytes of state that ride in
/// every closure. Together with the context pointer this exceeds libstdc++
/// std::function's 16-byte small-object buffer — the legacy kernel heap-
/// allocates (and copy-allocates again on pop) for every such timer, while
/// it sits comfortably inside the slab kernel's 48-byte inline budget. This
/// is the case the scenario hot path hits millions of times.
struct TimerPayload {
  long long key;
  double deadline;
  int hop;
};

/// Executed-event count plus an order-sensitive checksum over the fired
/// payload keys: if the two kernels ever fired events in different orders,
/// the checksums diverge even though the counts cannot.
struct KernelRun {
  std::uint64_t executed = 0;
  std::uint64_t checksum = 0;
};

/// Bulk schedule `n` events at uniform random times, then drain.
template <class Sim>
KernelRun scheduleDrain(std::uint64_t n) {
  Sim sim;
  glr::sim::Rng rng{42};
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const TimerPayload p{static_cast<long long>(i), rng.uniform(0.0, 1000.0),
                         static_cast<int>(i & 7)};
    sim.schedule(p.deadline, [p, &sink] {
      sink = sink * 31 + static_cast<std::uint64_t>(p.key);
    });
  }
  sim.run();
  return {sim.eventsExecuted(), sink};
}

template <class Sim>
struct ChurnCtx {
  Sim& sim;
  glr::sim::Rng& rng;
  std::uint64_t remaining;
  std::uint64_t sink = 0;
};

/// Steady-state churn at queue depth `depth`: each fired event schedules its
/// replacement (periodic beacons / route checks) until `n` events have run.
template <class Sim>
std::uint64_t churnChecksum(ChurnCtx<Sim>& c, const TimerPayload& p) {
  return c.sink * 31 + static_cast<std::uint64_t>(p.key);
}

template <class Sim>
KernelRun timerChurn(std::uint64_t n, std::uint64_t depth) {
  Sim sim;
  glr::sim::Rng rng{43};
  ChurnCtx<Sim> ctx{sim, rng, n};
  struct Tick {
    static void fire(ChurnCtx<Sim>& c, const TimerPayload& p) {
      c.sink = churnChecksum(c, p);
      if (c.remaining == 0) return;
      --c.remaining;
      const TimerPayload np{p.key + 1, c.rng.uniform(0.0, 1.0), p.hop + 1};
      c.sim.schedule(np.deadline, [&c, np] { fire(c, np); });
    }
  };
  for (std::uint64_t i = 0; i < depth; ++i) {
    const TimerPayload p{static_cast<long long>(i), rng.uniform(0.0, 1.0), 0};
    sim.schedule(p.deadline, [&ctx, p] { Tick::fire(ctx, p); });
  }
  sim.run();
  return {sim.eventsExecuted(), ctx.sink};
}

/// Ack-timer pattern: each fired event schedules one successor plus a
/// near-future timeout it immediately cancels (one cancel per fired event,
/// exercising handle creation and the lazy removal of stale heap records as
/// simulation time passes them).
template <class Sim, class Handle>
KernelRun cancelChurn(std::uint64_t n, std::uint64_t depth) {
  Sim sim;
  glr::sim::Rng rng{44};
  ChurnCtx<Sim> ctx{sim, rng, n};
  struct Tick {
    static void fire(ChurnCtx<Sim>& c, const TimerPayload& p) {
      c.sink = churnChecksum(c, p);
      if (c.remaining == 0) return;
      --c.remaining;
      const TimerPayload tp{~p.key, 2.0 + c.rng.uniform(0.0, 1.0), p.hop};
      Handle timeout = c.sim.schedule(
          tp.deadline, [&c, tp] { c.sink = churnChecksum(c, tp); });
      const TimerPayload np{p.key + 1, c.rng.uniform(0.0, 1.0), p.hop + 1};
      c.sim.schedule(np.deadline, [&c, np] { fire(c, np); });
      timeout.cancel();  // a timeout that fires anyway poisons the checksum
    }
  };
  for (std::uint64_t i = 0; i < depth; ++i) {
    const TimerPayload p{static_cast<long long>(i), rng.uniform(0.0, 1.0), 0};
    sim.schedule(p.deadline, [&ctx, p] { Tick::fire(ctx, p); });
  }
  sim.run();
  return {sim.eventsExecuted(), ctx.sink};
}

struct MicroResult {
  std::string name;
  std::uint64_t events = 0;
  double legacySeconds = 0;
  double slabSeconds = 0;
  KernelRun legacyRun;
  KernelRun slabRun;

  [[nodiscard]] double legacyMevps() const {
    return static_cast<double>(events) / legacySeconds / 1e6;
  }
  [[nodiscard]] double slabMevps() const {
    return static_cast<double>(events) / slabSeconds / 1e6;
  }
  [[nodiscard]] double speedup() const { return legacySeconds / slabSeconds; }
};

template <class Fn>
double timeBestOf(int reps, const Fn& fn, KernelRun* run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    *run = fn();
    best = std::min(best, secondsSince(t0));
  }
  return best;
}

MicroResult runMicro(const std::string& name, std::uint64_t events,
                     std::uint64_t depth, int reps) {
  using LegacySim = glr::bench::legacy::Simulator;
  using LegacyHandle = glr::bench::legacy::EventHandle;
  using SlabSim = glr::sim::Simulator;
  using SlabHandle = glr::sim::EventHandle;

  MicroResult m;
  m.name = name;
  m.events = events;
  if (name == "schedule-drain") {
    m.legacySeconds = timeBestOf(
        reps, [&] { return scheduleDrain<LegacySim>(events); }, &m.legacyRun);
    m.slabSeconds = timeBestOf(
        reps, [&] { return scheduleDrain<SlabSim>(events); }, &m.slabRun);
  } else if (name == "timer-churn") {
    m.legacySeconds = timeBestOf(
        reps, [&] { return timerChurn<LegacySim>(events, depth); },
        &m.legacyRun);
    m.slabSeconds = timeBestOf(
        reps, [&] { return timerChurn<SlabSim>(events, depth); }, &m.slabRun);
  } else {
    m.legacySeconds = timeBestOf(
        reps,
        [&] { return cancelChurn<LegacySim, LegacyHandle>(events, depth); },
        &m.legacyRun);
    m.slabSeconds = timeBestOf(
        reps, [&] { return cancelChurn<SlabSim, SlabHandle>(events, depth); },
        &m.slabRun);
  }
  std::printf("%-16s %9llu events  legacy %7.2f Mev/s  slab %7.2f Mev/s  "
              "speedup %.2fx\n",
              m.name.c_str(), static_cast<unsigned long long>(m.events),
              m.legacyMevps(), m.slabMevps(), m.speedup());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Event-kernel A/B bench: legacy (shared_ptr + std::function + "
              "priority_queue) vs slab (%s mode)\n",
              quick ? "quick" : "full");

  const int reps = quick ? 1 : 3;
  std::vector<MicroResult> micros;
  if (quick) {
    micros.push_back(runMicro("schedule-drain", 100000, 0, reps));
    micros.push_back(runMicro("timer-churn", 100000, 1000, reps));
    micros.push_back(runMicro("cancel-churn", 100000, 1000, reps));
  } else {
    micros.push_back(runMicro("schedule-drain", 100000, 0, reps));
    micros.push_back(runMicro("schedule-drain", 1000000, 0, reps));
    micros.push_back(runMicro("schedule-drain", 10000000, 0, reps));
    micros.push_back(runMicro("timer-churn", 10000000, 1000, reps));
    micros.push_back(runMicro("cancel-churn", 10000000, 1000, reps));
  }

  // Cross-check: both kernels must have fired the same events in the same
  // order — the checksum folds each fired payload key in order, so a
  // tie-break or cancellation divergence flips it even when counts match.
  for (const auto& m : micros) {
    if (m.legacyRun.executed != m.slabRun.executed ||
        m.legacyRun.checksum != m.slabRun.checksum) {
      std::fprintf(
          stderr,
          "FATAL: kernel divergence in %s: executed %llu vs %llu, "
          "checksum %016llx vs %016llx\n",
          m.name.c_str(), static_cast<unsigned long long>(m.legacyRun.executed),
          static_cast<unsigned long long>(m.slabRun.executed),
          static_cast<unsigned long long>(m.legacyRun.checksum),
          static_cast<unsigned long long>(m.slabRun.checksum));
      return 1;
    }
  }

  // End-to-end: the determinism regression test's mid-size GLR scenario.
  glr::experiment::ScenarioResult e2e;
  if (!quick) {
    glr::experiment::ScenarioConfig cfg;
    cfg.protocol = glr::experiment::Protocol::kGlr;
    cfg.simTime = 400.0;
    cfg.numMessages = 200;
    cfg.radius = 100.0;
    cfg.seed = 7;
    double bestWall = 1e300;
    for (int r = 0; r < reps; ++r) {
      auto res = glr::experiment::runScenario(cfg);
      if (res.wallSeconds < bestWall) {
        bestWall = res.wallSeconds;
        e2e = res;
      }
    }
    std::printf("end-to-end GLR   %9llu events  wall %.3fs  %7.2f Mev/s\n",
                static_cast<unsigned long long>(e2e.eventsExecuted),
                e2e.wallSeconds,
                static_cast<double>(e2e.eventsExecuted) / e2e.wallSeconds /
                    1e6);
  }

  FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sim_kernel\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out,
               "  \"legacy\": \"shared_ptr+std::function+priority_queue\",\n");
  std::fprintf(out, "  \"slab\": \"slab+generation-handles+4ary-heap+"
                    "inplace-function\",\n");
  std::fprintf(out, "  \"micro\": [\n");
  for (std::size_t i = 0; i < micros.size(); ++i) {
    const auto& m = micros[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"legacy_mev_per_s\": %.3f, \"slab_mev_per_s\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 m.name.c_str(), static_cast<unsigned long long>(m.events),
                 m.legacyMevps(), m.slabMevps(), m.speedup(),
                 i + 1 < micros.size() ? "," : "");
  }
  std::fprintf(out, "  ]");
  if (!quick) {
    std::fprintf(out,
                 ",\n  \"end_to_end\": {\"scenario\": "
                 "\"glr-50n-400s-200msg-seed7\", \"events\": %llu, "
                 "\"wall_seconds\": %.3f, \"mev_per_s\": %.3f}",
                 static_cast<unsigned long long>(e2e.eventsExecuted),
                 e2e.wallSeconds,
                 static_cast<double>(e2e.eventsExecuted) / e2e.wallSeconds /
                     1e6);
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
