#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A `Simulator` owns a time-ordered event queue. Events are arbitrary
/// callbacks scheduled at absolute or relative times; ties are broken by
/// insertion order so runs are fully deterministic. Scheduled events can be
/// cancelled through the returned `EventHandle` (used heavily by MAC timers
/// and DTN cache timeouts).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace glr::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert; `cancel()` on an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call repeatedly.
  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }

  /// True if the event is still scheduled and will fire.
  [[nodiscard]] bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

/// Deterministic discrete-event scheduler.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time (seconds).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns a handle
  /// that can cancel the event.
  EventHandle scheduleAt(SimTime t, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(SimTime delay, Callback fn) {
    return scheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events in time order until the queue is empty, `until` is reached,
  /// or `stop()` is called. Events scheduled exactly at `until` do fire.
  /// Returns the number of events executed by this call.
  std::uint64_t run(SimTime until = kForever);

  /// Executes at most `n` events (ignoring cancelled ones); used in tests.
  std::uint64_t step(std::uint64_t n = 1);

  /// Requests `run()` to return after the current event completes.
  void stop() { stopped_ = true; }

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t eventsExecuted() const { return executed_; }

  /// Events currently queued (including cancelled-but-not-popped ones).
  [[nodiscard]] std::size_t queueSize() const { return queue_.size(); }

  /// Whether there is at least one non-cancelled event pending.
  [[nodiscard]] bool hasPending();

  static constexpr SimTime kForever = 1e300;

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled events at the head of the queue.
  void skipCancelled();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace glr::sim
