#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A `Simulator` owns a time-ordered event queue. Events are arbitrary
/// callbacks scheduled at absolute or relative times; ties are broken by
/// insertion order so runs are fully deterministic. Scheduled events can be
/// cancelled through the returned `EventHandle` (used heavily by MAC timers
/// and DTN cache timeouts).
///
/// The kernel is allocation-free on the hot path: callbacks live in a
/// free-listed slab of slots (`InplaceFunction` keeps captures inline), the
/// priority queue is an intrusive 4-ary heap of small `{time, seq, slot,
/// generation}` records, and cancellation is an O(1) generation bump with
/// lazy heap removal — no `shared_ptr` flags, no `std::function`, and no
/// event copies on pop. Once the slab and heap vectors have grown to the
/// scenario's working set, scheduling, cancelling, and firing events touch
/// the allocator only for the rare callback larger than
/// `kSimCallbackCapacity` bytes.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/inplace_function.hpp"

namespace glr::sim {

/// Simulation time in seconds.
using SimTime = double;

class Simulator;

/// Optional per-event description: a small POD tag that lets the checkpoint
/// layer re-create a pending event's callback after a restore (closures are
/// not serializable, so each schedule site names itself and its captures
/// here instead). Field meaning is owned by the schedule sites — see
/// checkpoint/event_kinds.hpp; the kernel only stores and returns the tag.
/// kind == 0 means "undescribed": the checkpoint writer refuses to snapshot
/// a queue holding an undescribed live event, so a forgotten tag is a loud
/// error at snapshot time, never silent divergence at restore time.
struct EventDesc {
  std::uint16_t kind = 0;
  std::uint8_t b0 = 0;
  std::uint8_t b1 = 0;
  std::int32_t i0 = 0;
  std::int32_t i1 = 0;
  std::uint64_t u0 = 0;
  std::uint64_t u1 = 0;
  double f0 = 0.0;
  double f1 = 0.0;
};

/// Thrown by run()/step() when a wall-clock deadline armed via
/// setWallDeadline() expires. The sweep watchdog catches this to count and
/// retry hung cells instead of letting them stall a whole experiment.
class WallClockTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cancellation token for a scheduled event: a trivially-copyable
/// `{slot, generation}` pair into the owning simulator's slab. Default-
/// constructed handles are inert; `cancel()` on an already-fired event is a
/// no-op, and a handle whose slot has been reused by a newer event is inert
/// too (the generation no longer matches). Handles must not outlive their
/// simulator — the same lifetime rule as the `Simulator&` every agent holds.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call repeatedly.
  void cancel();

  /// True if the event is still scheduled and will fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot,
              std::uint32_t generation) noexcept
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Deterministic discrete-event scheduler. Neither copyable nor movable:
/// every EventHandle holds a pointer back to its simulator, so the object
/// must stay put for the handles' lifetime (agents hold `Simulator&`
/// references under the same rule).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  using Callback = InplaceFunction<void(), kSimCallbackCapacity>;

  /// Which structure orders the pending-event set. Both fire the identical
  /// event sequence (same (time, seq) tie-break); they differ only in cost
  /// profile — the 4-ary heap is the small/medium-scenario default, the
  /// calendar queue keeps per-event cost flat for million-deep queues.
  enum class QueueMode { kHeap4, kCalendar };

  /// Switches the event-ordering structure. Only legal while the queue is
  /// empty (typically right after construction, before any scheduling).
  void setQueueMode(QueueMode mode) {
    if (queueSize() != 0) {
      throw std::logic_error{
          "Simulator::setQueueMode: queue must be empty to switch"};
    }
    if (mode == QueueMode::kCalendar) {
      if (!cal_) cal_ = std::make_unique<CalendarQueue>();
    } else {
      cal_.reset();
    }
  }

  [[nodiscard]] QueueMode queueMode() const {
    return cal_ ? QueueMode::kCalendar : QueueMode::kHeap4;
  }

  /// Current simulation time (seconds).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns a handle
  /// that can cancel the event. Defined inline below: scheduling runs once
  /// per event on the hot path and must not cost a cross-TU call.
  EventHandle scheduleAt(SimTime t, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(SimTime delay, Callback fn) {
    return scheduleAt(now_ + delay, std::move(fn));
  }

  /// Tagged variants: identical scheduling semantics, but the descriptor is
  /// recorded alongside the event when enableEventDescriptions() is active
  /// (one predicted branch and a 48-byte store; nothing when inactive).
  EventHandle scheduleAt(SimTime t, const EventDesc& desc, Callback fn);
  EventHandle schedule(SimTime delay, const EventDesc& desc, Callback fn) {
    return scheduleAt(now_ + delay, desc, std::move(fn));
  }

  /// Turns on descriptor storage. Must be enabled before the first schedule
  /// for pendingEvents() to see every live event described.
  void enableEventDescriptions() { descEnabled_ = true; }
  [[nodiscard]] bool eventDescriptionsEnabled() const { return descEnabled_; }

  /// One live pending event, as the checkpoint layer sees it.
  struct PendingEvent {
    EventKey key;
    EventDesc desc;
  };

  /// Snapshot of every live (non-cancelled) pending event in exact fire
  /// order. Requires enableEventDescriptions(). Internally drains and
  /// re-inserts the queue records; the observable event sequence is
  /// unchanged — both queue modes pop the exact (time, seq) minimum
  /// regardless of internal layout, so re-insertion cannot reorder fires.
  [[nodiscard]] std::vector<PendingEvent> pendingEvents();

  /// Restore support: re-creates one pending event under an exact
  /// pre-assigned (timeBits, seq) key so tie-breaking after a restore is
  /// bit-identical to the snapshotted run. The key must lie in the past of
  /// nextSeq (set via restoreClock first) and not before now().
  EventHandle scheduleKeyed(EventKey key, const EventDesc& desc, Callback fn);

  /// Restore support: discards every queued record (cancelled ones included)
  /// and releases their slots. The clock and counters are untouched.
  void clearPending();

  /// Restore support: overwrites clock, sequence counter and executed-event
  /// counter. Only legal while the queue is empty.
  void restoreClock(SimTime now, std::uint64_t nextSeq, std::uint64_t executed);

  /// Next insertion-order sequence number (checkpointed so restored runs
  /// break ties identically).
  [[nodiscard]] std::uint64_t nextSeq() const { return nextSeq_; }

  /// Canonical time <-> ordering-bit-pattern conversion. Public because
  /// event keys are persisted as bit patterns (checkpoint layer, tools).
  static std::uint64_t timeToBits(SimTime t) {
    // +0.0 canonicalizes -0.0 (whose bit pattern would misorder).
    return std::bit_cast<std::uint64_t>(t + 0.0);
  }

  static SimTime bitsToTime(std::uint64_t bits) {
    return std::bit_cast<SimTime>(bits);
  }

  /// Arms a wall-clock deadline: run()/step() throw WallClockTimeout once
  /// `seconds` of wall time elapse, checked every few thousand events so the
  /// hot loop cost is one counter increment. seconds <= 0 disarms.
  void setWallDeadline(double seconds);

  /// Runs events in time order until the queue is empty, `until` is reached,
  /// or `stop()` is called. Events scheduled exactly at `until` do fire.
  /// Returns the number of events executed by this call.
  std::uint64_t run(SimTime until = kForever);

  /// Executes at most `n` events (ignoring cancelled ones); used in tests.
  /// Like `run()`, returns early if an event calls `stop()`.
  std::uint64_t step(std::uint64_t n = 1);

  /// Requests `run()` (or `step()`) to return after the current event
  /// completes.
  void stop() { stopped_ = true; }

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t eventsExecuted() const { return executed_; }

  /// Events currently queued (including cancelled-but-not-popped ones).
  [[nodiscard]] std::size_t queueSize() const {
    return cal_ ? cal_->size() : heapKeys_.size();
  }

  /// Whether there is at least one non-cancelled event pending.
  [[nodiscard]] bool hasPending();

  /// Pre-sizes the slab and heap for `events` concurrently-pending events so
  /// even the first scheduling burst never reallocates.
  void reserve(std::size_t events);

  static constexpr SimTime kForever = 1e300;

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kHeapArity = 4;

  /// Slab cell. An armed slot holds the callback; a free slot links the
  /// free list. The generation counter is bumped whenever the slot's event
  /// fires or is cancelled, instantly invalidating stale handles and stale
  /// heap records. Cacheline-aligned: callback + metadata are exactly one
  /// line, so arming/firing a slot touches a single line of the slab.
  struct alignas(64) Slot {
    Callback fn;
    std::uint32_t generation = 0;
    std::uint32_t nextFree = kNilSlot;
  };

  /// What the heap orders, split structure-of-arrays style: the sift loops
  /// touch only the 16-byte key array (4 children span at most two cache
  /// lines instead of three), while the {slot, generation} payload rides in
  /// a parallel array. Pops move small records, never closures. Time is
  /// stored as its IEEE-754 bit pattern: sim times are non-negative, and
  /// non-negative doubles order identically to their bit patterns, so the
  /// comparator is pure integer work (no NaN/denormal edge cases in the hot
  /// loop) while breaking ties by insertion order exactly like the old
  /// (time, seq) comparator. The record types are shared with the calendar
  /// queue (calendar_queue.hpp) so both modes order the same data.
  using HeapKey = EventKey;
  using HeapAux = EventAux;

  static bool earlier(const HeapKey& a, const HeapKey& b) {
    // Distinct times dominate and the equality branch predicts ~always
    // taken; the data-random outcome below it compiles to setcc/cmov.
    return earlierKey(a, b);
  }

  [[nodiscard]] bool stale(const HeapAux& a) const {
    return slab_[a.slot].generation != a.generation;
  }

  void heapPush(HeapKey key, HeapAux aux);
  void heapPopTop();

  /// Queue-mode dispatch. One predictable branch on `cal_`; the heap path
  /// stays the fall-through so the default mode's hot loop is unperturbed.
  [[nodiscard]] bool qEmpty() const {
    return cal_ ? cal_->empty() : heapKeys_.empty();
  }
  [[nodiscard]] const HeapKey& qTopKey() {
    return cal_ ? cal_->topKey() : heapKeys_.front();
  }
  [[nodiscard]] const HeapAux& qTopAux() {
    return cal_ ? cal_->topAux() : heapAux_.front();
  }
  void qPop() {
    if (cal_) {
      cal_->popTop();
    } else {
      heapPopTop();
    }
  }
  /// Sinks the record in the hole at `i` to its place, assuming children of
  /// `i` may violate the heap property with respect to (key, aux).
  void siftDownHole(std::size_t i, HeapKey key, HeapAux aux);
  /// Discards records for cancelled/fired events at the head of the heap.
  void skipStale();
  /// Removes every stale record in one O(n) filter + Floyd heapify pass.
  /// Cancellation is lazy (records of cancelled events stay in the heap
  /// until popped), so a cancel-heavy phase — e.g. MAC ACK timers, which
  /// are cancelled on every successful delivery — would otherwise pay a
  /// full-depth sift per dead record and keep the heap artificially deep.
  /// The generation check makes dead records detectable in O(1), which is
  /// what makes this sweep possible at all.
  void compactHeap();

  std::uint32_t acquireSlot() {
    if (freeHead_ != kNilSlot) {
      const std::uint32_t slot = freeHead_;
      freeHead_ = slab_[slot].nextFree;
      return slot;
    }
    const auto slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
    return slot;
  }

  /// Destroys the slot's callback, bumps its generation, and returns it to
  /// the free list.
  void releaseSlot(std::uint32_t slot) {
    Slot& s = slab_[slot];
    s.fn.reset();
    ++s.generation;  // stale handles and heap records become inert here
    s.nextFree = freeHead_;
    freeHead_ = slot;
  }

  /// Fires the head event (returns 1), or pops it without firing and
  /// returns 0 if its record is stale (cancelled event).
  std::uint64_t fireTop();

  bool cancelEvent(std::uint32_t slot, std::uint32_t generation) {
    if (!eventPending(slot, generation)) return false;
    // The heap record is left in place; pops discard it once its generation
    // no longer matches the slot's, and a compaction sweep reclaims them in
    // bulk when they pile up.
    releaseSlot(slot);
    ++staleCount_;
    if (staleCount_ > kCompactMinStale && staleCount_ * 2 > queueSize()) {
      compactHeap();
    }
    return true;
  }

  /// Compaction threshold: don't bother sweeping tiny heaps.
  static constexpr std::size_t kCompactMinStale = 64;
  [[nodiscard]] bool eventPending(std::uint32_t slot,
                                  std::uint32_t generation) const {
    return slot < slab_.size() && slab_[slot].generation == generation;
  }

  /// Shared body of the tagged and untagged schedule paths. `desc` is null
  /// for the untagged overload (stored as kind 0 = undescribed when
  /// descriptor storage is on, so slot reuse never leaks a stale tag).
  EventHandle scheduleTagged(SimTime t, const EventDesc* desc, Callback fn);

  /// Throws WallClockTimeout if the armed deadline has passed. Out of line:
  /// only reached every kWallCheckMask+1 events.
  void checkWallDeadline();

  static constexpr std::uint64_t kWallCheckMask = 0x1FFF;

  std::vector<Slot> slab_;
  std::uint32_t freeHead_ = kNilSlot;
  std::vector<HeapKey> heapKeys_;
  std::vector<HeapAux> heapAux_;
  /// Non-null iff the calendar-queue mode is active (then heapKeys_/heapAux_
  /// stay empty and all records live in the wheel).
  std::unique_ptr<CalendarQueue> cal_;
  /// Heap records whose event was cancelled (fired events pop immediately,
  /// cancelled ones linger); drives the compaction heuristic.
  std::size_t staleCount_ = 0;
  /// Per-slot event descriptors, parallel to `slab_`. Grown lazily and only
  /// when descriptor storage is enabled, so checkpoint-less runs pay no
  /// memory for it.
  std::vector<EventDesc> descs_;
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  bool descEnabled_ = false;
  /// Wall-clock deadline (steady-clock nanoseconds since epoch; 0 = none)
  /// and the event counter that rate-limits the clock reads.
  std::uint64_t wallDeadlineNs_ = 0;
  std::uint64_t wallCheckTick_ = 0;
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancelEvent(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->eventPending(slot_, generation_);
}

inline EventHandle Simulator::scheduleTagged(SimTime t, const EventDesc* desc,
                                             Callback fn) {
  if (t < now_) {
    throw std::invalid_argument{"Simulator::scheduleAt: time is in the past"};
  }
  if (!fn) {
    throw std::invalid_argument{"Simulator::scheduleAt: empty callback"};
  }
  const std::uint32_t slot = acquireSlot();
  if (descEnabled_) {
    if (descs_.size() < slab_.size()) descs_.resize(slab_.size());
    descs_[slot] = desc != nullptr ? *desc : EventDesc{};
  }
  Slot& s = slab_[slot];
  s.fn = std::move(fn);
  const HeapKey key{timeToBits(t), nextSeq_++};
  const HeapAux aux{slot, s.generation};
  if (cal_) {
    cal_->push(key, aux);
  } else {
    heapPush(key, aux);
  }
  return EventHandle{this, slot, s.generation};
}

inline EventHandle Simulator::scheduleAt(SimTime t, Callback fn) {
  return scheduleTagged(t, nullptr, std::move(fn));
}

inline EventHandle Simulator::scheduleAt(SimTime t, const EventDesc& desc,
                                         Callback fn) {
  return scheduleTagged(t, &desc, std::move(fn));
}

inline void Simulator::heapPush(HeapKey key, HeapAux aux) {
  // Hole insertion: shift parents down into the hole and place the record
  // once, instead of swap chains (one store per level, not three).
  std::size_t i = heapKeys_.size();
  heapKeys_.push_back(key);
  heapAux_.push_back(aux);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!earlier(key, heapKeys_[parent])) break;
    heapKeys_[i] = heapKeys_[parent];
    heapAux_[i] = heapAux_[parent];
    i = parent;
  }
  heapKeys_[i] = key;
  heapAux_[i] = aux;
}

}  // namespace glr::sim
