#include "sim/simulator.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace glr::sim {

namespace {

std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Simulator::heapPopTop() {
  const HeapKey last = heapKeys_.back();
  const HeapAux lastAux = heapAux_.back();
  heapKeys_.pop_back();
  heapAux_.pop_back();
  const std::size_t n = heapKeys_.size();
  if (n == 0) return;
  // Bottom-up deletion (Wegener): descend the min-child path all the way to
  // a leaf — the replacement comes from the back of the heap, so it nearly
  // always belongs at the bottom and comparing it against every level on the
  // way down is wasted work — then bubble it up from the leaf hole, which
  // almost always stops immediately. Min-child selection is a two-round
  // tournament of conditional moves: the outcomes are data-random, so
  // branching on them would mispredict half the time. Only the 16-byte key
  // array is touched per comparison; the next level's children are
  // prefetched as soon as their index is known (the heap outgrows L2 in
  // large scenarios, and the sift is otherwise a serial chain of dependent
  // loads).
  std::size_t i = 0;
  for (;;) {
    static_assert(kHeapArity == 4, "min-child tournament is unrolled for 4");
    const std::size_t firstChild = i * kHeapArity + 1;
    if (firstChild + kHeapArity <= n) {
      const HeapKey* ch = &heapKeys_[firstChild];
      const std::size_t a = earlier(ch[1], ch[0]) ? firstChild + 1 : firstChild;
      const std::size_t b =
          earlier(ch[3], ch[2]) ? firstChild + 3 : firstChild + 2;
      const std::size_t best = earlier(heapKeys_[b], heapKeys_[a]) ? b : a;
#if defined(__GNUC__) || defined(__clang__)
      const std::size_t next = best * kHeapArity + 1;
      if (next < n) __builtin_prefetch(heapKeys_.data() + next);
#endif
      heapKeys_[i] = heapKeys_[best];
      heapAux_[i] = heapAux_[best];
      i = best;
    } else if (firstChild < n) {
      std::size_t best = firstChild;
      for (std::size_t c = firstChild + 1; c < n; ++c) {
        best = earlier(heapKeys_[c], heapKeys_[best]) ? c : best;
      }
      heapKeys_[i] = heapKeys_[best];
      heapAux_[i] = heapAux_[best];
      i = best;
    } else {
      break;
    }
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!earlier(last, heapKeys_[parent])) break;
    heapKeys_[i] = heapKeys_[parent];
    heapAux_[i] = heapAux_[parent];
    i = parent;
  }
  heapKeys_[i] = last;
  heapAux_[i] = lastAux;
}

void Simulator::siftDownHole(std::size_t i, HeapKey key, HeapAux aux) {
  const std::size_t n = heapKeys_.size();
  for (;;) {
    const std::size_t firstChild = i * kHeapArity + 1;
    if (firstChild >= n) break;
    const std::size_t lastChild = std::min(firstChild + kHeapArity, n);
    std::size_t best = firstChild;
    for (std::size_t c = firstChild + 1; c < lastChild; ++c) {
      best = earlier(heapKeys_[c], heapKeys_[best]) ? c : best;
    }
    if (!earlier(heapKeys_[best], key)) break;
    heapKeys_[i] = heapKeys_[best];
    heapAux_[i] = heapAux_[best];
    i = best;
  }
  heapKeys_[i] = key;
  heapAux_[i] = aux;
}

void Simulator::skipStale() {
  while (!qEmpty() && stale(qTopAux())) {
    qPop();
    --staleCount_;
  }
}

void Simulator::compactHeap() {
  if (cal_) {
    cal_->removeIf([this](const HeapAux& aux) { return stale(aux); });
    staleCount_ = 0;
    return;
  }
  const std::size_t n = heapKeys_.size();
  std::size_t w = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (!stale(heapAux_[r])) {
      heapKeys_[w] = heapKeys_[r];
      heapAux_[w] = heapAux_[r];
      ++w;
    }
  }
  heapKeys_.resize(w);
  heapAux_.resize(w);
  staleCount_ = 0;
  if (w < 2) return;
  // Floyd heapify over the surviving records: O(n), and the filter pass
  // above kept them in heap-ish order so most holes stop immediately.
  for (std::size_t i = (w - 2) / kHeapArity + 1; i-- > 0;) {
    siftDownHole(i, heapKeys_[i], heapAux_[i]);
  }
}

bool Simulator::hasPending() {
  skipStale();
  return !qEmpty();
}

void Simulator::reserve(std::size_t events) {
  slab_.reserve(events);
  if (cal_) {
    cal_->reserve(events);
  } else {
    heapKeys_.reserve(events);
    heapAux_.reserve(events);
  }
}

std::uint64_t Simulator::fireTop() {
  // One peek serves the stale check, the callback fetch, and the clock
  // bump: the slot's cacheline is loaded exactly once per event.
  const HeapAux aux = qTopAux();
  Slot& s = slab_[aux.slot];
  if (s.generation != aux.generation) {
    qPop();
    --staleCount_;
    return 0;
  }
  now_ = bitsToTime(qTopKey().timeBits);
  qPop();
  // Move the callback out and free the slot *before* invoking: the callback
  // may schedule new events (reusing this very slot) and late cancels on it
  // must already be no-ops. `s` stays valid — only the callback can grow
  // the slab, and it has not run yet.
  Callback fn = std::move(s.fn);
  releaseSlot(aux.slot);
  // Counted before invoking so a checkpoint written from inside a callback
  // includes the event in progress — the restored run will not re-run it.
  ++executed_;
  fn();
  return 1;
}

std::vector<Simulator::PendingEvent> Simulator::pendingEvents() {
  if (!descEnabled_) {
    throw std::logic_error{
        "Simulator::pendingEvents: event descriptions are not enabled"};
  }
  // Drain every record in fire order, shedding stale (cancelled) ones, then
  // re-insert the survivors. Re-insertion in ascending key order is cheap in
  // both modes (heap pushes never sift, calendar pushes are O(1)) and cannot
  // change the fire sequence: pops always take the exact (time, seq)
  // minimum, whatever the internal layout.
  std::vector<std::pair<HeapKey, HeapAux>> records;
  records.reserve(queueSize());
  while (!qEmpty()) {
    const HeapKey key = qTopKey();
    const HeapAux aux = qTopAux();
    qPop();
    if (stale(aux)) {
      --staleCount_;
      continue;
    }
    records.emplace_back(key, aux);
  }
  staleCount_ = 0;
  std::vector<PendingEvent> out;
  out.reserve(records.size());
  for (const auto& [key, aux] : records) {
    if (cal_) {
      cal_->push(key, aux);
    } else {
      heapPush(key, aux);
    }
    // Events scheduled before descriptor storage was enabled fall outside
    // descs_; report them as undescribed so the checkpoint writer can refuse
    // loudly instead of silently losing them.
    out.push_back(PendingEvent{
        key, aux.slot < descs_.size() ? descs_[aux.slot] : EventDesc{}});
  }
  return out;
}

EventHandle Simulator::scheduleKeyed(EventKey key, const EventDesc& desc,
                                     Callback fn) {
  if (!fn) {
    throw std::invalid_argument{"Simulator::scheduleKeyed: empty callback"};
  }
  if (bitsToTime(key.timeBits) < now_) {
    throw std::invalid_argument{
        "Simulator::scheduleKeyed: event time is in the past"};
  }
  if (key.seq >= nextSeq_) {
    throw std::invalid_argument{
        "Simulator::scheduleKeyed: seq not covered by restored clock"};
  }
  const std::uint32_t slot = acquireSlot();
  if (descEnabled_) {
    if (descs_.size() < slab_.size()) descs_.resize(slab_.size());
    descs_[slot] = desc;
  }
  Slot& s = slab_[slot];
  s.fn = std::move(fn);
  const HeapAux aux{slot, s.generation};
  if (cal_) {
    cal_->push(key, aux);
  } else {
    heapPush(key, aux);
  }
  return EventHandle{this, slot, s.generation};
}

void Simulator::clearPending() {
  while (!qEmpty()) {
    const HeapAux aux = qTopAux();
    qPop();
    if (!stale(aux)) releaseSlot(aux.slot);
  }
  staleCount_ = 0;
}

void Simulator::restoreClock(SimTime now, std::uint64_t nextSeq,
                             std::uint64_t executed) {
  if (queueSize() != 0) {
    throw std::logic_error{"Simulator::restoreClock: queue must be empty"};
  }
  now_ = now;
  nextSeq_ = nextSeq;
  executed_ = executed;
}

void Simulator::setWallDeadline(double seconds) {
  if (seconds <= 0.0) {
    wallDeadlineNs_ = 0;
    return;
  }
  wallDeadlineNs_ =
      steadyNowNs() + static_cast<std::uint64_t>(seconds * 1e9);
}

void Simulator::checkWallDeadline() {
  if (steadyNowNs() >= wallDeadlineNs_) {
    throw WallClockTimeout{"Simulator::run: wall-clock deadline exceeded"};
  }
}

std::uint64_t Simulator::run(SimTime until) {
  stopped_ = false;
  // Pending events all have time >= now_, so nothing can fire — and the
  // bit-pattern horizon compare below assumes a non-negative `until`, which
  // this guard also establishes (matching the legacy kernel, which only
  // shed cancelled heads in this case).
  if (until < now_) {
    skipStale();
    return 0;
  }
  std::uint64_t ran = 0;
  const std::uint64_t untilBits = timeToBits(until);
  while (!qEmpty() && !stopped_) {
    if (qTopKey().timeBits > untilBits && !stale(qTopAux())) {
      break;
    }
    ran += fireTop();
    if (wallDeadlineNs_ != 0 && (++wallCheckTick_ & kWallCheckMask) == 0) {
      checkWallDeadline();
    }
  }
  // The old kernel skipped cancelled heads before observing stop(), so a
  // queue holding only dead records still counted as drained.
  if (stopped_) skipStale();
  if (qEmpty() && now_ < until && until < kForever) now_ = until;
  return ran;
}

std::uint64_t Simulator::step(std::uint64_t n) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (ran < n && !qEmpty() && !stopped_) {
    ran += fireTop();
    if (wallDeadlineNs_ != 0 && (++wallCheckTick_ & kWallCheckMask) == 0) {
      checkWallDeadline();
    }
  }
  return ran;
}

}  // namespace glr::sim
