#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace glr::sim {

EventHandle Simulator::scheduleAt(SimTime t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument{"Simulator::scheduleAt: time is in the past"};
  }
  if (!fn) {
    throw std::invalid_argument{"Simulator::scheduleAt: empty callback"};
  }
  Event ev;
  ev.time = t;
  ev.seq = nextSeq_++;
  ev.fn = std::move(fn);
  ev.alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>{ev.alive}};
  queue_.push(std::move(ev));
  return handle;
}

void Simulator::skipCancelled() {
  while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
}

bool Simulator::hasPending() {
  skipCancelled();
  return !queue_.empty();
}

std::uint64_t Simulator::run(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  for (;;) {
    skipCancelled();
    if (queue_.empty() || stopped_) break;
    if (queue_.top().time > until) break;
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the small fields and move the callback by re-wrapping.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    *ev.alive = false;  // mark fired so late cancel() calls are no-ops
    ev.fn();
    ++ran;
    ++executed_;
  }
  if (queue_.empty() && now_ < until && until < kForever) now_ = until;
  return ran;
}

std::uint64_t Simulator::step(std::uint64_t n) {
  std::uint64_t ran = 0;
  while (ran < n) {
    skipCancelled();
    if (queue_.empty()) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    *ev.alive = false;
    ev.fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

}  // namespace glr::sim
