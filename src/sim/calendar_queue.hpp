#pragma once
/// \file calendar_queue.hpp
/// Calendar-queue event ordering for million-deep pending sets.
///
/// The 4-ary heap pays O(log n) per operation with a serial chain of
/// dependent loads on every pop; at city scale (100k–1M nodes) the heap
/// outgrows every cache level and each event costs a walk through DRAM.
/// A calendar queue (Brown 1988) hashes events into a wheel of day-width
/// buckets by time, making push amortized O(1) and pop a scan of the one
/// bucket the clock currently points at. The trade is that pops inside a
/// bucket are a linear min-scan, so the structure self-resizes to keep
/// bucket occupancy near one event per active day.
///
/// Ordering is EXACTLY the heap's: the minimum record by (timeBits, seq).
/// Bucketing only narrows where that minimum is searched for — the
/// comparator is shared with the heap — so a simulator draining either
/// structure fires the identical event sequence bit-for-bit. That property
/// is pinned by tests (random schedule/cancel interleavings and the
/// KernelRegression golden) and is what makes the queue a drop-in mode
/// behind the existing `Simulator` API rather than a fork of the kernel.
///
/// Stale records (cancelled events) are handled exactly like the heap's:
/// they linger until popped or until the owner runs a `removeIf` sweep.

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace glr::sim {

/// What both queue implementations order: the IEEE-754 bit pattern of a
/// non-negative time (orders identically to the double) and the insertion
/// sequence number that breaks ties deterministically.
struct EventKey {
  std::uint64_t timeBits;
  std::uint64_t seq;
};

/// Queue payload: a {slot, generation} reference into the simulator's slab.
struct EventAux {
  std::uint32_t slot;
  std::uint32_t generation;
};

[[nodiscard]] inline bool earlierKey(const EventKey& a, const EventKey& b) {
  if (a.timeBits != b.timeBits) return a.timeBits < b.timeBits;
  return a.seq < b.seq;
}

class CalendarQueue {
 public:
  CalendarQueue() { initBuckets(kMinBuckets); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pre-sizes the wheel for `events` concurrently-pending records so the
  /// first scheduling burst triggers no grow/rebuild cascade.
  void reserve(std::size_t events) {
    if (events / 2 > buckets_.size()) {
      rebuild(std::bit_ceil(std::max<std::size_t>(events / 2, kMinBuckets)),
              width_);
    }
  }

  void push(EventKey key, EventAux aux) {
    const std::uint64_t day = dayOf(key.timeBits);
    auto& bucket = buckets_[day & mask()];
    bucket.push_back(Rec{key, aux, day});
    ++size_;
    // An event earlier than the cursor's day would be missed by the forward
    // bucket walk; pull the cursor back so the next search starts at or
    // before it. (Scheduling never goes below `now`, but the cursor can sit
    // one day ahead after serving the tail of the previous day.)
    if (day < curDay_) curDay_ = day;
    if (topCached_) {
      if (earlierKey(key, cachedKey())) {
        topBucket_ = day & mask();
        topPos_ = bucket.size() - 1;
      }
    }
    if (size_ > buckets_.size() * kGrowOccupancy) {
      rebuild(buckets_.size() * 2, chooseWidth());
      return;
    }
  }

  /// Minimum record by (timeBits, seq). Valid until the next mutation.
  [[nodiscard]] const EventKey& topKey() {
    locateTop();
    return buckets_[topBucket_][topPos_].key;
  }
  [[nodiscard]] const EventAux& topAux() {
    locateTop();
    return buckets_[topBucket_][topPos_].aux;
  }

  void popTop() {
    locateTop();
    auto& bucket = buckets_[topBucket_];
    bucket[topPos_] = bucket.back();
    bucket.pop_back();
    // A well-calibrated wheel leaves ~1–2 records per bucket, so capacity
    // above the release threshold marks a miscalibrated burst: give the
    // block back when the bucket drains or the sliding active window would
    // pin one bloated vector per bucket it ever crossed (bucket-count x
    // burst-capacity resident, ~6 KB/node at 10k nodes before this fix).
    if (bucket.empty() && bucket.capacity() > kReleaseCapacity) {
      bucket.shrink_to_fit();
    }
    --size_;
    topCached_ = false;
    if (buckets_.size() > kMinBuckets &&
        size_ * kShrinkOccupancy < buckets_.size()) {
      rebuild(buckets_.size() / 2, chooseWidth());
      return;
    }
    // Periodic width recalibration: resizing is the only width trigger in
    // Brown's scheme, and a pre-reserved wheel may never resize — leaving
    // the initial width guess pinned and the whole pending set bunched
    // into a narrow band of buckets. Once per full queue turnover, re-pick
    // the width from the current population and rebuild in place if it is
    // off by more than 2x. Count-based, so the trigger (and the resulting
    // bucket layout) is a pure function of the operation sequence — the
    // bit-identical event order the A/B gate pins is unaffected anyway,
    // because bucket placement never decides ordering, only where the
    // min-search looks first.
    if (++popsSinceCalibrate_ >= size_ + kMinBuckets) {
      popsSinceCalibrate_ = 0;
      const double w = chooseWidth();
      if (w > 2.0 * width_ || w < 0.5 * width_) {
        rebuild(buckets_.size(), w);
      } else {
        // Capacity sweep at the same once-per-turnover cadence (rebuild
        // reallocates everything anyway, so only the no-rebuild path needs
        // it): empty buckets keeping a block above the sweep threshold are
        // returned to the allocator. Doing this here instead of on every
        // pop matters — a cap-8 bucket in the active window refills within
        // the same turnover, and releasing it per-drain doubles the
        // kernel's allocation traffic (measured 2x scenario wall time).
        // One sweep per turnover frees the same memory with O(1) amortized
        // cost per event.
        for (auto& b : buckets_) {
          if (b.empty() && b.capacity() > kSweepCapacity) b.shrink_to_fit();
        }
      }
    }
  }

  /// Removes every record matching `pred` (used for bulk reclamation of
  /// cancelled events, mirroring the heap's compaction sweep). O(n).
  template <class Pred>
  void removeIf(Pred pred) {
    for (auto& bucket : buckets_) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < bucket.size(); ++r) {
        if (!pred(bucket[r].aux)) bucket[w++] = bucket[r];
      }
      size_ -= bucket.size() - w;
      bucket.resize(w);
    }
    topCached_ = false;
  }

 private:
  struct Rec {
    EventKey key;
    EventAux aux;
    std::uint64_t day;  // floor(time / width) at insertion width
  };

  static constexpr std::size_t kMinBuckets = 32;
  /// Grow when buckets hold more than this many records on average…
  static constexpr std::size_t kGrowOccupancy = 2;
  /// …shrink only when occupancy drops below 1/8 (hysteresis gap avoids
  /// rebuild thrash around a stable queue depth).
  static constexpr std::size_t kShrinkOccupancy = 8;
  /// Bucket capacity above which an emptied bucket's block is returned to
  /// the allocator immediately on drain (see popTop). High enough that a
  /// calibrated wheel never churns; low enough that burst bloat cannot
  /// stick to the whole wheel.
  static constexpr std::size_t kReleaseCapacity = 8;
  /// Tighter bar used by the once-per-turnover sweep: steady-state buckets
  /// hold 1-2 records (capacity <= 4); anything above is burst residue.
  static constexpr std::size_t kSweepCapacity = 4;

  [[nodiscard]] std::size_t mask() const { return buckets_.size() - 1; }

  [[nodiscard]] const EventKey& cachedKey() const {
    return buckets_[topBucket_][topPos_].key;
  }

  [[nodiscard]] std::uint64_t dayOf(std::uint64_t timeBits) const {
    const double t = std::bit_cast<double>(timeBits);
    const double d = t * invWidth_;
    // Times beyond 2^63 days collapse into one far day; ordering never
    // depends on day values (the min-search compares full keys), only
    // bucket placement does, so the clamp is safe.
    return d >= 9.0e18 ? std::uint64_t{1} << 63
                       : static_cast<std::uint64_t>(d);
  }

  void initBuckets(std::size_t n) {
    buckets_.assign(n, {});
    curDay_ = 0;
    topCached_ = false;
  }

  /// Finds the minimum record: walk buckets day by day from the cursor; a
  /// record belongs to the cursor's day iff its stored day matches. One full
  /// revolution without a hit means every event is more than a wheel-year
  /// away — fall back to a direct min over all records and jump the cursor.
  void locateTop() {
    if (topCached_) return;
    assert(size_ > 0 && "locateTop on empty CalendarQueue");
    std::uint64_t day = curDay_;
    for (std::size_t probed = 0; probed < buckets_.size(); ++probed, ++day) {
      const auto& bucket = buckets_[day & mask()];
      std::size_t best = bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].day != day) continue;
        if (best == bucket.size() || earlierKey(bucket[i].key, bucket[best].key)) {
          best = i;
        }
      }
      if (best != bucket.size()) {
        curDay_ = day;
        topBucket_ = day & mask();
        topPos_ = best;
        topCached_ = true;
        return;
      }
    }
    // Direct search (rare: sparse far-future tail).
    std::size_t bestB = 0;
    std::size_t bestP = 0;
    bool found = false;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
        if (!found || earlierKey(buckets_[b][i].key,
                                 buckets_[bestB][bestP].key)) {
          bestB = b;
          bestP = i;
          found = true;
        }
      }
    }
    assert(found);
    curDay_ = buckets_[bestB][bestP].day;
    topBucket_ = bestB;
    topPos_ = bestP;
    topCached_ = true;
  }

  /// Picks a bucket width from the current population: ~3x the mean gap of
  /// the earliest records (Brown's sampling, computed over the k smallest so
  /// a sparse far-future tail cannot inflate the width and collapse the
  /// active window into one bucket). Deterministic: the sampled set is the
  /// k minimum keys, unique because seq is unique.
  [[nodiscard]] double chooseWidth() {
    if (size_ < 2) return width_;
    scratch_.clear();
    for (const auto& bucket : buckets_) {
      for (const auto& rec : bucket) scratch_.push_back(rec.key);
    }
    const std::size_t k = std::min<std::size_t>(scratch_.size(), 64);
    std::nth_element(scratch_.begin(), scratch_.begin() + (k - 1),
                     scratch_.end(),
                     [](const EventKey& a, const EventKey& b) {
                       return earlierKey(a, b);
                     });
    auto timeOf = [](const EventKey& key) {
      return std::bit_cast<double>(key.timeBits);
    };
    double lo = timeOf(scratch_[0]);
    double hi = lo;
    for (std::size_t i = 1; i < k; ++i) {
      lo = std::min(lo, timeOf(scratch_[i]));
      hi = std::max(hi, timeOf(scratch_[i]));
    }
    const double span = hi - lo;
    if (!(span > 0.0)) return width_;
    return 3.0 * span / static_cast<double>(k - 1);
  }

  void rebuild(std::size_t newBucketCount, double newWidth) {
    scratchRecs_.clear();
    scratchRecs_.reserve(size_);
    for (auto& bucket : buckets_) {
      scratchRecs_.insert(scratchRecs_.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    if (newBucketCount != buckets_.size()) {
      buckets_.resize(newBucketCount);
    }
    width_ = newWidth;
    invWidth_ = 1.0 / width_;
    bool haveMin = false;
    std::uint64_t minDay = 0;
    EventKey minKey{};
    for (auto& rec : scratchRecs_) {
      rec.day = dayOf(rec.key.timeBits);
      buckets_[rec.day & mask()].push_back(rec);
      if (!haveMin || earlierKey(rec.key, minKey)) {
        haveMin = true;
        minKey = rec.key;
        minDay = rec.day;
      }
    }
    curDay_ = haveMin ? minDay : 0;
    topCached_ = false;
  }

  std::vector<std::vector<Rec>> buckets_;
  double width_ = 1.0e-3;
  double invWidth_ = 1.0e3;
  std::size_t size_ = 0;
  std::uint64_t curDay_ = 0;
  std::size_t popsSinceCalibrate_ = 0;
  bool topCached_ = false;
  std::size_t topBucket_ = 0;
  std::size_t topPos_ = 0;
  std::vector<EventKey> scratch_;
  std::vector<Rec> scratchRecs_;
};

}  // namespace glr::sim
