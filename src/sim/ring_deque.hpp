#pragma once
/// \file ring_deque.hpp
/// Grow-only circular FIFO with random access from the front.
///
/// `std::deque` allocates and frees a block every few elements as the FIFO
/// window slides, so steady-state push/pop traffic — MAC interface queues,
/// the channel's interference history — keeps touching the allocator even
/// when the queue depth is stable. RingDeque backs the same interface with
/// one power-of-two ring that doubles on overflow and never shrinks: after
/// the first few seconds of simulation the structure reaches its working
/// size and every later push/pop is pointer arithmetic only. Elements are
/// constructed on push and destroyed on pop (destructors run exactly as
/// with std::deque), so held resources — payload arena references in
/// particular — are released with the same timing the deque gave them.

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace glr::sim {

template <class T>
class RingDeque {
 public:
  RingDeque() = default;
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;

  ~RingDeque() {
    clear();
    if (slots_ != nullptr) {
      ::operator delete(slots_, capacity_ * sizeof(T), kAlign);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Element `i` counted from the front (0 == oldest).
  [[nodiscard]] T& operator[](std::size_t i) { return *slot(head_ + i); }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return *slot(head_ + i);
  }

  [[nodiscard]] T& front() { return *slot(head_); }
  [[nodiscard]] const T& front() const { return *slot(head_); }
  [[nodiscard]] T& back() { return *slot(head_ + size_ - 1); }
  [[nodiscard]] const T& back() const { return *slot(head_ + size_ - 1); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* p = slot(head_ + size_);
    std::construct_at(p, std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_front() {
    std::destroy_at(slot(head_));
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
  }

  /// Pre-sizes the ring for at least `n` elements.
  void reserve(std::size_t n) {
    while (capacity_ < n) grow();
  }

 private:
  static constexpr std::align_val_t kAlign{alignof(T)};

  [[nodiscard]] T* slot(std::size_t logical) const {
    return slots_ + (logical & (capacity_ - 1));
  }

  void grow() {
    const std::size_t newCap = capacity_ == 0 ? 8 : capacity_ * 2;
    T* fresh =
        static_cast<T*>(::operator new(newCap * sizeof(T), kAlign));
    for (std::size_t i = 0; i < size_; ++i) {
      T* old = slot(head_ + i);
      std::construct_at(fresh + i, std::move(*old));
      std::destroy_at(old);
    }
    if (slots_ != nullptr) {
      ::operator delete(slots_, capacity_ * sizeof(T), kAlign);
    }
    slots_ = fresh;
    capacity_ = newCap;
    head_ = 0;
  }

  T* slots_ = nullptr;
  std::size_t capacity_ = 0;  // always a power of two (or 0)
  std::size_t head_ = 0;      // physical index of the front element
  std::size_t size_ = 0;
};

}  // namespace glr::sim
