#include "sim/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace glr::sim {

double Rng::exponential(double mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument{"Rng::exponential: mean must be > 0"};
  }
  // Avoid log(0) by mapping the zero draw to the smallest positive ULP.
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace glr::sim
