#pragma once
/// \file inplace_function.hpp
/// Small-buffer-optimized move-only callable, the kernel's replacement for
/// `std::function`.
///
/// Every event callback in the hot path (MAC backoff/ACK timers, channel
/// transmission ends, hello beacons, GLR custody/cache timeouts) is a lambda
/// capturing `this` plus a few scalars, well under `kSimCallbackCapacity`
/// bytes; those are stored inline in the event slab so scheduling allocates
/// nothing. Oversized callables still work — they fall back to one heap
/// allocation — but `InplaceFunction::kFitsInline<F>` lets tests
/// `static_assert` that the callbacks the simulation actually schedules never
/// take that path.

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace glr::sim {

/// Inline capture budget for simulator callbacks. Sized for the largest
/// lambda the protocol stack schedules (`[this, key, sentAt]`-style custody
/// timers) with headroom; see the static_asserts in tests/test_sim.cpp.
inline constexpr std::size_t kSimCallbackCapacity = 48;

template <class Signature, std::size_t Capacity = kSimCallbackCapacity>
class InplaceFunction;  // undefined; specialized for function signatures

template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  /// True when `F` is stored in the inline buffer (no heap allocation).
  template <class F>
  static constexpr bool kFitsInline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit) — drop-in for std::function
    if constexpr (kTrivialInline<D>) {
      // Fast path for the kernel's dominant case: a lambda over `this` and
      // scalars relocates with a fixed-size copy and needs no destructor, so
      // moving/destroying events costs no indirect calls at all.
      ::new (buffer()) D(std::forward<F>(f));
      vtable_ = &kTrivialVTable<D>;
    } else if constexpr (kFitsInline<D>) {
      ::new (buffer()) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (buffer()) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { moveFrom(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  /// Destroys the held callable (if any); leaves the function empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(buffer());
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  R operator()(Args... args) {
    return vtable_->invoke(buffer(), std::forward<Args>(args)...);
  }

 private:
  /// Trivially-copyable inline callables take the no-indirect-call path.
  template <class D>
  static constexpr bool kTrivialInline =
      kFitsInline<D> && std::is_trivially_copyable_v<D> &&
      std::is_trivially_destructible_v<D>;

  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable from `from` into `to`, then destroys the
    /// source; both point at inline buffers. Null means "memcpy trivialSize
    /// bytes" (trivially-relocatable callable).
    void (*relocate)(void* from, void* to) noexcept;
    /// Null means trivially destructible: nothing to do.
    void (*destroy)(void*) noexcept;
    /// Callable byte size for the memcpy relocation path; 0 otherwise.
    std::size_t trivialSize;
  };

  template <class D>
  static constexpr VTable kTrivialVTable{
      [](void* p, Args&&... args) -> R {
        return std::invoke(*static_cast<D*>(p), std::forward<Args>(args)...);
      },
      nullptr,
      nullptr,
      // Captureless callables carry no state; copying their (uninitialized)
      // placeholder byte would be read-of-indeterminate noise.
      std::is_empty_v<D> ? 0 : sizeof(D),
  };

  template <class D>
  static constexpr VTable kInlineVTable{
      [](void* p, Args&&... args) -> R {
        return std::invoke(*static_cast<D*>(p), std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        D* src = static_cast<D*>(from);
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      0,
  };

  template <class D>
  static constexpr VTable kHeapVTable{
      [](void* p, Args&&... args) -> R {
        return std::invoke(**static_cast<D**>(p), std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        // The payload stays put on the heap; only the pointer relocates.
        ::new (to) D*(*static_cast<D**>(from));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
      0,
  };

  void moveFrom(InplaceFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      if (other.vtable_->relocate != nullptr) {
        other.vtable_->relocate(other.buffer(), buffer());
      } else {
        std::memcpy(buffer(), other.buffer(), other.vtable_->trivialSize);
      }
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  [[nodiscard]] void* buffer() noexcept { return storage_; }

  static_assert(Capacity >= sizeof(void*),
                "capacity must hold at least the heap-fallback pointer");

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace glr::sim
