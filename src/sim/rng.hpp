#pragma once
/// \file rng.hpp
/// Deterministic random number generation for simulations.
///
/// Every simulation run must be a pure function of (configuration, seed), so
/// we use a counter-based splitting scheme: a master seed is expanded by
/// SplitMix64 into independent xoshiro256** streams, one per subsystem
/// (placement, mobility, traffic, MAC jitter, ...). Perturbing one subsystem
/// therefore never changes the random draws seen by another.

#include <array>
#include <cstdint>
#include <limits>

namespace glr::sim {

/// SplitMix64: used to expand seeds into full 256-bit xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
/// be plugged into `<random>` distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Derives an independent stream: deterministic in (this stream's seed
  /// material, streamId) but decorrelated from this stream's future output.
  [[nodiscard]] Rng fork(std::uint64_t streamId) const {
    std::uint64_t sm = s_[0] ^ (0x9e3779b97f4a7c15ULL * (streamId + 1));
    sm ^= s_[2];
    return Rng{splitmix64(sm)};
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// The full 256-bit generator state, for checkpoint/restore. A stream
  /// restored via setState() continues its draw sequence exactly where
  /// state() captured it.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void setState(const std::array<std::uint64_t, 4>& words) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = words[i];
  }

 private:
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace glr::sim
