#pragma once
/// \file payload_codec.hpp
/// Content-based serialization of packets and protocol payloads.
///
/// A net::Payload is a refcounted arena handle, so the checkpoint stores the
/// *value* it carries plus a type tag, and restore re-creates a fresh handle
/// holding an equal value (arena/refcount state is invisible to the
/// simulation — packets are immutable once shared, so handle identity never
/// matters, only content). The closed set of payload types is the protocol
/// vocabulary: hello beacons, DTN messages, custody acks, epidemic
/// summary/request vectors and spray handovers. An unknown payload type is a
/// loud error at *save* time, so adding a protocol without extending this
/// codec cannot produce a silently-wrong checkpoint.
///
/// Only .cpp files include this header (it pulls in the routing headers).

#include "checkpoint/codec.hpp"
#include "checkpoint/message_codec.hpp"
#include "core/glr_agent.hpp"
#include "net/neighbor.hpp"
#include "net/packet.hpp"
#include "routing/epidemic.hpp"
#include "routing/spray_wait.hpp"

namespace glr::ckpt {

void savePayload(Encoder& e, const net::Payload& p);
[[nodiscard]] net::Payload loadPayload(Decoder& d);

void savePacket(Encoder& e, const net::Packet& p);
[[nodiscard]] net::Packet loadPacket(Decoder& d);

}  // namespace glr::ckpt
