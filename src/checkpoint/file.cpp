#include "checkpoint/file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "checkpoint/codec.hpp"

namespace glr::ckpt {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error{"checkpoint '" + path + "': " + what};
}

[[noreturn]] void failErrno(const std::string& path, const std::string& what) {
  fail(path, what + " (errno " + std::to_string(errno) + ": " +
                 std::strerror(errno) + ")");
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

const Section& CheckpointFile::section(std::uint32_t id,
                                       const std::string& path) const {
  for (const Section& s : sections) {
    if (s.id == id) return s;
  }
  fail(path, "missing section id " + std::to_string(id));
}

void CheckpointFile::write(const std::string& path) const {
  Encoder e;
  e.u32(kCheckpointMagic);
  e.u16(kCheckpointVersion);
  e.u16(0);  // flags
  e.u64(configDigest);
  e.f64(simNow);
  e.u64(nextSeq);
  e.u64(executed);
  e.u32(static_cast<std::uint32_t>(sections.size()));
  e.u32(0);  // reserved
  for (std::size_t i = 0; i < sections.size(); ++i) {
    for (std::size_t j = i + 1; j < sections.size(); ++j) {
      if (sections[i].id == sections[j].id) {
        fail(path, "duplicate section id " + std::to_string(sections[i].id));
      }
    }
    e.u32(sections[i].id);
    e.u64(sections[i].bytes.size());
    e.bytes(sections[i].bytes.data(), sections[i].bytes.size());
  }
  const std::vector<unsigned char>& body = e.data();
  e.u64(fnv1a64(body.data(), body.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) failErrno(path, "cannot open '" + tmp + "' for writing");
  const std::vector<unsigned char>& all = e.data();
  if (std::fwrite(all.data(), 1, all.size(), f) != all.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    failErrno(path, "short write to '" + tmp + "'");
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    failErrno(path, "flush of '" + tmp + "' failed");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    failErrno(path, "fsync of '" + tmp + "' failed");
  }
#endif
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    failErrno(path, "close of '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    failErrno(path, "rename of '" + tmp + "' failed");
  }
}

CheckpointFile CheckpointFile::read(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) failErrno(path, "cannot open for reading");
  std::vector<unsigned char> all;
  unsigned char buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
    all.insert(all.end(), buf, buf + got);
    if (got < sizeof(buf)) {
      if (std::ferror(f) != 0) {
        std::fclose(f);
        failErrno(path, "read failed");
      }
      break;
    }
  }
  std::fclose(f);

  constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8 + 8 + 8 + 8 + 4 + 4;
  if (all.size() < kHeaderBytes + 8) {
    fail(path, "file too short for header (" + std::to_string(all.size()) +
                   " bytes)");
  }
  // The trailing checksum covers everything before it; verify first so every
  // later structural error is a real layout defect, not bit rot.
  Decoder tail{all.data() + all.size() - 8, 8, "'" + path + "'"};
  const std::uint64_t storedSum = tail.u64();
  const std::uint64_t actualSum = fnv1a64(all.data(), all.size() - 8);
  if (storedSum != actualSum) {
    fail(path, "checksum mismatch (file is truncated or corrupt)");
  }

  Decoder d{all.data(), all.size() - 8, "'" + path + "'"};
  const std::uint32_t magic = d.u32();
  if (magic != kCheckpointMagic) {
    fail(path, "bad magic (not a checkpoint file)");
  }
  const std::uint16_t version = d.u16();
  if (version != kCheckpointVersion) {
    fail(path, "unsupported version " + std::to_string(version) +
                   " (expected " + std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint16_t flags = d.u16();
  if (flags != 0) fail(path, "unsupported flags " + std::to_string(flags));

  CheckpointFile out;
  out.configDigest = d.u64();
  out.simNow = d.f64();
  out.nextSeq = d.u64();
  out.executed = d.u64();
  const std::uint32_t sectionCount = d.u32();
  const std::uint32_t reserved = d.u32();
  if (reserved != 0) fail(path, "nonzero reserved header field");
  out.sections.reserve(sectionCount);
  for (std::uint32_t i = 0; i < sectionCount; ++i) {
    if (d.remaining() < 12) {
      fail(path, "truncated mid-section-header (section " +
                     std::to_string(i) + " of " +
                     std::to_string(sectionCount) + ")");
    }
    Section s;
    s.id = d.u32();
    const std::uint64_t len = d.u64();
    if (len > d.remaining()) {
      fail(path, "section id " + std::to_string(s.id) + " length " +
                     std::to_string(len) + " overruns file (" +
                     std::to_string(d.remaining()) + " bytes left)");
    }
    for (const Section& prev : out.sections) {
      if (prev.id == s.id) {
        fail(path, "duplicate section id " + std::to_string(s.id));
      }
    }
    s.bytes.resize(static_cast<std::size_t>(len));
    d.bytes(s.bytes.data(), s.bytes.size());
    out.sections.push_back(std::move(s));
  }
  if (d.remaining() != 0) {
    fail(path, std::to_string(d.remaining()) +
                   " trailing bytes after last section");
  }
  return out;
}

}  // namespace glr::ckpt
