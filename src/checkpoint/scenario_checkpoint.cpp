#include "checkpoint/scenario_checkpoint.hpp"

#include <stdexcept>
#include <string>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "checkpoint/file.hpp"
#include "dtn/metrics.hpp"
#include "experiment/traffic.hpp"
#include "mac/mac.hpp"
#include "net/churn.hpp"
#include "net/faults.hpp"
#include "net/world.hpp"
#include "routing/dtn_agent.hpp"

namespace glr::ckpt {

namespace {

/// Section ids (on-disk format: append-only, never renumber).
enum SectionId : std::uint32_t {
  kSectionEvents = 1,   // pending (time, seq, desc) records, fire order
  kSectionChannel = 2,  // transmission history ring + stats
  kSectionNodes = 3,    // per node: MAC then routing agent
  kSectionChurn = 4,    // present iff churn is enabled
  kSectionFaults = 5,   // present iff fault injection is enabled
  kSectionTraffic = 6,  // present iff a stochastic traffic model runs
  kSectionMetrics = 7,  // delivery bitmaps, counters, latency sketches
};

void digestMobility(Encoder& e, const experiment::MobilitySpec& m) {
  e.str(m.model);
  e.i32(m.numClusters);
  const mobility::ModelParams& p = m.params;
  // area/speedMin/speedMax/pause are overlaid from ScenarioConfig (already
  // digested); home is overlaid per node from the cluster stream.
  e.f64(p.legDuration);
  e.f64(p.updateInterval);
  e.f64(p.alpha);
  e.f64(p.meanSpeed);
  e.f64(p.gridSpacing);
  e.f64(p.turnProb);
  e.f64(p.clusterStddev);
  e.f64(p.roamProb);
}

void digestTraffic(Encoder& e, const experiment::TrafficSpec& t) {
  e.str(t.model);
  e.f64(t.rate);
  e.u64(t.maxMessages);
  e.f64(t.onMean);
  e.f64(t.offMean);
  e.f64(t.hotspotFraction);
  e.f64(t.hotspotWeight);
  e.f64(t.flashStart);
  e.f64(t.flashDuration);
  e.f64(t.flashMultiplier);
}

void digestFaults(Encoder& e, const experiment::FaultSpec& f) {
  e.boolean(f.enabled);
  const net::FaultProcess::Params& p = f.params;
  e.f64(p.start);
  e.f64(p.burstRate);
  e.f64(p.burstMean);
  e.f64(p.lossProb);
  e.f64(p.corruptProb);
  e.f64(p.stallRate);
  e.f64(p.stallMean);
  const net::AdversaryModel::Params& a = p.adversary;
  e.f64(a.blackholeFraction);
  e.f64(a.greyholeFraction);
  e.f64(a.greyholeDropProb);
  e.f64(a.selfishFraction);
  e.f64(a.flappingFraction);
  e.f64(a.flapUpMean);
  e.f64(a.flapDownMean);
}

/// Runs `fill` into a fresh encoder and returns the bytes.
template <class Fill>
[[nodiscard]] std::vector<unsigned char> encoded(Fill&& fill) {
  Encoder e;
  fill(e);
  return e.take();
}

[[nodiscard]] bool hasSection(const CheckpointFile& f, std::uint32_t id) {
  for (const Section& s : f.sections) {
    if (s.id == id) return true;
  }
  return false;
}

/// Loud agreement check between a config-built component and a section.
void requireAgreement(bool componentPresent, bool sectionPresent,
                      const char* what, const std::string& path) {
  if (componentPresent == sectionPresent) return;
  throw std::runtime_error{std::string{"checkpoint "} + path + ": " + what +
                           (sectionPresent
                                ? " section present but the configuration "
                                  "does not build that component"
                                : " component built but its section is "
                                  "missing from the checkpoint")};
}

}  // namespace

std::uint64_t configDigest(const experiment::ScenarioConfig& cfg) {
  Encoder e;
  e.u16(1);  // digest schema version
  e.i32(static_cast<std::int32_t>(cfg.protocol));
  e.i32(cfg.numNodes);
  e.f64(cfg.areaWidth);
  e.f64(cfg.areaHeight);
  e.f64(cfg.radius);
  e.f64(cfg.speedMin);
  e.f64(cfg.speedMax);
  e.f64(cfg.pause);
  e.f64(cfg.bitRateBps);
  e.size(cfg.queueLimit);
  digestMobility(e, cfg.mobility);
  e.boolean(cfg.churn.enabled);
  e.f64(cfg.churn.params.fraction);
  e.f64(cfg.churn.params.upMean);
  e.f64(cfg.churn.params.downMean);
  e.f64(cfg.churn.params.start);
  e.f64(cfg.radiusSpreadMin);
  e.f64(cfg.radiusSpreadMax);
  e.f64(cfg.simTime);
  e.i32(cfg.numMessages);
  e.f64(cfg.messageInterval);
  e.f64(cfg.trafficStart);
  e.i32(cfg.trafficNodes);
  digestTraffic(e, cfg.traffic);
  digestFaults(e, cfg.faults);
  e.size(cfg.storageLimit);
  e.f64(cfg.checkInterval);
  e.boolean(cfg.custody);
  e.boolean(cfg.faceRouting);
  e.boolean(cfg.witnessRule);
  e.i32(cfg.copiesOverride);
  e.i32(static_cast<std::int32_t>(cfg.locationMode));
  e.f64(cfg.helloInterval);
  e.f64(cfg.cacheTimeout);
  e.i32(cfg.sprayBudget);
  e.size(cfg.custodyWatermark);
  e.boolean(cfg.congestionControl);
  e.boolean(cfg.glrRecovery);
  e.i32(cfg.glrSuspicionThreshold);
  e.i32(cfg.glrRecoveryAfterFailures);
  e.i32(cfg.glrRecoveryFanout);
  e.f64(cfg.glrRecoveryCooldown);
  e.f64(cfg.glrSuspicionTtl);
  e.f64(cfg.messageTtl);
  e.i32(static_cast<std::int32_t>(cfg.kernelQueue));
  e.i32(static_cast<std::int32_t>(cfg.spatialIndex));
  e.f64(cfg.neighborEvictAfterFactor);
  e.f64(cfg.locationEvictAfter);
  e.f64(cfg.checkpointEvery);
  e.u64(cfg.seed);
  const std::vector<unsigned char> bytes = e.take();
  return fnv1a64(bytes.data(), bytes.size());
}

void writeCheckpoint(const std::string& path, const ScenarioComponents& c) {
  if (c.sim == nullptr || c.world == nullptr || c.cfg == nullptr ||
      c.agents == nullptr || c.metrics == nullptr) {
    throw std::logic_error{"writeCheckpoint: incomplete components"};
  }
  CheckpointFile f;
  f.configDigest = configDigest(*c.cfg);
  f.simNow = c.sim->now();
  f.nextSeq = c.sim->nextSeq();
  f.executed = c.sim->eventsExecuted();

  // Pending events, in exact fire order. An undescribed event is a silently
  // unrestorable checkpoint, so it refuses here, at snapshot time.
  const auto pending = c.sim->pendingEvents();
  f.addSection(kSectionEvents, encoded([&](Encoder& e) {
    e.size(pending.size());
    for (const auto& ev : pending) {
      if (ev.desc.kind == kNone) {
        throw std::runtime_error{
            "writeCheckpoint: pending event at t=" +
            std::to_string(sim::Simulator::bitsToTime(ev.key.timeBits)) +
            " seq=" + std::to_string(ev.key.seq) +
            " has no descriptor (untagged schedule site)"};
      }
      e.u64(ev.key.timeBits);
      e.u64(ev.key.seq);
      e.u16(ev.desc.kind);
      e.u8(ev.desc.b0);
      e.u8(ev.desc.b1);
      e.i32(ev.desc.i0);
      e.i32(ev.desc.i1);
      e.u64(ev.desc.u0);
      e.u64(ev.desc.u1);
      e.f64(ev.desc.f0);
      e.f64(ev.desc.f1);
    }
  }));

  f.addSection(kSectionChannel, encoded([&](Encoder& e) {
    c.world->channel().saveState(e);
  }));

  f.addSection(kSectionNodes, encoded([&](Encoder& e) {
    e.size(c.agents->size());
    for (std::size_t i = 0; i < c.agents->size(); ++i) {
      c.world->macOf(static_cast<int>(i)).saveState(e);
      (*c.agents)[i]->saveState(e);
    }
  }));

  if (c.churn != nullptr) {
    f.addSection(kSectionChurn,
                 encoded([&](Encoder& e) { c.churn->saveState(e); }));
  }
  if (c.faults != nullptr) {
    f.addSection(kSectionFaults,
                 encoded([&](Encoder& e) { c.faults->saveState(e); }));
  }
  if (c.traffic != nullptr) {
    f.addSection(kSectionTraffic,
                 encoded([&](Encoder& e) { c.traffic->saveState(e); }));
  }
  f.addSection(kSectionMetrics,
               encoded([&](Encoder& e) { c.metrics->saveState(e); }));

  f.write(path);
}

void restoreCheckpoint(const std::string& path, const ScenarioComponents& c) {
  if (c.sim == nullptr || c.world == nullptr || c.cfg == nullptr ||
      c.agents == nullptr || c.metrics == nullptr) {
    throw std::logic_error{"restoreCheckpoint: incomplete components"};
  }
  if (!c.cfg->tracePath.empty()) {
    throw std::runtime_error{
        "restoreCheckpoint: refusing to restore with tracing armed — the "
        "flight recorder cannot rewind to mid-run state (re-run the traced "
        "scenario from the start instead)"};
  }
  const CheckpointFile f = CheckpointFile::read(path);
  const std::uint64_t expect = configDigest(*c.cfg);
  if (f.configDigest != expect) {
    throw std::runtime_error{
        "checkpoint " + path +
        ": was written under a different configuration (digest " +
        std::to_string(f.configDigest) + ", this run " +
        std::to_string(expect) + ") — refusing to restore"};
  }
  requireAgreement(c.churn != nullptr, hasSection(f, kSectionChurn), "churn",
                   path);
  requireAgreement(c.faults != nullptr, hasSection(f, kSectionFaults),
                   "faults", path);
  requireAgreement(c.traffic != nullptr, hasSection(f, kSectionTraffic),
                   "traffic", path);

  // Kernel first: drop every construction-time event, rewind the clock and
  // counters, then overwrite component state before any event re-creation
  // (restore*Event methods re-arm cancellation handles that restoreState
  // resets).
  c.sim->clearPending();
  c.sim->restoreClock(f.simNow, f.nextSeq, f.executed);
  c.world->invalidatePositionCache();

  {
    const Section& s = f.section(kSectionChannel, path);
    Decoder d(s.bytes.data(), s.bytes.size(), path + " channel section");
    c.world->channel().restoreState(d);
    d.expectEnd();
  }
  {
    const Section& s = f.section(kSectionNodes, path);
    Decoder d(s.bytes.data(), s.bytes.size(), path + " nodes section");
    const std::size_t n = d.checkedSize(d.u64(), 1);
    if (n != c.agents->size()) d.fail("node count mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      try {
        c.world->macOf(static_cast<int>(i)).restoreState(d);
        (*c.agents)[i]->restoreState(d);
      } catch (const std::runtime_error& err) {
        throw std::runtime_error{std::string{err.what()} + " [node " +
                                 std::to_string(i) + "]"};
      }
    }
    d.expectEnd();
  }
  if (c.churn != nullptr) {
    const Section& s = f.section(kSectionChurn, path);
    Decoder d(s.bytes.data(), s.bytes.size(), path + " churn section");
    c.churn->restoreState(d);
    d.expectEnd();
  }
  if (c.faults != nullptr) {
    const Section& s = f.section(kSectionFaults, path);
    Decoder d(s.bytes.data(), s.bytes.size(), path + " faults section");
    c.faults->restoreState(d);
    d.expectEnd();
  }
  if (c.traffic != nullptr) {
    const Section& s = f.section(kSectionTraffic, path);
    Decoder d(s.bytes.data(), s.bytes.size(), path + " traffic section");
    c.traffic->restoreState(d);
    d.expectEnd();
  }
  {
    const Section& s = f.section(kSectionMetrics, path);
    Decoder d(s.bytes.data(), s.bytes.size(), path + " metrics section");
    c.metrics->restoreState(d);
    d.expectEnd();
  }

  // Pending events last, each dispatched to its owning component and
  // re-created under the exact saved (timeBits, seq) key.
  const Section& s = f.section(kSectionEvents, path);
  Decoder d(s.bytes.data(), s.bytes.size(), path + " events section");
  const std::size_t nEvents = d.checkedSize(d.u64(), 58);
  const int numNodes = static_cast<int>(c.agents->size());
  for (std::size_t i = 0; i < nEvents; ++i) {
    sim::EventKey key{};
    key.timeBits = d.u64();
    key.seq = d.u64();
    sim::EventDesc desc;
    desc.kind = d.u16();
    desc.b0 = d.u8();
    desc.b1 = d.u8();
    desc.i0 = d.i32();
    desc.i1 = d.i32();
    desc.u0 = d.u64();
    desc.u1 = d.u64();
    desc.f0 = d.f64();
    desc.f1 = d.f64();

    const auto nodeOf = [&](std::int32_t id) {
      if (id < 0 || id >= numNodes) {
        d.fail("event names node " + std::to_string(id) +
               " outside the population");
      }
      return id;
    };

    switch (desc.kind) {
      case kChannelTxEnd:
        c.world->channel().restoreTxEndEvent(key, desc.u0);
        break;
      case kMacAttempt:
        c.world->macOf(nodeOf(desc.i0)).restoreAttemptEvent(key);
        break;
      case kMacBackoffExpire:
        c.world->macOf(nodeOf(desc.i0)).restoreBackoffEvent(key);
        break;
      case kMacTxEnd:
        c.world->macOf(nodeOf(desc.i0))
            .restoreTxEndEvent(key, desc.b0 != 0, desc.u0);
        break;
      case kMacAckTimeout:
        c.world->macOf(nodeOf(desc.i0)).restoreAckTimeoutEvent(key);
        break;
      case kMacAckReply:
        c.world->macOf(nodeOf(desc.i0))
            .restoreAckReplyEvent(key, desc.i1, desc.u0, desc.f0, desc.u1);
        break;
      case kAgentStart:
        c.world->restoreAgentStartEvent(key, nodeOf(desc.i0));
        break;
      case kChurnToggle:
        if (c.churn == nullptr) d.fail("churn event without churn");
        c.churn->restoreToggleEvent(key,
                                    static_cast<std::size_t>(desc.u0));
        break;
      case kFaultBurstNext:
        if (c.faults == nullptr) d.fail("fault event without faults");
        c.faults->restoreBurstNextEvent(key);
        break;
      case kFaultBurstEnd:
        if (c.faults == nullptr) d.fail("fault event without faults");
        c.faults->restoreBurstEndEvent(key);
        break;
      case kFaultStallNext:
        if (c.faults == nullptr) d.fail("fault event without faults");
        c.faults->restoreStallNextEvent(key);
        break;
      case kFaultStallEnd:
        if (c.faults == nullptr) d.fail("fault event without faults");
        c.faults->restoreStallEndEvent(key, nodeOf(desc.i0));
        break;
      case kFaultFlap:
        if (c.faults == nullptr) d.fail("fault event without faults");
        c.faults->restoreFlapEvent(key, nodeOf(desc.i0), desc.b0 != 0);
        break;
      case kHello:
      case kGlrPeriodicCheck:
      case kGlrQueuedCheck:
      case kGlrAckRetry:
      case kGlrCustodyTimer:
      case kEpidemicExchange:
      case kSprayExpiry:
      case kDirectCheck:
        (*c.agents)[static_cast<std::size_t>(nodeOf(desc.i0))]->restoreEvent(
            key, desc);
        break;
      case kTrafficPaperArrival: {
        routing::DtnAgent* agent =
            (*c.agents)[static_cast<std::size_t>(nodeOf(desc.i0))];
        const int dst = nodeOf(desc.i1);
        c.sim->scheduleKeyed(key, desc,
                             [agent, dst] { agent->originate(dst); });
        break;
      }
      case kTrafficArrival:
        if (c.traffic == nullptr) d.fail("traffic event without process");
        c.traffic->restoreArrivalEvent(key);
        break;
      case kTrafficSourceToggle:
        if (c.traffic == nullptr) d.fail("traffic event without process");
        c.traffic->restoreToggleEvent(key,
                                      static_cast<std::size_t>(desc.u0));
        break;
      case kTrafficSourceArrival:
        if (c.traffic == nullptr) d.fail("traffic event without process");
        c.traffic->restoreSourceArrivalEvent(
            key, static_cast<std::size_t>(desc.u0), desc.u1);
        break;
      case kCheckpointTimer:
        if (!c.restoreCheckpointTimer) {
          d.fail("checkpoint-timer event but no writer hook installed");
        }
        c.restoreCheckpointTimer(key);
        break;
      default:
        d.fail("unknown event kind " + std::to_string(desc.kind));
    }
  }
  d.expectEnd();
}

}  // namespace glr::ckpt
