#pragma once
/// \file file.hpp
/// Checkpoint container: a length-prefixed, checksummed binary file holding
/// the full simulation state as tagged sections.
///
/// Layout (all integers little-endian):
///
///   [u32 magic "GLRK"] [u16 version] [u16 flags=0]
///   [u64 configDigest] [u64 simNow bits] [u64 nextSeq] [u64 executed]
///   [u32 sectionCount] [u32 reserved=0]
///   sectionCount x ( [u32 id] [u64 length] [length bytes] )
///   [u64 fnv1a-64 of every preceding byte]
///
/// The reader validates exactly like trace/reader.cpp: short or bad header,
/// unsupported version, truncated or overrunning section, duplicate section
/// id, checksum mismatch, and trailing bytes all throw std::runtime_error
/// naming the path and the defect. The writer is crash-safe: it assembles
/// the file beside the target (path + ".tmp"), fsyncs, then renames — a
/// crash mid-write leaves the previous checkpoint intact and at worst a
/// detectable temp file, never a silently-corrupt current one.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace glr::ckpt {

inline constexpr std::uint32_t kCheckpointMagic = 0x4B524C47;  // "GLRK"
inline constexpr std::uint16_t kCheckpointVersion = 1;

/// FNV-1a 64-bit over a byte range; also used for the config digest.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t n,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// One state section; ids are assigned by scenario_checkpoint.cpp.
struct Section {
  std::uint32_t id = 0;
  std::vector<unsigned char> bytes;
};

struct CheckpointFile {
  std::uint64_t configDigest = 0;
  double simNow = 0.0;
  std::uint64_t nextSeq = 0;
  std::uint64_t executed = 0;
  std::vector<Section> sections;

  /// Appends a section (ids must be unique; enforced on write and read).
  void addSection(std::uint32_t id, std::vector<unsigned char> bytes) {
    sections.push_back(Section{id, std::move(bytes)});
  }

  /// The section with `id`, or throws naming the missing id.
  [[nodiscard]] const Section& section(std::uint32_t id,
                                       const std::string& path) const;

  /// Serializes and atomically replaces `path` (tmp + fsync + rename).
  /// Throws std::runtime_error with path + errno on any I/O failure.
  void write(const std::string& path) const;

  /// Reads and fully validates `path`. Throws std::runtime_error on any
  /// structural defect (see file comment).
  [[nodiscard]] static CheckpointFile read(const std::string& path);
};

}  // namespace glr::ckpt
