#pragma once
/// \file message_codec.hpp
/// Field-by-field serialization of the DTN message vocabulary (points,
/// message ids, copy keys, full message headers). Split out of
/// payload_codec.hpp so storage-layer code (dtn::MessageBuffer) can
/// serialize messages without pulling in the routing/protocol headers.
///
/// Implementations live in payload_codec.cpp; the field order is the
/// on-disk format and is append-only.

#include "checkpoint/codec.hpp"
#include "dtn/message.hpp"
#include "geometry/point.hpp"

namespace glr::ckpt {

void savePoint(Encoder& e, const geom::Point2& p);
[[nodiscard]] geom::Point2 loadPoint(Decoder& d);

void saveMessageId(Encoder& e, const dtn::MessageId& id);
[[nodiscard]] dtn::MessageId loadMessageId(Decoder& d);

void saveCopyKey(Encoder& e, const dtn::CopyKey& key);
[[nodiscard]] dtn::CopyKey loadCopyKey(Decoder& d);

void saveMessage(Encoder& e, const dtn::Message& m);
[[nodiscard]] dtn::Message loadMessage(Decoder& d);

}  // namespace glr::ckpt
