#pragma once
/// \file scenario_checkpoint.hpp
/// Whole-scenario snapshot/restore orchestration.
///
/// A checkpoint captures everything a mid-run scenario owns that is not a
/// pure function of (config, seed): the kernel clock and pending-event set
/// (as descriptor-tagged (time, seq) records — see event_kinds.hpp), the
/// channel history ring, every node's MAC and routing-agent state, the
/// churn/fault/traffic processes and the metrics sketches. Restoring into a
/// freshly constructed scenario of the SAME config continues the run
/// bit-identically: construction-derived state (positions, per-node RNG
/// forks, spatial index) is rebuilt by construction, serialized state
/// overwrites every mutable field, and the pending events are re-created
/// under their exact original keys.
///
/// Mismatches refuse loudly: a checkpoint restored into a different
/// configuration (digest), an unsupported version, a truncated or corrupt
/// file, or a descriptor whose owning component is absent all throw
/// std::runtime_error naming the defect.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "sim/simulator.hpp"

namespace glr::net {
class World;
class ChurnProcess;
class FaultProcess;
}
namespace glr::dtn {
class MetricsCollector;
}
namespace glr::routing {
class DtnAgent;
}
namespace glr::experiment {
class TrafficProcess;
}

namespace glr::ckpt {

/// Live components of one running scenario, wired up by runScenario.
/// Null pointers mean "this config does not build that component" — the
/// writer skips the section and the reader enforces agreement.
struct ScenarioComponents {
  sim::Simulator* sim = nullptr;
  net::World* world = nullptr;
  const experiment::ScenarioConfig* cfg = nullptr;
  const std::vector<routing::DtnAgent*>* agents = nullptr;
  dtn::MetricsCollector* metrics = nullptr;
  net::ChurnProcess* churn = nullptr;             // null unless churn enabled
  net::FaultProcess* faults = nullptr;            // null unless faults enabled
  experiment::TrafficProcess* traffic = nullptr;  // null for the "paper" model
  /// Re-creates the periodic checkpoint-writer event under its saved key
  /// (the writer is a runScenario lambda, so the scenario supplies the
  /// hook). Required iff the snapshot holds a kCheckpointTimer event.
  std::function<void(const sim::EventKey&)> restoreCheckpointTimer;
};

/// Digest over every ScenarioConfig field that shapes the simulated event
/// sequence. Output paths (tracePath, nodeCountersPath, checkpointPath,
/// restoreFrom) and the trace ring size are excluded; checkpointEvery is
/// INCLUDED because the periodic writer event is part of the sequence.
[[nodiscard]] std::uint64_t configDigest(const experiment::ScenarioConfig& cfg);

/// Snapshots the full scenario state to `path` (atomic tmp+rename). Throws
/// if any pending event is undescribed (kind == kNone) — that would be a
/// silently unrestorable checkpoint.
void writeCheckpoint(const std::string& path, const ScenarioComponents& c);

/// Restores `path` into a freshly built scenario. Must run after every
/// component is constructed and started (their initial events are cleared)
/// and before Simulator::run. Refuses a digest mismatch, a version or
/// integrity defect, tracing armed on the restored run, or any event whose
/// owning component is missing.
void restoreCheckpoint(const std::string& path, const ScenarioComponents& c);

}  // namespace glr::ckpt
