#include "checkpoint/payload_codec.hpp"

namespace glr::ckpt {

namespace {

/// On-disk payload type tags — append only.
enum PayloadTag : std::uint8_t {
  kEmpty = 0,
  kHello = 1,
  kMessage = 2,
  kCustodyAck = 3,
  kSummaryVector = 4,
  kRequestVector = 5,
  kSprayData = 6,
};

}  // namespace

void savePoint(Encoder& e, const geom::Point2& p) {
  e.f64(p.x);
  e.f64(p.y);
}

geom::Point2 loadPoint(Decoder& d) {
  geom::Point2 p;
  p.x = d.f64();
  p.y = d.f64();
  return p;
}

void saveMessageId(Encoder& e, const dtn::MessageId& id) {
  e.i32(id.src);
  e.i32(id.seq);
}

dtn::MessageId loadMessageId(Decoder& d) {
  dtn::MessageId id;
  id.src = d.i32();
  id.seq = d.i32();
  return id;
}

void saveCopyKey(Encoder& e, const dtn::CopyKey& key) {
  saveMessageId(e, key.id);
  e.u8(static_cast<std::uint8_t>(key.flag));
}

dtn::CopyKey loadCopyKey(Decoder& d) {
  dtn::CopyKey key;
  key.id = loadMessageId(d);
  const std::uint8_t flag = d.u8();
  if (flag > 3) d.fail("copy key holds invalid tree flag");
  key.flag = static_cast<dtn::TreeFlag>(flag);
  return key;
}

void saveMessage(Encoder& e, const dtn::Message& m) {
  saveMessageId(e, m.id);
  e.i32(m.srcNode);
  e.i32(m.dstNode);
  e.f64(m.created);
  e.size(m.payloadBytes);
  e.f64(m.expiresAt);
  e.u8(static_cast<std::uint8_t>(m.flag));
  savePoint(e, m.destLoc);
  e.f64(m.destLocTime);
  e.boolean(m.destLocKnown);
  e.boolean(m.faceMode);
  savePoint(e, m.faceEntry);
  e.i32(m.facePrevHop);
  e.i32(m.faceEntryNode);
  e.i32(m.faceHops);
  e.boolean(m.destLocPerturbed);
  e.i32(m.hops);
  e.i32(m.stuckCount);
  e.i32(m.waitChecks);
  e.i32(m.retryBackoff);
  e.f64(m.lastPerturbAt);
  e.i32(m.deliveryFailures);
  e.f64(m.lastRecoveryAt);
  e.f64(m.faceCooldownUntil);
  e.i32(m.faceExhaustions);
}

dtn::Message loadMessage(Decoder& d) {
  dtn::Message m;
  m.id = loadMessageId(d);
  m.srcNode = d.i32();
  m.dstNode = d.i32();
  m.created = d.f64();
  m.payloadBytes = static_cast<std::size_t>(d.u64());  // simulated bytes
  m.expiresAt = d.f64();
  const std::uint8_t flag = d.u8();
  if (flag > 3) d.fail("message holds invalid tree flag");
  m.flag = static_cast<dtn::TreeFlag>(flag);
  m.destLoc = loadPoint(d);
  m.destLocTime = d.f64();
  m.destLocKnown = d.boolean();
  m.faceMode = d.boolean();
  m.faceEntry = loadPoint(d);
  m.facePrevHop = d.i32();
  m.faceEntryNode = d.i32();
  m.faceHops = d.i32();
  m.destLocPerturbed = d.boolean();
  m.hops = d.i32();
  m.stuckCount = d.i32();
  m.waitChecks = d.i32();
  m.retryBackoff = d.i32();
  m.lastPerturbAt = d.f64();
  m.deliveryFailures = d.i32();
  m.lastRecoveryAt = d.f64();
  m.faceCooldownUntil = d.f64();
  m.faceExhaustions = d.i32();
  return m;
}

namespace {

void saveIdVector(Encoder& e, const std::vector<dtn::MessageId>& ids) {
  e.size(ids.size());
  for (const dtn::MessageId& id : ids) saveMessageId(e, id);
}

std::vector<dtn::MessageId> loadIdVector(Decoder& d) {
  const std::size_t n = d.checkedSize(d.u64(), 8);
  std::vector<dtn::MessageId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(loadMessageId(d));
  return ids;
}

}  // namespace

void savePayload(Encoder& e, const net::Payload& p) {
  if (p.empty()) {
    e.u8(kEmpty);
    return;
  }
  if (const auto* hello = p.get<net::HelloPayload>()) {
    e.u8(kHello);
    e.i32(hello->id);
    savePoint(e, hello->pos);
    e.f64(hello->sentAt);
    e.size(hello->neighbors.size());
    for (const net::HelloPayload::Entry& entry : hello->neighbors) {
      e.i32(entry.id);
      savePoint(e, entry.pos);
      e.f64(entry.heardAt);
    }
    return;
  }
  if (const auto* msg = p.get<dtn::Message>()) {
    e.u8(kMessage);
    saveMessage(e, *msg);
    return;
  }
  if (const auto* ack = p.get<core::CustodyAck>()) {
    e.u8(kCustodyAck);
    saveCopyKey(e, ack->key);
    e.boolean(ack->accepted);
    return;
  }
  if (const auto* sv = p.get<routing::SummaryVector>()) {
    e.u8(kSummaryVector);
    saveIdVector(e, sv->ids);
    return;
  }
  if (const auto* req = p.get<routing::RequestVector>()) {
    e.u8(kRequestVector);
    saveIdVector(e, req->ids);
    return;
  }
  if (const auto* spray = p.get<routing::SprayData>()) {
    e.u8(kSprayData);
    saveMessage(e, spray->message);
    e.i32(spray->budget);
    return;
  }
  throw std::runtime_error{
      "checkpoint: packet carries an unknown payload type (extend "
      "payload_codec.cpp before checkpointing this protocol)"};
}

net::Payload loadPayload(Decoder& d) {
  const std::uint8_t tag = d.u8();
  switch (tag) {
    case kEmpty:
      return {};
    case kHello: {
      net::Payload p = net::Payload::create<net::HelloPayload>();
      auto& hello = p.mutableValue<net::HelloPayload>();
      hello.id = d.i32();
      hello.pos = loadPoint(d);
      hello.sentAt = d.f64();
      const std::size_t n = d.checkedSize(d.u64(), 20);
      hello.neighbors.clear();
      hello.neighbors.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        net::HelloPayload::Entry entry;
        entry.id = d.i32();
        entry.pos = loadPoint(d);
        entry.heardAt = d.f64();
        hello.neighbors.push_back(entry);
      }
      return p;
    }
    case kMessage:
      return net::Payload::of(loadMessage(d));
    case kCustodyAck: {
      core::CustodyAck ack;
      ack.key = loadCopyKey(d);
      ack.accepted = d.boolean();
      return net::Payload::of(ack);
    }
    case kSummaryVector: {
      net::Payload p = net::Payload::create<routing::SummaryVector>();
      p.mutableValue<routing::SummaryVector>().ids = loadIdVector(d);
      return p;
    }
    case kRequestVector: {
      net::Payload p = net::Payload::create<routing::RequestVector>();
      p.mutableValue<routing::RequestVector>().ids = loadIdVector(d);
      return p;
    }
    case kSprayData: {
      net::Payload p = net::Payload::create<routing::SprayData>();
      auto& spray = p.mutableValue<routing::SprayData>();
      spray.message = loadMessage(d);
      spray.budget = d.i32();
      return p;
    }
    default:
      d.fail("unknown payload tag " + std::to_string(tag));
  }
}

void savePacket(Encoder& e, const net::Packet& p) {
  e.size(p.bytes);
  e.str(p.kind);
  savePayload(e, p.payload);
}

net::Packet loadPacket(Decoder& d) {
  net::Packet p;
  p.bytes = static_cast<std::size_t>(d.u64());  // simulated bytes
  p.kind = d.str();
  p.payload = loadPayload(d);
  return p;
}

}  // namespace glr::ckpt
