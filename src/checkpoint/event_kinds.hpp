#pragma once
/// \file event_kinds.hpp
/// Descriptor vocabulary for pending simulator events.
///
/// Closures are not serializable, so every schedule site tags its event
/// with a sim::EventDesc naming the site (kind) and its captures (the
/// b/i/u/f fields; which field holds what is documented per kind below).
/// At restore, scenario_checkpoint.cpp dispatches each saved descriptor to
/// the component that owns the site, which re-creates the exact callback
/// under the exact original (time, seq) key. Values are part of the on-disk
/// checkpoint format — append only, never renumber.

#include <cstdint>

namespace glr::ckpt {

enum EventKind : std::uint16_t {
  kNone = 0,  // undescribed — the checkpoint writer refuses these

  // mac/channel.cpp — i0: unused; u0: txId.
  kChannelTxEnd = 1,

  // mac/mac.cpp — i0: self node id throughout.
  kMacAttempt = 2,        // queued attempt (immediate or deferred)
  kMacBackoffExpire = 3,  // backoff slot countdown finished
  kMacTxEnd = 4,          // b0: expectAck; u0: radio epoch
  kMacAckTimeout = 5,     // ACK wait expired
  kMacAckReply = 6,       // i1: dst; u0: data seq; u1: radio epoch; f0: dur

  // net/neighbor.cpp — i0: self node id.
  kHello = 7,

  // net/world.cpp — i0: node id (start() fan-out at t=0).
  kAgentStart = 8,

  // net/churn.cpp — u0: churn-node index (not node id).
  kChurnToggle = 9,

  // net/faults.cpp.
  kFaultBurstNext = 10,  // burst arrival chain (draws at fire time)
  kFaultBurstEnd = 11,   // --burstsActive_
  kFaultStallNext = 12,  // stall arrival chain (draws at fire time)
  kFaultStallEnd = 13,   // i0: victim node
  kFaultFlap = 14,       // i0: node; b0: currently up

  // core/glr_agent.cpp — i0: self node id throughout.
  kGlrPeriodicCheck = 15,
  kGlrQueuedCheck = 16,  // contact/originate-triggered deferred checkRoutes
  kGlrAckRetry = 17,     // i1: to; u0: (src<<32)|seq; b0: flag; b1: accepted;
                         // u1: attempt
  kGlrCustodyTimer = 18,  // i1: key src; u0: key seq; b0: flag; f0: sentAt

  // routing/*.cpp — i0: self node id.
  kEpidemicExchange = 19,
  kSprayExpiry = 20,
  kDirectCheck = 21,

  // experiment/traffic.cpp.
  kTrafficPaperArrival = 22,  // i0: src agent; i1: dst (pre-scheduled)
  kTrafficArrival = 23,       // single-chain stochastic models
  kTrafficSourceToggle = 24,  // u0: source index (ON/OFF phase flip)
  kTrafficSourceArrival = 25, // u0: source index; u1: phase epoch

  // experiment/scenario.cpp — the periodic checkpoint writer itself.
  kCheckpointTimer = 26,
};

}  // namespace glr::ckpt
