#pragma once
/// \file codec.hpp
/// Binary encode/decode primitives for the checkpoint layer.
///
/// Every serialized quantity goes through these two classes so the on-disk
/// byte layout is uniform (little-endian, fixed-width, doubles as IEEE-754
/// bit patterns — bit-identical round-trips, never printf/scanf rounding)
/// and every malformed read fails loudly with context instead of returning
/// garbage. The unordered-container helpers additionally reproduce *hash
/// table iteration order*, which several tables expose to the simulation
/// (e.g. the neighbor table drives hello payload order, which drives LDTG
/// construction, which drives routing): libstdc++ keeps each bucket's
/// members contiguous in iteration order, so any reachable order is rebuilt
/// by rehashing to the saved bucket count and inserting in reverse of the
/// saved order — and the rebuilt order is then *verified* element by
/// element, so a standard library where that reasoning fails produces a
/// loud error at restore time, never silent divergence at run time.

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace glr::ckpt {

/// Append-only byte sink. All integers little-endian fixed-width; doubles
/// are stored as their bit pattern so restore is bit-identical.
class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { putLe(v); }
  void u32(std::uint32_t v) { putLe(v); }
  void u64(std::uint64_t v) { putLe(v); }
  void i32(std::int32_t v) { putLe(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v)); }
  void f64(double v) { putLe(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u64(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<unsigned char>& data() const { return out_; }
  [[nodiscard]] std::vector<unsigned char> take() { return std::move(out_); }

 private:
  template <class T>
  void putLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<unsigned char>(v >> (8 * i)));
    }
  }

  std::vector<unsigned char> out_;
};

/// Bounds-checked reader over a byte span. Every overrun or structural
/// mismatch throws std::runtime_error prefixed with the decoder's context
/// (file path + section name), mirroring trace/reader.cpp's discipline.
class Decoder {
 public:
  Decoder(const unsigned char* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"checkpoint " + context_ + ": " + what +
                             " (at byte " + std::to_string(pos_) + ")"};
  }

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return getLe<std::uint16_t>(); }
  std::uint32_t u32() { return getLe<std::uint32_t>(); }
  std::uint64_t u64() { return getLe<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail("boolean field holds " + std::to_string(v));
    return v != 0;
  }
  std::size_t size() { return checkedSize(u64(), 0); }

  std::string str() {
    const std::size_t n = checkedSize(u64(), 1);
    const unsigned char* p = take(n);
    return std::string{reinterpret_cast<const char*>(p), n};
  }

  void bytes(void* dst, std::size_t n) { std::memcpy(dst, take(n), n); }

  /// Validates a serialized element count against the bytes actually left:
  /// `n` elements of at least `minBytesPer` bytes each must fit. Catches
  /// corrupted counts before they turn into multi-gigabyte reserves.
  [[nodiscard]] std::size_t checkedSize(std::uint64_t n,
                                        std::size_t minBytesPer) {
    if (minBytesPer != 0 && n > remaining() / minBytesPer) {
      fail("count " + std::to_string(n) + " overruns section (" +
           std::to_string(remaining()) + " bytes left)");
    }
    if (n > size_) {
      fail("size field " + std::to_string(n) + " exceeds section size");
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Restore code calls this after consuming a section: trailing bytes mean
  /// writer and reader disagree about the layout — refuse loudly.
  void expectEnd() const {
    if (pos_ != size_) {
      fail(std::to_string(size_ - pos_) + " trailing bytes");
    }
  }

  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  const unsigned char* take(std::size_t n) {
    if (n > remaining()) {
      fail("truncated: need " + std::to_string(n) + " bytes, have " +
           std::to_string(remaining()));
    }
    const unsigned char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  template <class T>
  T getLe() {
    const unsigned char* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
    }
    return v;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// Serializes an unordered_map preserving iteration order (see file
/// comment). `save(e, key, value)` writes one entry.
template <class K, class V, class H, class Eq, class A, class SaveKV>
void saveUnorderedMap(Encoder& e, const std::unordered_map<K, V, H, Eq, A>& m,
                      SaveKV&& save) {
  e.u64(m.size());
  e.u64(m.bucket_count());
  for (const auto& [k, v] : m) save(e, k, v);
}

/// Rebuilds an unordered_map with the exact saved iteration order, verified.
/// `load(d)` returns one std::pair<K, V>.
template <class K, class V, class H, class Eq, class A, class LoadKV>
void loadUnorderedMap(Decoder& d, std::unordered_map<K, V, H, Eq, A>& m,
                      LoadKV&& load) {
  const std::size_t n = d.checkedSize(d.u64(), 1);
  const auto buckets = static_cast<std::size_t>(d.u64());
  std::vector<std::pair<K, V>> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) items.push_back(load(d));
  m.clear();
  if (m.bucket_count() != buckets) {
    // rehash() can neither shrink below the policy minimum nor reproduce
    // the never-inserted single-bucket state, so start from a fresh table
    // (bucket_count 1) and grow it to the saved count.
    m = std::unordered_map<K, V, H, Eq, A>{};
    if (buckets > 1) m.rehash(buckets);
  }
  for (auto it = items.rbegin(); it != items.rend(); ++it) m.insert(*it);
  if (m.size() != items.size()) d.fail("unordered map holds duplicate keys");
  if (m.bucket_count() != buckets) {
    d.fail("unordered map bucket count diverged after rebuild");
  }
  std::size_t i = 0;
  for (const auto& [k, v] : m) {
    static_cast<void>(v);
    if (!(k == items[i].first)) {
      d.fail("unordered map iteration order diverged after rebuild");
    }
    ++i;
  }
}

/// Set variants of the same order-preserving scheme.
template <class K, class H, class Eq, class A, class SaveK>
void saveUnorderedSet(Encoder& e, const std::unordered_set<K, H, Eq, A>& s,
                      SaveK&& save) {
  e.u64(s.size());
  e.u64(s.bucket_count());
  for (const auto& k : s) save(e, k);
}

template <class K, class H, class Eq, class A, class LoadK>
void loadUnorderedSet(Decoder& d, std::unordered_set<K, H, Eq, A>& s,
                      LoadK&& load) {
  const std::size_t n = d.checkedSize(d.u64(), 1);
  const auto buckets = static_cast<std::size_t>(d.u64());
  std::vector<K> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) items.push_back(load(d));
  s.clear();
  if (s.bucket_count() != buckets) {
    // See loadUnorderedMap: a fresh table is the only way back to the
    // never-inserted single-bucket state.
    s = std::unordered_set<K, H, Eq, A>{};
    if (buckets > 1) s.rehash(buckets);
  }
  for (auto it = items.rbegin(); it != items.rend(); ++it) s.insert(*it);
  if (s.size() != items.size()) d.fail("unordered set holds duplicate keys");
  if (s.bucket_count() != buckets) {
    d.fail("unordered set bucket count diverged after rebuild");
  }
  std::size_t i = 0;
  for (const auto& k : s) {
    if (!(k == items[i])) {
      d.fail("unordered set iteration order diverged after rebuild");
    }
    ++i;
  }
}

}  // namespace glr::ckpt
