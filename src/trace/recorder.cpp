#include "trace/recorder.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace glr::trace {

Recorder::Recorder(sim::Simulator& sim, const std::string& path,
                   std::size_t ringCapacity)
    : sim_(sim) {
  if (ringCapacity < 64) ringCapacity = 64;
  ringCapacity = std::bit_ceil(ringCapacity);
  ring_.resize(ringCapacity);
  mask_ = ringCapacity - 1;
  // Batch-assembly scratch for the writer thread (~4k records per fwrite).
  chunk_.resize(4096 * (sizeof(std::uint32_t) + sizeof(Record)));

  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  }
  FileHeader header;  // recordCount stays ~0 until finalize
  std::fwrite(&header, sizeof(header), 1, file_);

  writer_ = std::thread([this] { writerLoop(); });
}

Recorder::~Recorder() { close(); }

void Recorder::record(EventType type, std::int32_t node, std::int32_t peer,
                      std::int32_t msgSrc, std::int32_t msgSeq,
                      std::uint16_t aux, std::uint8_t flag) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  // Full ring: wait for the writer rather than drop — replay must be exact.
  while (head - tail_.load(std::memory_order_acquire) >= ring_.size()) {
    producerStalls_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  Record& slot = ring_[head & mask_];
  slot.time = sim_.now();
  slot.node = node;
  slot.peer = peer;
  slot.msgSrc = msgSrc;
  slot.msgSeq = msgSeq;
  slot.aux = aux;
  slot.type = static_cast<std::uint8_t>(type);
  slot.flag = flag;
  slot.pad = 0;
  head_.store(head + 1, std::memory_order_release);
}

void Recorder::writeRange(std::uint64_t from, std::uint64_t to) {
  // Assemble [len][record] pairs into one contiguous chunk and hand each
  // batch to stdio in a single fwrite. Per-record fwrite pairs are what
  // dominated tracing overhead: every locked stdio call the writer makes
  // is CPU stolen from the simulation thread on single-core hosts.
  constexpr std::uint32_t kLen = sizeof(Record);
  constexpr std::size_t kEntry = sizeof(kLen) + sizeof(Record);
  while (from < to) {
    const std::size_t batch = std::min<std::uint64_t>(
        to - from, chunk_.size() / kEntry);
    unsigned char* p = chunk_.data();
    for (std::size_t i = 0; i < batch; ++i, ++from) {
      std::memcpy(p, &kLen, sizeof(kLen));
      std::memcpy(p + sizeof(kLen), &ring_[from & mask_], sizeof(Record));
      p += kEntry;
    }
    std::fwrite(chunk_.data(), 1, batch * kEntry, file_);
  }
}

void Recorder::writerLoop() {
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (head != tail) {
      writeRange(tail, head);
      tail = head;
      tail_.store(tail, std::memory_order_release);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // stop_ was set after the producer's final record(): one last check
      // under the acquire above, then drain whatever raced in.
      const std::uint64_t finalHead = head_.load(std::memory_order_acquire);
      writeRange(tail, finalHead);
      tail_.store(finalHead, std::memory_order_release);
      return;
    }
    // Idle poll. Deliberately coarse: the ring buffers tens of thousands
    // of records, so the writer can afford long naps — and on single-core
    // hosts a fine-grained poll (e.g. 50us) preempts the simulation thread
    // thousands of times per second, tripling tracing overhead.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void Recorder::close() {
  if (closed_) return;
  closed_ = true;
  stop_.store(true, std::memory_order_release);
  if (writer_.joinable()) writer_.join();
  // Patch the true record count into the header and close.
  FileHeader header;
  header.recordCount = head_.load(std::memory_order_relaxed);
  std::fseek(file_, 0, SEEK_SET);
  std::fwrite(&header, sizeof(header), 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace glr::trace
