#include "trace/recorder.hpp"

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace glr::trace {

namespace {

// Live recorders, for the signal finalizer. Lock-free fixed slots: a signal
// handler cannot take a mutex the interrupted thread might hold.
constexpr std::size_t kMaxLiveRecorders = 32;
std::atomic<Recorder*> liveRecorders[kMaxLiveRecorders];

void registerRecorder(Recorder* r) {
  for (auto& slot : liveRecorders) {
    Recorder* expected = nullptr;
    if (slot.compare_exchange_strong(expected, r)) return;
  }
  // More than kMaxLiveRecorders live at once: this one simply is not
  // signal-finalized (its SIGKILL-equivalent truncation path still holds).
}

void deregisterRecorder(Recorder* r) {
  for (auto& slot : liveRecorders) {
    Recorder* expected = r;
    if (slot.compare_exchange_strong(expected, nullptr)) return;
  }
}

void finalizeAndReraise(int sig) {
  for (auto& slot : liveRecorders) {
    // Claim the slot first so a close() racing in cannot double-finalize.
    if (Recorder* r = slot.exchange(nullptr)) r->close();
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void Recorder::installSignalFinalize() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  for (const int sig : {SIGINT, SIGTERM}) {
    struct sigaction current{};
    if (::sigaction(sig, nullptr, &current) != 0) continue;
    // Respect a handler the host installed; only replace the default
    // die-without-finalizing action.
    if (current.sa_handler != SIG_DFL) continue;
    struct sigaction action{};
    action.sa_handler = &finalizeAndReraise;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(sig, &action, nullptr);
  }
}

Recorder::Recorder(sim::Simulator& sim, const std::string& path,
                   std::size_t ringCapacity)
    : sim_(sim) {
  if (ringCapacity < 64) ringCapacity = 64;
  ringCapacity = std::bit_ceil(ringCapacity);
  ring_.resize(ringCapacity);
  mask_ = ringCapacity - 1;
  // Batch-assembly scratch for the writer thread (~4k records per fwrite).
  chunk_.resize(4096 * (sizeof(std::uint32_t) + sizeof(Record)));

  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("trace: cannot open '" + path +
                             "' for writing: " + std::strerror(errno));
  }
  FileHeader header;  // recordCount stays ~0 until finalize
  std::fwrite(&header, sizeof(header), 1, file_);

  // The writer inherits its signal mask from this thread: block
  // SIGINT/SIGTERM across the spawn so the signal finalizer always lands on
  // a thread that can join the writer (never on the writer itself).
  sigset_t blocked, previous;
  ::sigemptyset(&blocked);
  ::sigaddset(&blocked, SIGINT);
  ::sigaddset(&blocked, SIGTERM);
  ::pthread_sigmask(SIG_BLOCK, &blocked, &previous);
  writer_ = std::thread([this] { writerLoop(); });
  ::pthread_sigmask(SIG_SETMASK, &previous, nullptr);

  registerRecorder(this);
}

Recorder::~Recorder() { close(); }

void Recorder::record(EventType type, std::int32_t node, std::int32_t peer,
                      std::int32_t msgSrc, std::int32_t msgSeq,
                      std::uint16_t aux, std::uint8_t flag) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  // Full ring: wait for the writer rather than drop — replay must be exact.
  while (head - tail_.load(std::memory_order_acquire) >= ring_.size()) {
    producerStalls_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  Record& slot = ring_[head & mask_];
  slot.time = sim_.now();
  slot.node = node;
  slot.peer = peer;
  slot.msgSrc = msgSrc;
  slot.msgSeq = msgSeq;
  slot.aux = aux;
  slot.type = static_cast<std::uint8_t>(type);
  slot.flag = flag;
  slot.pad = 0;
  head_.store(head + 1, std::memory_order_release);
}

void Recorder::writeRange(std::uint64_t from, std::uint64_t to) {
  // Assemble [len][record] pairs into one contiguous chunk and hand each
  // batch to stdio in a single fwrite. Per-record fwrite pairs are what
  // dominated tracing overhead: every locked stdio call the writer makes
  // is CPU stolen from the simulation thread on single-core hosts.
  constexpr std::uint32_t kLen = sizeof(Record);
  constexpr std::size_t kEntry = sizeof(kLen) + sizeof(Record);
  while (from < to) {
    const std::size_t batch = std::min<std::uint64_t>(
        to - from, chunk_.size() / kEntry);
    unsigned char* p = chunk_.data();
    for (std::size_t i = 0; i < batch; ++i, ++from) {
      std::memcpy(p, &kLen, sizeof(kLen));
      std::memcpy(p + sizeof(kLen), &ring_[from & mask_], sizeof(Record));
      p += kEntry;
    }
    std::fwrite(chunk_.data(), 1, batch * kEntry, file_);
  }
}

void Recorder::writerLoop() {
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (head != tail) {
      writeRange(tail, head);
      tail = head;
      tail_.store(tail, std::memory_order_release);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // stop_ was set after the producer's final record(): one last check
      // under the acquire above, then drain whatever raced in.
      const std::uint64_t finalHead = head_.load(std::memory_order_acquire);
      writeRange(tail, finalHead);
      tail_.store(finalHead, std::memory_order_release);
      return;
    }
    // Idle poll. Deliberately coarse: the ring buffers tens of thousands
    // of records, so the writer can afford long naps — and on single-core
    // hosts a fine-grained poll (e.g. 50us) preempts the simulation thread
    // thousands of times per second, tripling tracing overhead.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void Recorder::close() {
  if (closed_) return;
  closed_ = true;
  deregisterRecorder(this);
  stop_.store(true, std::memory_order_release);
  if (writer_.joinable()) writer_.join();
  // Patch the true record count into the header, then make the finalized
  // file durable before closing: a SIGINT/SIGTERM finalize is immediately
  // followed by process death, so data still in stdio or page-cache limbo
  // would quietly undo it. Failures are reported, not thrown — this also
  // runs from the destructor.
  FileHeader header;
  header.recordCount = head_.load(std::memory_order_relaxed);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(&header, sizeof(header), 1, file_) != 1 ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    std::fprintf(stderr, "trace: finalize failed: %s\n",
                 std::strerror(errno));
  }
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace glr::trace
