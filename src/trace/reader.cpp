#include "trace/reader.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace glr::trace {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("trace '" + path + "': " + what);
}

}  // namespace

std::vector<Record> readTraceFile(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) fail(path, "cannot open for reading");

  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) {
    fail(path, "short file: header missing");
  }
  if (header.magic != FileHeader{}.magic) fail(path, "bad magic");
  if (header.version != 1) {
    fail(path, "unsupported version " + std::to_string(header.version));
  }
  if (header.recordSize != sizeof(Record)) {
    fail(path,
         "unsupported record size " + std::to_string(header.recordSize));
  }
  if (header.recordCount == ~std::uint64_t{0}) {
    fail(path, "unfinalized trace (writer never closed — truncated run?)");
  }

  std::vector<Record> records;
  records.reserve(header.recordCount);
  for (std::uint64_t i = 0; i < header.recordCount; ++i) {
    std::uint32_t len = 0;
    if (std::fread(&len, sizeof(len), 1, file.get()) != 1) {
      fail(path, "truncated: " + std::to_string(i) + " of " +
                     std::to_string(header.recordCount) + " records present");
    }
    if (len != sizeof(Record)) {
      fail(path, "corrupt record " + std::to_string(i) +
                     ": length prefix " + std::to_string(len) +
                     " (expected " + std::to_string(sizeof(Record)) + ")");
    }
    Record r;
    if (std::fread(&r, sizeof(r), 1, file.get()) != 1) {
      fail(path, "truncated mid-record at index " + std::to_string(i));
    }
    if (r.type < static_cast<std::uint8_t>(EventType::kCreated) ||
        r.type > static_cast<std::uint8_t>(EventType::kSuspicion)) {
      fail(path, "corrupt record " + std::to_string(i) + ": unknown type " +
                     std::to_string(r.type));
    }
    records.push_back(r);
  }
  // Trailing garbage after the declared records is also a structural error.
  char extra = 0;
  if (std::fread(&extra, 1, 1, file.get()) == 1) {
    fail(path, "trailing bytes after declared record count");
  }
  return records;
}

RecoveredTrace recoverTraceRecords(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) fail(path, "cannot open for reading");

  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) {
    fail(path, "short file: not even a header to recover from");
  }
  if (header.magic != FileHeader{}.magic) fail(path, "bad magic");
  if (header.version != 1) {
    fail(path, "unsupported version " + std::to_string(header.version));
  }
  if (header.recordSize != sizeof(Record)) {
    fail(path,
         "unsupported record size " + std::to_string(header.recordSize));
  }

  RecoveredTrace out;
  out.wasFinalized = header.recordCount != ~std::uint64_t{0};
  out.declaredCount = out.wasFinalized ? header.recordCount : 0;
  for (;;) {
    std::uint32_t len = 0;
    if (std::fread(&len, sizeof(len), 1, file.get()) != 1) break;  // EOF/torn
    if (len != sizeof(Record)) break;  // corrupt prefix: stop salvaging
    Record r;
    if (std::fread(&r, sizeof(r), 1, file.get()) != 1) break;  // torn record
    if (r.type < static_cast<std::uint8_t>(EventType::kCreated) ||
        r.type > static_cast<std::uint8_t>(EventType::kSuspicion)) {
      break;  // garbage past the intact prefix
    }
    out.records.push_back(r);
  }
  return out;
}

void writeTraceFile(const std::string& path,
                    const std::vector<Record>& records) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    fail(path, "cannot open for writing: " + std::string{std::strerror(errno)});
  }
  FileHeader header;
  header.recordCount = records.size();
  bool ok = std::fwrite(&header, sizeof(header), 1, file.get()) == 1;
  const std::uint32_t len = sizeof(Record);
  for (const Record& r : records) {
    if (!ok) break;
    ok = std::fwrite(&len, sizeof(len), 1, file.get()) == 1 &&
         std::fwrite(&r, sizeof(r), 1, file.get()) == 1;
  }
  if (!ok || std::fflush(file.get()) != 0 ||
      ::fsync(::fileno(file.get())) != 0) {
    fail(path, "write failed: " + std::string{std::strerror(errno)});
  }
}

ReplayTotals replayTotals(const std::vector<Record>& records) {
  ReplayTotals t;
  for (const Record& r : records) {
    switch (static_cast<EventType>(r.type)) {
      case EventType::kCreated: ++t.created; break;
      case EventType::kSend: ++t.sends; break;
      case EventType::kDelivered: ++t.delivered; break;
      case EventType::kDuplicate: ++t.duplicates; break;
      case EventType::kCustodyAccept: ++t.custodyAccepts; break;
      case EventType::kCustodyRefuse: ++t.custodyRefusals; break;
      case EventType::kDrop: ++t.drops; break;
      case EventType::kExpiry: ++t.expiries; break;
      case EventType::kSuspicion: ++t.suspicions; break;
    }
  }
  return t;
}

std::vector<Record> messageTimeline(const std::vector<Record>& records,
                                    std::int32_t src, std::int32_t seq) {
  std::vector<Record> out;
  for (const Record& r : records) {
    if (r.msgSrc == src && r.msgSeq == seq) out.push_back(r);
  }
  return out;
}

const char* eventTypeName(std::uint8_t type) {
  switch (static_cast<EventType>(type)) {
    case EventType::kCreated: return "created";
    case EventType::kSend: return "send";
    case EventType::kDelivered: return "delivered";
    case EventType::kDuplicate: return "duplicate";
    case EventType::kCustodyAccept: return "custody-accept";
    case EventType::kCustodyRefuse: return "custody-refuse";
    case EventType::kDrop: return "drop";
    case EventType::kExpiry: return "expiry";
    case EventType::kSuspicion: return "suspicion";
  }
  return "unknown";
}

}  // namespace glr::trace
