#pragma once
/// \file reader.hpp
/// Trace file reader + replay helpers shared by tests and trace_inspect.
///
/// File format (little-endian, host == x86-64/aarch64 Linux):
///   [FileHeader: 24 bytes]   magic 'GLRT', version 1, recordSize 32,
///                            recordCount (patched on finalize; ~0 while
///                            the writer is live => truncated), reserved
///   recordCount times:
///     [u32 length == 32][Record: 32 bytes]
///
/// The per-record length prefix is deliberately redundant with
/// header.recordSize: it turns a torn or corrupted record into a local,
/// detectable error instead of silently desynchronising the rest of the
/// stream. readTraceFile() throws std::runtime_error with a specific
/// message on bad magic, unsupported version/record size, an unfinalized
/// count, a length-prefix mismatch, or a short final record.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace glr::trace {

/// Reads and validates a finalized trace file. Throws std::runtime_error
/// describing the first structural problem found.
std::vector<Record> readTraceFile(const std::string& path);

/// Counter totals reconstructed from a trace, mirroring the live
/// ScenarioResult fields the round-trip differential pins.
struct ReplayTotals {
  std::uint64_t created = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t sends = 0;
  std::uint64_t custodyAccepts = 0;
  std::uint64_t custodyRefusals = 0;
  std::uint64_t drops = 0;
  std::uint64_t expiries = 0;
  std::uint64_t suspicions = 0;
};

ReplayTotals replayTotals(const std::vector<Record>& records);

/// One hop-timeline step of a single message, in record order.
struct TimelineEntry {
  Record record;
};

/// All events touching message (src, seq), in file (== sim event) order.
std::vector<Record> messageTimeline(const std::vector<Record>& records,
                                    std::int32_t src, std::int32_t seq);

/// Human-readable name of an event type ("send", "delivered", ...).
const char* eventTypeName(std::uint8_t type);

}  // namespace glr::trace
