#pragma once
/// \file reader.hpp
/// Trace file reader + replay helpers shared by tests and trace_inspect.
///
/// File format (little-endian, host == x86-64/aarch64 Linux):
///   [FileHeader: 24 bytes]   magic 'GLRT', version 1, recordSize 32,
///                            recordCount (patched on finalize; ~0 while
///                            the writer is live => truncated), reserved
///   recordCount times:
///     [u32 length == 32][Record: 32 bytes]
///
/// The per-record length prefix is deliberately redundant with
/// header.recordSize: it turns a torn or corrupted record into a local,
/// detectable error instead of silently desynchronising the rest of the
/// stream. readTraceFile() throws std::runtime_error with a specific
/// message on bad magic, unsupported version/record size, an unfinalized
/// count, a length-prefix mismatch, or a short final record.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace glr::trace {

/// Reads and validates a finalized trace file. Throws std::runtime_error
/// describing the first structural problem found.
std::vector<Record> readTraceFile(const std::string& path);

/// What recoverTraceRecords salvaged from a damaged trace.
struct RecoveredTrace {
  std::vector<Record> records;  // the intact prefix, in file order
  bool wasFinalized = false;    // header held a real count (not ~0)
  std::uint64_t declaredCount = 0;  // that count, when finalized
};

/// Salvages the intact record prefix of a trace whose writer never
/// finalized (SIGKILL, power loss) or whose tail is torn: reads records
/// until EOF, a short read, or a corrupt length prefix/type, keeping
/// everything before the first defect. Only the header's magic, version and
/// record size must be valid — those are written before any record, so any
/// real trace passes. Throws std::runtime_error if even the header is
/// unusable.
RecoveredTrace recoverTraceRecords(const std::string& path);

/// Writes `records` as a finalized trace file at `path` (header with the
/// true count, fsynced). Throws std::runtime_error with path + errno on any
/// I/O failure. This is `trace_inspect recover`'s output side.
void writeTraceFile(const std::string& path,
                    const std::vector<Record>& records);

/// Counter totals reconstructed from a trace, mirroring the live
/// ScenarioResult fields the round-trip differential pins.
struct ReplayTotals {
  std::uint64_t created = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t sends = 0;
  std::uint64_t custodyAccepts = 0;
  std::uint64_t custodyRefusals = 0;
  std::uint64_t drops = 0;
  std::uint64_t expiries = 0;
  std::uint64_t suspicions = 0;
};

ReplayTotals replayTotals(const std::vector<Record>& records);

/// One hop-timeline step of a single message, in record order.
struct TimelineEntry {
  Record record;
};

/// All events touching message (src, seq), in file (== sim event) order.
std::vector<Record> messageTimeline(const std::vector<Record>& records,
                                    std::int32_t src, std::int32_t seq);

/// Human-readable name of an event type ("send", "delivered", ...).
const char* eventTypeName(std::uint8_t type);

}  // namespace glr::trace
