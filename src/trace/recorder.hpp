#pragma once
/// \file recorder.hpp
/// Flight recorder: a fixed-capacity SPSC ring of trivially-copyable binary
/// event records drained by a dedicated writer thread (after ndn-dpdk's
/// pdump writer).
///
/// The simulation thread is the single producer: agents and the message
/// buffer call Recorder::record() at instrumentation points (send, deliver,
/// custody accept/refuse, drop, expiry, suspicion). The single consumer is
/// a writer thread that drains the ring to a length-prefixed binary file
/// (format spec in reader.hpp). Tracing is default-off: a null
/// `trace::Recorder*` on World costs the hot path exactly one branch per
/// instrumentation point, so all pinned goldens stay bit-identical and the
/// zero-allocation pin holds. With tracing on, record() copies 32 bytes
/// into pre-reserved ring storage — still allocation-free; only the writer
/// thread touches the filesystem.
///
/// Lossless by design: when the ring is momentarily full the producer spins
/// (yielding) until the writer frees a slot, counting the stall instead of
/// dropping the record. That keeps trace replay *exact* — the round-trip
/// differential test reconstructs delivery/drop/custody totals from the
/// file and they must equal the live ScenarioResult — at the price of
/// back-pressure on a slow disk, which is the right trade for a diagnostic
/// artifact. recordsWritten() is therefore deterministic; producerStalls()
/// is wall-clock-dependent and never folded into pinned results.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/simulator.hpp"

namespace glr::trace {

/// What happened. Values are part of the on-disk format — append only.
enum class EventType : std::uint8_t {
  kCreated = 1,        // origin stamped a new message
  kSend = 2,           // a copy left a node toward `peer`
  kDelivered = 3,      // first copy reached the destination
  kDuplicate = 4,      // a later copy reached the destination
  kCustodyAccept = 5,  // node accepted custody (ACK sent)
  kCustodyRefuse = 6,  // node refused custody (NACK sent)
  kDrop = 7,           // buffer eviction (capacity pressure)
  kExpiry = 8,         // TTL expiry swept from a buffer
  kSuspicion = 9,      // custody-failure detector raised a fresh verdict
};

/// One trace event: fixed 32 bytes, trivially copyable, written verbatim.
struct Record {
  double time = 0.0;       // sim time the event was recorded at
  std::int32_t node = -1;  // acting node (holder/origin/destination)
  std::int32_t peer = -1;  // counterpart (next hop, custodian, ...) or -1
  std::int32_t msgSrc = -1;
  std::int32_t msgSeq = -1;
  std::uint16_t aux = 0;  // event-specific: hop count, reason code
  std::uint8_t type = 0;  // EventType
  std::uint8_t flag = 0;  // dtn::TreeFlag of the copy (0 = none)
  std::uint32_t pad = 0;  // explicit so the on-disk bytes are deterministic
};
static_assert(sizeof(Record) == 32, "trace records are a fixed 32 bytes");
static_assert(std::is_trivially_copyable_v<Record>);

/// On-disk header, written at offset 0. `recordCount` is ~0 while the file
/// is open and patched to the true count on finalize, so a crash mid-run
/// leaves a detectably-truncated file.
struct FileHeader {
  std::uint32_t magic = 0x54524C47;  // "GLRT" little-endian
  std::uint16_t version = 1;
  std::uint16_t recordSize = sizeof(Record);
  std::uint64_t recordCount = ~std::uint64_t{0};
  std::uint64_t reserved = 0;
};
static_assert(sizeof(FileHeader) == 24);

class Recorder {
 public:
  /// Opens `path` and starts the writer thread. `ringCapacity` is rounded
  /// up to a power of two. Throws std::runtime_error if the file cannot be
  /// opened.
  Recorder(sim::Simulator& sim, const std::string& path,
           std::size_t ringCapacity);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Records one event stamped at the current sim time. Producer side of
  /// the SPSC ring: wait-free unless the ring is full, never allocates,
  /// never drops. Single-producer contract: only the simulation thread.
  void record(EventType type, std::int32_t node, std::int32_t peer,
              std::int32_t msgSrc, std::int32_t msgSeq, std::uint16_t aux = 0,
              std::uint8_t flag = 0) noexcept;

  /// Drains the ring, joins the writer thread, patches the header's record
  /// count, fsyncs and closes the file — after this the trace survives an
  /// immediate process death. Idempotent; also run by the destructor.
  void close();

  /// Installs SIGINT/SIGTERM handlers (once, process-wide) that finalize
  /// every live Recorder — drain the ring, patch the header, fsync — and
  /// then re-raise the signal with its default action, so the process still
  /// dies with the interrupted status. A handler the host already installed
  /// is left alone. The writer thread runs with these signals blocked, so
  /// the finalize never deadlocks joining the thread it interrupted.
  ///
  /// Best-effort by nature: the finalize runs non-async-signal-safe calls
  /// on the signaled thread, which is sound for recorders that thread owns
  /// (the single-scenario CLI case this exists for); a recorder owned by a
  /// concurrently-running thread can race, and the worst outcome is the
  /// same truncated-but-recoverable file an uncatchable SIGKILL leaves
  /// (salvage with `trace_inspect recover`).
  static void installSignalFinalize();

  /// Events recorded so far (== records in the file after close()).
  /// Deterministic: a pure function of the simulated event sequence.
  [[nodiscard]] std::uint64_t recordsWritten() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Times the producer had to wait for the writer (wall-dependent; for
  /// logs/diagnostics only — never part of a pinned result).
  [[nodiscard]] std::uint64_t producerStalls() const {
    return producerStalls_.load(std::memory_order_relaxed);
  }

 private:
  void writerLoop();
  /// Writes records [from, to) (absolute indices) to the file.
  void writeRange(std::uint64_t from, std::uint64_t to);

  sim::Simulator& sim_;
  std::vector<Record> ring_;
  std::vector<unsigned char> chunk_;  // writer-side batch-assembly scratch
  std::size_t mask_;
  std::FILE* file_ = nullptr;

  // Absolute (non-wrapped) indices; slot = index & mask_.
  // head_: next slot the producer writes. tail_: next slot the writer
  // reads. Producer owns head_, writer owns tail_.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> producerStalls_{0};
  std::thread writer_;
  bool closed_ = false;
};

}  // namespace glr::trace
