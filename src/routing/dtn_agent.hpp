#pragma once
/// \file dtn_agent.hpp
/// Common interface for DTN routing agents (GLR, epidemic, baselines), so
/// the experiment harness can drive any protocol uniformly.

#include <cstddef>
#include <cstdint>

#include "net/world.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::routing {

/// Protocol counters a routing agent can export to the experiment harness
/// when a scenario ends. The field vocabulary follows GLR (the paper's
/// protocol, which defines every one of them); other protocols accumulate
/// into whatever maps naturally and leave the rest zero.
struct ProtocolCounters {
  std::uint64_t dataSent = 0;
  std::uint64_t dataReceived = 0;
  std::uint64_t duplicatesDropped = 0;
  std::uint64_t custodyAcksSent = 0;
  std::uint64_t custodyAcksReceived = 0;
  std::uint64_t cacheTimeouts = 0;
  std::uint64_t txFailures = 0;
  std::uint64_t faceTransitions = 0;
  // Overload-survival counters, common to every protocol: no buffer-full or
  // queue-full path may drop silently.
  std::uint64_t sendRejects = 0;      // sends refused by the MAC queue
  std::uint64_t bufferEvictions = 0;  // storage-pressure evictions
  std::uint64_t custodyRefusals = 0;  // custody NACKs sent under watermark
  // Adversarial-resilience counters (GLR recovery sublayer; zero for other
  // protocols and whenever the recovery knob is off).
  std::uint64_t suspicionsRaised = 0;     // fresh suspect verdicts
  std::uint64_t suspectSkips = 0;         // candidate hops skipped as suspect
  std::uint64_t recoveryActivations = 0;  // per-copy spray fallbacks entered
  std::uint64_t recoverySprays = 0;       // custody-free clones sent
  // TTL expiry is a counted drop for every protocol (zero without a TTL).
  std::uint64_t expiredDrops = 0;
};

class DtnAgent : public net::Agent {
 public:
  /// Creates and injects a new message destined to `dstNode`.
  virtual void originate(int dstNode) = 0;

  /// Current buffered message count (Store + Cache).
  [[nodiscard]] virtual std::size_t storageUsed() const = 0;

  /// High-water mark of buffered message count.
  [[nodiscard]] virtual std::size_t storagePeak() const = 0;

  /// Accumulates this agent's protocol counters into `out`. The harness
  /// calls it once per agent at harvest time (end of scenario), which keeps
  /// RTTI off the result path and lets each protocol report its own
  /// numbers. Default: contributes nothing.
  virtual void harvestCounters(ProtocolCounters& out) const {
    static_cast<void>(out);
  }

  /// Checkpoint support. The defaults throw: a protocol that cannot
  /// serialize itself fails loudly at the first snapshot instead of
  /// silently producing checkpoints missing its state. (Kept non-pure so
  /// test stubs that never checkpoint don't have to implement them.)
  virtual void saveState(ckpt::Encoder& e) const;
  virtual void restoreState(ckpt::Decoder& d);
  /// Re-creates one pending simulator event this agent owns, under its
  /// original key. `desc` is the descriptor recorded at schedule time (see
  /// checkpoint/event_kinds.hpp); agents throw on kinds they don't own.
  virtual void restoreEvent(const sim::EventKey& key,
                            const sim::EventDesc& desc);
};

}  // namespace glr::routing
