#pragma once
/// \file dtn_agent.hpp
/// Common interface for DTN routing agents (GLR, epidemic, baselines), so
/// the experiment harness can drive any protocol uniformly.

#include <cstddef>

#include "net/world.hpp"

namespace glr::routing {

class DtnAgent : public net::Agent {
 public:
  /// Creates and injects a new message destined to `dstNode`.
  virtual void originate(int dstNode) = 0;

  /// Current buffered message count (Store + Cache).
  [[nodiscard]] virtual std::size_t storageUsed() const = 0;

  /// High-water mark of buffered message count.
  [[nodiscard]] virtual std::size_t storagePeak() const = 0;
};

}  // namespace glr::routing
