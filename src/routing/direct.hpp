#pragma once
/// \file direct.hpp
/// Direct-delivery baseline: the source holds every message until it meets
/// the destination itself (single copy, zero relay overhead). The classic
/// lower bound on overhead / upper bound on delay among DTN strategies;
/// used in extension benches.

#include <unordered_set>

#include "dtn/buffer.hpp"
#include "dtn/message.hpp"
#include "dtn/metrics.hpp"
#include "net/neighbor.hpp"
#include "net/world.hpp"
#include "routing/dtn_agent.hpp"
#include "sim/rng.hpp"

namespace glr::routing {

struct DirectParams {
  std::size_t storageLimit = dtn::kUnlimitedStorage;
  /// Buffer index pre-size hint (see MessageBuffer); 0 = no hint.
  std::size_t expectedBufferedCopies = 0;
  std::size_t payloadBytes = 1000;
  std::size_t dataHeaderBytes = 28;
  double checkInterval = 1.0;
  net::NeighborService::Params hello;
};

inline constexpr const char* kDirectDataKind = "dd-data";

class DirectDeliveryAgent final : public DtnAgent {
 public:
  DirectDeliveryAgent(net::World& world, int self, DirectParams params,
                      dtn::MetricsCollector* metrics, sim::Rng rng);

  void start() override;
  void onPacket(const net::Packet& packet, int fromMac) override;
  void originate(int dstNode) override;
  void onRadioState(bool up) override {
    if (!up) neighbors_.reset();
  }

  [[nodiscard]] std::size_t storageUsed() const override {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t storagePeak() const override {
    return buffer_.peakSize();
  }

  void harvestCounters(ProtocolCounters& out) const override {
    out.dataSent += dataSent_;
    out.sendRejects += sendRejects_ + neighbors_.helloSendFailures();
    out.bufferEvictions += buffer_.dropCount();
  }

  /// Checkpoint support: hello service, buffer, delivered set, counters and
  /// RNG. Pending events (hello beacon, delivery check) are rebuilt via
  /// restoreEvent.
  void saveState(ckpt::Encoder& e) const override;
  void restoreState(ckpt::Decoder& d) override;
  void restoreEvent(const sim::EventKey& key,
                    const sim::EventDesc& desc) override;

 private:
  void check();
  [[nodiscard]] geom::Point2 myPos() { return world_.positionOf(self_); }

  net::World& world_;
  int self_;
  DirectParams params_;
  dtn::MetricsCollector* metrics_;
  sim::Rng rng_;
  net::NeighborService neighbors_;
  dtn::MessageBuffer buffer_;
  std::unordered_set<dtn::MessageId> deliveredHere_;
  std::uint64_t dataSent_ = 0;
  std::uint64_t sendRejects_ = 0;
  int nextSeq_ = 0;
};

}  // namespace glr::routing
