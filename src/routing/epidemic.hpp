#pragma once
/// \file epidemic.hpp
/// Epidemic routing baseline (Vahdat & Becker), the paper's comparator.
///
/// On contact, nodes exchange *summary vectors* (the message ids they hold);
/// each side then requests and receives the messages it lacks. Messages are
/// never cleared after delivery ("one apparent drawback ... the messages are
/// never cleared"); under a storage limit the oldest messages are dropped
/// FIFO when new ones arrive (paper Sec. 3.6). Anti-entropy re-runs with a
/// current neighbor only when this node's buffer has grown since the last
/// exchange with it, matching "nodes exchange messages only when they come
/// within communication range of each other".

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dtn/buffer.hpp"
#include "dtn/message.hpp"
#include "dtn/metrics.hpp"
#include "net/neighbor.hpp"
#include "net/world.hpp"
#include "routing/dtn_agent.hpp"
#include "sim/rng.hpp"

namespace glr::routing {

struct EpidemicParams {
  std::size_t storageLimit = dtn::kUnlimitedStorage;
  /// Buffer index pre-size hint (see MessageBuffer); 0 = no hint.
  std::size_t expectedBufferedCopies = 0;
  std::size_t payloadBytes = 1000;
  std::size_t dataHeaderBytes = 28;
  std::size_t svHeaderBytes = 20;
  std::size_t svEntryBytes = 8;     // message id on the wire
  double exchangeCheckInterval = 1.0;  // dirty-neighbor re-offer cadence
  /// Minimum spacing between anti-entropy offers to the same neighbor
  /// (Vahdat's per-pair rate limit); offers during sustained contact are
  /// deltas (ids added since the last offer), full only on fresh contact.
  double svMinInterval = 5.0;
  /// After requesting a message id from one peer, don't re-request it from
  /// another for this long: in dense networks many neighbors offer the same
  /// id near-simultaneously, and naive re-requests multiply the data flood
  /// by the node degree.
  double requestWindow = 3.0;
  /// Bundle lifetime in seconds; 0 (default) = immortal messages, the
  /// historical behavior. When set, expired copies are dropped as counted
  /// expiries on the exchange tick (never silently).
  double messageTtl = 0.0;
  net::NeighborService::Params hello;  // neighbor-list piggyback disabled
};

struct EpidemicCounters {
  std::uint64_t summariesSent = 0;
  std::uint64_t requestsSent = 0;
  std::uint64_t dataSent = 0;
  std::uint64_t dataReceived = 0;
  std::uint64_t duplicatesDropped = 0;
  std::uint64_t deliveredHere = 0;
  std::uint64_t sendRejects = 0;  // SV/request/data sends the MAC refused
};

/// Summary vector / request payloads.
struct SummaryVector {
  std::vector<dtn::MessageId> ids;
};
struct RequestVector {
  std::vector<dtn::MessageId> ids;
};

inline constexpr const char* kEpSvKind = "ep-sv";
inline constexpr const char* kEpReqKind = "ep-req";
inline constexpr const char* kEpDataKind = "ep-data";

class EpidemicAgent final : public DtnAgent {
 public:
  EpidemicAgent(net::World& world, int self, EpidemicParams params,
                dtn::MetricsCollector* metrics, sim::Rng rng);

  void start() override;
  void onPacket(const net::Packet& packet, int fromMac) override;
  void originate(int dstNode) override;
  void onRadioState(bool up) override {
    if (!up) neighbors_.reset();
  }

  [[nodiscard]] std::size_t storageUsed() const override {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t storagePeak() const override {
    return buffer_.peakSize();
  }

  void harvestCounters(ProtocolCounters& out) const override {
    out.dataSent += counters_.dataSent;
    out.dataReceived += counters_.dataReceived;
    out.duplicatesDropped += counters_.duplicatesDropped;
    out.sendRejects += counters_.sendRejects + neighbors_.helloSendFailures();
    out.bufferEvictions += buffer_.dropCount();
    out.expiredDrops += buffer_.expiredCount();
  }

  [[nodiscard]] const EpidemicCounters& counters() const { return counters_; }
  [[nodiscard]] const dtn::MessageBuffer& buffer() const { return buffer_; }

  /// Checkpoint support: hello service, buffer, delivered set, delta-offer
  /// log/watermarks, request window, counters and RNG. Pending events
  /// (hello beacon, exchange tick) are rebuilt via restoreEvent.
  void saveState(ckpt::Encoder& e) const override;
  void restoreState(ckpt::Decoder& d) override;
  void restoreEvent(const sim::EventKey& key,
                    const sim::EventDesc& desc) override;

 private:
  /// Offers message ids to `to`: those added after the per-neighbor
  /// watermark (0 == full buffer, used on fresh contacts).
  void sendSummary(int to, bool full);
  void exchangeTick();
  void addMessage(dtn::Message m);
  [[nodiscard]] geom::Point2 myPos() { return world_.positionOf(self_); }

  net::World& world_;
  int self_;
  EpidemicParams params_;
  dtn::MetricsCollector* metrics_;
  sim::Rng rng_;

  net::NeighborService neighbors_;
  dtn::MessageBuffer buffer_;
  std::unordered_set<dtn::MessageId> deliveredHere_;
  /// Arrival-ordered log of stored message ids, for delta offers.
  std::vector<std::pair<std::uint64_t, dtn::MessageId>> additions_;
  std::uint64_t addSeq_ = 0;
  /// Per-neighbor offer watermark (into addSeq_) and last-offer time.
  std::unordered_map<int, std::uint64_t> offeredUpTo_;
  std::unordered_map<int, sim::SimTime> lastOfferAt_;
  /// Outstanding requests: id -> time requested (pruned lazily).
  std::unordered_map<dtn::MessageId, sim::SimTime> requestedAt_;
  EpidemicCounters counters_;
  int nextSeq_ = 0;
};

}  // namespace glr::routing
