#include "routing/direct.hpp"

#include <array>
#include <stdexcept>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "checkpoint/message_codec.hpp"
#include "trace/recorder.hpp"

namespace glr::routing {

namespace {

sim::EventDesc checkDesc(int self) {
  sim::EventDesc d;
  d.kind = ckpt::kDirectCheck;
  d.i0 = self;
  return d;
}

}  // namespace

DirectDeliveryAgent::DirectDeliveryAgent(net::World& world, int self,
                                         DirectParams params,
                                         dtn::MetricsCollector* metrics,
                                         sim::Rng rng)
    : world_(world),
      self_(self),
      params_(params),
      metrics_(metrics),
      rng_(rng),
      neighbors_(world.sim(), world.macOf(self), self,
                 [this] { return myPos(); }, params.hello, rng.fork(1)),
      buffer_(params.storageLimit, params.expectedBufferedCopies) {
  buffer_.setTrace(world_.trace(), self_);
}

void DirectDeliveryAgent::start() {
  neighbors_.start();
  world_.sim().schedule(rng_.uniform(0.0, params_.checkInterval),
                        checkDesc(self_), [this] { check(); });
}

void DirectDeliveryAgent::originate(int dstNode) {
  dtn::Message m;
  m.id = {self_, nextSeq_++};
  m.srcNode = self_;
  m.dstNode = dstNode;
  m.created = world_.sim().now();
  m.payloadBytes = params_.payloadBytes;
  if (metrics_ != nullptr) metrics_->onCreated(m);
  buffer_.addToStore(std::move(m));
}

void DirectDeliveryAgent::check() {
  for (const dtn::CopyKey& key : buffer_.storeKeys()) {
    dtn::Message* m = buffer_.findInStore(key);
    if (m == nullptr) continue;
    if (!neighbors_.isNeighbor(m->dstNode)) continue;
    net::Packet p;
    p.kind = kDirectDataKind;
    p.bytes = m->payloadBytes + params_.dataHeaderBytes;
    p.payload = net::Payload::of(*m);
    const int dst = m->dstNode;
    // Drop the copy only once the MAC accepted the frame: a refused send
    // (queue full / radio down) keeps it stored for the next check instead
    // of silently losing the sole copy.
    if (world_.macOf(self_).send(std::move(p), dst)) {
      if (trace::Recorder* t = world_.trace()) {
        t->record(trace::EventType::kSend, self_, dst, key.id.src,
                  key.id.seq);
      }
      buffer_.erase(key);
      ++dataSent_;
    } else {
      ++sendRejects_;
    }
  }
  world_.sim().schedule(params_.checkInterval, checkDesc(self_),
                        [this] { check(); });
}

void DirectDeliveryAgent::onPacket(const net::Packet& packet, int fromMac) {
  if (neighbors_.handlePacket(packet, fromMac)) return;
  if (packet.kind != kDirectDataKind) return;
  const auto* pm = packet.payload.get<dtn::Message>();
  if (pm == nullptr || pm->dstNode != self_) return;
  if (deliveredHere_.insert(pm->id).second && metrics_ != nullptr) {
    metrics_->onDelivered(*pm, world_.sim().now(), pm->hops + 1);
  }
}

void DirectDeliveryAgent::saveState(ckpt::Encoder& e) const {
  for (const std::uint64_t word : rng_.state()) e.u64(word);
  neighbors_.saveState(e);
  buffer_.saveState(e);
  ckpt::saveUnorderedSet(e, deliveredHere_,
                         [](ckpt::Encoder& enc, const dtn::MessageId& id) {
                           ckpt::saveMessageId(enc, id);
                         });
  e.u64(dataSent_);
  e.u64(sendRejects_);
  e.i32(nextSeq_);
}

void DirectDeliveryAgent::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  neighbors_.restoreState(d);
  buffer_.restoreState(d);
  ckpt::loadUnorderedSet(d, deliveredHere_, [](ckpt::Decoder& dec) {
    return ckpt::loadMessageId(dec);
  });
  dataSent_ = d.u64();
  sendRejects_ = d.u64();
  nextSeq_ = d.i32();
}

void DirectDeliveryAgent::restoreEvent(const sim::EventKey& key,
                                       const sim::EventDesc& desc) {
  switch (desc.kind) {
    case ckpt::kHello:
      neighbors_.restoreHelloEvent(key);
      return;
    case ckpt::kDirectCheck:
      world_.sim().scheduleKeyed(key, checkDesc(self_), [this] { check(); });
      return;
    default:
      throw std::runtime_error{
          "DirectDeliveryAgent: cannot restore event kind " +
          std::to_string(static_cast<int>(desc.kind))};
  }
}

}  // namespace glr::routing
