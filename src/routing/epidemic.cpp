#include "routing/epidemic.hpp"

#include <array>
#include <stdexcept>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "checkpoint/message_codec.hpp"
#include "trace/recorder.hpp"

#include "net/faults.hpp"

namespace glr::routing {

namespace {

sim::EventDesc exchangeDesc(int self) {
  sim::EventDesc d;
  d.kind = ckpt::kEpidemicExchange;
  d.i0 = self;
  return d;
}

}  // namespace

EpidemicAgent::EpidemicAgent(net::World& world, int self,
                             EpidemicParams params,
                             dtn::MetricsCollector* metrics, sim::Rng rng)
    : world_(world),
      self_(self),
      params_(params),
      metrics_(metrics),
      rng_(rng),
      neighbors_(world.sim(), world.macOf(self), self,
                 [this] { return myPos(); }, params.hello, rng.fork(1)),
      buffer_(params.storageLimit, params.expectedBufferedCopies) {
  buffer_.setTrace(world_.trace(), self_);
  neighbors_.setContactCallback(
      [this](int id) { sendSummary(id, /*full=*/true); });
}

void EpidemicAgent::start() {
  neighbors_.start();
  world_.sim().schedule(rng_.uniform(0.0, params_.exchangeCheckInterval),
                        exchangeDesc(self_), [this] { exchangeTick(); });
}

void EpidemicAgent::exchangeTick() {
  if (params_.messageTtl > 0.0) buffer_.expireDue(world_.sim().now());
  // Delta re-offers to neighbors that have not seen our latest additions,
  // rate-limited per pair (covers messages originated during a long-lived
  // contact without flooding full summary vectors every second).
  if (buffer_.size() > 0) {
    for (const int j : neighbors_.currentNeighbors()) {
      const auto it = offeredUpTo_.find(j);
      if (it != offeredUpTo_.end() && it->second >= addSeq_) continue;
      const auto at = lastOfferAt_.find(j);
      if (at != lastOfferAt_.end() &&
          world_.sim().now() - at->second < params_.svMinInterval) {
        continue;
      }
      sendSummary(j, /*full=*/false);
    }
  }
  world_.sim().schedule(params_.exchangeCheckInterval, exchangeDesc(self_),
                        [this] { exchangeTick(); });
}

void EpidemicAgent::sendSummary(int to, bool full) {
  const std::uint64_t watermark = full ? 0 : offeredUpTo_[to];
  // Build directly inside a recycled arena block (clear() keeps capacity).
  net::Payload payload = net::Payload::create<SummaryVector>();
  SummaryVector& sv = payload.mutableValue<SummaryVector>();
  sv.ids.clear();
  for (const auto& [seq, id] : additions_) {
    if (seq > watermark && buffer_.containsAnyBranch(id)) {
      sv.ids.push_back(id);
    }
  }
  offeredUpTo_[to] = addSeq_;
  lastOfferAt_[to] = world_.sim().now();
  if (sv.ids.empty()) return;

  net::Packet p;
  p.kind = kEpSvKind;
  p.bytes = params_.svHeaderBytes + params_.svEntryBytes * sv.ids.size();
  p.payload = std::move(payload);
  if (!world_.macOf(self_).send(std::move(p), to)) ++counters_.sendRejects;
  ++counters_.summariesSent;
}

void EpidemicAgent::originate(int dstNode) {
  dtn::Message m;
  m.id = {self_, nextSeq_++};
  m.srcNode = self_;
  m.dstNode = dstNode;
  m.created = world_.sim().now();
  m.payloadBytes = params_.payloadBytes;
  if (params_.messageTtl > 0.0) m.expiresAt = m.created + params_.messageTtl;
  if (metrics_ != nullptr) metrics_->onCreated(m);
  addMessage(std::move(m));
}

void EpidemicAgent::addMessage(dtn::Message m) {
  const dtn::MessageId id = m.id;
  if (buffer_.addToStore(std::move(m))) {
    additions_.emplace_back(++addSeq_, id);
  }
}

void EpidemicAgent::onPacket(const net::Packet& packet, int fromMac) {
  if (neighbors_.handlePacket(packet, fromMac)) return;

  if (packet.kind == kEpSvKind) {
    const auto* sv = packet.payload.get<SummaryVector>();
    if (sv == nullptr) return;
    net::Payload payload = net::Payload::create<RequestVector>();
    RequestVector& req = payload.mutableValue<RequestVector>();
    req.ids.clear();
    for (const dtn::MessageId& id : sv->ids) {
      if (buffer_.containsAnyBranch(id) || deliveredHere_.contains(id)) {
        continue;
      }
      // One outstanding request per id: dense networks offer the same
      // message from many neighbors within milliseconds.
      const auto it = requestedAt_.find(id);
      if (it != requestedAt_.end() &&
          world_.sim().now() - it->second < params_.requestWindow) {
        continue;
      }
      requestedAt_[id] = world_.sim().now();
      req.ids.push_back(id);
    }
    if (req.ids.empty()) return;
    net::Packet p;
    p.kind = kEpReqKind;
    p.bytes = params_.svHeaderBytes + params_.svEntryBytes * req.ids.size();
    p.payload = std::move(payload);
    if (!world_.macOf(self_).send(std::move(p), fromMac)) {
      ++counters_.sendRejects;
    }
    ++counters_.requestsSent;
    return;
  }

  if (packet.kind == kEpReqKind) {
    const auto* req = packet.payload.get<RequestVector>();
    if (req == nullptr) return;
    for (const dtn::MessageId& id : req->ids) {
      dtn::Message* m = buffer_.findInStore({id, dtn::TreeFlag::kNone});
      if (m == nullptr) continue;  // dropped since the summary was sent
      net::Packet p;
      p.kind = kEpDataKind;
      p.bytes = m->payloadBytes + params_.dataHeaderBytes;
      p.payload = net::Payload::of(*m);
      if (!world_.macOf(self_).send(std::move(p), fromMac)) {
        ++counters_.sendRejects;
      }
      ++counters_.dataSent;
      if (trace::Recorder* t = world_.trace()) {
        t->record(trace::EventType::kSend, self_, fromMac, id.src, id.seq);
      }
    }
    return;
  }

  if (packet.kind == kEpDataKind) {
    const auto* pm = packet.payload.get<dtn::Message>();
    if (pm == nullptr) return;
    dtn::Message m = *pm;
    m.hops += 1;
    ++counters_.dataReceived;
    // Adversaries misbehave only on the relay path: traffic addressed to
    // this node is always delivered (and the drop is counted centrally by
    // the AdversaryModel, never silently). Epidemic has no custody, so a
    // selfish refusal degenerates to the same silent non-storage as a drop.
    if (m.dstNode != self_) {
      if (net::AdversaryModel* adv = world_.adversary()) {
        if (adv->onRelayData(self_) !=
            net::AdversaryModel::RelayDecision::kAccept) {
          return;
        }
      }
    }
    if (buffer_.containsAnyBranch(m.id) || deliveredHere_.contains(m.id)) {
      ++counters_.duplicatesDropped;
      return;
    }
    if (m.dstNode == self_) {
      deliveredHere_.insert(m.id);
      ++counters_.deliveredHere;
      if (metrics_ != nullptr) {
        metrics_->onDelivered(m, world_.sim().now(), m.hops);
      }
      // The destination keeps the message buffered (epidemic never clears),
      // which also stops neighbors from re-sending it here.
    }
    addMessage(std::move(m));
  }
}

void EpidemicAgent::saveState(ckpt::Encoder& e) const {
  for (const std::uint64_t word : rng_.state()) e.u64(word);
  neighbors_.saveState(e);
  buffer_.saveState(e);
  ckpt::saveUnorderedSet(e, deliveredHere_,
                         [](ckpt::Encoder& enc, const dtn::MessageId& id) {
                           ckpt::saveMessageId(enc, id);
                         });
  e.size(additions_.size());
  for (const auto& [seq, id] : additions_) {
    e.u64(seq);
    ckpt::saveMessageId(e, id);
  }
  e.u64(addSeq_);
  ckpt::saveUnorderedMap(
      e, offeredUpTo_,
      [](ckpt::Encoder& enc, const int id, const std::uint64_t seq) {
        enc.i32(id);
        enc.u64(seq);
      });
  ckpt::saveUnorderedMap(
      e, lastOfferAt_,
      [](ckpt::Encoder& enc, const int id, const sim::SimTime at) {
        enc.i32(id);
        enc.f64(at);
      });
  ckpt::saveUnorderedMap(
      e, requestedAt_,
      [](ckpt::Encoder& enc, const dtn::MessageId& id, const sim::SimTime at) {
        ckpt::saveMessageId(enc, id);
        enc.f64(at);
      });
  e.u64(counters_.summariesSent);
  e.u64(counters_.requestsSent);
  e.u64(counters_.dataSent);
  e.u64(counters_.dataReceived);
  e.u64(counters_.duplicatesDropped);
  e.u64(counters_.deliveredHere);
  e.u64(counters_.sendRejects);
  e.i32(nextSeq_);
}

void EpidemicAgent::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  neighbors_.restoreState(d);
  buffer_.restoreState(d);
  ckpt::loadUnorderedSet(d, deliveredHere_, [](ckpt::Decoder& dec) {
    return ckpt::loadMessageId(dec);
  });
  const std::size_t nAdd = d.checkedSize(d.u64(), 12);
  additions_.clear();
  additions_.reserve(nAdd);
  for (std::size_t i = 0; i < nAdd; ++i) {
    const std::uint64_t seq = d.u64();
    additions_.emplace_back(seq, ckpt::loadMessageId(d));
  }
  addSeq_ = d.u64();
  ckpt::loadUnorderedMap(d, offeredUpTo_, [](ckpt::Decoder& dec) {
    const int id = dec.i32();
    const std::uint64_t seq = dec.u64();
    return std::pair<int, std::uint64_t>{id, seq};
  });
  ckpt::loadUnorderedMap(d, lastOfferAt_, [](ckpt::Decoder& dec) {
    const int id = dec.i32();
    const sim::SimTime at = dec.f64();
    return std::pair<int, sim::SimTime>{id, at};
  });
  ckpt::loadUnorderedMap(d, requestedAt_, [](ckpt::Decoder& dec) {
    const dtn::MessageId id = ckpt::loadMessageId(dec);
    const sim::SimTime at = dec.f64();
    return std::pair<dtn::MessageId, sim::SimTime>{id, at};
  });
  counters_.summariesSent = d.u64();
  counters_.requestsSent = d.u64();
  counters_.dataSent = d.u64();
  counters_.dataReceived = d.u64();
  counters_.duplicatesDropped = d.u64();
  counters_.deliveredHere = d.u64();
  counters_.sendRejects = d.u64();
  nextSeq_ = d.i32();
}

void EpidemicAgent::restoreEvent(const sim::EventKey& key,
                                 const sim::EventDesc& desc) {
  switch (desc.kind) {
    case ckpt::kHello:
      neighbors_.restoreHelloEvent(key);
      return;
    case ckpt::kEpidemicExchange:
      world_.sim().scheduleKeyed(key, exchangeDesc(self_),
                                 [this] { exchangeTick(); });
      return;
    default:
      throw std::runtime_error{
          "EpidemicAgent: cannot restore event kind " +
          std::to_string(static_cast<int>(desc.kind))};
  }
}

}  // namespace glr::routing
