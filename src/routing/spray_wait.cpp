#include "routing/spray_wait.hpp"

#include <array>
#include <stdexcept>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "checkpoint/message_codec.hpp"
#include "trace/recorder.hpp"

#include "net/faults.hpp"

namespace glr::routing {

namespace {

sim::EventDesc expiryDesc(int self) {
  sim::EventDesc d;
  d.kind = ckpt::kSprayExpiry;
  d.i0 = self;
  return d;
}

}  // namespace

SprayWaitAgent::SprayWaitAgent(net::World& world, int self,
                               SprayWaitParams params,
                               dtn::MetricsCollector* metrics, sim::Rng rng)
    : world_(world),
      self_(self),
      params_(params),
      metrics_(metrics),
      rng_(rng),
      neighbors_(world.sim(), world.macOf(self), self,
                 [this] { return myPos(); }, params.hello, rng.fork(1)),
      buffer_(params.storageLimit, params.expectedBufferedCopies) {
  buffer_.setTrace(world_.trace(), self_);
  neighbors_.setContactCallback([this](int id) { onContact(id); });
}

void SprayWaitAgent::start() {
  neighbors_.start();
  // The expiry sweep exists only when a TTL is configured, so TTL-less runs
  // execute a bit-identical event sequence to the historical behavior.
  if (params_.messageTtl > 0.0) {
    world_.sim().schedule(rng_.uniform(0.0, params_.expiryCheckInterval),
                          expiryDesc(self_), [this] { expiryTick(); });
  }
}

void SprayWaitAgent::expiryTick() {
  if (buffer_.expireDue(world_.sim().now()) > 0) {
    // Drop budget bookkeeping for ids no longer held anywhere.
    for (auto it = budget_.begin(); it != budget_.end();) {
      if (!buffer_.containsAnyBranch(it->first)) {
        it = budget_.erase(it);
      } else {
        ++it;
      }
    }
  }
  world_.sim().schedule(params_.expiryCheckInterval, expiryDesc(self_),
                        [this] { expiryTick(); });
}

void SprayWaitAgent::originate(int dstNode) {
  dtn::Message m;
  m.id = {self_, nextSeq_++};
  m.srcNode = self_;
  m.dstNode = dstNode;
  m.created = world_.sim().now();
  m.payloadBytes = params_.payloadBytes;
  if (params_.messageTtl > 0.0) m.expiresAt = m.created + params_.messageTtl;
  if (metrics_ != nullptr) metrics_->onCreated(m);
  budget_[m.id] = params_.copyBudget;
  buffer_.addToStore(std::move(m));
  // Offer immediately to whoever is already around (a fresh message would
  // otherwise wait for the next contact event).
  for (const int j : neighbors_.currentNeighbors()) onContact(j);
}

void SprayWaitAgent::onContact(int id) {
  // Offer ids we can spray (budget > 1) or that the contact itself wants
  // (it is their destination). Built in place in a recycled arena block
  // (clear() keeps capacity), like the epidemic summary path.
  net::Payload payload = net::Payload::create<SummaryVector>();
  SummaryVector& sv = payload.mutableValue<SummaryVector>();
  sv.ids.clear();
  for (const dtn::CopyKey& key : buffer_.storeKeys()) {
    const dtn::Message* m = buffer_.findInStore(key);
    if (m == nullptr) continue;
    const int b = budget_[key.id];
    if (b > 1 || m->dstNode == id) sv.ids.push_back(key.id);
  }
  if (sv.ids.empty()) return;
  net::Packet p;
  p.kind = kSwSvKind;
  p.bytes = params_.svHeaderBytes + params_.svEntryBytes * sv.ids.size();
  p.payload = std::move(payload);
  if (!world_.macOf(self_).send(std::move(p), id)) ++sendRejects_;
}

void SprayWaitAgent::onPacket(const net::Packet& packet, int fromMac) {
  if (neighbors_.handlePacket(packet, fromMac)) return;

  if (packet.kind == kSwSvKind) {
    const auto* sv = packet.payload.get<SummaryVector>();
    if (sv == nullptr) return;
    net::Payload payload = net::Payload::create<RequestVector>();
    RequestVector& req = payload.mutableValue<RequestVector>();
    req.ids.clear();
    for (const dtn::MessageId& id : sv->ids) {
      if (!buffer_.containsAnyBranch(id) && !deliveredHere_.contains(id)) {
        req.ids.push_back(id);
      }
    }
    if (req.ids.empty()) return;
    net::Packet p;
    p.kind = kSwReqKind;
    p.bytes = params_.svHeaderBytes + params_.svEntryBytes * req.ids.size();
    p.payload = std::move(payload);
    if (!world_.macOf(self_).send(std::move(p), fromMac)) ++sendRejects_;
    return;
  }

  if (packet.kind == kSwReqKind) {
    const auto* req = packet.payload.get<RequestVector>();
    if (req == nullptr) return;
    for (const dtn::MessageId& id : req->ids) {
      dtn::Message* m = buffer_.findInStore({id, dtn::TreeFlag::kNone});
      if (m == nullptr) continue;
      int& b = budget_[id];
      const bool toDestination = m->dstNode == fromMac;
      if (b <= 1 && !toDestination) continue;  // wait phase: destination only
      SprayData out;
      out.message = *m;
      out.budget = toDestination ? 1 : b - b / 2;  // hand over half (binary)
      net::Packet p;
      p.kind = kSwDataKind;
      p.bytes = m->payloadBytes + params_.dataHeaderBytes;
      p.payload = net::Payload::of(out);
      if (world_.macOf(self_).send(std::move(p), fromMac)) {
        ++dataSent_;
        if (trace::Recorder* t = world_.trace()) {
          t->record(trace::EventType::kSend, self_, fromMac, id.src, id.seq);
        }
      } else {
        ++sendRejects_;
      }
      if (toDestination) {
        buffer_.erase({id, dtn::TreeFlag::kNone});
        budget_.erase(id);
      } else {
        b -= out.budget;
      }
    }
    return;
  }

  if (packet.kind == kSwDataKind) {
    const auto* sd = packet.payload.get<SprayData>();
    if (sd == nullptr) return;
    dtn::Message m = sd->message;
    m.hops += 1;
    ++dataReceived_;
    // Relay-path adversary hook (own traffic always accepted). The sender
    // has already handed over half its budget, so a blackhole relay burns
    // logical copies — exactly the attack surface the resilience bench
    // measures. Spray-and-Wait has no custody, so refusal == drop here.
    if (m.dstNode != self_) {
      if (net::AdversaryModel* adv = world_.adversary()) {
        if (adv->onRelayData(self_) !=
            net::AdversaryModel::RelayDecision::kAccept) {
          return;
        }
      }
    }
    if (m.dstNode == self_) {
      if (deliveredHere_.insert(m.id).second && metrics_ != nullptr) {
        metrics_->onDelivered(m, world_.sim().now(), m.hops);
      }
      return;
    }
    if (buffer_.containsAnyBranch(m.id)) return;
    const int budget = sd->budget;
    const int dst = m.dstNode;
    budget_[m.id] = budget;
    buffer_.addToStore(std::move(m));
    if (budget > 1 || neighbors_.isNeighbor(dst)) {
      for (const int j : neighbors_.currentNeighbors()) {
        if (j != fromMac) onContact(j);
      }
    }
  }
}

void SprayWaitAgent::saveState(ckpt::Encoder& e) const {
  for (const std::uint64_t word : rng_.state()) e.u64(word);
  neighbors_.saveState(e);
  buffer_.saveState(e);
  ckpt::saveUnorderedMap(
      e, budget_,
      [](ckpt::Encoder& enc, const dtn::MessageId& id, const int b) {
        ckpt::saveMessageId(enc, id);
        enc.i32(b);
      });
  ckpt::saveUnorderedSet(e, deliveredHere_,
                         [](ckpt::Encoder& enc, const dtn::MessageId& id) {
                           ckpt::saveMessageId(enc, id);
                         });
  e.u64(dataSent_);
  e.u64(dataReceived_);
  e.u64(sendRejects_);
  e.i32(nextSeq_);
}

void SprayWaitAgent::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  neighbors_.restoreState(d);
  buffer_.restoreState(d);
  ckpt::loadUnorderedMap(d, budget_, [](ckpt::Decoder& dec) {
    const dtn::MessageId id = ckpt::loadMessageId(dec);
    const int b = dec.i32();
    return std::pair<dtn::MessageId, int>{id, b};
  });
  ckpt::loadUnorderedSet(d, deliveredHere_, [](ckpt::Decoder& dec) {
    return ckpt::loadMessageId(dec);
  });
  dataSent_ = d.u64();
  dataReceived_ = d.u64();
  sendRejects_ = d.u64();
  nextSeq_ = d.i32();
}

void SprayWaitAgent::restoreEvent(const sim::EventKey& key,
                                  const sim::EventDesc& desc) {
  switch (desc.kind) {
    case ckpt::kHello:
      neighbors_.restoreHelloEvent(key);
      return;
    case ckpt::kSprayExpiry:
      if (params_.messageTtl <= 0.0) {
        throw std::runtime_error{
            "SprayWaitAgent: expiry event restored but no TTL configured"};
      }
      world_.sim().scheduleKeyed(key, expiryDesc(self_),
                                 [this] { expiryTick(); });
      return;
    default:
      throw std::runtime_error{
          "SprayWaitAgent: cannot restore event kind " +
          std::to_string(static_cast<int>(desc.kind))};
  }
}

}  // namespace glr::routing
