#pragma once
/// \file spray_wait.hpp
/// Binary Spray-and-Wait baseline (Spyropoulos et al.) — an extension
/// comparator representing the "improved epidemic" family the paper cites
/// ([4,5,19,20]): a fixed copy budget L is halved at each handover; a node
/// holding a single copy waits to meet the destination (direct delivery).

#include <unordered_map>
#include <unordered_set>

#include "dtn/buffer.hpp"
#include "dtn/message.hpp"
#include "dtn/metrics.hpp"
#include "net/neighbor.hpp"
#include "net/world.hpp"
#include "routing/dtn_agent.hpp"
#include "routing/epidemic.hpp"
#include "sim/rng.hpp"

namespace glr::routing {

struct SprayWaitParams {
  int copyBudget = 8;  // L: initial number of logical copies
  std::size_t storageLimit = dtn::kUnlimitedStorage;
  /// Buffer index pre-size hint (see MessageBuffer); 0 = no hint.
  std::size_t expectedBufferedCopies = 0;
  std::size_t payloadBytes = 1000;
  std::size_t dataHeaderBytes = 30;  // data header + budget field
  std::size_t svHeaderBytes = 20;
  std::size_t svEntryBytes = 8;
  /// Bundle lifetime in seconds; 0 (default) = immortal messages. When set,
  /// a periodic sweep drops expired copies as counted expiries.
  double messageTtl = 0.0;
  double expiryCheckInterval = 1.0;  // sweep cadence when messageTtl > 0
  net::NeighborService::Params hello;
};

/// Data payload: message plus remaining budget handed to the receiver.
struct SprayData {
  dtn::Message message;
  int budget = 1;
};

inline constexpr const char* kSwSvKind = "sw-sv";
inline constexpr const char* kSwReqKind = "sw-req";
inline constexpr const char* kSwDataKind = "sw-data";

class SprayWaitAgent final : public DtnAgent {
 public:
  SprayWaitAgent(net::World& world, int self, SprayWaitParams params,
                 dtn::MetricsCollector* metrics, sim::Rng rng);

  void start() override;
  void onPacket(const net::Packet& packet, int fromMac) override;
  void originate(int dstNode) override;
  void onRadioState(bool up) override {
    if (!up) neighbors_.reset();
  }

  [[nodiscard]] std::size_t storageUsed() const override {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t storagePeak() const override {
    return buffer_.peakSize();
  }

  void harvestCounters(ProtocolCounters& out) const override {
    out.dataSent += dataSent_;
    out.dataReceived += dataReceived_;
    out.sendRejects += sendRejects_ + neighbors_.helloSendFailures();
    out.bufferEvictions += buffer_.dropCount();
    out.expiredDrops += buffer_.expiredCount();
  }

  /// Checkpoint support: hello service, buffer, per-id copy budgets,
  /// delivered set, counters and RNG. Pending events (hello beacon, expiry
  /// sweep when a TTL is configured) are rebuilt via restoreEvent.
  void saveState(ckpt::Encoder& e) const override;
  void restoreState(ckpt::Decoder& d) override;
  void restoreEvent(const sim::EventKey& key,
                    const sim::EventDesc& desc) override;

 private:
  void onContact(int id);
  void expiryTick();
  [[nodiscard]] geom::Point2 myPos() { return world_.positionOf(self_); }

  net::World& world_;
  int self_;
  SprayWaitParams params_;
  dtn::MetricsCollector* metrics_;
  sim::Rng rng_;
  net::NeighborService neighbors_;
  dtn::MessageBuffer buffer_;
  std::unordered_map<dtn::MessageId, int> budget_;  // copies left here
  std::unordered_set<dtn::MessageId> deliveredHere_;
  std::uint64_t dataSent_ = 0;
  std::uint64_t dataReceived_ = 0;
  std::uint64_t sendRejects_ = 0;  // SV/request/data sends the MAC refused
  int nextSeq_ = 0;
};

}  // namespace glr::routing
