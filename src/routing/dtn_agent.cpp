#include "routing/dtn_agent.hpp"

#include <stdexcept>

namespace glr::routing {

void DtnAgent::saveState(ckpt::Encoder& /*e*/) const {
  throw std::runtime_error{
      "DtnAgent: this protocol does not implement checkpointing"};
}

void DtnAgent::restoreState(ckpt::Decoder& /*d*/) {
  throw std::runtime_error{
      "DtnAgent: this protocol does not implement checkpoint restore"};
}

void DtnAgent::restoreEvent(const sim::EventKey& /*key*/,
                            const sim::EventDesc& /*desc*/) {
  throw std::runtime_error{
      "DtnAgent: this protocol does not implement event restore"};
}

}  // namespace glr::routing
