#include "mobility/registry.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "mobility/models.hpp"

namespace glr::mobility {

namespace {

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, MobilityFactory> map;

  Registry() {
    map.emplace("static",
                [](const ModelParams&, geom::Point2 start, sim::Rng) {
                  return std::make_unique<StaticMobility>(start);
                });
    map.emplace("waypoint", [](const ModelParams& p, geom::Point2 start,
                               sim::Rng rng) {
      return std::make_unique<RandomWaypoint>(p.area, p.speedMin, p.speedMax,
                                              p.pause, start, rng);
    });
    map.emplace("walk",
                [](const ModelParams& p, geom::Point2 start, sim::Rng rng) {
                  return std::make_unique<RandomWalk>(p.area, p.speedMin,
                                                      p.speedMax,
                                                      p.legDuration, start,
                                                      rng);
                });
    map.emplace("direction", [](const ModelParams& p, geom::Point2 start,
                                sim::Rng rng) {
      return std::make_unique<RandomDirection>(p.area, p.speedMin, p.speedMax,
                                               p.pause, start, rng);
    });
    map.emplace("gauss_markov", [](const ModelParams& p, geom::Point2 start,
                                   sim::Rng rng) {
      const double mean =
          p.meanSpeed < 0.0 ? 0.5 * (p.speedMin + p.speedMax) : p.meanSpeed;
      return std::make_unique<GaussMarkov>(p.area, p.speedMin, p.speedMax,
                                           p.updateInterval, p.alpha, mean,
                                           start, rng);
    });
    map.emplace("manhattan", [](const ModelParams& p, geom::Point2 start,
                                sim::Rng rng) {
      return std::make_unique<ManhattanGrid>(p.area, p.speedMin, p.speedMax,
                                             p.pause, p.gridSpacing,
                                             p.turnProb, start, rng);
    });
    map.emplace("cluster", [](const ModelParams& p, geom::Point2 start,
                              sim::Rng rng) {
      return std::make_unique<HomePointMobility>(
          p.area, p.speedMin, p.speedMax, p.pause, p.clusterStddev,
          p.roamProb, p.home, start, rng);
    });
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

bool registerMobilityModel(const std::string& name, MobilityFactory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument{
        "registerMobilityModel: need a name and a factory"};
  }
  Registry& r = registry();
  std::lock_guard lock{r.mu};
  return r.map.insert_or_assign(name, std::move(factory)).second;
}

bool isMobilityModelRegistered(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock{r.mu};
  return r.map.contains(name);
}

std::unique_ptr<MobilityModel> makeMobilityModel(const std::string& name,
                                                 const ModelParams& params,
                                                 geom::Point2 start,
                                                 sim::Rng rng) {
  MobilityFactory factory;
  {
    Registry& r = registry();
    std::lock_guard lock{r.mu};
    const auto it = r.map.find(name);
    if (it == r.map.end()) {
      throw std::invalid_argument{"makeMobilityModel: unknown model '" +
                                  name + "'"};
    }
    factory = it->second;  // copy: construct outside the lock
  }
  return factory(params, start, rng);
}

std::vector<std::string> mobilityModelNames() {
  Registry& r = registry();
  std::vector<std::string> names;
  {
    std::lock_guard lock{r.mu};
    names.reserve(r.map.size());
    for (const auto& [name, factory] : r.map) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace glr::mobility
