#pragma once
/// \file models.hpp
/// Extension mobility models beyond the paper's random waypoint: random
/// direction, Gauss-Markov, Manhattan grid, and clustered home-point
/// mobility. Each one keeps the lazy MobilityModel::positionAt contract and
/// advances on internal segment boundaries, so positions are pure functions
/// of the query time (safe under the channel's spatial receiver index) and
/// every trajectory is a deterministic function of the model's RNG stream.

#include "mobility/mobility.hpp"

namespace glr::mobility {

/// Standard normal draw (Box-Muller over the stream's uniforms).
[[nodiscard]] double gaussian(sim::Rng& rng);

/// Random direction: travel on a straight uniform heading until the area
/// border, pause there, pick a new (inward) heading, repeat. Unlike random
/// waypoint — whose stationary node density piles up in the middle of the
/// area — random direction spends most time near the perimeter, which
/// stresses geographic routing with border topologies.
class RandomDirection final : public LegMobility {
 public:
  RandomDirection(Area area, double speedMin, double speedMax, double pause,
                  geom::Point2 start, sim::Rng rng);

 protected:
  geom::Point2 pickDestination(geom::Point2 from, sim::Rng& rng) override;
};

/// Gauss-Markov: speed and heading follow AR(1) processes
///   s'     = a*s     + (1-a)*meanSpeed + sqrt(1-a^2)*sigmaS*N(0,1)
///   theta' = a*theta + (1-a)*meanDir   + sqrt(1-a^2)*sigmaD*N(0,1)
/// refreshed every updateInterval seconds; positions integrate piecewise
/// linearly between refreshes. meanDir steers toward the interior inside an
/// edge margin (the classic Camp/Boleng-survey edge handling), and border
/// crossings within a step reflect. alpha near 1 yields smooth, strongly
/// autocorrelated motion; alpha 0 degenerates to a memoryless walk.
class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(Area area, double speedMin, double speedMax,
              double updateInterval, double alpha, double meanSpeed,
              geom::Point2 start, sim::Rng rng);

  geom::Point2 positionAt(sim::SimTime t) override;

 private:
  void step();
  void updateProcess();
  void integrate();

  Area area_;
  double speedMin_;
  double speedMax_;
  double dt_;
  double alpha_;
  double meanSpeed_;
  double sigmaSpeed_;
  double sigmaDir_;
  double margin_;
  sim::Rng rng_;

  geom::Point2 from_;  // position at stepStart_
  geom::Point2 to_;    // position at stepStart_ + dt_
  double speed_;
  double theta_;
  sim::SimTime stepStart_ = 0.0;
};

/// Manhattan / grid-constrained mobility: nodes move along the streets of a
/// `gridSpacing`-metre grid clipped to the area. At each intersection the
/// node keeps straight with probability 1 - 2*turnProb and turns left/right
/// with probability turnProb each (invalid directions at the border are
/// excluded and the rest renormalized; dead ends force a U-turn), then
/// traverses one block at a per-block uniform speed, pausing `pause`
/// seconds at intersections.
class ManhattanGrid final : public LegMobility {
 public:
  ManhattanGrid(Area area, double speedMin, double speedMax, double pause,
                double gridSpacing, double turnProb, geom::Point2 start,
                sim::Rng rng);

 protected:
  geom::Point2 pickDestination(geom::Point2 from, sim::Rng& rng) override;

 private:
  [[nodiscard]] bool validDir(int dir) const;
  [[nodiscard]] geom::Point2 intersection() const;

  double spacing_;
  double turnProb_;
  int nx_ = 0;  // intersections span [0, nx_] x [0, ny_]
  int ny_ = 0;
  int ix_ = 0;
  int iy_ = 0;
  int dir_ = -1;  // 0 = +x, 1 = +y, 2 = -x, 3 = -y; -1 = not started
};

/// Clustered / home-point mobility: waypoints are Gaussian around the
/// node's home point (clamped to the area) instead of uniform, so nodes
/// congregate in clusters; with probability roamProb a leg targets a
/// uniform point anywhere, modelling occasional inter-cluster trips. The
/// scenario layer assigns homes from a shared set of cluster centres.
class HomePointMobility final : public LegMobility {
 public:
  HomePointMobility(Area area, double speedMin, double speedMax, double pause,
                    double stddev, double roamProb, geom::Point2 home,
                    geom::Point2 start, sim::Rng rng);

 protected:
  geom::Point2 pickDestination(geom::Point2 from, sim::Rng& rng) override;

 private:
  double stddev_;
  double roamProb_;
  geom::Point2 home_;
};

}  // namespace glr::mobility
