#pragma once
/// \file registry.hpp
/// String-keyed registry of pluggable mobility models.
///
/// The scenario layer (and its sweep grids) selects mobility by name, so a
/// mobility axis in a SweepRunner grid is just a vector of strings. The
/// built-ins — "static", "waypoint", "walk", "direction", "gauss_markov",
/// "manhattan", "cluster" — register themselves; embedders can add their own
/// models with registerMobilityModel (e.g. trace-driven or vehicular
/// mobility) without touching this library. The registry is guarded by a
/// mutex: scenarios constructed on SweepRunner worker threads look models up
/// concurrently.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mobility/mobility.hpp"

namespace glr::mobility {

/// Parameter bundle a factory may draw from. Shared knobs (area, speeds,
/// pause) apply to every model; the rest are used only by the model whose
/// comment names them, so one bundle can configure a whole sweep axis.
struct ModelParams {
  Area area;
  double speedMin = 0.1;
  double speedMax = 20.0;
  double pause = 0.0;

  double legDuration = 10.0;    // walk: seconds per heading
  double updateInterval = 1.0;  // gauss_markov: refresh period (s)
  double alpha = 0.85;          // gauss_markov: AR(1) memory in [0, 1]
  double meanSpeed = -1.0;      // gauss_markov: mean speed (< 0: midpoint)
  double gridSpacing = 100.0;   // manhattan: street spacing (m)
  double turnProb = 0.25;       // manhattan: per-side turn probability
  double clusterStddev = 75.0;  // cluster: waypoint spread around home (m)
  double roamProb = 0.05;       // cluster: chance of a uniform roam leg
  geom::Point2 home;            // cluster: this node's home point
};

using MobilityFactory = std::function<std::unique_ptr<MobilityModel>(
    const ModelParams& params, geom::Point2 start, sim::Rng rng)>;

/// Registers (or replaces) a model under `name`; returns true if `name` was
/// new. Factories must be thread-safe to *call* (they run on sweep workers).
bool registerMobilityModel(const std::string& name, MobilityFactory factory);

[[nodiscard]] bool isMobilityModelRegistered(const std::string& name);

/// Instantiates `name` with the given parameters, start position and RNG
/// stream. Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<MobilityModel> makeMobilityModel(
    const std::string& name, const ModelParams& params, geom::Point2 start,
    sim::Rng rng);

/// Registered model names, sorted (stable axis order for sweeps/tests).
[[nodiscard]] std::vector<std::string> mobilityModelNames();

}  // namespace glr::mobility
