#include "mobility/models.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace glr::mobility {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double gaussian(sim::Rng& rng) {
  // Box-Muller; 1 - u keeps the log argument in (0, 1].
  const double u = 1.0 - rng.uniform01();
  const double v = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(kTwoPi * v);
}

// ---------------------------------------------------------------------------
// RandomDirection
// ---------------------------------------------------------------------------

RandomDirection::RandomDirection(Area area, double speedMin, double speedMax,
                                 double pause, geom::Point2 start,
                                 sim::Rng rng)
    : LegMobility(area, speedMin, speedMax, pause, clampToArea(start, area),
                  rng, "RandomDirection") {}

geom::Point2 RandomDirection::pickDestination(geom::Point2 from,
                                              sim::Rng& rng) {
  // Rejection-sample a heading with positive travel distance to the border
  // (a node sitting on the border rejects headings that point outward).
  for (;;) {
    const double heading = rng.uniform(0.0, kTwoPi);
    const geom::Point2 dir{std::cos(heading), std::sin(heading)};
    double reach = std::numeric_limits<double>::infinity();
    if (dir.x > 0.0) {
      reach = std::min(reach, (area().width - from.x) / dir.x);
    } else if (dir.x < 0.0) {
      reach = std::min(reach, -from.x / dir.x);
    }
    if (dir.y > 0.0) {
      reach = std::min(reach, (area().height - from.y) / dir.y);
    } else if (dir.y < 0.0) {
      reach = std::min(reach, -from.y / dir.y);
    }
    if (!std::isfinite(reach) || reach <= 1e-9) continue;
    return clampToArea(from + dir * reach, area());
  }
}

// ---------------------------------------------------------------------------
// GaussMarkov
// ---------------------------------------------------------------------------

GaussMarkov::GaussMarkov(Area area, double speedMin, double speedMax,
                         double updateInterval, double alpha, double meanSpeed,
                         geom::Point2 start, sim::Rng rng)
    : area_(area),
      speedMin_(speedMin),
      speedMax_(speedMax),
      dt_(updateInterval),
      alpha_(alpha),
      meanSpeed_(meanSpeed),
      sigmaSpeed_(0.25 * (speedMax - speedMin)),
      sigmaDir_(0.5),
      margin_(0.1 * std::min(area.width, area.height)),
      rng_(rng),
      from_(clampToArea(start, area)) {
  if (area.width <= 0.0 || area.height <= 0.0) {
    throw std::invalid_argument{"GaussMarkov: area must be positive"};
  }
  if (speedMin <= 0.0 || speedMax < speedMin) {
    throw std::invalid_argument{"GaussMarkov: need 0 < speedMin <= speedMax"};
  }
  if (updateInterval <= 0.0) {
    throw std::invalid_argument{"GaussMarkov: updateInterval must be > 0"};
  }
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument{"GaussMarkov: alpha must be in [0, 1]"};
  }
  if (meanSpeed < speedMin || meanSpeed > speedMax) {
    throw std::invalid_argument{
        "GaussMarkov: meanSpeed outside [speedMin, speedMax]"};
  }
  speed_ = meanSpeed_;
  theta_ = rng_.uniform(0.0, kTwoPi);
  integrate();  // segment 0 uses the initial (speed, theta)
}

void GaussMarkov::updateProcess() {
  // Steer the mean heading toward the interior inside the edge margin; the
  // corner cases aim diagonally inward (Camp/Boleng edge handling).
  const bool west = from_.x < margin_;
  const bool east = from_.x > area_.width - margin_;
  const bool south = from_.y < margin_;
  const bool north = from_.y > area_.height - margin_;
  double mean = theta_;  // free flight: persist the current heading
  if (west || east || south || north) {
    double mx = west ? 1.0 : (east ? -1.0 : 0.0);
    double my = south ? 1.0 : (north ? -1.0 : 0.0);
    mean = std::atan2(my, mx);
  }
  // Pull theta toward the representation of `mean` nearest to it, so an
  // unbounded accumulated angle still relaxes correctly.
  mean += kTwoPi * std::round((theta_ - mean) / kTwoPi);

  const double k = std::sqrt(std::max(0.0, 1.0 - alpha_ * alpha_));
  speed_ = alpha_ * speed_ + (1.0 - alpha_) * meanSpeed_ +
           k * sigmaSpeed_ * gaussian(rng_);
  speed_ = std::clamp(speed_, speedMin_, speedMax_);
  theta_ = alpha_ * theta_ + (1.0 - alpha_) * mean +
           k * sigmaDir_ * gaussian(rng_);
}

void GaussMarkov::integrate() {
  geom::Point2 p = from_ + geom::Point2{speed_ * std::cos(theta_),
                                        speed_ * std::sin(theta_)} *
                               dt_;
  // Reflect into the area; the heading flips so the process stays coherent.
  while (p.x < 0.0 || p.x > area_.width) {
    if (p.x < 0.0) p.x = -p.x;
    if (p.x > area_.width) p.x = 2.0 * area_.width - p.x;
    theta_ = std::numbers::pi - theta_;
  }
  while (p.y < 0.0 || p.y > area_.height) {
    if (p.y < 0.0) p.y = -p.y;
    if (p.y > area_.height) p.y = 2.0 * area_.height - p.y;
    theta_ = -theta_;
  }
  to_ = clampToArea(p, area_);
}

void GaussMarkov::step() {
  from_ = to_;
  stepStart_ += dt_;
  updateProcess();
  integrate();
}

geom::Point2 GaussMarkov::positionAt(sim::SimTime t) {
  requireMonotone(t, "GaussMarkov");
  while (t >= stepStart_ + dt_) step();
  const double f = (t - stepStart_) / dt_;
  return from_ + (to_ - from_) * f;
}

// ---------------------------------------------------------------------------
// ManhattanGrid
// ---------------------------------------------------------------------------

namespace {

geom::Point2 snapToGrid(geom::Point2 p, Area area, double spacing) {
  if (spacing <= 0.0) {
    throw std::invalid_argument{"ManhattanGrid: gridSpacing must be > 0"};
  }
  const int nx = static_cast<int>(std::floor(area.width / spacing));
  const int ny = static_cast<int>(std::floor(area.height / spacing));
  if ((nx + 1) * (ny + 1) < 2) {
    throw std::invalid_argument{
        "ManhattanGrid: gridSpacing leaves fewer than two intersections"};
  }
  const int ix = std::clamp(static_cast<int>(std::lround(p.x / spacing)), 0,
                            nx);
  const int iy = std::clamp(static_cast<int>(std::lround(p.y / spacing)), 0,
                            ny);
  return {ix * spacing, iy * spacing};
}

}  // namespace

ManhattanGrid::ManhattanGrid(Area area, double speedMin, double speedMax,
                             double pause, double gridSpacing, double turnProb,
                             geom::Point2 start, sim::Rng rng)
    : LegMobility(area, speedMin, speedMax, pause,
                  snapToGrid(start, area, gridSpacing), rng, "ManhattanGrid"),
      spacing_(gridSpacing),
      turnProb_(turnProb) {
  if (turnProb < 0.0 || turnProb > 0.5) {
    throw std::invalid_argument{"ManhattanGrid: turnProb must be in [0, 0.5]"};
  }
  nx_ = static_cast<int>(std::floor(area.width / spacing_));
  ny_ = static_cast<int>(std::floor(area.height / spacing_));
  const geom::Point2 snapped = snapToGrid(start, area, spacing_);
  ix_ = static_cast<int>(std::lround(snapped.x / spacing_));
  iy_ = static_cast<int>(std::lround(snapped.y / spacing_));
}

bool ManhattanGrid::validDir(int dir) const {
  switch (dir) {
    case 0:
      return ix_ < nx_;
    case 1:
      return iy_ < ny_;
    case 2:
      return ix_ > 0;
    case 3:
      return iy_ > 0;
    default:
      return false;
  }
}

geom::Point2 ManhattanGrid::intersection() const {
  return {ix_ * spacing_, iy_ * spacing_};
}

geom::Point2 ManhattanGrid::pickDestination(geom::Point2 /*from*/,
                                            sim::Rng& rng) {
  if (dir_ < 0) {
    // First leg: uniform over the directions that have an adjacent
    // intersection (the constructor guarantees at least one exists).
    int valid[4];
    std::size_t count = 0;
    for (int d = 0; d < 4; ++d) {
      if (validDir(d)) valid[count++] = d;
    }
    dir_ = valid[rng.below(count)];
  } else {
    // Straight / left / right weighted by (1 - 2*turnProb, turnProb,
    // turnProb), filtered to directions that stay on the grid; a dead end
    // (none valid) forces a U-turn.
    struct Cand {
      int dir;
      double weight;
    };
    const Cand wish[3] = {{dir_, 1.0 - 2.0 * turnProb_},
                          {(dir_ + 1) % 4, turnProb_},
                          {(dir_ + 3) % 4, turnProb_}};
    Cand cands[3];
    std::size_t count = 0;
    double total = 0.0;
    for (const Cand& c : wish) {
      if (!validDir(c.dir)) continue;
      cands[count++] = c;
      total += c.weight;
    }
    if (count == 0) {
      dir_ = (dir_ + 2) % 4;  // dead end: U-turn
    } else if (total <= 0.0) {
      // Valid directions exist but all carry zero weight (e.g. turnProb
      // 0.5 in a one-row corridor, where only straight is valid): pick
      // uniformly among the valid ones rather than faking a dead end.
      dir_ = cands[rng.below(count)].dir;
    } else {
      double u = rng.uniform(0.0, total);
      dir_ = cands[count - 1].dir;  // fallback against FP edge at u == total
      for (std::size_t i = 0; i < count; ++i) {
        if (u < cands[i].weight) {
          dir_ = cands[i].dir;
          break;
        }
        u -= cands[i].weight;
      }
    }
  }
  switch (dir_) {
    case 0:
      ++ix_;
      break;
    case 1:
      ++iy_;
      break;
    case 2:
      --ix_;
      break;
    default:
      --iy_;
      break;
  }
  return intersection();
}

// ---------------------------------------------------------------------------
// HomePointMobility
// ---------------------------------------------------------------------------

HomePointMobility::HomePointMobility(Area area, double speedMin,
                                     double speedMax, double pause,
                                     double stddev, double roamProb,
                                     geom::Point2 home, geom::Point2 start,
                                     sim::Rng rng)
    : LegMobility(area, speedMin, speedMax, pause, clampToArea(start, area),
                  rng, "HomePointMobility"),
      stddev_(stddev),
      roamProb_(roamProb),
      home_(clampToArea(home, area)) {
  if (stddev <= 0.0) {
    throw std::invalid_argument{"HomePointMobility: stddev must be > 0"};
  }
  if (roamProb < 0.0 || roamProb > 1.0) {
    throw std::invalid_argument{
        "HomePointMobility: roamProb must be in [0, 1]"};
  }
}

geom::Point2 HomePointMobility::pickDestination(geom::Point2 /*from*/,
                                                sim::Rng& rng) {
  if (roamProb_ > 0.0 && rng.bernoulli(roamProb_)) {
    return randomPosition(area(), rng);
  }
  return clampToArea({home_.x + stddev_ * gaussian(rng),
                      home_.y + stddev_ * gaussian(rng)},
                     area());
}

}  // namespace glr::mobility
