#pragma once
/// \file mobility.hpp
/// Node mobility models with analytic trajectories.
///
/// Positions are evaluated lazily at arbitrary (non-decreasing) times rather
/// than stepped, so the event-driven simulator only pays for position
/// queries it actually makes. The paper's evaluation uses the random
/// waypoint model (uniform 0–20 m/s, pause 0) in a 1500 m x 300 m region;
/// models.hpp adds the extension models (random direction, Gauss-Markov,
/// Manhattan grid, clustered home-point) and registry.hpp the string-keyed
/// factory the scenario layer selects them through.

#include <memory>

#include "geometry/point.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace glr::mobility {

/// Rectangular deployment region [0,width] x [0,height].
struct Area {
  double width = 0.0;
  double height = 0.0;
};

/// Interface: where is this node at time t? Calls must use non-decreasing t
/// (the simulator clock), which lets implementations advance trajectory
/// segments incrementally.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  [[nodiscard]] virtual geom::Point2 positionAt(sim::SimTime t) = 0;

 protected:
  /// Enforces the non-decreasing-time contract. Every stateful model calls
  /// this first in positionAt: a backwards query would silently corrupt the
  /// incrementally advanced trajectory, so it throws (in every build type —
  /// it doubles as the simulation's clock-monotonicity tripwire: mobility is
  /// queried from almost every event, so a kernel that ever ran time
  /// backwards would be caught here immediately). The world's epoch
  /// position cache (net::World::positionOf) leans on the same guard: a
  /// cache entry is valid only at the exact time it was computed, and this
  /// throw is what guarantees the clock can never move backwards under a
  /// live entry.
  void requireMonotone(sim::SimTime t, const char* model);

 private:
  sim::SimTime lastQueryTime_ = 0.0;
};

/// A node that never moves. positionAt is a pure constant, so (alone among
/// the models) it tolerates arbitrary query order.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(geom::Point2 pos) : pos_(pos) {}
  geom::Point2 positionAt(sim::SimTime) override { return pos_; }

 private:
  geom::Point2 pos_;
};

/// Shared engine for leg-based models: travel in straight legs to
/// successive destinations at a per-leg uniform speed in
/// [speedMin, speedMax], pause `pause` seconds on arrival, repeat.
/// Subclasses only choose each leg's destination (pickDestination), which is
/// what distinguishes random waypoint from random direction, Manhattan and
/// home-point mobility. Legs advance on internal boundaries independent of
/// the query pattern, so positionAt is a pure function of t — the property
/// the channel's spatial receiver index relies on.
class LegMobility : public MobilityModel {
 public:
  geom::Point2 positionAt(sim::SimTime t) final;

 protected:
  /// speedMin must be > 0: the classical RWP pathology (speeds arbitrarily
  /// close to zero strand nodes for unbounded times) would otherwise make
  /// long simulations degenerate.
  LegMobility(Area area, double speedMin, double speedMax, double pause,
              geom::Point2 start, sim::Rng rng, const char* name);

  /// The next destination for a leg departing from `from`; draws from `rng`
  /// (the model's own stream). May mutate subclass state (e.g. the Manhattan
  /// model's current intersection).
  [[nodiscard]] virtual geom::Point2 pickDestination(geom::Point2 from,
                                                     sim::Rng& rng) = 0;

  [[nodiscard]] const Area& area() const { return area_; }

 private:
  void pickNextLeg();

  Area area_;
  double speedMin_;
  double speedMax_;
  double pause_;
  sim::Rng rng_;
  const char* name_;

  // Current leg: travel from from_ (departing at legStart_) to to_,
  // arriving at arrive_, then pause until pauseEnd_. The first leg is
  // picked lazily on the first query (a constructor cannot call the
  // subclass's pickDestination), with identical draw order to an eager
  // pick: pauseEnd_ == 0 forces pickNextLeg before the first evaluation.
  geom::Point2 from_;
  geom::Point2 to_;
  sim::SimTime legStart_ = 0.0;
  sim::SimTime arrive_ = 0.0;
  sim::SimTime pauseEnd_ = 0.0;
};

/// Random waypoint: pick a uniform point in the area, travel to it at a
/// uniform speed in [speedMin, speedMax], pause, repeat. The paper's
/// "0–20 m/s uniform" is realized with a small positive floor (see
/// LegMobility).
class RandomWaypoint final : public LegMobility {
 public:
  RandomWaypoint(Area area, double speedMin, double speedMax, double pause,
                 geom::Point2 start, sim::Rng rng);

 protected:
  geom::Point2 pickDestination(geom::Point2 from, sim::Rng& rng) override;
};

/// Random walk: pick a heading and a travel duration, bounce off area
/// borders (reflection). Unlike the leg-based models its position is
/// integrated per query, so under the channel's spatial index the exact FP
/// trajectory can depend on which times get queried (still deterministic
/// for a fixed configuration — the query pattern itself is deterministic).
class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(Area area, double speedMin, double speedMax, double legDuration,
             geom::Point2 start, sim::Rng rng);

  geom::Point2 positionAt(sim::SimTime t) override;

 private:
  void pickLeg();

  Area area_;
  double speedMin_;
  double speedMax_;
  double legDuration_;
  sim::Rng rng_;

  geom::Point2 pos_;
  geom::Point2 velocity_;
  sim::SimTime legEnd_ = 0.0;
  sim::SimTime lastTime_ = 0.0;
};

/// Uniformly random starting position inside `area`.
[[nodiscard]] geom::Point2 randomPosition(Area area, sim::Rng& rng);

/// `p` clamped into `area` (kills FP overshoot at borders).
[[nodiscard]] geom::Point2 clampToArea(geom::Point2 p, Area area);

}  // namespace glr::mobility
