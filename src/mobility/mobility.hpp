#pragma once
/// \file mobility.hpp
/// Node mobility models with analytic trajectories.
///
/// Positions are evaluated lazily at arbitrary (non-decreasing) times rather
/// than stepped, so the event-driven simulator only pays for position
/// queries it actually makes. The paper's evaluation uses the random
/// waypoint model (uniform 0–20 m/s, pause 0) in a 1500 m x 300 m region.

#include <memory>

#include "geometry/point.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace glr::mobility {

/// Rectangular deployment region [0,width] x [0,height].
struct Area {
  double width = 0.0;
  double height = 0.0;
};

/// Interface: where is this node at time t? Calls must use non-decreasing t
/// (the simulator clock), which lets implementations advance trajectory
/// segments incrementally.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  [[nodiscard]] virtual geom::Point2 positionAt(sim::SimTime t) = 0;
};

/// A node that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(geom::Point2 pos) : pos_(pos) {}
  geom::Point2 positionAt(sim::SimTime) override { return pos_; }

 private:
  geom::Point2 pos_;
};

/// Random waypoint: pick a uniform point in the area, travel to it at a
/// uniform speed in [speedMin, speedMax], pause, repeat.
///
/// speedMin must be > 0: the classical RWP pathology (speeds arbitrarily
/// close to zero strand nodes for unbounded times) would otherwise make
/// long simulations degenerate. The paper's "0–20 m/s uniform" is realized
/// with a small positive floor.
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(Area area, double speedMin, double speedMax, double pause,
                 geom::Point2 start, sim::Rng rng);

  geom::Point2 positionAt(sim::SimTime t) override;

 private:
  void advanceTo(sim::SimTime t);
  void pickNextLeg();

  Area area_;
  double speedMin_;
  double speedMax_;
  double pause_;
  sim::Rng rng_;

  // Current leg: travel from from_ (departing at legStart_) to to_,
  // arriving at arrive_, then pause until pauseEnd_.
  geom::Point2 from_;
  geom::Point2 to_;
  sim::SimTime legStart_ = 0.0;
  sim::SimTime arrive_ = 0.0;
  sim::SimTime pauseEnd_ = 0.0;
  sim::SimTime lastQuery_ = 0.0;
};

/// Random direction walk: pick a heading and a travel duration, bounce off
/// area borders (reflection). Used as an alternative mobility pattern in
/// extension experiments.
class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(Area area, double speedMin, double speedMax, double legDuration,
             geom::Point2 start, sim::Rng rng);

  geom::Point2 positionAt(sim::SimTime t) override;

 private:
  void pickLeg();

  Area area_;
  double speedMin_;
  double speedMax_;
  double legDuration_;
  sim::Rng rng_;

  geom::Point2 pos_;
  geom::Point2 velocity_;
  sim::SimTime legEnd_ = 0.0;
  sim::SimTime lastTime_ = 0.0;
};

/// Uniformly random starting position inside `area`.
[[nodiscard]] geom::Point2 randomPosition(Area area, sim::Rng& rng);

}  // namespace glr::mobility
