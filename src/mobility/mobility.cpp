#include "mobility/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace glr::mobility {

geom::Point2 randomPosition(Area area, sim::Rng& rng) {
  return {rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
}

geom::Point2 clampToArea(geom::Point2 p, Area area) {
  return {std::clamp(p.x, 0.0, area.width), std::clamp(p.y, 0.0, area.height)};
}

void MobilityModel::requireMonotone(sim::SimTime t, const char* model) {
  if (t < lastQueryTime_) {
    throw std::invalid_argument{std::string{model} +
                                "::positionAt: time moved backwards"};
  }
  lastQueryTime_ = t;
}

LegMobility::LegMobility(Area area, double speedMin, double speedMax,
                         double pause, geom::Point2 start, sim::Rng rng,
                         const char* name)
    : area_(area),
      speedMin_(speedMin),
      speedMax_(speedMax),
      pause_(pause),
      rng_(rng),
      name_(name),
      from_(start),
      to_(start) {
  if (area.width <= 0.0 || area.height <= 0.0) {
    throw std::invalid_argument{std::string{name} +
                                ": area must be positive"};
  }
  if (speedMin <= 0.0 || speedMax < speedMin) {
    throw std::invalid_argument{std::string{name} +
                                ": need 0 < speedMin <= speedMax"};
  }
  if (pause < 0.0) {
    throw std::invalid_argument{std::string{name} + ": negative pause"};
  }
}

void LegMobility::pickNextLeg() {
  from_ = to_;
  legStart_ = pauseEnd_;
  to_ = pickDestination(from_, rng_);
  const double speed = rng_.uniform(speedMin_, speedMax_);
  const double d = geom::dist(from_, to_);
  arrive_ = legStart_ + d / speed;
  pauseEnd_ = arrive_ + pause_;
}

geom::Point2 LegMobility::positionAt(sim::SimTime t) {
  requireMonotone(t, name_);
  while (t >= pauseEnd_) pickNextLeg();
  if (t <= legStart_) return from_;
  if (t >= arrive_) return to_;  // pausing at destination
  const double f = (t - legStart_) / (arrive_ - legStart_);
  return from_ + (to_ - from_) * f;
}

RandomWaypoint::RandomWaypoint(Area area, double speedMin, double speedMax,
                               double pause, geom::Point2 start, sim::Rng rng)
    : LegMobility(area, speedMin, speedMax, pause, start, rng,
                  "RandomWaypoint") {}

geom::Point2 RandomWaypoint::pickDestination(geom::Point2 /*from*/,
                                             sim::Rng& rng) {
  return randomPosition(area(), rng);
}

RandomWalk::RandomWalk(Area area, double speedMin, double speedMax,
                       double legDuration, geom::Point2 start, sim::Rng rng)
    : area_(area),
      speedMin_(speedMin),
      speedMax_(speedMax),
      legDuration_(legDuration),
      rng_(rng),
      pos_(start) {
  if (area.width <= 0.0 || area.height <= 0.0) {
    throw std::invalid_argument{"RandomWalk: area must be positive"};
  }
  if (speedMin <= 0.0 || speedMax < speedMin || legDuration <= 0.0) {
    throw std::invalid_argument{"RandomWalk: bad speed/duration parameters"};
  }
  pickLeg();
}

void RandomWalk::pickLeg() {
  const double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double speed = rng_.uniform(speedMin_, speedMax_);
  velocity_ = {speed * std::cos(heading), speed * std::sin(heading)};
  legEnd_ = lastTime_ + legDuration_;
}

geom::Point2 RandomWalk::positionAt(sim::SimTime t) {
  requireMonotone(t, "RandomWalk");
  // Integrate in (possibly several) leg segments, reflecting at borders.
  while (lastTime_ < t) {
    const sim::SimTime step = std::min(t, legEnd_) - lastTime_;
    pos_ = pos_ + velocity_ * step;
    // Reflect off each border; velocities flip so headings stay coherent.
    while (pos_.x < 0.0 || pos_.x > area_.width) {
      if (pos_.x < 0.0) pos_.x = -pos_.x;
      if (pos_.x > area_.width) pos_.x = 2.0 * area_.width - pos_.x;
      velocity_.x = -velocity_.x;
    }
    while (pos_.y < 0.0 || pos_.y > area_.height) {
      if (pos_.y < 0.0) pos_.y = -pos_.y;
      if (pos_.y > area_.height) pos_.y = 2.0 * area_.height - pos_.y;
      velocity_.y = -velocity_.y;
    }
    lastTime_ += step;
    if (lastTime_ >= legEnd_) pickLeg();
  }
  return pos_;
}

}  // namespace glr::mobility
