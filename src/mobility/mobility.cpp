#include "mobility/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace glr::mobility {

geom::Point2 randomPosition(Area area, sim::Rng& rng) {
  return {rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
}

RandomWaypoint::RandomWaypoint(Area area, double speedMin, double speedMax,
                               double pause, geom::Point2 start, sim::Rng rng)
    : area_(area),
      speedMin_(speedMin),
      speedMax_(speedMax),
      pause_(pause),
      rng_(rng),
      from_(start),
      to_(start) {
  if (area.width <= 0.0 || area.height <= 0.0) {
    throw std::invalid_argument{"RandomWaypoint: area must be positive"};
  }
  if (speedMin <= 0.0 || speedMax < speedMin) {
    throw std::invalid_argument{
        "RandomWaypoint: need 0 < speedMin <= speedMax"};
  }
  if (pause < 0.0) {
    throw std::invalid_argument{"RandomWaypoint: negative pause"};
  }
  pickNextLeg();
}

void RandomWaypoint::pickNextLeg() {
  from_ = to_;
  legStart_ = pauseEnd_;
  to_ = randomPosition(area_, rng_);
  const double speed = rng_.uniform(speedMin_, speedMax_);
  const double d = geom::dist(from_, to_);
  arrive_ = legStart_ + d / speed;
  pauseEnd_ = arrive_ + pause_;
}

void RandomWaypoint::advanceTo(sim::SimTime t) {
  while (t >= pauseEnd_) pickNextLeg();
}

geom::Point2 RandomWaypoint::positionAt(sim::SimTime t) {
  if (t < lastQuery_) {
    throw std::invalid_argument{
        "RandomWaypoint::positionAt: time moved backwards"};
  }
  lastQuery_ = t;
  advanceTo(t);
  if (t <= legStart_) return from_;
  if (t >= arrive_) return to_;  // pausing at destination
  const double f = (t - legStart_) / (arrive_ - legStart_);
  return from_ + (to_ - from_) * f;
}

RandomWalk::RandomWalk(Area area, double speedMin, double speedMax,
                       double legDuration, geom::Point2 start, sim::Rng rng)
    : area_(area),
      speedMin_(speedMin),
      speedMax_(speedMax),
      legDuration_(legDuration),
      rng_(rng),
      pos_(start) {
  if (area.width <= 0.0 || area.height <= 0.0) {
    throw std::invalid_argument{"RandomWalk: area must be positive"};
  }
  if (speedMin <= 0.0 || speedMax < speedMin || legDuration <= 0.0) {
    throw std::invalid_argument{"RandomWalk: bad speed/duration parameters"};
  }
  pickLeg();
}

void RandomWalk::pickLeg() {
  const double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double speed = rng_.uniform(speedMin_, speedMax_);
  velocity_ = {speed * std::cos(heading), speed * std::sin(heading)};
  legEnd_ = lastTime_ + legDuration_;
}

geom::Point2 RandomWalk::positionAt(sim::SimTime t) {
  if (t < lastTime_) {
    throw std::invalid_argument{
        "RandomWalk::positionAt: time moved backwards"};
  }
  // Integrate in (possibly several) leg segments, reflecting at borders.
  while (lastTime_ < t) {
    const sim::SimTime step = std::min(t, legEnd_) - lastTime_;
    pos_ = pos_ + velocity_ * step;
    // Reflect off each border; velocities flip so headings stay coherent.
    while (pos_.x < 0.0 || pos_.x > area_.width) {
      if (pos_.x < 0.0) pos_.x = -pos_.x;
      if (pos_.x > area_.width) pos_.x = 2.0 * area_.width - pos_.x;
      velocity_.x = -velocity_.x;
    }
    while (pos_.y < 0.0 || pos_.y > area_.height) {
      if (pos_.y < 0.0) pos_.y = -pos_.y;
      if (pos_.y > area_.height) pos_.y = 2.0 * area_.height - pos_.y;
      velocity_.y = -velocity_.y;
    }
    lastTime_ += step;
    if (lastTime_ >= legEnd_) pickLeg();
  }
  return pos_;
}

}  // namespace glr::mobility
