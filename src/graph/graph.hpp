#pragma once
/// \file graph.hpp
/// Undirected graph on integer node ids with the algorithms the spanner and
/// routing analyses need: BFS hop counts, Dijkstra over Euclidean weights,
/// connected components, straight-line planarity checks and spanner stretch.

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/point.hpp"

namespace glr::graph {

/// Simple undirected graph; nodes are 0..n-1.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t numNodes) : adj_(numNodes) {}

  [[nodiscard]] std::size_t numNodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t numEdges() const { return numEdges_; }

  /// Adds the undirected edge {u, v}. Self loops and duplicates are ignored.
  void addEdge(int u, int v);

  [[nodiscard]] bool hasEdge(int u, int v) const;
  [[nodiscard]] const std::vector<int>& neighbors(int u) const;
  [[nodiscard]] std::size_t degree(int u) const { return neighbors(u).size(); }

  /// All unique undirected edges with u < v.
  [[nodiscard]] std::vector<std::pair<int, int>> edges() const;

 private:
  void checkNode(int u) const;

  std::vector<std::vector<int>> adj_;
  std::size_t numEdges_ = 0;
};

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();
inline constexpr int kUnreachable = -1;

/// Hop distance from `src` to every node (-1 when unreachable).
[[nodiscard]] std::vector<int> bfsHops(const Graph& g, int src);

/// Euclidean-weighted shortest-path distances from `src` (edge weight =
/// distance between endpoint positions). Unreachable nodes get +infinity.
[[nodiscard]] std::vector<double> dijkstra(
    const Graph& g, const std::vector<geom::Point2>& positions, int src);

/// Component label per node (labels are 0-based and dense).
[[nodiscard]] std::vector<int> connectedComponents(const Graph& g);

/// Number of connected components (counting isolated nodes).
[[nodiscard]] std::size_t componentCount(const Graph& g);

/// True if all nodes are in one component (vacuously true for n <= 1).
[[nodiscard]] bool isConnected(const Graph& g);

/// True if the straight-line embedding given by `positions` has no two edges
/// crossing properly (shared endpoints allowed). O(E^2) with exact
/// predicates — intended for tests and analysis, not hot paths.
[[nodiscard]] bool isPlanarEmbedding(const Graph& g,
                                     const std::vector<geom::Point2>& positions);

/// Measured stretch factor of `g` relative to the complete Euclidean graph:
/// max over connected pairs of (graph distance / Euclidean distance).
/// Returns 1.0 for graphs with < 2 nodes, +infinity if some UDG-connected
/// pair is disconnected in `g` (callers should ensure same connectivity).
[[nodiscard]] double stretchFactor(const Graph& g,
                                   const std::vector<geom::Point2>& positions);

/// Union-find over 0..n-1 with path halving and union by size.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n);

  int find(int x);
  /// Returns true if x and y were in different sets (i.e. a merge happened).
  bool unite(int x, int y);
  [[nodiscard]] std::size_t setCount() const { return sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  std::size_t sets_;
};

}  // namespace glr::graph
