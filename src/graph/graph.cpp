#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "geometry/predicates.hpp"

namespace glr::graph {

void Graph::checkNode(int u) const {
  if (u < 0 || static_cast<std::size_t>(u) >= adj_.size()) {
    throw std::out_of_range{"Graph: node id out of range"};
  }
}

void Graph::addEdge(int u, int v) {
  checkNode(u);
  checkNode(v);
  if (u == v || hasEdge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++numEdges_;
}

bool Graph::hasEdge(int u, int v) const {
  checkNode(u);
  checkNode(v);
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const int target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

const std::vector<int>& Graph::neighbors(int u) const {
  checkNode(u);
  return adj_[u];
}

std::vector<std::pair<int, int>> Graph::edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(numEdges_);
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    for (int v : adj_[u]) {
      if (static_cast<int>(u) < v) out.emplace_back(static_cast<int>(u), v);
    }
  }
  return out;
}

std::vector<int> bfsHops(const Graph& g, int src) {
  std::vector<int> hops(g.numNodes(), kUnreachable);
  if (g.numNodes() == 0) return hops;
  std::queue<int> q;
  hops[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v : g.neighbors(u)) {
      if (hops[v] == kUnreachable) {
        hops[v] = hops[u] + 1;
        q.push(v);
      }
    }
  }
  return hops;
}

std::vector<double> dijkstra(const Graph& g,
                             const std::vector<geom::Point2>& positions,
                             int src) {
  if (positions.size() != g.numNodes()) {
    throw std::invalid_argument{"dijkstra: positions/nodes size mismatch"};
  }
  std::vector<double> distTo(g.numNodes(), kInfDist);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  distTo[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > distTo[u]) continue;
    for (int v : g.neighbors(u)) {
      const double nd = d + geom::dist(positions[u], positions[v]);
      if (nd < distTo[v]) {
        distTo[v] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return distTo;
}

std::vector<int> connectedComponents(const Graph& g) {
  std::vector<int> label(g.numNodes(), -1);
  int next = 0;
  for (std::size_t s = 0; s < g.numNodes(); ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    std::queue<int> q;
    q.push(static_cast<int>(s));
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : g.neighbors(u)) {
        if (label[v] == -1) {
          label[v] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t componentCount(const Graph& g) {
  const auto labels = connectedComponents(g);
  int maxLabel = -1;
  for (int l : labels) maxLabel = std::max(maxLabel, l);
  return static_cast<std::size_t>(maxLabel + 1);
}

bool isConnected(const Graph& g) {
  return g.numNodes() <= 1 || componentCount(g) == 1;
}

bool isPlanarEmbedding(const Graph& g,
                       const std::vector<geom::Point2>& positions) {
  if (positions.size() != g.numNodes()) {
    throw std::invalid_argument{
        "isPlanarEmbedding: positions/nodes size mismatch"};
  }
  const auto es = g.edges();
  for (std::size_t i = 0; i < es.size(); ++i) {
    for (std::size_t j = i + 1; j < es.size(); ++j) {
      const auto [a, b] = es[i];
      const auto [c, d] = es[j];
      if (geom::segmentsCrossProperly(positions[a], positions[b], positions[c],
                                      positions[d])) {
        return false;
      }
    }
  }
  return true;
}

double stretchFactor(const Graph& g,
                     const std::vector<geom::Point2>& positions) {
  const std::size_t n = g.numNodes();
  if (n < 2) return 1.0;
  double worst = 1.0;
  for (std::size_t s = 0; s < n; ++s) {
    const auto d = dijkstra(g, positions, static_cast<int>(s));
    for (std::size_t t = s + 1; t < n; ++t) {
      const double euclid = geom::dist(positions[s], positions[t]);
      if (euclid == 0.0) continue;
      worst = std::max(worst, d[t] / euclid);
    }
  }
  return worst;
}

DisjointSet::DisjointSet(std::size_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
}

int DisjointSet::find(int x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DisjointSet::unite(int x, int y) {
  int rx = find(x);
  int ry = find(y);
  if (rx == ry) return false;
  if (size_[rx] < size_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  --sets_;
  return true;
}

}  // namespace glr::graph
