#pragma once
/// \file ldtg.hpp
/// k-Local Delaunay Triangulation Graph (LDTG) — the paper's planar spanner.
///
/// Two constructions are provided:
///
///  * `LdtgRule::PaperWitness` — the paper's rule: a UDG link uv is accepted
///    iff uv is an edge of the Delaunay triangulation of N_k(u) (and of
///    N_k(v)), and every 1-hop witness w of u (and of v) that has both u and
///    v in its k-hop neighborhood also sees uv in the Delaunay triangulation
///    of N_k(w). This yields a planar graph directly, avoiding the separate
///    planarization step of Li et al.
///
///  * `LdtgRule::LDel` — Li/Calinescu/Wan LDel(k): uv accepted iff uv is in
///    the Delaunay triangulations of both N_k(u) and N_k(v) (no witnesses).
///    Kept as an ablation comparator; may be non-planar for k = 1.
///
/// `buildLdtg` is the *global analysis* builder (it uses true k-hop sets).
/// `localSpannerNeighbors` is the *distributed per-node* computation used by
/// the protocol agent: it consumes exactly the knowledge a node has gathered
/// from hello beacons (its <= k-hop neighbor positions) and returns the
/// node's spanner neighbors.

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "graph/graph.hpp"

namespace glr::spanner {

enum class LdtgRule {
  PaperWitness,
  LDel,
};

/// Global LDTG over all positions (analysis/testing use).
[[nodiscard]] graph::Graph buildLdtg(
    const std::vector<geom::Point2>& positions, double radius, int k = 2,
    LdtgRule rule = LdtgRule::PaperWitness);

/// A node's local knowledge of one other node, as gathered from beacons.
struct KnownNode {
  int id = -1;
  geom::Point2 pos;
  /// True if this node is a direct (1-hop) neighbor of the computing node.
  bool oneHop = false;
};

/// Distributed per-node LDTG edge selection.
///
/// `selfId`/`selfPos` describe the computing node; `known` is its gathered
/// k-hop knowledge (positions may be slightly stale, exactly as in the
/// protocol). Returns ids of accepted spanner neighbors, sorted. With
/// `applyWitnessRule`, 1-hop witnesses veto edges that their locally visible
/// neighborhoods triangulate differently (paper rule); without, the node
/// keeps every local-Delaunay edge incident to itself (LDel-style).
///
/// Route checks repeat while neighborhoods sit still, so results are memoised
/// in a thread-local cache keyed by computing node and guarded by an *exact*
/// (bit-level) comparison of every input — a hit returns the previous answer
/// only when the function would recompute it verbatim, so caching is
/// bit-identical by construction. Within one computation, each witness's
/// visible-set triangulation is built once and shared across all candidate
/// edges it vets (neighborhood-signature reuse) instead of once per
/// candidate x witness pair.
[[nodiscard]] std::vector<int> localSpannerNeighbors(
    int selfId, geom::Point2 selfPos, const std::vector<KnownNode>& known,
    double radius, bool applyWitnessRule = true);

/// Counters for the localSpannerNeighbors memo cache (thread-local).
struct SpannerCacheStats {
  std::uint64_t hits = 0;    // answered from the memo, no geometry run
  std::uint64_t misses = 0;  // recomputed (input changed or first check)
};
[[nodiscard]] SpannerCacheStats localSpannerCacheStats();

/// Drops every memoised entry and zeroes the counters (call between
/// scenarios/benchmark phases so retained entries never outlive a run).
void resetLocalSpannerCache();

}  // namespace glr::spanner
