#include "spanner/ldtg.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "geometry/delaunay.hpp"
#include "spanner/udg.hpp"

namespace glr::spanner {

namespace {

/// Canonical 64-bit key for an undirected edge between global node ids.
[[nodiscard]] std::uint64_t edgeKey(int u, int v) {
  const auto lo = static_cast<std::uint32_t>(std::min(u, v));
  const auto hi = static_cast<std::uint32_t>(std::max(u, v));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Delaunay edge set of a subset of global nodes, keyed by global ids.
[[nodiscard]] std::unordered_set<std::uint64_t> localDelaunayEdges(
    const std::vector<geom::Point2>& positions,
    const std::vector<int>& members) {
  std::unordered_set<std::uint64_t> out;
  std::vector<geom::Point2> pts;
  pts.reserve(members.size());
  for (int id : members) pts.push_back(positions[id]);
  const auto dt = geom::Delaunay::build(pts);
  for (const auto& [a, b] : dt.edges()) {
    out.insert(edgeKey(members[a], members[b]));
  }
  // Map duplicate-position members onto their canonical representative's
  // edges so membership tests by global id still succeed.
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int canon = dt.canonicalIndex(static_cast<int>(i));
    if (canon != static_cast<int>(i)) {
      out.insert(edgeKey(members[i], members[canon]));
    }
  }
  return out;
}

}  // namespace

graph::Graph buildLdtg(const std::vector<geom::Point2>& positions,
                       double radius, int k, LdtgRule rule) {
  const std::size_t n = positions.size();
  const graph::Graph udg = buildUnitDiskGraph(positions, radius);

  // Per-node k-hop member lists and local Delaunay edge sets.
  std::vector<std::vector<int>> kHood(n);
  std::vector<std::unordered_set<std::uint64_t>> dtEdges(n);
  std::vector<std::unordered_set<int>> kHoodSet(n);
  for (std::size_t u = 0; u < n; ++u) {
    auto members = kHopNeighbors(udg, static_cast<int>(u), k);
    members.push_back(static_cast<int>(u));
    std::sort(members.begin(), members.end());
    kHood[u] = members;
    kHoodSet[u].insert(members.begin(), members.end());
    dtEdges[u] = localDelaunayEdges(positions, members);
  }

  graph::Graph out{n};
  for (const auto& [u, v] : udg.edges()) {
    const std::uint64_t key = edgeKey(u, v);
    if (!dtEdges[u].contains(key) || !dtEdges[v].contains(key)) continue;
    if (rule == LdtgRule::PaperWitness) {
      bool vetoed = false;
      // Witnesses are the 1-hop neighbors of either endpoint that can see
      // both endpoints in their own k-hop neighborhood.
      for (int endpoint : {u, v}) {
        for (int w : udg.neighbors(endpoint)) {
          if (w == u || w == v) continue;
          if (!kHoodSet[w].contains(u) || !kHoodSet[w].contains(v)) continue;
          if (!dtEdges[w].contains(key)) {
            vetoed = true;
            break;
          }
        }
        if (vetoed) break;
      }
      if (vetoed) continue;
    }
    out.addEdge(u, v);
  }
  return out;
}

namespace {

/// Reused workspace for localSpannerNeighbors: the GLR route check runs it
/// on every check interval for every node, and the witness rule inside
/// triangulates one small neighborhood per witness. Persisting the point
/// buffers and the two Delaunay result objects (rebuilt in place via
/// Delaunay::buildInto) makes the steady-state spanner path allocation-free
/// apart from the returned neighbor list.
struct SpannerScratch {
  std::vector<int> ids;
  std::vector<geom::Point2> pts;
  std::vector<char> oneHop;
  std::vector<std::size_t> candidates;
  std::vector<geom::Point2> wPts;
  std::vector<std::size_t> wIds;
  geom::Delaunay dt;
  geom::Delaunay wdt;

  // Generation-stamped dedup table indexed by (dense, non-negative) node
  // id: seen(id) is O(1) and the per-call "clear" is one counter bump —
  // an unordered_map here would free and reallocate one node per neighbor
  // on every route check. Ids outside the table (negative) fall back to a
  // linear probe of `ids`, which preserves the old map's semantics for
  // arbitrary callers.
  std::vector<std::uint32_t> idStamp;
  std::uint32_t stamp = 0;

  void beginDedup() {
    if (stamp == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(idStamp.begin(), idStamp.end(), 0);
      stamp = 0;
    }
    ++stamp;
  }

  /// True the first time `id` is offered since beginDedup().
  [[nodiscard]] bool firstSeen(int id) {
    if (id < 0) {
      for (int known : ids) {
        if (known == id) return false;
      }
      return true;
    }
    const auto i = static_cast<std::size_t>(id);
    if (i >= idStamp.size()) idStamp.resize(i + 1, 0);
    if (idStamp[i] == stamp) return false;
    idStamp[i] = stamp;
    return true;
  }
};

SpannerScratch& spannerScratch() {
  static thread_local SpannerScratch s;
  return s;
}

}  // namespace

std::vector<int> localSpannerNeighbors(int selfId, geom::Point2 selfPos,
                                       const std::vector<KnownNode>& known,
                                       double radius, bool applyWitnessRule) {
  const double r2 = radius * radius;
  SpannerScratch& s = spannerScratch();

  // Assemble the local point set: self first, then known nodes (dedup ids).
  s.beginDedup();
  s.ids.assign(1, selfId);
  s.pts.assign(1, selfPos);
  (void)s.firstSeen(selfId);
  s.oneHop.assign(1, 1);
  for (const KnownNode& kn : known) {
    if (kn.id == selfId || !s.firstSeen(kn.id)) continue;
    s.ids.push_back(kn.id);
    s.pts.push_back(kn.pos);
    s.oneHop.push_back(kn.oneHop ? 1 : 0);
  }
  if (s.ids.size() < 2) return {};

  // Delaunay of the whole local view; candidates are edges incident to self
  // whose other endpoint is a direct neighbor within range.
  geom::Delaunay::buildInto(s.dt, s.pts);
  s.candidates.clear();
  for (int nb : s.dt.neighbors(s.dt.canonicalIndex(0))) {
    const auto i = static_cast<std::size_t>(nb);
    if (i == 0 || !s.oneHop[i]) continue;
    if (geom::dist2(selfPos, s.pts[i]) > r2) continue;
    s.candidates.push_back(i);
  }

  std::vector<int> accepted;
  if (!applyWitnessRule) {
    for (std::size_t i : s.candidates) accepted.push_back(s.ids[i]);
    std::sort(accepted.begin(), accepted.end());
    return accepted;
  }

  // Witness rule, evaluated on the knowledge this node actually has: every
  // 1-hop neighbor w that (locally) sees both self and the candidate must
  // also keep the edge in the Delaunay triangulation of w's visible
  // neighborhood.
  for (std::size_t vi : s.candidates) {
    const geom::Point2 vPos = s.pts[vi];
    bool vetoed = false;
    for (std::size_t wi = 1; wi < s.ids.size() && !vetoed; ++wi) {
      if (wi == vi || !s.oneHop[wi]) continue;
      const geom::Point2 wPos = s.pts[wi];
      // w's neighborhood as visible from self's knowledge.
      if (geom::dist2(wPos, selfPos) > r2 || geom::dist2(wPos, vPos) > r2) {
        continue;  // witness cannot see both endpoints
      }
      s.wPts.clear();
      s.wIds.clear();
      for (std::size_t x = 0; x < s.ids.size(); ++x) {
        if (geom::dist2(s.pts[x], wPos) <= r2) {
          s.wPts.push_back(s.pts[x]);
          s.wIds.push_back(x);
        }
      }
      geom::Delaunay::buildInto(s.wdt, s.wPts);
      int selfLocal = -1, vLocal = -1;
      for (std::size_t x = 0; x < s.wIds.size(); ++x) {
        if (s.wIds[x] == 0) selfLocal = static_cast<int>(x);
        if (s.wIds[x] == vi) vLocal = static_cast<int>(x);
      }
      if (selfLocal >= 0 && vLocal >= 0 &&
          !s.wdt.hasEdge(s.wdt.canonicalIndex(selfLocal),
                         s.wdt.canonicalIndex(vLocal))) {
        vetoed = true;
      }
    }
    if (!vetoed) accepted.push_back(s.ids[vi]);
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

}  // namespace glr::spanner
