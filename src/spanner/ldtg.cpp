#include "spanner/ldtg.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "geometry/delaunay.hpp"
#include "spanner/udg.hpp"

namespace glr::spanner {

namespace {

/// Canonical 64-bit key for an undirected edge between global node ids.
[[nodiscard]] std::uint64_t edgeKey(int u, int v) {
  const auto lo = static_cast<std::uint32_t>(std::min(u, v));
  const auto hi = static_cast<std::uint32_t>(std::max(u, v));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Delaunay edge set of a subset of global nodes, keyed by global ids.
[[nodiscard]] std::unordered_set<std::uint64_t> localDelaunayEdges(
    const std::vector<geom::Point2>& positions,
    const std::vector<int>& members) {
  std::unordered_set<std::uint64_t> out;
  std::vector<geom::Point2> pts;
  pts.reserve(members.size());
  for (int id : members) pts.push_back(positions[id]);
  const auto dt = geom::Delaunay::build(pts);
  for (const auto& [a, b] : dt.edges()) {
    out.insert(edgeKey(members[a], members[b]));
  }
  // Map duplicate-position members onto their canonical representative's
  // edges so membership tests by global id still succeed.
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int canon = dt.canonicalIndex(static_cast<int>(i));
    if (canon != static_cast<int>(i)) {
      out.insert(edgeKey(members[i], members[canon]));
    }
  }
  return out;
}

}  // namespace

graph::Graph buildLdtg(const std::vector<geom::Point2>& positions,
                       double radius, int k, LdtgRule rule) {
  const std::size_t n = positions.size();
  const graph::Graph udg = buildUnitDiskGraph(positions, radius);

  // Per-node k-hop member lists and local Delaunay edge sets.
  std::vector<std::vector<int>> kHood(n);
  std::vector<std::unordered_set<std::uint64_t>> dtEdges(n);
  std::vector<std::unordered_set<int>> kHoodSet(n);
  for (std::size_t u = 0; u < n; ++u) {
    auto members = kHopNeighbors(udg, static_cast<int>(u), k);
    members.push_back(static_cast<int>(u));
    std::sort(members.begin(), members.end());
    kHood[u] = members;
    kHoodSet[u].insert(members.begin(), members.end());
    dtEdges[u] = localDelaunayEdges(positions, members);
  }

  graph::Graph out{n};
  for (const auto& [u, v] : udg.edges()) {
    const std::uint64_t key = edgeKey(u, v);
    if (!dtEdges[u].contains(key) || !dtEdges[v].contains(key)) continue;
    if (rule == LdtgRule::PaperWitness) {
      bool vetoed = false;
      // Witnesses are the 1-hop neighbors of either endpoint that can see
      // both endpoints in their own k-hop neighborhood.
      for (int endpoint : {u, v}) {
        for (int w : udg.neighbors(endpoint)) {
          if (w == u || w == v) continue;
          if (!kHoodSet[w].contains(u) || !kHoodSet[w].contains(v)) continue;
          if (!dtEdges[w].contains(key)) {
            vetoed = true;
            break;
          }
        }
        if (vetoed) break;
      }
      if (vetoed) continue;
    }
    out.addEdge(u, v);
  }
  return out;
}

namespace {

/// Reused workspace for localSpannerNeighbors: the GLR route check runs it
/// on every check interval for every node, and the witness rule inside
/// triangulates one small neighborhood per witness. Persisting the point
/// buffers and the two Delaunay result objects (rebuilt in place via
/// Delaunay::buildInto) makes the steady-state spanner path allocation-free
/// apart from the returned neighbor list.
/// One witness's lazily built view: the subset of the local point set it can
/// see, that subset's triangulation, and the local-view -> witness-local
/// index map. Pooled so steady-state route checks reuse the storage; within
/// one check the entry is shared by every candidate edge the witness vets.
struct WitnessEntry {
  std::vector<geom::Point2> pts;
  std::vector<int> localOf;  // local-view index -> witness-local; -1 absent
  geom::Delaunay dt;
};

struct SpannerScratch {
  std::vector<int> ids;
  std::vector<geom::Point2> pts;
  std::vector<char> oneHop;
  std::vector<std::size_t> candidates;
  geom::Delaunay dt;

  // Per-call witness-triangulation cache: witnessSlot[wi] is the pool slot
  // whose entry triangulates witness wi's visible set (-1 = not built yet
  // this call). The visible set depends only on the witness, never on the
  // candidate under test, so reuse is exact.
  std::vector<std::unique_ptr<WitnessEntry>> witnessPool;
  std::vector<int> witnessSlot;
  std::size_t witnessUsed = 0;

  // Generation-stamped dedup table indexed by (dense, non-negative) node
  // id: seen(id) is O(1) and the per-call "clear" is one counter bump —
  // an unordered_map here would free and reallocate one node per neighbor
  // on every route check. Ids outside the table (negative) fall back to a
  // linear probe of `ids`, which preserves the old map's semantics for
  // arbitrary callers.
  std::vector<std::uint32_t> idStamp;
  std::uint32_t stamp = 0;

  void beginDedup() {
    if (stamp == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(idStamp.begin(), idStamp.end(), 0);
      stamp = 0;
    }
    ++stamp;
  }

  /// True the first time `id` is offered since beginDedup().
  [[nodiscard]] bool firstSeen(int id) {
    if (id < 0) {
      for (int known : ids) {
        if (known == id) return false;
      }
      return true;
    }
    const auto i = static_cast<std::size_t>(id);
    if (i >= idStamp.size()) idStamp.resize(i + 1, 0);
    if (idStamp[i] == stamp) return false;
    idStamp[i] = stamp;
    return true;
  }
};

SpannerScratch& spannerScratch() {
  static thread_local SpannerScratch s;
  return s;
}

/// Bit-level double equality: the memo below must hit only when every input
/// is *identical to the bits*, so value equality (which conflates +0/-0 and
/// rejects NaN == NaN) is not the right predicate.
[[nodiscard]] bool sameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Memoised (inputs -> result) entry for one computing node. The full input
/// is retained and compared bit-for-bit on lookup, so a hit can never alias
/// two distinct neighborhoods (no hash-collision risk).
struct SpannerMemo {
  bool valid = false;
  bool witnessRule = false;
  double radius = 0.0;
  geom::Point2 selfPos;
  std::vector<KnownNode> known;
  std::vector<int> result;
};

struct SpannerMemoCache {
  std::vector<SpannerMemo> byId;  // indexed by selfId (dense, >= 0)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

SpannerMemoCache& spannerMemoCache() {
  static thread_local SpannerMemoCache c;
  return c;
}

[[nodiscard]] bool memoMatches(const SpannerMemo& m, geom::Point2 selfPos,
                               const std::vector<KnownNode>& known,
                               double radius, bool witnessRule) {
  if (!m.valid || m.witnessRule != witnessRule ||
      !sameBits(m.radius, radius) || !sameBits(m.selfPos.x, selfPos.x) ||
      !sameBits(m.selfPos.y, selfPos.y) || m.known.size() != known.size()) {
    return false;
  }
  for (std::size_t i = 0; i < known.size(); ++i) {
    const KnownNode& a = m.known[i];
    const KnownNode& b = known[i];
    if (a.id != b.id || a.oneHop != b.oneHop || !sameBits(a.pos.x, b.pos.x) ||
        !sameBits(a.pos.y, b.pos.y)) {
      return false;
    }
  }
  return true;
}

}  // namespace

SpannerCacheStats localSpannerCacheStats() {
  const SpannerMemoCache& c = spannerMemoCache();
  return {c.hits, c.misses};
}

void resetLocalSpannerCache() {
  SpannerMemoCache& c = spannerMemoCache();
  c.byId.clear();
  c.byId.shrink_to_fit();
  c.hits = 0;
  c.misses = 0;
}

std::vector<int> localSpannerNeighbors(int selfId, geom::Point2 selfPos,
                                       const std::vector<KnownNode>& known,
                                       double radius, bool applyWitnessRule) {
  // Memo fast path: while a node's gathered knowledge sits still between
  // route checks (the common steady state), the previous answer is returned
  // without touching any geometry. The guard compares every input bit for
  // bit, so a hit is exactly the recomputation it skips.
  SpannerMemoCache& memoCache = spannerMemoCache();
  SpannerMemo* memo = nullptr;
  if (selfId >= 0) {
    const auto mi = static_cast<std::size_t>(selfId);
    if (memoCache.byId.size() <= mi) memoCache.byId.resize(mi + 1);
    memo = &memoCache.byId[mi];
    if (memoMatches(*memo, selfPos, known, radius, applyWitnessRule)) {
      ++memoCache.hits;
      return memo->result;
    }
    ++memoCache.misses;
  }
  const auto memoise = [&](const std::vector<int>& result) {
    if (memo == nullptr) return;
    memo->valid = true;
    memo->witnessRule = applyWitnessRule;
    memo->radius = radius;
    memo->selfPos = selfPos;
    memo->known = known;
    memo->result = result;
  };

  const double r2 = radius * radius;
  SpannerScratch& s = spannerScratch();

  // Assemble the local point set: self first, then known nodes (dedup ids).
  s.beginDedup();
  s.ids.assign(1, selfId);
  s.pts.assign(1, selfPos);
  (void)s.firstSeen(selfId);
  s.oneHop.assign(1, 1);
  for (const KnownNode& kn : known) {
    if (kn.id == selfId || !s.firstSeen(kn.id)) continue;
    s.ids.push_back(kn.id);
    s.pts.push_back(kn.pos);
    s.oneHop.push_back(kn.oneHop ? 1 : 0);
  }
  if (s.ids.size() < 2) {
    memoise({});
    return {};
  }

  // Delaunay of the whole local view; candidates are edges incident to self
  // whose other endpoint is a direct neighbor within range.
  geom::Delaunay::buildInto(s.dt, s.pts);
  s.candidates.clear();
  for (int nb : s.dt.neighbors(s.dt.canonicalIndex(0))) {
    const auto i = static_cast<std::size_t>(nb);
    if (i == 0 || !s.oneHop[i]) continue;
    if (geom::dist2(selfPos, s.pts[i]) > r2) continue;
    s.candidates.push_back(i);
  }

  std::vector<int> accepted;
  if (!applyWitnessRule) {
    for (std::size_t i : s.candidates) accepted.push_back(s.ids[i]);
    std::sort(accepted.begin(), accepted.end());
    memoise(accepted);
    return accepted;
  }

  // Witness rule, evaluated on the knowledge this node actually has: every
  // 1-hop neighbor w that (locally) sees both self and the candidate must
  // also keep the edge in the Delaunay triangulation of w's visible
  // neighborhood. A witness typically vets several candidate edges; its
  // visible set (and hence its triangulation) is the same for all of them,
  // so it is built lazily on first need and shared for the rest of the
  // call via witnessSlot.
  s.witnessSlot.assign(s.ids.size(), -1);
  s.witnessUsed = 0;
  const auto witnessEntry = [&](std::size_t wi) -> const WitnessEntry& {
    int slot = s.witnessSlot[wi];
    if (slot >= 0) return *s.witnessPool[static_cast<std::size_t>(slot)];
    slot = static_cast<int>(s.witnessUsed++);
    if (s.witnessPool.size() < s.witnessUsed) {
      s.witnessPool.push_back(std::make_unique<WitnessEntry>());
    }
    s.witnessSlot[wi] = slot;
    WitnessEntry& e = *s.witnessPool[static_cast<std::size_t>(slot)];
    const geom::Point2 wPos = s.pts[wi];
    e.pts.clear();
    e.localOf.assign(s.ids.size(), -1);
    for (std::size_t x = 0; x < s.ids.size(); ++x) {
      if (geom::dist2(s.pts[x], wPos) <= r2) {
        e.localOf[x] = static_cast<int>(e.pts.size());
        e.pts.push_back(s.pts[x]);
      }
    }
    geom::Delaunay::buildInto(e.dt, e.pts);
    return e;
  };

  for (std::size_t vi : s.candidates) {
    const geom::Point2 vPos = s.pts[vi];
    bool vetoed = false;
    for (std::size_t wi = 1; wi < s.ids.size() && !vetoed; ++wi) {
      if (wi == vi || !s.oneHop[wi]) continue;
      const geom::Point2 wPos = s.pts[wi];
      // w's neighborhood as visible from self's knowledge.
      if (geom::dist2(wPos, selfPos) > r2 || geom::dist2(wPos, vPos) > r2) {
        continue;  // witness cannot see both endpoints
      }
      const WitnessEntry& e = witnessEntry(wi);
      const int selfLocal = e.localOf[0];
      const int vLocal = e.localOf[vi];
      if (selfLocal >= 0 && vLocal >= 0 &&
          !e.dt.hasEdge(e.dt.canonicalIndex(selfLocal),
                        e.dt.canonicalIndex(vLocal))) {
        vetoed = true;
      }
    }
    if (!vetoed) accepted.push_back(s.ids[vi]);
  }
  std::sort(accepted.begin(), accepted.end());
  memoise(accepted);
  return accepted;
}

}  // namespace glr::spanner
