#include "spanner/udg.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace glr::spanner {

graph::Graph buildUnitDiskGraph(const std::vector<geom::Point2>& positions,
                                double radius) {
  if (radius < 0.0) {
    throw std::invalid_argument{"buildUnitDiskGraph: negative radius"};
  }
  graph::Graph g{positions.size()};
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (geom::dist2(positions[i], positions[j]) <= r2) {
        g.addEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return g;
}

std::vector<int> kHopNeighbors(const graph::Graph& g, int u, int k) {
  if (k < 0) throw std::invalid_argument{"kHopNeighbors: negative k"};
  std::vector<int> hops(g.numNodes(), -1);
  std::vector<int> out;
  std::queue<int> q;
  hops[u] = 0;
  q.push(u);
  while (!q.empty()) {
    const int x = q.front();
    q.pop();
    if (hops[x] == k) continue;
    for (int v : g.neighbors(x)) {
      if (hops[v] == -1) {
        hops[v] = hops[x] + 1;
        out.push_back(v);
        q.push(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace glr::spanner
