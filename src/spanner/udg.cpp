#include "spanner/udg.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "geometry/spatial_grid.hpp"

namespace glr::spanner {

graph::Graph buildUnitDiskGraph(const std::vector<geom::Point2>& positions,
                                double radius) {
  if (radius < 0.0) {
    throw std::invalid_argument{"buildUnitDiskGraph: negative radius"};
  }
  graph::Graph g{positions.size()};
  if (positions.size() < 2) return g;

  // Grid sweep visits only pairs in adjacent cells: O(n * k) for average
  // degree k instead of the all-pairs O(n^2) scan. Edges are inserted in
  // sorted order so adjacency lists are identical to the brute-force build
  // (downstream tie-breaking must not depend on construction order).
  geom::SpatialGrid grid{positions, radius > 0.0 ? radius : 1.0};
  std::vector<std::pair<int, int>> edges;
  grid.forEachPairWithin(radius,
                         [&edges](int i, int j) { edges.emplace_back(i, j); });
  std::sort(edges.begin(), edges.end());
  for (const auto& [i, j] : edges) g.addEdge(i, j);
  return g;
}

std::vector<int> kHopNeighbors(const graph::Graph& g, int u, int k) {
  if (k < 0) throw std::invalid_argument{"kHopNeighbors: negative k"};
  if (u < 0 || static_cast<std::size_t>(u) >= g.numNodes()) {
    throw std::invalid_argument{"kHopNeighbors: node out of range"};
  }
  std::vector<int> hops(g.numNodes(), -1);
  std::vector<int> out;
  std::queue<int> q;
  hops[u] = 0;
  if (k > 0) q.push(u);
  while (!q.empty()) {
    const int x = q.front();
    q.pop();
    for (int v : g.neighbors(x)) {
      if (hops[v] == -1) {
        hops[v] = hops[x] + 1;
        out.push_back(v);
        // Frontier nodes at depth k are reported but never expanded; keeping
        // them out of the queue avoids parking the whole depth-k ring there.
        if (hops[v] < k) q.push(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace glr::spanner
