#pragma once
/// \file udg.hpp
/// Unit-disk graphs and k-hop neighborhoods over node positions.

#include <vector>

#include "geometry/point.hpp"
#include "graph/graph.hpp"

namespace glr::spanner {

/// Unit-disk graph: nodes are adjacent iff their distance is <= radius.
[[nodiscard]] graph::Graph buildUnitDiskGraph(
    const std::vector<geom::Point2>& positions, double radius);

/// Nodes within <= k hops of `u` in `g`, excluding `u`, sorted ascending.
[[nodiscard]] std::vector<int> kHopNeighbors(const graph::Graph& g, int u,
                                             int k);

}  // namespace glr::spanner
