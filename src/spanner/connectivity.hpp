#pragma once
/// \file connectivity.hpp
/// Connectivity-probability threshold from Georgiou et al. (used by the
/// paper's Algorithm 1 to decide single- vs multi-copy routing).
///
/// For n nodes uniformly placed in the unit square, the random geometric
/// graph G(P, r_n) is connected with probability at least 1 - 1/s whenever
///   r_n >= sqrt((ln n + ln s) / (n * pi)).
/// We scale the unit-square threshold by sqrt(area) for a W x H deployment.

#include <cstddef>

namespace glr::spanner {

/// Radius above which a uniformly deployed n-node network in a W x H region
/// is connected with probability >= 1 - 1/s.
[[nodiscard]] double connectivityThresholdRadius(std::size_t n, double s,
                                                 double width, double height);

/// Algorithm 1's sparsity test: true when the communication `radius` meets
/// the Georgiou threshold, i.e. the network is likely connected and a single
/// message copy suffices.
[[nodiscard]] bool isLikelyConnected(std::size_t n, double radius,
                                     double width, double height,
                                     double s = 10.0);

}  // namespace glr::spanner
