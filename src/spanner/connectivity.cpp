#include "spanner/connectivity.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace glr::spanner {

double connectivityThresholdRadius(std::size_t n, double s, double width,
                                   double height) {
  if (n < 2) return 0.0;
  if (s <= 1.0) {
    throw std::invalid_argument{
        "connectivityThresholdRadius: s must be > 1 (probability 1 - 1/s)"};
  }
  if (width <= 0.0 || height <= 0.0) {
    throw std::invalid_argument{
        "connectivityThresholdRadius: area dimensions must be positive"};
  }
  const double nd = static_cast<double>(n);
  const double unit =
      std::sqrt((std::log(nd) + std::log(s)) / (nd * std::numbers::pi));
  return unit * std::sqrt(width * height);
}

bool isLikelyConnected(std::size_t n, double radius, double width,
                       double height, double s) {
  return radius >= connectivityThresholdRadius(n, s, width, height);
}

}  // namespace glr::spanner
