#pragma once
/// \file tiled_grid.hpp
/// Incremental tiled point index for fixed-radius neighbor queries over
/// moving points.
///
/// `SpatialGrid` is a snapshot: every rebuild copies all N positions,
/// re-sorts them into cells, and throws the structure away a moment later.
/// That is the right shape for build-once queries (topology analysis) but
/// makes the channel's receiver index O(N) per rebuild interval with an
/// allocation burst each time — the dominant scaling wall at city-size
/// populations. TiledSpatialGrid keeps the same uniform-grid geometry but
/// stores membership as intrusive doubly-linked lists over pre-sized SoA
/// arrays (cell, next, prev, recorded position, sample time), so moving one
/// point is an O(1) relink, refreshing one tile touches only that tile's
/// members, and nothing allocates after construction.
///
/// Each point carries the position it was last *recorded* at and the sim
/// time of that sample. Queries run over recorded positions; callers that
/// track moving points bound each point's drift by
/// `maxSpeed * (now - sampleTime(i))` and pad their scan windows
/// accordingly (see mac::Channel's tiled receiver index). The recorded view
/// is exactly a SpatialGrid snapshot taken at the points' individual sample
/// times — pinned bit-identical by property tests across every mobility
/// model and under churn.
///
/// Points outside the construction bounds clamp into edge tiles (the same
/// rule SpatialGrid uses for its bounding box): membership stays correct
/// because queries clamp their scan windows the same way; only edge-tile
/// occupancy grows.

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"

namespace glr::geom {

class TiledSpatialGrid {
 public:
  /// Builds an empty grid over [lo, hi] with the given tile size, pre-sized
  /// for point ids in [0, capacity). `tileSize` must be positive and
  /// finite; pass the radius you intend to query with. The effective tile
  /// size may be enlarged to bound the tile count on very sparse bounds
  /// (never affects correctness, only constants).
  TiledSpatialGrid(Point2 lo, Point2 hi, double tileSize,
                   std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return cellOf_.size(); }
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] double tileSize() const { return tile_; }
  [[nodiscard]] int numTilesX() const { return nx_; }
  [[nodiscard]] int numTilesY() const { return ny_; }
  [[nodiscard]] int numTiles() const { return nx_ * ny_; }

  [[nodiscard]] bool contains(int i) const {
    return cellOf_[static_cast<std::size_t>(i)] >= 0;
  }
  [[nodiscard]] Point2 recordedPos(int i) const {
    return pos_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double sampleTime(int i) const {
    return sampleAt_[static_cast<std::size_t>(i)];
  }
  /// Tile index a point at `p` belongs to (clamped to the grid).
  [[nodiscard]] int tileOfPoint(Point2 p) const {
    return tileAt(clampTileX(p.x), clampTileY(p.y));
  }

  /// Records point `i` at position `p` sampled at time `t`. Inserts absent
  /// points; present points are relinked only if their tile changed. O(1).
  void update(int i, Point2 p, double t);

  /// Unlinks point `i` (no-op if absent). O(1).
  void remove(int i);

  /// Calls fn(i) for every point currently linked into `tile`.
  /// Must not insert/remove/relink points during iteration.
  template <typename Fn>
  void forEachInTile(int tile, Fn&& fn) const {
    for (int i = head_[static_cast<std::size_t>(tile)]; i >= 0;
         i = next_[static_cast<std::size_t>(i)]) {
      fn(i);
    }
  }

  /// Calls fn(tile) for every tile overlapping the axis-aligned rect
  /// [x0,x1] x [y0,y1] (clamped to the grid).
  template <typename Fn>
  void forEachTileInRect(double x0, double y0, double x1, double y1,
                         Fn&& fn) const {
    const int cx0 = clampTileX(x0);
    const int cx1 = clampTileX(x1);
    const int cy0 = clampTileY(y0);
    const int cy1 = clampTileY(y1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        fn(tileAt(cx, cy));
      }
    }
  }

  /// Appends to `out` every live point with dist(recordedPos, center) <=
  /// radius (inclusive), in unspecified order — the same contract as
  /// SpatialGrid::queryRadius evaluated over the recorded snapshot.
  void queryRadius(Point2 center, double radius, std::vector<int>& out) const;

 private:
  /// Detaches `i` from its tile's list without touching cellOf_/live_.
  void unlink(int i);
  [[nodiscard]] int tileAt(int cx, int cy) const { return cy * nx_ + cx; }
  [[nodiscard]] int clampTileX(double x) const;
  [[nodiscard]] int clampTileY(double y) const;

  Point2 origin_;
  double tile_ = 1.0;
  int nx_ = 1;
  int ny_ = 1;
  std::size_t live_ = 0;

  // Intrusive per-tile doubly-linked lists over point ids (SoA, pre-sized
  // at construction; -1 = null everywhere).
  std::vector<int> head_;      // per tile: first member
  std::vector<int> cellOf_;    // per point: tile, or -1 if absent
  std::vector<int> next_;      // per point: next member of its tile
  std::vector<int> prev_;      // per point: previous member, -1 if head
  std::vector<Point2> pos_;    // per point: recorded position
  std::vector<double> sampleAt_;  // per point: sample time of pos_
};

}  // namespace glr::geom
