#include "geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "geometry/predicates.hpp"

namespace glr::geom {

namespace {

constexpr int kNone = -1;

/// Mutable triangle soup used during construction.
struct Tri {
  std::array<int, 3> v{kNone, kNone, kNone};    // CCW vertices
  std::array<int, 3> nbr{kNone, kNone, kNone};  // nbr[i] is across edge opposite v[i]
  bool alive = false;
};

struct Builder {
  std::vector<Point2> pts;  // input points + 3 super vertices
  std::vector<Tri> tris;
  int lastAlive = kNone;  // walk start hint

  [[nodiscard]] bool inTriangle(int t, Point2 p, int& exitEdge) const {
    // Returns true if p is inside or on triangle t; otherwise sets exitEdge
    // to an edge index whose opposite neighbor is closer to p.
    const Tri& tr = tris[t];
    for (int e = 0; e < 3; ++e) {
      const Point2 a = pts[tr.v[(e + 1) % 3]];
      const Point2 b = pts[tr.v[(e + 2) % 3]];
      if (orient2d(a, b, p) < 0.0) {
        exitEdge = e;
        return false;
      }
    }
    return true;
  }

  /// Visibility walk from the hint triangle; guaranteed to terminate on a
  /// Delaunay triangulation.
  [[nodiscard]] int locate(Point2 p) const {
    int t = lastAlive;
    if (t == kNone || !tris[t].alive) {
      for (std::size_t i = 0; i < tris.size(); ++i) {
        if (tris[i].alive) {
          t = static_cast<int>(i);
          break;
        }
      }
    }
    if (t == kNone) throw std::logic_error{"Delaunay::locate: no triangles"};
    for (std::size_t guard = 0; guard <= 4 * tris.size() + 16; ++guard) {
      int exitEdge = kNone;
      if (inTriangle(t, p, exitEdge)) return t;
      const int next = tris[t].nbr[exitEdge];
      if (next == kNone) {
        throw std::logic_error{
            "Delaunay::locate: walked outside the super-triangle"};
      }
      t = next;
    }
    throw std::logic_error{"Delaunay::locate: walk did not terminate"};
  }

  [[nodiscard]] bool inCircumcircle(int t, Point2 p) const {
    const Tri& tr = tris[t];
    return incircle(pts[tr.v[0]], pts[tr.v[1]], pts[tr.v[2]], p) > 0.0;
  }

  int newTriangle(int a, int b, int c) {
    Tri tr;
    tr.v = {a, b, c};
    tr.alive = true;
    tris.push_back(tr);
    return static_cast<int>(tris.size() - 1);
  }

  void insert(int pi) {
    const Point2 p = pts[pi];
    const int seed = locate(p);

    // Grow the cavity: all triangles whose circumcircle contains p.
    std::vector<int> cavity;
    std::vector<char> inCavity(tris.size(), 0);
    std::vector<int> stack{seed};
    inCavity[seed] = 1;
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      cavity.push_back(t);
      for (int e = 0; e < 3; ++e) {
        const int n = tris[t].nbr[e];
        if (n == kNone || inCavity[n]) continue;
        if (inCircumcircle(n, p)) {
          inCavity[n] = 1;
          stack.push_back(n);
        }
      }
    }

    // Boundary edges of the cavity, each with its outside neighbor.
    struct BoundaryEdge {
      int a, b;      // directed so the cavity interior is to the left
      int outside;   // triangle index across the edge, or kNone
    };
    std::vector<BoundaryEdge> boundary;
    for (int t : cavity) {
      for (int e = 0; e < 3; ++e) {
        const int n = tris[t].nbr[e];
        if (n != kNone && inCavity[n]) continue;
        boundary.push_back(
            {tris[t].v[(e + 1) % 3], tris[t].v[(e + 2) % 3], n});
      }
    }
    for (int t : cavity) tris[t].alive = false;

    // Fan of new triangles from p to each boundary edge.
    std::map<std::pair<int, int>, std::pair<int, int>> edgeOwner;  // (a,b)->(tri,edge)
    std::vector<int> created;
    created.reserve(boundary.size());
    for (const BoundaryEdge& be : boundary) {
      const int t = newTriangle(pi, be.a, be.b);
      created.push_back(t);
      tris[t].nbr[0] = be.outside;
      if (be.outside != kNone) {
        for (int e = 0; e < 3; ++e) {
          const Tri& out = tris[be.outside];
          if (out.v[(e + 1) % 3] == be.b && out.v[(e + 2) % 3] == be.a) {
            tris[be.outside].nbr[e] = t;
            break;
          }
        }
      }
      edgeOwner[{pi, be.a}] = {t, 2};  // edge (pi, a) opposite v[2]=b
      edgeOwner[{be.b, pi}] = {t, 1};  // edge (b, pi) opposite v[1]=a
    }
    // Stitch fan triangles to each other across shared (pi, x) edges.
    for (const auto& [edge, owner] : edgeOwner) {
      const auto rev = edgeOwner.find({edge.second, edge.first});
      if (rev != edgeOwner.end()) {
        tris[owner.first].nbr[owner.second] = rev->second.first;
      }
    }
    lastAlive = created.empty() ? kNone : created.back();
  }
};

}  // namespace

Delaunay Delaunay::build(const std::vector<Point2>& points) {
  Delaunay result;
  result.numInput_ = points.size();
  result.duplicateOf_.resize(points.size());
  std::iota(result.duplicateOf_.begin(), result.duplicateOf_.end(), 0);
  result.adjacency_.assign(points.size(), {});

  // Merge exact duplicates onto their first occurrence.
  std::map<std::pair<double, double>, int> firstAt;
  std::vector<int> uniqueIdx;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto key = std::make_pair(points[i].x, points[i].y);
    const auto [it, inserted] = firstAt.emplace(key, static_cast<int>(i));
    if (inserted) {
      uniqueIdx.push_back(static_cast<int>(i));
    } else {
      result.duplicateOf_[i] = it->second;
    }
  }

  if (uniqueIdx.size() < 2) return result;
  if (uniqueIdx.size() == 2) {
    result.realEdges_.emplace_back(std::min(uniqueIdx[0], uniqueIdx[1]),
                                   std::max(uniqueIdx[0], uniqueIdx[1]));
    result.adjacency_[uniqueIdx[0]].push_back(uniqueIdx[1]);
    result.adjacency_[uniqueIdx[1]].push_back(uniqueIdx[0]);
    return result;
  }

  Builder b;
  b.pts = points;

  // Bounding super-triangle far enough away to act as "infinity".
  double minX = points[uniqueIdx[0]].x, maxX = minX;
  double minY = points[uniqueIdx[0]].y, maxY = minY;
  for (int i : uniqueIdx) {
    minX = std::min(minX, points[i].x);
    maxX = std::max(maxX, points[i].x);
    minY = std::min(minY, points[i].y);
    maxY = std::max(maxY, points[i].y);
  }
  const double cx = (minX + maxX) / 2.0;
  const double cy = (minY + maxY) / 2.0;
  const double extent = std::max({maxX - minX, maxY - minY, 1.0});
  const double m = 1e6 * extent;
  const int s0 = static_cast<int>(points.size());
  b.pts.push_back({cx - 2.0 * m, cy - m});
  b.pts.push_back({cx + 2.0 * m, cy - m});
  b.pts.push_back({cx, cy + 2.0 * m});
  const int seedTri = b.newTriangle(s0, s0 + 1, s0 + 2);
  b.lastAlive = seedTri;

  for (int i : uniqueIdx) b.insert(i);

  // Extract real triangles and edges (those not touching super vertices).
  std::set<std::pair<int, int>> edgeSet;
  for (const Tri& t : b.tris) {
    if (!t.alive) continue;
    const bool real =
        t.v[0] < s0 && t.v[1] < s0 && t.v[2] < s0;
    if (real) result.realTriangles_.push_back(t.v);
    for (int e = 0; e < 3; ++e) {
      const int u = t.v[(e + 1) % 3];
      const int v = t.v[(e + 2) % 3];
      if (u < s0 && v < s0) {
        edgeSet.emplace(std::min(u, v), std::max(u, v));
      }
    }
  }
  result.realEdges_.assign(edgeSet.begin(), edgeSet.end());
  for (const auto& [u, v] : result.realEdges_) {
    result.adjacency_[u].push_back(v);
    result.adjacency_[v].push_back(u);
  }
  for (auto& adj : result.adjacency_) std::sort(adj.begin(), adj.end());
  return result;
}

std::vector<int> Delaunay::neighborsOf(int v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= adjacency_.size()) {
    throw std::out_of_range{"Delaunay::neighborsOf: bad vertex"};
  }
  return adjacency_[v];
}

bool Delaunay::hasEdge(int u, int v) const {
  if (u < 0 || static_cast<std::size_t>(u) >= adjacency_.size()) return false;
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::vector<int> convexHull(const std::vector<Point2>& points) {
  std::vector<int> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    return points[a] < points[b];
  });
  idx.erase(std::unique(idx.begin(), idx.end(),
                        [&](int a, int b) { return points[a] == points[b]; }),
            idx.end());
  const std::size_t n = idx.size();
  if (n < 3) return idx;

  std::vector<int> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && orient2d(points[hull[k - 2]], points[hull[k - 1]],
                              points[idx[i]]) <= 0.0) {
      --k;
    }
    hull[k++] = idx[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper hull
    while (k >= t && orient2d(points[hull[k - 2]], points[hull[k - 1]],
                              points[idx[i]]) <= 0.0) {
      --k;
    }
    hull[k++] = idx[i];
  }
  hull.resize(k - 1);
  return hull;
}

}  // namespace glr::geom
