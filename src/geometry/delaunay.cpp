#include "geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "geometry/predicates.hpp"

namespace glr::geom {

namespace {

constexpr int kNone = -1;

/// Mutable triangle soup used during construction.
struct Tri {
  std::array<int, 3> v{kNone, kNone, kNone};    // CCW vertices
  std::array<int, 3> nbr{kNone, kNone, kNone};  // nbr[i] is across edge opposite v[i]
  bool alive = false;
};

/// Construction workspace. One instance lives per thread and is reused by
/// every build (the GLR route check triangulates hundreds of thousands of
/// small neighborhoods per run): all vectors keep their capacity across
/// builds, and the cavity membership flags are generation-stamped so they
/// need no clearing. The flat boundary/fan scratch replaces the per-insert
/// std::map edge-stitching of the original Bowyer–Watson loop — boundary
/// cycles are a handful of edges, where a linear scan beats a red-black
/// tree and allocates nothing.
struct Builder {
  std::vector<Point2> pts;  // input points + 3 super vertices
  std::vector<Tri> tris;
  int lastAlive = kNone;  // walk start hint

  // insert() scratch.
  std::vector<int> cavity;
  std::vector<int> stack;
  std::vector<std::uint32_t> cavityStamp;  // == stamp -> tri is in cavity
  std::uint32_t stamp = 0;
  struct BoundaryEdge {
    int a, b;      // directed so the cavity interior is to the left
    int outside;   // triangle index across the edge, or kNone
    int tri;       // fan triangle created over this edge
  };
  std::vector<BoundaryEdge> boundary;

  // build() scratch.
  std::vector<int> sortIdx;
  std::vector<std::pair<int, int>> edgeScratch;

  void reset(const std::vector<Point2>& points) {
    pts.assign(points.begin(), points.end());
    tris.clear();
    lastAlive = kNone;
  }

  [[nodiscard]] bool inCavity(int t) const {
    return cavityStamp[static_cast<std::size_t>(t)] == stamp;
  }

  [[nodiscard]] bool inTriangle(int t, Point2 p, int& exitEdge) const {
    // Returns true if p is inside or on triangle t; otherwise sets exitEdge
    // to an edge index whose opposite neighbor is closer to p.
    const Tri& tr = tris[t];
    for (int e = 0; e < 3; ++e) {
      const Point2 a = pts[tr.v[(e + 1) % 3]];
      const Point2 b = pts[tr.v[(e + 2) % 3]];
      if (orient2d(a, b, p) < 0.0) {
        exitEdge = e;
        return false;
      }
    }
    return true;
  }

  /// Visibility walk from the hint triangle; guaranteed to terminate on a
  /// Delaunay triangulation.
  [[nodiscard]] int locate(Point2 p) const {
    int t = lastAlive;
    if (t == kNone || !tris[t].alive) {
      for (std::size_t i = 0; i < tris.size(); ++i) {
        if (tris[i].alive) {
          t = static_cast<int>(i);
          break;
        }
      }
    }
    if (t == kNone) throw std::logic_error{"Delaunay::locate: no triangles"};
    for (std::size_t guard = 0; guard <= 4 * tris.size() + 16; ++guard) {
      int exitEdge = kNone;
      if (inTriangle(t, p, exitEdge)) return t;
      const int next = tris[t].nbr[exitEdge];
      if (next == kNone) {
        throw std::logic_error{
            "Delaunay::locate: walked outside the super-triangle"};
      }
      t = next;
    }
    throw std::logic_error{"Delaunay::locate: walk did not terminate"};
  }

  [[nodiscard]] bool inCircumcircle(int t, Point2 p) const {
    const Tri& tr = tris[t];
    return incircle(pts[tr.v[0]], pts[tr.v[1]], pts[tr.v[2]], p) > 0.0;
  }

  int newTriangle(int a, int b, int c) {
    Tri tr;
    tr.v = {a, b, c};
    tr.alive = true;
    tris.push_back(tr);
    return static_cast<int>(tris.size() - 1);
  }

  void insert(int pi) {
    const Point2 p = pts[pi];
    const int seed = locate(p);

    // Grow the cavity: all triangles whose circumcircle contains p. The
    // workspace lives for the whole thread, so the generation stamp can
    // genuinely reach 2^32 over a long sweep — wrap by rewinding to a
    // clean slate instead of colliding with stale entries.
    if (stamp == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(cavityStamp.begin(), cavityStamp.end(), 0);
      stamp = 0;
    }
    ++stamp;
    cavityStamp.resize(tris.size(), 0);
    cavity.clear();
    stack.clear();
    stack.push_back(seed);
    cavityStamp[static_cast<std::size_t>(seed)] = stamp;
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      cavity.push_back(t);
      for (int e = 0; e < 3; ++e) {
        const int n = tris[t].nbr[e];
        if (n == kNone || inCavity(n)) continue;
        if (inCircumcircle(n, p)) {
          cavityStamp[static_cast<std::size_t>(n)] = stamp;
          stack.push_back(n);
        }
      }
    }

    // Boundary edges of the cavity, each with its outside neighbor.
    boundary.clear();
    for (int t : cavity) {
      for (int e = 0; e < 3; ++e) {
        const int n = tris[t].nbr[e];
        if (n != kNone && inCavity(n)) continue;
        boundary.push_back(
            {tris[t].v[(e + 1) % 3], tris[t].v[(e + 2) % 3], n, kNone});
      }
    }
    for (int t : cavity) tris[t].alive = false;

    // Fan of new triangles from p to each boundary edge. Triangle verts are
    // {pi, a, b}: nbr[0] spans the boundary edge (a, b), nbr[1] the edge
    // (b, pi), nbr[2] the edge (pi, a).
    for (BoundaryEdge& be : boundary) {
      const int t = newTriangle(pi, be.a, be.b);
      be.tri = t;
      tris[t].nbr[0] = be.outside;
      if (be.outside != kNone) {
        for (int e = 0; e < 3; ++e) {
          const Tri& out = tris[be.outside];
          if (out.v[(e + 1) % 3] == be.b && out.v[(e + 2) % 3] == be.a) {
            tris[be.outside].nbr[e] = t;
            break;
          }
        }
      }
    }
    // Stitch fan triangles to each other across shared (pi, x) edges: the
    // neighbor across (pi, a) is the fan triangle whose boundary edge ends
    // at a (b == a), and across (b, pi) the one whose edge starts at b.
    // The boundary cycle is a handful of edges, so the linear probe is
    // cheaper than the edge map it replaces — and each directed edge has at
    // most one reverse, so the wiring is the same.
    for (const BoundaryEdge& be : boundary) {
      for (const BoundaryEdge& other : boundary) {
        if (other.b == be.a) tris[be.tri].nbr[2] = other.tri;
        if (other.a == be.b) tris[be.tri].nbr[1] = other.tri;
      }
    }
    lastAlive = boundary.empty() ? kNone : boundary.back().tri;
  }
};

/// Per-thread construction scratch (scenarios never share a thread
/// mid-build; the sweep engine runs whole scenarios per worker).
Builder& builderScratch() {
  static thread_local Builder b;
  return b;
}

}  // namespace

Delaunay Delaunay::build(const std::vector<Point2>& points) {
  Delaunay result;
  buildInto(result, points);
  return result;
}

void Delaunay::buildInto(Delaunay& result, const std::vector<Point2>& points) {
  const std::size_t n = points.size();
  result.numInput_ = n;
  result.realTriangles_.clear();
  result.realEdges_.clear();
  result.adjOff_.assign(n + 1, 0);
  result.adjFlat_.clear();
  result.duplicateOf_.resize(n);
  std::iota(result.duplicateOf_.begin(), result.duplicateOf_.end(), 0);

  Builder& b = builderScratch();

  // Merge exact duplicates onto their first occurrence: sort indices by
  // (point, index) and map every later member of an equal run onto the
  // run's lowest index — the same canonical representative the old
  // first-insert-wins map produced, without the per-point tree insert.
  b.sortIdx.resize(n);
  std::iota(b.sortIdx.begin(), b.sortIdx.end(), 0);
  std::sort(b.sortIdx.begin(), b.sortIdx.end(), [&points](int x, int y) {
    if (points[x].x != points[y].x) return points[x].x < points[y].x;
    if (points[x].y != points[y].y) return points[x].y < points[y].y;
    return x < y;
  });
  std::size_t numUnique = 0;
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i + 1;
    while (j < n && points[b.sortIdx[j]] == points[b.sortIdx[i]]) ++j;
    const int canon = b.sortIdx[i];  // lowest index in the equal run
    for (std::size_t k = i + 1; k < j; ++k) {
      result.duplicateOf_[b.sortIdx[k]] = canon;
    }
    ++numUnique;
    i = j;
  }

  if (numUnique < 2) return;
  if (numUnique == 2) {
    int first = -1, second = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (result.duplicateOf_[i] != static_cast<int>(i)) continue;
      (first < 0 ? first : second) = static_cast<int>(i);
    }
    result.realEdges_.emplace_back(first, second);
    result.adjOff_[static_cast<std::size_t>(first) + 1] = 1;
    result.adjOff_[static_cast<std::size_t>(second) + 1] = 1;
    for (std::size_t v = 0; v < n; ++v) result.adjOff_[v + 1] += result.adjOff_[v];
    result.adjFlat_.assign(2, 0);
    result.adjFlat_[result.adjOff_[static_cast<std::size_t>(first)]] = second;
    result.adjFlat_[result.adjOff_[static_cast<std::size_t>(second)]] = first;
    return;
  }

  b.reset(points);

  // Bounding super-triangle far enough away to act as "infinity".
  bool haveBounds = false;
  double minX = 0, maxX = 0, minY = 0, maxY = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.duplicateOf_[i] != static_cast<int>(i)) continue;
    if (!haveBounds) {
      minX = maxX = points[i].x;
      minY = maxY = points[i].y;
      haveBounds = true;
      continue;
    }
    minX = std::min(minX, points[i].x);
    maxX = std::max(maxX, points[i].x);
    minY = std::min(minY, points[i].y);
    maxY = std::max(maxY, points[i].y);
  }
  const double cx = (minX + maxX) / 2.0;
  const double cy = (minY + maxY) / 2.0;
  const double extent = std::max({maxX - minX, maxY - minY, 1.0});
  const double m = 1e6 * extent;
  const int s0 = static_cast<int>(n);
  b.pts.push_back({cx - 2.0 * m, cy - m});
  b.pts.push_back({cx + 2.0 * m, cy - m});
  b.pts.push_back({cx, cy + 2.0 * m});
  b.lastAlive = b.newTriangle(s0, s0 + 1, s0 + 2);

  // Insert unique points in original input order (the order affects which
  // of several valid triangulations degenerate cocircular sets settle on,
  // so it must stay what it always was).
  for (std::size_t i = 0; i < n; ++i) {
    if (result.duplicateOf_[i] == static_cast<int>(i)) {
      b.insert(static_cast<int>(i));
    }
  }

  // Extract real triangles and edges (those not touching super vertices).
  b.edgeScratch.clear();
  for (const Tri& t : b.tris) {
    if (!t.alive) continue;
    if (t.v[0] < s0 && t.v[1] < s0 && t.v[2] < s0) {
      result.realTriangles_.push_back(t.v);
    }
    for (int e = 0; e < 3; ++e) {
      const int u = t.v[(e + 1) % 3];
      const int v = t.v[(e + 2) % 3];
      if (u < s0 && v < s0) {
        b.edgeScratch.emplace_back(std::min(u, v), std::max(u, v));
      }
    }
  }
  std::sort(b.edgeScratch.begin(), b.edgeScratch.end());
  b.edgeScratch.erase(
      std::unique(b.edgeScratch.begin(), b.edgeScratch.end()),
      b.edgeScratch.end());
  result.realEdges_.assign(b.edgeScratch.begin(), b.edgeScratch.end());

  // CSR adjacency. Appending both directions in lexicographic edge order
  // fills every vertex's slice in ascending order ((a, v) edges with a < v
  // sort before every (v, b) edge), so no per-slice sort is needed.
  for (const auto& [u, v] : result.realEdges_) {
    ++result.adjOff_[static_cast<std::size_t>(u) + 1];
    ++result.adjOff_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    result.adjOff_[v + 1] += result.adjOff_[v];
  }
  result.adjFlat_.resize(result.adjOff_[n]);
  {
    // Reuse sortIdx as the per-vertex fill cursor.
    b.sortIdx.assign(n, 0);
    for (const auto& [u, v] : result.realEdges_) {
      const auto su = static_cast<std::size_t>(u);
      const auto sv = static_cast<std::size_t>(v);
      result.adjFlat_[result.adjOff_[su] +
                      static_cast<std::uint32_t>(b.sortIdx[su]++)] = v;
      result.adjFlat_[result.adjOff_[sv] +
                      static_cast<std::uint32_t>(b.sortIdx[sv]++)] = u;
    }
  }
}

std::vector<int> Delaunay::neighborsOf(int v) const {
  const auto span = neighbors(v);
  return {span.begin(), span.end()};
}

std::span<const int> Delaunay::neighbors(int v) const {
  if (v < 0 || static_cast<std::size_t>(v) + 1 >= adjOff_.size()) {
    throw std::out_of_range{"Delaunay::neighbors: bad vertex"};
  }
  const auto i = static_cast<std::size_t>(v);
  return {adjFlat_.data() + adjOff_[i], adjFlat_.data() + adjOff_[i + 1]};
}

bool Delaunay::hasEdge(int u, int v) const {
  if (u < 0 || static_cast<std::size_t>(u) + 1 >= adjOff_.size()) return false;
  const auto span = neighbors(u);
  return std::binary_search(span.begin(), span.end(), v);
}

std::vector<int> convexHull(const std::vector<Point2>& points) {
  std::vector<int> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    return points[a] < points[b];
  });
  idx.erase(std::unique(idx.begin(), idx.end(),
                        [&](int a, int b) { return points[a] == points[b]; }),
            idx.end());
  const std::size_t n = idx.size();
  if (n < 3) return idx;

  std::vector<int> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && orient2d(points[hull[k - 2]], points[hull[k - 1]],
                              points[idx[i]]) <= 0.0) {
      --k;
    }
    hull[k++] = idx[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper hull
    while (k >= t && orient2d(points[hull[k - 2]], points[hull[k - 1]],
                              points[idx[i]]) <= 0.0) {
      --k;
    }
    hull[k++] = idx[i];
  }
  hull.resize(k - 1);
  return hull;
}

}  // namespace glr::geom
