#include "geometry/expansion.hpp"

namespace glr::geom::detail {

Expansion exactProduct(double a, double b) {
  double hi, lo;
  twoProduct(a, b, hi, lo);
  Expansion e;
  if (lo != 0.0) e.push_back(lo);
  if (hi != 0.0) e.push_back(hi);
  return e;
}

Expansion exactDiff(double a, double b) {
  double hi, lo;
  twoDiff(a, b, hi, lo);
  Expansion e;
  if (lo != 0.0) e.push_back(lo);
  if (hi != 0.0) e.push_back(hi);
  return e;
}

Expansion growExpansion(const Expansion& e, double b) {
  Expansion h;
  h.reserve(e.size() + 1);
  double q = b;
  for (double comp : e) {
    double hi, lo;
    twoSum(q, comp, hi, lo);
    q = hi;
    if (lo != 0.0) h.push_back(lo);
  }
  if (q != 0.0 || h.empty()) h.push_back(q);
  return h;
}

Expansion expansionSum(const Expansion& e, const Expansion& f) {
  if (e.empty()) return f;
  if (f.empty()) return e;
  Expansion h = e;
  for (double comp : f) h = growExpansion(h, comp);
  return h;
}

Expansion scaleExpansion(const Expansion& e, double b) {
  Expansion h;
  if (e.empty() || b == 0.0) return h;
  h.reserve(2 * e.size());
  double q, smallq;
  twoProduct(e[0], b, q, smallq);
  if (smallq != 0.0) h.push_back(smallq);
  for (std::size_t i = 1; i < e.size(); ++i) {
    double thi, tlo;
    twoProduct(e[i], b, thi, tlo);
    double sum1, err1;
    twoSum(q, tlo, sum1, err1);
    if (err1 != 0.0) h.push_back(err1);
    double sum2, err2;
    twoSum(thi, sum1, sum2, err2);
    q = sum2;
    if (err2 != 0.0) h.push_back(err2);
  }
  if (q != 0.0 || h.empty()) h.push_back(q);
  return h;
}

Expansion expansionProduct(const Expansion& e, const Expansion& f) {
  Expansion result;
  for (double comp : f) {
    result = expansionSum(result, scaleExpansion(e, comp));
  }
  return result;
}

Expansion negate(Expansion e) {
  for (double& comp : e) comp = -comp;
  return e;
}

int expansionSign(const Expansion& e) {
  // Components are stored smallest-magnitude first and non-overlapping, so
  // the last non-zero component dominates the sign.
  for (auto it = e.rbegin(); it != e.rend(); ++it) {
    if (*it > 0.0) return 1;
    if (*it < 0.0) return -1;
  }
  return 0;
}

double expansionEstimate(const Expansion& e) {
  double sum = 0.0;
  for (double comp : e) sum += comp;
  return sum;
}

}  // namespace glr::geom::detail
