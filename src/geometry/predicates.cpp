#include "geometry/predicates.hpp"

#include <cmath>
#include <ostream>

#include "geometry/expansion.hpp"

namespace glr::geom {

std::ostream& operator<<(std::ostream& os, Point2 p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

namespace {

using detail::exactDiff;
using detail::exactProduct;
using detail::Expansion;
using detail::expansionDiff;
using detail::expansionProduct;
using detail::expansionSign;
using detail::expansionSum;

// Machine epsilon for the error bounds: 2^-53 (Shewchuk's convention).
constexpr double kEps = 1.1102230246251565e-16;
constexpr double kCcwErrBound = (3.0 + 16.0 * kEps) * kEps;
constexpr double kIccErrBound = (10.0 + 96.0 * kEps) * kEps;

/// Exact sign of | ax ay 1 ; bx by 1 ; cx cy 1 | via six exact products.
int orient2dExactSign(Point2 a, Point2 b, Point2 c) {
  Expansion det = exactProduct(a.x, b.y);
  det = expansionSum(det, exactProduct(-a.x, c.y));
  det = expansionSum(det, exactProduct(-a.y, b.x));
  det = expansionSum(det, exactProduct(a.y, c.x));
  det = expansionSum(det, exactProduct(b.x, c.y));
  det = expansionSum(det, exactProduct(-b.y, c.x));
  return expansionSign(det);
}

/// Exact incircle sign using exact difference expansions. All arithmetic
/// below is on expansions, so the final sign is exact.
int incircleExactSign(Point2 a, Point2 b, Point2 c, Point2 d) {
  const Expansion adx = exactDiff(a.x, d.x);
  const Expansion ady = exactDiff(a.y, d.y);
  const Expansion bdx = exactDiff(b.x, d.x);
  const Expansion bdy = exactDiff(b.y, d.y);
  const Expansion cdx = exactDiff(c.x, d.x);
  const Expansion cdy = exactDiff(c.y, d.y);

  const Expansion bdxcdy = expansionProduct(bdx, cdy);
  const Expansion cdxbdy = expansionProduct(cdx, bdy);
  const Expansion cdxady = expansionProduct(cdx, ady);
  const Expansion adxcdy = expansionProduct(adx, cdy);
  const Expansion adxbdy = expansionProduct(adx, bdy);
  const Expansion bdxady = expansionProduct(bdx, ady);

  const Expansion alift = expansionSum(expansionProduct(adx, adx),
                                       expansionProduct(ady, ady));
  const Expansion blift = expansionSum(expansionProduct(bdx, bdx),
                                       expansionProduct(bdy, bdy));
  const Expansion clift = expansionSum(expansionProduct(cdx, cdx),
                                       expansionProduct(cdy, cdy));

  Expansion det =
      expansionProduct(alift, expansionDiff(bdxcdy, cdxbdy));
  det = expansionSum(det,
                     expansionProduct(blift, expansionDiff(cdxady, adxcdy)));
  det = expansionSum(det,
                     expansionProduct(clift, expansionDiff(adxbdy, bdxady)));
  return expansionSign(det);
}

}  // namespace

double orient2d(Point2 a, Point2 b, Point2 c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }
  const double errbound = kCcwErrBound * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return static_cast<double>(orient2dExactSign(a, b, c));
}

double incircle(Point2 a, Point2 b, Point2 c, Point2 d) {
  const double adx = a.x - d.x;
  const double ady = a.y - d.y;
  const double bdx = b.x - d.x;
  const double bdy = b.y - d.y;
  const double cdx = c.x - d.x;
  const double cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;
  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;
  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
                           (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
                           (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = kIccErrBound * permanent;
  if (det > errbound || -det > errbound) return det;
  return static_cast<double>(incircleExactSign(a, b, c, d));
}

bool onSegment(Point2 a, Point2 b, Point2 p) {
  if (orient2d(a, b, p) != 0.0) return false;
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

bool segmentsIntersect(Point2 a, Point2 b, Point2 c, Point2 d) {
  const double d1 = orient2d(c, d, a);
  const double d2 = orient2d(c, d, b);
  const double d3 = orient2d(a, b, c);
  const double d4 = orient2d(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && onSegment(c, d, a)) return true;
  if (d2 == 0 && onSegment(c, d, b)) return true;
  if (d3 == 0 && onSegment(a, b, c)) return true;
  if (d4 == 0 && onSegment(a, b, d)) return true;
  return false;
}

bool segmentsCrossProperly(Point2 a, Point2 b, Point2 c, Point2 d) {
  // Shared endpoints never count as a proper crossing.
  if (a == c || a == d || b == c || b == d) return false;
  const double d1 = orient2d(c, d, a);
  const double d2 = orient2d(c, d, b);
  const double d3 = orient2d(a, b, c);
  const double d4 = orient2d(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  // Collinear overlap or an endpoint interior to the other segment also
  // violates planarity of a straight-line embedding.
  if (d1 == 0 && onSegment(c, d, a)) return true;
  if (d2 == 0 && onSegment(c, d, b)) return true;
  if (d3 == 0 && onSegment(a, b, c)) return true;
  if (d4 == 0 && onSegment(a, b, d)) return true;
  return false;
}

}  // namespace glr::geom
