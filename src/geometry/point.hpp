#pragma once
/// \file point.hpp
/// 2-D point/vector primitives used throughout the library.

#include <cmath>
#include <compare>
#include <iosfwd>

namespace glr::geom {

/// Cartesian point (also used as a vector) in metres.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point2 operator+(Point2 a, Point2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point2 operator-(Point2 a, Point2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point2 operator*(Point2 a, double s) {
    return {a.x * s, a.y * s};
  }
  friend constexpr Point2 operator*(double s, Point2 a) { return a * s; }
  friend constexpr Point2 operator/(Point2 a, double s) {
    return {a.x / s, a.y / s};
  }
  friend constexpr bool operator==(Point2 a, Point2 b) {
    return a.x == b.x && a.y == b.y;
  }
  /// Lexicographic order (x then y); used for canonical sorts.
  friend constexpr auto operator<=>(Point2 a, Point2 b) {
    if (auto c = a.x <=> b.x; c != 0) return c;
    return a.y <=> b.y;
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(Point2 a, Point2 b) {
  return a.x * b.x + a.y * b.y;
}

/// Z-component of the 3-D cross product (signed parallelogram area).
[[nodiscard]] constexpr double cross(Point2 a, Point2 b) {
  return a.x * b.y - a.y * b.x;
}

/// Squared Euclidean distance (cheap; prefer in comparisons).
[[nodiscard]] constexpr double dist2(Point2 a, Point2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
[[nodiscard]] inline double dist(Point2 a, Point2 b) {
  return std::sqrt(dist2(a, b));
}

/// Vector length.
[[nodiscard]] inline double norm(Point2 a) {
  return std::sqrt(a.x * a.x + a.y * a.y);
}

/// Unit vector in the direction of `a`; returns {0,0} for the zero vector.
[[nodiscard]] inline Point2 normalized(Point2 a) {
  const double n = norm(a);
  if (n == 0.0) return {0.0, 0.0};
  return a / n;
}

/// Angle of the vector `b - a` in (-pi, pi].
[[nodiscard]] inline double angleOf(Point2 a, Point2 b) {
  return std::atan2(b.y - a.y, b.x - a.x);
}

std::ostream& operator<<(std::ostream& os, Point2 p);

}  // namespace glr::geom
