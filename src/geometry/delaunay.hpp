#pragma once
/// \file delaunay.hpp
/// Delaunay triangulation via incremental Bowyer–Watson insertion.
///
/// Built on the exact predicates in predicates.hpp, so degenerate inputs
/// (collinear subsets, cocircular quadruples, duplicate points) are handled
/// deterministically. Duplicates are merged onto their first occurrence.
///
/// The triangulation is the basis for the localized Delaunay spanner (LDTG)
/// of the paper: each node triangulates its k-hop neighborhood and keeps the
/// edges that all local witnesses agree on.

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/point.hpp"

namespace glr::geom {

/// Immutable Delaunay triangulation of a point set.
class Delaunay {
 public:
  /// Triangulates `points`. Indices in the result refer to positions in the
  /// input vector. Handles n == 0, 1, 2 and fully collinear inputs (in which
  /// case there are no triangles; `edges()` still reports the collinear path
  /// induced by the triangulation with the bounding super-triangle).
  static Delaunay build(const std::vector<Point2>& points);

  /// build() into an existing object, reusing its storage. The GLR route
  /// check triangulates ~10 small neighborhoods per invocation and discards
  /// each result immediately; rebuilding into one scratch object (plus the
  /// thread-local builder scratch inside) makes the steady-state spanner
  /// path allocation-free. Produces exactly what build() produces.
  static void buildInto(Delaunay& out, const std::vector<Point2>& points);

  /// CCW-oriented triangles on input points only (super vertices removed).
  [[nodiscard]] const std::vector<std::array<int, 3>>& triangles() const {
    return realTriangles_;
  }

  /// Unique undirected edges (u < v) between input points.
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const {
    return realEdges_;
  }

  /// Adjacent input vertices of `v` in the triangulation.
  [[nodiscard]] std::vector<int> neighborsOf(int v) const;

  /// Allocation-free view of neighborsOf (ascending vertex ids).
  [[nodiscard]] std::span<const int> neighbors(int v) const;

  /// True if `u` and `v` share a triangulation edge.
  [[nodiscard]] bool hasEdge(int u, int v) const;

  /// Number of input points (including duplicates).
  [[nodiscard]] std::size_t pointCount() const { return numInput_; }

  /// If `i` duplicated an earlier point, the index it was merged into;
  /// otherwise `i` itself.
  [[nodiscard]] int canonicalIndex(int i) const { return duplicateOf_[i]; }

 private:
  std::size_t numInput_ = 0;
  std::vector<std::array<int, 3>> realTriangles_;
  std::vector<std::pair<int, int>> realEdges_;
  // Adjacency in CSR form: neighbors of v are adjFlat_[adjOff_[v] ..
  // adjOff_[v+1]), sorted ascending. Flat arrays so buildInto can reuse
  // capacity across rebuilds (a vector-of-vectors would reallocate each
  // inner list every time).
  std::vector<std::uint32_t> adjOff_;
  std::vector<int> adjFlat_;
  std::vector<int> duplicateOf_;
};

/// Convex hull (Andrew monotone chain) of `points`; returns indices of hull
/// vertices in CCW order, collinear boundary points excluded. Degenerate
/// inputs yield fewer than 3 indices.
[[nodiscard]] std::vector<int> convexHull(const std::vector<Point2>& points);

}  // namespace glr::geom
