#pragma once
/// \file predicates.hpp
/// Robust geometric predicates.
///
/// `orient2d` and `incircle` are evaluated with a fast floating-point filter
/// (Shewchuk-style error bounds). When the filter cannot certify the sign,
/// the predicate is re-evaluated *exactly* using multi-term floating-point
/// expansions, so results are correct even for degenerate (collinear /
/// cocircular) inputs. Delaunay construction depends on this for
/// termination and planarity guarantees.

#include "geometry/point.hpp"

namespace glr::geom {

/// Sign of the area of triangle (a,b,c):
///   > 0 if counter-clockwise, < 0 if clockwise, == 0 if collinear.
/// Exact: never returns a wrong sign.
[[nodiscard]] double orient2d(Point2 a, Point2 b, Point2 c);

/// Sign of the incircle determinant for (a,b,c,d) where (a,b,c) is
/// counter-clockwise: > 0 if d lies strictly inside the circumcircle of
/// (a,b,c), < 0 if strictly outside, == 0 if cocircular. If (a,b,c) is
/// clockwise the sign is flipped (standard determinant semantics). Exact.
[[nodiscard]] double incircle(Point2 a, Point2 b, Point2 c, Point2 d);

/// Convenience: true if c is strictly left of the directed line a->b.
[[nodiscard]] inline bool leftOf(Point2 a, Point2 b, Point2 c) {
  return orient2d(a, b, c) > 0.0;
}

/// Convenience: true if a, b, c are collinear (exact test).
[[nodiscard]] inline bool collinear(Point2 a, Point2 b, Point2 c) {
  return orient2d(a, b, c) == 0.0;
}

/// True if the *closed* segments [a,b] and [c,d] intersect.
[[nodiscard]] bool segmentsIntersect(Point2 a, Point2 b, Point2 c, Point2 d);

/// True if segments (a,b) and (c,d) have a *proper* crossing: they intersect
/// at a single point interior to both. Shared endpoints do not count. Used by
/// the planarity checker.
[[nodiscard]] bool segmentsCrossProperly(Point2 a, Point2 b, Point2 c,
                                         Point2 d);

/// True if point p lies on the closed segment [a,b] (exact).
[[nodiscard]] bool onSegment(Point2 a, Point2 b, Point2 p);

}  // namespace glr::geom
