#pragma once
/// \file expansion.hpp
/// Multi-term floating-point expansion arithmetic (Shewchuk).
///
/// An *expansion* is a sum of doubles, stored in order of increasing
/// magnitude with non-overlapping bit ranges, that represents a real number
/// exactly. Operations here (sum, scale, multiply) are exact; they are the
/// slow path behind the filtered predicates in predicates.hpp and are also
/// unit-tested directly.
///
/// This translation unit family must be compiled with floating-point
/// contraction disabled (see the geometry CMake target), otherwise the
/// two-term error computations are destroyed by fused multiply-adds.

#include <vector>

namespace glr::geom::detail {

/// Exact sum: a + b == hi + lo with hi = fl(a + b).
inline void twoSum(double a, double b, double& hi, double& lo) {
  hi = a + b;
  const double bv = hi - a;
  const double av = hi - bv;
  lo = (a - av) + (b - bv);
}

/// Exact difference: a - b == hi + lo with hi = fl(a - b).
inline void twoDiff(double a, double b, double& hi, double& lo) {
  hi = a - b;
  const double bv = a - hi;
  const double av = hi + bv;
  lo = (a - av) + (bv - b);
}

/// Splits a double into two non-overlapping halves (Dekker).
inline void split(double a, double& ahi, double& alo) {
  constexpr double kSplitter = 134217729.0;  // 2^27 + 1
  const double c = kSplitter * a;
  ahi = c - (c - a);
  alo = a - ahi;
}

/// Exact product: a * b == hi + lo with hi = fl(a * b).
inline void twoProduct(double a, double b, double& hi, double& lo) {
  hi = a * b;
  double ahi, alo, bhi, blo;
  split(a, ahi, alo);
  split(b, bhi, blo);
  const double err1 = hi - ahi * bhi;
  const double err2 = err1 - alo * bhi;
  const double err3 = err2 - ahi * blo;
  lo = alo * blo - err3;
}

/// Exact arbitrary-precision value as a component vector (increasing
/// magnitude, non-overlapping, zero components elided).
using Expansion = std::vector<double>;

/// Expansion representing the exact product a * b.
[[nodiscard]] Expansion exactProduct(double a, double b);

/// Expansion representing the exact difference a - b.
[[nodiscard]] Expansion exactDiff(double a, double b);

/// e + b (scalar) — Shewchuk GROW-EXPANSION with zero elimination.
[[nodiscard]] Expansion growExpansion(const Expansion& e, double b);

/// e + f — Shewchuk EXPANSION-SUM (adds f's components in order).
[[nodiscard]] Expansion expansionSum(const Expansion& e, const Expansion& f);

/// e * b (scalar) — Shewchuk SCALE-EXPANSION with zero elimination.
[[nodiscard]] Expansion scaleExpansion(const Expansion& e, double b);

/// e * f — distributes scaleExpansion over f's components.
[[nodiscard]] Expansion expansionProduct(const Expansion& e,
                                         const Expansion& f);

/// -e.
[[nodiscard]] Expansion negate(Expansion e);

/// e - f.
[[nodiscard]] inline Expansion expansionDiff(const Expansion& e,
                                             const Expansion& f) {
  return expansionSum(e, negate(f));
}

/// Exact sign of the represented value: -1, 0 or +1.
[[nodiscard]] int expansionSign(const Expansion& e);

/// Approximate double value (sum of components, smallest first).
[[nodiscard]] double expansionEstimate(const Expansion& e);

}  // namespace glr::geom::detail
