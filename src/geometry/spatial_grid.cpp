#include "geometry/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glr::geom {

namespace {
/// Cap on total cells: bounds memory on very sparse point sets (huge extent,
/// small radius) by enlarging the cell size instead of allocating the full
/// fine grid. Queries stay correct; they just scan slightly larger buckets.
constexpr std::size_t kMaxCellsBase = 1024;
constexpr std::size_t kMaxCellsPerPoint = 4;
}  // namespace

SpatialGrid::SpatialGrid(std::vector<Point2> points, double cellSize)
    : points_(std::move(points)) {
  if (!(cellSize > 0.0) || !std::isfinite(cellSize)) {
    throw std::invalid_argument{"SpatialGrid: cellSize must be positive"};
  }
  cell_ = cellSize;

  Point2 lo{0.0, 0.0};
  Point2 hi{0.0, 0.0};
  if (!points_.empty()) {
    lo = hi = points_.front();
    for (const Point2& p : points_) {
      if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
        throw std::invalid_argument{"SpatialGrid: non-finite point"};
      }
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
  }
  origin_ = lo;

  const std::size_t maxCells =
      kMaxCellsBase + kMaxCellsPerPoint * points_.size();
  const double w = hi.x - lo.x;
  const double h = hi.y - lo.y;
  // Enlarge the cell until the grid fits the cap (at most a few doublings).
  while ((std::floor(w / cell_) + 1.0) * (std::floor(h / cell_) + 1.0) >
         static_cast<double>(maxCells)) {
    cell_ *= 2.0;
  }
  nx_ = static_cast<int>(std::floor(w / cell_)) + 1;
  ny_ = static_cast<int>(std::floor(h / cell_)) + 1;

  // Counting sort of point indices into row-major cell buckets.
  const std::size_t numCells =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  cellStart_.assign(numCells + 1, 0);
  std::vector<std::size_t> cellIndex(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t c = cellOf(clampCellX(points_[i].x),
                                 clampCellY(points_[i].y));
    cellIndex[i] = c;
    ++cellStart_[c + 1];
  }
  for (std::size_t c = 1; c <= numCells; ++c) {
    cellStart_[c] += cellStart_[c - 1];
  }
  order_.resize(points_.size());
  std::vector<std::size_t> cursor(cellStart_.begin(), cellStart_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    order_[cursor[cellIndex[i]]++] = static_cast<int>(i);
  }
}

int SpatialGrid::clampCellX(double x) const {
  const int c = static_cast<int>(std::floor((x - origin_.x) / cell_));
  return std::clamp(c, 0, nx_ - 1);
}

int SpatialGrid::clampCellY(double y) const {
  const int c = static_cast<int>(std::floor((y - origin_.y) / cell_));
  return std::clamp(c, 0, ny_ - 1);
}

void SpatialGrid::checkQueryRadius(double radius) const {
  if (!(radius >= 0.0)) {
    throw std::invalid_argument{"SpatialGrid: negative query radius"};
  }
  // One-cell neighborhoods are only sufficient up to the cell size.
  if (radius > cell_) {
    throw std::invalid_argument{
        "SpatialGrid: query radius exceeds cell size"};
  }
}

void SpatialGrid::queryRadius(Point2 center, double radius,
                              std::vector<int>& out) const {
  if (!(radius >= 0.0)) {
    throw std::invalid_argument{"SpatialGrid: negative query radius"};
  }
  if (points_.empty()) return;
  const double r2 = radius * radius;
  const int cx0 = clampCellX(center.x - radius);
  const int cx1 = clampCellX(center.x + radius);
  const int cy0 = clampCellY(center.y - radius);
  const int cy1 = clampCellY(center.y + radius);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = cellOf(cx, cy);
      for (std::size_t a = cellStart_[c]; a < cellStart_[c + 1]; ++a) {
        const int i = order_[a];
        if (dist2(points_[static_cast<std::size_t>(i)], center) <= r2) {
          out.push_back(i);
        }
      }
    }
  }
}

std::vector<int> SpatialGrid::queryRadius(Point2 center, double radius) const {
  std::vector<int> out;
  queryRadius(center, radius, out);
  return out;
}

}  // namespace glr::geom
