#pragma once
/// \file spatial_grid.hpp
/// Uniform-grid point index for fixed-radius neighbor queries.
///
/// Cell size is chosen equal to the query radius it is built for, so a
/// radius query inspects at most the 3x3 block of cells around the center
/// and a full all-pairs sweep touches each cell's half-neighborhood once.
/// This turns the O(n^2) scans in topology construction (unit-disk graph)
/// and channel receiver enumeration into O(n * k) for average degree k.
///
/// The index is a snapshot: it copies the positions it is built over and
/// never observes later movement. Callers that track moving points rebuild
/// periodically and pad the query radius by the maximum drift since the
/// snapshot (see mac::Channel::enableReceiverIndex).

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"

namespace glr::geom {

class SpatialGrid {
 public:
  /// Builds the index over a snapshot of `points`. `cellSize` must be
  /// positive and finite; pass the radius you intend to query with. The
  /// effective cell size may be enlarged to bound the cell count on very
  /// sparse inputs (this never affects correctness, only constants).
  SpatialGrid(std::vector<Point2> points, double cellSize);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point2>& points() const { return points_; }
  /// Effective cell size after the sparse-input adjustment.
  [[nodiscard]] double cellSize() const { return cell_; }

  /// Appends to `out` the indices of all points with
  /// dist(point, center) <= radius (inclusive), in unspecified order.
  /// Any non-negative radius is allowed (the scanned cell block grows with
  /// it); queries at ~cellSize() are the efficient case.
  void queryRadius(Point2 center, double radius, std::vector<int>& out) const;

  /// Convenience overload returning a fresh vector.
  [[nodiscard]] std::vector<int> queryRadius(Point2 center,
                                             double radius) const;

  /// Calls fn(i, j) exactly once for every unordered pair i < j with
  /// dist(points[i], points[j]) <= radius (inclusive). `radius` must be
  /// non-negative and at most cellSize(). Pair order is unspecified.
  template <typename Fn>
  void forEachPairWithin(double radius, Fn&& fn) const {
    checkQueryRadius(radius);
    const double r2 = radius * radius;
    // Half neighborhood: within-cell plus E, NW, N, NE. Every cell pair is
    // visited from exactly one side, so each point pair is seen once.
    static constexpr int kDx[] = {1, -1, 0, 1};
    static constexpr int kDy[] = {0, 1, 1, 1};
    for (int cy = 0; cy < ny_; ++cy) {
      for (int cx = 0; cx < nx_; ++cx) {
        const std::size_t c = cellOf(cx, cy);
        const std::size_t aBegin = cellStart_[c];
        const std::size_t aEnd = cellStart_[c + 1];
        for (std::size_t a = aBegin; a < aEnd; ++a) {
          const int i = order_[a];
          for (std::size_t b = a + 1; b < aEnd; ++b) {
            const int j = order_[b];
            if (dist2(points_[i], points_[j]) <= r2) {
              fn(i < j ? i : j, i < j ? j : i);
            }
          }
        }
        for (int d = 0; d < 4; ++d) {
          const int ox = cx + kDx[d];
          const int oy = cy + kDy[d];
          if (ox < 0 || ox >= nx_ || oy >= ny_) continue;
          const std::size_t o = cellOf(ox, oy);
          for (std::size_t a = aBegin; a < aEnd; ++a) {
            const int i = order_[a];
            for (std::size_t b = cellStart_[o]; b < cellStart_[o + 1]; ++b) {
              const int j = order_[b];
              if (dist2(points_[i], points_[j]) <= r2) {
                fn(i < j ? i : j, i < j ? j : i);
              }
            }
          }
        }
      }
    }
  }

 private:
  void checkQueryRadius(double radius) const;
  [[nodiscard]] std::size_t cellOf(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(cx);
  }
  [[nodiscard]] int clampCellX(double x) const;
  [[nodiscard]] int clampCellY(double y) const;

  std::vector<Point2> points_;
  Point2 origin_;      // lower-left corner of the bounding box
  double cell_ = 1.0;  // effective cell size
  int nx_ = 1;
  int ny_ = 1;
  std::vector<std::size_t> cellStart_;  // CSR offsets, size nx*ny + 1
  std::vector<int> order_;              // point indices bucketed by cell
};

}  // namespace glr::geom
