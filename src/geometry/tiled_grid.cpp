#include "geometry/tiled_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glr::geom {

namespace {
/// Same tile-count cap as SpatialGrid: bounds memory on sparse bounds by
/// enlarging tiles instead of allocating a huge fine grid.
constexpr std::size_t kMaxTilesBase = 1024;
constexpr std::size_t kMaxTilesPerPoint = 4;
}  // namespace

TiledSpatialGrid::TiledSpatialGrid(Point2 lo, Point2 hi, double tileSize,
                                   std::size_t capacity) {
  if (!(tileSize > 0.0) || !std::isfinite(tileSize)) {
    throw std::invalid_argument{"TiledSpatialGrid: tileSize must be positive"};
  }
  if (!std::isfinite(lo.x) || !std::isfinite(lo.y) || !std::isfinite(hi.x) ||
      !std::isfinite(hi.y) || hi.x < lo.x || hi.y < lo.y) {
    throw std::invalid_argument{"TiledSpatialGrid: bad bounds"};
  }
  origin_ = lo;
  tile_ = tileSize;
  const std::size_t maxTiles = kMaxTilesBase + kMaxTilesPerPoint * capacity;
  const double w = hi.x - lo.x;
  const double h = hi.y - lo.y;
  while ((std::floor(w / tile_) + 1.0) * (std::floor(h / tile_) + 1.0) >
         static_cast<double>(maxTiles)) {
    tile_ *= 2.0;
  }
  nx_ = static_cast<int>(std::floor(w / tile_)) + 1;
  ny_ = static_cast<int>(std::floor(h / tile_)) + 1;

  head_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_),
               -1);
  cellOf_.assign(capacity, -1);
  next_.assign(capacity, -1);
  prev_.assign(capacity, -1);
  pos_.assign(capacity, Point2{0.0, 0.0});
  sampleAt_.assign(capacity, 0.0);
}

int TiledSpatialGrid::clampTileX(double x) const {
  const int c = static_cast<int>(std::floor((x - origin_.x) / tile_));
  return std::clamp(c, 0, nx_ - 1);
}

int TiledSpatialGrid::clampTileY(double y) const {
  const int c = static_cast<int>(std::floor((y - origin_.y) / tile_));
  return std::clamp(c, 0, ny_ - 1);
}

void TiledSpatialGrid::unlink(int i) {
  const auto u = static_cast<std::size_t>(i);
  const int nxt = next_[u];
  const int prv = prev_[u];
  if (prv >= 0) {
    next_[static_cast<std::size_t>(prv)] = nxt;
  } else {
    head_[static_cast<std::size_t>(cellOf_[u])] = nxt;
  }
  if (nxt >= 0) prev_[static_cast<std::size_t>(nxt)] = prv;
}

void TiledSpatialGrid::update(int i, Point2 p, double t) {
  const auto u = static_cast<std::size_t>(i);
  if (u >= cellOf_.size()) {
    throw std::out_of_range{"TiledSpatialGrid::update: id beyond capacity"};
  }
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    throw std::invalid_argument{"TiledSpatialGrid::update: non-finite point"};
  }
  pos_[u] = p;
  sampleAt_[u] = t;
  const int tile = tileOfPoint(p);
  const int cur = cellOf_[u];
  if (cur == tile) return;
  if (cur >= 0) {
    unlink(i);
  } else {
    ++live_;
  }
  // Link at the head of the new tile's list.
  const auto tu = static_cast<std::size_t>(tile);
  next_[u] = head_[tu];
  prev_[u] = -1;
  if (head_[tu] >= 0) prev_[static_cast<std::size_t>(head_[tu])] = i;
  head_[tu] = i;
  cellOf_[u] = tile;
}

void TiledSpatialGrid::remove(int i) {
  const auto u = static_cast<std::size_t>(i);
  if (u >= cellOf_.size() || cellOf_[u] < 0) return;
  unlink(i);
  cellOf_[u] = -1;
  --live_;
}

void TiledSpatialGrid::queryRadius(Point2 center, double radius,
                                   std::vector<int>& out) const {
  if (!(radius >= 0.0)) {
    throw std::invalid_argument{"TiledSpatialGrid: negative query radius"};
  }
  const double r2 = radius * radius;
  forEachTileInRect(center.x - radius, center.y - radius, center.x + radius,
                    center.y + radius, [&](int tile) {
                      forEachInTile(tile, [&](int i) {
                        if (dist2(pos_[static_cast<std::size_t>(i)], center) <=
                            r2) {
                          out.push_back(i);
                        }
                      });
                    });
}

}  // namespace glr::geom
