#pragma once
/// \file glr_agent.hpp
/// The GLR (Geometric Localized Routing) protocol agent — the paper's
/// primary contribution, implementing Algorithms 1 and 2 plus the
/// supporting mechanisms of Sections 2.2–2.3:
///
///  * intelligent copy-count decision (Georgiou connectivity threshold);
///  * per-copy tree flags (MaxDSTD / MinDSTD / MidDSTD) routed greedily on
///    the locally constructed LDTG planar spanner;
///  * delay-tolerant store state with periodic route re-checks
///    (checkinterval, default 0.9 s as in the paper);
///  * face routing on the planar spanner at local minima;
///  * location diffusion through hello exchange and message headers, with
///    the stale-destination-location perturbation fix;
///  * custody transfer with Store/Cache areas, per-hop acknowledgements and
///    cache timeout rescheduling.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/decision.hpp"
#include "dtn/buffer.hpp"
#include "dtn/location_table.hpp"
#include "dtn/message.hpp"
#include "dtn/metrics.hpp"
#include "net/neighbor.hpp"
#include "net/world.hpp"
#include "routing/dtn_agent.hpp"
#include "sim/rng.hpp"

namespace glr::core {

/// How much of the destination's location is known a priori (Table 2).
enum class LocationMode {
  kOracleAll,    // every node always knows the true destination location
  kSourceKnows,  // source stamps the true location; relays rely on headers
                 // and diffusion (GLR's default assumption)
  kNoneKnow,     // source stamps a random guess; diffusion must correct it
};

struct GlrParams {
  double checkInterval = 0.9;  // paper's default route check interval
  double cacheTimeout = 10.0;  // custody wait before transfer rescheduling
  std::size_t custodyWindow = 16;  // max copies awaiting custody acks
  /// Buffer-pressure custody refusal: an incoming custody transfer is
  /// refused (NACK, retry-later) when this node's occupancy has reached the
  /// watermark, pushing queueing back to the sender instead of evicting
  /// held custody copies. 0 (default) never refuses — the historical
  /// behavior every golden was recorded under. Final delivery and
  /// duplicate merges are always accepted.
  std::size_t custodyWatermark = 0;
  /// Windowed congestion control on custody transfer: replaces the fixed
  /// custodyWindow with an AIMD window driven by a custody-ack RTT
  /// estimator (additive increase per acknowledged transfer, halving on
  /// timeout/refusal — the ndn-dpdk fetcher shape). Off by default.
  bool congestionControl = false;
  int maxSendsPerCheck = 8;        // per-node data-send budget per check
  double ackRetryDelay = 0.25;     // re-enqueue delay for queue-full acks
  int ackRetries = 3;
  /// Forward only to neighbors believed within guard*radius: beacon
  /// positions are stale (nodes move between hellos), and transmissions to
  /// edge-of-range neighbors fail after burning 8 MAC attempts. Mirrors the
  /// conservative link declaration of IMEP-style sensing.
  double sendRangeGuard = 0.85;
  bool custodyTransfer = true;
  bool faceRouting = true;
  bool witnessRule = true;     // LDTG witness vetoes (paper construction)
  int copiesOverride = -1;     // -1: Algorithm 1 decides
  int sparseCopies = 3;        // copies used when the network is sparse
  NetworkProfile network;      // inputs to Algorithm 1 + spanner radius
  LocationMode locationMode = LocationMode::kSourceKnows;
  double staleLocationAge = 30.0;      // header age before perturbation
  int stuckChecksBeforePerturb = 3;    // checks stuck before perturbation
  int maxFaceHops = 12;        // face-walk budget per entry
  double faceCooldown = 25.0;  // seconds before re-walking an exhausted face
  std::size_t storageLimit = dtn::kUnlimitedStorage;
  /// Buffer index pre-size hint (copies this node may hold at once),
  /// derived from the workload by the scenario driver; 0 = no hint.
  std::size_t expectedBufferedCopies = 0;
  std::size_t payloadBytes = 1000;     // paper Table 1
  std::size_t dataHeaderBytes = 40;    // GLR header on data packets
  std::size_t custodyAckBytes = 20;
  /// Steady-state bound on the location table for long/large runs:
  /// observations older than this many seconds are pruned at each periodic
  /// check. 0 (default) keeps every observation forever — the historical
  /// behavior the goldens were recorded under. The table is lookup-only,
  /// so pruning is observable only when a later route check would have
  /// fallen back to one of these very stale positions.
  double locationEvictAfter = 0.0;
  /// Message lifetime in seconds (0 = immortal, the historical default).
  /// Expired copies are dropped by a counted sweep at each periodic check
  /// (MessageBuffer::expireDue -> expiredDrops), never silently.
  double messageTtl = 0.0;
  /// Custody-transfer reliability sublayer (adversarial resilience; all off
  /// by default so every pinned golden stays bit-identical). `recovery`
  /// master-switches three mechanisms: (1) suspicion scoring — every
  /// custody round that ends in a cache timeout or refusal NACK charges the
  /// next hop one failure, and `suspicionThreshold` failures without an
  /// intervening accepted ack mark it suspect for `suspicionTtl` seconds
  /// (an accepted ack clears the score: a greyhole must keep re-earning its
  /// verdict); (2) reroute — suspect hops are excluded from the spanner
  /// candidate set of every route check (never from final delivery: the
  /// destination always gets its own traffic); (3) spray fallback — a copy
  /// whose failure score (custody failures + no-route checks) reaches
  /// `recoveryAfterFailures` is cloned, custody-free, to up to
  /// `recoveryFanout` non-suspect neighbors (at most once per
  /// `recoveryCooldown` per copy), bounded replication that jumps the copy
  /// out of a failing neighborhood while this node keeps custody of the
  /// original (ROADMAP item 5's recovery mode).
  bool recovery = false;
  int suspicionThreshold = 2;
  double suspicionTtl = 120.0;
  int recoveryAfterFailures = 3;
  int recoveryFanout = 2;
  double recoveryCooldown = 15.0;
  net::NeighborService::Params hello;
};

/// Protocol event counters (exported to benches/tests).
struct GlrCounters {
  std::uint64_t dataSent = 0;
  std::uint64_t dataReceived = 0;
  std::uint64_t duplicatesDropped = 0;
  std::uint64_t custodyAcksSent = 0;
  std::uint64_t custodyAcksReceived = 0;
  std::uint64_t cacheTimeouts = 0;
  std::uint64_t txFailures = 0;
  std::uint64_t faceTransitions = 0;
  std::uint64_t perturbations = 0;
  std::uint64_t deliveredHere = 0;
  std::uint64_t custodyRefusalsSent = 0;      // NACKs sent under watermark
  std::uint64_t custodyRefusalsReceived = 0;  // NACKs received (backed off)
  std::uint64_t sendRejects = 0;  // data/ack sends the MAC finally refused
  // Reliability sublayer (all zero unless GlrParams::recovery is on).
  std::uint64_t suspicionsRaised = 0;      // hops newly marked suspect
  std::uint64_t suspectSkips = 0;          // forwarding choices that avoided one
  std::uint64_t recoveryActivations = 0;   // copies that entered spray fallback
  std::uint64_t recoverySprays = 0;        // custody-free clones actually sent
};

/// Custody acknowledgement payload (paper: contains source, destination,
/// message count and tree branch — exactly a CopyKey). `accepted == false`
/// turns it into a refusal (NACK): the receiver is above its buffer
/// watermark and the sender must keep custody and retry later.
struct CustodyAck {
  dtn::CopyKey key;
  bool accepted = true;
};

/// Packet kind tags.
inline constexpr const char* kGlrDataKind = "glr-data";
inline constexpr const char* kGlrAckKind = "glr-ack";

class GlrAgent final : public routing::DtnAgent {
 public:
  GlrAgent(net::World& world, int self, GlrParams params,
           dtn::MetricsCollector* metrics, sim::Rng rng);

  /// Shared-parameter constructor: scenario drivers build one immutable
  /// GlrParams block and hand the same pointer to every agent, so a
  /// million-node world stores the configuration once instead of once per
  /// node. The by-value constructor above wraps into a private block and
  /// delegates here.
  GlrAgent(net::World& world, int self,
           std::shared_ptr<const GlrParams> params,
           dtn::MetricsCollector* metrics, sim::Rng rng);

  void start() override;
  void onPacket(const net::Packet& packet, int fromMac) override;
  void onTxStatus(const net::Packet& packet, int dstMac,
                  bool success) override;
  void originate(int dstNode) override;
  void onRadioState(bool up) override {
    if (!up) neighbors_.reset();
  }

  [[nodiscard]] std::size_t storageUsed() const override {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t storagePeak() const override {
    return buffer_.peakSize();
  }

  void harvestCounters(routing::ProtocolCounters& out) const override {
    out.dataSent += counters_.dataSent;
    out.dataReceived += counters_.dataReceived;
    out.duplicatesDropped += counters_.duplicatesDropped;
    out.custodyAcksSent += counters_.custodyAcksSent;
    out.custodyAcksReceived += counters_.custodyAcksReceived;
    out.cacheTimeouts += counters_.cacheTimeouts;
    out.txFailures += counters_.txFailures;
    out.faceTransitions += counters_.faceTransitions;
    out.sendRejects += counters_.sendRejects + neighbors_.helloSendFailures();
    out.bufferEvictions += buffer_.dropCount();
    out.custodyRefusals += counters_.custodyRefusalsSent;
    out.suspicionsRaised += counters_.suspicionsRaised;
    out.suspectSkips += counters_.suspectSkips;
    out.recoveryActivations += counters_.recoveryActivations;
    out.recoverySprays += counters_.recoverySprays;
    out.expiredDrops += buffer_.expiredCount();
  }

  [[nodiscard]] const GlrCounters& counters() const { return counters_; }
  [[nodiscard]] const net::NeighborService& neighbors() const {
    return neighbors_;
  }
  [[nodiscard]] const dtn::MessageBuffer& buffer() const { return buffer_; }
  [[nodiscard]] const dtn::LocationTable& locationTable() const {
    return locations_;
  }
  /// Copies Algorithm 1 chooses for this agent's network profile.
  [[nodiscard]] int copyCount() const;

  /// Checkpoint support: hello service, buffer (Store + Cache), location
  /// table, delivered set, suspicion ledger, AIMD congestion state,
  /// counters and RNG. Pending events (hello beacon, periodic/queued route
  /// checks, custody-ack retries, custody timers) are rebuilt via
  /// restoreEvent.
  void saveState(ckpt::Encoder& e) const override;
  void restoreState(ckpt::Decoder& d) override;
  void restoreEvent(const sim::EventKey& key,
                    const sim::EventDesc& desc) override;

 private:
  void periodicCheck();
  void checkRoutes();
  void sendCustodyAck(const dtn::CopyKey& key, int to, int attempt,
                      bool accepted = true);
  /// Effective custody window: fixed custodyWindow, or the AIMD cwnd when
  /// congestion control is on.
  [[nodiscard]] std::size_t custodyWindowNow() const;
  /// Custody retransmit timer: the fixed cacheTimeout, or an RFC-6298-style
  /// RTO from the custody-ack RTT estimator (clamped to [1 s, cacheTimeout])
  /// when congestion control is on.
  [[nodiscard]] double custodyTimeoutNow() const;
  void recordCustodyRtt(double sample);
  /// AIMD loss reaction: halve the window (custody timeout or refusal).
  void onCongestionSignal();
  /// Queues one copy to the MAC; returns true if it actually went out.
  bool sendCopy(const dtn::CopyKey& key, int nextHop);
  /// Custody timer body: fires custodyTimeoutNow() after a cached send;
  /// no-ops unless this exact custody round (matched by sentAt) is still
  /// outstanding. Named so checkpoint restore re-creates the same callback.
  void onCustodyTimeout(const dtn::CopyKey& key, sim::SimTime sentAt);
  /// Contact/originate-triggered deferred route check (checkQueued_ gate).
  void onQueuedCheck();
  /// Resolves the destination position for a stored message, applying
  /// location diffusion in both directions. Returns false if nothing is
  /// known (only possible before any observation in kNoneKnow-less setups).
  bool resolveDestination(dtn::Message& m, geom::Point2& out);
  void handleData(const net::Packet& packet, int fromMac);
  void handleAck(const net::Packet& packet, int fromMac);
  void maybePerturbDestination(dtn::Message& m);
  /// Suspicion ledger (recovery sublayer): true while `id` carries an
  /// unexpired suspect verdict.
  [[nodiscard]] bool isSuspect(int id) const;
  /// Charges `hop` one custody failure (timeout or refusal NACK); crossing
  /// suspicionThreshold (re)marks it suspect for suspicionTtl seconds.
  void noteCustodyFailure(int hop);
  /// An accepted custody ack clears `hop`'s score and verdict.
  void noteCustodySuccess(int hop);
  /// Spray fallback: clones the copy, custody-free, to up to recoveryFanout
  /// non-suspect current neighbors; the original stays in the Store.
  void attemptRecovery(dtn::Message& m);
  [[nodiscard]] geom::Point2 myPos() { return world_.positionOf(self_); }

  net::World& world_;
  int self_;
  /// Shared immutable parameter block: every agent in a scenario gets the
  /// same GlrParams, and at city scale a by-value copy per node (~232 B)
  /// is a measurable share of the idle-node budget — so one refcounted
  /// block serves the whole population.
  std::shared_ptr<const GlrParams> params_;
  dtn::MetricsCollector* metrics_;
  sim::Rng rng_;

  net::NeighborService neighbors_;
  dtn::MessageBuffer buffer_;
  dtn::LocationTable locations_;
  std::unordered_set<dtn::MessageId> deliveredHere_;
  /// Per-next-hop custody failure scores and suspect verdicts (empty and
  /// untouched unless params_->recovery).
  struct SuspectEntry {
    int failures = 0;
    sim::SimTime until = -1e18;  // verdict active while now < until
  };
  std::unordered_map<int, SuspectEntry> suspicion_;
  GlrCounters counters_;
  int nextSeq_ = 0;
  bool checkQueued_ = false;  // suppress redundant contact-triggered checks

  // AIMD congestion state (active only with params_->congestionControl):
  // slow start from a small window up to ssthresh_, then +1/cwnd per
  // acknowledged custody transfer; halved on timeout or refusal.
  double cwnd_ = 4.0;
  double ssthresh_ = 64.0;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool haveRtt_ = false;
};

}  // namespace glr::core
