#pragma once
/// \file trees.hpp
/// Source-to-destination tree extraction from the LDTG spanner (paper
/// Sec. 2.3, Figure 2).
///
/// At each node, a message copy flagged Max/Min/Mid is forwarded to the
/// spanner neighbor making maximum / minimum / median *progress* toward the
/// destination, where progress means strictly reducing Euclidean distance to
/// the destination ("maximum progress (e.g., closest) to the destination").
/// Following one rule from every node induces one tree per rule; copies on
/// different trees take disjoint-ish routes, which is what buys delay
/// tolerance in sparse networks. More than three copies use additional
/// MidDSTD variants (the mid rule "has more options").

#include <optional>
#include <vector>

#include "dtn/message.hpp"
#include "geometry/point.hpp"
#include "graph/graph.hpp"

namespace glr::core {

/// A neighbor that makes progress toward the destination.
struct ProgressNeighbor {
  int id = -1;
  geom::Point2 pos;
  double distToDest = 0.0;
};

/// Neighbors of a node at `selfPos` that are strictly closer to `destPos`
/// than the node itself, sorted by ascending distance-to-destination
/// (i.e. descending progress).
[[nodiscard]] std::vector<ProgressNeighbor> progressNeighbors(
    geom::Point2 selfPos, geom::Point2 destPos,
    const std::vector<std::pair<int, geom::Point2>>& neighbors);

/// Picks the next hop for a tree kind from sorted progress candidates.
/// kMax -> most progress (front), kMin -> least progress (back),
/// kMid (+ variants) -> median-area elements; kNone behaves like kMax
/// (plain greedy). Returns nullopt when `candidates` is empty.
[[nodiscard]] std::optional<ProgressNeighbor> selectNextHop(
    dtn::TreeFlag flag, const std::vector<ProgressNeighbor>& candidates);

/// Tree flags for `copies` message copies: {Max}, {Max,Min}, {Max,Min,Mid},
/// then additional Mid variants (paper: "multiple MidDSTD trees are
/// extracted"). copies is clamped to [1, kMaxCopies].
[[nodiscard]] std::vector<dtn::TreeFlag> treeFlagsForCopies(int copies);

inline constexpr int kMaxCopies = 5;

/// Analysis helper: follows one tree rule hop by hop over a *static* graph
/// from `src` toward the node nearest `destPos`, reproducing the paper's
/// Figure 2 walk (S -> a -> b -> ... -> T). Stops at a local minimum or
/// after `maxHops`. Returns the visited node sequence starting with src.
[[nodiscard]] std::vector<int> extractPath(
    const graph::Graph& g, const std::vector<geom::Point2>& positions,
    int src, geom::Point2 destPos, dtn::TreeFlag flag, int maxHops = 1000);

}  // namespace glr::core
