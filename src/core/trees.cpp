#include "core/trees.hpp"

#include <algorithm>

namespace glr::core {

std::vector<ProgressNeighbor> progressNeighbors(
    geom::Point2 selfPos, geom::Point2 destPos,
    const std::vector<std::pair<int, geom::Point2>>& neighbors) {
  const double selfDist = geom::dist(selfPos, destPos);
  std::vector<ProgressNeighbor> out;
  for (const auto& [id, pos] : neighbors) {
    const double d = geom::dist(pos, destPos);
    if (d < selfDist) out.push_back({id, pos, d});
  }
  std::sort(out.begin(), out.end(),
            [](const ProgressNeighbor& a, const ProgressNeighbor& b) {
              if (a.distToDest != b.distToDest) {
                return a.distToDest < b.distToDest;
              }
              return a.id < b.id;  // deterministic tie-break
            });
  return out;
}

std::optional<ProgressNeighbor> selectNextHop(
    dtn::TreeFlag flag, const std::vector<ProgressNeighbor>& candidates) {
  if (candidates.empty()) return std::nullopt;
  const std::size_t n = candidates.size();
  switch (flag) {
    case dtn::TreeFlag::kNone:
    case dtn::TreeFlag::kMax:
      return candidates.front();
    case dtn::TreeFlag::kMin:
      return candidates.back();
    default: {
      // Mid variants: walk outward from the median so distinct variants
      // prefer distinct neighbors when enough candidates exist.
      const auto variant =
          static_cast<std::size_t>(flag) -
          static_cast<std::size_t>(dtn::TreeFlag::kMid);
      std::size_t idx = n / 2;
      // Offsets 0, +1, -1, +2, -2, ... clamped into range.
      const std::size_t step = (variant + 1) / 2;
      if (variant % 2 == 1 && idx + step < n) {
        idx += step;
      } else if (variant % 2 == 0 && variant > 0 && idx >= step) {
        idx -= step;
      }
      return candidates[std::min(idx, n - 1)];
    }
  }
}

std::vector<dtn::TreeFlag> treeFlagsForCopies(int copies) {
  copies = std::clamp(copies, 1, kMaxCopies);
  std::vector<dtn::TreeFlag> flags{dtn::TreeFlag::kMax};
  if (copies >= 2) flags.push_back(dtn::TreeFlag::kMin);
  for (int i = 2; i < copies; ++i) {
    flags.push_back(static_cast<dtn::TreeFlag>(
        static_cast<std::uint8_t>(dtn::TreeFlag::kMid) + (i - 2)));
  }
  return flags;
}

std::vector<int> extractPath(const graph::Graph& g,
                             const std::vector<geom::Point2>& positions,
                             int src, geom::Point2 destPos,
                             dtn::TreeFlag flag, int maxHops) {
  std::vector<int> path{src};
  int cur = src;
  for (int hop = 0; hop < maxHops; ++hop) {
    std::vector<std::pair<int, geom::Point2>> nbrs;
    for (int v : g.neighbors(cur)) nbrs.emplace_back(v, positions[v]);
    const auto cands = progressNeighbors(positions[cur], destPos, nbrs);
    const auto next = selectNextHop(flag, cands);
    if (!next.has_value()) break;
    cur = next->id;
    path.push_back(cur);
    if (positions[cur] == destPos) break;
  }
  return path;
}

}  // namespace glr::core
