#pragma once
/// \file face.hpp
/// Face (perimeter) routing on the planar LDTG for local-minimum escape.
///
/// When greedy progress stalls, the paper applies face routing [Bose et al.,
/// Frey & Stojmenovic] on the planar spanner. We implement the standard
/// right-hand rule: from node u, having arrived via reference point r, the
/// next edge is the first neighbor counter-clockwise from the ray u->r.
/// The GLR agent enters face mode at a local minimum (recording the entry
/// position) and exits as soon as the current node is closer to the
/// destination than the entry point — the store-and-forward layer handles
/// the cases where static-graph delivery guarantees don't apply anyway
/// (mobility, disruption).

#include <optional>
#include <vector>

#include "geometry/point.hpp"

namespace glr::core {

/// Next hop by the right-hand rule.
///
/// `self` is the current node position; `reference` the position we came
/// from (the previous hop), or for face-mode entry any point in the
/// direction of the destination. Returns the neighbor id whose edge is the
/// first counter-clockwise from the ray self->reference, or nullopt when
/// `neighbors` is empty. With a single neighbor, that neighbor is returned
/// (possibly the previous hop: on a dead-end the face walk turns around).
[[nodiscard]] std::optional<int> faceNextHop(
    geom::Point2 self, geom::Point2 reference,
    const std::vector<std::pair<int, geom::Point2>>& neighbors);

/// Analysis helper: walks the face of a planar graph embedding by the
/// right-hand rule starting with directed edge (from -> to), returning the
/// sequence of visited vertices until the walk returns to the starting edge
/// or `maxSteps` is exceeded. On a correct planar embedding this traces one
/// face boundary.
[[nodiscard]] std::vector<int> traceFace(
    const std::vector<geom::Point2>& positions,
    const std::vector<std::vector<int>>& adjacency, int from, int to,
    int maxSteps = 10000);

}  // namespace glr::core
