#include "core/face.hpp"

#include <cmath>
#include <numbers>

namespace glr::core {

namespace {

/// CCW angle of b around origin a relative to ray a->r, in (0, 2*pi].
double ccwAngleFrom(geom::Point2 a, geom::Point2 r, geom::Point2 b) {
  const double base = std::atan2(r.y - a.y, r.x - a.x);
  const double ang = std::atan2(b.y - a.y, b.x - a.x);
  double delta = ang - base;
  const double twoPi = 2.0 * std::numbers::pi;
  while (delta <= 0.0) delta += twoPi;
  while (delta > twoPi) delta -= twoPi;
  return delta;
}

}  // namespace

std::optional<int> faceNextHop(
    geom::Point2 self, geom::Point2 reference,
    const std::vector<std::pair<int, geom::Point2>>& neighbors) {
  if (neighbors.empty()) return std::nullopt;
  int best = -1;
  double bestAngle = 0.0;
  for (const auto& [id, pos] : neighbors) {
    const double a = ccwAngleFrom(self, reference, pos);
    if (best == -1 || a < bestAngle ||
        (a == bestAngle && id < best)) {
      best = id;
      bestAngle = a;
    }
  }
  return best;
}

std::vector<int> traceFace(const std::vector<geom::Point2>& positions,
                           const std::vector<std::vector<int>>& adjacency,
                           int from, int to, int maxSteps) {
  std::vector<int> visited{from, to};
  int prev = from;
  int cur = to;
  for (int step = 0; step < maxSteps; ++step) {
    std::vector<std::pair<int, geom::Point2>> nbrs;
    for (int v : adjacency[static_cast<std::size_t>(cur)]) {
      nbrs.emplace_back(v, positions[static_cast<std::size_t>(v)]);
    }
    const auto next = faceNextHop(positions[static_cast<std::size_t>(cur)],
                                  positions[static_cast<std::size_t>(prev)],
                                  nbrs);
    if (!next.has_value()) break;
    prev = cur;
    cur = *next;
    if (prev == visited[0] && cur == visited[1]) break;  // closed the face
    visited.push_back(cur);
  }
  return visited;
}

}  // namespace glr::core
