#pragma once
/// \file decision.hpp
/// Algorithm 1: Delay-Tolerant Decision Making.
///
/// "If network is sparse, decide the number of message copies needed and
/// send multiple copies; else use single copy." Sparsity is judged by the
/// Georgiou et al. connectivity threshold on (node count, radius, area):
/// with the paper's parameters (n=50, s=10, 1500x300 m) the threshold falls
/// at ~133 m, which is exactly why the paper uses 3 copies at 50/100 m and
/// a single copy at 150/200/250 m.

#include <cstddef>

#include "spanner/connectivity.hpp"

namespace glr::core {

struct NetworkProfile {
  std::size_t numNodes = 50;
  double radius = 100.0;
  double areaWidth = 1500.0;
  double areaHeight = 300.0;
  /// Connectivity confidence parameter s (probability >= 1 - 1/s).
  double confidence = 10.0;
};

/// Number of identical message copies Algorithm 1 sends: 1 when the network
/// is likely connected at this radius, `sparseCopies` otherwise.
[[nodiscard]] inline int decideCopyCount(const NetworkProfile& net,
                                         int sparseCopies = 3) {
  const bool connected = spanner::isLikelyConnected(
      net.numNodes, net.radius, net.areaWidth, net.areaHeight,
      net.confidence);
  return connected ? 1 : sparseCopies;
}

}  // namespace glr::core
