#include "core/glr_agent.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "checkpoint/message_codec.hpp"
#include "core/face.hpp"
#include "core/trees.hpp"
#include "net/faults.hpp"
#include "trace/recorder.hpp"
#include "spanner/ldtg.hpp"

namespace glr::core {

namespace {

sim::EventDesc glrDesc(ckpt::EventKind kind, int self) {
  sim::EventDesc d;
  d.kind = kind;
  d.i0 = self;
  return d;
}

}  // namespace

GlrAgent::GlrAgent(net::World& world, int self, GlrParams params,
                   dtn::MetricsCollector* metrics, sim::Rng rng)
    : GlrAgent(world, self,
               std::make_shared<const GlrParams>(std::move(params)), metrics,
               rng) {}

GlrAgent::GlrAgent(net::World& world, int self,
                   std::shared_ptr<const GlrParams> params,
                   dtn::MetricsCollector* metrics, sim::Rng rng)
    : world_(world),
      self_(self),
      params_(std::move(params)),
      metrics_(metrics),
      rng_(rng),
      neighbors_(world.sim(), world.macOf(self), self,
                 [this] { return myPos(); }, params_->hello, rng.fork(1)),
      buffer_(params_->storageLimit, params_->expectedBufferedCopies) {
  buffer_.setTrace(world_.trace(), self_);
  neighbors_.setLocationSampleCallback(
      [this](int id, geom::Point2 pos, sim::SimTime at) {
        locations_.update(id, pos, at);
      });
  neighbors_.setContactCallback([this](int /*id*/) {
    // "When its relative location with respect to the neighboring nodes
    // changes and new path emerges ... it will send the stored messages."
    // A new contact clears every stored copy's retry backoff and triggers
    // an immediate route check.
    if (buffer_.storeSize() == 0) return;
    buffer_.forEachInStore([](dtn::Message& m) {
      m.waitChecks = 0;
      m.retryBackoff = 1;
    });
    if (checkQueued_) return;
    checkQueued_ = true;
    world_.sim().schedule(0.01, glrDesc(ckpt::kGlrQueuedCheck, self_),
                          [this] { onQueuedCheck(); });
  });
}

void GlrAgent::onQueuedCheck() {
  checkQueued_ = false;
  checkRoutes();
}

int GlrAgent::copyCount() const {
  if (params_->copiesOverride > 0) return params_->copiesOverride;
  return decideCopyCount(params_->network, params_->sparseCopies);
}

void GlrAgent::start() {
  neighbors_.start();
  // Desynchronized periodic route checks.
  world_.sim().schedule(rng_.uniform(0.0, params_->checkInterval),
                        glrDesc(ckpt::kGlrPeriodicCheck, self_),
                        [this] { periodicCheck(); });
}

void GlrAgent::periodicCheck() {
  if (params_->locationEvictAfter > 0.0) {
    locations_.prune(world_.sim().now() - params_->locationEvictAfter);
  }
  // TTL sweep (gated so TTL-less runs never pay the scan): expired copies
  // leave as counted drops; a pending custody timer for an expired cached
  // copy finds its entry gone and stays silent.
  if (params_->messageTtl > 0.0) buffer_.expireDue(world_.sim().now());
  checkRoutes();
  world_.sim().schedule(params_->checkInterval,
                        glrDesc(ckpt::kGlrPeriodicCheck, self_),
                        [this] { periodicCheck(); });
}

void GlrAgent::originate(int dstNode) {
  const int copies = copyCount();
  const auto flags = treeFlagsForCopies(copies);

  dtn::Message base;
  base.id = {self_, nextSeq_++};
  base.srcNode = self_;
  base.dstNode = dstNode;
  base.created = world_.sim().now();
  base.payloadBytes = params_->payloadBytes;
  if (params_->messageTtl > 0.0) {
    base.expiresAt = base.created + params_->messageTtl;
  }

  switch (params_->locationMode) {
    case LocationMode::kOracleAll:
    case LocationMode::kSourceKnows:
      // Paper assumption: "Source knows the true destination location."
      base.destLoc = world_.positionOf(dstNode);
      base.destLocTime = world_.sim().now();
      base.destLocKnown = true;
      break;
    case LocationMode::kNoneKnow:
      // "Random location is given at the beginning."
      base.destLoc = {rng_.uniform(0.0, params_->network.areaWidth),
                      rng_.uniform(0.0, params_->network.areaHeight)};
      base.destLocTime = -1e17;  // ancient: any observation supersedes it
      base.destLocKnown = true;
      break;
  }

  if (metrics_ != nullptr) metrics_->onCreated(base);
  for (const dtn::TreeFlag flag : flags) {
    dtn::Message copy = base;
    copy.flag = flag;
    buffer_.addToStore(std::move(copy));
  }
  // Kick an immediate check so fresh messages don't idle a full interval.
  if (!checkQueued_) {
    checkQueued_ = true;
    world_.sim().schedule(0.001, glrDesc(ckpt::kGlrQueuedCheck, self_),
                          [this] { onQueuedCheck(); });
  }
}

bool GlrAgent::resolveDestination(dtn::Message& m, geom::Point2& out) {
  if (params_->locationMode == LocationMode::kOracleAll) {
    out = world_.positionOf(m.dstNode);
    m.destLoc = out;
    m.destLocTime = world_.sim().now();
    m.destLocKnown = true;
    return true;
  }
  // Diffusion, both directions: the holder updates the header when it knows
  // a fresher location, and learns from the header when the header is
  // fresher (paper Sec. 2.3.1). Perturbed locations never enter the table.
  if (m.destLocKnown && !m.destLocPerturbed) {
    locations_.update(m.dstNode, m.destLoc, m.destLocTime);
  }
  if (const auto entry = locations_.lookup(m.dstNode);
      entry.has_value() && entry->at > m.destLocTime) {
    m.destLoc = entry->pos;
    m.destLocTime = entry->at;
    m.destLocKnown = true;
    m.destLocPerturbed = false;
  }
  if (!m.destLocKnown) return false;
  out = m.destLoc;
  return true;
}

void GlrAgent::maybePerturbDestination(dtn::Message& m) {
  // Stale-location fix (paper Sec. 3.3): the node closest to a wrong
  // destination location re-aims the copy at a nearby random location so it
  // can leave the local minimum. The perturbed location keeps its old
  // timestamp and is flagged, so it is never diffused as a genuine
  // observation and any fresher real sample supersedes it immediately.
  if (m.stuckCount < params_->stuckChecksBeforePerturb) return;
  if (world_.sim().now() - m.destLocTime < params_->staleLocationAge) return;
  if (world_.sim().now() - m.lastPerturbAt < params_->staleLocationAge) return;
  // The paper's trigger: the copy reached the node *closest to* the stale
  // location — i.e. we are standing at the phantom point and the
  // destination is not here. Copies stuck far away are stuck because of
  // partition, not staleness; perturbing them would be noise.
  if (geom::dist(myPos(), m.destLoc) > params_->network.radius) return;
  m.lastPerturbAt = world_.sim().now();
  const double r = params_->network.radius;
  m.destLoc.x = std::clamp(m.destLoc.x + rng_.uniform(-1.5 * r, 1.5 * r),
                           0.0, params_->network.areaWidth);
  m.destLoc.y = std::clamp(m.destLoc.y + rng_.uniform(-1.5 * r, 1.5 * r),
                           0.0, params_->network.areaHeight);
  m.destLocPerturbed = true;
  m.stuckCount = 0;
  ++counters_.perturbations;
  if (metrics_ != nullptr) metrics_->count("glr.perturbations");
}

void GlrAgent::checkRoutes() {
  if (buffer_.storeSize() == 0) return;
  const geom::Point2 self = myPos();

  // Local LDTG star: computed once per check from beacon knowledge.
  const auto knowledge = neighbors_.knowledge();
  const auto spannerIds = spanner::localSpannerNeighbors(
      self_, self, knowledge, params_->network.radius, params_->witnessRule);
  std::vector<std::pair<int, geom::Point2>> spannerNbrs;
  spannerNbrs.reserve(spannerIds.size());
  const double sendRange = params_->sendRangeGuard * params_->network.radius;
  for (const int id : spannerIds) {
    // Reroute-avoiding-suspects: a hop under an active suspect verdict is
    // excluded from this check's candidate set entirely (greedy and face
    // alike). Direct delivery below is exempt — the destination is the
    // endpoint of the custody chain, not a relay.
    if (params_->recovery && isSuspect(id)) {
      ++counters_.suspectSkips;
      continue;
    }
    if (const auto pos = neighbors_.neighborPosition(id); pos.has_value()) {
      if (geom::dist(self, *pos) <= sendRange) {
        spannerNbrs.emplace_back(id, *pos);
      }
    }
  }

  int sendBudget = params_->maxSendsPerCheck;
  for (const dtn::CopyKey& key : buffer_.storeKeys()) {
    if (sendBudget <= 0) break;  // remaining copies wait for the next check
    dtn::Message* m = buffer_.findInStore(key);
    if (m == nullptr) continue;  // evicted or sent meanwhile

    // Recovery mode: a copy whose custody chain keeps failing (timeouts,
    // refusal NACKs, no-route checks) falls back to a bounded custody-free
    // spray before continuing normal routing below.
    if (params_->recovery &&
        m->deliveryFailures >= params_->recoveryAfterFailures &&
        world_.sim().now() >= m->lastRecoveryAt + params_->recoveryCooldown) {
      attemptRecovery(*m);
    }

    // Direct delivery when the destination is a current neighbor.
    if (neighbors_.isNeighbor(m->dstNode)) {
      if (sendCopy(key, m->dstNode)) --sendBudget;
      continue;
    }

    // Store-state backoff: after failed attempts the copy waits out checks
    // (cleared on new contacts) instead of re-walking a dead neighborhood.
    if (m->waitChecks > 0) {
      --m->waitChecks;
      continue;
    }

    geom::Point2 destPos;
    if (!resolveDestination(*m, destPos)) {
      ++m->stuckCount;
      continue;
    }

    const auto candidates = progressNeighbors(self, destPos, spannerNbrs);

    // Face-mode exit: we are closer to the destination than where the copy
    // entered the face (standard perimeter-mode recovery rule).
    if (m->faceMode && geom::dist(self, destPos) <
                           geom::dist(m->faceEntry, destPos)) {
      m->faceMode = false;
      m->facePrevHop = -1;
    }

    // Shared failure path: count the stuck check, possibly perturb a stale
    // destination location, and back off exponentially (capped) until the
    // next attempt — unless the perturbation just opened a new direction.
    const auto noRoute = [&](dtn::Message& msg) {
      ++msg.stuckCount;
      // A check that found no usable next hop feeds the copy's recovery
      // pressure: repeated spanner route-check failure is the fallback
      // trigger (ROADMAP item 5), not just custody losses.
      if (params_->recovery) ++msg.deliveryFailures;
      const sim::SimTime before = msg.lastPerturbAt;
      maybePerturbDestination(msg);
      if (msg.lastPerturbAt != before) {
        msg.waitChecks = 0;  // retry greedy toward the perturbed location
      } else {
        msg.waitChecks = msg.retryBackoff;
        msg.retryBackoff = std::min(2 * msg.retryBackoff, 8);
      }
    };

    if (!m->faceMode) {
      if (const auto next = selectNextHop(m->flag, candidates);
          next.has_value()) {
        m->stuckCount = 0;
        m->retryBackoff = 1;
        // Real progress: a future local minimum is a new void, so the copy
        // may face-walk again.
        m->faceCooldownUntil = -1e18;
        m->faceExhaustions = 0;
        if (sendCopy(key, next->id)) --sendBudget;
        continue;
      }
      // Local minimum: try one face walk around the void. In a disconnected
      // component the walk loops back to us and the copy then waits in
      // store state (paper Sec. 3.2) until the neighborhood changes; a
      // cooldown stops the same dead face from being re-walked.
      if (params_->faceRouting && !spannerNbrs.empty() &&
          world_.sim().now() >= m->faceCooldownUntil) {
        m->faceMode = true;
        m->faceEntry = self;
        m->faceEntryNode = self_;
        m->faceHops = 0;
        m->facePrevHop = -1;
        ++counters_.faceTransitions;
        const auto next = faceNextHop(self, destPos, spannerNbrs);
        if (next.has_value()) {
          m->faceHops = 1;
          if (sendCopy(key, *next)) --sendBudget;
          continue;
        }
        m->faceMode = false;
      }
      noRoute(*m);
      continue;
    }

    // In face mode. Give up the walk when it returned to its entry node or
    // exhausted its hop budget: store and wait for topology change.
    if ((m->faceEntryNode == self_ && m->faceHops > 0) ||
        m->faceHops >= params_->maxFaceHops) {
      m->faceMode = false;
      m->facePrevHop = -1;
      m->faceExhaustions = std::min(m->faceExhaustions + 1, 4);
      m->faceCooldownUntil =
          world_.sim().now() +
          params_->faceCooldown * static_cast<double>(1 << m->faceExhaustions);
      noRoute(*m);
      continue;
    }
    // Continue the right-hand walk relative to the hop we came from
    // (falling back to the destination direction if unknown).
    geom::Point2 ref = destPos;
    if (m->facePrevHop >= 0) {
      if (const auto p = neighbors_.neighborPosition(m->facePrevHop);
          p.has_value()) {
        ref = *p;
      }
    }
    if (const auto next = faceNextHop(self, ref, spannerNbrs);
        next.has_value()) {
      m->faceHops += 1;
      if (sendCopy(key, *next)) --sendBudget;
    } else {
      m->faceMode = false;
      m->faceExhaustions = std::min(m->faceExhaustions + 1, 4);
      m->faceCooldownUntil =
          world_.sim().now() +
          params_->faceCooldown * static_cast<double>(1 << m->faceExhaustions);
      noRoute(*m);
    }
  }
}

void GlrAgent::sendCustodyAck(const dtn::CopyKey& key, int to, int attempt,
                              bool accepted) {
  net::Packet ack;
  ack.kind = kGlrAckKind;
  ack.bytes = params_->custodyAckBytes;
  ack.payload = net::Payload::of(CustodyAck{key, accepted});
  if (world_.macOf(self_).send(std::move(ack), to)) {
    if (accepted) {
      ++counters_.custodyAcksSent;
      if (trace::Recorder* t = world_.trace()) {
        t->record(trace::EventType::kCustodyAccept, self_, to, key.id.src,
                  key.id.seq, 0, static_cast<std::uint8_t>(key.flag));
      }
    }
    return;
  }
  // Interface queue full: a lost custody ack forks the copy at the sender,
  // so retry shortly rather than relying on the sender's cache timeout.
  if (attempt < params_->ackRetries) {
    sim::EventDesc desc = glrDesc(ckpt::kGlrAckRetry, self_);
    desc.i1 = to;
    desc.u0 = (static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(key.id.src))
               << 32) |
              static_cast<std::uint32_t>(key.id.seq);
    desc.b0 = static_cast<std::uint8_t>(key.flag);
    desc.b1 = accepted ? 1 : 0;
    desc.u1 = static_cast<std::uint64_t>(attempt + 1);
    world_.sim().schedule(params_->ackRetryDelay, desc,
                          [this, key, to, attempt, accepted] {
                            sendCustodyAck(key, to, attempt + 1, accepted);
                          });
  } else {
    // Out of retries: the ack is abandoned (the sender's custody timer
    // recovers the copy). Counted, never silent.
    ++counters_.sendRejects;
  }
}

std::size_t GlrAgent::custodyWindowNow() const {
  if (!params_->congestionControl) return params_->custodyWindow;
  return static_cast<std::size_t>(cwnd_);
}

double GlrAgent::custodyTimeoutNow() const {
  if (!params_->congestionControl || !haveRtt_) return params_->cacheTimeout;
  const double rto = srtt_ + 4.0 * rttvar_;
  return std::clamp(rto, 1.0, params_->cacheTimeout);
}

void GlrAgent::recordCustodyRtt(double sample) {
  // RFC 6298 smoothing over custody-ack round trips.
  if (!haveRtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    haveRtt_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
}

void GlrAgent::onCongestionSignal() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
}

bool GlrAgent::isSuspect(int id) const {
  const auto it = suspicion_.find(id);
  return it != suspicion_.end() && world_.sim().now() < it->second.until;
}

void GlrAgent::noteCustodyFailure(int hop) {
  SuspectEntry& s = suspicion_[hop];
  ++s.failures;
  if (s.failures >= params_->suspicionThreshold) {
    const sim::SimTime now = world_.sim().now();
    // Count only fresh verdicts; failures while already suspect (in-flight
    // custody rounds draining) just extend the existing one.
    if (now >= s.until) {
      ++counters_.suspicionsRaised;
      if (trace::Recorder* t = world_.trace()) {
        t->record(trace::EventType::kSuspicion, self_, hop, -1, -1,
                  static_cast<std::uint16_t>(s.failures));
      }
    }
    s.until = now + params_->suspicionTtl;
  }
}

void GlrAgent::noteCustodySuccess(int hop) {
  // An accepted custody ack is live evidence of honest relaying: drop the
  // score and any active verdict. A blackhole never produces one, so its
  // verdict only lapses by TTL; a greyhole must keep re-earning suspicion,
  // which is the price of its partial acking.
  suspicion_.erase(hop);
}

void GlrAgent::attemptRecovery(dtn::Message& m) {
  // Bounded spray fallback: clone the copy to up to recoveryFanout
  // non-suspect neighbors WITHOUT custody — this node keeps the original
  // (and custody) in its Store, the clones resume normal custody chains at
  // their recipients. Bypasses the custody window deliberately: the window
  // is flow control for the chain that is failing. Fanout, per-copy
  // cooldown and the duplicate merge at receivers bound the replication.
  ++counters_.recoveryActivations;
  m.lastRecoveryAt = world_.sim().now();
  m.deliveryFailures = 0;
  int fanout = params_->recoveryFanout;
  for (const int id : neighbors_.currentNeighbors()) {  // sorted: stable order
    if (fanout <= 0) break;
    if (id == m.dstNode) continue;  // the direct-delivery path handles it
    if (isSuspect(id)) {
      ++counters_.suspectSkips;
      continue;
    }
    dtn::Message clone = m;
    clone.facePrevHop = self_;
    net::Packet packet;
    packet.kind = kGlrDataKind;
    packet.bytes = clone.payloadBytes + params_->dataHeaderBytes;
    packet.payload = net::Payload::of(std::move(clone));
    if (world_.macOf(self_).send(std::move(packet), id)) {
      ++counters_.recoverySprays;
      ++counters_.dataSent;
      if (trace::Recorder* t = world_.trace()) {
        t->record(trace::EventType::kSend, self_, id, m.id.src, m.id.seq,
                  static_cast<std::uint16_t>(m.hops),
                  static_cast<std::uint8_t>(m.flag));
      }
      --fanout;
    } else {
      ++counters_.sendRejects;
    }
  }
}

bool GlrAgent::sendCopy(const dtn::CopyKey& key, int nextHop) {
  dtn::Message* m = buffer_.findInStore(key);
  if (m == nullptr) return false;
  // Custody flow control: bound the copies awaiting acknowledgement so the
  // interface queue cannot be flooded by one route check.
  if (params_->custodyTransfer && buffer_.cacheSize() >= custodyWindowNow()) {
    return false;
  }
  dtn::Message outMsg = *m;
  outMsg.facePrevHop = self_;  // receiver's face reference is this node

  net::Packet packet;
  packet.kind = kGlrDataKind;
  packet.bytes = outMsg.payloadBytes + params_->dataHeaderBytes;
  packet.payload = net::Payload::of(outMsg);

  const bool queued = world_.macOf(self_).send(std::move(packet), nextHop);
  if (!queued) {
    // Interface queue full: the frame never went on air, so the copy simply
    // stays in the Store for a later check (no duplicate risk).
    ++counters_.txFailures;
    ++counters_.sendRejects;
    return false;
  }
  if (params_->custodyTransfer) {
    const sim::SimTime sentAt = world_.sim().now();
    buffer_.moveToCache(key, nextHop, sentAt);
    sim::EventDesc desc = glrDesc(ckpt::kGlrCustodyTimer, self_);
    desc.i1 = key.id.src;
    desc.u0 = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(key.id.seq));
    desc.b0 = static_cast<std::uint8_t>(key.flag);
    desc.f0 = sentAt;
    world_.sim().schedule(custodyTimeoutNow(), desc, [this, key, sentAt] {
      onCustodyTimeout(key, sentAt);
    });
  } else {
    buffer_.erase(key);
  }
  ++counters_.dataSent;
  if (trace::Recorder* t = world_.trace()) {
    t->record(trace::EventType::kSend, self_, nextHop, key.id.src,
              key.id.seq, 0, static_cast<std::uint8_t>(key.flag));
  }
  return true;
}

void GlrAgent::onCustodyTimeout(const dtn::CopyKey& key, sim::SimTime sentAt) {
  // Act only if this exact custody round is still outstanding.
  if (buffer_.cacheEntrySentAt(key) != sentAt) return;
  // A withheld custody ack is the only observable signature of a blackhole
  // (it accepts the frame and stays silent), so the timeout is where
  // suspicion accrues against the chosen next hop.
  if (params_->recovery) {
    if (const auto hop = buffer_.cacheEntryNextHop(key)) {
      noteCustodyFailure(*hop);
    }
  }
  buffer_.returnToStore(key);
  ++counters_.cacheTimeouts;
  if (params_->recovery) {
    if (dtn::Message* mm = buffer_.findInStore(key)) {
      ++mm->deliveryFailures;
    }
  }
  // An unacknowledged custody transfer is the loss signal for the
  // congestion window.
  if (params_->congestionControl) onCongestionSignal();
}

void GlrAgent::onPacket(const net::Packet& packet, int fromMac) {
  if (neighbors_.handlePacket(packet, fromMac)) return;
  if (packet.kind == kGlrDataKind) {
    handleData(packet, fromMac);
  } else if (packet.kind == kGlrAckKind) {
    handleAck(packet, fromMac);
  }
}

void GlrAgent::handleData(const net::Packet& packet, int fromMac) {
  const auto* pm = packet.payload.get<dtn::Message>();
  if (pm == nullptr) return;
  dtn::Message m = *pm;
  m.hops += 1;
  ++counters_.dataReceived;

  // Adversarial behavior applies only to the relay path: a misbehaving node
  // still receives its own traffic (and originates normally). A blackhole
  // stays silent — no ack, so the sender's custody timeout fires and feeds
  // suspicion. A selfish node refuses politely with a NACK; the refusal is
  // counted by the AdversaryModel, not in custodyRefusalsSent, so the
  // honest-pressure counter keeps its zero-when-off meaning.
  if (m.dstNode != self_) {
    if (net::AdversaryModel* adv = world_.adversary()) {
      switch (adv->onRelayData(self_)) {
        case net::AdversaryModel::RelayDecision::kAccept:
          break;
        case net::AdversaryModel::RelayDecision::kDrop:
          return;
        case net::AdversaryModel::RelayDecision::kRefuse:
          if (params_->custodyTransfer) {
            sendCustodyAck(m.key(), fromMac, 0, /*accepted=*/false);
          }
          return;
      }
    }
  }

  // Buffer-pressure custody refusal: at or above the watermark this node
  // declines new custody (NACK — the sender keeps its copy and backs off)
  // instead of accepting and evicting copies it already holds custody of.
  // Final delivery and fork merges are always accepted: they free storage.
  if (params_->custodyTransfer && params_->custodyWatermark > 0 &&
      m.dstNode != self_ && !deliveredHere_.contains(m.id) &&
      !buffer_.contains(m.key()) &&
      buffer_.size() >= params_->custodyWatermark) {
    ++counters_.custodyRefusalsSent;
    if (trace::Recorder* t = world_.trace()) {
      t->record(trace::EventType::kCustodyRefuse, self_, fromMac, m.id.src,
                m.id.seq, 0, static_cast<std::uint8_t>(m.flag));
    }
    sendCustodyAck(m.key(), fromMac, 0, /*accepted=*/false);
    return;
  }

  // Custody acknowledgement back to the sender — also for duplicates and
  // final delivery, so the sender clears its Cache either way.
  if (params_->custodyTransfer) {
    sendCustodyAck(m.key(), fromMac, 0);
  }

  // Location diffusion from the header.
  if (m.destLocKnown) {
    locations_.update(m.dstNode, m.destLoc, m.destLocTime);
  }

  if (m.dstNode == self_) {
    if (deliveredHere_.insert(m.id).second) {
      ++counters_.deliveredHere;
      if (metrics_ != nullptr) {
        metrics_->onDelivered(m, world_.sim().now(), m.hops);
      }
    }
    // Delivered branches of the same message still buffered here (we might
    // have been a relay for them) are pointless now; drop them.
    buffer_.eraseAllBranches(m.id);
    return;
  }

  // Dropping a duplicate is safe only when this node itself still holds an
  // instance (or is the destination): the custody ack then merges the fork
  // without ever deleting the last live copy.
  if (deliveredHere_.contains(m.id) || buffer_.contains(m.key())) {
    ++counters_.duplicatesDropped;
    return;
  }
  // Holder-local retry state restarts at each hop; the face cooldown
  // deliberately travels with the copy (cleared only by greedy progress).
  m.stuckCount = 0;
  m.waitChecks = 0;
  m.retryBackoff = 1;
  m.deliveryFailures = 0;
  m.lastRecoveryAt = -1e18;
  buffer_.addToStore(std::move(m));
}

void GlrAgent::handleAck(const net::Packet& packet, int fromMac) {
  const auto* ack = packet.payload.get<CustodyAck>();
  if (ack == nullptr) return;
  if (!ack->accepted) {
    // Custody refused: reclaim the copy immediately (no need to wait for
    // the cache timeout) and back it off exponentially so a saturated next
    // hop is not hammered every check. A refusal is also a congestion
    // signal for the AIMD window.
    ++counters_.custodyRefusalsReceived;
    if (params_->recovery) noteCustodyFailure(fromMac);
    if (buffer_.returnToStore(ack->key)) {
      if (dtn::Message* m = buffer_.findInStore(ack->key)) {
        m->waitChecks = m->retryBackoff;
        m->retryBackoff = std::min(2 * m->retryBackoff, 8);
        if (params_->recovery) ++m->deliveryFailures;
      }
    }
    if (params_->congestionControl) onCongestionSignal();
    return;
  }
  // RTT sample must be read before the cache entry is consumed.
  std::optional<sim::SimTime> sentAt;
  if (params_->congestionControl) {
    sentAt = buffer_.cacheEntrySentAt(ack->key);
  }
  if (buffer_.removeFromCache(ack->key).has_value()) {
    ++counters_.custodyAcksReceived;
    if (params_->recovery) noteCustodySuccess(fromMac);
    if (params_->congestionControl) {
      if (sentAt.has_value()) {
        recordCustodyRtt(world_.sim().now() - *sentAt);
      }
      // Additive increase: slow start below ssthresh, then +1 per window.
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;
      } else {
        cwnd_ += 1.0 / cwnd_;
      }
    }
  }
}

void GlrAgent::onTxStatus(const net::Packet& packet, int /*dstMac*/,
                          bool success) {
  if (success || packet.kind != kGlrDataKind) return;
  ++counters_.txFailures;
  // MAC gave up (next hop moved away / collisions): reschedule the copy now
  // rather than waiting for the full cache timeout.
  if (const auto* pm = packet.payload.get<dtn::Message>()) {
    buffer_.returnToStore(pm->key());
  }
}

void GlrAgent::saveState(ckpt::Encoder& e) const {
  for (const std::uint64_t word : rng_.state()) e.u64(word);
  neighbors_.saveState(e);
  buffer_.saveState(e);
  locations_.saveState(e);
  ckpt::saveUnorderedSet(e, deliveredHere_,
                         [](ckpt::Encoder& enc, const dtn::MessageId& id) {
                           ckpt::saveMessageId(enc, id);
                         });
  ckpt::saveUnorderedMap(
      e, suspicion_,
      [](ckpt::Encoder& enc, const int id, const SuspectEntry& s) {
        enc.i32(id);
        enc.i32(s.failures);
        enc.f64(s.until);
      });
  e.u64(counters_.dataSent);
  e.u64(counters_.dataReceived);
  e.u64(counters_.duplicatesDropped);
  e.u64(counters_.custodyAcksSent);
  e.u64(counters_.custodyAcksReceived);
  e.u64(counters_.cacheTimeouts);
  e.u64(counters_.txFailures);
  e.u64(counters_.faceTransitions);
  e.u64(counters_.perturbations);
  e.u64(counters_.deliveredHere);
  e.u64(counters_.custodyRefusalsSent);
  e.u64(counters_.custodyRefusalsReceived);
  e.u64(counters_.sendRejects);
  e.u64(counters_.suspicionsRaised);
  e.u64(counters_.suspectSkips);
  e.u64(counters_.recoveryActivations);
  e.u64(counters_.recoverySprays);
  e.i32(nextSeq_);
  e.boolean(checkQueued_);
  e.f64(cwnd_);
  e.f64(ssthresh_);
  e.f64(srtt_);
  e.f64(rttvar_);
  e.boolean(haveRtt_);
}

void GlrAgent::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  neighbors_.restoreState(d);
  buffer_.restoreState(d);
  locations_.restoreState(d);
  ckpt::loadUnorderedSet(d, deliveredHere_, [](ckpt::Decoder& dec) {
    return ckpt::loadMessageId(dec);
  });
  ckpt::loadUnorderedMap(d, suspicion_, [](ckpt::Decoder& dec) {
    const int id = dec.i32();
    SuspectEntry s;
    s.failures = dec.i32();
    s.until = dec.f64();
    return std::pair<int, SuspectEntry>{id, s};
  });
  counters_.dataSent = d.u64();
  counters_.dataReceived = d.u64();
  counters_.duplicatesDropped = d.u64();
  counters_.custodyAcksSent = d.u64();
  counters_.custodyAcksReceived = d.u64();
  counters_.cacheTimeouts = d.u64();
  counters_.txFailures = d.u64();
  counters_.faceTransitions = d.u64();
  counters_.perturbations = d.u64();
  counters_.deliveredHere = d.u64();
  counters_.custodyRefusalsSent = d.u64();
  counters_.custodyRefusalsReceived = d.u64();
  counters_.sendRejects = d.u64();
  counters_.suspicionsRaised = d.u64();
  counters_.suspectSkips = d.u64();
  counters_.recoveryActivations = d.u64();
  counters_.recoverySprays = d.u64();
  nextSeq_ = d.i32();
  checkQueued_ = d.boolean();
  cwnd_ = d.f64();
  ssthresh_ = d.f64();
  srtt_ = d.f64();
  rttvar_ = d.f64();
  haveRtt_ = d.boolean();
}

void GlrAgent::restoreEvent(const sim::EventKey& key,
                            const sim::EventDesc& desc) {
  switch (desc.kind) {
    case ckpt::kHello:
      neighbors_.restoreHelloEvent(key);
      return;
    case ckpt::kGlrPeriodicCheck:
      world_.sim().scheduleKeyed(key, desc, [this] { periodicCheck(); });
      return;
    case ckpt::kGlrQueuedCheck:
      world_.sim().scheduleKeyed(key, desc, [this] { onQueuedCheck(); });
      return;
    case ckpt::kGlrAckRetry: {
      if (desc.b0 > 3) {
        throw std::runtime_error{"GlrAgent: ack-retry event bad tree flag"};
      }
      dtn::CopyKey ackKey;
      ackKey.id = {static_cast<int>(desc.u0 >> 32),
                   static_cast<int>(desc.u0 & 0xffffffffu)};
      ackKey.flag = static_cast<dtn::TreeFlag>(desc.b0);
      const int to = desc.i1;
      const int attempt = static_cast<int>(desc.u1);
      const bool accepted = desc.b1 != 0;
      world_.sim().scheduleKeyed(key, desc,
                                 [this, ackKey, to, attempt, accepted] {
                                   sendCustodyAck(ackKey, to, attempt,
                                                  accepted);
                                 });
      return;
    }
    case ckpt::kGlrCustodyTimer: {
      if (desc.b0 > 3) {
        throw std::runtime_error{"GlrAgent: custody timer bad tree flag"};
      }
      dtn::CopyKey copyKey;
      copyKey.id = {desc.i1, static_cast<int>(desc.u0)};
      copyKey.flag = static_cast<dtn::TreeFlag>(desc.b0);
      const sim::SimTime sentAt = desc.f0;
      world_.sim().scheduleKeyed(key, desc, [this, copyKey, sentAt] {
        onCustodyTimeout(copyKey, sentAt);
      });
      return;
    }
    default:
      throw std::runtime_error{
          "GlrAgent: cannot restore event kind " +
          std::to_string(static_cast<int>(desc.kind))};
  }
}

}  // namespace glr::core
