#pragma once
/// \file sketch.hpp
/// Online statistics with a hard memory bound: a mergeable t-digest-style
/// quantile sketch and a streaming central-moment accumulator.
///
/// Million-message runs cannot keep per-message latency vectors in RAM, so
/// MetricsCollector feeds every first-delivery latency into these instead:
/// the sketch answers quantile queries (p50/p90/p99 in ScenarioResult) from
/// O(compression) centroids regardless of sample count, and Moments keeps
/// count/mean/variance/skewness/kurtosis plus min/max in O(1) space.
///
/// Determinism contract (the PR-3 sweep invariant): both structures are
/// pure functions of their add()/merge() call sequence — no randomness, no
/// wall-clock, no allocation-order dependence — so a scenario that feeds
/// them in simulator event order produces bit-identical sketches on any
/// worker thread of a sweep. Merging is deterministic in merge order;
/// like every floating-point reduction here, it is associative only up to
/// rounding (test_stats_sketch.cpp pins the error bound).

#include <cstddef>
#include <vector>

namespace glr::ckpt {
class Encoder;
class Decoder;
}

namespace glr::stats {

/// Streaming central moments (Welford/Pébay updates): count, mean, M2-M4,
/// min/max. merge() combines two accumulators exactly as if the right-hand
/// samples had been added after the left-hand ones (up to FP rounding).
class Moments {
 public:
  void add(double x);
  void merge(const Moments& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Fisher skewness g1; 0 for degenerate distributions (n < 3 or var 0).
  [[nodiscard]] double skewness() const;
  /// Excess kurtosis g2; 0 for degenerate distributions (n < 4 or var 0).
  [[nodiscard]] double kurtosisExcess() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Checkpoint support: bit-exact accumulator state round-trip.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mergeable quantile sketch after Dunning's merging t-digest: values are
/// buffered, then sort-merged into weighted centroids whose size is bounded
/// by the k1 scale function, so resolution concentrates at the tails. With
/// compression δ the sketch holds at most ~2δ centroids forever — the
/// memory bound MetricsCollector relies on at 1M+ messages.
///
/// Small inputs stay exact: until the first compression every sample is its
/// own centroid, and quantile() interpolates order statistics (midpoint
/// convention), so n < buffer-capacity queries return the same answer as a
/// sorted vector. All storage is reserved up front in the constructor; adds
/// and compressions never allocate afterwards (hot-path pin).
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t compression = 200);

  void add(double x);
  /// Folds `other` (centroids and pending buffer) into this sketch.
  void merge(const QuantileSketch& other);

  /// Quantile estimate for q in [0, 1] (clamped); 0 for an empty sketch.
  /// Exact while the sketch has never compressed (e.g. n < 5 corpora).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Live centroids (post-flush); bounded by maxCentroids() forever.
  [[nodiscard]] std::size_t centroidCount() const;
  [[nodiscard]] std::size_t maxCentroids() const { return centroidCap_; }

  /// Checkpoint support: serializes the *raw* centroid list and pending
  /// buffer without flushing, so the restored sketch is in the exact
  /// in-memory state of the snapshotted one (flushing here would change
  /// when the next compression happens and diverge from the golden run).
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  /// Sorts the pending buffer and k1-compresses it with the existing
  /// centroids into `scratch_`, then swaps. Mutable so quantile() const can
  /// settle pending values; the visible statistics are unchanged.
  void flush() const;

  std::size_t compression_;
  std::size_t centroidCap_;
  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<Centroid> centroids_;  // sorted by mean
  mutable std::vector<double> buffer_;       // pending unsorted samples
  mutable std::vector<Centroid> scratch_;    // compression workspace
};

}  // namespace glr::stats
