#include "stats/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "checkpoint/codec.hpp"

namespace glr::stats {

void Moments::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Pébay one-pass update for central moments up to order 4.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double deltaN = delta / n;
  const double deltaN2 = deltaN * deltaN;
  const double term1 = delta * deltaN * n1;
  mean_ += deltaN;
  m4_ += term1 * deltaN2 * (n * n - 3.0 * n + 3.0) + 6.0 * deltaN2 * m2_ -
         4.0 * deltaN * m3_;
  m3_ += term1 * deltaN * (n - 2.0) - 3.0 * deltaN * m2_;
  m2_ += term1;
}

void Moments::merge(const Moments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = mean_ + delta * nb / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Moments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Moments::stddev() const { return std::sqrt(variance()); }

double Moments::skewness() const {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double Moments::kurtosisExcess() const {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

namespace {

// k1 scale function of the merging t-digest: k(q) = δ/2π · asin(2q−1).
// A centroid may absorb neighbours while k(qRight) − k(qLeft) ≤ 1, which
// caps centroid weight near the median and forces singleton centroids at
// the extreme tails (where quantile accuracy matters most).
double k1(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * std::numbers::pi) * std::asin(2.0 * q - 1.0);
}

}  // namespace

QuantileSketch::QuantileSketch(std::size_t compression)
    : compression_(std::max<std::size_t>(compression, 20)),
      // The k1 merge provably leaves at most ceil(δ·π/2)+1 centroids; round
      // up generously so compression never reallocates.
      centroidCap_(2 * compression_ + 8) {
  centroids_.reserve(centroidCap_);
  buffer_.reserve(4 * compression_);
  scratch_.reserve(centroidCap_);
}

void QuantileSketch::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  buffer_.push_back(x);
  if (buffer_.size() >= buffer_.capacity()) flush();
}

void QuantileSketch::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // Merge the sorted buffer with the sorted centroid list, compressing on
  // the fly: a running centroid absorbs the next point while the k1 bound
  // allows it, otherwise it is emitted and a new one starts.
  scratch_.clear();
  const double total = static_cast<double>(n_);
  double wSoFar = 0.0;  // weight fully emitted so far
  Centroid cur{0.0, 0.0};
  double curSum = 0.0;  // weighted sum backing cur.mean (precision)

  std::size_t ci = 0;
  std::size_t bi = 0;
  auto take = [&]() -> Centroid {
    if (ci < centroids_.size() &&
        (bi >= buffer_.size() || centroids_[ci].mean <= buffer_[bi])) {
      return centroids_[ci++];
    }
    return Centroid{buffer_[bi++], 1.0};
  };

  const std::size_t pieces = centroids_.size() + buffer_.size();
  for (std::size_t i = 0; i < pieces; ++i) {
    const Centroid next = take();
    if (cur.weight == 0.0) {
      cur = next;
      curSum = next.mean * next.weight;
      continue;
    }
    const double qLeft = wSoFar / total;
    const double qRight = (wSoFar + cur.weight + next.weight) / total;
    if (k1(qRight, static_cast<double>(compression_)) -
            k1(qLeft, static_cast<double>(compression_)) <=
        1.0) {
      curSum += next.mean * next.weight;
      cur.weight += next.weight;
      cur.mean = curSum / cur.weight;
    } else {
      scratch_.push_back(cur);
      wSoFar += cur.weight;
      cur = next;
      curSum = next.mean * next.weight;
    }
  }
  if (cur.weight > 0.0) scratch_.push_back(cur);

  centroids_.swap(scratch_);
  buffer_.clear();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  other.flush();
  // Replay the other sketch's centroids as weighted points: settle our own
  // pending buffer first, then splice the centroid lists and re-compress.
  flush();
  n_ += other.n_;
  // Merge two sorted centroid runs into scratch_, then compress via the
  // buffer-free path: move the merged run into centroids_ and let a final
  // flush() pass (with an empty buffer) leave it as-is — compression
  // happens lazily on the next flush. To bound memory now, compress
  // eagerly when the combined run exceeds capacity.
  scratch_.clear();
  std::merge(centroids_.begin(), centroids_.end(), other.centroids_.begin(),
             other.centroids_.end(), std::back_inserter(scratch_),
             [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
  centroids_.swap(scratch_);
  if (centroids_.size() > centroidCap_ / 2) {
    // Re-compress the merged run in place using the same k1 pass.
    scratch_.clear();
    const double total = static_cast<double>(n_);
    double wSoFar = 0.0;
    Centroid cur{0.0, 0.0};
    double curSum = 0.0;
    for (const Centroid& next : centroids_) {
      if (cur.weight == 0.0) {
        cur = next;
        curSum = next.mean * next.weight;
        continue;
      }
      const double qLeft = wSoFar / total;
      const double qRight = (wSoFar + cur.weight + next.weight) / total;
      if (k1(qRight, static_cast<double>(compression_)) -
              k1(qLeft, static_cast<double>(compression_)) <=
          1.0) {
        curSum += next.mean * next.weight;
        cur.weight += next.weight;
        cur.mean = curSum / cur.weight;
      } else {
        scratch_.push_back(cur);
        wSoFar += cur.weight;
        cur = next;
        curSum = next.mean * next.weight;
      }
    }
    if (cur.weight > 0.0) scratch_.push_back(cur);
    centroids_.swap(scratch_);
  }
}

std::size_t QuantileSketch::centroidCount() const {
  flush();
  return centroids_.size();
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  flush();
  if (centroids_.size() == 1) return centroids_[0].mean;

  // Interpolate over centroid midpoints: centroid i covers cumulative
  // weight (wBefore + weight/2), the standard t-digest convention. Results
  // are exact order-statistic interpolation while every centroid is a
  // singleton (pre-compression).
  const double total = static_cast<double>(n_);
  const double target = q * total;

  double cum = 0.0;  // weight strictly before current centroid
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cum + centroids_[i].weight / 2.0;
    if (target < mid || i + 1 == centroids_.size()) {
      if (i == 0 && target < mid) {
        // Below the first midpoint: interpolate from the true minimum.
        const double frac = mid > 0.0 ? std::clamp(target / mid, 0.0, 1.0) : 1.0;
        return min_ + frac * (centroids_[0].mean - min_);
      }
      if (i + 1 == centroids_.size() && target >= mid) {
        // Above the last midpoint: interpolate toward the true maximum.
        const double span = total - mid;
        const double frac =
            span > 0.0 ? std::clamp((target - mid) / span, 0.0, 1.0) : 0.0;
        return centroids_[i].mean + frac * (max_ - centroids_[i].mean);
      }
      const double prevMid = cum - centroids_[i - 1].weight / 2.0;
      const double span = mid - prevMid;
      const double frac =
          span > 0.0 ? std::clamp((target - prevMid) / span, 0.0, 1.0) : 0.0;
      return centroids_[i - 1].mean +
             frac * (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cum += centroids_[i].weight;
  }
  return max_;  // unreachable; loop always returns on the last centroid
}

void Moments::saveState(ckpt::Encoder& e) const {
  e.size(n_);
  e.f64(mean_);
  e.f64(m2_);
  e.f64(m3_);
  e.f64(m4_);
  e.f64(min_);
  e.f64(max_);
}

void Moments::restoreState(ckpt::Decoder& d) {
  // u64, not size(): observation counts can dwarf the section's byte length.
  n_ = static_cast<std::size_t>(d.u64());
  mean_ = d.f64();
  m2_ = d.f64();
  m3_ = d.f64();
  m4_ = d.f64();
  min_ = d.f64();
  max_ = d.f64();
}

void QuantileSketch::saveState(ckpt::Encoder& e) const {
  e.size(compression_);
  e.size(n_);
  e.f64(min_);
  e.f64(max_);
  e.size(centroids_.size());
  for (const Centroid& c : centroids_) {
    e.f64(c.mean);
    e.f64(c.weight);
  }
  e.size(buffer_.size());
  for (const double v : buffer_) e.f64(v);
}

void QuantileSketch::restoreState(ckpt::Decoder& d) {
  const std::size_t compression = d.size();
  if (compression != compression_) {
    d.fail("quantile sketch compression mismatch (snapshot " +
           std::to_string(compression) + ", live " +
           std::to_string(compression_) + ")");
  }
  n_ = static_cast<std::size_t>(d.u64());
  min_ = d.f64();
  max_ = d.f64();
  const std::size_t nCentroids = d.checkedSize(d.u64(), 16);
  centroids_.clear();
  centroids_.reserve(nCentroids);
  for (std::size_t i = 0; i < nCentroids; ++i) {
    Centroid c;
    c.mean = d.f64();
    c.weight = d.f64();
    centroids_.push_back(c);
  }
  const std::size_t nBuffered = d.checkedSize(d.u64(), 8);
  buffer_.clear();
  buffer_.reserve(nBuffered);
  for (std::size_t i = 0; i < nBuffered; ++i) buffer_.push_back(d.f64());
}

}  // namespace glr::stats
