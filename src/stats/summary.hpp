#pragma once
/// \file summary.hpp
/// Summary statistics and Student-t confidence intervals.
///
/// The paper reports every number as the mean of 10 independent runs with a
/// 90% confidence interval; this module provides exactly that estimator so
/// benches can print `mean ± halfwidth` rows in the paper's format.
///
/// Thread-safety invariant: nothing here is synchronized, and nothing here
/// may be fed from inside sweep worker threads. Parallel sweeps
/// (experiment::SweepRunner) have workers write each ScenarioResult into
/// its own cell slot by index; Summary/meanCI consume the fully
/// materialized, index-ordered results on the calling thread *after* the
/// pool joins. That ordering is what keeps every printed `mean ± CI`
/// bit-identical to the serial path — floating-point accumulation is not
/// associative, so a reduction that depended on worker completion order
/// would drift run to run. If a worker ever needs local statistics, give it
/// a private Summary and combine the per-worker values after the join with
/// merge() (deterministic only if merged in a fixed order).

#include <cstddef>
#include <span>
#include <vector>

namespace glr::stats {

/// Point estimate plus symmetric confidence halfwidth (`mean ± halfwidth`).
struct ConfidenceInterval {
  double mean = 0.0;
  double halfwidth = 0.0;
  std::size_t samples = 0;

  [[nodiscard]] double lower() const { return mean - halfwidth; }
  [[nodiscard]] double upper() const { return mean + halfwidth; }
};

/// Incrementally accumulates count/mean/variance (Welford) plus min/max.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another summary into this one (parallel Welford combine).
  void merge(const Summary& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for the given confidence level
/// (e.g. 0.90) and degrees of freedom. Falls back to the normal quantile for
/// df > 120.
[[nodiscard]] double studentTCritical(double confidence, std::size_t df);

/// Mean with two-sided Student-t confidence interval at `confidence`
/// (defaults to the paper's 90%). One sample yields a zero halfwidth.
[[nodiscard]] ConfidenceInterval meanCI(std::span<const double> xs,
                                        double confidence = 0.90);

/// Convenience overload.
[[nodiscard]] ConfidenceInterval meanCI(const std::vector<double>& xs,
                                        double confidence = 0.90);

}  // namespace glr::stats
