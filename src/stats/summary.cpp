#include "stats/summary.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace glr::stats {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

// Two-sided critical values t_{1-(1-c)/2, df}. Indexed by df-1 for df 1..30.
constexpr std::array<double, 30> kT90 = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr std::array<double, 30> kT95 = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
constexpr std::array<double, 30> kT99 = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};

// Values for df in {40, 60, 120, inf} used for interpolation beyond 30.
struct TailRow {
  double df;
  double t90, t95, t99;
};
constexpr std::array<TailRow, 4> kTail = {{{40.0, 1.684, 2.021, 2.704},
                                           {60.0, 1.671, 2.000, 2.660},
                                           {120.0, 1.658, 1.980, 2.617},
                                           {1e18, 1.645, 1.960, 2.576}}};

double pickLevel(const TailRow& row, double confidence) {
  if (confidence <= 0.90) return row.t90;
  if (confidence <= 0.95) return row.t95;
  return row.t99;
}

}  // namespace

double studentTCritical(double confidence, std::size_t df) {
  if (df == 0) throw std::invalid_argument{"studentTCritical: df must be > 0"};
  const std::array<double, 30>* table = nullptr;
  if (confidence <= 0.90) {
    table = &kT90;
  } else if (confidence <= 0.95) {
    table = &kT95;
  } else {
    table = &kT99;
  }
  if (df <= 30) return (*table)[df - 1];
  const double dfd = static_cast<double>(df);
  // Linear interpolation in 1/df between tail rows (standard table practice).
  double prevDf = 30.0;
  double prevT = (*table)[29];
  for (const TailRow& row : kTail) {
    const double t = pickLevel(row, confidence);
    if (dfd <= row.df) {
      const double w = (1.0 / prevDf - 1.0 / dfd) / (1.0 / prevDf - 1.0 / row.df);
      return prevT + w * (t - prevT);
    }
    prevDf = row.df;
    prevT = t;
  }
  return pickLevel(kTail.back(), confidence);
}

ConfidenceInterval meanCI(std::span<const double> xs, double confidence) {
  ConfidenceInterval ci;
  Summary s;
  for (double x : xs) s.add(x);
  ci.samples = s.count();
  ci.mean = s.mean();
  if (s.count() >= 2) {
    const double se = s.stddev() / std::sqrt(static_cast<double>(s.count()));
    ci.halfwidth = studentTCritical(confidence, s.count() - 1) * se;
  }
  return ci;
}

ConfidenceInterval meanCI(const std::vector<double>& xs, double confidence) {
  return meanCI(std::span<const double>{xs.data(), xs.size()}, confidence);
}

}  // namespace glr::stats
