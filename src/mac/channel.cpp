#include "mac/channel.hpp"

#include <algorithm>
#include <stdexcept>

#include "mac/mac.hpp"

namespace glr::mac {

namespace {
/// Power ratio (linear) a signal must have over each interferer to survive
/// a collision (capture effect); 10 == 10 dB.
constexpr double kCaptureRatio = 10.0;
/// How long finished transmissions are kept for interference accounting.
constexpr double kHistoryKeep = 0.05;  // seconds; >> longest frame
}  // namespace

Channel::Channel(sim::Simulator& sim, const phy::PropagationModel& model,
                 phy::RadioThresholds thresholds, double txPowerW,
                 PositionFn positionOf)
    : sim_(sim),
      model_(model),
      thresholds_(thresholds),
      txPowerW_(txPowerW),
      positionOf_(std::move(positionOf)) {
  if (!positionOf_) {
    throw std::invalid_argument{"Channel: positionOf callback required"};
  }
}

void Channel::attach(Mac* mac) {
  if (mac == nullptr) throw std::invalid_argument{"Channel::attach: null"};
  const auto id = static_cast<std::size_t>(mac->id());
  if (macs_.size() <= id) macs_.resize(id + 1, nullptr);
  macs_[id] = mac;
}

double Channel::powerAt(const ActiveTx& tx, geom::Point2 rxPos) const {
  return model_.rxPower(txPowerW_, geom::dist(tx.senderPos, rxPos));
}

void Channel::startTransmission(int sender, Frame frame, double duration) {
  ActiveTx tx;
  tx.sender = sender;
  tx.frame = std::move(frame);
  tx.start = sim_.now();
  tx.end = sim_.now() + duration;
  tx.senderPos = positionOf_(sender);
  const std::uint64_t txId = nextTxId_++;
  history_.push_back(std::move(tx));
  ++stats_.framesSent;
  stats_.airTimeSeconds += duration;
  sim_.schedule(duration, [this, txId] { finishTransmission(txId); });
}

bool Channel::mediumBusy(int nodeId) const {
  const auto id = static_cast<std::size_t>(nodeId);
  if (id < macs_.size() && macs_[id] != nullptr &&
      macs_[id]->transmittedDuring(sim_.now(), sim_.now())) {
    return true;
  }
  const geom::Point2 pos = positionOf_(nodeId);
  for (const ActiveTx& tx : history_) {
    if (tx.end <= sim_.now() || tx.sender == nodeId) continue;
    if (powerAt(tx, pos) >= thresholds_.csThresholdW) return true;
  }
  return false;
}

sim::SimTime Channel::nextIdleHint(int nodeId) const {
  const geom::Point2 pos = positionOf_(nodeId);
  sim::SimTime t = sim_.now();
  for (const ActiveTx& tx : history_) {
    if (tx.end <= sim_.now() || tx.sender == nodeId) continue;
    if (powerAt(tx, pos) >= thresholds_.csThresholdW) t = std::max(t, tx.end);
  }
  return t;
}

void Channel::finishTransmission(std::uint64_t txId) {
  if (txId < historyBaseId_) return;  // already pruned (should not happen)
  const ActiveTx& tx = history_[txId - historyBaseId_];

  for (std::size_t v = 0; v < macs_.size(); ++v) {
    Mac* mac = macs_[v];
    if (mac == nullptr || static_cast<int>(v) == tx.sender) continue;
    const bool isBroadcast = tx.frame.dst == net::kBroadcast;
    if (!isBroadcast && tx.frame.dst != static_cast<int>(v)) continue;

    const geom::Point2 rxPos = positionOf_(static_cast<int>(v));
    const double signal = powerAt(tx, rxPos);
    if (signal < thresholds_.rxThresholdW) continue;  // out of range

    if (mac->transmittedDuring(tx.start, tx.end)) {
      ++stats_.rxWhileTx;
      continue;
    }

    bool collided = false;
    for (const ActiveTx& other : history_) {
      if (other.sender == tx.sender || other.sender == static_cast<int>(v)) {
        continue;
      }
      if (other.start >= tx.end || tx.start >= other.end) continue;
      const double p = powerAt(other, rxPos);
      if (p >= thresholds_.csThresholdW && p * kCaptureRatio > signal) {
        collided = true;
        break;
      }
    }
    if (collided) {
      ++stats_.collisions;
      continue;
    }
    ++stats_.framesDelivered;
    mac->onFrameReceived(tx.frame);
  }

  while (!history_.empty() &&
         history_.front().end < sim_.now() - kHistoryKeep) {
    history_.pop_front();
    ++historyBaseId_;
  }
}

}  // namespace glr::mac
