#include "mac/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "checkpoint/event_kinds.hpp"
#include "checkpoint/payload_codec.hpp"
#include "mac/mac.hpp"

namespace glr::mac {

namespace {

sim::EventDesc txEndDesc(std::uint64_t txId) {
  sim::EventDesc d;
  d.kind = ckpt::kChannelTxEnd;
  d.u0 = txId;
  return d;
}
/// Power ratio (linear) a signal must have over each interferer to survive
/// a collision (capture effect); 10 == 10 dB.
constexpr double kCaptureRatio = 10.0;
/// How long finished transmissions are kept for interference accounting.
constexpr double kHistoryKeep = 0.05;  // seconds; >> longest frame
}  // namespace

Channel::Channel(sim::Simulator& sim, const phy::PropagationModel& model,
                 phy::RadioThresholds thresholds, double txPowerW,
                 PositionFn positionOf)
    : sim_(sim),
      model_(model),
      thresholds_(thresholds),
      txPowerW_(txPowerW),
      positionOf_(std::move(positionOf)) {
  if (!positionOf_) {
    throw std::invalid_argument{"Channel: positionOf callback required"};
  }
  csMaxRangeShared_ = model_.maxRangeFor(txPowerW_, thresholds_.csThresholdW);
}

void Channel::attach(Mac* mac) {
  if (mac == nullptr) throw std::invalid_argument{"Channel::attach: null"};
  const auto id = static_cast<std::size_t>(mac->id());
  if (macs_.size() <= id) macs_.resize(id + 1, nullptr);
  macs_[id] = mac;
  // A node joined: any receiver-index snapshot is incomplete now.
  indexGrid_.reset();
}

void Channel::enableReceiverIndex(double maxRange, double maxSpeed,
                                  double rebuildInterval, IndexMode mode) {
  if (!(maxRange > 0.0) || !(maxSpeed >= 0.0) || !(rebuildInterval > 0.0)) {
    throw std::invalid_argument{"Channel::enableReceiverIndex: bad params"};
  }
  indexEnabled_ = true;
  indexMode_ = mode;
  // Tiny absolute pad so FP rounding at the exact range boundary can never
  // exclude a node the threshold check would accept.
  indexMaxRange_ = maxRange + 1e-6;
  indexMaxSpeed_ = maxSpeed;
  indexSlack_ = maxSpeed * rebuildInterval;
  indexRebuildInterval_ = rebuildInterval;
  effectiveQueryRange_ = std::max(indexMaxRange_, maxNodeRange_ + 1e-6);
  indexGrid_.reset();
}

void Channel::setNodeTxRange(int nodeId, double range) {
  if (nodeId < 0 || !(range > 0.0)) {
    throw std::invalid_argument{"Channel::setNodeTxRange: bad node/range"};
  }
  // rxPower is linear in transmit power for every PropagationModel we ship,
  // so scaling the shared power by (threshold at `range`) / (actual power
  // at `range`) puts the reception boundary exactly at `range`.
  const double atRange = model_.rxPower(txPowerW_, range);
  if (!(atRange > 0.0)) {
    throw std::invalid_argument{"Channel::setNodeTxRange: range unreachable"};
  }
  const auto id = static_cast<std::size_t>(nodeId);
  if (txPowerOf_.size() <= id) txPowerOf_.resize(id + 1, 0.0);
  txPowerOf_[id] = txPowerW_ * (thresholds_.rxThresholdW / atRange);
  if (csRangeOf_.size() <= id) csRangeOf_.resize(id + 1, 0.0);
  csRangeOf_[id] =
      model_.maxRangeFor(txPowerOf_[id], thresholds_.csThresholdW);
  maxNodeRange_ = std::max(maxNodeRange_, range);
  effectiveQueryRange_ = std::max(indexMaxRange_, maxNodeRange_ + 1e-6);
  indexGrid_.reset();  // candidate queries must widen to the new range
}

double Channel::txPowerFor(int nodeId) const {
  const auto id = static_cast<std::size_t>(nodeId);
  return id < txPowerOf_.size() && txPowerOf_[id] > 0.0 ? txPowerOf_[id]
                                                        : txPowerW_;
}

double Channel::csRangeFor(int nodeId) const {
  const auto id = static_cast<std::size_t>(nodeId);
  return id < csRangeOf_.size() && csRangeOf_[id] > 0.0 ? csRangeOf_[id]
                                                        : csMaxRangeShared_;
}

void Channel::buildIndex(sim::SimTime now) {
  // Bounds from the current positions (sampled in ascending id order, the
  // legacy snapshot's exact sequence). Later drift beyond this box clamps
  // into edge tiles — membership stays exact, only edge occupancy grows.
  geom::Point2 lo{0.0, 0.0};
  geom::Point2 hi{0.0, 0.0};
  refreshIds_.clear();
  refreshPos_.clear();
  for (std::size_t id = 0; id < macs_.size(); ++id) {
    if (macs_[id] == nullptr) continue;
    const geom::Point2 p = positionOf_(static_cast<int>(id));
    if (refreshIds_.empty()) {
      lo = hi = p;
    } else {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    refreshIds_.push_back(static_cast<int>(id));
    refreshPos_.push_back(p);
  }
  indexGrid_ = std::make_unique<geom::TiledSpatialGrid>(
      lo, hi, effectiveQueryRange_ + indexSlack_, macs_.size());
  for (std::size_t k = 0; k < refreshIds_.size(); ++k) {
    indexGrid_->update(refreshIds_[k], refreshPos_[k], now);
  }
  indexBuiltAt_ = now;
  tileStamp_.assign(static_cast<std::size_t>(indexGrid_->numTiles()), now);
  janitorCursor_ = 0;
  janitorCredit_ = 0.0;
  janitorLastAt_ = now;
  janitorCycleStartAt_ = now;
  indexFloor_ = now;
}

void Channel::refreshAllRecords(sim::SimTime now) {
  for (std::size_t id = 0; id < macs_.size(); ++id) {
    if (macs_[id] == nullptr) continue;
    indexGrid_->update(static_cast<int>(id), positionOf_(static_cast<int>(id)),
                       now);
  }
  indexBuiltAt_ = now;
}

void Channel::refreshTile(int tile, sim::SimTime now) {
  refreshIds_.clear();
  indexGrid_->forEachInTile(tile, [this](int i) { refreshIds_.push_back(i); });
  const std::size_t n = refreshIds_.size();
  if (n > 0) {
    refreshPos_.resize(n);
    gatherPositions(refreshIds_.data(), n, refreshPos_.data());
    for (std::size_t k = 0; k < n; ++k) {
      indexGrid_->update(refreshIds_[k], refreshPos_[k], now);
    }
  }
  tileStamp_[static_cast<std::size_t>(tile)] = now;
}

void Channel::janitorStep(sim::SimTime now) {
  const int numTiles = indexGrid_->numTiles();
  janitorCredit_ +=
      numTiles * (now - janitorLastAt_) / indexRebuildInterval_;
  janitorLastAt_ = now;
  // More than one full sweep owed collapses into one: re-sampling a tile
  // twice at the same instant is pure waste.
  janitorCredit_ = std::min(janitorCredit_, static_cast<double>(numTiles));
  int budget = static_cast<int>(janitorCredit_);
  janitorCredit_ -= budget;
  while (budget-- > 0) {
    if (janitorCursor_ == 0) janitorCycleStartAt_ = now;
    refreshTile(janitorCursor_, now);
    if (++janitorCursor_ == numTiles) {
      janitorCursor_ = 0;
      // Every live record has been re-sampled since the sweep began: a
      // node that moved tiles mid-sweep was re-recorded by the refresh
      // that moved it, so no record predates the sweep's start.
      indexFloor_ = janitorCycleStartAt_;
    }
  }
}

const std::vector<int>& Channel::receiverCandidates(geom::Point2 center) {
  const double queryRange = effectiveQueryRange_;
  const sim::SimTime now = sim_.now();
  if (!indexGrid_) buildIndex(now);
  candidateScratch_.clear();
  if (indexMode_ == IndexMode::kSnapshot) {
    if (now - indexBuiltAt_ > indexRebuildInterval_) refreshAllRecords(now);
    indexGrid_->queryRadius(center, queryRange + indexSlack_,
                            candidateScratch_);
  } else {
    // Keep the staleness floor moving, then freshen the tiles this scan
    // will visit (activity-driven: a region with traffic stays fresh and
    // pays tight pads; idle regions are only touched by the janitor).
    janitorStep(now);
    const double window =
        queryRange + indexMaxSpeed_ * (now - indexFloor_) + 1e-6;
    indexGrid_->forEachTileInRect(
        center.x - window, center.y - window, center.x + window,
        center.y + window, [&](int tile) {
          if (now - tileStamp_[static_cast<std::size_t>(tile)] >
              indexRebuildInterval_) {
            refreshTile(tile, now);
          }
        });
    // Collect with per-record pads. A node in true range R satisfies
    // dist(recorded, center) <= R + maxSpeed * (now - its sample time), so
    // admission on recorded positions keeps every possibly-in-range node;
    // the window above is the same bound taken at the staleness floor.
    // Refreshes relink movers before this pass; a mover relinked out of
    // the window is beyond query range by construction.
    indexGrid_->forEachTileInRect(
        center.x - window, center.y - window, center.x + window,
        center.y + window, [&](int tile) {
          indexGrid_->forEachInTile(tile, [&](int i) {
            const double reach =
                queryRange +
                indexMaxSpeed_ * (now - indexGrid_->sampleTime(i)) + 1e-6;
            if (geom::dist2(indexGrid_->recordedPos(i), center) <=
                reach * reach) {
              candidateScratch_.push_back(i);
            }
          });
        });
  }
  // Ascending ids: receivers are visited in exactly the full-scan order, so
  // enabling the index never reorders simulation events.
  std::sort(candidateScratch_.begin(), candidateScratch_.end());
  return candidateScratch_;
}

void Channel::gatherPositions(const int* ids, std::size_t n,
                              geom::Point2* out) {
  if (positionBatch_) {
    positionBatch_(ids, n, out);
    return;
  }
  for (std::size_t k = 0; k < n; ++k) out[k] = positionOf_(ids[k]);
}

double Channel::powerAt(const ActiveTx& tx, geom::Point2 rxPos) const {
  return model_.rxPower(txPowerFor(tx.sender), geom::dist(tx.senderPos, rxPos));
}

void Channel::startTransmission(int sender, Frame frame, double duration) {
  ActiveTx tx;
  tx.sender = sender;
  tx.frame = std::move(frame);
  tx.start = sim_.now();
  tx.end = sim_.now() + duration;
  tx.maxEndUpTo =
      history_.empty() ? tx.end : std::max(history_.back().maxEndUpTo, tx.end);
  tx.senderPos = positionOf_(sender);
  const std::uint64_t txId = nextTxId_++;
  history_.push_back(std::move(tx));
  ++stats_.framesSent;
  stats_.airTimeSeconds += duration;
  sim_.schedule(duration, txEndDesc(txId),
                [this, txId] { finishTransmission(txId); });
}

bool Channel::mediumBusy(int nodeId) const {
  const auto id = static_cast<std::size_t>(nodeId);
  if (id < macs_.size() && macs_[id] != nullptr &&
      macs_[id]->transmittedDuring(sim_.now(), sim_.now())) {
    return true;
  }
  const geom::Point2 pos = positionOf_(nodeId);
  const sim::SimTime now = sim_.now();
  // Backward over the start-sorted ring; the prefix-max bound proves every
  // earlier entry has ended, so only the genuinely active suffix pays the
  // propagation math.
  for (std::size_t j = history_.size(); j-- > 0;) {
    const ActiveTx& tx = history_[j];
    if (tx.maxEndUpTo <= now) break;
    if (tx.end <= now || tx.sender == nodeId) continue;
    const double cs = csRangeFor(tx.sender);
    if (geom::dist2(tx.senderPos, pos) > cs * cs) continue;
    if (powerAt(tx, pos) >= thresholds_.csThresholdW) return true;
  }
  return false;
}

sim::SimTime Channel::nextIdleHint(int nodeId) const {
  const geom::Point2 pos = positionOf_(nodeId);
  sim::SimTime t = sim_.now();
  const sim::SimTime now = sim_.now();
  for (std::size_t j = history_.size(); j-- > 0;) {
    const ActiveTx& tx = history_[j];
    if (tx.maxEndUpTo <= now) break;
    if (tx.end <= now || tx.sender == nodeId) continue;
    const double cs = csRangeFor(tx.sender);
    if (geom::dist2(tx.senderPos, pos) > cs * cs) continue;
    if (powerAt(tx, pos) >= thresholds_.csThresholdW) t = std::max(t, tx.end);
  }
  return t;
}

void Channel::finishTransmission(std::uint64_t txId) {
  if (txId < historyBaseId_) return;  // already pruned (should not happen)
  // Copy the transmission's fields out of the ring up front: the delivery
  // loop below runs arbitrary agent code, and unlike the std::deque this
  // ring replaced, RingDeque growth invalidates references — a callback
  // that (now or in some future protocol) transmits synchronously must not
  // leave these dangling. The Frame copy is refcount + SSO work only.
  const int sender = history_[txId - historyBaseId_].sender;
  const sim::SimTime txStart = history_[txId - historyBaseId_].start;
  const sim::SimTime txEnd = history_[txId - historyBaseId_].end;
  const geom::Point2 senderPos = history_[txId - historyBaseId_].senderPos;
  const Frame frame = history_[txId - historyBaseId_].frame;

  // A churned sender whose radio shut off mid-frame truncated the
  // transmission: nobody decodes it (the symmetric rule to the per-receiver
  // radioUpSince check below). The frame still interferes — the history
  // scan for collisions is unaffected — it just cannot be received.
  Mac* senderMac = static_cast<std::size_t>(sender) < macs_.size()
                       ? macs_[static_cast<std::size_t>(sender)]
                       : nullptr;
  const bool senderCompleted =
      senderMac == nullptr || senderMac->radioUpSince(txStart);

  if (senderCompleted) {
    // Stage 1 — candidate ids, ascending (the exact full-scan visit order):
    // attached, not the sender, radio up for the frame's whole airtime (a
    // radio that woke mid-frame heard only a fragment).
    candIds_.clear();
    const auto consider = [this, sender, txStart](int v) {
      Mac* mac = static_cast<std::size_t>(v) < macs_.size()
                     ? macs_[static_cast<std::size_t>(v)]
                     : nullptr;
      if (mac == nullptr || v == sender) return;
      if (!mac->radioUpSince(txStart)) return;
      candIds_.push_back(v);
    };
    if (frame.dst != net::kBroadcast) {
      // Unicast: the destination is the only possible receiver.
      consider(frame.dst);
    } else if (indexEnabled_) {
      // Broadcast with the receiver index: enumerate only nodes that can
      // possibly be in range (candidates are padded for snapshot drift and
      // sorted, so decisions and event order match the full scan exactly).
      for (int v : receiverCandidates(senderPos)) consider(v);
    } else {
      for (std::size_t v = 0; v < macs_.size(); ++v) {
        consider(static_cast<int>(v));
      }
    }

    const std::size_t n = candIds_.size();
    if (n > 0) {
      // Stage 2 — gather candidate positions in one batch call, then
      // distance² and rx-power over flat arrays (one virtual dispatch for
      // the whole set).
      candPos_.resize(n);
      candDist2_.resize(n);
      candSignal_.resize(n);
      gatherPositions(candIds_.data(), n, candPos_.data());
      for (std::size_t i = 0; i < n; ++i) {
        candDist2_[i] = geom::dist2(senderPos, candPos_[i]);
      }
      model_.rxPowerFromDist2(txPowerFor(sender), candDist2_.data(),
                              candSignal_.data(), n);

      // Stage 3 — the overlap set, once per transmission instead of one
      // history scan per receiver: every entry that was on air during
      // [txStart, txEnd) from a different sender. The backward walk stops
      // at the prefix-max bound exactly like mediumBusy. Ring *indices*
      // (not references) survive a mid-delivery push_back, so the collision
      // loop re-fetches entries by index. Entries whose carrier-sense reach
      // cannot span dist(sender, other) - maxCandDist are below
      // csThresholdW at every candidate (triangle inequality: each
      // candidate sits within maxCandDist of the sender), so dropping them
      // cannot flip any collision verdict.
      double maxCandDist2 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        maxCandDist2 = std::max(maxCandDist2, candDist2_[i]);
      }
      const double maxCandDist = std::sqrt(maxCandDist2);
      overlapIdx_.clear();
      overlapPower_.clear();
      for (std::size_t j = history_.size(); j-- > 0;) {
        const ActiveTx& other = history_[j];
        if (other.maxEndUpTo <= txStart) break;
        if (other.sender == sender) continue;
        if (other.start >= txEnd || txStart >= other.end) continue;
        const double reach = csRangeFor(other.sender) + maxCandDist;
        if (geom::dist2(other.senderPos, senderPos) > reach * reach) continue;
        overlapIdx_.push_back(j);
        overlapPower_.push_back(txPowerFor(other.sender));
      }

      // Stage 4 — per-candidate decisions, in candidate (ascending id)
      // order, with checks in the same order as the old per-receiver path:
      // range, busy-transmitting, collision.
      for (std::size_t i = 0; i < n; ++i) {
        const double signal = candSignal_[i];
        if (signal < thresholds_.rxThresholdW) continue;  // out of range
        const int v = candIds_[i];
        Mac* mac = macs_[static_cast<std::size_t>(v)];
        if (mac->transmittedDuring(txStart, txEnd)) {
          ++stats_.rxWhileTx;
          continue;
        }
        bool collided = false;
        for (std::size_t k = 0; k < overlapIdx_.size(); ++k) {
          const ActiveTx& other = history_[overlapIdx_[k]];
          const int otherSender = other.sender;
          const geom::Point2 otherPos = other.senderPos;
          if (otherSender == v) continue;
          // Per-candidate prefilter: past carrier-sense reach the power
          // check below is guaranteed false — skip the propagation virtual.
          const double cs = csRangeFor(otherSender);
          if (geom::dist2(otherPos, candPos_[i]) > cs * cs) continue;
          const double p = model_.rxPower(overlapPower_[k],
                                          geom::dist(otherPos, candPos_[i]));
          if (p >= thresholds_.csThresholdW && p * kCaptureRatio > signal) {
            collided = true;
            break;
          }
        }
        if (collided) {
          ++stats_.collisions;
          continue;
        }
        if (deliveryFilter_ && !deliveryFilter_(frame, v)) {
          ++stats_.faultDrops;
          continue;
        }
        ++stats_.framesDelivered;
        mac->onFrameReceived(frame);
      }
    }
  }

  while (!history_.empty() &&
         history_.front().end < sim_.now() - kHistoryKeep) {
    history_.pop_front();
    ++historyBaseId_;
  }
}

void Channel::saveState(ckpt::Encoder& e) const {
  e.size(history_.size());
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const ActiveTx& tx = history_[i];
    e.i32(tx.sender);
    e.u8(static_cast<std::uint8_t>(tx.frame.type));
    e.i32(tx.frame.src);
    e.i32(tx.frame.dst);
    e.u64(tx.frame.seq);
    e.size(tx.frame.bytes);
    ckpt::savePacket(e, tx.frame.packet);
    e.f64(tx.start);
    e.f64(tx.end);
    e.f64(tx.maxEndUpTo);
    ckpt::savePoint(e, tx.senderPos);
  }
  e.u64(nextTxId_);
  e.u64(historyBaseId_);
  e.u64(stats_.framesSent);
  e.u64(stats_.framesDelivered);
  e.u64(stats_.collisions);
  e.u64(stats_.rxWhileTx);
  e.u64(stats_.faultDrops);
  e.f64(stats_.airTimeSeconds);
}

void Channel::restoreState(ckpt::Decoder& d) {
  history_.clear();
  const std::size_t n = d.checkedSize(d.u64(), 54);
  for (std::size_t i = 0; i < n; ++i) {
    ActiveTx tx;
    tx.sender = d.i32();
    const std::uint8_t type = d.u8();
    if (type > 1) d.fail("active transmission holds invalid frame type");
    tx.frame.type = static_cast<Frame::Type>(type);
    tx.frame.src = d.i32();
    tx.frame.dst = d.i32();
    tx.frame.seq = d.u64();
    tx.frame.bytes = static_cast<std::size_t>(d.u64());  // simulated bytes
    tx.frame.packet = ckpt::loadPacket(d);
    tx.start = d.f64();
    tx.end = d.f64();
    tx.maxEndUpTo = d.f64();
    tx.senderPos = ckpt::loadPoint(d);
    history_.push_back(std::move(tx));
  }
  nextTxId_ = d.u64();
  historyBaseId_ = d.u64();
  stats_.framesSent = d.u64();
  stats_.framesDelivered = d.u64();
  stats_.collisions = d.u64();
  stats_.rxWhileTx = d.u64();
  stats_.faultDrops = d.u64();
  stats_.airTimeSeconds = d.f64();
  // Drop the receiver index; the next candidate query rebuilds it fresh at
  // the restored clock (pure superset cache — see the header comment).
  indexGrid_.reset();
  indexBuiltAt_ = -1.0;
}

void Channel::restoreTxEndEvent(const sim::EventKey& key, std::uint64_t txId) {
  if (txId >= nextTxId_) {
    throw std::runtime_error{
        "checkpoint: tx-end event names transmission " + std::to_string(txId) +
        " but only " + std::to_string(nextTxId_) + " were ever started"};
  }
  sim_.scheduleKeyed(key, txEndDesc(txId),
                     [this, txId] { finishTransmission(txId); });
}

}  // namespace glr::mac
