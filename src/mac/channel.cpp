#include "mac/channel.hpp"

#include <algorithm>
#include <stdexcept>

#include "mac/mac.hpp"

namespace glr::mac {

namespace {
/// Power ratio (linear) a signal must have over each interferer to survive
/// a collision (capture effect); 10 == 10 dB.
constexpr double kCaptureRatio = 10.0;
/// How long finished transmissions are kept for interference accounting.
constexpr double kHistoryKeep = 0.05;  // seconds; >> longest frame
}  // namespace

Channel::Channel(sim::Simulator& sim, const phy::PropagationModel& model,
                 phy::RadioThresholds thresholds, double txPowerW,
                 PositionFn positionOf)
    : sim_(sim),
      model_(model),
      thresholds_(thresholds),
      txPowerW_(txPowerW),
      positionOf_(std::move(positionOf)) {
  if (!positionOf_) {
    throw std::invalid_argument{"Channel: positionOf callback required"};
  }
}

void Channel::attach(Mac* mac) {
  if (mac == nullptr) throw std::invalid_argument{"Channel::attach: null"};
  const auto id = static_cast<std::size_t>(mac->id());
  if (macs_.size() <= id) macs_.resize(id + 1, nullptr);
  macs_[id] = mac;
  // A node joined: any receiver-index snapshot is incomplete now.
  indexGrid_.reset();
}

void Channel::enableReceiverIndex(double maxRange, double maxSpeed,
                                  double rebuildInterval) {
  if (!(maxRange > 0.0) || !(maxSpeed >= 0.0) || !(rebuildInterval > 0.0)) {
    throw std::invalid_argument{"Channel::enableReceiverIndex: bad params"};
  }
  indexEnabled_ = true;
  // Tiny absolute pad so FP rounding at the exact range boundary can never
  // exclude a node the threshold check would accept.
  indexMaxRange_ = maxRange + 1e-6;
  indexSlack_ = maxSpeed * rebuildInterval;
  indexRebuildInterval_ = rebuildInterval;
  indexGrid_.reset();
}

void Channel::setNodeTxRange(int nodeId, double range) {
  if (nodeId < 0 || !(range > 0.0)) {
    throw std::invalid_argument{"Channel::setNodeTxRange: bad node/range"};
  }
  // rxPower is linear in transmit power for every PropagationModel we ship,
  // so scaling the shared power by (threshold at `range`) / (actual power
  // at `range`) puts the reception boundary exactly at `range`.
  const double atRange = model_.rxPower(txPowerW_, range);
  if (!(atRange > 0.0)) {
    throw std::invalid_argument{"Channel::setNodeTxRange: range unreachable"};
  }
  const auto id = static_cast<std::size_t>(nodeId);
  if (txPowerOf_.size() <= id) txPowerOf_.resize(id + 1, 0.0);
  txPowerOf_[id] = txPowerW_ * (thresholds_.rxThresholdW / atRange);
  maxNodeRange_ = std::max(maxNodeRange_, range);
  indexGrid_.reset();  // candidate queries must widen to the new range
}

double Channel::txPowerFor(int nodeId) const {
  const auto id = static_cast<std::size_t>(nodeId);
  return id < txPowerOf_.size() && txPowerOf_[id] > 0.0 ? txPowerOf_[id]
                                                        : txPowerW_;
}

const std::vector<int>& Channel::receiverCandidates(geom::Point2 center) {
  const double queryRange = std::max(indexMaxRange_, maxNodeRange_ + 1e-6);
  const sim::SimTime now = sim_.now();
  if (!indexGrid_ || now - indexBuiltAt_ > indexRebuildInterval_) {
    std::vector<geom::Point2> pts;
    pts.reserve(macs_.size());
    indexToMacId_.clear();
    for (std::size_t id = 0; id < macs_.size(); ++id) {
      if (macs_[id] == nullptr) continue;
      pts.push_back(positionOf_(static_cast<int>(id)));
      indexToMacId_.push_back(static_cast<int>(id));
    }
    indexGrid_ = std::make_unique<geom::SpatialGrid>(
        std::move(pts), queryRange + indexSlack_);
    indexBuiltAt_ = now;
  }
  candidateScratch_.clear();
  indexGrid_->queryRadius(center, queryRange + indexSlack_,
                          candidateScratch_);
  for (int& c : candidateScratch_) {
    c = indexToMacId_[static_cast<std::size_t>(c)];
  }
  // Ascending ids: receivers are visited in exactly the full-scan order, so
  // enabling the index never reorders simulation events.
  std::sort(candidateScratch_.begin(), candidateScratch_.end());
  return candidateScratch_;
}

double Channel::powerAt(const ActiveTx& tx, geom::Point2 rxPos) const {
  return model_.rxPower(txPowerFor(tx.sender), geom::dist(tx.senderPos, rxPos));
}

void Channel::startTransmission(int sender, Frame frame, double duration) {
  ActiveTx tx;
  tx.sender = sender;
  tx.frame = std::move(frame);
  tx.start = sim_.now();
  tx.end = sim_.now() + duration;
  tx.senderPos = positionOf_(sender);
  const std::uint64_t txId = nextTxId_++;
  history_.push_back(std::move(tx));
  ++stats_.framesSent;
  stats_.airTimeSeconds += duration;
  sim_.schedule(duration, [this, txId] { finishTransmission(txId); });
}

bool Channel::mediumBusy(int nodeId) const {
  const auto id = static_cast<std::size_t>(nodeId);
  if (id < macs_.size() && macs_[id] != nullptr &&
      macs_[id]->transmittedDuring(sim_.now(), sim_.now())) {
    return true;
  }
  const geom::Point2 pos = positionOf_(nodeId);
  for (const ActiveTx& tx : history_) {
    if (tx.end <= sim_.now() || tx.sender == nodeId) continue;
    if (powerAt(tx, pos) >= thresholds_.csThresholdW) return true;
  }
  return false;
}

sim::SimTime Channel::nextIdleHint(int nodeId) const {
  const geom::Point2 pos = positionOf_(nodeId);
  sim::SimTime t = sim_.now();
  for (const ActiveTx& tx : history_) {
    if (tx.end <= sim_.now() || tx.sender == nodeId) continue;
    if (powerAt(tx, pos) >= thresholds_.csThresholdW) t = std::max(t, tx.end);
  }
  return t;
}

void Channel::finishTransmission(std::uint64_t txId) {
  if (txId < historyBaseId_) return;  // already pruned (should not happen)
  const ActiveTx& tx = history_[txId - historyBaseId_];

  // A churned sender whose radio shut off mid-frame truncated the
  // transmission: nobody decodes it (the symmetric rule to the per-receiver
  // radioUpSince check below). The frame still interferes — the history
  // scan for collisions is unaffected — it just cannot be received.
  Mac* senderMac = static_cast<std::size_t>(tx.sender) < macs_.size()
                       ? macs_[static_cast<std::size_t>(tx.sender)]
                       : nullptr;
  const bool senderCompleted =
      senderMac == nullptr || senderMac->radioUpSince(tx.start);

  const auto tryDeliver = [this, &tx](int v) {
    Mac* mac = static_cast<std::size_t>(v) < macs_.size()
                   ? macs_[static_cast<std::size_t>(v)]
                   : nullptr;
    if (mac == nullptr || v == tx.sender) return;
    // Duty-cycled receivers must have been up for the frame's whole
    // airtime (a radio that woke mid-frame heard only a fragment).
    if (!mac->radioUpSince(tx.start)) return;

    const geom::Point2 rxPos = positionOf_(v);
    const double signal = powerAt(tx, rxPos);
    if (signal < thresholds_.rxThresholdW) return;  // out of range

    if (mac->transmittedDuring(tx.start, tx.end)) {
      ++stats_.rxWhileTx;
      return;
    }

    bool collided = false;
    for (const ActiveTx& other : history_) {
      if (other.sender == tx.sender || other.sender == v) continue;
      if (other.start >= tx.end || tx.start >= other.end) continue;
      const double p = powerAt(other, rxPos);
      if (p >= thresholds_.csThresholdW && p * kCaptureRatio > signal) {
        collided = true;
        break;
      }
    }
    if (collided) {
      ++stats_.collisions;
      return;
    }
    ++stats_.framesDelivered;
    mac->onFrameReceived(tx.frame);
  };

  if (!senderCompleted) {
    // truncated: fall through to history pruning only
  } else if (tx.frame.dst != net::kBroadcast) {
    // Unicast: the destination is the only possible receiver.
    tryDeliver(tx.frame.dst);
  } else if (indexEnabled_) {
    // Broadcast with the receiver index: enumerate only nodes that can
    // possibly be in range (candidates are padded for snapshot drift and
    // sorted, so decisions and event order match the full scan exactly).
    for (int v : receiverCandidates(tx.senderPos)) tryDeliver(v);
  } else {
    for (std::size_t v = 0; v < macs_.size(); ++v) {
      tryDeliver(static_cast<int>(v));
    }
  }

  while (!history_.empty() &&
         history_.front().end < sim_.now() - kHistoryKeep) {
    history_.pop_front();
    ++historyBaseId_;
  }
}

}  // namespace glr::mac
