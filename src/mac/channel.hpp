#pragma once
/// \file channel.hpp
/// Shared wireless medium: propagation, interference and frame delivery.
///
/// On transmission start the channel computes, per node, whether the frame
/// is audible (>= carrier-sense threshold). At transmission end it decides
/// reception per candidate receiver: in receive range, not transmitting
/// itself, and not collided (an overlapping audible transmission from a
/// different sender whose power exceeds signal/captureRatio). This is the
/// standard simplified 802.11 PHY used by packet-level simulators; it keeps
/// exactly the mechanisms the paper's results rest on — shared-medium
/// contention, hidden terminals, collision loss.
///
/// Hot-path structure (see README "Hot path anatomy"): delivery decisions
/// are batched per transmission — candidate ids are gathered once, their
/// positions pulled from the world's epoch position cache in one call,
/// distance² and rx-power computed over flat arrays, and the interference
/// history consulted through a per-transmission overlap set instead of a
/// full scan per receiver. The history itself is a time-sorted ring buffer
/// (sorted by start; pruned incrementally from the front) whose entries
/// carry a running prefix-max of their end times, so "which transmissions
/// can still matter at time t" is a backward walk that stops exactly where
/// `prefix-max end <= t`. All of this is bit-identical to the per-receiver
/// scan it replaced — pinned by the KernelRegression golden.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/tiled_grid.hpp"
#include "mac/frame.hpp"
#include "phy/propagation.hpp"
#include "sim/ring_deque.hpp"
#include "sim/simulator.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::mac {

class Mac;

/// Channel-wide counters.
struct ChannelStats {
  std::uint64_t framesSent = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t collisions = 0;        // receptions lost to interference
  std::uint64_t rxWhileTx = 0;         // receptions lost: receiver was busy
  std::uint64_t faultDrops = 0;        // receptions vetoed by fault injection
  double airTimeSeconds = 0.0;
};

class Channel {
 public:
  using PositionFn = std::function<geom::Point2(int nodeId)>;
  /// Batch position gather: out[k] = position of ids[k], all at the current
  /// sim time. Installed by net::World so a candidate sweep costs one
  /// dispatch into the epoch position cache instead of one PositionFn call
  /// per receiver.
  using PositionBatchFn =
      std::function<void(const int* ids, std::size_t n, geom::Point2* out)>;

  Channel(sim::Simulator& sim, const phy::PropagationModel& model,
          phy::RadioThresholds thresholds, double txPowerW,
          PositionFn positionOf);

  /// Registers a MAC endpoint; its id must be dense from 0.
  void attach(Mac* mac);

  /// Optional batch position source (see PositionBatchFn). When unset, the
  /// per-node PositionFn is used for gathers too.
  void setPositionBatchFn(PositionBatchFn fn) { positionBatch_ = std::move(fn); }

  /// Per-receiver delivery veto, for fault injection (net/faults.hpp): a
  /// frame that passed range/busy/collision checks is handed to the filter
  /// last; returning false drops it (counted in ChannelStats::faultDrops).
  /// The frame stays on air for carrier-sense and interference either way.
  /// Unset (the default) costs nothing and keeps every golden bit-identical.
  using DeliveryFilter = std::function<bool(const Frame& frame, int receiver)>;
  void setDeliveryFilter(DeliveryFilter filter) {
    deliveryFilter_ = std::move(filter);
  }

  /// How the receiver index keeps node positions fresh.
  ///
  /// kSnapshot re-records every node each `rebuildInterval` (lazily, on the
  /// first query past the deadline) and pads queries by the worst-case
  /// drift `maxSpeed * rebuildInterval` — the pinned-golden default, with
  /// the exact position-sampling sequence of the original whole-grid
  /// snapshot (only the re-sort and its allocations are gone: stale records
  /// are relinked in place).
  ///
  /// kTiled re-records positions tile by tile: a janitor paced to complete
  /// one full sweep per `rebuildInterval` plus on-demand refreshes of the
  /// tiles a query actually scans. Each node carries its own sample time,
  /// so candidate admission pads by that node's individual staleness and
  /// the scan window by the staleness floor the janitor guarantees. Work
  /// per query is O(scanned region), and only nodes in refreshed tiles have
  /// their mobility evaluated — the position cache is driven by region
  /// activity instead of touching all N nodes per epoch.
  enum class IndexMode { kSnapshot, kTiled };

  /// Enables the spatial receiver index: candidate receivers for a frame
  /// are looked up in a uniform tiled grid of recorded node positions
  /// instead of scanning every attached MAC. Recorded positions lag the
  /// true ones by at most `rebuildInterval`, and queries are padded by the
  /// corresponding worst-case drift, so delivery decisions are exactly the
  /// ones the full scan makes (the pad keeps every possibly-in-range node
  /// in the candidate set; per-node threshold checks are unchanged).
  /// Caveat: this assumes positionOf is a pure function of sim time; if it
  /// integrates state per call (e.g. mobility::RandomWalk), the index's
  /// different query pattern can shift positions by FP rounding.
  ///
  /// `maxRange`: farthest distance at which reception is possible (use
  /// RadioThresholds::rxRange). `maxSpeed`: upper bound on any node's speed
  /// in m/s (0 for static topologies). `rebuildInterval`: recorded-position
  /// lifetime in sim-seconds; smaller = fresher records but more refresh
  /// work.
  void enableReceiverIndex(double maxRange, double maxSpeed,
                           double rebuildInterval = 0.5,
                           IndexMode mode = IndexMode::kSnapshot);

  /// Gives `nodeId` a heterogeneous transmit range: its transmit power is
  /// scaled so reception succeeds out to `range` metres (propagation is
  /// linear in transmit power, so the scale is exact; carrier-sense
  /// distance shifts consistently with the propagation law). Nodes without
  /// an override keep the shared radio. The receiver index automatically
  /// widens its candidate queries to the largest per-node range.
  void setNodeTxRange(int nodeId, double range);

  /// Begins an on-air transmission of `frame` lasting `duration` seconds.
  void startTransmission(int sender, Frame frame, double duration);

  /// True if `nodeId` senses the medium busy right now (own transmission or
  /// any active transmission heard above the carrier-sense threshold).
  [[nodiscard]] bool mediumBusy(int nodeId) const;

  /// Earliest time by which all currently heard transmissions end; equals
  /// now() when the medium is already idle. Used by MACs to schedule
  /// deferred attempts without callback plumbing.
  [[nodiscard]] sim::SimTime nextIdleHint(int nodeId) const;

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const phy::RadioThresholds& thresholds() const {
    return thresholds_;
  }

  /// Checkpoint support: the transmission history ring (in-flight and
  /// recently ended frames), tx-id counters and channel stats. The receiver
  /// index is a candidate-superset cache and is dropped on restore — the
  /// next query rebuilds it fresh at the restored clock, which cannot
  /// change delivery decisions (candidates are a padded superset; the exact
  /// per-node checks and their ascending-id visit order are unchanged).
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

  /// Re-creates a pending transmission-end event under its original key
  /// (see checkpoint/event_kinds.hpp kChannelTxEnd, u0 = txId).
  void restoreTxEndEvent(const sim::EventKey& key, std::uint64_t txId);

 private:
  struct ActiveTx {
    int sender = -1;
    Frame frame;
    sim::SimTime start = 0;
    sim::SimTime end = 0;
    /// max(end) over this entry and every earlier one still in the ring.
    /// Monotone in ring position, so a backward relevance walk ("end >
    /// t?") stops exactly at the first entry whose prefix-max rules the
    /// whole earlier ring out. Front pops only loosen the bound (it stays
    /// an upper bound), never break it.
    sim::SimTime maxEndUpTo = 0;
    geom::Point2 senderPos;
  };

  void finishTransmission(std::uint64_t txId);
  [[nodiscard]] double powerAt(const ActiveTx& tx, geom::Point2 rxPos) const;
  /// Transmit power of `nodeId` (per-node override or the shared default).
  [[nodiscard]] double txPowerFor(int nodeId) const;
  /// Carrier-sense reach of `nodeId`'s transmitter: beyond this distance its
  /// signal is provably below csThresholdW (+infinity when the propagation
  /// model offers no bound — then nothing is filtered). Lets interference
  /// scans skip far-away entries on a distance² compare instead of paying
  /// the propagation virtual; bit-identical because a skipped entry fails
  /// the threshold check it is skipping.
  [[nodiscard]] double csRangeFor(int nodeId) const;
  /// Candidate receiver ids near `center` (ascending). Refreshes stale
  /// recorded positions per the index mode. Only called when the receiver
  /// index is enabled.
  [[nodiscard]] const std::vector<int>& receiverCandidates(
      geom::Point2 center);
  /// Builds the tiled grid over all attached MACs (bounds from the current
  /// positions; capacity = attached id space) and records everyone at now.
  void buildIndex(sim::SimTime now);
  /// kSnapshot: re-records every attached MAC at now (the exact sampling
  /// sequence of the legacy whole-grid rebuild).
  void refreshAllRecords(sim::SimTime now);
  /// kTiled: re-records one tile's members at now via the batch gather.
  void refreshTile(int tile, sim::SimTime now);
  /// kTiled: advances the round-robin tile sweep that bounds every record's
  /// staleness; completing a sweep raises the global staleness floor.
  void janitorStep(sim::SimTime now);
  void gatherPositions(const int* ids, std::size_t n, geom::Point2* out);

  sim::Simulator& sim_;
  const phy::PropagationModel& model_;
  phy::RadioThresholds thresholds_;
  double txPowerW_;
  PositionFn positionOf_;
  PositionBatchFn positionBatch_;
  DeliveryFilter deliveryFilter_;
  std::vector<Mac*> macs_;

  // Active + recently ended transmissions, start-sorted, pruned lazily from
  // the front (ring indices shift by historyBaseId_).
  sim::RingDeque<ActiveTx> history_;
  std::uint64_t nextTxId_ = 0;
  std::uint64_t historyBaseId_ = 0;
  ChannelStats stats_;

  // Per-sender transmit power overrides (heterogeneous ranges); 0 = use the
  // shared txPowerW_. maxNodeRange_ tracks the largest per-node range so
  // receiver-index queries stay conservative.
  std::vector<double> txPowerOf_;
  double maxNodeRange_ = 0.0;

  // Carrier-sense reach cache (see csRangeFor): the shared radio's bound is
  // solved once in the ctor; per-node overrides are maintained alongside
  // txPowerOf_ (0 = no override).
  double csMaxRangeShared_ = 0.0;
  std::vector<double> csRangeOf_;

  // Receiver index state (see enableReceiverIndex).
  bool indexEnabled_ = false;
  IndexMode indexMode_ = IndexMode::kSnapshot;
  double indexMaxRange_ = 0.0;
  double indexMaxSpeed_ = 0.0;
  double indexSlack_ = 0.0;  // maxSpeed * rebuildInterval
  double indexRebuildInterval_ = 0.5;
  /// Cached max(indexMaxRange_, maxNodeRange_ + 1e-6): the radius every
  /// candidate query uses. Updated in enableReceiverIndex/setNodeTxRange
  /// instead of being recomputed per frame.
  double effectiveQueryRange_ = 0.0;
  sim::SimTime indexBuiltAt_ = -1.0;
  std::unique_ptr<geom::TiledSpatialGrid> indexGrid_;
  std::vector<int> candidateScratch_;

  // kTiled refresh state. The janitor cursor walks tiles round-robin,
  // paced so one full sweep completes per rebuild interval; when a sweep
  // that started at `janitorCycleStartAt_` wraps, every live record has
  // been re-sampled since that time, so `indexFloor_` (the staleness floor
  // all scan windows pad by) rises to it. Per-tile stamps let queries skip
  // refreshing regions that are already fresh.
  std::vector<double> tileStamp_;   // per tile: last refresh time
  int janitorCursor_ = 0;
  double janitorCredit_ = 0.0;      // fractional tiles owed to the sweep
  sim::SimTime janitorLastAt_ = 0.0;
  sim::SimTime janitorCycleStartAt_ = 0.0;
  sim::SimTime indexFloor_ = 0.0;   // no record is staler than this time
  std::vector<int> refreshIds_;     // tile-refresh scratch
  std::vector<geom::Point2> refreshPos_;

  // Per-transmission delivery scratch (flat SoA arrays, reused).
  std::vector<int> candIds_;
  std::vector<geom::Point2> candPos_;
  std::vector<double> candDist2_;
  std::vector<double> candSignal_;
  std::vector<std::size_t> overlapIdx_;   // ring indices of interferers
  std::vector<double> overlapPower_;      // their transmit powers
};

}  // namespace glr::mac
