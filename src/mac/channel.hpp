#pragma once
/// \file channel.hpp
/// Shared wireless medium: propagation, interference and frame delivery.
///
/// On transmission start the channel computes, per node, whether the frame
/// is audible (>= carrier-sense threshold). At transmission end it decides
/// reception per candidate receiver: in receive range, not transmitting
/// itself, and not collided (an overlapping audible transmission from a
/// different sender whose power exceeds signal/captureRatio). This is the
/// standard simplified 802.11 PHY used by packet-level simulators; it keeps
/// exactly the mechanisms the paper's results rest on — shared-medium
/// contention, hidden terminals, collision loss.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/spatial_grid.hpp"
#include "mac/frame.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"

namespace glr::mac {

class Mac;

/// Channel-wide counters.
struct ChannelStats {
  std::uint64_t framesSent = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t collisions = 0;        // receptions lost to interference
  std::uint64_t rxWhileTx = 0;         // receptions lost: receiver was busy
  double airTimeSeconds = 0.0;
};

class Channel {
 public:
  using PositionFn = std::function<geom::Point2(int nodeId)>;

  Channel(sim::Simulator& sim, const phy::PropagationModel& model,
          phy::RadioThresholds thresholds, double txPowerW,
          PositionFn positionOf);

  /// Registers a MAC endpoint; its id must be dense from 0.
  void attach(Mac* mac);

  /// Enables the spatial receiver index: candidate receivers for a frame are
  /// looked up in a uniform-grid snapshot of node positions instead of
  /// scanning every attached MAC. The snapshot is rebuilt lazily every
  /// `rebuildInterval` sim-seconds and queries are padded by the worst-case
  /// drift `maxSpeed * rebuildInterval`, so delivery decisions are exactly
  /// the ones the full scan makes (the pad keeps every possibly-in-range
  /// node in the candidate set; per-node threshold checks are unchanged).
  /// Caveat: this assumes positionOf is a pure function of sim time; if it
  /// integrates state per call (e.g. mobility::RandomWalk), the index's
  /// different query pattern can shift positions by FP rounding.
  ///
  /// `maxRange`: farthest distance at which reception is possible (use
  /// RadioThresholds::rxRange). `maxSpeed`: upper bound on any node's speed
  /// in m/s (0 for static topologies). `rebuildInterval`: snapshot lifetime
  /// in sim-seconds; smaller = fresher snapshots but more O(n) rebuilds.
  void enableReceiverIndex(double maxRange, double maxSpeed,
                           double rebuildInterval = 0.5);

  /// Gives `nodeId` a heterogeneous transmit range: its transmit power is
  /// scaled so reception succeeds out to `range` metres (propagation is
  /// linear in transmit power, so the scale is exact; carrier-sense
  /// distance shifts consistently with the propagation law). Nodes without
  /// an override keep the shared radio. The receiver index automatically
  /// widens its candidate queries to the largest per-node range.
  void setNodeTxRange(int nodeId, double range);

  /// Begins an on-air transmission of `frame` lasting `duration` seconds.
  void startTransmission(int sender, Frame frame, double duration);

  /// True if `nodeId` senses the medium busy right now (own transmission or
  /// any active transmission heard above the carrier-sense threshold).
  [[nodiscard]] bool mediumBusy(int nodeId) const;

  /// Earliest time by which all currently heard transmissions end; equals
  /// now() when the medium is already idle. Used by MACs to schedule
  /// deferred attempts without callback plumbing.
  [[nodiscard]] sim::SimTime nextIdleHint(int nodeId) const;

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const phy::RadioThresholds& thresholds() const {
    return thresholds_;
  }

 private:
  struct ActiveTx {
    int sender = -1;
    Frame frame;
    sim::SimTime start = 0;
    sim::SimTime end = 0;
    geom::Point2 senderPos;
  };

  void finishTransmission(std::uint64_t txId);
  [[nodiscard]] double powerAt(const ActiveTx& tx, geom::Point2 rxPos) const;
  /// Transmit power of `nodeId` (per-node override or the shared default).
  [[nodiscard]] double txPowerFor(int nodeId) const;
  /// Candidate receiver ids near `center` (ascending). Refreshes the grid
  /// snapshot if stale. Only called when the receiver index is enabled.
  [[nodiscard]] const std::vector<int>& receiverCandidates(
      geom::Point2 center);

  sim::Simulator& sim_;
  const phy::PropagationModel& model_;
  phy::RadioThresholds thresholds_;
  double txPowerW_;
  PositionFn positionOf_;
  std::vector<Mac*> macs_;

  std::deque<ActiveTx> history_;  // active + recently ended, pruned lazily
  std::uint64_t nextTxId_ = 0;
  std::uint64_t historyBaseId_ = 0;
  ChannelStats stats_;

  // Per-sender transmit power overrides (heterogeneous ranges); 0 = use the
  // shared txPowerW_. maxNodeRange_ tracks the largest per-node range so
  // receiver-index queries stay conservative.
  std::vector<double> txPowerOf_;
  double maxNodeRange_ = 0.0;

  // Receiver index state (see enableReceiverIndex).
  bool indexEnabled_ = false;
  double indexMaxRange_ = 0.0;
  double indexSlack_ = 0.0;  // maxSpeed * rebuildInterval
  double indexRebuildInterval_ = 0.5;
  sim::SimTime indexBuiltAt_ = -1.0;
  std::unique_ptr<geom::SpatialGrid> indexGrid_;
  std::vector<int> indexToMacId_;   // grid point index -> MAC id
  std::vector<int> candidateScratch_;
};

}  // namespace glr::mac
