#pragma once
/// \file frame.hpp
/// MAC-level frame: what actually occupies the channel.

#include <cstdint>

#include "net/packet.hpp"

namespace glr::mac {

struct Frame {
  enum class Type : std::uint8_t { kData, kAck };

  Type type = Type::kData;
  int src = -1;
  int dst = net::kBroadcast;
  std::uint64_t seq = 0;       // matches ACKs to the data frame they confirm
  std::size_t bytes = 0;       // on-air bytes: MAC header + payload
  net::Packet packet;          // upper-layer content (unused for ACKs)
};

}  // namespace glr::mac
