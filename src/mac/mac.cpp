#include "mac/mac.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "checkpoint/event_kinds.hpp"
#include "checkpoint/payload_codec.hpp"

namespace glr::mac {

namespace {

sim::EventDesc macDesc(ckpt::EventKind kind, int self) {
  sim::EventDesc d;
  d.kind = kind;
  d.i0 = self;
  return d;
}

}  // namespace

Mac::Mac(sim::Simulator& sim, Channel& channel, int self, MacParams params,
         sim::Rng rng)
    : sim_(sim), channel_(channel), self_(self), params_(params), rng_(rng) {
  if (self < 0) throw std::invalid_argument{"Mac: negative node id"};
  channel_.attach(this);
}

double Mac::frameDuration(std::size_t bytes) const {
  return params_.phyOverhead +
         static_cast<double>(bytes) * 8.0 / params_.bitRateBps;
}

int Mac::contentionWindow(int attempts) const {
  long cw = params_.cwMin;
  for (int i = 0; i < attempts; ++i) {
    cw = std::min<long>(2 * (cw + 1) - 1, params_.cwMax);
  }
  return static_cast<int>(cw);
}

bool Mac::send(net::Packet packet, int dstMac) {
  if (!radioUp_) {
    ++stats_.radioDownDrops;
    return false;
  }
  if (queue_.size() >= params_.queueLimit) {
    ++stats_.queueDrops;
    return false;
  }
  ++stats_.enqueued;
  Outgoing out;
  out.packet = std::move(packet);
  out.dst = dstMac;
  out.seq = nextSeq_++;
  queue_.push_back(std::move(out));
  scheduleAttempt();
  return true;
}

void Mac::scheduleAttempt() {
  if (!radioUp_ || attemptScheduled_ || transmitting_ || awaitingAck_ ||
      queue_.empty()) {
    return;
  }
  attemptScheduled_ = true;
  attemptHandle_ = sim_.schedule(0.0, macDesc(ckpt::kMacAttempt, self_),
                                 [this] { attempt(); });
}

void Mac::attempt() {
  if (!radioUp_ || transmitting_ || awaitingAck_ || queue_.empty()) {
    attemptScheduled_ = false;
    return;
  }
  if (channel_.mediumBusy(self_)) {
    // Defer until the heard transmissions end, plus sub-slot jitter so
    // synchronized waiters don't re-collide deterministically.
    ++stats_.busyDeferrals;
    const sim::SimTime idleAt =
        std::max(channel_.nextIdleHint(self_), sim_.now());
    attemptHandle_ = sim_.scheduleAt(
        idleAt + rng_.uniform(0.0, params_.slotTime),
        macDesc(ckpt::kMacAttempt, self_), [this] { attempt(); });
    return;
  }
  const int cw = contentionWindow(queue_.front().attempts);
  const double backoff =
      static_cast<double>(rng_.below(static_cast<std::uint64_t>(cw) + 1)) *
      params_.slotTime;
  attemptHandle_ =
      sim_.schedule(params_.difs + backoff,
                    macDesc(ckpt::kMacBackoffExpire, self_),
                    [this] { onBackoffExpire(); });
}

void Mac::onBackoffExpire() {
  if (!radioUp_ || queue_.empty()) {
    attemptScheduled_ = false;
    return;
  }
  if (channel_.mediumBusy(self_)) {
    attempt();  // medium got busy during backoff: defer again
    return;
  }
  transmitHead();
}

void Mac::transmitHead() {
  attemptScheduled_ = false;
  Outgoing& out = queue_.front();
  const bool broadcast = out.dst == net::kBroadcast;

  Frame frame;
  frame.type = Frame::Type::kData;
  frame.src = self_;
  frame.dst = out.dst;
  frame.seq = out.seq;
  frame.bytes = out.packet.bytes + params_.macHeaderBytes;
  frame.packet = out.packet;

  const double duration = frameDuration(frame.bytes);
  transmitting_ = true;
  lastTxStart_ = sim_.now();
  lastTxEnd_ = sim_.now() + duration;
  recordOwnTx(lastTxStart_, lastTxEnd_);
  ++stats_.dataTx;
  if (out.attempts > 0) ++stats_.retries;

  channel_.startTransmission(self_, std::move(frame), duration);
  sim::EventDesc desc = macDesc(ckpt::kMacTxEnd, self_);
  desc.b0 = broadcast ? 0 : 1;  // expectAck
  desc.u0 = radioEpoch_;
  sim_.schedule(duration, desc, [this, broadcast, epoch = radioEpoch_] {
    onDataTxEnd(!broadcast, epoch);
  });
}

void Mac::onDataTxEnd(bool expectAck, std::uint64_t epoch) {
  transmitting_ = false;
  if (epoch != radioEpoch_) {
    // Radio toggled mid-frame: that head was flushed. If we are back up
    // with newly queued traffic, restart contention for it.
    scheduleAttempt();
    return;
  }
  if (!expectAck) {
    finishHead(true);
    return;
  }
  awaitingAck_ = true;
  awaitedSeq_ = queue_.front().seq;
  const double ackTimeout = params_.sifs + frameDuration(params_.ackBytes) +
                            2.0 * params_.slotTime + 20e-6;
  ackTimeoutHandle_ =
      sim_.schedule(ackTimeout, macDesc(ckpt::kMacAckTimeout, self_),
                    [this] { onAckTimeout(); });
}

void Mac::onAckTimeout() {
  awaitingAck_ = false;
  if (queue_.empty()) return;  // defensive: down-flush cancels this timer
  ++stats_.ackTimeouts;
  Outgoing& out = queue_.front();
  ++out.attempts;
  if (out.attempts > params_.retryLimit) {
    ++stats_.retryDrops;
    finishHead(false);
    return;
  }
  scheduleAttempt();
}

void Mac::finishHead(bool success) {
  Outgoing out = std::move(queue_.front());
  queue_.pop_front();
  if (onTxStatus_ && out.dst != net::kBroadcast) {
    onTxStatus_(out.packet, out.dst, success);
  }
  scheduleAttempt();
}

void Mac::setRadioUp(bool up) {
  if (up == radioUp_) return;
  radioUp_ = up;
  ++radioEpoch_;
  if (up) {
    upSince_ = sim_.now();
    scheduleAttempt();  // queue is empty after a down-flush; harmless
    return;
  }
  // Going down: cancel pending contention/ACK timers and flush the queue.
  // The head may be mid-air — the channel finishes that frame (it left the
  // antenna), but this MAC forgets it: the epoch guard neutralizes the
  // pending tx-end event and the unicast fails below.
  attemptHandle_.cancel();
  attemptScheduled_ = false;
  ackTimeoutHandle_.cancel();
  awaitingAck_ = false;
  while (!queue_.empty()) {
    Outgoing out = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.radioDownDrops;
    if (onTxStatus_ && out.dst != net::kBroadcast) {
      onTxStatus_(out.packet, out.dst, false);
    }
  }
}

void Mac::onFrameReceived(const Frame& frame) {
  if (!radioUp_) return;  // duty-cycled off: the radio hears nothing
  if (frame.type == Frame::Type::kAck) {
    if (awaitingAck_ && frame.dst == self_ && frame.seq == awaitedSeq_) {
      ++stats_.rxAck;
      ackTimeoutHandle_.cancel();
      awaitingAck_ = false;
      finishHead(true);
    }
    return;
  }

  // DATA frame.
  const bool unicastToMe = frame.dst == self_;
  if (unicastToMe) {
    // Reply with an ACK after SIFS (ACKs skip contention by design). The
    // lambda captures only the scalars and builds the Frame when it fires so
    // the closure stays inside the kernel's inline-callback budget.
    const double ackDur = frameDuration(params_.ackBytes);
    sim::EventDesc desc = macDesc(ckpt::kMacAckReply, self_);
    desc.i1 = frame.src;
    desc.u0 = frame.seq;
    desc.u1 = radioEpoch_;
    desc.f0 = ackDur;
    sim_.schedule(params_.sifs, desc,
                  [this, dst = frame.src, seq = frame.seq, ackDur,
                   epoch = radioEpoch_] {
                    sendAckReply(dst, seq, ackDur, epoch);
                  });
  } else if (frame.dst != net::kBroadcast) {
    return;  // unicast for someone else
  }

  // Suppress retry-duplicates: the sender repeats a frame when our ACK was
  // lost; the upper layer must see the packet only once.
  for (auto& [src, seq] : lastSeqFrom_) {
    if (src == frame.src) {
      if (seq == frame.seq && unicastToMe) {
        ++stats_.duplicatesSuppressed;
        return;
      }
      seq = frame.seq;
      ++stats_.rxData;
      if (onReceive_) onReceive_(frame.packet, frame.src);
      return;
    }
  }
  lastSeqFrom_.emplace_back(frame.src, frame.seq);
  ++stats_.rxData;
  if (onReceive_) onReceive_(frame.packet, frame.src);
}

bool Mac::transmittedDuring(sim::SimTime start, sim::SimTime end) const {
  for (std::size_t i = 0; i < recentTxCount_; ++i) {
    const auto& [s, e] = recentTx_[i];
    if (s <= end && start < e) return true;
  }
  return false;
}

void Mac::sendAckReply(int dst, std::uint64_t seq, double ackDur,
                       std::uint64_t epoch) {
  if (epoch != radioEpoch_) return;  // radio toggled during SIFS
  Frame ack;
  ack.type = Frame::Type::kAck;
  ack.src = self_;
  ack.dst = dst;
  ack.seq = seq;
  ack.bytes = params_.ackBytes;
  recordOwnTx(sim_.now(), sim_.now() + ackDur);
  ++stats_.ackTx;
  channel_.startTransmission(self_, std::move(ack), ackDur);
}

void Mac::saveState(ckpt::Encoder& e) const {
  for (const std::uint64_t word : rng_.state()) e.u64(word);
  e.size(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Outgoing& out = queue_[i];
    ckpt::savePacket(e, out.packet);
    e.i32(out.dst);
    e.i32(out.attempts);
    e.u64(out.seq);
  }
  e.boolean(attemptScheduled_);
  e.boolean(transmitting_);
  e.boolean(awaitingAck_);
  e.boolean(radioUp_);
  e.f64(upSince_);
  e.u64(radioEpoch_);
  e.u64(nextSeq_);
  e.u64(awaitedSeq_);
  e.f64(lastTxStart_);
  e.f64(lastTxEnd_);
  e.size(recentTxCount_);
  e.size(recentTxNext_);
  for (const auto& [s, end] : recentTx_) {
    e.f64(s);
    e.f64(end);
  }
  e.size(lastSeqFrom_.size());
  for (const auto& [src, seq] : lastSeqFrom_) {
    e.i32(src);
    e.u64(seq);
  }
  e.u64(stats_.enqueued);
  e.u64(stats_.queueDrops);
  e.u64(stats_.dataTx);
  e.u64(stats_.ackTx);
  e.u64(stats_.retries);
  e.u64(stats_.retryDrops);
  e.u64(stats_.ackTimeouts);
  e.u64(stats_.busyDeferrals);
  e.u64(stats_.rxData);
  e.u64(stats_.rxAck);
  e.u64(stats_.duplicatesSuppressed);
  e.u64(stats_.radioDownDrops);
}

void Mac::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  queue_.clear();
  const std::size_t nQueued = d.checkedSize(d.u64(), 17);
  for (std::size_t i = 0; i < nQueued; ++i) {
    Outgoing out;
    out.packet = ckpt::loadPacket(d);
    out.dst = d.i32();
    out.attempts = d.i32();
    out.seq = d.u64();
    queue_.push_back(std::move(out));
  }
  attemptScheduled_ = d.boolean();
  transmitting_ = d.boolean();
  awaitingAck_ = d.boolean();
  radioUp_ = d.boolean();
  upSince_ = d.f64();
  radioEpoch_ = d.u64();
  nextSeq_ = d.u64();
  awaitedSeq_ = d.u64();
  lastTxStart_ = d.f64();
  lastTxEnd_ = d.f64();
  recentTxCount_ = d.size();
  recentTxNext_ = d.size();
  if (recentTxCount_ > recentTx_.size() ||
      recentTxNext_ >= recentTx_.size()) {
    d.fail("recent-tx ring cursor out of range");
  }
  for (auto& [s, end] : recentTx_) {
    s = d.f64();
    end = d.f64();
  }
  const std::size_t nSeen = d.checkedSize(d.u64(), 12);
  lastSeqFrom_.clear();
  lastSeqFrom_.reserve(nSeen);
  for (std::size_t i = 0; i < nSeen; ++i) {
    const int src = d.i32();
    const std::uint64_t seq = d.u64();
    lastSeqFrom_.emplace_back(src, seq);
  }
  stats_.enqueued = d.u64();
  stats_.queueDrops = d.u64();
  stats_.dataTx = d.u64();
  stats_.ackTx = d.u64();
  stats_.retries = d.u64();
  stats_.retryDrops = d.u64();
  stats_.ackTimeouts = d.u64();
  stats_.busyDeferrals = d.u64();
  stats_.rxData = d.u64();
  stats_.rxAck = d.u64();
  stats_.duplicatesSuppressed = d.u64();
  stats_.radioDownDrops = d.u64();
  // Stale handles from the pre-restore life of this object must not be able
  // to cancel the rebuilt events.
  attemptHandle_ = {};
  ackTimeoutHandle_ = {};
}

void Mac::restoreAttemptEvent(const sim::EventKey& key) {
  attemptHandle_ = sim_.scheduleKeyed(key, macDesc(ckpt::kMacAttempt, self_),
                                      [this] { attempt(); });
}

void Mac::restoreBackoffEvent(const sim::EventKey& key) {
  attemptHandle_ =
      sim_.scheduleKeyed(key, macDesc(ckpt::kMacBackoffExpire, self_),
                         [this] { onBackoffExpire(); });
}

void Mac::restoreTxEndEvent(const sim::EventKey& key, bool expectAck,
                            std::uint64_t epoch) {
  sim::EventDesc desc = macDesc(ckpt::kMacTxEnd, self_);
  desc.b0 = expectAck ? 1 : 0;
  desc.u0 = epoch;
  sim_.scheduleKeyed(key, desc, [this, expectAck, epoch] {
    onDataTxEnd(expectAck, epoch);
  });
}

void Mac::restoreAckTimeoutEvent(const sim::EventKey& key) {
  ackTimeoutHandle_ =
      sim_.scheduleKeyed(key, macDesc(ckpt::kMacAckTimeout, self_),
                         [this] { onAckTimeout(); });
}

void Mac::restoreAckReplyEvent(const sim::EventKey& key, int dst,
                               std::uint64_t seq, double ackDur,
                               std::uint64_t epoch) {
  sim::EventDesc desc = macDesc(ckpt::kMacAckReply, self_);
  desc.i1 = dst;
  desc.u0 = seq;
  desc.u1 = epoch;
  desc.f0 = ackDur;
  sim_.scheduleKeyed(key, desc, [this, dst, seq, ackDur, epoch] {
    sendAckReply(dst, seq, ackDur, epoch);
  });
}

}  // namespace glr::mac
