#pragma once
/// \file mac.hpp
/// Simplified IEEE 802.11 DCF MAC.
///
/// Models the mechanisms that shape the paper's results at packet
/// granularity: carrier sensing with DIFS + binary-exponential backoff,
/// drop-tail interface queue (the paper's "link layer queue length 150"),
/// unicast DATA/ACK with a retry limit, and broadcast without ACK. Slot
/// freezing is approximated by re-drawing the backoff when the medium turns
/// busy — fairness differs slightly from real DCF but saturation behaviour
/// (collision loss, delay growth under load) is preserved.

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mac/channel.hpp"
#include "mac/frame.hpp"
#include "net/packet.hpp"
#include "sim/ring_deque.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::mac {

struct MacParams {
  double slotTime = 20e-6;      // 802.11 DSSS slot
  double sifs = 10e-6;
  double difs = 50e-6;
  double phyOverhead = 192e-6;  // PLCP preamble + header at 1 Mbps
  int cwMin = 31;
  int cwMax = 1023;
  int retryLimit = 7;
  std::size_t queueLimit = 150;  // paper Table 1
  std::size_t macHeaderBytes = 28;
  std::size_t ackBytes = 14;
  double bitRateBps = 1e6;       // paper Table 1
};

/// Per-MAC counters.
struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t queueDrops = 0;       // drop-tail losses
  std::uint64_t dataTx = 0;           // DATA transmissions incl. retries
  std::uint64_t ackTx = 0;
  std::uint64_t retries = 0;
  std::uint64_t retryDrops = 0;       // unicast given up after retryLimit
  std::uint64_t ackTimeouts = 0;      // ACK waits that expired (per attempt)
  std::uint64_t busyDeferrals = 0;    // attempts deferred: medium sensed busy
  std::uint64_t rxData = 0;
  std::uint64_t rxAck = 0;
  std::uint64_t duplicatesSuppressed = 0;
  std::uint64_t radioDownDrops = 0;   // sends attempted/flushed while down
};

class Mac {
 public:
  /// (packet, srcMacId) for every successfully received DATA frame.
  using ReceiveCallback = std::function<void(const net::Packet&, int)>;
  /// (packet, dstMacId, success) after a unicast completes or is dropped.
  using TxStatusCallback = std::function<void(const net::Packet&, int, bool)>;

  Mac(sim::Simulator& sim, Channel& channel, int self, MacParams params,
      sim::Rng rng);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  [[nodiscard]] int id() const { return self_; }

  void setReceiveCallback(ReceiveCallback cb) { onReceive_ = std::move(cb); }
  void setTxStatusCallback(TxStatusCallback cb) { onTxStatus_ = std::move(cb); }

  /// Queues `packet` for transmission to `dstMac` (net::kBroadcast for
  /// broadcast). Returns false if the interface queue is full (drop-tail).
  bool send(net::Packet packet, int dstMac);

  [[nodiscard]] std::size_t queueLength() const { return queue_.size(); }
  [[nodiscard]] const MacStats& stats() const { return stats_; }
  [[nodiscard]] const MacParams& params() const { return params_; }

  /// Channel-facing: frame arrived intact at this node.
  void onFrameReceived(const Frame& frame);
  /// Channel-facing: true if this MAC was transmitting during [start, end].
  [[nodiscard]] bool transmittedDuring(sim::SimTime start,
                                       sim::SimTime end) const;

  /// Radio duty-cycle gate (node churn). While down the MAC neither
  /// transmits nor receives: send() drops (counted in radioDownDrops), the
  /// channel skips this node as a receiver, pending backoff/ACK timers are
  /// cancelled and the whole interface queue is flushed (unicasts fail via
  /// the tx-status callback — the radio shut down under them). Coming back
  /// up resumes normal operation with an empty queue.
  void setRadioUp(bool up);
  [[nodiscard]] bool radioUp() const { return radioUp_; }
  /// Channel-facing: true if the radio has been continuously up since
  /// `start`. A frame is received only when the radio was on for its whole
  /// airtime — the receive-side mirror of transmittedDuring.
  [[nodiscard]] bool radioUpSince(sim::SimTime start) const {
    return radioUp_ && upSince_ <= start;
  }

  /// Checkpoint support: interface queue (packets by content), contention/
  /// ACK state machine flags, radio gate + epoch, recent-tx ring, duplicate
  /// table, RNG stream and counters. Event handles are rebuilt by the
  /// restore*Event methods below, not serialized.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

  /// Restore-path event rebuilders (see checkpoint/event_kinds.hpp). The
  /// attempt/backoff/ack-timeout variants re-arm the matching cancellation
  /// handle so a later radio-down flush can still cancel them.
  void restoreAttemptEvent(const sim::EventKey& key);
  void restoreBackoffEvent(const sim::EventKey& key);
  void restoreTxEndEvent(const sim::EventKey& key, bool expectAck,
                         std::uint64_t epoch);
  void restoreAckTimeoutEvent(const sim::EventKey& key);
  void restoreAckReplyEvent(const sim::EventKey& key, int dst,
                            std::uint64_t seq, double ackDur,
                            std::uint64_t epoch);

 private:
  struct Outgoing {
    net::Packet packet;
    int dst = net::kBroadcast;
    int attempts = 0;
    std::uint64_t seq = 0;
  };

  void recordOwnTx(sim::SimTime start, sim::SimTime end) {
    recentTx_[recentTxNext_] = {start, end};
    recentTxNext_ = (recentTxNext_ + 1) % recentTx_.size();
    if (recentTxCount_ < recentTx_.size()) ++recentTxCount_;
  }

  void scheduleAttempt();
  void attempt();
  /// Backoff countdown finished: transmit if the medium stayed idle.
  void onBackoffExpire();
  /// SIFS elapsed after a unicast DATA reception: put the ACK on air.
  void sendAckReply(int dst, std::uint64_t seq, double ackDur,
                    std::uint64_t epoch);
  void transmitHead();
  void onDataTxEnd(bool expectAck, std::uint64_t epoch);
  void onAckTimeout();
  void finishHead(bool success);
  [[nodiscard]] double frameDuration(std::size_t bytes) const;
  [[nodiscard]] int contentionWindow(int attempts) const;

  sim::Simulator& sim_;
  Channel& channel_;
  int self_;
  MacParams params_;
  sim::Rng rng_;

  // Grow-only ring (no per-block allocator churn as the FIFO slides).
  sim::RingDeque<Outgoing> queue_;
  bool attemptScheduled_ = false;
  bool transmitting_ = false;
  bool awaitingAck_ = false;
  bool radioUp_ = true;
  sim::SimTime upSince_ = 0.0;  // when the radio last turned (or started) on
  // Bumped on every up/down transition; in-flight tx-end and ACK-reply
  // events compare their captured epoch so a toggle mid-frame can never
  // attach a stale completion to a newer queue head.
  std::uint64_t radioEpoch_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t awaitedSeq_ = 0;
  sim::EventHandle attemptHandle_;
  sim::EventHandle ackTimeoutHandle_;
  sim::SimTime lastTxStart_ = -1.0;
  sim::SimTime lastTxEnd_ = -1.0;
  // Own recent transmissions (DATA + ACK), for rx-while-tx decisions: a
  // fixed 16-slot ring (the old bounded deque, without its block churn).
  std::array<std::pair<sim::SimTime, sim::SimTime>, 16> recentTx_{};
  std::size_t recentTxCount_ = 0;  // valid entries (caps at 16)
  std::size_t recentTxNext_ = 0;   // slot the next record overwrites

  // Duplicate detection: last sequence number seen per source.
  std::vector<std::pair<int, std::uint64_t>> lastSeqFrom_;

  ReceiveCallback onReceive_;
  TxStatusCallback onTxStatus_;
  MacStats stats_;
};

}  // namespace glr::mac
