#include "experiment/tables.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace glr::experiment {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmtCI(const stats::ConfidenceInterval& ci, int precision) {
  if (ci.samples <= 1) return fmt(ci.mean, precision);
  return fmt(ci.mean, precision) + " ± " + fmt(ci.halfwidth, precision);
}

std::string fmtPct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

void printRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line = "|";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    char buf[256];
    std::snprintf(buf, sizeof buf, " %-*s |", w, cells[i].c_str());
    line += buf;
  }
  std::puts(line.c_str());
}

void printRule(const std::vector<int>& widths) {
  std::string line = "+";
  for (const int w : widths) {
    line += std::string(static_cast<std::size_t>(w) + 2, '-');
    line += '+';
  }
  std::puts(line.c_str());
}

int envInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

bool paperScale() {
  const char* v = std::getenv("GLR_PAPER_SCALE");
  return v != nullptr && std::strcmp(v, "0") != 0 && *v != '\0';
}

int benchRuns(int fallback) {
  return envInt("GLR_BENCH_RUNS", paperScale() ? 10 : fallback);
}

}  // namespace glr::experiment
