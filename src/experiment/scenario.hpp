#pragma once
/// \file scenario.hpp
/// End-to-end scenario runner reproducing the paper's simulation setup
/// (Table 1): 50 nodes, 1500 m x 300 m, random waypoint 0-20 m/s with zero
/// pause, 1 Mbps 802.11-like MAC with queue limit 150, two-ray ground
/// propagation, 1000-byte payloads, 45 traffic endpoints generating one
/// message per second.
///
/// A scenario is a pure function of (config, seed): every subsystem draws
/// from a forked RNG stream, so runs are reproducible and protocols can be
/// compared on identical topologies and traffic.

#include <cstdint>
#include <string>
#include <vector>

#include "core/glr_agent.hpp"
#include "dtn/buffer.hpp"
#include "experiment/traffic.hpp"
#include "mobility/registry.hpp"
#include "net/churn.hpp"
#include "net/faults.hpp"

namespace glr::experiment {

enum class Protocol {
  kGlr,
  kEpidemic,
  kDirectDelivery,  // extension baseline: source waits to meet destination
  kSprayAndWait,    // extension baseline: binary spray with copy budget
};

[[nodiscard]] const char* protocolName(Protocol p);

/// Which mobility model drives the nodes, selected by registry name
/// (mobility/registry.hpp) so a sweep's mobility axis is just a vector of
/// strings. Model knobs live on the embedded mobility::ModelParams and go
/// to the factory verbatim — no hand-copied field list to forget — EXCEPT
/// params.area / params.speedMin / params.speedMax / params.pause, which
/// runScenario always overlays from ScenarioConfig (setting them here has
/// no effect), and params.home, which is overlaid per node from the drawn
/// cluster centres only when model == "cluster" (custom home-based models
/// receive the verbatim value for every node). The default reproduces the
/// paper's random waypoint bit-identically.
struct MobilitySpec {
  std::string model = "waypoint";
  int numClusters = 4;  // cluster: how many shared home points to draw
  mobility::ModelParams params;
};

/// Duty-cycled node churn: the embedded net::ChurnProcess::Params go to
/// the churn layer verbatim (fraction/upMean/downMean/start — see
/// net/churn.hpp). Disabled by default — the default scenario stays
/// bit-identical to the paper setup.
struct ChurnSpec {
  bool enabled = false;
  net::ChurnProcess::Params params;
};

/// Named churn levels for sweep grids: "none", "light", "moderate",
/// "heavy". Throws std::invalid_argument for anything else.
[[nodiscard]] ChurnSpec churnPreset(const std::string& name);

/// Fault injection: the embedded net::FaultProcess::Params go to the fault
/// layer verbatim (burst loss, frame corruption, stuck-node stalls — see
/// net/faults.hpp). Disabled by default — the default scenario stays
/// bit-identical to the paper setup.
struct FaultSpec {
  bool enabled = false;
  net::FaultProcess::Params params;
};

/// Which structure orders the kernel's pending-event set. Both modes fire
/// the identical event sequence (same (time, seq) tie-break — pinned by the
/// KernelRegression golden under each); the calendar queue keeps per-event
/// cost flat for the million-deep queues of city-scale populations.
enum class KernelQueue { kHeap4, kCalendar };

/// Which receiver index backs the channel. kSnapshot refreshes every node
/// each rebuild interval (the pinned-golden default); kTiled refreshes only
/// tiles on an activity-paced janitor cycle and pads scan windows by each
/// node's individual staleness, making the per-query cost O(active region)
/// instead of O(N). Both produce bit-identical results for mobility models
/// whose position is a pure function of time (all built-in models).
enum class SpatialIndexMode { kSnapshot, kTiled };

struct ScenarioConfig {
  Protocol protocol = Protocol::kGlr;

  // Topology / radio (paper Table 1).
  int numNodes = 50;
  double areaWidth = 1500.0;
  double areaHeight = 300.0;
  double radius = 100.0;      // transmission range, 50-250 m
  double speedMin = 0.1;      // "0-20 m/s uniform" with a positive floor
  double speedMax = 20.0;
  double pause = 0.0;
  double bitRateBps = 1e6;
  std::size_t queueLimit = 150;

  // Scenario diversity: pluggable mobility, node churn, heterogeneous
  // radios. Per-node transmit ranges are radius * U[radiusSpreadMin,
  // radiusSpreadMax]; 1.0/1.0 (default) keeps the homogeneous radio and
  // draws nothing.
  MobilitySpec mobility;
  ChurnSpec churn;
  double radiusSpreadMin = 1.0;
  double radiusSpreadMax = 1.0;

  // Workload. `traffic` selects the arrival process: the default "paper"
  // model replays the fixed shuffled-pair schedule below bit-identically;
  // the stochastic models (poisson/onoff/hotspot/flashcrowd) read
  // traffic.rate and their own knobs instead of numMessages /
  // messageInterval and can offer millions of messages per run.
  double simTime = 3800.0;
  int numMessages = 1980;
  double messageInterval = 1.0;  // "packets are generated every second"
  double trafficStart = 10.0;    // let neighbor tables converge first
  int trafficNodes = 45;         // paper: 45 senders/destinations out of 50
  TrafficSpec traffic;

  // Fault injection (off by default).
  FaultSpec faults;

  // Protocol knobs.
  std::size_t storageLimit = dtn::kUnlimitedStorage;
  double checkInterval = 0.9;
  bool custody = true;
  bool faceRouting = true;
  bool witnessRule = true;
  int copiesOverride = -1;  // -1: Algorithm 1 decides
  core::LocationMode locationMode = core::LocationMode::kSourceKnows;
  double helloInterval = 0.75;
  double cacheTimeout = 6.0;
  int sprayBudget = 8;  // kSprayAndWait only
  /// GLR overload controls (see GlrParams): buffer occupancy at which a
  /// node refuses new custody (0 = never, the historical default), and the
  /// AIMD custody window driven by the custody-ack RTT estimator.
  std::size_t custodyWatermark = 0;
  bool congestionControl = false;
  /// Adversarial-resilience knobs (all off by default — bit-identical
  /// goldens). glrRecovery arms GLR's custody-failure detection: suspicion
  /// scoring on custody timeouts/NACKs, suspect-avoiding reroute, and the
  /// bounded spray fallback for copies that keep failing. messageTtl > 0
  /// gives bundles a lifetime (counted expiry drops) for every protocol.
  /// Misbehaving-node populations ride in faults.params.adversary.
  /// Detector tuning for glrRecovery (GlrParams defaults; see
  /// core/glr_agent.hpp): custody failures on a hop before it is marked
  /// suspect, and failures on a copy before the spray fallback clones it.
  bool glrRecovery = false;
  int glrSuspicionThreshold = 2;
  int glrRecoveryAfterFailures = 3;
  int glrRecoveryFanout = 2;
  double glrRecoveryCooldown = 15.0;
  double glrSuspicionTtl = 120.0;
  double messageTtl = 0.0;

  // Scaling-path knobs (city-scale worlds). Defaults keep every pinned
  // golden bit-identical; bench_scale and the scale tests flip them.
  KernelQueue kernelQueue = KernelQueue::kHeap4;
  SpatialIndexMode spatialIndex = SpatialIndexMode::kSnapshot;
  /// Steady-state table eviction for long/large runs (0 = keep forever,
  /// the historical default): neighbor records stale beyond
  /// `neighborEvictAfterFactor * hello expiry` are erased, and GLR location
  /// observations older than `locationEvictAfter` seconds are pruned. Both
  /// bound an idle node's footprint by its active neighborhood instead of
  /// by everything it has ever heard.
  double neighborEvictAfterFactor = 0.0;
  double locationEvictAfter = 0.0;

  // Observability (all off by default — bit-identical goldens, zero-alloc
  // hot path). tracePath non-empty arms the flight recorder: every
  // send/delivery/custody/drop/expiry/suspicion event is streamed through a
  // fixed SPSC ring (traceRingCapacity records, rounded up to a power of
  // two) to a length-prefixed binary file a writer thread owns — see
  // trace/recorder.hpp; inspect with tools/trace_inspect. nodeCountersPath
  // non-empty exports per-node MAC/protocol/storage counters at scenario
  // end; the format follows the extension (".json" or ".csv").
  std::string tracePath;
  std::size_t traceRingCapacity = 1 << 16;
  std::string nodeCountersPath;

  // Crash safety (see checkpoint/scenario_checkpoint.hpp). checkpointPath
  // non-empty + checkpointEvery > 0 snapshots the full simulation state
  // every checkpointEvery sim-seconds (atomic replace, so a crash leaves
  // the previous snapshot intact). restoreFrom non-empty resumes from such
  // a snapshot and continues bit-identically to the uninterrupted run.
  // checkpointEvery changes the event sequence (the writer is a simulated
  // event) and is therefore part of the config digest; the paths are not.
  std::string checkpointPath;
  double checkpointEvery = 0.0;
  std::string restoreFrom;
  /// Watchdog: abort the run with sim::WallClockTimeout after this many
  /// wall-clock seconds (0 = no deadline). Host timing only — never part of
  /// the simulated event sequence or the checkpoint config digest.
  double wallDeadlineSeconds = 0.0;

  std::uint64_t seed = 1;
};

struct ScenarioResult {
  // Delivery metrics (paper's headline numbers).
  std::size_t created = 0;
  std::size_t delivered = 0;
  double deliveryRatio = 0.0;
  double avgLatency = 0.0;  // seconds, delivered messages only
  double avgHops = 0.0;

  // Storage metrics (Tables 4/5): message-count peaks over nodes.
  double maxPeakStorage = 0.0;
  double avgPeakStorage = 0.0;

  // Network-layer health.
  std::uint64_t macDataTx = 0;
  std::uint64_t macQueueDrops = 0;
  std::uint64_t macRetryDrops = 0;
  std::uint64_t macRadioDownDrops = 0;  // churn: sends lost to a down radio
  std::uint64_t macAckTimeouts = 0;     // ACK waits that expired
  std::uint64_t macBusyDeferrals = 0;   // attempts deferred on busy medium
  std::uint64_t collisions = 0;
  double airTimeSeconds = 0.0;
  std::uint64_t faultFrameDrops = 0;  // deliveries suppressed by faults
  std::uint64_t duplicateDeliveries = 0;
  std::uint64_t perturbations = 0;

  // Protocol internals, harvested via routing::DtnAgent::harvestCounters.
  // GLR fills every field; epidemic reports its data/duplicate traffic;
  // other protocols leave what they don't track at zero.
  std::uint64_t glrDataSent = 0;
  std::uint64_t glrDataReceived = 0;
  std::uint64_t glrDuplicatesDropped = 0;
  std::uint64_t glrCustodyAcksSent = 0;
  std::uint64_t glrCustodyAcksReceived = 0;
  std::uint64_t glrCacheTimeouts = 0;
  std::uint64_t glrTxFailures = 0;
  std::uint64_t glrFaceTransitions = 0;

  // Overload accounting, reported by every protocol: sends the MAC queue
  // finally refused, storage-pressure buffer evictions, and custody
  // transfers refused under the watermark (GLR only). All zero in an
  // unsaturated run.
  std::uint64_t sendRejects = 0;
  std::uint64_t bufferEvictions = 0;
  std::uint64_t custodyRefusals = 0;

  // Adversarial resilience. The adv* fields count misbehavior at the
  // adversary layer (every blackhole/greyhole discard lands in exactly one
  // of them — no uncounted loss); the glr* fields count the recovery
  // sublayer's reactions. expiredDrops counts TTL expiries across all
  // protocols; bufferedAtEnd is the copies still held by agents when the
  // scenario ends and macQueueAtEnd the frames still sitting in MAC queues
  // (a copy can end the run in flight), closing the conservation inequality
  //   created <= delivered + bufferedAtEnd + macQueueAtEnd + counted drops.
  // All zero when the corresponding knobs are off.
  std::uint64_t advBlackholeDrops = 0;
  std::uint64_t advGreyholeDrops = 0;
  std::uint64_t advSelfishRefusals = 0;
  std::uint64_t advFlapTransitions = 0;
  std::uint64_t glrSuspicionsRaised = 0;
  std::uint64_t glrSuspectSkips = 0;
  std::uint64_t glrRecoveryActivations = 0;
  std::uint64_t glrRecoverySprays = 0;
  std::uint64_t expiredDrops = 0;
  std::uint64_t bufferedAtEnd = 0;
  std::uint64_t macQueueAtEnd = 0;

  // First-delivery latency distribution, read from the online sketches
  // (stats/sketch.hpp) — bounded memory at any message count. Quantiles are
  // t-digest estimates (exact below the sketch's buffer size); min/max/
  // stddev come from the exact streaming moments. All zero when nothing is
  // delivered.
  double latencyP50 = 0.0;
  double latencyP90 = 0.0;
  double latencyP99 = 0.0;
  double latencyMin = 0.0;
  double latencyMax = 0.0;
  double latencyStddev = 0.0;

  // Observability: flight-recorder records written (0 with tracing off).
  // Deterministic — a pure function of the simulated event sequence.
  std::uint64_t traceEventsRecorded = 0;

  // Run health.
  std::uint64_t eventsExecuted = 0;
  double wallSeconds = 0.0;
};

/// Runs one scenario to completion and collects results.
[[nodiscard]] ScenarioResult runScenario(const ScenarioConfig& cfg);

/// Runs `runs` replicate seeds of the same configuration across the
/// deterministic parallel engine (runner.hpp): cells execute on
/// GLR_BENCH_THREADS workers (default hardware_concurrency) and land in
/// replicate order, so the returned vector is identical to a serial loop at
/// any thread count.
[[nodiscard]] std::vector<ScenarioResult> runScenarioSeeds(
    ScenarioConfig cfg, int runs);

/// Projects one metric across runs (for confidence intervals).
[[nodiscard]] std::vector<double> metricAcross(
    const std::vector<ScenarioResult>& rs, double ScenarioResult::*field);

}  // namespace glr::experiment
