#include "experiment/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <type_traits>
#include <utility>

#include "experiment/tables.hpp"

namespace glr::experiment {

// Workers hand results back by writing results[cellIndex]; that is only
// race-free-by-construction because a ScenarioResult is plain data.
static_assert(std::is_trivially_copyable_v<ScenarioResult>,
              "ScenarioResult must stay plain data: sweep workers write "
              "disjoint vector slots concurrently");

unsigned ThreadPool::defaultThreads() {
  const int env = envInt("GLR_BENCH_THREADS", 0);
  if (env > 0) return static_cast<unsigned>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads > 0 ? threads : defaultThreads()) {
  queues_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mu_};
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop(unsigned participant) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock{mu_};
      wake_.wait(lock, [&] { return stopping_ || batchGeneration_ != seen; });
      if (stopping_) return;
      seen = batchGeneration_;
    }
    runBatch(participant);
  }
}

bool ThreadPool::popTask(unsigned participant, std::size_t& index) {
  {
    Queue& own = *queues_[participant];
    std::lock_guard lock{own.mu};
    if (!own.tasks.empty()) {
      index = own.tasks.back();  // LIFO on the owner's deque
      own.tasks.pop_back();
      return true;
    }
  }
  for (unsigned off = 1; off < threads_; ++off) {
    Queue& victim = *queues_[(participant + off) % threads_];
    std::lock_guard lock{victim.mu};
    if (!victim.tasks.empty()) {
      index = victim.tasks.front();  // FIFO steal from the far end
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::runBatch(unsigned participant) {
  std::size_t index = 0;
  while (popTask(participant, index)) {
    bool skip;
    {
      std::lock_guard lock{mu_};
      skip = aborted_;
    }
    if (!skip) {
      try {
        (*batchFn_)(index);
      } catch (...) {
        std::lock_guard lock{mu_};
        if (!firstError_) firstError_ = std::current_exception();
        aborted_ = true;  // drain the rest without executing
      }
    }
    std::lock_guard lock{mu_};
    if (--remaining_ == 0) done_.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    // Degenerate pool: the serial loop, in index order, on this thread.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    std::lock_guard lock{mu_};
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[i % threads_];
      std::lock_guard qlock{q.mu};
      q.tasks.push_back(i);
    }
    batchFn_ = &fn;
    remaining_ = n;
    firstError_ = nullptr;
    aborted_ = false;
    ++batchGeneration_;
  }
  wake_.notify_all();

  runBatch(0);  // the calling thread is participant 0

  std::exception_ptr error;
  {
    std::unique_lock lock{mu_};
    done_.wait(lock, [&] { return remaining_ == 0; });
    batchFn_ = nullptr;
    error = std::exchange(firstError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

// The comparator below must enumerate every ScenarioResult field except
// wallSeconds; a field it misses silently escapes the determinism
// contract. The struct is 49 tightly-packed 8-byte scalars — adding one
// trips this assert, which is your cue to extend the comparator.
static_assert(sizeof(ScenarioResult) == 49 * sizeof(std::uint64_t),
              "ScenarioResult changed: update bitIdenticalIgnoringWall");

bool bitIdenticalIgnoringWall(const ScenarioResult& a,
                              const ScenarioResult& b) {
  return a.created == b.created && a.delivered == b.delivered &&
         a.deliveryRatio == b.deliveryRatio && a.avgLatency == b.avgLatency &&
         a.avgHops == b.avgHops && a.maxPeakStorage == b.maxPeakStorage &&
         a.avgPeakStorage == b.avgPeakStorage && a.macDataTx == b.macDataTx &&
         a.macQueueDrops == b.macQueueDrops &&
         a.macRetryDrops == b.macRetryDrops &&
         a.macRadioDownDrops == b.macRadioDownDrops &&
         a.macAckTimeouts == b.macAckTimeouts &&
         a.macBusyDeferrals == b.macBusyDeferrals &&
         a.collisions == b.collisions &&
         a.airTimeSeconds == b.airTimeSeconds &&
         a.faultFrameDrops == b.faultFrameDrops &&
         a.duplicateDeliveries == b.duplicateDeliveries &&
         a.perturbations == b.perturbations && a.glrDataSent == b.glrDataSent &&
         a.glrDataReceived == b.glrDataReceived &&
         a.glrDuplicatesDropped == b.glrDuplicatesDropped &&
         a.glrCustodyAcksSent == b.glrCustodyAcksSent &&
         a.glrCustodyAcksReceived == b.glrCustodyAcksReceived &&
         a.glrCacheTimeouts == b.glrCacheTimeouts &&
         a.glrTxFailures == b.glrTxFailures &&
         a.glrFaceTransitions == b.glrFaceTransitions &&
         a.sendRejects == b.sendRejects &&
         a.bufferEvictions == b.bufferEvictions &&
         a.custodyRefusals == b.custodyRefusals &&
         a.advBlackholeDrops == b.advBlackholeDrops &&
         a.advGreyholeDrops == b.advGreyholeDrops &&
         a.advSelfishRefusals == b.advSelfishRefusals &&
         a.advFlapTransitions == b.advFlapTransitions &&
         a.glrSuspicionsRaised == b.glrSuspicionsRaised &&
         a.glrSuspectSkips == b.glrSuspectSkips &&
         a.glrRecoveryActivations == b.glrRecoveryActivations &&
         a.glrRecoverySprays == b.glrRecoverySprays &&
         a.expiredDrops == b.expiredDrops &&
         a.bufferedAtEnd == b.bufferedAtEnd &&
         a.macQueueAtEnd == b.macQueueAtEnd &&
         a.latencyP50 == b.latencyP50 && a.latencyP90 == b.latencyP90 &&
         a.latencyP99 == b.latencyP99 && a.latencyMin == b.latencyMin &&
         a.latencyMax == b.latencyMax &&
         a.latencyStddev == b.latencyStddev &&
         a.traceEventsRecorded == b.traceEventsRecorded &&
         a.eventsExecuted == b.eventsExecuted;
}

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options opts) : opts_(opts) {}

std::vector<ScenarioResult> SweepRunner::runCells(
    const std::vector<ScenarioConfig>& cells) {
  std::vector<ScenarioResult> results(cells.size());
  if (cells.empty()) return results;

  // Size the pool per batch: the requested (or default) thread count, but
  // never more workers than cells — idle OS threads would only add spawn
  // and wake overhead. Cell cost dwarfs pool construction.
  const unsigned requested =
      opts_.threads > 0 ? opts_.threads : ThreadPool::defaultThreads();
  ThreadPool pool{
      static_cast<unsigned>(std::min<std::size_t>(cells.size(), requested))};

  struct Progress {
    std::mutex mu;
    std::size_t done = 0;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point lastPrint{};
  } progress;

  pool.parallelFor(cells.size(), [&](std::size_t i) {
    results[i] = runScenario(cells[i]);
    if (!opts_.progress) return;
    std::lock_guard lock{progress.mu};
    ++progress.done;
    const auto now = std::chrono::steady_clock::now();
    const bool last = progress.done == cells.size();
    if (!last && now - progress.lastPrint < std::chrono::seconds(2)) return;
    progress.lastPrint = now;
    const double elapsed =
        std::chrono::duration<double>(now - progress.start).count();
    const double eta =
        elapsed / static_cast<double>(progress.done) *
        static_cast<double>(cells.size() - progress.done);
    std::fprintf(stderr,
                 "[%s] %zu/%zu cells (%.0f%%) on %u thread(s), "
                 "elapsed %.1fs, eta %.1fs\n",
                 opts_.label, progress.done, cells.size(),
                 100.0 * static_cast<double>(progress.done) /
                     static_cast<double>(cells.size()),
                 pool.threadCount(), elapsed, last ? 0.0 : eta);
  });
  return results;
}

std::vector<std::vector<ScenarioResult>> SweepRunner::run(
    const std::vector<ScenarioConfig>& grid, int runs) {
  std::vector<ScenarioConfig> cells;
  if (runs > 0) {
    cells.reserve(grid.size() * static_cast<std::size_t>(runs));
    for (const ScenarioConfig& cfg : grid) {
      for (int s = 0; s < runs; ++s) {
        ScenarioConfig cell = cfg;
        cell.seed = seedForRun(cfg.seed, s);
        cells.push_back(cell);
      }
    }
  }

  std::vector<ScenarioResult> flat = runCells(cells);

  std::vector<std::vector<ScenarioResult>> grouped(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    auto& group = grouped[g];
    group.reserve(static_cast<std::size_t>(runs > 0 ? runs : 0));
    for (int s = 0; s < runs; ++s) {
      group.push_back(flat[g * static_cast<std::size_t>(runs) +
                           static_cast<std::size_t>(s)]);
    }
  }
  return grouped;
}

}  // namespace glr::experiment
