#include "experiment/runner.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "checkpoint/codec.hpp"
#include "checkpoint/file.hpp"
#include "checkpoint/scenario_checkpoint.hpp"
#include "experiment/tables.hpp"
#include "sim/simulator.hpp"

namespace glr::experiment {

// Workers hand results back by writing results[cellIndex]; that is only
// race-free-by-construction because a ScenarioResult is plain data.
static_assert(std::is_trivially_copyable_v<ScenarioResult>,
              "ScenarioResult must stay plain data: sweep workers write "
              "disjoint vector slots concurrently");

unsigned ThreadPool::defaultThreads() {
  const int env = envInt("GLR_BENCH_THREADS", 0);
  if (env > 0) return static_cast<unsigned>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads > 0 ? threads : defaultThreads()) {
  queues_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mu_};
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop(unsigned participant) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock{mu_};
      wake_.wait(lock, [&] { return stopping_ || batchGeneration_ != seen; });
      if (stopping_) return;
      seen = batchGeneration_;
    }
    runBatch(participant);
  }
}

bool ThreadPool::popTask(unsigned participant, std::size_t& index) {
  {
    Queue& own = *queues_[participant];
    std::lock_guard lock{own.mu};
    if (!own.tasks.empty()) {
      index = own.tasks.back();  // LIFO on the owner's deque
      own.tasks.pop_back();
      return true;
    }
  }
  for (unsigned off = 1; off < threads_; ++off) {
    Queue& victim = *queues_[(participant + off) % threads_];
    std::lock_guard lock{victim.mu};
    if (!victim.tasks.empty()) {
      index = victim.tasks.front();  // FIFO steal from the far end
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::runBatch(unsigned participant) {
  std::size_t index = 0;
  while (popTask(participant, index)) {
    bool skip;
    {
      std::lock_guard lock{mu_};
      skip = aborted_;
    }
    if (!skip) {
      try {
        (*batchFn_)(index);
      } catch (...) {
        std::lock_guard lock{mu_};
        if (!firstError_) firstError_ = std::current_exception();
        aborted_ = true;  // drain the rest without executing
      }
    }
    std::lock_guard lock{mu_};
    if (--remaining_ == 0) done_.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    // Degenerate pool: the serial loop, in index order, on this thread.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    std::lock_guard lock{mu_};
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[i % threads_];
      std::lock_guard qlock{q.mu};
      q.tasks.push_back(i);
    }
    batchFn_ = &fn;
    remaining_ = n;
    firstError_ = nullptr;
    aborted_ = false;
    ++batchGeneration_;
  }
  wake_.notify_all();

  runBatch(0);  // the calling thread is participant 0

  std::exception_ptr error;
  {
    std::unique_lock lock{mu_};
    done_.wait(lock, [&] { return remaining_ == 0; });
    batchFn_ = nullptr;
    error = std::exchange(firstError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

// The comparator below must enumerate every ScenarioResult field except
// wallSeconds; a field it misses silently escapes the determinism
// contract. The struct is 49 tightly-packed 8-byte scalars — adding one
// trips this assert, which is your cue to extend the comparator.
static_assert(sizeof(ScenarioResult) == 49 * sizeof(std::uint64_t),
              "ScenarioResult changed: update bitIdenticalIgnoringWall");

bool bitIdenticalIgnoringWall(const ScenarioResult& a,
                              const ScenarioResult& b) {
  return a.created == b.created && a.delivered == b.delivered &&
         a.deliveryRatio == b.deliveryRatio && a.avgLatency == b.avgLatency &&
         a.avgHops == b.avgHops && a.maxPeakStorage == b.maxPeakStorage &&
         a.avgPeakStorage == b.avgPeakStorage && a.macDataTx == b.macDataTx &&
         a.macQueueDrops == b.macQueueDrops &&
         a.macRetryDrops == b.macRetryDrops &&
         a.macRadioDownDrops == b.macRadioDownDrops &&
         a.macAckTimeouts == b.macAckTimeouts &&
         a.macBusyDeferrals == b.macBusyDeferrals &&
         a.collisions == b.collisions &&
         a.airTimeSeconds == b.airTimeSeconds &&
         a.faultFrameDrops == b.faultFrameDrops &&
         a.duplicateDeliveries == b.duplicateDeliveries &&
         a.perturbations == b.perturbations && a.glrDataSent == b.glrDataSent &&
         a.glrDataReceived == b.glrDataReceived &&
         a.glrDuplicatesDropped == b.glrDuplicatesDropped &&
         a.glrCustodyAcksSent == b.glrCustodyAcksSent &&
         a.glrCustodyAcksReceived == b.glrCustodyAcksReceived &&
         a.glrCacheTimeouts == b.glrCacheTimeouts &&
         a.glrTxFailures == b.glrTxFailures &&
         a.glrFaceTransitions == b.glrFaceTransitions &&
         a.sendRejects == b.sendRejects &&
         a.bufferEvictions == b.bufferEvictions &&
         a.custodyRefusals == b.custodyRefusals &&
         a.advBlackholeDrops == b.advBlackholeDrops &&
         a.advGreyholeDrops == b.advGreyholeDrops &&
         a.advSelfishRefusals == b.advSelfishRefusals &&
         a.advFlapTransitions == b.advFlapTransitions &&
         a.glrSuspicionsRaised == b.glrSuspicionsRaised &&
         a.glrSuspectSkips == b.glrSuspectSkips &&
         a.glrRecoveryActivations == b.glrRecoveryActivations &&
         a.glrRecoverySprays == b.glrRecoverySprays &&
         a.expiredDrops == b.expiredDrops &&
         a.bufferedAtEnd == b.bufferedAtEnd &&
         a.macQueueAtEnd == b.macQueueAtEnd &&
         a.latencyP50 == b.latencyP50 && a.latencyP90 == b.latencyP90 &&
         a.latencyP99 == b.latencyP99 && a.latencyMin == b.latencyMin &&
         a.latencyMax == b.latencyMax &&
         a.latencyStddev == b.latencyStddev &&
         a.traceEventsRecorded == b.traceEventsRecorded &&
         a.eventsExecuted == b.eventsExecuted;
}

namespace {

// Sweep journal: [u32 magic "GLRJ"] [u16 version] [u16 flags=0]
// [u64 cellCount] [u64 sweepDigest], then per finished cell one record of
// [u64 cellIndex] [raw ScenarioResult bytes]. Records are fflushed as they
// land, so a killed sweep loses at most the record being written — and a
// torn tail is detected by length and truncated away on resume. The result
// payload is the host's in-memory layout (trivially copyable, asserted
// above): the journal is a same-machine crash-recovery artifact, not an
// interchange format.
constexpr std::uint32_t kJournalMagic = 0x4A524C47;  // "GLRJ"
constexpr std::uint16_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderSize = 4 + 2 + 2 + 8 + 8;
constexpr std::size_t kJournalRecordSize = 8 + sizeof(ScenarioResult);

/// Chained FNV over every cell's config digest: two sweeps share a journal
/// only if they run the same cells in the same order.
std::uint64_t sweepDigest(const std::vector<ScenarioConfig>& cells) {
  std::uint64_t h = ckpt::fnv1a64(nullptr, 0);
  for (const ScenarioConfig& cell : cells) {
    const std::uint64_t d = ckpt::configDigest(cell);
    h = ckpt::fnv1a64(&d, sizeof d, h);
  }
  return h;
}

[[noreturn]] void journalFail(const std::string& path,
                              const std::string& what) {
  throw std::runtime_error{"sweep journal " + path + ": " + what};
}

/// Loads completed-cell results from an existing journal into `results`,
/// marking them in `done`. Returns the number of distinct cells recovered
/// (0 when the file does not exist). A journal written by a different sweep
/// is refused loudly; a torn trailing record is truncated away so appends
/// restart on a record boundary.
std::size_t loadJournal(const std::string& path, std::uint64_t digest,
                        std::vector<ScenarioResult>& results,
                        std::vector<char>& done) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;  // no journal yet: fresh sweep

  unsigned char header[kJournalHeaderSize];
  if (std::fread(header, 1, sizeof header, f) != sizeof header) {
    std::fclose(f);
    journalFail(path, "truncated header");
  }
  ckpt::Decoder d{header, sizeof header, path + " header"};
  if (d.u32() != kJournalMagic) {
    std::fclose(f);
    journalFail(path, "bad magic (not a sweep journal)");
  }
  const std::uint16_t version = d.u16();
  if (version != kJournalVersion) {
    std::fclose(f);
    journalFail(path, "unsupported version " + std::to_string(version));
  }
  d.u16();  // flags
  const std::uint64_t cellCount = d.u64();
  const std::uint64_t theirDigest = d.u64();
  if (cellCount != results.size() || theirDigest != digest) {
    std::fclose(f);
    journalFail(path,
                "written by a different sweep (" +
                    std::to_string(cellCount) + " cells, digest " +
                    std::to_string(theirDigest) + "; this sweep has " +
                    std::to_string(results.size()) + " cells, digest " +
                    std::to_string(digest) + ") — refusing to mix results");
  }

  std::size_t resumed = 0;
  std::size_t goodBytes = kJournalHeaderSize;
  unsigned char record[kJournalRecordSize];
  for (;;) {
    const std::size_t got = std::fread(record, 1, sizeof record, f);
    if (got != sizeof record) break;  // torn tail (or clean EOF at got==0)
    std::uint64_t index = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      index |= static_cast<std::uint64_t>(record[b]) << (8 * b);
    }
    if (index >= results.size()) {
      std::fclose(f);
      journalFail(path, "record holds cell index " + std::to_string(index) +
                            " out of range");
    }
    std::memcpy(&results[index], record + 8, sizeof(ScenarioResult));
    if (!done[index]) ++resumed;
    done[index] = 1;
    goodBytes += sizeof record;
  }
  std::fclose(f);
  // Drop a torn tail so the resumed run appends on a record boundary.
  if (::truncate(path.c_str(), static_cast<off_t>(goodBytes)) != 0) {
    journalFail(path, "cannot truncate torn tail: " +
                          std::string{std::strerror(errno)});
  }
  return resumed;
}

/// Opens the journal for appending, writing the header first on a fresh
/// file. Never returns null: every failure throws with path + errno.
std::FILE* openJournal(const std::string& path, std::uint64_t digest,
                       std::size_t cellCount, bool fresh) {
  std::FILE* f = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (!f) {
    journalFail(path, "cannot open for writing: " +
                          std::string{std::strerror(errno)});
  }
  if (fresh) {
    ckpt::Encoder e;
    e.u32(kJournalMagic);
    e.u16(kJournalVersion);
    e.u16(0);
    e.u64(cellCount);
    e.u64(digest);
    if (std::fwrite(e.data().data(), 1, e.data().size(), f) !=
            e.data().size() ||
        std::fflush(f) != 0) {
      std::fclose(f);
      journalFail(path, "cannot write header: " +
                            std::string{std::strerror(errno)});
    }
  }
  return f;
}

void appendJournalRecord(std::FILE* f, const std::string& path,
                         std::size_t index, const ScenarioResult& r) {
  unsigned char record[kJournalRecordSize];
  for (std::size_t b = 0; b < 8; ++b) {
    record[b] =
        static_cast<unsigned char>(static_cast<std::uint64_t>(index) >> (8 * b));
  }
  std::memcpy(record + 8, &r, sizeof r);
  if (std::fwrite(record, 1, sizeof record, f) != sizeof record ||
      std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    journalFail(path, "cannot append record: " +
                          std::string{std::strerror(errno)});
  }
}

}  // namespace

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options opts) : opts_(std::move(opts)) {}

std::vector<ScenarioResult> SweepRunner::runCells(
    const std::vector<ScenarioConfig>& cells) {
  stats_ = Stats{};
  std::vector<ScenarioResult> results(cells.size());
  if (cells.empty()) return results;

  // The per-cell config actually executed: the caller's cell plus this
  // runner's crash-safety wiring. Built identically on fresh and resumed
  // sweeps, so the journal digest and the snapshot digests line up.
  const bool snapshotCells =
      !opts_.journalPath.empty() && opts_.cellCheckpointEvery > 0.0;
  const auto cellConfig = [&](std::size_t i) {
    ScenarioConfig cfg = cells[i];
    if (snapshotCells) {
      cfg.checkpointPath =
          opts_.journalPath + ".cell" + std::to_string(i) + ".ckpt";
      cfg.checkpointEvery = opts_.cellCheckpointEvery;
    }
    if (opts_.cellTimeout > 0.0) cfg.wallDeadlineSeconds = opts_.cellTimeout;
    return cfg;
  };

  // Resume: recover finished cells from the journal, then open it for
  // appends. The digest is over the wired configs (checkpointEvery shapes
  // the event sequence, so a sweep rerun with a different snapshot cadence
  // is a different sweep).
  std::vector<char> done(cells.size(), 0);
  std::FILE* journal = nullptr;
  std::mutex journalMu;
  if (!opts_.journalPath.empty()) {
    std::vector<ScenarioConfig> wired;
    wired.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      wired.push_back(cellConfig(i));
    }
    const std::uint64_t digest = sweepDigest(wired);
    stats_.cellsResumed =
        loadJournal(opts_.journalPath, digest, results, done);
    journal = openJournal(opts_.journalPath, digest, cells.size(),
                          stats_.cellsResumed == 0);
    if (opts_.progress && stats_.cellsResumed > 0) {
      std::fprintf(stderr, "[%s] journal %s: resuming with %zu/%zu cells done\n",
                   opts_.label, opts_.journalPath.c_str(),
                   stats_.cellsResumed, cells.size());
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }
  if (pending.empty()) {
    if (journal) std::fclose(journal);
    return results;
  }

  std::mutex statsMu;

  // One cell, with snapshot pickup and the wall-clock watchdog. A usable
  // in-cell snapshot (present, intact, same config digest) continues the
  // interrupted run mid-flight; anything less reruns the cell from zero —
  // stale or torn snapshots are reported, never trusted. A watchdog abort
  // is retried with the SAME seed (picking up whatever snapshot the aborted
  // attempt left behind); retries exhausted is a loud sweep failure, never
  // a silently missing cell.
  const auto runCell = [&](std::size_t i) {
    const ScenarioConfig cfg = cellConfig(i);
    const int attempts = 1 + std::max(0, opts_.cellRetries);
    for (int attempt = 0;; ++attempt) {
      ScenarioConfig run = cfg;
      if (snapshotCells) {
        try {
          const ckpt::CheckpointFile snap =
              ckpt::CheckpointFile::read(cfg.checkpointPath);
          if (snap.configDigest != ckpt::configDigest(cfg)) {
            std::fprintf(stderr,
                         "[%s] cell %zu: snapshot %s is from a different "
                         "configuration; rerunning from scratch\n",
                         opts_.label, i, cfg.checkpointPath.c_str());
          } else {
            run.restoreFrom = cfg.checkpointPath;
            std::lock_guard lock{statsMu};
            ++stats_.cellsRestored;
          }
        } catch (const std::exception& e) {
          // Missing file (fresh cell) or unreadable snapshot: run whole.
          // Only an existing-but-broken file deserves a notice.
          if (std::FILE* probe = std::fopen(cfg.checkpointPath.c_str(), "rb")) {
            std::fclose(probe);
            std::fprintf(stderr,
                         "[%s] cell %zu: unusable snapshot (%s); rerunning "
                         "from scratch\n",
                         opts_.label, i, e.what());
          }
        }
      }
      try {
        results[i] = runScenario(run);
        if (snapshotCells) std::remove(cfg.checkpointPath.c_str());
        return;
      } catch (const sim::WallClockTimeout&) {
        {
          std::lock_guard lock{statsMu};
          ++stats_.cellTimeouts;
        }
        if (attempt + 1 >= attempts) {
          std::fprintf(stderr,
                       "[%s] FATAL: cell %zu (seed %llu) exceeded the %gs "
                       "wall deadline on all %d attempt(s); failing the "
                       "sweep\n",
                       opts_.label, i,
                       static_cast<unsigned long long>(cfg.seed),
                       opts_.cellTimeout, attempts);
          throw std::runtime_error{
              "sweep cell " + std::to_string(i) + " exceeded the " +
              std::to_string(opts_.cellTimeout) + "s wall deadline " +
              std::to_string(attempts) + " time(s)"};
        }
        std::fprintf(stderr,
                     "[%s] cell %zu (seed %llu) hit the %gs wall deadline "
                     "(attempt %d/%d); retrying with the same seed\n",
                     opts_.label, i,
                     static_cast<unsigned long long>(cfg.seed),
                     opts_.cellTimeout, attempt + 1, attempts);
      }
    }
  };

  // Size the pool per batch: the requested (or default) thread count, but
  // never more workers than pending cells — idle OS threads would only add
  // spawn and wake overhead. Cell cost dwarfs pool construction.
  const unsigned requested =
      opts_.threads > 0 ? opts_.threads : ThreadPool::defaultThreads();
  ThreadPool pool{
      static_cast<unsigned>(std::min<std::size_t>(pending.size(), requested))};

  struct Progress {
    std::mutex mu;
    std::size_t done = 0;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point lastPrint{};
  } progress;

  std::exception_ptr poolError;
  try {
    pool.parallelFor(pending.size(), [&](std::size_t p) {
      const std::size_t i = pending[p];
      runCell(i);
      if (journal) {
        std::lock_guard lock{journalMu};
        appendJournalRecord(journal, opts_.journalPath, i, results[i]);
      }
      if (!opts_.progress) return;
      std::lock_guard lock{progress.mu};
      ++progress.done;
      const auto now = std::chrono::steady_clock::now();
      const bool last = progress.done == pending.size();
      if (!last && now - progress.lastPrint < std::chrono::seconds(2)) return;
      progress.lastPrint = now;
      const double elapsed =
          std::chrono::duration<double>(now - progress.start).count();
      // ETA over the cells this process actually runs — resumed cells cost
      // nothing, so they are excluded from the rate and the remainder.
      const double eta =
          elapsed / static_cast<double>(progress.done) *
          static_cast<double>(pending.size() - progress.done);
      std::fprintf(stderr,
                   "[%s] %zu/%zu cells (%.0f%%, %zu resumed) on %u "
                   "thread(s), elapsed %.1fs, eta %.1fs\n",
                   opts_.label, stats_.cellsResumed + progress.done,
                   cells.size(),
                   100.0 *
                       static_cast<double>(stats_.cellsResumed +
                                           progress.done) /
                       static_cast<double>(cells.size()),
                   stats_.cellsResumed, pool.threadCount(), elapsed,
                   last ? 0.0 : eta);
    });
  } catch (...) {
    poolError = std::current_exception();
  }
  if (journal) std::fclose(journal);
  if (poolError) std::rethrow_exception(poolError);
  return results;
}

std::vector<std::vector<ScenarioResult>> SweepRunner::run(
    const std::vector<ScenarioConfig>& grid, int runs) {
  std::vector<ScenarioConfig> cells;
  if (runs > 0) {
    cells.reserve(grid.size() * static_cast<std::size_t>(runs));
    for (const ScenarioConfig& cfg : grid) {
      for (int s = 0; s < runs; ++s) {
        ScenarioConfig cell = cfg;
        cell.seed = seedForRun(cfg.seed, s);
        cells.push_back(cell);
      }
    }
  }

  std::vector<ScenarioResult> flat = runCells(cells);

  std::vector<std::vector<ScenarioResult>> grouped(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    auto& group = grouped[g];
    group.reserve(static_cast<std::size_t>(runs > 0 ? runs : 0));
    for (int s = 0; s < runs; ++s) {
      group.push_back(flat[g * static_cast<std::size_t>(runs) +
                           static_cast<std::size_t>(s)]);
    }
  }
  return grouped;
}

}  // namespace glr::experiment
