#include "experiment/traffic.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"

namespace glr::experiment {

namespace {

sim::EventDesc trafficDesc(ckpt::EventKind kind) {
  sim::EventDesc d;
  d.kind = kind;
  return d;
}

}  // namespace

void schedulePaperWorkload(sim::Simulator& sim,
                           const std::vector<routing::DtnAgent*>& agents,
                           int trafficNodes, int numMessages,
                           double trafficStart, double messageInterval,
                           sim::Rng trafficRng) {
  constexpr std::uint64_t kPairEnumerationCap = 1u << 20;
  const auto traffic = static_cast<std::uint64_t>(trafficNodes);
  const auto scheduleMessage = [&](int k, int src, int dst) {
    sim::EventDesc desc = trafficDesc(ckpt::kTrafficPaperArrival);
    desc.i0 = src;
    desc.i1 = dst;
    sim.schedule(trafficStart + k * messageInterval, desc,
                 [agent = agents[static_cast<std::size_t>(src)], dst] {
                   agent->originate(dst);
                 });
  };
  if (traffic * (traffic - 1) <= kPairEnumerationCap) {
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(traffic * (traffic - 1));
    for (int i = 0; i < trafficNodes; ++i) {
      for (int j = 0; j < trafficNodes; ++j) {
        if (i != j) pairs.emplace_back(i, j);
      }
    }
    for (std::size_t i = pairs.size(); i > 1; --i) {
      std::swap(pairs[i - 1], pairs[trafficRng.below(i)]);
    }
    for (int k = 0; k < numMessages; ++k) {
      const auto [src, dst] =
          pairs[static_cast<std::size_t>(k) % pairs.size()];
      scheduleMessage(k, src, dst);
    }
  } else {
    for (int k = 0; k < numMessages; ++k) {
      const auto src = static_cast<int>(trafficRng.below(traffic));
      auto dst = static_cast<int>(trafficRng.below(traffic - 1));
      if (dst >= src) ++dst;
      scheduleMessage(k, src, dst);
    }
  }
}

TrafficProcess::TrafficProcess(sim::Simulator& sim,
                               std::vector<routing::DtnAgent*> agents,
                               Params params, sim::Rng rng)
    : sim_(sim),
      agents_(std::move(agents)),
      params_(std::move(params)),
      model_(Model::kPoisson),
      rng_(rng) {
  const TrafficSpec& spec = params_.spec;
  if (spec.model == "poisson") {
    model_ = Model::kPoisson;
  } else if (spec.model == "onoff") {
    model_ = Model::kOnOff;
  } else if (spec.model == "hotspot") {
    model_ = Model::kHotspot;
  } else if (spec.model == "flashcrowd") {
    model_ = Model::kFlashCrowd;
  } else {
    throw std::invalid_argument{"TrafficProcess: unknown model '" +
                                spec.model + "'"};
  }
  if (params_.trafficNodes < 2 ||
      static_cast<std::size_t>(params_.trafficNodes) > agents_.size()) {
    throw std::invalid_argument{"TrafficProcess: bad trafficNodes"};
  }
  if (!(spec.rate > 0.0)) {
    throw std::invalid_argument{"TrafficProcess: rate must be > 0"};
  }
  if (params_.horizon <= params_.start) {
    throw std::invalid_argument{"TrafficProcess: empty traffic window"};
  }

  maxRate_ = spec.rate;
  switch (model_) {
    case Model::kPoisson:
      break;
    case Model::kOnOff: {
      if (!(spec.onMean > 0.0) || !(spec.offMean > 0.0)) {
        throw std::invalid_argument{"TrafficProcess: on/off means must be > 0"};
      }
      sources_.resize(static_cast<std::size_t>(params_.trafficNodes));
      for (std::size_t s = 0; s < sources_.size(); ++s) {
        sources_[s].rng = rng_.fork(s + 1);
      }
      break;
    }
    case Model::kHotspot: {
      if (!(spec.hotspotFraction > 0.0) || spec.hotspotFraction > 1.0 ||
          spec.hotspotWeight < 0.0 || spec.hotspotWeight > 1.0) {
        throw std::invalid_argument{"TrafficProcess: bad hotspot knobs"};
      }
      hotCount_ = std::clamp<int>(
          static_cast<int>(
              std::llround(spec.hotspotFraction * params_.trafficNodes)),
          1, params_.trafficNodes);
      break;
    }
    case Model::kFlashCrowd: {
      if (!(spec.flashMultiplier >= 1.0) || spec.flashStart < 0.0 ||
          spec.flashDuration < 0.0 ||
          spec.flashStart + spec.flashDuration > 1.0) {
        throw std::invalid_argument{"TrafficProcess: bad flashcrowd knobs"};
      }
      const double window = params_.horizon - params_.start;
      flashFrom_ = params_.start + spec.flashStart * window;
      flashUntil_ = flashFrom_ + spec.flashDuration * window;
      maxRate_ = spec.rate * spec.flashMultiplier;
      break;
    }
  }
}

double TrafficProcess::rateAt(sim::SimTime t) const {
  if (model_ == Model::kFlashCrowd && t >= flashFrom_ && t < flashUntil_) {
    return params_.spec.rate * params_.spec.flashMultiplier;
  }
  return params_.spec.rate;
}

void TrafficProcess::start() {
  if (model_ == Model::kOnOff) {
    // Each source starts in its stationary phase (ON with probability
    // onMean / (onMean + offMean)) so the aggregate rate has no warm-up
    // transient, then alternates exponential phases from its own stream.
    const double duty =
        params_.spec.onMean / (params_.spec.onMean + params_.spec.offMean);
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      Source& src = sources_[s];
      src.on = src.rng.bernoulli(duty);
      togglePhase(s);  // schedules the first phase end
      if (src.on) scheduleSourceArrival(s);
    }
    return;
  }
  scheduleArrival();
}

// ------------------------------------------------- single-chain models ---

void TrafficProcess::scheduleArrival() {
  if (exhausted()) return;
  // Candidate arrivals at the envelope rate; flash-crowd thinning rejects
  // candidates outside the spike with probability 1 - rate(t)/maxRate
  // (Lewis-Shedler), which realises the exact inhomogeneous process without
  // cancelling or re-drawing pending events at the spike boundaries.
  const sim::SimTime at = std::max(params_.start, sim_.now()) +
                          rng_.exponential(1.0 / maxRate_);
  if (at >= params_.horizon) return;  // chain ends inside the horizon
  sim_.scheduleAt(at, trafficDesc(ckpt::kTrafficArrival),
                  [this] { arrival(); });
}

void TrafficProcess::arrival() {
  if (exhausted()) return;
  if (model_ == Model::kFlashCrowd) {
    const double accept = rateAt(sim_.now()) / maxRate_;
    if (accept < 1.0 && !rng_.bernoulli(accept)) {
      ++thinned_;
      scheduleArrival();
      return;
    }
  }
  originatePair(rng_, model_ == Model::kHotspot);
  scheduleArrival();
}

void TrafficProcess::originatePair(sim::Rng& rng, bool hot) {
  const auto traffic = static_cast<std::uint64_t>(params_.trafficNodes);
  int src;
  if (hot && rng.bernoulli(params_.spec.hotspotWeight)) {
    src = static_cast<int>(rng.below(static_cast<std::uint64_t>(hotCount_)));
  } else {
    src = static_cast<int>(rng.below(traffic));
  }
  auto dst = static_cast<int>(rng.below(traffic - 1));
  if (dst >= src) ++dst;
  ++generated_;
  agents_[static_cast<std::size_t>(src)]->originate(dst);
}

// ----------------------------------------------------------- ON/OFF -----

void TrafficProcess::togglePhase(std::size_t s) {
  Source& src = sources_[s];
  const double mean = src.on ? params_.spec.onMean : params_.spec.offMean;
  const sim::SimTime at =
      std::max(params_.start, sim_.now()) + src.rng.exponential(mean);
  if (at >= params_.horizon) return;
  sim::EventDesc desc = trafficDesc(ckpt::kTrafficSourceToggle);
  desc.u0 = static_cast<std::uint64_t>(s);
  sim_.scheduleAt(at, desc, [this, s] { phaseFlip(s); });
}

void TrafficProcess::phaseFlip(std::size_t s) {
  Source& source = sources_[s];
  source.on = !source.on;
  ++source.epoch;  // invalidate the previous phase's pending arrival
  togglePhase(s);
  if (source.on) scheduleSourceArrival(s);
}

void TrafficProcess::scheduleSourceArrival(std::size_t s) {
  if (exhausted()) return;
  Source& src = sources_[s];
  // Per-source ON rate such that the long-run aggregate over all sources
  // matches spec.rate: rate / (numSources * duty).
  const double duty =
      params_.spec.onMean / (params_.spec.onMean + params_.spec.offMean);
  const double onRate =
      params_.spec.rate /
      (static_cast<double>(sources_.size()) * duty);
  const sim::SimTime at = std::max(params_.start, sim_.now()) +
                          src.rng.exponential(1.0 / onRate);
  if (at >= params_.horizon) return;
  sim::EventDesc desc = trafficDesc(ckpt::kTrafficSourceArrival);
  desc.u0 = static_cast<std::uint64_t>(s);
  desc.u1 = src.epoch;
  sim_.scheduleAt(at, desc,
                  [this, s, epoch = src.epoch] { sourceArrival(s, epoch); });
}

void TrafficProcess::sourceArrival(std::size_t s, std::uint64_t epoch) {
  Source& src = sources_[s];
  if (epoch != src.epoch || !src.on || exhausted()) return;
  // The source id is the sender; the destination comes from its own stream.
  const auto traffic = static_cast<std::uint64_t>(params_.trafficNodes);
  auto dst = static_cast<int>(src.rng.below(traffic - 1));
  if (dst >= static_cast<int>(s)) ++dst;
  ++generated_;
  agents_[s]->originate(dst);
  scheduleSourceArrival(s);
}

// ------------------------------------------------------- checkpointing ---

void TrafficProcess::saveState(ckpt::Encoder& e) const {
  for (const std::uint64_t word : rng_.state()) e.u64(word);
  e.size(sources_.size());
  for (const Source& src : sources_) {
    e.boolean(src.on);
    e.u64(src.epoch);
    for (const std::uint64_t word : src.rng.state()) e.u64(word);
  }
  e.u64(generated_);
  e.u64(thinned_);
}

void TrafficProcess::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  const std::size_t n = d.checkedSize(d.u64(), 41);
  if (n != sources_.size()) {
    d.fail("traffic source count mismatch (config diverged)");
  }
  for (Source& src : sources_) {
    src.on = d.boolean();
    src.epoch = d.u64();
    for (std::uint64_t& word : rngState) word = d.u64();
    src.rng.setState(rngState);
  }
  generated_ = d.u64();
  thinned_ = d.u64();
}

void TrafficProcess::restoreArrivalEvent(const sim::EventKey& key) {
  sim_.scheduleKeyed(key, trafficDesc(ckpt::kTrafficArrival),
                     [this] { arrival(); });
}

void TrafficProcess::restoreToggleEvent(const sim::EventKey& key,
                                        std::size_t s) {
  if (s >= sources_.size()) {
    throw std::runtime_error{"TrafficProcess: toggle event for bad source"};
  }
  sim::EventDesc desc = trafficDesc(ckpt::kTrafficSourceToggle);
  desc.u0 = static_cast<std::uint64_t>(s);
  sim_.scheduleKeyed(key, desc, [this, s] { phaseFlip(s); });
}

void TrafficProcess::restoreSourceArrivalEvent(const sim::EventKey& key,
                                               std::size_t s,
                                               std::uint64_t epoch) {
  if (s >= sources_.size()) {
    throw std::runtime_error{"TrafficProcess: arrival event for bad source"};
  }
  sim::EventDesc desc = trafficDesc(ckpt::kTrafficSourceArrival);
  desc.u0 = static_cast<std::uint64_t>(s);
  desc.u1 = epoch;
  sim_.scheduleKeyed(key, desc,
                     [this, s, epoch] { sourceArrival(s, epoch); });
}

}  // namespace glr::experiment
