#pragma once
/// \file runner.hpp
/// Deterministic parallel experiment engine.
///
/// Every paper artifact (Tables 2-6, Figures 3-7, the ablation) is an
/// embarrassingly parallel grid of independent `(config, seed)` cells: a
/// scenario is a pure function of its config (scenario.hpp), so cells can
/// execute on any thread in any order as long as results land back in cell
/// order. `ThreadPool` provides the work-stealing execution substrate and
/// `SweepRunner` the sweep semantics:
///
///  * cells are enumerated up front (grid-major, seeds minor) and each
///    worker writes only `results[cellIndex]` — no shared mutable state;
///  * aggregation (stats::meanCI et al.) runs on the calling thread after
///    the pool joins, over the index-ordered results, so every printed
///    `mean ± CI` is bit-identical to the serial path at any thread count;
///  * the thread count comes from `GLR_BENCH_THREADS` (default:
///    `std::thread::hardware_concurrency()`); 1 degenerates to inline
///    serial execution on the calling thread with no pool threads at all.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiment/scenario.hpp"

namespace glr::experiment {

/// Work-stealing thread pool for batches of independent index tasks.
///
/// Participants are the calling thread plus `threads - 1` persistent
/// workers. `parallelFor(n, fn)` deals indices [0, n) round-robin into
/// per-participant deques; each participant drains its own deque LIFO and,
/// when empty, steals FIFO from the others — so a participant stuck on one
/// long cell sheds the rest of its share to idle threads. The call blocks
/// until every index ran and rethrows the first task exception after the
/// batch drains (remaining tasks are skipped once a task has thrown).
class ThreadPool {
 public:
  /// `threads == 0` picks defaultThreads(). The pool spawns `threads - 1`
  /// OS threads; a 1-thread pool spawns none and parallelFor runs inline,
  /// in index order — exactly the serial loop.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (workers + the calling thread).
  [[nodiscard]] unsigned threadCount() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) across the pool. Blocking barrier;
  /// safe to call repeatedly, not reentrant and not thread-safe itself
  /// (one batch at a time, issued from the owning thread).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// `GLR_BENCH_THREADS` if set and positive, else hardware_concurrency()
  /// (else 1 if even that is unknown).
  [[nodiscard]] static unsigned defaultThreads();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void workerLoop(unsigned participant);
  void runBatch(unsigned participant);
  /// Pops the next index for `participant` (own deque back, then steal from
  /// the fronts of the others). Returns false when every deque is empty.
  bool popTask(unsigned participant, std::size_t& index);

  unsigned threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;   // workers wait for a new batch
  std::condition_variable done_;   // owner waits for remaining_ == 0
  std::uint64_t batchGeneration_ = 0;
  bool stopping_ = false;

  const std::function<void(std::size_t)>* batchFn_ = nullptr;
  std::size_t remaining_ = 0;      // tasks not yet finished (under mu_)
  std::exception_ptr firstError_;  // first task exception (under mu_)
  bool aborted_ = false;           // set once a task threw (under mu_)
};

/// The seed used for replicate `i` of a config whose base seed is `base`.
/// (Kept identical to the historical serial runScenarioSeeds schedule so
/// all golden numbers survive the parallel engine.)
[[nodiscard]] constexpr std::uint64_t seedForRun(std::uint64_t base, int i) {
  return base + static_cast<std::uint64_t>(i) * 1009;
}

/// True when every field of `a` and `b` compares exactly equal except
/// `wallSeconds` (host timing — nondeterministic even on the serial path).
/// This is the parallel engine's regression contract: a sweep must satisfy
/// it cell-for-cell against the serial run at any thread count.
[[nodiscard]] bool bitIdenticalIgnoringWall(const ScenarioResult& a,
                                            const ScenarioResult& b);

/// Runs a (config grid) x (seeds) sweep across a thread pool.
class SweepRunner {
 public:
  struct Options {
    /// 0: ThreadPool::defaultThreads() (GLR_BENCH_THREADS / hardware).
    /// Whatever the request, a sweep never spawns more workers than it has
    /// cells — the pool is sized per run, so callers need no cap of their
    /// own.
    unsigned threads = 0;
    /// Print cell progress + ETA to stderr as workers finish cells.
    bool progress = false;
    /// Tag for progress lines, e.g. "tab3".
    const char* label = "sweep";

    /// Crash safety. Non-empty: runCells appends each finished cell's
    /// result to this journal file (one fflushed record per cell), and a
    /// rerun of the SAME sweep over the same journal skips the cells it
    /// already holds — a killed sweep resumes instead of restarting. The
    /// journal header carries a digest over every cell's config; pointing
    /// it at a different sweep throws rather than mixing results. A record
    /// torn by the kill (partial tail) is discarded, never misread.
    std::string journalPath;
    /// With journalPath: also snapshot each in-flight cell's simulation
    /// state every this many sim-seconds (to journalPath + ".cell<i>.ckpt",
    /// removed when the cell completes), so a resumed sweep restarts
    /// interrupted cells mid-run — bit-identically — instead of from zero.
    /// 0 disables in-cell snapshots (interrupted cells rerun whole).
    double cellCheckpointEvery = 0.0;
    /// Watchdog: a cell exceeding this many wall-clock seconds is aborted
    /// (counted in Stats::cellTimeouts), retried with the same seed up to
    /// cellRetries more times, then fails the sweep loudly. 0 disables.
    double cellTimeout = 0.0;
    /// Extra same-seed attempts after a cell's first wall-clock timeout.
    int cellRetries = 1;
  };

  /// Crash-safety accounting for the most recent run()/runCells() call.
  struct Stats {
    std::size_t cellsResumed = 0;   // completed results taken from journal
    std::size_t cellsRestored = 0;  // cells continued from in-cell snapshots
    std::size_t cellTimeouts = 0;   // watchdog aborts (incl. retried ones)
  };

  SweepRunner();  // default Options
  explicit SweepRunner(Options opts);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Enumerates `grid x runs` cells (seedForRun applied to each config's
  /// base seed), executes them across the pool, and returns results grouped
  /// per config in grid order with seeds in replicate order — the exact
  /// layout of calling runScenarioSeeds(grid[i], runs) for each i in turn.
  [[nodiscard]] std::vector<std::vector<ScenarioResult>> run(
      const std::vector<ScenarioConfig>& grid, int runs);

  /// Flat variant: executes arbitrary pre-built cells (each config's seed
  /// already substituted); results in cell order.
  [[nodiscard]] std::vector<ScenarioResult> runCells(
      const std::vector<ScenarioConfig>& cells);

 private:
  Options opts_;
  Stats stats_;
};

}  // namespace glr::experiment
