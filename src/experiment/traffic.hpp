#pragma once
/// \file traffic.hpp
/// Pluggable workload generation: who sends how many messages, when.
///
/// The paper's workload is a fixed schedule — every `messageInterval` one
/// message between a shuffled (src, dst) pair — which tops out at a few
/// hundred messages per run and never approaches saturation. This layer
/// keeps that schedule (model "paper", bit-identical to the historical
/// inline code) and adds stochastic arrival processes that can offer
/// millions of messages per run: homogeneous Poisson, bursty ON/OFF
/// sources, hotspot senders, and flash-crowd load spikes.
///
/// Every stochastic model is a self-rescheduling generator: at most one
/// pending kernel event per arrival chain, so a million-message run never
/// materialises its schedule up front. All draws come from a dedicated RNG
/// stream (per-source forks for ON/OFF), so switching traffic models never
/// perturbs placement, mobility, MAC or agent randomness, and runs stay
/// bit-identical across sweep thread counts.

#include <cstdint>
#include <string>
#include <vector>

#include "routing/dtn_agent.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace glr::experiment {

/// Arrival-process selection + knobs, embedded in ScenarioConfig. The
/// default ("paper") reproduces the legacy fixed schedule bit-identically;
/// every other field is read only by the model that names it.
struct TrafficSpec {
  /// "paper" | "poisson" | "onoff" | "hotspot" | "flashcrowd".
  std::string model = "paper";

  /// Aggregate offered load in messages/second (all models but "paper",
  /// which derives its load from numMessages / messageInterval). For
  /// "onoff" this is the long-run mean across sources; instantaneous load
  /// during ON periods is higher by (onMean + offMean) / onMean.
  double rate = 4.0;

  /// Hard cap on originations; 0 = bounded only by the horizon.
  std::uint64_t maxMessages = 0;

  // "onoff": each traffic node alternates exponential ON/OFF periods and
  // generates only while ON.
  double onMean = 10.0;   // mean ON duration, seconds
  double offMean = 30.0;  // mean OFF duration, seconds

  // "hotspot": a small subset of senders carries most of the load.
  double hotspotFraction = 0.1;  // fraction of traffic nodes that are hot
  double hotspotWeight = 0.9;    // probability a message originates hot

  // "flashcrowd": a Poisson baseline with one load spike. Start/duration
  // are fractions of the [trafficStart, horizon) window.
  double flashStart = 0.4;
  double flashDuration = 0.1;
  double flashMultiplier = 8.0;  // rate multiplier inside the spike
};

/// Schedules the paper's fixed workload: ordered (src, dst) pairs among the
/// traffic subset, shuffled, one message per interval, wrapping when more
/// messages than pairs are requested. Moved verbatim from runScenario — the
/// draw sequence on `trafficRng` is pinned by every golden, so this function
/// must not change what it draws. Enumerate-then-shuffle is O(T²) in the
/// traffic population; past the cap each pair is drawn directly (uniform
/// src, uniform dst != src — the same distribution when messages are few
/// relative to pairs) without materialising anything.
void schedulePaperWorkload(sim::Simulator& sim,
                           const std::vector<routing::DtnAgent*>& agents,
                           int trafficNodes, int numMessages,
                           double trafficStart, double messageInterval,
                           sim::Rng trafficRng);

/// Owns the generator events of one stochastic traffic model. Must outlive
/// the simulation run (scheduled arrivals close over its state), like
/// net::ChurnProcess.
class TrafficProcess {
 public:
  struct Params {
    TrafficSpec spec;
    double start = 10.0;    // no arrival before this time
    double horizon = 400.0; // no arrival at/after this time
    int trafficNodes = 45;  // senders/destinations are node ids [0, this)
  };

  /// Validates the spec (throws std::invalid_argument for an unknown model
  /// or out-of-range knobs). `agents` is indexed by node id.
  TrafficProcess(sim::Simulator& sim,
                 std::vector<routing::DtnAgent*> agents, Params params,
                 sim::Rng rng);

  TrafficProcess(const TrafficProcess&) = delete;
  TrafficProcess& operator=(const TrafficProcess&) = delete;

  /// Schedules the first arrival (or per-source phase events for "onoff").
  void start();

  /// Messages originated so far.
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  /// Arrival candidates suppressed by flash-crowd thinning (diagnostic).
  [[nodiscard]] std::uint64_t thinned() const { return thinned_; }

  /// Checkpoint support: generator RNG(s), per-source phase/epoch state and
  /// the generated/thinned counters. Construction-derived knobs (maxRate_,
  /// flash window, hotCount_) are re-derived from the config, not stored.
  /// Pending generator events are rebuilt via the restore*Event methods.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);
  void restoreArrivalEvent(const sim::EventKey& key);
  void restoreToggleEvent(const sim::EventKey& key, std::size_t s);
  void restoreSourceArrivalEvent(const sim::EventKey& key, std::size_t s,
                                 std::uint64_t epoch);

 private:
  enum class Model { kPoisson, kOnOff, kHotspot, kFlashCrowd };

  /// One ON/OFF source: its own RNG stream plus an epoch that invalidates
  /// in-flight arrival events when the phase toggles.
  struct Source {
    bool on = false;
    std::uint64_t epoch = 0;
    sim::Rng rng;
  };

  void scheduleArrival();              // kPoisson / kHotspot / kFlashCrowd
  void arrival();
  void togglePhase(std::size_t s);     // kOnOff
  /// Phase-toggle event body (named so restore recreates the callback).
  void phaseFlip(std::size_t s);
  void scheduleSourceArrival(std::size_t s);
  void sourceArrival(std::size_t s, std::uint64_t epoch);
  void originatePair(sim::Rng& rng, bool hot);
  [[nodiscard]] double rateAt(sim::SimTime t) const;
  [[nodiscard]] bool exhausted() const {
    return params_.spec.maxMessages != 0 &&
           generated_ >= params_.spec.maxMessages;
  }

  sim::Simulator& sim_;
  std::vector<routing::DtnAgent*> agents_;
  Params params_;
  Model model_;
  sim::Rng rng_;                 // single-chain models draw here, in order
  std::vector<Source> sources_;  // kOnOff: one per traffic node
  double maxRate_ = 0.0;         // thinning envelope (flash peak rate)
  double flashFrom_ = 0.0;       // absolute flash window
  double flashUntil_ = 0.0;
  int hotCount_ = 0;             // kHotspot: ids [0, hotCount_) are hot
  std::uint64_t generated_ = 0;
  std::uint64_t thinned_ = 0;
};

}  // namespace glr::experiment
