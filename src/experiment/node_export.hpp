#pragma once
/// \file node_export.hpp
/// Per-node counter export for post-hoc debugging: one row per node with
/// its MAC statistics, storage occupancy/peak, and protocol counters
/// (routing::ProtocolCounters harvested per agent instead of summed).
///
/// The scenario-level ScenarioResult answers "how did the run go"; this
/// answers "which node" — the question behind anomalies like GLR's
/// manhattan delivery gap, where a handful of nodes absorb the evictions.
/// Format follows the path extension: ".json" (an object with a "nodes"
/// array) or ".csv" (header + one line per node). Written once at scenario
/// end by runScenario when ScenarioConfig::nodeCountersPath is set — never
/// on the hot path.

#include <string>
#include <vector>

namespace glr::net {
class World;
}
namespace glr::routing {
class DtnAgent;
}

namespace glr::experiment {

/// Writes per-node counters for every node of `world` to `path` (format by
/// extension; anything other than ".json"/".csv" throws
/// std::invalid_argument). `agents[i]` must be node i's agent. Throws
/// std::runtime_error if the file cannot be written.
void exportNodeCounters(const std::string& path, net::World& world,
                        const std::vector<routing::DtnAgent*>& agents);

}  // namespace glr::experiment
