#pragma once
/// \file tables.hpp
/// Formatting helpers for the paper-vs-measured tables the benches print,
/// plus environment knobs controlling bench scale.

#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace glr::experiment {

/// "12.3 ± 0.4" with the given precision (the paper's `mean ± CI` format).
[[nodiscard]] std::string fmtCI(const stats::ConfidenceInterval& ci,
                                int precision = 1);

/// Fixed-precision number.
[[nodiscard]] std::string fmt(double v, int precision = 1);

/// Percentage, e.g. 0.979 -> "97.9%".
[[nodiscard]] std::string fmtPct(double ratio, int precision = 1);

/// Prints a row of cells padded to the given column widths.
void printRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

/// Prints a horizontal rule matching the column widths.
void printRule(const std::vector<int>& widths);

/// Integer environment variable with default (e.g. GLR_BENCH_RUNS).
[[nodiscard]] int envInt(const char* name, int fallback);

/// Bench scale control: full paper scale when GLR_PAPER_SCALE=1.
[[nodiscard]] bool paperScale();

/// Number of seeds per configuration: GLR_BENCH_RUNS, else 10 at paper
/// scale, else `fallback`.
[[nodiscard]] int benchRuns(int fallback = 2);

}  // namespace glr::experiment
