#include "experiment/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "dtn/metrics.hpp"
#include "experiment/runner.hpp"
#include "mobility/mobility.hpp"
#include "mobility/registry.hpp"
#include "net/churn.hpp"
#include "net/world.hpp"
#include "phy/propagation.hpp"
#include "routing/direct.hpp"
#include "routing/epidemic.hpp"
#include "routing/spray_wait.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

namespace glr::experiment {

const char* protocolName(Protocol p) {
  switch (p) {
    case Protocol::kGlr:
      return "GLR";
    case Protocol::kEpidemic:
      return "Epidemic";
    case Protocol::kDirectDelivery:
      return "DirectDelivery";
    case Protocol::kSprayAndWait:
      return "SprayAndWait";
  }
  return "?";
}

namespace {

/// RNG stream ids, one per subsystem, so configuration changes in one
/// subsystem never perturb another's draws. The diversity streams
/// (clusters/churn/radio) are only forked when their feature is enabled;
/// forking is const on the master, so even eager forks would not perturb
/// the other streams.
enum Stream : std::uint64_t {
  kPlacement = 1,
  kMobility = 2,      // + node id
  kTraffic = 3,
  kMac = 4,           // + node id
  kAgent = 5,         // + node id
  kClusters = 6,      // cluster-mobility home points
  kChurn = 7,         // duty-cycle toggles (per-node forks inside)
  kRadio = 8,         // heterogeneous per-node ranges
};

std::unique_ptr<routing::DtnAgent> makeAgent(const ScenarioConfig& cfg,
                                             net::World& world, int id,
                                             dtn::MetricsCollector* metrics,
                                             sim::Rng rng) {
  net::NeighborService::Params hello;
  hello.helloInterval = cfg.helloInterval;
  hello.expiry = 3.0 * cfg.helloInterval;

  switch (cfg.protocol) {
    case Protocol::kGlr: {
      core::GlrParams p;
      p.checkInterval = cfg.checkInterval;
      p.cacheTimeout = cfg.cacheTimeout;
      p.custodyTransfer = cfg.custody;
      p.faceRouting = cfg.faceRouting;
      p.witnessRule = cfg.witnessRule;
      p.copiesOverride = cfg.copiesOverride;
      p.network.numNodes = static_cast<std::size_t>(cfg.numNodes);
      p.network.radius = cfg.radius;
      p.network.areaWidth = cfg.areaWidth;
      p.network.areaHeight = cfg.areaHeight;
      p.locationMode = cfg.locationMode;
      p.storageLimit = cfg.storageLimit;
      hello.includeNeighborList = true;  // 2-hop knowledge for the LDTG
      p.hello = hello;
      return std::make_unique<core::GlrAgent>(world, id, p, metrics, rng);
    }
    case Protocol::kEpidemic: {
      routing::EpidemicParams p;
      p.storageLimit = cfg.storageLimit;
      hello.includeNeighborList = false;
      p.hello = hello;
      return std::make_unique<routing::EpidemicAgent>(world, id, p, metrics,
                                                      rng);
    }
    case Protocol::kDirectDelivery: {
      routing::DirectParams p;
      p.storageLimit = cfg.storageLimit;
      p.checkInterval = cfg.checkInterval;
      hello.includeNeighborList = false;
      p.hello = hello;
      return std::make_unique<routing::DirectDeliveryAgent>(world, id, p,
                                                            metrics, rng);
    }
    case Protocol::kSprayAndWait: {
      routing::SprayWaitParams p;
      p.copyBudget = cfg.sprayBudget;
      p.storageLimit = cfg.storageLimit;
      hello.includeNeighborList = false;
      p.hello = hello;
      return std::make_unique<routing::SprayWaitAgent>(world, id, p, metrics,
                                                       rng);
    }
  }
  throw std::invalid_argument{"makeAgent: unknown protocol"};
}

}  // namespace

ChurnSpec churnPreset(const std::string& name) {
  ChurnSpec c;
  if (name == "none") return c;
  c.enabled = true;
  if (name == "light") {
    c.params.fraction = 0.25;
    c.params.upMean = 240.0;
    c.params.downMean = 20.0;
  } else if (name == "moderate") {
    c.params.fraction = 0.5;
    c.params.upMean = 120.0;
    c.params.downMean = 30.0;
  } else if (name == "heavy") {
    c.params.fraction = 0.8;
    c.params.upMean = 60.0;
    c.params.downMean = 45.0;
  } else {
    throw std::invalid_argument{"churnPreset: unknown preset '" + name + "'"};
  }
  return c;
}

ScenarioResult runScenario(const ScenarioConfig& cfg) {
  if (cfg.numNodes < 2 || cfg.trafficNodes > cfg.numNodes) {
    throw std::invalid_argument{"runScenario: bad node counts"};
  }
  if (!(cfg.radiusSpreadMin > 0.0) ||
      cfg.radiusSpreadMax < cfg.radiusSpreadMin) {
    throw std::invalid_argument{
        "runScenario: need 0 < radiusSpreadMin <= radiusSpreadMax"};
  }
  const auto wallStart = std::chrono::steady_clock::now();

  sim::Rng master{cfg.seed};
  sim::Simulator simulator;
  // Pre-size the event slab/heap past the measured pending-event peak of a
  // paper-scale scenario (~1.5k) so the first scheduling burst never
  // reallocates mid-run.
  simulator.reserve(4096);
  phy::TwoRayGround model;
  phy::RadioParams radio;
  radio.nominalRange = cfg.radius;
  radio.bitRateBps = cfg.bitRateBps;
  mac::MacParams macParams;
  macParams.queueLimit = cfg.queueLimit;

  net::World world{simulator, model, radio, macParams};
  // Receiver lookups go through the spatial grid; candidate sets are padded
  // by worst-case waypoint drift so results match the unindexed channel.
  world.enableSpatialIndex(cfg.speedMax);
  dtn::MetricsCollector metrics;

  const mobility::Area area{cfg.areaWidth, cfg.areaHeight};

  // Mobility comes from the string-keyed registry. The spec's embedded
  // ModelParams goes to the factory verbatim; only the shared kinematics
  // and placement fields are overlaid from the scenario config here (the
  // one place they are authoritative). Cluster mobility draws its shared
  // home points from a dedicated stream before the node loop.
  mobility::ModelParams modelParams = cfg.mobility.params;
  modelParams.area = area;
  modelParams.speedMin = cfg.speedMin;
  modelParams.speedMax = cfg.speedMax;
  modelParams.pause = cfg.pause;
  std::vector<geom::Point2> clusterCenters;
  if (cfg.mobility.model == "cluster") {
    if (cfg.mobility.numClusters < 1) {
      throw std::invalid_argument{"runScenario: numClusters must be >= 1"};
    }
    sim::Rng clusterRng = master.fork(kClusters);
    clusterCenters.reserve(static_cast<std::size_t>(cfg.mobility.numClusters));
    for (int c = 0; c < cfg.mobility.numClusters; ++c) {
      clusterCenters.push_back(mobility::randomPosition(area, clusterRng));
    }
  }

  sim::Rng placementRng = master.fork(kPlacement);
  std::vector<routing::DtnAgent*> agents;
  for (int i = 0; i < cfg.numNodes; ++i) {
    const geom::Point2 start = mobility::randomPosition(area, placementRng);
    if (!clusterCenters.empty()) {
      modelParams.home =
          clusterCenters[static_cast<std::size_t>(i) % clusterCenters.size()];
    }
    auto mob = mobility::makeMobilityModel(
        cfg.mobility.model, modelParams, start,
        master.fork(kMobility * 1000 + static_cast<std::uint64_t>(i)));
    world.addNode(std::move(mob),
                  master.fork(kMac * 1000 + static_cast<std::uint64_t>(i)));
    auto agent = makeAgent(
        cfg, world, i, &metrics,
        master.fork(kAgent * 1000 + static_cast<std::uint64_t>(i)));
    agents.push_back(agent.get());
    world.setAgent(i, std::move(agent));
  }

  // Heterogeneous radios: per-node transmit ranges from a dedicated stream.
  // The homogeneous default (1.0/1.0) skips the whole block, leaving the
  // channel untouched and the run bit-identical to the paper setup.
  if (cfg.radiusSpreadMin != 1.0 || cfg.radiusSpreadMax != 1.0) {
    sim::Rng radioRng = master.fork(kRadio);
    for (int i = 0; i < cfg.numNodes; ++i) {
      world.setNodeRadius(
          i, cfg.radius *
                 radioRng.uniform(cfg.radiusSpreadMin, cfg.radiusSpreadMax));
    }
  }

  // Node churn: duty-cycle toggles are simulator events owned by this
  // process object, which must live until the run completes.
  std::unique_ptr<net::ChurnProcess> churn;
  if (cfg.churn.enabled) {
    churn = std::make_unique<net::ChurnProcess>(world, cfg.churn.params,
                                                master.fork(kChurn));
    churn->start();
  }

  // Workload: ordered (src, dst) pairs among the traffic subset, shuffled;
  // one message per interval (paper: every second), wrapping if more
  // messages than pairs are requested.
  sim::Rng trafficRng = master.fork(kTraffic);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < cfg.trafficNodes; ++i) {
    for (int j = 0; j < cfg.trafficNodes; ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }
  for (std::size_t i = pairs.size(); i > 1; --i) {
    std::swap(pairs[i - 1], pairs[trafficRng.below(i)]);
  }
  for (int k = 0; k < cfg.numMessages; ++k) {
    const auto [src, dst] = pairs[static_cast<std::size_t>(k) % pairs.size()];
    simulator.schedule(cfg.trafficStart + k * cfg.messageInterval,
                       [agent = agents[static_cast<std::size_t>(src)], dst] {
                         agent->originate(dst);
                       });
  }

  world.start();
  simulator.run(cfg.simTime);

  ScenarioResult r;
  r.created = metrics.createdCount();
  r.delivered = metrics.deliveredCount();
  r.deliveryRatio = metrics.deliveryRatio();
  r.avgLatency = metrics.avgLatency();
  r.avgHops = metrics.avgHops();
  r.duplicateDeliveries = metrics.duplicateDeliveries();
  r.perturbations = metrics.counter("glr.perturbations");

  stats::Summary peaks;
  routing::ProtocolCounters proto;
  for (const routing::DtnAgent* a : agents) {
    peaks.add(static_cast<double>(a->storagePeak()));
    a->harvestCounters(proto);
  }
  r.glrDataSent = proto.dataSent;
  r.glrDataReceived = proto.dataReceived;
  r.glrDuplicatesDropped = proto.duplicatesDropped;
  r.glrCustodyAcksSent = proto.custodyAcksSent;
  r.glrCustodyAcksReceived = proto.custodyAcksReceived;
  r.glrCacheTimeouts = proto.cacheTimeouts;
  r.glrTxFailures = proto.txFailures;
  r.glrFaceTransitions = proto.faceTransitions;
  r.maxPeakStorage = peaks.max();
  r.avgPeakStorage = peaks.mean();

  for (int i = 0; i < cfg.numNodes; ++i) {
    const auto& ms = world.macOf(i).stats();
    r.macDataTx += ms.dataTx;
    r.macQueueDrops += ms.queueDrops;
    r.macRetryDrops += ms.retryDrops;
    r.macRadioDownDrops += ms.radioDownDrops;
  }
  r.collisions = world.channel().stats().collisions;
  r.airTimeSeconds = world.channel().stats().airTimeSeconds;
  r.eventsExecuted = simulator.eventsExecuted();
  r.wallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wallStart)
                      .count();
  return r;
}

std::vector<ScenarioResult> runScenarioSeeds(ScenarioConfig cfg, int runs) {
  if (runs <= 0) return {};
  // Default Options: GLR_BENCH_THREADS / hardware_concurrency; the runner
  // itself never spawns more workers than there are cells.
  SweepRunner runner;
  return std::move(runner.run({cfg}, runs).front());
}

std::vector<double> metricAcross(const std::vector<ScenarioResult>& rs,
                                 double ScenarioResult::*field) {
  std::vector<double> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(r.*field);
  return out;
}

}  // namespace glr::experiment
