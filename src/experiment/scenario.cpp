#include "experiment/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <numbers>
#include <stdexcept>

#include "checkpoint/event_kinds.hpp"
#include "checkpoint/scenario_checkpoint.hpp"
#include "dtn/metrics.hpp"
#include "experiment/node_export.hpp"
#include "experiment/runner.hpp"
#include "experiment/traffic.hpp"
#include "mobility/mobility.hpp"
#include "mobility/registry.hpp"
#include "net/churn.hpp"
#include "net/faults.hpp"
#include "net/world.hpp"
#include "phy/propagation.hpp"
#include "routing/direct.hpp"
#include "routing/epidemic.hpp"
#include "routing/spray_wait.hpp"
#include "sim/rng.hpp"
#include "spanner/ldtg.hpp"
#include "stats/sketch.hpp"
#include "stats/summary.hpp"
#include "trace/recorder.hpp"

namespace glr::experiment {

const char* protocolName(Protocol p) {
  switch (p) {
    case Protocol::kGlr:
      return "GLR";
    case Protocol::kEpidemic:
      return "Epidemic";
    case Protocol::kDirectDelivery:
      return "DirectDelivery";
    case Protocol::kSprayAndWait:
      return "SprayAndWait";
  }
  return "?";
}

namespace {

/// RNG stream ids, one per subsystem, so configuration changes in one
/// subsystem never perturb another's draws. The diversity streams
/// (clusters/churn/radio) are only forked when their feature is enabled;
/// forking is const on the master, so even eager forks would not perturb
/// the other streams.
enum Stream : std::uint64_t {
  kPlacement = 1,
  kMobility = 2,      // + node id
  kTraffic = 3,
  kMac = 4,           // + node id
  kAgent = 5,         // + node id
  kClusters = 6,      // cluster-mobility home points
  kChurn = 7,         // duty-cycle toggles (per-node forks inside)
  kRadio = 8,         // heterogeneous per-node ranges
  kTrafficModel = 9,  // stochastic traffic models (per-source forks inside)
  kFaults = 10,       // fault injection (loss/burst/stall forks inside)
};

std::unique_ptr<routing::DtnAgent> makeAgent(
    const ScenarioConfig& cfg, net::World& world, int id,
    dtn::MetricsCollector* metrics, sim::Rng rng,
    std::shared_ptr<const core::GlrParams>& glrShared) {
  net::NeighborService::Params hello;
  hello.helloInterval = cfg.helloInterval;
  hello.expiry = 3.0 * cfg.helloInterval;
  hello.evictAfterFactor = cfg.neighborEvictAfterFactor;
  // Population-derived pre-sizing. Expected 1-hop degree is density x the
  // radio disk (N * pi * r^2 / area); the table gets 2x headroom. Raising
  // only (never lowering) the default matters: the bucket count steers
  // unordered-map iteration order, which feeds hello payload order, so
  // paper-scale scenarios (degree << default) must keep the exact default
  // the pinned goldens were recorded with. City-scale densities that
  // genuinely exceed it have no pinned goldens and take the derived size.
  const double expectedDegree =
      static_cast<double>(cfg.numNodes) * std::numbers::pi * cfg.radius *
      cfg.radius / (cfg.areaWidth * cfg.areaHeight);
  const auto derivedNeighbors =
      static_cast<std::size_t>(std::ceil(2.0 * expectedDegree));
  if (cfg.neighborEvictAfterFactor > 0.0) {
    // Scale mode (bounded tables) has no pinned goldens — its results are
    // validated by the in-bench A/B matrix instead — so the table can take
    // the exact derived size; at paper densities that is ~5x fewer buckets
    // per node than the legacy default.
    hello.expectedNeighbors = std::max<std::size_t>(derivedNeighbors, 4);
  } else {
    hello.expectedNeighbors =
        std::max(hello.expectedNeighbors, derivedNeighbors);
  }
  // A node never usefully holds more copies than the workload creates;
  // +16 covers in-flight custody branches.
  const std::size_t copiesHint =
      std::min(cfg.storageLimit,
               static_cast<std::size_t>(std::max(cfg.numMessages, 0)) + 16);

  switch (cfg.protocol) {
    case Protocol::kGlr: {
      // One immutable parameter block shared by the whole population: the
      // params are identical for every node, and a by-value copy per agent
      // is a measurable share of the idle-node budget at city scale.
      if (glrShared == nullptr) {
        core::GlrParams p;
        p.expectedBufferedCopies = copiesHint;
        p.checkInterval = cfg.checkInterval;
        p.cacheTimeout = cfg.cacheTimeout;
        p.custodyTransfer = cfg.custody;
        p.faceRouting = cfg.faceRouting;
        p.witnessRule = cfg.witnessRule;
        p.copiesOverride = cfg.copiesOverride;
        p.network.numNodes = static_cast<std::size_t>(cfg.numNodes);
        p.network.radius = cfg.radius;
        p.network.areaWidth = cfg.areaWidth;
        p.network.areaHeight = cfg.areaHeight;
        p.locationMode = cfg.locationMode;
        p.storageLimit = cfg.storageLimit;
        p.locationEvictAfter = cfg.locationEvictAfter;
        p.custodyWatermark = cfg.custodyWatermark;
        p.congestionControl = cfg.congestionControl;
        p.recovery = cfg.glrRecovery;
        p.suspicionThreshold = cfg.glrSuspicionThreshold;
        p.recoveryAfterFailures = cfg.glrRecoveryAfterFailures;
        p.recoveryFanout = cfg.glrRecoveryFanout;
        p.recoveryCooldown = cfg.glrRecoveryCooldown;
        p.suspicionTtl = cfg.glrSuspicionTtl;
        p.messageTtl = cfg.messageTtl;
        hello.includeNeighborList = true;  // 2-hop knowledge for the LDTG
        p.hello = hello;
        glrShared = std::make_shared<const core::GlrParams>(std::move(p));
      }
      return std::make_unique<core::GlrAgent>(world, id, glrShared, metrics,
                                              rng);
    }
    case Protocol::kEpidemic: {
      routing::EpidemicParams p;
      p.expectedBufferedCopies = copiesHint;
      p.storageLimit = cfg.storageLimit;
      p.messageTtl = cfg.messageTtl;
      hello.includeNeighborList = false;
      p.hello = hello;
      return std::make_unique<routing::EpidemicAgent>(world, id, p, metrics,
                                                      rng);
    }
    case Protocol::kDirectDelivery: {
      routing::DirectParams p;
      p.expectedBufferedCopies = copiesHint;
      p.storageLimit = cfg.storageLimit;
      p.checkInterval = cfg.checkInterval;
      hello.includeNeighborList = false;
      p.hello = hello;
      return std::make_unique<routing::DirectDeliveryAgent>(world, id, p,
                                                            metrics, rng);
    }
    case Protocol::kSprayAndWait: {
      routing::SprayWaitParams p;
      p.expectedBufferedCopies = copiesHint;
      p.copyBudget = cfg.sprayBudget;
      p.storageLimit = cfg.storageLimit;
      p.messageTtl = cfg.messageTtl;
      hello.includeNeighborList = false;
      p.hello = hello;
      return std::make_unique<routing::SprayWaitAgent>(world, id, p, metrics,
                                                       rng);
    }
  }
  throw std::invalid_argument{"makeAgent: unknown protocol"};
}

}  // namespace

ChurnSpec churnPreset(const std::string& name) {
  ChurnSpec c;
  if (name == "none") return c;
  c.enabled = true;
  if (name == "light") {
    c.params.fraction = 0.25;
    c.params.upMean = 240.0;
    c.params.downMean = 20.0;
  } else if (name == "moderate") {
    c.params.fraction = 0.5;
    c.params.upMean = 120.0;
    c.params.downMean = 30.0;
  } else if (name == "heavy") {
    c.params.fraction = 0.8;
    c.params.upMean = 60.0;
    c.params.downMean = 45.0;
  } else {
    throw std::invalid_argument{"churnPreset: unknown preset '" + name + "'"};
  }
  return c;
}

ScenarioResult runScenario(const ScenarioConfig& cfg) {
  if (cfg.numNodes < 2 || cfg.trafficNodes > cfg.numNodes) {
    throw std::invalid_argument{"runScenario: bad node counts"};
  }
  if (!(cfg.radiusSpreadMin > 0.0) ||
      cfg.radiusSpreadMax < cfg.radiusSpreadMin) {
    throw std::invalid_argument{
        "runScenario: need 0 < radiusSpreadMin <= radiusSpreadMax"};
  }
  if (!cfg.checkpointPath.empty() && !(cfg.checkpointEvery > 0.0)) {
    throw std::invalid_argument{
        "runScenario: checkpointPath set but checkpointEvery is not positive"};
  }
  const auto wallStart = std::chrono::steady_clock::now();
  // Runs must be independent: the spanner memo cache is thread-local and
  // would otherwise carry entries (and counters) across scenarios. Purely a
  // memory/accounting concern — a stale hit requires bit-identical inputs,
  // for which the memoised answer is the recomputation anyway.
  spanner::resetLocalSpannerCache();

  sim::Rng master{cfg.seed};
  sim::Simulator simulator;
  if (cfg.kernelQueue == KernelQueue::kCalendar) {
    simulator.setQueueMode(sim::Simulator::QueueMode::kCalendar);
  }
  // Pre-size the event slab/queue from the population: the pending-event
  // peak is a few events per node (hello + check + MAC timers) with a
  // measured ~1.5k floor at paper scale, so 4096 covers small runs and the
  // per-node term keeps city-scale bursts from reallocating mid-run.
  simulator.reserve(std::max<std::size_t>(
      4096, static_cast<std::size_t>(cfg.numNodes) * 4));
  // Checkpointing needs every pending event described, so this must precede
  // the first schedule anywhere. Also required on a restored run: keyed
  // event re-creation and any further snapshots both read descriptors.
  if (cfg.checkpointEvery > 0.0 || !cfg.restoreFrom.empty()) {
    simulator.enableEventDescriptions();
  }
  if (cfg.wallDeadlineSeconds > 0.0) {
    simulator.setWallDeadline(cfg.wallDeadlineSeconds);
  }
  phy::TwoRayGround model;
  phy::RadioParams radio;
  radio.nominalRange = cfg.radius;
  radio.bitRateBps = cfg.bitRateBps;
  mac::MacParams macParams;
  macParams.queueLimit = cfg.queueLimit;

  net::World world{simulator, model, radio, macParams};
  world.reserveNodes(static_cast<std::size_t>(cfg.numNodes));
  // Receiver lookups go through the spatial grid; candidate sets are padded
  // by worst-case drift so results match the unindexed channel.
  world.enableSpatialIndex(cfg.speedMax, 0.5,
                           cfg.spatialIndex == SpatialIndexMode::kTiled
                               ? mac::Channel::IndexMode::kTiled
                               : mac::Channel::IndexMode::kSnapshot);
  dtn::MetricsCollector metrics;

  // Flight recorder: constructed (and installed on the World) before the
  // agent loop, because agents and their buffers cache the pointer at
  // construction. Owns the writer thread; close() below finalizes the file
  // before counters are harvested.
  std::unique_ptr<trace::Recorder> recorder;
  if (!cfg.tracePath.empty()) {
    recorder = std::make_unique<trace::Recorder>(simulator, cfg.tracePath,
                                                 cfg.traceRingCapacity);
    world.setTraceRecorder(recorder.get());
    metrics.setTrace(recorder.get());
    // Ctrl-C / kill during a traced run finalizes the file before dying;
    // SIGKILL still truncates (salvage with `trace_inspect recover`).
    trace::Recorder::installSignalFinalize();
  }

  const mobility::Area area{cfg.areaWidth, cfg.areaHeight};

  // Mobility comes from the string-keyed registry. The spec's embedded
  // ModelParams goes to the factory verbatim; only the shared kinematics
  // and placement fields are overlaid from the scenario config here (the
  // one place they are authoritative). Cluster mobility draws its shared
  // home points from a dedicated stream before the node loop.
  mobility::ModelParams modelParams = cfg.mobility.params;
  modelParams.area = area;
  modelParams.speedMin = cfg.speedMin;
  modelParams.speedMax = cfg.speedMax;
  modelParams.pause = cfg.pause;
  std::vector<geom::Point2> clusterCenters;
  if (cfg.mobility.model == "cluster") {
    if (cfg.mobility.numClusters < 1) {
      throw std::invalid_argument{"runScenario: numClusters must be >= 1"};
    }
    sim::Rng clusterRng = master.fork(kClusters);
    clusterCenters.reserve(static_cast<std::size_t>(cfg.mobility.numClusters));
    for (int c = 0; c < cfg.mobility.numClusters; ++c) {
      clusterCenters.push_back(mobility::randomPosition(area, clusterRng));
    }
  }

  sim::Rng placementRng = master.fork(kPlacement);
  std::vector<routing::DtnAgent*> agents;
  std::shared_ptr<const core::GlrParams> sharedGlrParams;
  for (int i = 0; i < cfg.numNodes; ++i) {
    const geom::Point2 start = mobility::randomPosition(area, placementRng);
    if (!clusterCenters.empty()) {
      modelParams.home =
          clusterCenters[static_cast<std::size_t>(i) % clusterCenters.size()];
    }
    auto mob = mobility::makeMobilityModel(
        cfg.mobility.model, modelParams, start,
        master.fork(kMobility * 1000 + static_cast<std::uint64_t>(i)));
    world.addNode(std::move(mob),
                  master.fork(kMac * 1000 + static_cast<std::uint64_t>(i)));
    auto agent = makeAgent(
        cfg, world, i, &metrics,
        master.fork(kAgent * 1000 + static_cast<std::uint64_t>(i)),
        sharedGlrParams);
    agents.push_back(agent.get());
    world.setAgent(i, std::move(agent));
  }

  // Heterogeneous radios: per-node transmit ranges from a dedicated stream.
  // The homogeneous default (1.0/1.0) skips the whole block, leaving the
  // channel untouched and the run bit-identical to the paper setup.
  if (cfg.radiusSpreadMin != 1.0 || cfg.radiusSpreadMax != 1.0) {
    sim::Rng radioRng = master.fork(kRadio);
    for (int i = 0; i < cfg.numNodes; ++i) {
      world.setNodeRadius(
          i, cfg.radius *
                 radioRng.uniform(cfg.radiusSpreadMin, cfg.radiusSpreadMax));
    }
  }

  // Node churn: duty-cycle toggles are simulator events owned by this
  // process object, which must live until the run completes.
  std::unique_ptr<net::ChurnProcess> churn;
  if (cfg.churn.enabled) {
    churn = std::make_unique<net::ChurnProcess>(world, cfg.churn.params,
                                                master.fork(kChurn));
    churn->start();
  }

  // Fault injection: like churn, the process object owns simulator events
  // (and the channel delivery filter) and must live until the run completes.
  std::unique_ptr<net::FaultProcess> faults;
  if (cfg.faults.enabled) {
    faults = std::make_unique<net::FaultProcess>(world, cfg.faults.params,
                                                 master.fork(kFaults));
    faults->start();
  }

  // Workload. The paper's fixed schedule draws from the historical kTraffic
  // stream (the draw sequence is pinned by every golden); the stochastic
  // models are generator processes on their own stream, so switching models
  // perturbs nothing else.
  std::unique_ptr<TrafficProcess> trafficProcess;
  if (cfg.traffic.model == "paper") {
    schedulePaperWorkload(simulator, agents, cfg.trafficNodes,
                          cfg.numMessages, cfg.trafficStart,
                          cfg.messageInterval, master.fork(kTraffic));
  } else {
    TrafficProcess::Params tp;
    tp.spec = cfg.traffic;
    tp.start = cfg.trafficStart;
    tp.horizon = cfg.simTime;
    tp.trafficNodes = cfg.trafficNodes;
    trafficProcess = std::make_unique<TrafficProcess>(
        simulator, agents, std::move(tp), master.fork(kTrafficModel));
    trafficProcess->start();
  }

  // Crash safety: the periodic snapshot writer is itself a simulated event
  // (kCheckpointTimer), so checkpointEvery is part of the config digest and
  // of the deterministic sequence. The callback reschedules FIRST, so the
  // snapshot it then writes already contains the next timer — a restored
  // run keeps checkpointing on the same cadence. With checkpointPath empty
  // the timer still fires (keeping eventsExecuted identical to a writing
  // run of the same config) but writes nothing.
  ckpt::ScenarioComponents comps;
  comps.sim = &simulator;
  comps.world = &world;
  comps.cfg = &cfg;
  comps.agents = &agents;
  comps.metrics = &metrics;
  comps.churn = churn.get();
  comps.faults = faults.get();
  comps.traffic = trafficProcess.get();
  std::function<void()> checkpointTick;
  if (cfg.checkpointEvery > 0.0) {
    checkpointTick = [&cfg, &simulator, &comps, &checkpointTick] {
      sim::EventDesc desc{};
      desc.kind = ckpt::kCheckpointTimer;
      simulator.schedule(cfg.checkpointEvery, desc,
                         [&checkpointTick] { checkpointTick(); });
      if (!cfg.checkpointPath.empty()) {
        ckpt::writeCheckpoint(cfg.checkpointPath, comps);
      }
    };
    comps.restoreCheckpointTimer = [&simulator,
                                    &checkpointTick](const sim::EventKey& key) {
      sim::EventDesc desc{};
      desc.kind = ckpt::kCheckpointTimer;
      simulator.scheduleKeyed(key, desc,
                              [&checkpointTick] { checkpointTick(); });
    };
    if (cfg.restoreFrom.empty()) {
      sim::EventDesc desc{};
      desc.kind = ckpt::kCheckpointTimer;
      simulator.schedule(cfg.checkpointEvery, desc,
                         [&checkpointTick] { checkpointTick(); });
    }
  }

  world.start();
  if (!cfg.restoreFrom.empty()) {
    ckpt::restoreCheckpoint(cfg.restoreFrom, comps);
  }
  simulator.run(cfg.simTime);

  ScenarioResult r;
  if (recorder != nullptr) {
    recorder->close();
    r.traceEventsRecorded = recorder->recordsWritten();
  }
  r.created = metrics.createdCount();
  r.delivered = metrics.deliveredCount();
  r.deliveryRatio = metrics.deliveryRatio();
  r.avgLatency = metrics.avgLatency();
  r.avgHops = metrics.avgHops();
  r.latencyP50 = metrics.latencySketch().quantile(0.50);
  r.latencyP90 = metrics.latencySketch().quantile(0.90);
  r.latencyP99 = metrics.latencySketch().quantile(0.99);
  r.latencyMin = metrics.latencyMoments().min();
  r.latencyMax = metrics.latencyMoments().max();
  r.latencyStddev = metrics.latencyMoments().stddev();
  r.duplicateDeliveries = metrics.duplicateDeliveries();
  r.perturbations = metrics.counter("glr.perturbations");

  stats::Summary peaks;
  routing::ProtocolCounters proto;
  for (const routing::DtnAgent* a : agents) {
    peaks.add(static_cast<double>(a->storagePeak()));
    a->harvestCounters(proto);
    r.bufferedAtEnd += a->storageUsed();
  }
  r.glrDataSent = proto.dataSent;
  r.glrDataReceived = proto.dataReceived;
  r.glrDuplicatesDropped = proto.duplicatesDropped;
  r.glrCustodyAcksSent = proto.custodyAcksSent;
  r.glrCustodyAcksReceived = proto.custodyAcksReceived;
  r.glrCacheTimeouts = proto.cacheTimeouts;
  r.glrTxFailures = proto.txFailures;
  r.glrFaceTransitions = proto.faceTransitions;
  r.sendRejects = proto.sendRejects;
  r.bufferEvictions = proto.bufferEvictions;
  r.custodyRefusals = proto.custodyRefusals;
  r.glrSuspicionsRaised = proto.suspicionsRaised;
  r.glrSuspectSkips = proto.suspectSkips;
  r.glrRecoveryActivations = proto.recoveryActivations;
  r.glrRecoverySprays = proto.recoverySprays;
  r.expiredDrops = proto.expiredDrops;
  r.maxPeakStorage = peaks.max();
  r.avgPeakStorage = peaks.mean();

  // Adversary-layer accounting: every blackhole/greyhole discard and every
  // selfish refusal is counted at the model, so no adversarial loss is
  // silent. All zero (and the model absent) when no misbehaving fraction is
  // configured.
  if (faults != nullptr && faults->adversary() != nullptr) {
    const net::AdversaryModel::Counters& ac = faults->adversary()->counters();
    r.advBlackholeDrops = ac.blackholeDrops;
    r.advGreyholeDrops = ac.greyholeDrops;
    r.advSelfishRefusals = ac.selfishRefusals;
    r.advFlapTransitions = ac.flapTransitions;
  }

  for (int i = 0; i < cfg.numNodes; ++i) {
    const auto& ms = world.macOf(i).stats();
    r.macDataTx += ms.dataTx;
    r.macQueueDrops += ms.queueDrops;
    r.macRetryDrops += ms.retryDrops;
    r.macRadioDownDrops += ms.radioDownDrops;
    r.macAckTimeouts += ms.ackTimeouts;
    r.macBusyDeferrals += ms.busyDeferrals;
    r.macQueueAtEnd += world.macOf(i).queueLength();
  }
  r.collisions = world.channel().stats().collisions;
  r.airTimeSeconds = world.channel().stats().airTimeSeconds;
  r.faultFrameDrops = world.channel().stats().faultDrops;
  r.eventsExecuted = simulator.eventsExecuted();

  if (!cfg.nodeCountersPath.empty()) {
    exportNodeCounters(cfg.nodeCountersPath, world, agents);
  }

  r.wallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wallStart)
                      .count();
  return r;
}

std::vector<ScenarioResult> runScenarioSeeds(ScenarioConfig cfg, int runs) {
  if (runs <= 0) return {};
  // Default Options: GLR_BENCH_THREADS / hardware_concurrency; the runner
  // itself never spawns more workers than there are cells.
  SweepRunner runner;
  return std::move(runner.run({cfg}, runs).front());
}

std::vector<double> metricAcross(const std::vector<ScenarioResult>& rs,
                                 double ScenarioResult::*field) {
  std::vector<double> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(r.*field);
  return out;
}

}  // namespace glr::experiment
