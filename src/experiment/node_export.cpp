#include "experiment/node_export.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <stdexcept>

#include "mac/mac.hpp"
#include "net/world.hpp"
#include "routing/dtn_agent.hpp"

namespace glr::experiment {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Field list shared by both formats: name + value extractor, so the JSON
/// and CSV writers cannot drift apart.
struct NodeRow {
  int node = 0;
  std::uint64_t macDataTx = 0;
  std::uint64_t macQueueDrops = 0;
  std::uint64_t macRetryDrops = 0;
  std::uint64_t macRadioDownDrops = 0;
  std::uint64_t macAckTimeouts = 0;
  std::uint64_t macBusyDeferrals = 0;
  std::uint64_t macQueueAtEnd = 0;
  std::uint64_t storageUsed = 0;
  std::uint64_t storagePeak = 0;
  std::uint64_t dataSent = 0;
  std::uint64_t dataReceived = 0;
  std::uint64_t duplicatesDropped = 0;
  std::uint64_t custodyAcksSent = 0;
  std::uint64_t custodyAcksReceived = 0;
  std::uint64_t sendRejects = 0;
  std::uint64_t bufferEvictions = 0;
  std::uint64_t custodyRefusals = 0;
  std::uint64_t suspicionsRaised = 0;
  std::uint64_t recoverySprays = 0;
  std::uint64_t expiredDrops = 0;
};

constexpr const char* kFieldNames[] = {
    "node",           "macDataTx",       "macQueueDrops",
    "macRetryDrops",  "macRadioDownDrops", "macAckTimeouts",
    "macBusyDeferrals", "macQueueAtEnd", "storageUsed",
    "storagePeak",    "dataSent",        "dataReceived",
    "duplicatesDropped", "custodyAcksSent", "custodyAcksReceived",
    "sendRejects",    "bufferEvictions", "custodyRefusals",
    "suspicionsRaised", "recoverySprays", "expiredDrops",
};

std::vector<std::uint64_t> fieldValues(const NodeRow& r) {
  return {static_cast<std::uint64_t>(r.node),
          r.macDataTx,
          r.macQueueDrops,
          r.macRetryDrops,
          r.macRadioDownDrops,
          r.macAckTimeouts,
          r.macBusyDeferrals,
          r.macQueueAtEnd,
          r.storageUsed,
          r.storagePeak,
          r.dataSent,
          r.dataReceived,
          r.duplicatesDropped,
          r.custodyAcksSent,
          r.custodyAcksReceived,
          r.sendRejects,
          r.bufferEvictions,
          r.custodyRefusals,
          r.suspicionsRaised,
          r.recoverySprays,
          r.expiredDrops};
}

constexpr std::size_t kNumFields = std::size(kFieldNames);

NodeRow collectRow(net::World& world, int i, const routing::DtnAgent* agent) {
  NodeRow row;
  row.node = i;
  const mac::MacStats& ms = world.macOf(i).stats();
  row.macDataTx = ms.dataTx;
  row.macQueueDrops = ms.queueDrops;
  row.macRetryDrops = ms.retryDrops;
  row.macRadioDownDrops = ms.radioDownDrops;
  row.macAckTimeouts = ms.ackTimeouts;
  row.macBusyDeferrals = ms.busyDeferrals;
  row.macQueueAtEnd = world.macOf(i).queueLength();
  if (agent != nullptr) {
    row.storageUsed = agent->storageUsed();
    row.storagePeak = agent->storagePeak();
    routing::ProtocolCounters pc;
    agent->harvestCounters(pc);
    row.dataSent = pc.dataSent;
    row.dataReceived = pc.dataReceived;
    row.duplicatesDropped = pc.duplicatesDropped;
    row.custodyAcksSent = pc.custodyAcksSent;
    row.custodyAcksReceived = pc.custodyAcksReceived;
    row.sendRejects = pc.sendRejects;
    row.bufferEvictions = pc.bufferEvictions;
    row.custodyRefusals = pc.custodyRefusals;
    row.suspicionsRaised = pc.suspicionsRaised;
    row.recoverySprays = pc.recoverySprays;
    row.expiredDrops = pc.expiredDrops;
  }
  return row;
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void exportNodeCounters(const std::string& path, net::World& world,
                        const std::vector<routing::DtnAgent*>& agents) {
  const bool json = endsWith(path, ".json");
  if (!json && !endsWith(path, ".csv")) {
    throw std::invalid_argument{
        "exportNodeCounters: path must end in .json or .csv: " + path};
  }
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (!file) {
    throw std::runtime_error{"exportNodeCounters: cannot write " + path +
                             ": " + std::strerror(errno)};
  }

  const auto n = static_cast<int>(world.numNodes());
  if (json) {
    std::fprintf(file.get(), "{\n  \"nodes\": [\n");
    for (int i = 0; i < n; ++i) {
      const routing::DtnAgent* agent =
          static_cast<std::size_t>(i) < agents.size() ? agents[i] : nullptr;
      const auto values = fieldValues(collectRow(world, i, agent));
      std::fprintf(file.get(), "    {");
      for (std::size_t f = 0; f < kNumFields; ++f) {
        std::fprintf(file.get(), "%s\"%s\": %llu", f == 0 ? "" : ", ",
                     kFieldNames[f],
                     static_cast<unsigned long long>(values[f]));
      }
      std::fprintf(file.get(), "}%s\n", i + 1 < n ? "," : "");
    }
    std::fprintf(file.get(), "  ]\n}\n");
  } else {
    for (std::size_t f = 0; f < kNumFields; ++f) {
      std::fprintf(file.get(), "%s%s", f == 0 ? "" : ",", kFieldNames[f]);
    }
    std::fprintf(file.get(), "\n");
    for (int i = 0; i < n; ++i) {
      const routing::DtnAgent* agent =
          static_cast<std::size_t>(i) < agents.size() ? agents[i] : nullptr;
      const auto values = fieldValues(collectRow(world, i, agent));
      for (std::size_t f = 0; f < kNumFields; ++f) {
        std::fprintf(file.get(), "%s%llu", f == 0 ? "" : ",",
                     static_cast<unsigned long long>(values[f]));
      }
      std::fprintf(file.get(), "\n");
    }
  }
  // stdio buffers writes, so a full disk or yanked filesystem surfaces only
  // here — check, or a run "succeeds" having exported a truncated file.
  if (std::fflush(file.get()) != 0 || std::ferror(file.get())) {
    throw std::runtime_error{"exportNodeCounters: write failed for " + path +
                             ": " + std::strerror(errno)};
  }
}

}  // namespace glr::experiment
