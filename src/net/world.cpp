#include "net/world.hpp"

#include <stdexcept>
#include <string>

#include "checkpoint/event_kinds.hpp"

namespace glr::net {

namespace {

sim::EventDesc startDesc(int id) {
  sim::EventDesc d;
  d.kind = ckpt::kAgentStart;
  d.i0 = id;
  return d;
}

}  // namespace

World::World(sim::Simulator& sim, const phy::PropagationModel& model,
             const phy::RadioParams& radio, mac::MacParams macParams)
    : sim_(sim),
      macParams_(macParams),
      nominalRange_(radio.nominalRange),
      channel_(sim, model, phy::solveThresholds(model, radio),
               radio.txPowerW, [this](int id) { return positionOf(id); }) {
  macParams_.bitRateBps = radio.bitRateBps;
  // Candidate gathers pull whole receiver sets from the epoch cache in one
  // call instead of one std::function dispatch (and potential mobility
  // replay) per receiver.
  channel_.setPositionBatchFn(
      [this](const int* ids, std::size_t n, geom::Point2* out) {
        const sim::SimTime now = sim_.now();
        for (std::size_t k = 0; k < n; ++k) {
          out[k] = cachedPositionAt(static_cast<std::size_t>(ids[k]), now);
        }
      });
}

int World::addNode(std::unique_ptr<mobility::MobilityModel> mobility,
                   sim::Rng macRng) {
  if (!mobility) throw std::invalid_argument{"World::addNode: null mobility"};
  const int id = static_cast<int>(nodes_.size());
  Node node;
  node.mobility = std::move(mobility);
  node.mac = std::make_unique<mac::Mac>(sim_, channel_, id, macParams_,
                                        macRng);
  nodes_.push_back(std::move(node));
  posCache_.emplace_back();
  posAt_.push_back(-1.0);
  return id;
}

void World::setAgent(int id, std::unique_ptr<Agent> agent) {
  if (!agent) throw std::invalid_argument{"World::setAgent: null agent"};
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  node.agent = std::move(agent);
  Agent* raw = node.agent.get();
  node.mac->setReceiveCallback(
      [raw](const Packet& p, int from) { raw->onPacket(p, from); });
  node.mac->setTxStatusCallback(
      [raw](const Packet& p, int dst, bool ok) { raw->onTxStatus(p, dst, ok); });
}

void World::enableSpatialIndex(double maxSpeed, double rebuildInterval,
                               mac::Channel::IndexMode mode) {
  channel_.enableReceiverIndex(channel_.thresholds().rxRange, maxSpeed,
                               rebuildInterval, mode);
}

void World::reserveNodes(std::size_t n) {
  nodes_.reserve(n);
  posCache_.reserve(n);
  posAt_.reserve(n);
}

void World::setNodeRadius(int id, double range) {
  (void)nodes_.at(static_cast<std::size_t>(id));  // bounds check
  channel_.setNodeTxRange(id, range);
  if (nodeRange_.size() < nodes_.size()) nodeRange_.resize(nodes_.size(), 0.0);
  nodeRange_[static_cast<std::size_t>(id)] = range;
}

double World::radioRangeOf(int id) const {
  const auto i = static_cast<std::size_t>(id);
  if (i >= nodes_.size()) {
    throw std::out_of_range{"World::radioRangeOf: bad node id"};
  }
  return i < nodeRange_.size() && nodeRange_[i] > 0.0 ? nodeRange_[i]
                                                      : nominalRange_;
}

void World::setRadioUp(int id, bool up) {
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  if (node.mac->radioUp() == up) return;
  node.mac->setRadioUp(up);
  if (node.agent) node.agent->onRadioState(up);
}

bool World::radioUp(int id) const {
  return nodes_.at(static_cast<std::size_t>(id)).mac->radioUp();
}

geom::Point2 World::cachedPositionAt(std::size_t i, sim::SimTime now) {
  if (posAt_[i] != now) {
    posCache_[i] = nodes_[i].mobility->positionAt(now);
    posAt_[i] = now;
  }
  return posCache_[i];
}

geom::Point2 World::positionOf(int id) {
  const auto i = static_cast<std::size_t>(id);
  if (i >= nodes_.size()) {
    throw std::out_of_range{"World::positionOf: bad node id"};
  }
  return cachedPositionAt(i, sim_.now());
}

mac::Mac& World::macOf(int id) {
  return *nodes_.at(static_cast<std::size_t>(id)).mac;
}

Agent& World::agentOf(int id) {
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  if (!node.agent) throw std::logic_error{"World::agentOf: no agent set"};
  return *node.agent;
}

void World::start() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].agent) {
      Agent* raw = nodes_[i].agent.get();
      sim_.schedule(0.0, startDesc(static_cast<int>(i)),
                    [raw] { raw->start(); });
    }
  }
}

void World::invalidatePositionCache() {
  for (sim::SimTime& at : posAt_) at = -1.0;
}

void World::restoreAgentStartEvent(const sim::EventKey& key, int id) {
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  if (!node.agent) {
    throw std::runtime_error{"checkpoint: agent-start event names node " +
                             std::to_string(id) + " which has no agent"};
  }
  Agent* raw = node.agent.get();
  sim_.scheduleKeyed(key, startDesc(id), [raw] { raw->start(); });
}

}  // namespace glr::net
