#include "net/world.hpp"

#include <stdexcept>

namespace glr::net {

World::World(sim::Simulator& sim, const phy::PropagationModel& model,
             const phy::RadioParams& radio, mac::MacParams macParams)
    : sim_(sim),
      macParams_(macParams),
      channel_(sim, model, phy::solveThresholds(model, radio),
               radio.txPowerW, [this](int id) { return positionOf(id); }) {
  macParams_.bitRateBps = radio.bitRateBps;
}

int World::addNode(std::unique_ptr<mobility::MobilityModel> mobility,
                   sim::Rng macRng) {
  if (!mobility) throw std::invalid_argument{"World::addNode: null mobility"};
  const int id = static_cast<int>(nodes_.size());
  Node node;
  node.mobility = std::move(mobility);
  node.mac = std::make_unique<mac::Mac>(sim_, channel_, id, macParams_,
                                        macRng);
  nodes_.push_back(std::move(node));
  return id;
}

void World::setAgent(int id, std::unique_ptr<Agent> agent) {
  if (!agent) throw std::invalid_argument{"World::setAgent: null agent"};
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  node.agent = std::move(agent);
  Agent* raw = node.agent.get();
  node.mac->setReceiveCallback(
      [raw](const Packet& p, int from) { raw->onPacket(p, from); });
  node.mac->setTxStatusCallback(
      [raw](const Packet& p, int dst, bool ok) { raw->onTxStatus(p, dst, ok); });
}

void World::enableSpatialIndex(double maxSpeed, double rebuildInterval) {
  channel_.enableReceiverIndex(channel_.thresholds().rxRange, maxSpeed,
                               rebuildInterval);
}

geom::Point2 World::positionOf(int id) {
  return nodes_.at(static_cast<std::size_t>(id))
      .mobility->positionAt(sim_.now());
}

mac::Mac& World::macOf(int id) {
  return *nodes_.at(static_cast<std::size_t>(id)).mac;
}

Agent& World::agentOf(int id) {
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  if (!node.agent) throw std::logic_error{"World::agentOf: no agent set"};
  return *node.agent;
}

void World::start() {
  for (auto& node : nodes_) {
    if (node.agent) {
      Agent* raw = node.agent.get();
      sim_.schedule(0.0, [raw] { raw->start(); });
    }
  }
}

}  // namespace glr::net
