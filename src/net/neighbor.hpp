#pragma once
/// \file neighbor.hpp
/// IMEP-like neighbor/location sensing via periodic hello beacons.
///
/// The paper layers GLR on top of ns-2's IMEP, whose Link/Connection Status
/// Sensing exchanges per-neighbor state at a fixed interval; the authors
/// extend its header with node locations. We model the same mechanism
/// directly: each node broadcasts a hello carrying its id, position and its
/// current 1-hop neighbor table (ids + positions + timestamps), which gives
/// receivers exactly the distance-2 knowledge the paper's LDTG construction
/// uses. Because beacons are periodic, positions known to neighbors are
/// slightly stale — the same artifact the paper notes for IMEP.

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geometry/point.hpp"
#include "mac/mac.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "spanner/ldtg.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::net {

/// In-simulator hello beacon payload.
struct HelloPayload {
  struct Entry {
    int id = -1;
    geom::Point2 pos;
    sim::SimTime heardAt = 0;  // when the sender last heard this neighbor
  };
  int id = -1;
  geom::Point2 pos;
  sim::SimTime sentAt = 0;
  std::vector<Entry> neighbors;  // sender's fresh 1-hop table
};

/// Packet kind tag used by the service.
inline constexpr const char* kHelloKind = "hello";

class NeighborService {
 public:
  struct Params {
    double helloInterval = 0.75;   // seconds between beacons
    double expiry = 2.0;           // neighbor freshness horizon (seconds)
    std::size_t baseBytes = 20;    // id + position + timestamp
    std::size_t perNeighborBytes = 12;
    bool includeNeighborList = true;  // piggyback 1-hop table (2-hop info)
    /// Expected 1-hop neighborhood size; the table reserves this many
    /// buckets up front so steady-state hello handling never rehashes.
    std::size_t expectedNeighbors = 32;
    /// Steady-state memory bound for long/large runs: records that have
    /// been stale for more than `evictAfterFactor * expiry` seconds are
    /// erased during the beacon sweep. 0 (default) keeps every record for
    /// the life of the node — the historical behavior the goldens were
    /// recorded under. Eviction never changes which neighbors are *fresh*,
    /// but re-inserting a previously-erased id can land at a different
    /// hash-table position than an in-place update would have, which can
    /// reorder hello payloads — hence opt-in rather than always-on.
    double evictAfterFactor = 0.0;
  };

  /// New-contact callback: fires when a hello arrives from a node that was
  /// not a fresh neighbor (first contact or re-contact after expiry).
  using ContactCallback = std::function<void(int id)>;
  /// Location sample: every position observation carried by hellos
  /// (sender position and piggybacked 2-hop entries), with its timestamp.
  using LocationSampleCallback =
      std::function<void(int id, geom::Point2 pos, sim::SimTime at)>;

  NeighborService(sim::Simulator& sim, mac::Mac& mac, int self,
                  std::function<geom::Point2()> myPosition, Params params,
                  sim::Rng rng);

  /// Begins periodic beaconing (first beacon after a random sub-interval
  /// offset so nodes don't beacon in lockstep).
  void start();

  /// Feed packets from Agent::onPacket; returns true if it was a hello and
  /// has been consumed.
  bool handlePacket(const Packet& packet, int fromMac);

  void setContactCallback(ContactCallback cb) { onContact_ = std::move(cb); }
  void setLocationSampleCallback(LocationSampleCallback cb) {
    onLocationSample_ = std::move(cb);
  }

  /// Forgets all neighbor/location state. The churn layer calls this when
  /// the node's radio duty-cycles off: on wake, everything in the table
  /// would be stale beyond the expiry horizon, and a cold start matches
  /// what a real rebooted radio knows. Beaconing continues unchanged (the
  /// MAC drops hellos while down).
  void reset() { table_.clear(); }

  /// Fresh 1-hop neighbor ids (heard within expiry), sorted.
  [[nodiscard]] std::vector<int> currentNeighbors() const;
  [[nodiscard]] bool isNeighbor(int id) const;
  /// Last known position of a fresh 1-hop neighbor.
  [[nodiscard]] std::optional<geom::Point2> neighborPosition(int id) const;

  /// The node's <= 2-hop knowledge for LDTG construction: fresh 1-hop
  /// neighbors (as oneHop) plus the nodes they reported (as two-hop),
  /// deduplicated keeping the freshest observation.
  [[nodiscard]] std::vector<spanner::KnownNode> knowledge() const;

  [[nodiscard]] std::uint64_t hellosSent() const { return hellosSent_; }
  [[nodiscard]] std::uint64_t hellosReceived() const { return hellosReceived_; }
  /// Beacons the MAC refused (queue full / radio down). A dropped hello
  /// only delays neighbor discovery by one interval, but under saturation
  /// these must be visible, not silent.
  [[nodiscard]] std::uint64_t helloSendFailures() const {
    return helloSendFailures_;
  }

  /// Checkpoint support. The neighbor table's *iteration order* is
  /// observable (it drives hello payload order and knowledge(), which drive
  /// LDTG construction and routing), so it round-trips through the
  /// order-preserving container codec.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

  /// Re-creates a pending hello beacon event under its original key
  /// (restore path; see checkpoint/event_kinds.hpp kHello).
  void restoreHelloEvent(const sim::EventKey& key);

 private:
  struct NeighborRecord {
    geom::Point2 pos;
    sim::SimTime heard = -1e18;
    std::vector<HelloPayload::Entry> reported;
  };

  void sendHello();
  [[nodiscard]] bool fresh(const NeighborRecord& r) const;

  sim::Simulator& sim_;
  mac::Mac& mac_;
  int self_;
  std::function<geom::Point2()> myPosition_;
  Params params_;
  sim::Rng rng_;

  std::unordered_map<int, NeighborRecord> table_;
  ContactCallback onContact_;
  LocationSampleCallback onLocationSample_;
  std::uint64_t hellosSent_ = 0;
  std::uint64_t hellosReceived_ = 0;
  std::uint64_t helloSendFailures_ = 0;
};

}  // namespace glr::net
