#include "net/churn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"

namespace glr::net {

namespace {

sim::EventDesc toggleDesc(std::size_t idx) {
  sim::EventDesc d;
  d.kind = ckpt::kChurnToggle;
  d.u0 = static_cast<std::uint64_t>(idx);
  return d;
}

}  // namespace

ChurnProcess::ChurnProcess(World& world, Params params, sim::Rng rng)
    : world_(world), params_(params) {
  if (!(params.fraction > 0.0) || params.fraction > 1.0) {
    throw std::invalid_argument{"ChurnProcess: fraction must be in (0, 1]"};
  }
  if (!(params.upMean > 0.0) || !(params.downMean > 0.0)) {
    throw std::invalid_argument{"ChurnProcess: up/down means must be > 0"};
  }
  if (params.start < 0.0) {
    throw std::invalid_argument{"ChurnProcess: negative start"};
  }
  const auto n = static_cast<std::size_t>(world.numNodes());
  if (n == 0) throw std::invalid_argument{"ChurnProcess: empty world"};
  const std::size_t k = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::llround(params.fraction * n)), 1, n);
  nodes_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    NodeState state;
    // Stride mapping i -> i*n/k yields k distinct ids spread over [0, n).
    state.id = static_cast<int>(i * n / k);
    state.rng = rng.fork(i);
    nodes_.push_back(state);
  }
}

void ChurnProcess::start() {
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) scheduleNext(idx);
}

void ChurnProcess::scheduleNext(std::size_t idx) {
  NodeState& node = nodes_[idx];
  const double mean = node.up ? params_.upMean : params_.downMean;
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at =
      std::max(params_.start, sim.now()) + node.rng.exponential(mean);
  sim.scheduleAt(at, toggleDesc(idx), [this, idx] { toggle(idx); });
}

void ChurnProcess::saveState(ckpt::Encoder& e) const {
  e.size(nodes_.size());
  for (const NodeState& node : nodes_) {
    e.i32(node.id);
    e.boolean(node.up);
    for (const std::uint64_t word : node.rng.state()) e.u64(word);
  }
  e.u64(toggles_);
}

void ChurnProcess::restoreState(ckpt::Decoder& d) {
  const std::size_t n = d.size();
  if (n != nodes_.size()) {
    d.fail("churning node count mismatch (snapshot " + std::to_string(n) +
           ", live " + std::to_string(nodes_.size()) + ")");
  }
  for (NodeState& node : nodes_) {
    const int id = d.i32();
    if (id != node.id) {
      d.fail("churning node id mismatch (snapshot " + std::to_string(id) +
             ", live " + std::to_string(node.id) + ")");
    }
    node.up = d.boolean();
    std::array<std::uint64_t, 4> state{};
    for (std::uint64_t& word : state) word = d.u64();
    node.rng.setState(state);
  }
  toggles_ = d.u64();
}

void ChurnProcess::restoreToggleEvent(const sim::EventKey& key,
                                      std::size_t idx) {
  if (idx >= nodes_.size()) {
    throw std::runtime_error{
        "checkpoint: churn toggle event names node index " +
        std::to_string(idx) + " of " + std::to_string(nodes_.size())};
  }
  world_.sim().scheduleKeyed(key, toggleDesc(idx),
                             [this, idx] { toggle(idx); });
}

void ChurnProcess::toggle(std::size_t idx) {
  NodeState& node = nodes_[idx];
  node.up = !node.up;
  ++toggles_;
  world_.setRadioUp(node.id, node.up);
  scheduleNext(idx);
}

}  // namespace glr::net
