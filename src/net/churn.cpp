#include "net/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glr::net {

ChurnProcess::ChurnProcess(World& world, Params params, sim::Rng rng)
    : world_(world), params_(params) {
  if (!(params.fraction > 0.0) || params.fraction > 1.0) {
    throw std::invalid_argument{"ChurnProcess: fraction must be in (0, 1]"};
  }
  if (!(params.upMean > 0.0) || !(params.downMean > 0.0)) {
    throw std::invalid_argument{"ChurnProcess: up/down means must be > 0"};
  }
  if (params.start < 0.0) {
    throw std::invalid_argument{"ChurnProcess: negative start"};
  }
  const auto n = static_cast<std::size_t>(world.numNodes());
  if (n == 0) throw std::invalid_argument{"ChurnProcess: empty world"};
  const std::size_t k = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::llround(params.fraction * n)), 1, n);
  nodes_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    NodeState state;
    // Stride mapping i -> i*n/k yields k distinct ids spread over [0, n).
    state.id = static_cast<int>(i * n / k);
    state.rng = rng.fork(i);
    nodes_.push_back(state);
  }
}

void ChurnProcess::start() {
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) scheduleNext(idx);
}

void ChurnProcess::scheduleNext(std::size_t idx) {
  NodeState& node = nodes_[idx];
  const double mean = node.up ? params_.upMean : params_.downMean;
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at =
      std::max(params_.start, sim.now()) + node.rng.exponential(mean);
  sim.scheduleAt(at, [this, idx] { toggle(idx); });
}

void ChurnProcess::toggle(std::size_t idx) {
  NodeState& node = nodes_[idx];
  node.up = !node.up;
  ++toggles_;
  world_.setRadioUp(node.id, node.up);
  scheduleNext(idx);
}

}  // namespace glr::net
