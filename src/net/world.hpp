#pragma once
/// \file world.hpp
/// Node container wiring mobility, MAC, channel and routing agents together.

#include <memory>
#include <vector>

#include "geometry/point.hpp"
#include "mac/channel.hpp"
#include "mac/mac.hpp"
#include "mobility/mobility.hpp"
#include "net/packet.hpp"
#include "phy/propagation.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace glr::trace {
class Recorder;  // trace/recorder.hpp
}

namespace glr::net {

class AdversaryModel;  // net/faults.hpp

/// Routing-protocol interface. Agents live on a node, receive packets from
/// the MAC and send through it.
class Agent {
 public:
  virtual ~Agent() = default;
  /// Called once at simulation start (t = 0).
  virtual void start() = 0;
  /// A DATA packet arrived for this node (unicast to it, or broadcast).
  virtual void onPacket(const Packet& packet, int fromMac) = 0;
  /// Outcome of a unicast this node sent (success == MAC-level ACK seen).
  virtual void onTxStatus(const Packet& /*packet*/, int /*dstMac*/,
                          bool /*success*/) {}
  /// The node's radio duty-cycled on (`up`) or off (churn layer). Agents
  /// typically drop neighbor state on a down transition — on wake it would
  /// be stale beyond the freshness horizon anyway.
  virtual void onRadioState(bool /*up*/) {}
};

/// Owns the simulator-facing pieces of one scenario: the channel and all
/// nodes (mobility + MAC + agent).
class World {
 public:
  World(sim::Simulator& sim, const phy::PropagationModel& model,
        const phy::RadioParams& radio, mac::MacParams macParams);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Adds a node with the given mobility; returns its id (dense from 0).
  int addNode(std::unique_ptr<mobility::MobilityModel> mobility,
              sim::Rng macRng);

  /// Installs the routing agent for `id` and wires MAC callbacks to it.
  void setAgent(int id, std::unique_ptr<Agent> agent);

  /// Enables the channel's spatial receiver index (see
  /// mac::Channel::enableReceiverIndex). `maxSpeed` must upper-bound every
  /// node's speed in m/s (0 for static topologies). For mobility models
  /// whose positionAt(t) is a pure function of t (every leg/segment-based
  /// model: static, waypoint, direction, gauss_markov, manhattan, cluster)
  /// results are identical to the unindexed channel; models that integrate
  /// incrementally per query (RandomWalk) can drift by FP rounding because
  /// the index changes which times get queried. Only the per-frame receiver
  /// enumeration cost drops from O(n) to O(neighborhood).
  ///
  /// `mode` picks how recorded positions are kept fresh: kSnapshot (the
  /// pinned-golden default) re-records all nodes per interval; kTiled
  /// re-records only janitor-swept and actively queried tiles, with
  /// per-node staleness pads (see mac::Channel::IndexMode).
  void enableSpatialIndex(
      double maxSpeed, double rebuildInterval = 0.5,
      mac::Channel::IndexMode mode = mac::Channel::IndexMode::kSnapshot);

  /// Pre-sizes node storage (call before the addNode loop at large
  /// populations so per-node vectors never re-churn mid-construction).
  void reserveNodes(std::size_t n);

  /// Gives node `id` a heterogeneous radio: its transmit power is scaled so
  /// its transmissions are receivable out to `range` metres (see
  /// mac::Channel::setNodeTxRange). Callable before or after
  /// enableSpatialIndex; the receiver index widens itself.
  void setNodeRadius(int id, double range);

  /// Node `id`'s transmit range: the per-node override if set, else the
  /// shared radio's nominal range.
  [[nodiscard]] double radioRangeOf(int id) const;

  /// Churn layer: duty-cycles node `id`'s radio (see mac::Mac::setRadioUp)
  /// and notifies its agent via Agent::onRadioState.
  void setRadioUp(int id, bool up);
  [[nodiscard]] bool radioUp(int id) const;

  /// Current position of node `id`, through the epoch position cache: the
  /// first query for a node at the current sim time evaluates its mobility
  /// model (advancing it); repeat queries at the same time return the
  /// cached point. Invalidation contract: a cache entry is keyed on the
  /// exact sim time it was computed at, so it expires the instant the clock
  /// advances — nothing else can move a node, and the mobility layer's
  /// monotone-time guard (MobilityModel::requireMonotone) guarantees the
  /// clock never runs backwards under a live entry. Re-queries at one time
  /// are identity operations for every model (leg models are pure functions
  /// of t; RandomWalk's incremental integrator advances by dt == 0), so the
  /// cache is bit-identical to always asking the model — pinned by
  /// test_hotpath.cpp across all registered models and under churn.
  [[nodiscard]] geom::Point2 positionOf(int id);

  /// Adversary layer (misbehaving-node models): installed by FaultProcess
  /// when any behavior fraction is set, consulted by routing agents at the
  /// single point where a relayed copy is accepted. Null in honest runs —
  /// the observer pointer keeps world.hpp free of the faults dependency and
  /// costs one branch on the relay path.
  void setAdversary(AdversaryModel* adversary) { adversary_ = adversary; }
  [[nodiscard]] AdversaryModel* adversary() { return adversary_; }

  /// Flight recorder (trace/recorder.hpp): installed by the experiment
  /// layer *before* agents are constructed — agents and their buffers cache
  /// the pointer at construction. Null (the default) = tracing off; the
  /// observer pointer keeps world.hpp free of the trace dependency and
  /// costs one branch per instrumentation point.
  void setTraceRecorder(trace::Recorder* trace) { trace_ = trace; }
  [[nodiscard]] trace::Recorder* trace() { return trace_; }

  [[nodiscard]] mac::Mac& macOf(int id);
  [[nodiscard]] Agent& agentOf(int id);
  [[nodiscard]] std::size_t numNodes() const { return nodes_.size(); }
  [[nodiscard]] mac::Channel& channel() { return channel_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }

  /// Schedules every agent's start() at t = 0 (call before sim.run()).
  void start();

  /// Checkpoint restore support: expires every epoch position-cache entry
  /// so the first post-restore query re-evaluates each node's mobility
  /// model at the restored clock (positions are pure functions of t for
  /// every built-in model, so mobility itself carries no serialized state).
  void invalidatePositionCache();

  /// Re-creates a pending agent-start event under its original key (only
  /// possible for a t = 0 checkpoint; see event_kinds.hpp kAgentStart).
  void restoreAgentStartEvent(const sim::EventKey& key, int id);

 private:
  struct Node {
    std::unique_ptr<mobility::MobilityModel> mobility;
    std::unique_ptr<mac::Mac> mac;
    std::unique_ptr<Agent> agent;
  };

  /// Cache-aware lookup backing positionOf and the channel's batch gather.
  [[nodiscard]] geom::Point2 cachedPositionAt(std::size_t i, sim::SimTime now);

  sim::Simulator& sim_;
  mac::MacParams macParams_;
  double nominalRange_;
  mac::Channel channel_;
  AdversaryModel* adversary_ = nullptr;  // owned by FaultProcess
  trace::Recorder* trace_ = nullptr;     // owned by the experiment layer
  std::vector<Node> nodes_;
  std::vector<double> nodeRange_;  // per-node override; 0 = shared radio

  // Epoch position cache (SoA): posAt_[i] is the sim time posCache_[i] was
  // computed at; -1 marks never-computed (sim times are >= 0).
  std::vector<geom::Point2> posCache_;
  std::vector<sim::SimTime> posAt_;
};

}  // namespace glr::net
