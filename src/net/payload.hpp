#pragma once
/// \file payload.hpp
/// Slab-recycled, reference-counted packet payloads.
///
/// Packets used to carry their protocol struct in a `std::any`, which heap-
/// allocates on every assignment and deep-copies on every Packet copy — and
/// the MAC copies each packet once per transmission attempt (queue entry ->
/// on-air frame), so a single hello beacon with a neighbor vector cost
/// several allocations before it ever reached a receiver. `Payload` replaces
/// this with an intrusively reference-counted block from a per-type,
/// per-thread free-list arena (the PR-2 slab idiom): creating a payload pops
/// a recycled block, copying a Packet bumps a refcount, and the last release
/// pushes the block back — with its value still constructed, so contained
/// buffers (e.g. HelloPayload::neighbors) keep their capacity across reuse.
/// Steady-state packet traffic therefore performs no heap allocations at
/// all; test_hotpath.cpp pins this under a counting allocator.
///
/// Contract: payloads are *immutable once shared*. Build the value through
/// `mutableValue()` while the handle is still unique, then hand it to a
/// Packet; receivers read through `get<T>()`. Because `create<T>()` may
/// return a recycled block, the value holds stale content from a previous
/// use — builders must overwrite every field (assign the whole struct, or
/// clear() + refill containers; clearing is what preserves capacity).
///
/// Threading: the arenas are thread_local and refcounts are plain integers.
/// A payload must be created, shared and released on one thread — which is
/// exactly the sweep engine's execution model (each scenario runs entirely
/// on one worker; nothing crosses threads but finished ScenarioResults).

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace glr::net {

class Payload {
 public:
  Payload() noexcept = default;

  Payload(const Payload& other) noexcept : block_(other.block_) {
    if (block_ != nullptr) ++header().refs;
  }

  Payload(Payload&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }

  Payload& operator=(const Payload& other) noexcept {
    Payload tmp{other};
    std::swap(block_, tmp.block_);
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    std::swap(block_, other.block_);
    return *this;
  }

  ~Payload() { reset(); }

  /// A fresh (possibly recycled — see file comment) handle holding a
  /// default-constructed-or-stale T with refcount 1.
  template <class T>
  [[nodiscard]] static Payload create() {
    Arena<T>& arena = arenaFor<T>();
    Block<T>* b = arena.freeHead;
    if (b != nullptr) {
      arena.freeHead = b->nextFree;
    } else {
      arena.all.push_back(std::make_unique<Block<T>>());
      b = arena.all.back().get();
    }
    b->header.refs = 1;
    Payload p;
    p.block_ = b;
    return p;
  }

  /// Convenience: create<T>() + overwrite the (stale) value by assignment.
  template <class T>
  [[nodiscard]] static Payload of(const T& value) {
    Payload p = create<T>();
    p.mutableValue<T>() = value;
    return p;
  }

  /// The contained T, or nullptr if empty or a different type is held.
  template <class T>
  [[nodiscard]] const T* get() const {
    if (block_ == nullptr || header().tag != tagFor<T>()) return nullptr;
    return &static_cast<const Block<T>*>(block_)->value;
  }

  /// Mutable access for the builder. Only legal while the handle is unique
  /// (refs == 1) and holds a T — mutating a shared payload would corrupt a
  /// frame another receiver reads. Both preconditions are asserted (Debug
  /// builds; free in Release).
  template <class T>
  [[nodiscard]] T& mutableValue() {
    const T* v = get<T>();
    assert(v != nullptr && "Payload::mutableValue: empty or wrong type");
    assert(header().refs == 1 && "Payload::mutableValue: handle not unique");
    return const_cast<T&>(*v);
  }

  [[nodiscard]] bool empty() const { return block_ == nullptr; }
  explicit operator bool() const { return block_ != nullptr; }

  void reset() noexcept {
    if (block_ != nullptr && --header().refs == 0) {
      header().recycle(block_);
    }
    block_ = nullptr;
  }

 private:
  struct Header {
    const void* tag = nullptr;         // identity: &kTag<T>
    void (*recycle)(void*) = nullptr;  // push block back to its arena
    std::uint32_t refs = 0;
  };

  template <class T>
  struct Block {
    Header header;  // must stay the first member (see Payload::header())
    Block<T>* nextFree = nullptr;
    T value{};

    Block() {
      header.tag = tagFor<T>();
      header.recycle = &Block::recycleSelf;
    }

    static void recycleSelf(void* block) {
      auto* b = static_cast<Block*>(block);
      // The value stays constructed (containers keep capacity); the block
      // just rejoins its creating thread's free list.
      Arena<T>& arena = arenaFor<T>();
      b->nextFree = arena.freeHead;
      arena.freeHead = b;
    }
  };

  /// Header is the first member of every Block<T>, so the type-erased block
  /// pointer is pointer-interconvertible with it.
  [[nodiscard]] Header& header() const { return *static_cast<Header*>(block_); }

  /// Per-type, per-thread block store. Owns every block it ever handed out;
  /// thread exit (after all payloads are released — see file comment) frees
  /// them through the unique_ptrs.
  template <class T>
  struct Arena {
    Block<T>* freeHead = nullptr;
    std::vector<std::unique_ptr<Block<T>>> all;
  };

  template <class T>
  static Arena<T>& arenaFor() {
    static thread_local Arena<T> arena;
    return arena;
  }

  template <class T>
  static const void* tagFor() {
    static const char kTag = 0;
    return &kTag;
  }

  void* block_ = nullptr;  // Block<T> for whatever T this payload holds
};

}  // namespace glr::net
