#pragma once
/// \file churn.hpp
/// Node churn: duty-cycled radio join/leave driven by kernel events.
///
/// A configurable fraction of nodes alternates exponentially distributed
/// ON/OFF radio periods. Toggles are ordinary simulator events: each one
/// flips the node's MAC radio gate (World::setRadioUp — sends drop,
/// receptions stop, queues flush) and notifies the routing agent so it can
/// cold-start its neighbor state. Every draw comes from per-node forks of
/// one dedicated RNG stream, so enabling churn never perturbs placement,
/// mobility, traffic, MAC or agent randomness, and runs stay bit-identical
/// across thread counts under the parallel sweep engine.

#include <cstdint>
#include <vector>

#include "net/world.hpp"
#include "sim/rng.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::net {

class ChurnProcess {
 public:
  struct Params {
    double fraction = 0.5;   // fraction of nodes that duty-cycle, (0, 1]
    double upMean = 120.0;   // mean ON duration (s), exponential
    double downMean = 30.0;  // mean OFF duration (s), exponential
    double start = 0.0;      // no toggle before this time
  };

  /// Selects round(fraction * numNodes) churning nodes (at least one),
  /// spread uniformly across the id space so churn hits traffic endpoints
  /// and relays alike. Must outlive the simulation run (it owns the state
  /// the scheduled toggle events close over).
  ChurnProcess(World& world, Params params, sim::Rng rng);

  ChurnProcess(const ChurnProcess&) = delete;
  ChurnProcess& operator=(const ChurnProcess&) = delete;

  /// Schedules every churning node's first OFF transition.
  void start();

  [[nodiscard]] std::size_t churningNodes() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t toggles() const { return toggles_; }

  /// Checkpoint support: per-node up/rng state and the toggle counter.
  /// The churning-node id set is construction-derived (verified on restore).
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

  /// Re-creates a pending toggle event under its original key (restore
  /// path; see checkpoint/event_kinds.hpp kChurnToggle, u0 = node index).
  void restoreToggleEvent(const sim::EventKey& key, std::size_t idx);

 private:
  struct NodeState {
    int id = -1;
    bool up = true;
    sim::Rng rng;
  };

  void scheduleNext(std::size_t idx);
  void toggle(std::size_t idx);

  World& world_;
  Params params_;
  std::vector<NodeState> nodes_;
  std::uint64_t toggles_ = 0;
};

}  // namespace glr::net
