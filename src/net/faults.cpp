#include "net/faults.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "mac/channel.hpp"

namespace glr::net {

namespace {

sim::EventDesc faultDesc(ckpt::EventKind kind) {
  sim::EventDesc d;
  d.kind = kind;
  return d;
}

void saveRng(ckpt::Encoder& e, const sim::Rng& rng) {
  for (const std::uint64_t word : rng.state()) e.u64(word);
}

void loadRng(ckpt::Decoder& d, sim::Rng& rng) {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = d.u64();
  rng.setState(state);
}

}  // namespace

AdversaryModel::AdversaryModel(std::size_t numNodes, Params params,
                               sim::Rng rng)
    : params_(params), greyRng_(rng.fork(1)) {
  const auto checkFraction = [](double f, const char* name) {
    if (f < 0.0 || f > 1.0) {
      throw std::invalid_argument{std::string{"AdversaryModel: "} + name +
                                  " must be in [0,1]"};
    }
  };
  checkFraction(params.blackholeFraction, "blackholeFraction");
  checkFraction(params.greyholeFraction, "greyholeFraction");
  checkFraction(params.selfishFraction, "selfishFraction");
  checkFraction(params.flappingFraction, "flappingFraction");
  checkFraction(params.greyholeDropProb, "greyholeDropProb");
  if (params.flappingFraction > 0.0 &&
      (!(params.flapUpMean > 0.0) || !(params.flapDownMean > 0.0))) {
    throw std::invalid_argument{
        "AdversaryModel: flap phase means must be > 0"};
  }
  if (numNodes == 0) {
    throw std::invalid_argument{"AdversaryModel: empty world"};
  }

  const auto count = [numNodes](double f) {
    return static_cast<std::size_t>(
        std::llround(f * static_cast<double>(numNodes)));
  };
  const std::size_t nBlack = count(params.blackholeFraction);
  const std::size_t nGrey = count(params.greyholeFraction);
  const std::size_t nSelfish = count(params.selfishFraction);
  const std::size_t nFlap = count(params.flappingFraction);
  if (nBlack + nGrey + nSelfish + nFlap > numNodes) {
    throw std::invalid_argument{
        "AdversaryModel: behavior fractions sum past the population"};
  }

  // Seeded assignment: shuffle ids on a dedicated fork (independent of the
  // greyhole draw stream), then carve consecutive runs per behavior.
  behaviors_.assign(numNodes, Behavior::kHonest);
  std::vector<int> ids(numNodes);
  std::iota(ids.begin(), ids.end(), 0);
  sim::Rng assignRng = rng.fork(2);
  for (std::size_t i = numNodes - 1; i > 0; --i) {
    const std::size_t j = assignRng.below(i + 1);
    std::swap(ids[i], ids[j]);
  }
  std::size_t at = 0;
  const auto take = [&](std::size_t n, Behavior b) {
    for (std::size_t k = 0; k < n; ++k) {
      behaviors_[static_cast<std::size_t>(ids[at])] = b;
      if (b == Behavior::kFlapping) flappingNodes_.push_back(ids[at]);
      ++at;
    }
  };
  take(nBlack, Behavior::kBlackhole);
  take(nGrey, Behavior::kGreyhole);
  take(nSelfish, Behavior::kSelfish);
  take(nFlap, Behavior::kFlapping);
  // Ascending ids give the flap scheduler a stable, id-ordered draw
  // sequence regardless of the shuffle.
  std::sort(flappingNodes_.begin(), flappingNodes_.end());
}

AdversaryModel::RelayDecision AdversaryModel::onRelayData(int node) {
  switch (behaviorOf(node)) {
    case Behavior::kHonest:
    case Behavior::kFlapping:
      return RelayDecision::kAccept;
    case Behavior::kBlackhole:
      ++counters_.blackholeDrops;
      return RelayDecision::kDrop;
    case Behavior::kGreyhole:
      if (greyRng_.bernoulli(params_.greyholeDropProb)) {
        ++counters_.greyholeDrops;
        return RelayDecision::kDrop;
      }
      return RelayDecision::kAccept;
    case Behavior::kSelfish:
      ++counters_.selfishRefusals;
      return RelayDecision::kRefuse;
  }
  return RelayDecision::kAccept;
}

FaultProcess::FaultProcess(World& world, Params params, sim::Rng rng)
    : world_(world),
      params_(params),
      lossRng_(rng.fork(1)),
      burstRng_(rng.fork(2)),
      stallRng_(rng.fork(3)) {
  if (params.start < 0.0) {
    throw std::invalid_argument{"FaultProcess: negative start"};
  }
  if (params.burstRate < 0.0 || params.stallRate < 0.0) {
    throw std::invalid_argument{"FaultProcess: negative rate"};
  }
  if (params.burstRate > 0.0 && !(params.burstMean > 0.0)) {
    throw std::invalid_argument{"FaultProcess: burstMean must be > 0"};
  }
  if (params.stallRate > 0.0 && !(params.stallMean > 0.0)) {
    throw std::invalid_argument{"FaultProcess: stallMean must be > 0"};
  }
  if (params.lossProb < 0.0 || params.lossProb > 1.0 ||
      params.corruptProb < 0.0 || params.corruptProb > 1.0) {
    throw std::invalid_argument{"FaultProcess: probabilities must be in [0,1]"};
  }
  if (world.numNodes() == 0) {
    throw std::invalid_argument{"FaultProcess: empty world"};
  }
  stalled_.assign(world.numNodes(), 0);
  // The adversary streams (assignment, greyhole draws, flap phases) are
  // forked only when some behavior is enabled, so an all-honest run's draw
  // sequence is byte-identical to one with no adversary support at all.
  if (params.adversary.any()) {
    adversary_.emplace(world.numNodes(), params.adversary, rng.fork(4));
    flapRng_ = rng.fork(5);
  }
}

void FaultProcess::start() {
  if (params_.burstRate > 0.0 || params_.corruptProb > 0.0) {
    world_.channel().setDeliveryFilter(
        [this](const mac::Frame& frame, int receiver) {
          return deliver(frame, receiver);
        });
  }
  if (params_.burstRate > 0.0) scheduleBurst();
  if (params_.stallRate > 0.0) scheduleStall();
  if (adversary_.has_value()) {
    world_.setAdversary(&*adversary_);
    // Flapping responders start up (like every node) and end their first up
    // phase after start + exp(flapUpMean), in ascending node-id order.
    for (const int node : adversary_->flappingNodes()) {
      scheduleFlap(node, /*up=*/true);
    }
  }
}

bool FaultProcess::deliver(const mac::Frame& /*frame*/, int /*receiver*/) {
  if (burstsActive_ > 0 && params_.lossProb > 0.0 &&
      lossRng_.bernoulli(params_.lossProb)) {
    ++counters_.framesLost;
    return false;
  }
  if (params_.corruptProb > 0.0 && lossRng_.bernoulli(params_.corruptProb)) {
    ++counters_.framesCorrupted;
    return false;
  }
  return true;
}

void FaultProcess::scheduleBurst() {
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at = std::max(params_.start, sim.now()) +
                          burstRng_.exponential(1.0 / params_.burstRate);
  sim.scheduleAt(at, faultDesc(ckpt::kFaultBurstNext),
                 [this] { burstArrive(); });
}

void FaultProcess::burstArrive() {
  ++counters_.burstsStarted;
  ++burstsActive_;  // bursts can overlap; loss applies while any is open
  const double duration = burstRng_.exponential(params_.burstMean);
  world_.sim().schedule(duration, faultDesc(ckpt::kFaultBurstEnd),
                        [this] { burstEnd(); });
  scheduleBurst();
}

void FaultProcess::scheduleStall() {
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at = std::max(params_.start, sim.now()) +
                          stallRng_.exponential(1.0 / params_.stallRate);
  sim.scheduleAt(at, faultDesc(ckpt::kFaultStallNext),
                 [this] { stallArrive(); });
}

void FaultProcess::stallArrive() {
  // Draw victim and duration unconditionally (the draw sequence must not
  // depend on which nodes happen to be stalled); skip only the toggle.
  const auto victim = static_cast<int>(stallRng_.below(world_.numNodes()));
  const double duration = stallRng_.exponential(params_.stallMean);
  if (!stalled_[static_cast<std::size_t>(victim)]) {
    stalled_[static_cast<std::size_t>(victim)] = 1;
    ++counters_.stallsStarted;
    world_.setRadioUp(victim, false);
    sim::EventDesc desc = faultDesc(ckpt::kFaultStallEnd);
    desc.i0 = victim;
    world_.sim().schedule(duration, desc,
                          [this, victim] { stallEnd(victim); });
  }
  scheduleStall();
}

void FaultProcess::stallEnd(int victim) {
  stalled_[static_cast<std::size_t>(victim)] = 0;
  world_.setRadioUp(victim, true);
}

void FaultProcess::scheduleFlap(int node, bool up) {
  // Each toggle event draws exactly one phase duration at fire time, so the
  // flap stream's draw sequence is fixed by the (deterministic) event
  // order. Flapping shares World::setRadioUp with churn/stalls; composition
  // is the same last-writer-wins caveat those layers already document.
  sim::Simulator& sim = world_.sim();
  const double mean =
      up ? params_.adversary.flapUpMean : params_.adversary.flapDownMean;
  const sim::SimTime at =
      std::max(params_.start, sim.now()) + flapRng_.exponential(mean);
  sim::EventDesc desc = faultDesc(ckpt::kFaultFlap);
  desc.i0 = node;
  desc.b0 = up ? 1 : 0;
  sim.scheduleAt(at, desc, [this, node, up] { flapToggle(node, up); });
}

void FaultProcess::flapToggle(int node, bool up) {
  adversary_->noteFlapTransition();
  world_.setRadioUp(node, !up);
  scheduleFlap(node, !up);
}

void AdversaryModel::saveState(ckpt::Encoder& e) const {
  saveRng(e, greyRng_);
  e.size(flappingNodes_.size());
  for (const int node : flappingNodes_) e.i32(node);
  e.u64(counters_.blackholeDrops);
  e.u64(counters_.greyholeDrops);
  e.u64(counters_.selfishRefusals);
  e.u64(counters_.flapTransitions);
}

void AdversaryModel::restoreState(ckpt::Decoder& d) {
  loadRng(d, greyRng_);
  const std::size_t n = d.checkedSize(d.u64(), 4);
  if (n != flappingNodes_.size()) {
    d.fail("flapping node count mismatch (snapshot " + std::to_string(n) +
           ", live " + std::to_string(flappingNodes_.size()) + ")");
  }
  for (const int node : flappingNodes_) {
    const int saved = d.i32();
    if (saved != node) {
      d.fail("flapping node id mismatch (snapshot " + std::to_string(saved) +
             ", live " + std::to_string(node) + ")");
    }
  }
  counters_.blackholeDrops = d.u64();
  counters_.greyholeDrops = d.u64();
  counters_.selfishRefusals = d.u64();
  counters_.flapTransitions = d.u64();
}

void FaultProcess::saveState(ckpt::Encoder& e) const {
  saveRng(e, lossRng_);
  saveRng(e, burstRng_);
  saveRng(e, stallRng_);
  saveRng(e, flapRng_);
  e.i32(burstsActive_);
  e.size(stalled_.size());
  for (const char s : stalled_) e.boolean(s != 0);
  e.boolean(adversary_.has_value());
  if (adversary_.has_value()) adversary_->saveState(e);
  e.u64(counters_.burstsStarted);
  e.u64(counters_.framesLost);
  e.u64(counters_.framesCorrupted);
  e.u64(counters_.stallsStarted);
}

void FaultProcess::restoreState(ckpt::Decoder& d) {
  loadRng(d, lossRng_);
  loadRng(d, burstRng_);
  loadRng(d, stallRng_);
  loadRng(d, flapRng_);
  burstsActive_ = d.i32();
  const std::size_t n = d.checkedSize(d.u64(), 1);
  if (n != stalled_.size()) {
    d.fail("stall bitmap size mismatch (snapshot " + std::to_string(n) +
           ", live " + std::to_string(stalled_.size()) + ")");
  }
  for (char& s : stalled_) s = d.boolean() ? 1 : 0;
  const bool hasAdversary = d.boolean();
  if (hasAdversary != adversary_.has_value()) {
    d.fail("adversary model presence mismatch (config divergence)");
  }
  if (adversary_.has_value()) adversary_->restoreState(d);
  counters_.burstsStarted = d.u64();
  counters_.framesLost = d.u64();
  counters_.framesCorrupted = d.u64();
  counters_.stallsStarted = d.u64();
}

void FaultProcess::restoreBurstNextEvent(const sim::EventKey& key) {
  world_.sim().scheduleKeyed(key, faultDesc(ckpt::kFaultBurstNext),
                             [this] { burstArrive(); });
}

void FaultProcess::restoreBurstEndEvent(const sim::EventKey& key) {
  world_.sim().scheduleKeyed(key, faultDesc(ckpt::kFaultBurstEnd),
                             [this] { burstEnd(); });
}

void FaultProcess::restoreStallNextEvent(const sim::EventKey& key) {
  world_.sim().scheduleKeyed(key, faultDesc(ckpt::kFaultStallNext),
                             [this] { stallArrive(); });
}

void FaultProcess::restoreStallEndEvent(const sim::EventKey& key, int victim) {
  if (victim < 0 || static_cast<std::size_t>(victim) >= stalled_.size()) {
    throw std::runtime_error{"checkpoint: stall-end event names node " +
                             std::to_string(victim) + " of " +
                             std::to_string(stalled_.size())};
  }
  sim::EventDesc desc = faultDesc(ckpt::kFaultStallEnd);
  desc.i0 = victim;
  world_.sim().scheduleKeyed(key, desc,
                             [this, victim] { stallEnd(victim); });
}

void FaultProcess::restoreFlapEvent(const sim::EventKey& key, int node,
                                    bool up) {
  if (!adversary_.has_value()) {
    throw std::runtime_error{
        "checkpoint: flap event present but no adversary model is built"};
  }
  sim::EventDesc desc = faultDesc(ckpt::kFaultFlap);
  desc.i0 = node;
  desc.b0 = up ? 1 : 0;
  world_.sim().scheduleKeyed(key, desc,
                             [this, node, up] { flapToggle(node, up); });
}

}  // namespace glr::net
