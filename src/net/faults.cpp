#include "net/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "mac/channel.hpp"

namespace glr::net {

FaultProcess::FaultProcess(World& world, Params params, sim::Rng rng)
    : world_(world),
      params_(params),
      lossRng_(rng.fork(1)),
      burstRng_(rng.fork(2)),
      stallRng_(rng.fork(3)) {
  if (params.start < 0.0) {
    throw std::invalid_argument{"FaultProcess: negative start"};
  }
  if (params.burstRate < 0.0 || params.stallRate < 0.0) {
    throw std::invalid_argument{"FaultProcess: negative rate"};
  }
  if (params.burstRate > 0.0 && !(params.burstMean > 0.0)) {
    throw std::invalid_argument{"FaultProcess: burstMean must be > 0"};
  }
  if (params.stallRate > 0.0 && !(params.stallMean > 0.0)) {
    throw std::invalid_argument{"FaultProcess: stallMean must be > 0"};
  }
  if (params.lossProb < 0.0 || params.lossProb > 1.0 ||
      params.corruptProb < 0.0 || params.corruptProb > 1.0) {
    throw std::invalid_argument{"FaultProcess: probabilities must be in [0,1]"};
  }
  if (world.numNodes() == 0) {
    throw std::invalid_argument{"FaultProcess: empty world"};
  }
  stalled_.assign(world.numNodes(), 0);
}

void FaultProcess::start() {
  if (params_.burstRate > 0.0 || params_.corruptProb > 0.0) {
    world_.channel().setDeliveryFilter(
        [this](const mac::Frame& frame, int receiver) {
          return deliver(frame, receiver);
        });
  }
  if (params_.burstRate > 0.0) scheduleBurst();
  if (params_.stallRate > 0.0) scheduleStall();
}

bool FaultProcess::deliver(const mac::Frame& /*frame*/, int /*receiver*/) {
  if (burstsActive_ > 0 && params_.lossProb > 0.0 &&
      lossRng_.bernoulli(params_.lossProb)) {
    ++counters_.framesLost;
    return false;
  }
  if (params_.corruptProb > 0.0 && lossRng_.bernoulli(params_.corruptProb)) {
    ++counters_.framesCorrupted;
    return false;
  }
  return true;
}

void FaultProcess::scheduleBurst() {
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at = std::max(params_.start, sim.now()) +
                          burstRng_.exponential(1.0 / params_.burstRate);
  sim.scheduleAt(at, [this] {
    ++counters_.burstsStarted;
    ++burstsActive_;  // bursts can overlap; loss applies while any is open
    const double duration = burstRng_.exponential(params_.burstMean);
    world_.sim().schedule(duration, [this] { --burstsActive_; });
    scheduleBurst();
  });
}

void FaultProcess::scheduleStall() {
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at = std::max(params_.start, sim.now()) +
                          stallRng_.exponential(1.0 / params_.stallRate);
  sim.scheduleAt(at, [this] {
    // Draw victim and duration unconditionally (the draw sequence must not
    // depend on which nodes happen to be stalled); skip only the toggle.
    const auto victim =
        static_cast<int>(stallRng_.below(world_.numNodes()));
    const double duration = stallRng_.exponential(params_.stallMean);
    if (!stalled_[static_cast<std::size_t>(victim)]) {
      stalled_[static_cast<std::size_t>(victim)] = 1;
      ++counters_.stallsStarted;
      world_.setRadioUp(victim, false);
      world_.sim().schedule(duration, [this, victim] {
        stalled_[static_cast<std::size_t>(victim)] = 0;
        world_.setRadioUp(victim, true);
      });
    }
    scheduleStall();
  });
}

}  // namespace glr::net
