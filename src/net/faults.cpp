#include "net/faults.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "mac/channel.hpp"

namespace glr::net {

AdversaryModel::AdversaryModel(std::size_t numNodes, Params params,
                               sim::Rng rng)
    : params_(params), greyRng_(rng.fork(1)) {
  const auto checkFraction = [](double f, const char* name) {
    if (f < 0.0 || f > 1.0) {
      throw std::invalid_argument{std::string{"AdversaryModel: "} + name +
                                  " must be in [0,1]"};
    }
  };
  checkFraction(params.blackholeFraction, "blackholeFraction");
  checkFraction(params.greyholeFraction, "greyholeFraction");
  checkFraction(params.selfishFraction, "selfishFraction");
  checkFraction(params.flappingFraction, "flappingFraction");
  checkFraction(params.greyholeDropProb, "greyholeDropProb");
  if (params.flappingFraction > 0.0 &&
      (!(params.flapUpMean > 0.0) || !(params.flapDownMean > 0.0))) {
    throw std::invalid_argument{
        "AdversaryModel: flap phase means must be > 0"};
  }
  if (numNodes == 0) {
    throw std::invalid_argument{"AdversaryModel: empty world"};
  }

  const auto count = [numNodes](double f) {
    return static_cast<std::size_t>(
        std::llround(f * static_cast<double>(numNodes)));
  };
  const std::size_t nBlack = count(params.blackholeFraction);
  const std::size_t nGrey = count(params.greyholeFraction);
  const std::size_t nSelfish = count(params.selfishFraction);
  const std::size_t nFlap = count(params.flappingFraction);
  if (nBlack + nGrey + nSelfish + nFlap > numNodes) {
    throw std::invalid_argument{
        "AdversaryModel: behavior fractions sum past the population"};
  }

  // Seeded assignment: shuffle ids on a dedicated fork (independent of the
  // greyhole draw stream), then carve consecutive runs per behavior.
  behaviors_.assign(numNodes, Behavior::kHonest);
  std::vector<int> ids(numNodes);
  std::iota(ids.begin(), ids.end(), 0);
  sim::Rng assignRng = rng.fork(2);
  for (std::size_t i = numNodes - 1; i > 0; --i) {
    const std::size_t j = assignRng.below(i + 1);
    std::swap(ids[i], ids[j]);
  }
  std::size_t at = 0;
  const auto take = [&](std::size_t n, Behavior b) {
    for (std::size_t k = 0; k < n; ++k) {
      behaviors_[static_cast<std::size_t>(ids[at])] = b;
      if (b == Behavior::kFlapping) flappingNodes_.push_back(ids[at]);
      ++at;
    }
  };
  take(nBlack, Behavior::kBlackhole);
  take(nGrey, Behavior::kGreyhole);
  take(nSelfish, Behavior::kSelfish);
  take(nFlap, Behavior::kFlapping);
  // Ascending ids give the flap scheduler a stable, id-ordered draw
  // sequence regardless of the shuffle.
  std::sort(flappingNodes_.begin(), flappingNodes_.end());
}

AdversaryModel::RelayDecision AdversaryModel::onRelayData(int node) {
  switch (behaviorOf(node)) {
    case Behavior::kHonest:
    case Behavior::kFlapping:
      return RelayDecision::kAccept;
    case Behavior::kBlackhole:
      ++counters_.blackholeDrops;
      return RelayDecision::kDrop;
    case Behavior::kGreyhole:
      if (greyRng_.bernoulli(params_.greyholeDropProb)) {
        ++counters_.greyholeDrops;
        return RelayDecision::kDrop;
      }
      return RelayDecision::kAccept;
    case Behavior::kSelfish:
      ++counters_.selfishRefusals;
      return RelayDecision::kRefuse;
  }
  return RelayDecision::kAccept;
}

FaultProcess::FaultProcess(World& world, Params params, sim::Rng rng)
    : world_(world),
      params_(params),
      lossRng_(rng.fork(1)),
      burstRng_(rng.fork(2)),
      stallRng_(rng.fork(3)) {
  if (params.start < 0.0) {
    throw std::invalid_argument{"FaultProcess: negative start"};
  }
  if (params.burstRate < 0.0 || params.stallRate < 0.0) {
    throw std::invalid_argument{"FaultProcess: negative rate"};
  }
  if (params.burstRate > 0.0 && !(params.burstMean > 0.0)) {
    throw std::invalid_argument{"FaultProcess: burstMean must be > 0"};
  }
  if (params.stallRate > 0.0 && !(params.stallMean > 0.0)) {
    throw std::invalid_argument{"FaultProcess: stallMean must be > 0"};
  }
  if (params.lossProb < 0.0 || params.lossProb > 1.0 ||
      params.corruptProb < 0.0 || params.corruptProb > 1.0) {
    throw std::invalid_argument{"FaultProcess: probabilities must be in [0,1]"};
  }
  if (world.numNodes() == 0) {
    throw std::invalid_argument{"FaultProcess: empty world"};
  }
  stalled_.assign(world.numNodes(), 0);
  // The adversary streams (assignment, greyhole draws, flap phases) are
  // forked only when some behavior is enabled, so an all-honest run's draw
  // sequence is byte-identical to one with no adversary support at all.
  if (params.adversary.any()) {
    adversary_.emplace(world.numNodes(), params.adversary, rng.fork(4));
    flapRng_ = rng.fork(5);
  }
}

void FaultProcess::start() {
  if (params_.burstRate > 0.0 || params_.corruptProb > 0.0) {
    world_.channel().setDeliveryFilter(
        [this](const mac::Frame& frame, int receiver) {
          return deliver(frame, receiver);
        });
  }
  if (params_.burstRate > 0.0) scheduleBurst();
  if (params_.stallRate > 0.0) scheduleStall();
  if (adversary_.has_value()) {
    world_.setAdversary(&*adversary_);
    // Flapping responders start up (like every node) and end their first up
    // phase after start + exp(flapUpMean), in ascending node-id order.
    for (const int node : adversary_->flappingNodes()) {
      scheduleFlap(node, /*up=*/true);
    }
  }
}

bool FaultProcess::deliver(const mac::Frame& /*frame*/, int /*receiver*/) {
  if (burstsActive_ > 0 && params_.lossProb > 0.0 &&
      lossRng_.bernoulli(params_.lossProb)) {
    ++counters_.framesLost;
    return false;
  }
  if (params_.corruptProb > 0.0 && lossRng_.bernoulli(params_.corruptProb)) {
    ++counters_.framesCorrupted;
    return false;
  }
  return true;
}

void FaultProcess::scheduleBurst() {
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at = std::max(params_.start, sim.now()) +
                          burstRng_.exponential(1.0 / params_.burstRate);
  sim.scheduleAt(at, [this] {
    ++counters_.burstsStarted;
    ++burstsActive_;  // bursts can overlap; loss applies while any is open
    const double duration = burstRng_.exponential(params_.burstMean);
    world_.sim().schedule(duration, [this] { --burstsActive_; });
    scheduleBurst();
  });
}

void FaultProcess::scheduleStall() {
  sim::Simulator& sim = world_.sim();
  const sim::SimTime at = std::max(params_.start, sim.now()) +
                          stallRng_.exponential(1.0 / params_.stallRate);
  sim.scheduleAt(at, [this] {
    // Draw victim and duration unconditionally (the draw sequence must not
    // depend on which nodes happen to be stalled); skip only the toggle.
    const auto victim =
        static_cast<int>(stallRng_.below(world_.numNodes()));
    const double duration = stallRng_.exponential(params_.stallMean);
    if (!stalled_[static_cast<std::size_t>(victim)]) {
      stalled_[static_cast<std::size_t>(victim)] = 1;
      ++counters_.stallsStarted;
      world_.setRadioUp(victim, false);
      world_.sim().schedule(duration, [this, victim] {
        stalled_[static_cast<std::size_t>(victim)] = 0;
        world_.setRadioUp(victim, true);
      });
    }
    scheduleStall();
  });
}

void FaultProcess::scheduleFlap(int node, bool up) {
  // Each toggle event draws exactly one phase duration at fire time, so the
  // flap stream's draw sequence is fixed by the (deterministic) event
  // order. Flapping shares World::setRadioUp with churn/stalls; composition
  // is the same last-writer-wins caveat those layers already document.
  sim::Simulator& sim = world_.sim();
  const double mean =
      up ? params_.adversary.flapUpMean : params_.adversary.flapDownMean;
  const sim::SimTime at =
      std::max(params_.start, sim.now()) + flapRng_.exponential(mean);
  sim.scheduleAt(at, [this, node, up] {
    adversary_->noteFlapTransition();
    world_.setRadioUp(node, !up);
    scheduleFlap(node, !up);
  });
}

}  // namespace glr::net
