#pragma once
/// \file packet.hpp
/// Network-layer packet passed between routing agents through the MAC.
///
/// This is a simulator, not a codec: payloads are in-memory protocol structs
/// carried via a slab-recycled shared handle (see payload.hpp), while
/// `bytes` models the on-air size (the MAC adds its own header/preamble
/// time). Protocols must keep `bytes` honest — the contention results
/// depend on it. Copying a Packet shares the payload (refcount bump, no
/// allocation); payloads are immutable once handed to the MAC.

#include <cstddef>
#include <string>

#include "net/payload.hpp"

namespace glr::net {

/// MAC-level broadcast address.
inline constexpr int kBroadcast = -1;

struct Packet {
  /// Simulated payload size in bytes (excluding MAC/PHY overhead).
  std::size_t bytes = 0;
  /// Debug/stats tag, e.g. "hello", "glr-data", "sv".
  std::string kind;
  /// Protocol-defined content; receivers get<T>() the expected type.
  Payload payload;
};

}  // namespace glr::net
