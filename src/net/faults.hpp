#pragma once
/// \file faults.hpp
/// Seeded fault injection: link-loss bursts, frame corruption, stuck nodes,
/// and per-node misbehavior models (the adversary layer).
///
/// The benign mechanisms are orthogonal, each driven by its own fork of one
/// dedicated RNG stream so enabling a fault never perturbs any other
/// subsystem's draws (and runs stay bit-identical across sweep threads):
///
///  * **Link-loss bursts** — burst windows arrive as a Poisson process with
///    exponential durations; while at least one window is open, every frame
///    delivery independently fails with `lossProb`. Models interference
///    episodes that blanket the medium.
///  * **Frame corruption** — always-on per-delivery corruption with
///    `corruptProb` (a corrupted frame fails its checksum and is discarded
///    by the receiver, indistinguishable from loss at this abstraction).
///  * **Stuck-node stalls** — stall events arrive as a Poisson process; each
///    picks a uniform victim and forces its radio down (World::setRadioUp,
///    the same well-tested gate churn uses: queue flushed, unicasts fail,
///    receptions stop) for an exponential duration. Models firmware hangs
///    and crash-recovery cycles. Composes with ChurnProcess: both drive the
///    same idempotent gate, so overlapping toggles are safe, though a node
///    both churned-down and stalled comes back up when either process says
///    so.
///
/// Loss and corruption hook the channel's per-receiver delivery filter
/// (mac::Channel::setDeliveryFilter): the frame stays on air — it still
/// occupies the medium and interferes — only its delivery to a specific
/// receiver is suppressed, counted in ChannelStats::faultDrops.
///
/// The **adversary layer** (AdversaryModel) is different in kind: instead of
/// damaging the medium it makes a seeded fraction of nodes execute the
/// routing protocol unfaithfully. Behaviors:
///
///  * **Blackhole** — accepts relayed copies (the frame is received and the
///    protocol handler runs) then silently destroys them WITHOUT sending a
///    custody acknowledgement. The silence is the detectable signature: an
///    honest custodian's cache timeout fires, the copy returns to its Store,
///    and repeated timeouts toward the same hop feed GLR's suspicion scoring.
///  * **Greyhole** — like a blackhole but drops each relayed copy only with
///    probability `greyholeDropProb`, so it acks often enough to evade naive
///    detection.
///  * **Selfish** — refuses to relay at all, but politely: under GLR it
///    answers custody transfers with a refusal NACK (the sender keeps the
///    copy and backs off), under the replication baselines it simply never
///    stores relayed copies. Selfish nodes still originate and receive
///    their own traffic.
///  * **Flapping responder** — protocol-honest but duty-cycles its radio on
///    fast exponential up/down phases (through the same World::setRadioUp
///    gate churn uses), so it keeps appearing as a usable next hop and then
///    vanishing mid-custody.
///
/// Misbehavior is strictly a *relay* property: every adversarial node still
/// originates its own traffic and accepts final delivery of messages
/// addressed to it. Every adversarial action is counted
/// (AdversaryModel::Counters -> ScenarioResult) so no loss is ever silent at
/// the accounting level, and all behaviors default off: the draw sequence of
/// a run without adversaries is untouched and every pinned golden stays
/// bit-identical.

#include <cstdint>
#include <optional>
#include <vector>

#include "mac/frame.hpp"
#include "net/world.hpp"
#include "sim/rng.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::net {

/// Per-node misbehavior assignment and relay-time decisions. Owned by
/// FaultProcess; routing agents reach it through World::adversary() at the
/// single point where a relayed copy is accepted, so every protocol faces
/// the identical adversary.
class AdversaryModel {
 public:
  enum class Behavior : std::uint8_t {
    kHonest = 0,
    kBlackhole,
    kGreyhole,
    kSelfish,
    kFlapping,
  };

  /// What a node does with a copy it is asked to relay.
  enum class RelayDecision : std::uint8_t {
    kAccept,  // honest relay
    kDrop,    // silently destroy, no acknowledgement (blackhole/greyhole)
    kRefuse,  // decline politely (selfish: NACK under GLR, no-store otherwise)
  };

  struct Params {
    double blackholeFraction = 0.0;
    double greyholeFraction = 0.0;
    double greyholeDropProb = 0.5;  // per-relayed-copy drop probability
    double selfishFraction = 0.0;
    double flappingFraction = 0.0;
    double flapUpMean = 20.0;   // mean radio-up phase, seconds (exponential)
    double flapDownMean = 5.0;  // mean radio-down phase, seconds

    /// True when any behavior is enabled (drives whether the model is built
    /// and the assignment stream is ever forked — the zero-when-off gate).
    [[nodiscard]] bool any() const {
      return blackholeFraction > 0.0 || greyholeFraction > 0.0 ||
             selfishFraction > 0.0 || flappingFraction > 0.0;
    }
  };

  struct Counters {
    std::uint64_t blackholeDrops = 0;   // copies silently destroyed
    std::uint64_t greyholeDrops = 0;    // probabilistic silent drops
    std::uint64_t selfishRefusals = 0;  // relays declined by selfish nodes
    std::uint64_t flapTransitions = 0;  // flapping radio toggles
  };

  /// Validates params (throws std::invalid_argument: fractions/probability
  /// out of [0,1], fraction sum > 1, non-positive flap means with flapping
  /// on) and assigns behaviors: node ids are Fisher-Yates-shuffled on a
  /// dedicated fork of `rng` and the first round(fraction*n) of each kind
  /// take that behavior, so assignment is a pure function of (n, params,
  /// stream) and independent of the per-relay draw sequence.
  AdversaryModel(std::size_t numNodes, Params params, sim::Rng rng);

  [[nodiscard]] Behavior behaviorOf(int node) const {
    return behaviors_[static_cast<std::size_t>(node)];
  }

  /// Decision for a relayed copy arriving at `node` (destination != node;
  /// callers must not consult the model for final delivery or originated
  /// traffic). Greyhole nodes draw from the adversary's own stream; all
  /// other behaviors are deterministic, so a run's draw sequence depends
  /// only on the order of relay receptions (itself deterministic). Every
  /// non-accept outcome is counted here — callers drop/refuse without
  /// further bookkeeping.
  [[nodiscard]] RelayDecision onRelayData(int node);

  /// Bookkeeping hook for the flapping scheduler (lives in FaultProcess).
  void noteFlapTransition() { ++counters_.flapTransitions; }

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<int>& flappingNodes() const {
    return flappingNodes_;
  }

  /// Checkpoint support: greyhole draw stream and counters. Behavior
  /// assignment is a pure function of (numNodes, params, stream) and is
  /// reconstructed; restore verifies the flapping-node set matches.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

 private:
  Params params_;
  sim::Rng greyRng_;  // per-relayed-copy greyhole drop draws
  std::vector<Behavior> behaviors_;
  std::vector<int> flappingNodes_;  // ascending ids (flap scheduling order)
  Counters counters_;
};

class FaultProcess {
 public:
  struct Params {
    double start = 0.0;  // no fault before this time

    // Link-loss bursts (0 burstRate disables).
    double burstRate = 0.0;  // bursts per second (Poisson arrivals)
    double burstMean = 2.0;  // mean burst duration, seconds (exponential)
    double lossProb = 0.5;   // per-frame-per-receiver drop prob in a burst

    // Frame corruption (0 disables).
    double corruptProb = 0.0;  // per-frame-per-receiver corruption prob

    // Stuck-node stalls (0 stallRate disables).
    double stallRate = 0.0;  // stalls per second (Poisson arrivals)
    double stallMean = 5.0;  // mean stall duration, seconds (exponential)

    // Misbehaving-node models (all fractions 0 disables; see
    // AdversaryModel). Flapping phases start at `start` like every other
    // fault mechanism.
    AdversaryModel::Params adversary;
  };

  struct Counters {
    std::uint64_t burstsStarted = 0;
    std::uint64_t framesLost = 0;       // burst-loss delivery drops
    std::uint64_t framesCorrupted = 0;  // corruption delivery drops
    std::uint64_t stallsStarted = 0;
  };

  /// Validates params (throws std::invalid_argument on out-of-range
  /// values). Must outlive the run: scheduled fault events, the installed
  /// delivery filter and the World's adversary pointer close over this
  /// object.
  FaultProcess(World& world, Params params, sim::Rng rng);

  FaultProcess(const FaultProcess&) = delete;
  FaultProcess& operator=(const FaultProcess&) = delete;

  /// Installs the delivery filter (only when loss/corruption is active),
  /// publishes the adversary model on the World and schedules the first
  /// burst/stall arrivals and flapping phases.
  void start();

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] bool burstActive() const { return burstsActive_ > 0; }
  /// The adversary model, when any misbehavior fraction is set.
  [[nodiscard]] const AdversaryModel* adversary() const {
    return adversary_.has_value() ? &*adversary_ : nullptr;
  }

  /// Checkpoint support: all four fault RNG streams, the open-burst count,
  /// the stall bitmap, the adversary model (when built) and the counters.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

  /// Restore-path event rebuilders (see checkpoint/event_kinds.hpp):
  /// each re-creates one pending fault event under its original key.
  void restoreBurstNextEvent(const sim::EventKey& key);
  void restoreBurstEndEvent(const sim::EventKey& key);
  void restoreStallNextEvent(const sim::EventKey& key);
  void restoreStallEndEvent(const sim::EventKey& key, int victim);
  void restoreFlapEvent(const sim::EventKey& key, int node, bool up);

 private:
  /// Channel delivery filter: true = deliver. Draws in a fixed order
  /// (burst loss, then corruption) from the loss stream; the channel's
  /// delivery loop is deterministic, so the draw sequence is too.
  bool deliver(const mac::Frame& frame, int receiver);
  void scheduleBurst();
  void scheduleStall();
  /// Schedules the next flap toggle for `node`; `up` is the state the radio
  /// is about to LEAVE (an up phase ends with a down toggle).
  void scheduleFlap(int node, bool up);
  /// Event bodies, shared by the live schedulers and the restore path.
  void burstArrive();
  void burstEnd() { --burstsActive_; }
  void stallArrive();
  void stallEnd(int victim);
  void flapToggle(int node, bool up);

  World& world_;
  Params params_;
  sim::Rng lossRng_;   // per-delivery loss/corruption draws
  sim::Rng burstRng_;  // burst arrival/duration draws
  sim::Rng stallRng_;  // stall arrival/victim/duration draws
  sim::Rng flapRng_;   // flapping phase durations (fork 5; forked lazily)
  int burstsActive_ = 0;
  std::vector<char> stalled_;  // our own stalls (avoid double-stall races)
  std::optional<AdversaryModel> adversary_;  // built only when any() is set
  Counters counters_;
};

}  // namespace glr::net
