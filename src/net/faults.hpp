#pragma once
/// \file faults.hpp
/// Seeded fault injection: link-loss bursts, frame corruption, stuck nodes.
///
/// Three orthogonal mechanisms, each driven by its own fork of one
/// dedicated RNG stream so enabling a fault never perturbs any other
/// subsystem's draws (and runs stay bit-identical across sweep threads):
///
///  * **Link-loss bursts** — burst windows arrive as a Poisson process with
///    exponential durations; while at least one window is open, every frame
///    delivery independently fails with `lossProb`. Models interference
///    episodes that blanket the medium.
///  * **Frame corruption** — always-on per-delivery corruption with
///    `corruptProb` (a corrupted frame fails its checksum and is discarded
///    by the receiver, indistinguishable from loss at this abstraction).
///  * **Stuck-node stalls** — stall events arrive as a Poisson process; each
///    picks a uniform victim and forces its radio down (World::setRadioUp,
///    the same well-tested gate churn uses: queue flushed, unicasts fail,
///    receptions stop) for an exponential duration. Models firmware hangs
///    and crash-recovery cycles. Composes with ChurnProcess: both drive the
///    same idempotent gate, so overlapping toggles are safe, though a node
///    both churned-down and stalled comes back up when either process says
///    so.
///
/// Loss and corruption hook the channel's per-receiver delivery filter
/// (mac::Channel::setDeliveryFilter): the frame stays on air — it still
/// occupies the medium and interferes — only its delivery to a specific
/// receiver is suppressed, counted in ChannelStats::faultDrops.

#include <cstdint>
#include <vector>

#include "mac/frame.hpp"
#include "net/world.hpp"
#include "sim/rng.hpp"

namespace glr::net {

class FaultProcess {
 public:
  struct Params {
    double start = 0.0;  // no fault before this time

    // Link-loss bursts (0 burstRate disables).
    double burstRate = 0.0;  // bursts per second (Poisson arrivals)
    double burstMean = 2.0;  // mean burst duration, seconds (exponential)
    double lossProb = 0.5;   // per-frame-per-receiver drop prob in a burst

    // Frame corruption (0 disables).
    double corruptProb = 0.0;  // per-frame-per-receiver corruption prob

    // Stuck-node stalls (0 stallRate disables).
    double stallRate = 0.0;  // stalls per second (Poisson arrivals)
    double stallMean = 5.0;  // mean stall duration, seconds (exponential)
  };

  struct Counters {
    std::uint64_t burstsStarted = 0;
    std::uint64_t framesLost = 0;       // burst-loss delivery drops
    std::uint64_t framesCorrupted = 0;  // corruption delivery drops
    std::uint64_t stallsStarted = 0;
  };

  /// Validates params (throws std::invalid_argument on out-of-range
  /// values). Must outlive the run: scheduled fault events and the
  /// installed delivery filter close over this object.
  FaultProcess(World& world, Params params, sim::Rng rng);

  FaultProcess(const FaultProcess&) = delete;
  FaultProcess& operator=(const FaultProcess&) = delete;

  /// Installs the delivery filter (only when loss/corruption is active) and
  /// schedules the first burst/stall arrivals.
  void start();

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] bool burstActive() const { return burstsActive_ > 0; }

 private:
  /// Channel delivery filter: true = deliver. Draws in a fixed order
  /// (burst loss, then corruption) from the loss stream; the channel's
  /// delivery loop is deterministic, so the draw sequence is too.
  bool deliver(const mac::Frame& frame, int receiver);
  void scheduleBurst();
  void scheduleStall();

  World& world_;
  Params params_;
  sim::Rng lossRng_;   // per-delivery loss/corruption draws
  sim::Rng burstRng_;  // burst arrival/duration draws
  sim::Rng stallRng_;  // stall arrival/victim/duration draws
  int burstsActive_ = 0;
  std::vector<char> stalled_;  // our own stalls (avoid double-stall races)
  Counters counters_;
};

}  // namespace glr::net
