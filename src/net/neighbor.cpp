#include "net/neighbor.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "checkpoint/codec.hpp"
#include "checkpoint/event_kinds.hpp"
#include "checkpoint/message_codec.hpp"

namespace glr::net {

namespace {

sim::EventDesc helloDesc(int self) {
  sim::EventDesc d;
  d.kind = ckpt::kHello;
  d.i0 = self;
  return d;
}

}  // namespace

NeighborService::NeighborService(sim::Simulator& sim, mac::Mac& mac, int self,
                                 std::function<geom::Point2()> myPosition,
                                 Params params, sim::Rng rng)
    : sim_(sim),
      mac_(mac),
      self_(self),
      myPosition_(std::move(myPosition)),
      params_(params),
      rng_(rng) {
  if (!myPosition_) {
    throw std::invalid_argument{"NeighborService: myPosition required"};
  }
  if (params_.helloInterval <= 0.0 || params_.expiry <= 0.0) {
    throw std::invalid_argument{"NeighborService: bad interval/expiry"};
  }
  // Size the 1-hop table for the expected neighborhood up front so the
  // per-hello inserts on the hot path never rehash.
  table_.reserve(params_.expectedNeighbors);
}

bool NeighborService::fresh(const NeighborRecord& r) const {
  return sim_.now() - r.heard <= params_.expiry;
}

void NeighborService::start() {
  // Desynchronize: first beacon at a uniform offset inside one interval.
  sim_.schedule(rng_.uniform(0.0, params_.helloInterval), helloDesc(self_),
                [this] { sendHello(); });
}

void NeighborService::sendHello() {
  // The payload block comes from the per-thread hello arena: `neighbors` is
  // the recycled block's own vector, so clear() + refill is the reused
  // scratch buffer — its capacity persists across beacons and the refill
  // never allocates once the neighborhood size has been seen.
  Payload payload = Payload::create<HelloPayload>();
  HelloPayload& hello = payload.mutableValue<HelloPayload>();
  hello.id = self_;
  hello.pos = myPosition_();
  hello.sentAt = sim_.now();
  hello.neighbors.clear();
  std::size_t bytes = params_.baseBytes;
  const double evictHorizon = params_.evictAfterFactor > 0.0
                                  ? params_.evictAfterFactor * params_.expiry
                                  : 0.0;
  for (auto it = table_.begin(); it != table_.end();) {
    NeighborRecord& rec = it->second;
    if (fresh(rec)) {
      if (params_.includeNeighborList) {
        hello.neighbors.push_back({it->first, rec.pos, rec.heard});
        bytes += params_.perNeighborBytes;
      }
      ++it;
      continue;
    }
    // Stale record. Its `reported` list is dead weight: no reader looks at
    // a stale record's entries, and a future hello from this id overwrites
    // them — so freeing the heap now is observation-equivalent and keeps
    // long runs from accumulating one 2-hop snapshot per node ever heard.
    if (!rec.reported.empty()) {
      rec.reported.clear();
      rec.reported.shrink_to_fit();
    }
    if (evictHorizon > 0.0 &&
        sim_.now() - rec.heard > params_.expiry + evictHorizon) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  Packet p;
  p.bytes = bytes;
  p.kind = kHelloKind;
  p.payload = std::move(payload);
  if (!mac_.send(std::move(p), kBroadcast)) ++helloSendFailures_;
  ++hellosSent_;

  // Jittered periodic re-beacon (+/-10%) to avoid phase locking.
  const double next =
      params_.helloInterval * rng_.uniform(0.9, 1.1);
  sim_.schedule(next, helloDesc(self_), [this] { sendHello(); });
}

void NeighborService::saveState(ckpt::Encoder& e) const {
  const auto rngState = rng_.state();
  for (const std::uint64_t word : rngState) e.u64(word);
  ckpt::saveUnorderedMap(
      e, table_,
      [](ckpt::Encoder& enc, const int id, const NeighborRecord& rec) {
        enc.i32(id);
        ckpt::savePoint(enc, rec.pos);
        enc.f64(rec.heard);
        enc.size(rec.reported.size());
        for (const HelloPayload::Entry& entry : rec.reported) {
          enc.i32(entry.id);
          ckpt::savePoint(enc, entry.pos);
          enc.f64(entry.heardAt);
        }
      });
  e.u64(hellosSent_);
  e.u64(hellosReceived_);
  e.u64(helloSendFailures_);
}

void NeighborService::restoreState(ckpt::Decoder& d) {
  std::array<std::uint64_t, 4> rngState{};
  for (std::uint64_t& word : rngState) word = d.u64();
  rng_.setState(rngState);
  ckpt::loadUnorderedMap(d, table_, [](ckpt::Decoder& dec) {
    const int id = dec.i32();
    NeighborRecord rec;
    rec.pos = ckpt::loadPoint(dec);
    rec.heard = dec.f64();
    const std::size_t n = dec.checkedSize(dec.u64(), 20);
    rec.reported.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      HelloPayload::Entry entry;
      entry.id = dec.i32();
      entry.pos = ckpt::loadPoint(dec);
      entry.heardAt = dec.f64();
      rec.reported.push_back(entry);
    }
    return std::pair<int, NeighborRecord>{id, std::move(rec)};
  });
  hellosSent_ = d.u64();
  hellosReceived_ = d.u64();
  helloSendFailures_ = d.u64();
}

void NeighborService::restoreHelloEvent(const sim::EventKey& key) {
  sim_.scheduleKeyed(key, helloDesc(self_), [this] { sendHello(); });
}

bool NeighborService::handlePacket(const Packet& packet, int /*fromMac*/) {
  if (packet.kind != kHelloKind) return false;
  const auto* hello = packet.payload.get<HelloPayload>();
  if (hello == nullptr) return false;
  ++hellosReceived_;

  NeighborRecord& rec = table_[hello->id];
  const bool wasFresh = fresh(rec);
  rec.pos = hello->pos;
  rec.heard = sim_.now();
  rec.reported = hello->neighbors;

  if (onLocationSample_) {
    onLocationSample_(hello->id, hello->pos, hello->sentAt);
    for (const auto& e : hello->neighbors) {
      if (e.id != self_) onLocationSample_(e.id, e.pos, e.heardAt);
    }
  }
  if (!wasFresh && onContact_) onContact_(hello->id);
  return true;
}

std::vector<int> NeighborService::currentNeighbors() const {
  std::vector<int> out;
  out.reserve(table_.size());
  for (const auto& [id, rec] : table_) {
    if (fresh(rec)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool NeighborService::isNeighbor(int id) const {
  const auto it = table_.find(id);
  return it != table_.end() && fresh(it->second);
}

std::optional<geom::Point2> NeighborService::neighborPosition(int id) const {
  const auto it = table_.find(id);
  if (it == table_.end() || !fresh(it->second)) return std::nullopt;
  return it->second.pos;
}

std::vector<spanner::KnownNode> NeighborService::knowledge() const {
  std::vector<spanner::KnownNode> out;
  std::unordered_map<int, std::pair<std::size_t, sim::SimTime>> best;
  // Called once per route check per node: size for one-hop entries plus a
  // typical two-hop fan-out up front so the hot loop never rehashes.
  out.reserve(table_.size() * 4);
  best.reserve(table_.size() * 4);

  for (const auto& [id, rec] : table_) {
    if (!fresh(rec)) continue;
    best[id] = {out.size(), rec.heard};
    out.push_back({id, rec.pos, /*oneHop=*/true});
  }
  for (const auto& [id, rec] : table_) {
    if (!fresh(rec)) continue;
    for (const auto& e : rec.reported) {
      if (e.id == self_) continue;
      const auto it = best.find(e.id);
      if (it == best.end()) {
        best[e.id] = {out.size(), e.heardAt};
        out.push_back({e.id, e.pos, /*oneHop=*/false});
      } else if (!out[it->second.first].oneHop &&
                 e.heardAt > it->second.second) {
        out[it->second.first].pos = e.pos;  // fresher 2-hop observation
        it->second.second = e.heardAt;
      }
    }
  }
  return out;
}

}  // namespace glr::net
