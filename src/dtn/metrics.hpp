#pragma once
/// \file metrics.hpp
/// Scenario-wide delivery metrics shared by all agents of one run.
///
/// Tracks creation and first-delivery times per message id (copies/branches
/// collapse onto the id), hop counts of the delivering copy, and named
/// event counters (perturbations, custody acks, ...). The experiment layer
/// reads aggregates to produce the paper's delivery-ratio / latency / hops /
/// storage rows.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "dtn/message.hpp"
#include "sim/simulator.hpp"

namespace glr::dtn {

class MetricsCollector {
 public:
  void onCreated(const MessageId& id, sim::SimTime t) {
    created_.try_emplace(id, t);
  }

  /// Records the first delivery of `id`; later copies count as duplicates.
  void onDelivered(const MessageId& id, sim::SimTime t, int hops) {
    const auto it = created_.find(id);
    if (it == created_.end()) return;  // unknown message: ignore defensively
    const auto [dit, inserted] = delivered_.try_emplace(id, Delivery{t, hops});
    if (!inserted) {
      ++duplicateDeliveries_;
      return;
    }
    latencySum_ += t - it->second;
    hopsSum_ += hops;
  }

  void count(const std::string& key, std::uint64_t delta = 1) {
    counters_[key] += delta;
  }

  [[nodiscard]] std::size_t createdCount() const { return created_.size(); }
  [[nodiscard]] std::size_t deliveredCount() const {
    return delivered_.size();
  }
  [[nodiscard]] double deliveryRatio() const {
    return created_.empty() ? 0.0
                            : static_cast<double>(delivered_.size()) /
                                  static_cast<double>(created_.size());
  }
  /// Mean creation-to-first-delivery latency over delivered messages.
  [[nodiscard]] double avgLatency() const {
    return delivered_.empty()
               ? 0.0
               : latencySum_ / static_cast<double>(delivered_.size());
  }
  /// Mean hop count of the first-delivered copy.
  [[nodiscard]] double avgHops() const {
    return delivered_.empty()
               ? 0.0
               : hopsSum_ / static_cast<double>(delivered_.size());
  }
  [[nodiscard]] std::uint64_t duplicateDeliveries() const {
    return duplicateDeliveries_;
  }
  [[nodiscard]] std::uint64_t counter(const std::string& key) const {
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

 private:
  struct Delivery {
    sim::SimTime at = 0;
    int hops = 0;
  };

  std::unordered_map<MessageId, sim::SimTime> created_;
  std::unordered_map<MessageId, Delivery> delivered_;
  std::unordered_map<std::string, std::uint64_t> counters_;
  double latencySum_ = 0.0;
  double hopsSum_ = 0.0;
  std::uint64_t duplicateDeliveries_ = 0;
};

}  // namespace glr::dtn
