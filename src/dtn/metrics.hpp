#pragma once
/// \file metrics.hpp
/// Scenario-wide delivery metrics shared by all agents of one run.
///
/// Memory-bounded by construction: message ids are (origin, dense per-origin
/// sequence), so creation and first-delivery state live in per-origin
/// *bitmaps* (one bit per message) instead of hash maps, and per-message
/// latencies feed online sketches (stats::QuantileSketch + stats::Moments)
/// instead of stored vectors — a 100k-node, multi-million-message run costs
/// ~2 bits per message plus O(sketch compression), flat for the whole run.
/// The experiment layer reads aggregates to produce the paper's
/// delivery-ratio / latency / hops / storage rows plus latency quantiles.
///
/// Determinism: every statistic is a pure function of the (onCreated,
/// onDelivered) call sequence, which the simulator kernel fully orders — so
/// results are bit-identical across sweep thread counts (PR-3 contract).
/// The scalar latency/hops sums accumulate in exactly the same order and
/// from exactly the same operands as the pre-sketch implementation
/// (Message::created travels verbatim with the message), keeping every
/// pinned golden double bit-identical.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dtn/message.hpp"
#include "sim/simulator.hpp"
#include "stats/sketch.hpp"
#include "trace/recorder.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::dtn {

class MetricsCollector {
 public:
  /// Optional flight recorder: when set, creations/deliveries/duplicates
  /// are traced (EventType kCreated/kDelivered/kDuplicate). Null = off.
  void setTrace(trace::Recorder* trace) { trace_ = trace; }

  void onCreated(const Message& m) {
    if (!testAndSet(createdBits_, m.id)) ++createdCount_;
    if (trace_ != nullptr) {
      trace_->record(trace::EventType::kCreated, m.id.src, m.dstNode,
                     m.id.src, m.id.seq);
    }
  }

  /// Records the first delivery of `m` at time `t` with the delivering
  /// copy's hop count; later copies count as duplicates.
  void onDelivered(const Message& m, sim::SimTime t, int hops) {
    if (!test(createdBits_, m.id)) return;  // unknown message: ignore
    if (testAndSet(deliveredBits_, m.id)) {
      ++duplicateDeliveries_;
      if (trace_ != nullptr) {
        trace_->record(trace::EventType::kDuplicate, m.dstNode, m.id.src,
                       m.id.src, m.id.seq, clampHops(hops),
                       static_cast<std::uint8_t>(m.flag));
      }
      return;
    }
    ++deliveredCount_;
    const double latency = t - m.created;
    latencySum_ += latency;
    hopsSum_ += hops;
    latencySketch_.add(latency);
    latencyMoments_.add(latency);
    if (trace_ != nullptr) {
      trace_->record(trace::EventType::kDelivered, m.dstNode, m.id.src,
                     m.id.src, m.id.seq, clampHops(hops),
                     static_cast<std::uint8_t>(m.flag));
    }
  }

  void count(const std::string& key, std::uint64_t delta = 1) {
    counters_[key] += delta;
  }

  [[nodiscard]] std::size_t createdCount() const { return createdCount_; }
  [[nodiscard]] std::size_t deliveredCount() const { return deliveredCount_; }
  [[nodiscard]] double deliveryRatio() const {
    return createdCount_ == 0 ? 0.0
                              : static_cast<double>(deliveredCount_) /
                                    static_cast<double>(createdCount_);
  }
  /// Mean creation-to-first-delivery latency over delivered messages.
  [[nodiscard]] double avgLatency() const {
    return deliveredCount_ == 0
               ? 0.0
               : latencySum_ / static_cast<double>(deliveredCount_);
  }
  /// Mean hop count of the first-delivered copy.
  [[nodiscard]] double avgHops() const {
    return deliveredCount_ == 0
               ? 0.0
               : hopsSum_ / static_cast<double>(deliveredCount_);
  }
  [[nodiscard]] std::uint64_t duplicateDeliveries() const {
    return duplicateDeliveries_;
  }
  [[nodiscard]] std::uint64_t counter(const std::string& key) const {
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Online first-delivery latency distribution (quantiles, moments).
  [[nodiscard]] const stats::QuantileSketch& latencySketch() const {
    return latencySketch_;
  }
  [[nodiscard]] const stats::Moments& latencyMoments() const {
    return latencyMoments_;
  }

  /// Checkpoint support: bitmaps, counters (order-preserved), scalar sums
  /// and both latency sketches round-trip bit-exactly. The trace pointer is
  /// wiring, not state, and is left untouched.
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

 private:
  // One bitmap per origin node, indexed by the dense per-origin sequence.
  using Bitmap = std::vector<std::uint64_t>;

  static std::uint16_t clampHops(int hops) {
    return hops < 0 ? 0
                    : static_cast<std::uint16_t>(
                          hops > 0xFFFF ? 0xFFFF : hops);
  }

  [[nodiscard]] static bool test(const std::vector<Bitmap>& bits,
                                 const MessageId& id) {
    if (id.src < 0 || id.seq < 0) return false;
    const auto src = static_cast<std::size_t>(id.src);
    if (src >= bits.size()) return false;
    const auto word = static_cast<std::size_t>(id.seq) >> 6;
    if (word >= bits[src].size()) return false;
    return (bits[src][word] >> (id.seq & 63)) & 1u;
  }

  /// Sets the bit, growing the bitmap as needed; returns the prior value.
  [[nodiscard]] static bool testAndSet(std::vector<Bitmap>& bits,
                                       const MessageId& id) {
    if (id.src < 0 || id.seq < 0) return true;  // malformed: swallow
    const auto src = static_cast<std::size_t>(id.src);
    if (src >= bits.size()) bits.resize(src + 1);
    Bitmap& b = bits[src];
    const auto word = static_cast<std::size_t>(id.seq) >> 6;
    if (word >= b.size()) b.resize(word + 1, 0);
    const std::uint64_t maskBit = std::uint64_t{1} << (id.seq & 63);
    const bool was = (b[word] & maskBit) != 0;
    b[word] |= maskBit;
    return was;
  }

  std::vector<Bitmap> createdBits_;
  std::vector<Bitmap> deliveredBits_;
  std::unordered_map<std::string, std::uint64_t> counters_;
  stats::QuantileSketch latencySketch_;
  stats::Moments latencyMoments_;
  trace::Recorder* trace_ = nullptr;  // owned by the experiment layer
  std::uint64_t createdCount_ = 0;
  std::uint64_t deliveredCount_ = 0;
  double latencySum_ = 0.0;
  double hopsSum_ = 0.0;
  std::uint64_t duplicateDeliveries_ = 0;
};

}  // namespace glr::dtn
