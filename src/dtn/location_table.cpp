#include "dtn/location_table.hpp"

#include "checkpoint/codec.hpp"
#include "checkpoint/message_codec.hpp"

namespace glr::dtn {

void LocationTable::saveState(ckpt::Encoder& e) const {
  ckpt::saveUnorderedMap(e, table_, [](ckpt::Encoder& enc, const int id,
                                       const Entry& entry) {
    enc.i32(id);
    ckpt::savePoint(enc, entry.pos);
    enc.f64(entry.at);
  });
}

void LocationTable::restoreState(ckpt::Decoder& d) {
  ckpt::loadUnorderedMap(d, table_, [](ckpt::Decoder& dec) {
    const int id = dec.i32();
    Entry entry;
    entry.pos = ckpt::loadPoint(dec);
    entry.at = dec.f64();
    return std::pair<int, Entry>{id, entry};
  });
}

}  // namespace glr::dtn
