#include "dtn/metrics.hpp"

#include "checkpoint/codec.hpp"

namespace glr::dtn {

namespace {

void saveBitmaps(ckpt::Encoder& e,
                 const std::vector<std::vector<std::uint64_t>>& bits) {
  e.size(bits.size());
  for (const std::vector<std::uint64_t>& b : bits) {
    e.size(b.size());
    for (const std::uint64_t word : b) e.u64(word);
  }
}

void loadBitmaps(ckpt::Decoder& d,
                 std::vector<std::vector<std::uint64_t>>& bits) {
  const std::size_t nOrigins = d.checkedSize(d.u64(), 8);
  bits.clear();
  bits.resize(nOrigins);
  for (std::size_t i = 0; i < nOrigins; ++i) {
    const std::size_t nWords = d.checkedSize(d.u64(), 8);
    bits[i].reserve(nWords);
    for (std::size_t w = 0; w < nWords; ++w) bits[i].push_back(d.u64());
  }
}

}  // namespace

void MetricsCollector::saveState(ckpt::Encoder& e) const {
  saveBitmaps(e, createdBits_);
  saveBitmaps(e, deliveredBits_);
  ckpt::saveUnorderedMap(e, counters_,
                         [](ckpt::Encoder& enc, const std::string& key,
                            const std::uint64_t value) {
                           enc.str(key);
                           enc.u64(value);
                         });
  latencySketch_.saveState(e);
  latencyMoments_.saveState(e);
  e.u64(createdCount_);
  e.u64(deliveredCount_);
  e.f64(latencySum_);
  e.f64(hopsSum_);
  e.u64(duplicateDeliveries_);
}

void MetricsCollector::restoreState(ckpt::Decoder& d) {
  loadBitmaps(d, createdBits_);
  loadBitmaps(d, deliveredBits_);
  ckpt::loadUnorderedMap(d, counters_, [](ckpt::Decoder& dec) {
    std::string key = dec.str();
    const std::uint64_t value = dec.u64();
    return std::pair<std::string, std::uint64_t>{std::move(key), value};
  });
  latencySketch_.restoreState(d);
  latencyMoments_.restoreState(d);
  createdCount_ = d.u64();
  deliveredCount_ = d.u64();
  latencySum_ = d.f64();
  hopsSum_ = d.f64();
  duplicateDeliveries_ = d.u64();
}

}  // namespace glr::dtn
