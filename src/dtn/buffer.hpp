#pragma once
/// \file buffer.hpp
/// Message storage with the paper's two areas and custody semantics.
///
/// "Two storage areas are maintained ...: the Store is the place where
/// messages are waiting to be sent whereas messages that are just sent are
/// saved in the Cache" (Sec. 2.3.2). A copy moves Store -> Cache on
/// transmission, is deleted from the Cache on a custody acknowledgement, and
/// moves back to the Store when the cache residency times out (lost message
/// or lost ack). Under storage pressure "message in the Cache is dropped
/// first" (Sec. 3.6); within an area, FIFO.
///
/// The same class backs the epidemic baseline (store only, FIFO drop).
/// Occupancy peaks are tracked on every mutation for the storage tables.

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dtn/message.hpp"

namespace glr::trace {
class Recorder;  // trace/recorder.hpp
enum class EventType : std::uint8_t;
}

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::dtn {

inline constexpr std::size_t kUnlimitedStorage = SIZE_MAX;

class MessageBuffer {
 public:
  /// `expectedCopies` pre-sizes the key/branch hash indexes (0 = no hint).
  /// Scenario drivers derive it from the population/workload so steady-state
  /// inserts never rehash; it is purely a bucket-count hint — list order
  /// drives every observable iteration, so results are unaffected. The
  /// reserve is applied lazily on the first insert, so idle nodes that
  /// never buffer a message pay nothing for the hint.
  explicit MessageBuffer(std::size_t capacity = kUnlimitedStorage,
                         std::size_t expectedCopies = 0);

  /// Optional flight recorder: evictions (EventType kDrop) and TTL expiries
  /// (kExpiry) are traced with `selfNode` as the acting node. Null = off —
  /// the counted-drop paths then cost exactly one extra branch.
  void setTrace(trace::Recorder* trace, int selfNode) {
    trace_ = trace;
    selfNode_ = selfNode;
  }

  /// Adds a copy to the Store (FIFO tail). Returns false (and changes
  /// nothing) if the same copy is already present in Store or Cache.
  /// Under capacity pressure evicts Cache-first / FIFO until it fits;
  /// if the buffer is full and nothing is evictable the message is rejected.
  bool addToStore(Message m);

  /// Moves a stored copy to the Cache, recording next hop and send time.
  /// Returns false if the copy is not in the Store.
  bool moveToCache(const CopyKey& key, int nextHop, sim::SimTime now);

  /// Deletes a copy from the Cache (custody acknowledged). Returns the
  /// removed message if present.
  std::optional<Message> removeFromCache(const CopyKey& key);

  /// Moves a cached copy back to the Store tail (ack lost / timed out).
  /// Returns false if the copy is no longer cached.
  bool returnToStore(const CopyKey& key);

  /// Removes a copy wherever it is (e.g. destination reached by another
  /// branch). Returns true if something was removed.
  bool erase(const CopyKey& key);

  /// Removes every branch of message `id` from both areas; returns the
  /// number of copies removed.
  std::size_t eraseAllBranches(const MessageId& id);

  [[nodiscard]] bool inStore(const CopyKey& key) const;
  [[nodiscard]] bool inCache(const CopyKey& key) const;
  [[nodiscard]] bool contains(const CopyKey& key) const {
    return inStore(key) || inCache(key);
  }
  /// True if any copy of this message id (any branch) is held.
  [[nodiscard]] bool containsAnyBranch(const MessageId& id) const;

  /// Mutable access to a stored copy (header updates, face-mode state).
  /// The identity fields (`id`, `flag`) must not be changed through this
  /// pointer — the O(1) key index assumes they are immutable while stored.
  [[nodiscard]] Message* findInStore(const CopyKey& key);

  /// Applies `fn` to every stored message (e.g. clearing retry backoff when
  /// a new contact appears).
  void forEachInStore(const std::function<void(Message&)>& fn);

  /// Stable snapshot of Store keys, FIFO order (safe to mutate while
  /// iterating the snapshot).
  [[nodiscard]] std::vector<CopyKey> storeKeys() const;

  /// Cached copies sent before `before` (custody reschedule candidates).
  [[nodiscard]] std::vector<CopyKey> cachedSentBefore(sim::SimTime before) const;

  /// When the cached copy was sent, if it is currently cached. Custody
  /// timeout handlers compare this against their own send time so a stale
  /// timer cannot disturb a newer custody round of the same copy.
  [[nodiscard]] std::optional<sim::SimTime> cacheEntrySentAt(
      const CopyKey& key) const;

  /// The next hop a cached copy was sent to, if it is currently cached.
  /// Feeds GLR's suspicion scoring: a custody timeout reads the hop before
  /// reclaiming the copy.
  [[nodiscard]] std::optional<int> cacheEntryNextHop(const CopyKey& key) const;

  /// Drops every copy (both areas) whose `expiresAt <= now`, counting each
  /// into expiredCount() — TTL expiry is a counted drop, never a silent
  /// erasure. Returns how many copies expired. A no-op for immortal
  /// messages (the default far-future expiresAt), so callers may sweep
  /// unconditionally without perturbing TTL-less runs.
  std::size_t expireDue(sim::SimTime now);

  [[nodiscard]] std::uint64_t expiredCount() const { return expired_; }

  [[nodiscard]] std::size_t storeSize() const { return store_.size(); }
  [[nodiscard]] std::size_t cacheSize() const { return cache_.size(); }
  [[nodiscard]] std::size_t size() const {
    return store_.size() + cache_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t peakSize() const { return peak_; }
  [[nodiscard]] std::uint64_t dropCount() const { return drops_; }

  /// Checkpoint support. The FIFO lists are the source of truth (their order
  /// drives eviction and iteration determinism) and are serialized verbatim;
  /// the hash indexes are pure key-lookup caches and are rebuilt on restore.
  /// restoreState verifies the snapshot's capacity against the live one and
  /// fails loudly on mismatch (a config-divergence tripwire).
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

 private:
  struct CacheEntry {
    Message message;
    int nextHop = -1;
    sim::SimTime sentAt = 0;
  };

  void notePeak();
  /// Applies the deferred `expectedCopies` index reserve (first insert).
  void applyReserveHint();
  /// Evicts one message per the paper's policy; false if nothing evictable.
  bool evictOne();
  /// Emits a kDrop/kExpiry trace record for `m` (caller checks trace_).
  void traceDrop(trace::EventType type, const Message& m);

  /// Index maintenance. The lists stay the source of truth (their FIFO order
  /// drives eviction and iteration determinism); the maps only make key
  /// lookups O(1). std::list iterators are stable, so indexed iterators
  /// survive unrelated insertions/erasures.
  void indexStoreInsert(std::list<Message>::iterator it);
  void indexStoreErase(std::list<Message>::iterator it);
  void indexCacheInsert(std::list<CacheEntry>::iterator it);
  void indexCacheErase(std::list<CacheEntry>::iterator it);

  std::size_t capacity_;
  std::list<Message> store_;       // FIFO: front = oldest
  std::list<CacheEntry> cache_;    // FIFO: front = oldest
  std::unordered_map<CopyKey, std::list<Message>::iterator> storeIndex_;
  std::unordered_map<CopyKey, std::list<CacheEntry>::iterator> cacheIndex_;
  /// Copies held per message id across both areas (any-branch queries).
  std::unordered_map<MessageId, std::uint32_t> branchCount_;
  std::size_t peak_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t expired_ = 0;
  trace::Recorder* trace_ = nullptr;  // owned by the experiment layer
  int selfNode_ = -1;
  /// Deferred index reserve size; consumed (zeroed) on the first insert.
  std::size_t reserveHint_ = 0;
};

}  // namespace glr::dtn
