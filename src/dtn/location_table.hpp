#pragma once
/// \file location_table.hpp
/// Per-node table of other nodes' last known locations with timestamps
/// (paper Sec. 2.3.1): fed by hello exchanges and by destination-location
/// fields in message headers; always keeps the freshest observation.

#include <optional>
#include <unordered_map>

#include "geometry/point.hpp"
#include "sim/simulator.hpp"

namespace glr::ckpt {
class Encoder;  // checkpoint/codec.hpp
class Decoder;
}

namespace glr::dtn {

class LocationTable {
 public:
  struct Entry {
    geom::Point2 pos;
    sim::SimTime at = -1e18;
  };

  /// Records an observation; keeps it only if fresher than what is stored.
  /// Returns true if the table was updated.
  bool update(int id, geom::Point2 pos, sim::SimTime at) {
    auto [it, inserted] = table_.try_emplace(id, Entry{pos, at});
    if (inserted) return true;
    if (at > it->second.at) {
      it->second = {pos, at};
      return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<Entry> lookup(int id) const {
    const auto it = table_.find(id);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Drops every observation older than `olderThan`. The table is a pure
  /// key-value lookup (nothing iterates it), so pruning is only observable
  /// when a later lookup would have returned one of the dropped, very-stale
  /// entries. City-scale runs call this periodically to keep an idle node's
  /// footprint bounded by its active 2-hop neighborhood instead of by every
  /// node it has ever heard of.
  void prune(sim::SimTime olderThan) {
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->second.at < olderThan) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Checkpoint support: although the table is a pure key-value lookup, it
  /// is saved/restored with the order-preserving container codec so a
  /// restored node is byte-for-byte in the snapshotted state (prune() does
  /// iterate, and keeping every container on one policy is cheaper than
  /// proving order-independence per call site).
  void saveState(ckpt::Encoder& e) const;
  void restoreState(ckpt::Decoder& d);

 private:
  std::unordered_map<int, Entry> table_;
};

}  // namespace glr::dtn
