#include "dtn/buffer.hpp"

#include <algorithm>
#include <cassert>

#include "checkpoint/message_codec.hpp"
#include "trace/recorder.hpp"

namespace glr::dtn {

MessageBuffer::MessageBuffer(std::size_t capacity, std::size_t expectedCopies)
    : capacity_(capacity), reserveHint_(expectedCopies) {}

void MessageBuffer::applyReserveHint() {
  // Deferred to the first insert: a city-scale world holds mostly idle
  // nodes whose buffers never see a message — pre-sizing those up front
  // costs ~0.5 KB per node for tables that stay empty. The maps are pure
  // key-lookup indexes (list order drives every observable iteration), so
  // when the reserve happens cannot affect results.
  if (reserveHint_ == 0) return;
  storeIndex_.reserve(reserveHint_);
  cacheIndex_.reserve(reserveHint_);
  branchCount_.reserve(reserveHint_);
  reserveHint_ = 0;
}

void MessageBuffer::notePeak() { peak_ = std::max(peak_, size()); }

void MessageBuffer::indexStoreInsert(std::list<Message>::iterator it) {
  // A silent duplicate would desync index and list; every caller filters
  // duplicates via contains() first, so fail loudly if that ever changes.
  const bool inserted = storeIndex_.emplace(it->key(), it).second;
  assert(inserted);
  (void)inserted;
  ++branchCount_[it->id];
}

void MessageBuffer::indexStoreErase(std::list<Message>::iterator it) {
  storeIndex_.erase(it->key());
  const auto bc = branchCount_.find(it->id);
  if (--bc->second == 0) branchCount_.erase(bc);
}

void MessageBuffer::indexCacheInsert(std::list<CacheEntry>::iterator it) {
  const bool inserted = cacheIndex_.emplace(it->message.key(), it).second;
  assert(inserted);
  (void)inserted;
  ++branchCount_[it->message.id];
}

void MessageBuffer::indexCacheErase(std::list<CacheEntry>::iterator it) {
  cacheIndex_.erase(it->message.key());
  const auto bc = branchCount_.find(it->message.id);
  if (--bc->second == 0) branchCount_.erase(bc);
}

bool MessageBuffer::evictOne() {
  if (!cache_.empty()) {
    if (trace_ != nullptr) traceDrop(trace::EventType::kDrop, cache_.front().message);
    indexCacheErase(cache_.begin());
    cache_.pop_front();
    ++drops_;
    return true;
  }
  if (!store_.empty()) {
    if (trace_ != nullptr) traceDrop(trace::EventType::kDrop, store_.front());
    indexStoreErase(store_.begin());
    store_.pop_front();
    ++drops_;
    return true;
  }
  return false;
}

void MessageBuffer::traceDrop(trace::EventType type, const Message& m) {
  trace_->record(type, selfNode_, -1, m.id.src, m.id.seq, 0,
                 static_cast<std::uint8_t>(m.flag));
}

bool MessageBuffer::addToStore(Message m) {
  if (contains(m.key())) return false;
  while (size() >= capacity_) {
    if (!evictOne()) return false;  // capacity 0
  }
  applyReserveHint();
  store_.push_back(std::move(m));
  indexStoreInsert(std::prev(store_.end()));
  notePeak();
  return true;
}

bool MessageBuffer::moveToCache(const CopyKey& key, int nextHop,
                                sim::SimTime now) {
  const auto idx = storeIndex_.find(key);
  if (idx == storeIndex_.end()) return false;
  const auto it = idx->second;
  indexStoreErase(it);
  cache_.push_back({std::move(*it), nextHop, now});
  store_.erase(it);
  indexCacheInsert(std::prev(cache_.end()));
  return true;
}

std::optional<Message> MessageBuffer::removeFromCache(const CopyKey& key) {
  const auto idx = cacheIndex_.find(key);
  if (idx == cacheIndex_.end()) return std::nullopt;
  const auto it = idx->second;
  indexCacheErase(it);
  Message m = std::move(it->message);
  cache_.erase(it);
  return m;
}

bool MessageBuffer::returnToStore(const CopyKey& key) {
  const auto idx = cacheIndex_.find(key);
  if (idx == cacheIndex_.end()) return false;
  const auto it = idx->second;
  indexCacheErase(it);
  store_.push_back(std::move(it->message));
  cache_.erase(it);
  indexStoreInsert(std::prev(store_.end()));
  return true;
}

bool MessageBuffer::erase(const CopyKey& key) {
  if (const auto idx = storeIndex_.find(key); idx != storeIndex_.end()) {
    const auto it = idx->second;
    indexStoreErase(it);
    store_.erase(it);
    return true;
  }
  if (const auto idx = cacheIndex_.find(key); idx != cacheIndex_.end()) {
    const auto it = idx->second;
    indexCacheErase(it);
    cache_.erase(it);
    return true;
  }
  return false;
}

std::size_t MessageBuffer::eraseAllBranches(const MessageId& id) {
  if (branchCount_.find(id) == branchCount_.end()) return 0;
  std::size_t removed = 0;
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->id == id) {
      indexStoreErase(it);
      it = store_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->message.id == id) {
      indexCacheErase(it);
      it = cache_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool MessageBuffer::inStore(const CopyKey& key) const {
  return storeIndex_.find(key) != storeIndex_.end();
}

bool MessageBuffer::inCache(const CopyKey& key) const {
  return cacheIndex_.find(key) != cacheIndex_.end();
}

bool MessageBuffer::containsAnyBranch(const MessageId& id) const {
  return branchCount_.find(id) != branchCount_.end();
}

Message* MessageBuffer::findInStore(const CopyKey& key) {
  const auto idx = storeIndex_.find(key);
  return idx == storeIndex_.end() ? nullptr : &*idx->second;
}

void MessageBuffer::forEachInStore(
    const std::function<void(Message&)>& fn) {
  for (Message& m : store_) fn(m);
}

std::vector<CopyKey> MessageBuffer::storeKeys() const {
  std::vector<CopyKey> out;
  out.reserve(store_.size());
  for (const Message& m : store_) out.push_back(m.key());
  return out;
}

std::optional<sim::SimTime> MessageBuffer::cacheEntrySentAt(
    const CopyKey& key) const {
  const auto idx = cacheIndex_.find(key);
  if (idx == cacheIndex_.end()) return std::nullopt;
  return idx->second->sentAt;
}

std::optional<int> MessageBuffer::cacheEntryNextHop(const CopyKey& key) const {
  const auto idx = cacheIndex_.find(key);
  if (idx == cacheIndex_.end()) return std::nullopt;
  return idx->second->nextHop;
}

std::size_t MessageBuffer::expireDue(sim::SimTime now) {
  std::size_t removed = 0;
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->expiresAt <= now) {
      if (trace_ != nullptr) traceDrop(trace::EventType::kExpiry, *it);
      indexStoreErase(it);
      it = store_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->message.expiresAt <= now) {
      if (trace_ != nullptr) traceDrop(trace::EventType::kExpiry, it->message);
      indexCacheErase(it);
      it = cache_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  expired_ += removed;
  return removed;
}

void MessageBuffer::saveState(ckpt::Encoder& e) const {
  e.size(capacity_);
  e.size(store_.size());
  for (const Message& m : store_) ckpt::saveMessage(e, m);
  e.size(cache_.size());
  for (const CacheEntry& entry : cache_) {
    ckpt::saveMessage(e, entry.message);
    e.i32(entry.nextHop);
    e.f64(entry.sentAt);
  }
  e.size(peak_);
  e.u64(drops_);
  e.u64(expired_);
  e.size(reserveHint_);
}

void MessageBuffer::restoreState(ckpt::Decoder& d) {
  // u64, not size(): capacity is kUnlimitedStorage (SIZE_MAX) by default,
  // and peak/reserveHint are counters — none bound upcoming section bytes.
  const auto capacity = static_cast<std::size_t>(d.u64());
  if (capacity != capacity_) {
    d.fail("buffer capacity mismatch (snapshot " + std::to_string(capacity) +
           ", live " + std::to_string(capacity_) + ")");
  }
  store_.clear();
  cache_.clear();
  storeIndex_.clear();
  cacheIndex_.clear();
  branchCount_.clear();

  const std::size_t nStore = d.checkedSize(d.u64(), 16);
  const std::size_t sizeBefore = d.remaining();
  for (std::size_t i = 0; i < nStore; ++i) {
    store_.push_back(ckpt::loadMessage(d));
  }
  // Pre-size the rebuilt indexes for the restored population (pure lookup
  // caches; bucket counts are never observable).
  const std::size_t perMessage =
      nStore > 0 ? (sizeBefore - d.remaining()) / nStore : 16;
  const std::size_t nCache =
      d.checkedSize(d.u64(), perMessage > 0 ? perMessage : 16);
  storeIndex_.reserve(nStore);
  cacheIndex_.reserve(nCache);
  branchCount_.reserve(nStore + nCache);
  for (std::size_t i = 0; i < nCache; ++i) {
    CacheEntry entry;
    entry.message = ckpt::loadMessage(d);
    entry.nextHop = d.i32();
    entry.sentAt = d.f64();
    cache_.push_back(std::move(entry));
  }
  for (auto it = store_.begin(); it != store_.end(); ++it) {
    if (contains(it->key())) d.fail("duplicate copy key in restored store");
    indexStoreInsert(it);
  }
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (contains(it->message.key())) {
      d.fail("duplicate copy key in restored cache");
    }
    indexCacheInsert(it);
  }
  peak_ = static_cast<std::size_t>(d.u64());
  drops_ = d.u64();
  expired_ = d.u64();
  reserveHint_ = static_cast<std::size_t>(d.u64());
}

std::vector<CopyKey> MessageBuffer::cachedSentBefore(
    sim::SimTime before) const {
  std::vector<CopyKey> out;
  for (const CacheEntry& e : cache_) {
    if (e.sentAt < before) out.push_back(e.message.key());
  }
  return out;
}

}  // namespace glr::dtn
