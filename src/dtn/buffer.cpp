#include "dtn/buffer.hpp"

#include <algorithm>

namespace glr::dtn {

MessageBuffer::MessageBuffer(std::size_t capacity) : capacity_(capacity) {}

void MessageBuffer::notePeak() { peak_ = std::max(peak_, size()); }

bool MessageBuffer::evictOne() {
  if (!cache_.empty()) {
    cache_.pop_front();
    ++drops_;
    return true;
  }
  if (!store_.empty()) {
    store_.pop_front();
    ++drops_;
    return true;
  }
  return false;
}

bool MessageBuffer::addToStore(Message m) {
  if (contains(m.key())) return false;
  while (size() >= capacity_) {
    if (!evictOne()) return false;  // capacity 0
  }
  store_.push_back(std::move(m));
  notePeak();
  return true;
}

bool MessageBuffer::moveToCache(const CopyKey& key, int nextHop,
                                sim::SimTime now) {
  for (auto it = store_.begin(); it != store_.end(); ++it) {
    if (it->key() == key) {
      cache_.push_back({std::move(*it), nextHop, now});
      store_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<Message> MessageBuffer::removeFromCache(const CopyKey& key) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->message.key() == key) {
      Message m = std::move(it->message);
      cache_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool MessageBuffer::returnToStore(const CopyKey& key) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->message.key() == key) {
      store_.push_back(std::move(it->message));
      cache_.erase(it);
      return true;
    }
  }
  return false;
}

bool MessageBuffer::erase(const CopyKey& key) {
  for (auto it = store_.begin(); it != store_.end(); ++it) {
    if (it->key() == key) {
      store_.erase(it);
      return true;
    }
  }
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->message.key() == key) {
      cache_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t MessageBuffer::eraseAllBranches(const MessageId& id) {
  std::size_t removed = 0;
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->id == id) {
      it = store_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->message.id == id) {
      it = cache_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool MessageBuffer::inStore(const CopyKey& key) const {
  return std::any_of(store_.begin(), store_.end(),
                     [&](const Message& m) { return m.key() == key; });
}

bool MessageBuffer::inCache(const CopyKey& key) const {
  return std::any_of(cache_.begin(), cache_.end(), [&](const CacheEntry& e) {
    return e.message.key() == key;
  });
}

bool MessageBuffer::containsAnyBranch(const MessageId& id) const {
  return std::any_of(store_.begin(), store_.end(),
                     [&](const Message& m) { return m.id == id; }) ||
         std::any_of(cache_.begin(), cache_.end(), [&](const CacheEntry& e) {
           return e.message.id == id;
         });
}

Message* MessageBuffer::findInStore(const CopyKey& key) {
  for (Message& m : store_) {
    if (m.key() == key) return &m;
  }
  return nullptr;
}

void MessageBuffer::forEachInStore(
    const std::function<void(Message&)>& fn) {
  for (Message& m : store_) fn(m);
}

std::vector<CopyKey> MessageBuffer::storeKeys() const {
  std::vector<CopyKey> out;
  out.reserve(store_.size());
  for (const Message& m : store_) out.push_back(m.key());
  return out;
}

std::optional<sim::SimTime> MessageBuffer::cacheEntrySentAt(
    const CopyKey& key) const {
  for (const CacheEntry& e : cache_) {
    if (e.message.key() == key) return e.sentAt;
  }
  return std::nullopt;
}

std::vector<CopyKey> MessageBuffer::cachedSentBefore(
    sim::SimTime before) const {
  std::vector<CopyKey> out;
  for (const CacheEntry& e : cache_) {
    if (e.sentAt < before) out.push_back(e.message.key());
  }
  return out;
}

}  // namespace glr::dtn
