#pragma once
/// \file message.hpp
/// DTN message representation shared by GLR and the baseline protocols.

#include <compare>
#include <cstdint>
#include <functional>

#include "geometry/point.hpp"
#include "sim/simulator.hpp"

namespace glr::dtn {

/// Globally unique message identity: (origin node, per-origin sequence).
struct MessageId {
  int src = -1;
  int seq = -1;

  friend constexpr auto operator<=>(const MessageId&,
                                    const MessageId&) = default;
};

/// Which source-to-destination tree a GLR copy follows (paper Sec. 2.3).
/// Copies of the same message on different trees are distinct custody units;
/// the paper's acknowledgements carry the branch for the same reason.
enum class TreeFlag : std::uint8_t {
  kNone = 0,  // single-copy / non-GLR protocols
  kMax = 1,   // neighbor making maximum progress (closest to destination)
  kMin = 2,   // minimum positive progress
  kMid = 3,   // median progress
};

/// Custody/copy key: message identity plus tree branch.
struct CopyKey {
  MessageId id;
  TreeFlag flag = TreeFlag::kNone;

  friend constexpr auto operator<=>(const CopyKey&, const CopyKey&) = default;
};

struct Message {
  MessageId id;
  int srcNode = -1;
  int dstNode = -1;
  sim::SimTime created = 0;
  std::size_t payloadBytes = 1000;  // paper Table 1

  /// Bundle lifetime: a copy still buffered at this time is expired and
  /// dropped as a *counted* expiry (MessageBuffer::expireDue), never a
  /// silent erasure. The far-future default makes messages immortal — the
  /// historical behavior every golden was recorded under. Stamped once by
  /// the originator and carried verbatim across hops.
  sim::SimTime expiresAt = 1e18;

  /// Tree branch this copy follows (kNone => plain greedy / baseline).
  TreeFlag flag = TreeFlag::kNone;

  /// Destination location estimate carried in the header (paper: message
  /// holder includes the freshest known destination location; relays update
  /// it during the location diffusion handshake).
  geom::Point2 destLoc;
  sim::SimTime destLocTime = -1e18;
  bool destLocKnown = false;

  /// Perimeter (face-routing) state: set when the copy entered face mode at
  /// a local minimum; cleared when greedy progress resumes. faceHops and
  /// faceEntryNode bound the walk: returning to the entry node (or running
  /// out of budget) means the face is exhausted and the copy must wait for
  /// mobility instead of circulating.
  bool faceMode = false;
  geom::Point2 faceEntry;
  int facePrevHop = -1;
  int faceEntryNode = -1;
  int faceHops = 0;

  /// True when destLoc was locally perturbed (stale-location fix): such a
  /// location is a routing aid, never diffused as a genuine observation.
  bool destLocPerturbed = false;

  int hops = 0;

  /// Consecutive route checks at the current holder without any usable next
  /// hop; drives the stale-location perturbation (paper Sec. 3.3).
  int stuckCount = 0;

  /// Store-state throttling (paper: stored messages are re-sent when the
  /// neighborhood changes): after a failed attempt the copy skips
  /// `waitChecks` route checks, with exponential growth up to a small cap;
  /// a new contact clears the wait. All holder-local, reset at each hop.
  int waitChecks = 0;
  int retryBackoff = 1;

  /// Last stale-location perturbation time (cooldown bookkeeping).
  sim::SimTime lastPerturbAt = -1e18;

  /// Adversarial-resilience recovery state (holder-local, reset at each
  /// hop): custody rounds for this copy that ended in a timeout or refusal
  /// NACK plus route checks that found no usable next hop; when the score
  /// crosses GlrParams::recoveryAfterFailures the holder falls back to a
  /// bounded spray (GlrAgent recovery mode), throttled per copy by
  /// lastRecoveryAt.
  int deliveryFailures = 0;
  sim::SimTime lastRecoveryAt = -1e18;

  /// No face walk is re-attempted before this time. A face that already
  /// looped back cannot deliver until topology changes, so re-walking it is
  /// pure contention; the cooldown escalates with consecutive exhausted
  /// walks and both travel with the copy until greedy progress resumes.
  sim::SimTime faceCooldownUntil = -1e18;
  int faceExhaustions = 0;

  [[nodiscard]] CopyKey key() const { return {id, flag}; }
};

}  // namespace glr::dtn

template <>
struct std::hash<glr::dtn::MessageId> {
  std::size_t operator()(const glr::dtn::MessageId& id) const noexcept {
    return std::hash<long long>{}(
        (static_cast<long long>(id.src) << 32) ^ id.seq);
  }
};

template <>
struct std::hash<glr::dtn::CopyKey> {
  std::size_t operator()(const glr::dtn::CopyKey& k) const noexcept {
    return std::hash<glr::dtn::MessageId>{}(k.id) * 31 +
           static_cast<std::size_t>(k.flag);
  }
};
