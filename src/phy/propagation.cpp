#include "phy/propagation.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace glr::phy {

namespace {
constexpr double kPi = std::numbers::pi;
/// Relative safety margin on inverted path-loss distances: the closed-form
/// inversions below are exact up to FP rounding, so a few ppm of slack
/// guarantees maxRangeFor never under-estimates the true reach.
constexpr double kRangeMargin = 1.0 + 1e-6;
}  // namespace

void PropagationModel::rxPowerFromDist2(double txPowerW, const double* dist2,
                                        double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rxPower(txPowerW, std::sqrt(dist2[i]));
  }
}

double PropagationModel::maxRangeFor(double /*txPowerW*/,
                                     double /*thresholdW*/) const {
  return std::numeric_limits<double>::infinity();
}

double TwoRayGround::crossoverDistance() const {
  return 4.0 * kPi * p_.antennaHeightTx * p_.antennaHeightRx / p_.wavelength;
}

double TwoRayGround::rxPower(double txPowerW, double d) const {
  if (d < 0.0) throw std::invalid_argument{"TwoRayGround: negative distance"};
  if (d == 0.0) return txPowerW;
  const double cross = crossoverDistance();
  if (d <= cross) {
    const double denom = 4.0 * kPi * d / p_.wavelength;
    return txPowerW * p_.gainTx * p_.gainRx / (denom * denom * p_.systemLoss);
  }
  const double ht2 = p_.antennaHeightTx * p_.antennaHeightTx;
  const double hr2 = p_.antennaHeightRx * p_.antennaHeightRx;
  return txPowerW * p_.gainTx * p_.gainRx * ht2 * hr2 /
         (d * d * d * d * p_.systemLoss);
}

void TwoRayGround::rxPowerFromDist2(double txPowerW, const double* dist2,
                                    double* out, std::size_t n) const {
  // Element-for-element the same arithmetic as rxPower (same operations in
  // the same order), with the distance recovered by the same sqrt the
  // scalar callers' geom::dist performs — results are bit-identical; only
  // the virtual dispatch and the loop-invariant crossover computation are
  // hoisted out of the per-candidate loop.
  const double cross = crossoverDistance();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::sqrt(dist2[i]);
    if (d == 0.0) {
      out[i] = txPowerW;
    } else if (d <= cross) {
      const double denom = 4.0 * kPi * d / p_.wavelength;
      out[i] = txPowerW * p_.gainTx * p_.gainRx / (denom * denom *
                                                   p_.systemLoss);
    } else {
      const double ht2 = p_.antennaHeightTx * p_.antennaHeightTx;
      const double hr2 = p_.antennaHeightRx * p_.antennaHeightRx;
      out[i] = txPowerW * p_.gainTx * p_.gainRx * ht2 * hr2 /
               (d * d * d * d * p_.systemLoss);
    }
  }
}

double TwoRayGround::maxRangeFor(double txPowerW, double thresholdW) const {
  if (!(thresholdW > 0.0) || !(txPowerW > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  // Both branches are strictly decreasing and meet continuously at the
  // crossover, so invert whichever regime the threshold falls in.
  const double cross = crossoverDistance();
  const double atCross = rxPower(txPowerW, cross);
  double d = 0.0;
  if (thresholdW <= atCross) {
    // d^4 regime: threshold == Pt*Gt*Gr*ht^2*hr^2 / (d^4 * L).
    const double ht2 = p_.antennaHeightTx * p_.antennaHeightTx;
    const double hr2 = p_.antennaHeightRx * p_.antennaHeightRx;
    d = std::sqrt(std::sqrt(txPowerW * p_.gainTx * p_.gainRx * ht2 * hr2 /
                            (thresholdW * p_.systemLoss)));
  } else {
    // Friis regime: threshold == Pt*Gt*Gr / ((4*pi*d/lambda)^2 * L).
    d = p_.wavelength / (4.0 * kPi) *
        std::sqrt(txPowerW * p_.gainTx * p_.gainRx /
                  (thresholdW * p_.systemLoss));
  }
  return d * kRangeMargin;
}

double FreeSpace::rxPower(double txPowerW, double d) const {
  if (d < 0.0) throw std::invalid_argument{"FreeSpace: negative distance"};
  if (d == 0.0) return txPowerW;
  const double denom = 4.0 * kPi * d / p_.wavelength;
  return txPowerW * p_.gainTx * p_.gainRx / (denom * denom * p_.systemLoss);
}

double FreeSpace::maxRangeFor(double txPowerW, double thresholdW) const {
  if (!(thresholdW > 0.0) || !(txPowerW > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  const double d = p_.wavelength / (4.0 * kPi) *
                   std::sqrt(txPowerW * p_.gainTx * p_.gainRx /
                             (thresholdW * p_.systemLoss));
  return d * kRangeMargin;
}

RadioThresholds solveThresholds(const PropagationModel& model,
                                const RadioParams& radio) {
  if (radio.nominalRange <= 0.0 || radio.carrierSenseFactor < 1.0) {
    throw std::invalid_argument{
        "solveThresholds: need positive range and csFactor >= 1"};
  }
  RadioThresholds t;
  t.rxRange = radio.nominalRange;
  t.csRange = radio.nominalRange * radio.carrierSenseFactor;
  t.rxThresholdW = model.rxPower(radio.txPowerW, t.rxRange);
  t.csThresholdW = model.rxPower(radio.txPowerW, t.csRange);
  return t;
}

}  // namespace glr::phy
