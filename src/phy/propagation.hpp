#pragma once
/// \file propagation.hpp
/// Radio propagation models and receiver thresholds.
///
/// The paper's ns-2 setup uses the Two Ray Ground model: free-space path
/// loss below the crossover distance, ground-reflection (d^4) loss above it.
/// We keep ns-2's default constants and *solve for the receive threshold*
/// that yields a requested nominal range (ns-2 users do the same with the
/// `threshold` utility), so scenarios can dial 50–250 m ranges exactly.

#include <cstddef>
#include <memory>

namespace glr::phy {

/// Interface: received signal power (Watts) at distance d (metres) from a
/// transmitter with power txPowerW.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;
  [[nodiscard]] virtual double rxPower(double txPowerW, double d) const = 0;

  /// Batch form for the channel's per-transmission candidate sweep:
  /// out[i] = rxPower(txPowerW, sqrt(dist2[i])) for i < n. The default
  /// loops over the scalar virtual; concrete models override with the same
  /// per-element arithmetic inlined (one virtual dispatch per frame instead
  /// of one per candidate receiver). Overrides MUST be bit-identical to the
  /// scalar path — delivery decisions are pinned by golden tests.
  virtual void rxPowerFromDist2(double txPowerW, const double* dist2,
                                double* out, std::size_t n) const;

  /// Conservative reach bound: a distance D such that rxPower(txPowerW, d)
  /// < thresholdW for every d > D. Used by the channel to skip interferers
  /// that provably cannot matter, so the bound may be loose but must never
  /// under-estimate (skipping a relevant interferer would change pinned
  /// results). The default returns +infinity — no filtering — so custom
  /// models are safe without an override; the shipped models invert their
  /// (continuous, strictly decreasing) path-loss laws in closed form with a
  /// small safety margin.
  [[nodiscard]] virtual double maxRangeFor(double txPowerW,
                                           double thresholdW) const;
};

/// ns-2 TwoRayGround: Friis below the crossover distance
/// (4*pi*ht*hr/lambda), Pt*Gt*Gr*ht^2*hr^2 / (d^4*L) above it.
class TwoRayGround final : public PropagationModel {
 public:
  struct Params {
    double gainTx = 1.0;
    double gainRx = 1.0;
    double antennaHeightTx = 1.5;  // metres (ns-2 default)
    double antennaHeightRx = 1.5;
    double wavelength = 0.328227;  // 914 MHz WaveLAN (ns-2 default)
    double systemLoss = 1.0;
  };

  TwoRayGround() = default;
  explicit TwoRayGround(Params p) : p_(p) {}

  [[nodiscard]] double rxPower(double txPowerW, double d) const override;
  void rxPowerFromDist2(double txPowerW, const double* dist2, double* out,
                        std::size_t n) const override;
  [[nodiscard]] double maxRangeFor(double txPowerW,
                                   double thresholdW) const override;

  /// Distance where the free-space and two-ray formulas meet.
  [[nodiscard]] double crossoverDistance() const;

  [[nodiscard]] const Params& params() const { return p_; }

 private:
  Params p_;
};

/// Free-space (Friis) model, kept for ablations.
class FreeSpace final : public PropagationModel {
 public:
  struct Params {
    double gainTx = 1.0;
    double gainRx = 1.0;
    double wavelength = 0.328227;
    double systemLoss = 1.0;
  };

  FreeSpace() = default;
  explicit FreeSpace(Params p) : p_(p) {}

  [[nodiscard]] double rxPower(double txPowerW, double d) const override;
  [[nodiscard]] double maxRangeFor(double txPowerW,
                                   double thresholdW) const override;

 private:
  Params p_;
};

/// Radio configuration shared by all nodes in a scenario.
struct RadioParams {
  double txPowerW = 0.28183815;  // ns-2 default (250 m nominal with defaults)
  double nominalRange = 250.0;   // metres; rxThreshold is solved from this
  double carrierSenseFactor = 2.2;  // ns-2: 550 m CS range at 250 m RX range
  double bitRateBps = 1e6;          // paper: 1 Mbps
};

/// Resolved thresholds for a (model, params) pair.
struct RadioThresholds {
  double rxThresholdW = 0.0;  // minimum power for successful reception
  double csThresholdW = 0.0;  // minimum power to sense the medium busy
  double rxRange = 0.0;       // metres (== RadioParams::nominalRange)
  double csRange = 0.0;       // metres
};

/// Solves rx/cs power thresholds so that reception succeeds exactly within
/// `nominalRange` and carrier sense extends to carrierSenseFactor x range.
[[nodiscard]] RadioThresholds solveThresholds(const PropagationModel& model,
                                              const RadioParams& radio);

}  // namespace glr::phy
