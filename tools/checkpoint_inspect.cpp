// checkpoint_inspect — validate and summarize GLR scenario checkpoints.
//
// A checkpoint is the length-prefixed, checksummed binary snapshot produced
// when ScenarioConfig::checkpointPath is set (format spec:
// src/checkpoint/file.hpp). This tool is the operational side of crash
// recovery: before pointing a resumed run at a snapshot, `validate` answers
// "is this file intact?" and `summary` answers "how far had the run
// gotten?" — without constructing a scenario.
//
// Usage:
//   checkpoint_inspect validate <ckpt>   structural + checksum check, 0/1
//   checkpoint_inspect summary <ckpt>    header fields + per-section sizes
//   checkpoint_inspect selftest          write a snapshot from a tiny
//                                        scenario, read it back, restore it
//                                        and check bit-identical continuation

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "checkpoint/file.hpp"
#include "checkpoint/scenario_checkpoint.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace {

using glr::ckpt::CheckpointFile;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;

/// Section ids assigned by scenario_checkpoint.cpp (append-only).
const char* sectionName(std::uint32_t id) {
  switch (id) {
    case 1: return "events";
    case 2: return "channel";
    case 3: return "nodes";
    case 4: return "churn";
    case 5: return "faults";
    case 6: return "traffic";
    case 7: return "metrics";
    default: return "unknown";
  }
}

int cmdValidate(const std::string& path) {
  const CheckpointFile f = CheckpointFile::read(path);
  std::printf("ok: %zu sections, sim time %.6f\n", f.sections.size(),
              f.simNow);
  return 0;
}

int cmdSummary(const std::string& path) {
  const CheckpointFile f = CheckpointFile::read(path);
  std::printf("config digest      %016llx\n",
              static_cast<unsigned long long>(f.configDigest));
  std::printf("sim time           %.6f s\n", f.simNow);
  std::printf("events executed    %llu\n",
              static_cast<unsigned long long>(f.executed));
  std::printf("next event seq     %llu\n",
              static_cast<unsigned long long>(f.nextSeq));
  std::printf("sections           %zu\n", f.sections.size());
  for (const glr::ckpt::Section& s : f.sections) {
    std::printf("  [%u] %-8s %zu bytes\n", static_cast<unsigned>(s.id),
                sectionName(s.id), s.bytes.size());
  }
  return 0;
}

// Runs a tiny scenario that writes a snapshot, validates the file, then
// restores it into a fresh scenario and checks the continued run matches
// the uninterrupted one — the full crash-recovery path as a CI smoke.
int cmdSelftest() {
  const std::string path = "checkpoint_inspect_selftest.ckpt";
  ScenarioConfig cfg;
  cfg.numNodes = 15;
  cfg.trafficNodes = 12;
  cfg.simTime = 60.0;
  cfg.numMessages = 20;
  cfg.seed = 77;
  cfg.checkpointEvery = 40.0;  // one snapshot at t=40, 20 s tail
  cfg.checkpointPath = path;
  const ScenarioResult golden = glr::experiment::runScenario(cfg);

  const CheckpointFile f = CheckpointFile::read(path);
  if (f.configDigest != glr::ckpt::configDigest(cfg) || f.simNow <= 0.0 ||
      f.simNow > cfg.simTime || f.sections.empty()) {
    std::fprintf(stderr, "selftest FAILED: snapshot header is wrong\n");
    std::remove(path.c_str());
    return 1;
  }

  ScenarioConfig resumed = cfg;
  resumed.checkpointPath.clear();
  resumed.restoreFrom = path;
  const ScenarioResult tail = glr::experiment::runScenario(resumed);
  std::remove(path.c_str());
  if (!glr::experiment::bitIdenticalIgnoringWall(golden, tail)) {
    std::fprintf(stderr,
                 "selftest FAILED: restored run diverged (delivered %llu vs "
                 "%llu, events %llu vs %llu)\n",
                 static_cast<unsigned long long>(tail.delivered),
                 static_cast<unsigned long long>(golden.delivered),
                 static_cast<unsigned long long>(tail.eventsExecuted),
                 static_cast<unsigned long long>(golden.eventsExecuted));
    return 1;
  }
  std::printf("selftest ok: snapshot at t=%.1f, restored run bit-identical\n",
              f.simNow);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: checkpoint_inspect <command> ...\n"
               "  validate <ckpt>   structural + checksum check\n"
               "  summary <ckpt>    header fields + per-section sizes\n"
               "  selftest          write, read back and restore a snapshot\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "selftest") return cmdSelftest();
    if (argc < 3) return usage();
    const std::string path = argv[2];
    if (cmd == "validate") return cmdValidate(path);
    if (cmd == "summary") return cmdSummary(path);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
