// trace_inspect — validate, filter, and replay GLR flight-recorder traces.
//
// A trace is the length-prefixed binary file produced by trace::Recorder
// when ScenarioConfig::tracePath is set (format spec: src/trace/reader.hpp).
// This tool is the post-hoc debugging side of the flight recorder: it
// validates the file structurally, reconstructs scenario-level totals
// (delivered/dropped/custody — the same numbers the round-trip differential
// test pins against the live ScenarioResult), and replays a single
// message's hop-by-hop timeline, which is what makes anomalies like the GLR
// manhattan delivery gap debuggable without a re-run.
//
// Usage:
//   trace_inspect validate <trace>             structural check, exit 0/1
//   trace_inspect summary <trace>              replayed totals + time span
//   trace_inspect timeline <trace> <src> <seq> one message's hop timeline
//   trace_inspect filter <trace> [--node N] [--type NAME] [--limit K]
//                                              matching records, one per line
//   trace_inspect recover <trace> [<out>]      salvage the intact prefix of
//                                              an unfinalized/torn trace
//                                              into a finalized file
//   trace_inspect selftest                     write + read back a tiny
//                                              trace, then truncate and
//                                              recover it (CI smoke)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/reader.hpp"
#include "trace/recorder.hpp"

namespace {

using glr::trace::EventType;
using glr::trace::Record;

void printRecord(const Record& r) {
  std::printf("%12.6f  %-14s node=%-6d peer=%-6d msg=%d:%d", r.time,
              glr::trace::eventTypeName(r.type), r.node, r.peer, r.msgSrc,
              r.msgSeq);
  if (r.aux != 0) std::printf(" aux=%u", static_cast<unsigned>(r.aux));
  if (r.flag != 0) std::printf(" flag=%u", static_cast<unsigned>(r.flag));
  std::printf("\n");
}

int cmdValidate(const std::string& path) {
  const auto records = glr::trace::readTraceFile(path);
  std::printf("ok: %zu records\n", records.size());
  return 0;
}

int cmdSummary(const std::string& path) {
  const auto records = glr::trace::readTraceFile(path);
  const auto t = glr::trace::replayTotals(records);
  std::printf("records            %zu\n", records.size());
  if (!records.empty()) {
    std::printf("time span          [%.6f, %.6f] sim-s\n",
                records.front().time, records.back().time);
  }
  std::printf("created            %llu\n",
              static_cast<unsigned long long>(t.created));
  std::printf("delivered          %llu\n",
              static_cast<unsigned long long>(t.delivered));
  std::printf("duplicates         %llu\n",
              static_cast<unsigned long long>(t.duplicates));
  std::printf("sends              %llu\n",
              static_cast<unsigned long long>(t.sends));
  std::printf("custody accepts    %llu\n",
              static_cast<unsigned long long>(t.custodyAccepts));
  std::printf("custody refusals   %llu\n",
              static_cast<unsigned long long>(t.custodyRefusals));
  std::printf("drops (eviction)   %llu\n",
              static_cast<unsigned long long>(t.drops));
  std::printf("expiries (TTL)     %llu\n",
              static_cast<unsigned long long>(t.expiries));
  std::printf("suspicions         %llu\n",
              static_cast<unsigned long long>(t.suspicions));
  return 0;
}

int cmdTimeline(const std::string& path, int src, int seq) {
  const auto records = glr::trace::readTraceFile(path);
  const auto timeline = glr::trace::messageTimeline(records, src, seq);
  if (timeline.empty()) {
    std::printf("no events for message %d:%d\n", src, seq);
    return 1;
  }
  std::printf("message %d:%d — %zu events\n", src, seq, timeline.size());
  for (const Record& r : timeline) printRecord(r);
  return 0;
}

int cmdFilter(const std::string& path, int argc, char** argv) {
  int node = -1;
  std::string typeName;
  long limit = -1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--node" && i + 1 < argc) {
      node = std::atoi(argv[++i]);
    } else if (arg == "--type" && i + 1 < argc) {
      typeName = argv[++i];
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::atol(argv[++i]);
    } else {
      std::fprintf(stderr, "filter: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  const auto records = glr::trace::readTraceFile(path);
  long shown = 0;
  for (const Record& r : records) {
    if (node >= 0 && r.node != node) continue;
    if (!typeName.empty() &&
        typeName != glr::trace::eventTypeName(r.type)) {
      continue;
    }
    printRecord(r);
    if (limit >= 0 && ++shown >= limit) break;
  }
  return 0;
}

int cmdRecover(const std::string& path, const std::string& out) {
  const auto recovered = glr::trace::recoverTraceRecords(path);
  if (recovered.wasFinalized &&
      recovered.declaredCount == recovered.records.size()) {
    std::printf("already finalized and intact: %zu records (nothing to do)\n",
                recovered.records.size());
    return 0;
  }
  glr::trace::writeTraceFile(out, recovered.records);
  std::printf("recovered %zu record(s) -> %s (%s)\n",
              recovered.records.size(), out.c_str(),
              recovered.wasFinalized
                  ? "finalized header but torn records"
                  : "writer never finalized — truncated run");
  return 0;
}

// Writes a tiny synthetic trace through the real Recorder (ring + writer
// thread + finalize), reads it back, and checks the replayed totals — a CI
// smoke for the whole binary path without running a scenario.
int cmdSelftest() {
  const std::string path = "trace_inspect_selftest.bin";
  glr::sim::Simulator sim;
  {
    glr::trace::Recorder rec(sim, path, 128);
    rec.record(EventType::kCreated, 0, 5, 0, 0);
    for (int hop = 0; hop < 3; ++hop) {
      rec.record(EventType::kSend, hop, hop + 1, 0, 0,
                 static_cast<std::uint16_t>(hop));
    }
    rec.record(EventType::kCustodyAccept, 1, 0, 0, 0);
    rec.record(EventType::kDelivered, 5, 0, 0, 0, 3);
    rec.close();
  }
  const auto records = glr::trace::readTraceFile(path);
  const auto t = glr::trace::replayTotals(records);
  const bool ok = records.size() == 6 && t.created == 1 && t.sends == 3 &&
                  t.custodyAccepts == 1 && t.delivered == 1;
  std::remove(path.c_str());
  if (!ok) {
    std::fprintf(stderr, "selftest FAILED: %zu records\n", records.size());
    return 1;
  }
  const auto timeline = glr::trace::messageTimeline(records, 0, 0);
  if (timeline.size() != 6) {
    std::fprintf(stderr, "selftest FAILED: timeline has %zu events\n",
                 timeline.size());
    return 1;
  }

  // Crash-recovery leg: simulate a SIGKILLed run (header unfinalized,
  // record count ~0, torn tail) and salvage the intact prefix.
  const std::string crashed = "trace_inspect_selftest_crashed.bin";
  {
    glr::trace::FileHeader header;  // recordCount stays ~0: never finalized
    std::FILE* f = std::fopen(crashed.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "selftest FAILED: cannot write %s\n",
                   crashed.c_str());
      return 1;
    }
    std::fwrite(&header, sizeof(header), 1, f);
    const std::uint32_t len = sizeof(Record);
    for (const Record& r : records) {
      std::fwrite(&len, sizeof(len), 1, f);
      std::fwrite(&r, sizeof(r), 1, f);
    }
    std::fwrite(&len, sizeof(len), 1, f);  // torn: a length with no record
    std::fclose(f);
  }
  bool refused = false;
  try {
    (void)glr::trace::readTraceFile(crashed);
  } catch (const std::exception&) {
    refused = true;  // the strict reader must keep rejecting such a file
  }
  const auto recovered = glr::trace::recoverTraceRecords(crashed);
  const std::string salvaged = crashed + ".recovered";
  glr::trace::writeTraceFile(salvaged, recovered.records);
  const auto reread = glr::trace::readTraceFile(salvaged);
  std::remove(crashed.c_str());
  std::remove(salvaged.c_str());
  if (!refused || recovered.wasFinalized ||
      recovered.records.size() != records.size() ||
      reread.size() != records.size()) {
    std::fprintf(stderr,
                 "selftest FAILED: recover salvaged %zu of %zu records "
                 "(refused=%d)\n",
                 recovered.records.size(), records.size(), refused ? 1 : 0);
    return 1;
  }

  std::printf("selftest ok\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_inspect <command> ...\n"
      "  validate <trace>                     structural check\n"
      "  summary <trace>                      replayed totals\n"
      "  timeline <trace> <src> <seq>         one message's hop timeline\n"
      "  filter <trace> [--node N] [--type NAME] [--limit K]\n"
      "  recover <trace> [<out>]              salvage an unfinalized trace\n"
      "  selftest                             write/read a tiny trace\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "selftest") return cmdSelftest();
    if (argc < 3) return usage();
    const std::string path = argv[2];
    if (cmd == "validate") return cmdValidate(path);
    if (cmd == "summary") return cmdSummary(path);
    if (cmd == "timeline") {
      if (argc < 5) return usage();
      return cmdTimeline(path, std::atoi(argv[3]), std::atoi(argv[4]));
    }
    if (cmd == "filter") return cmdFilter(path, argc - 3, argv + 3);
    if (cmd == "recover") {
      return cmdRecover(path, argc >= 4 ? argv[3] : path + ".recovered");
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
