// sweep_resume — kill-and-resume differential for the resumable sweep layer.
//
// The unit tests simulate interruption by truncating journals; this tool
// does the real thing: it forks a child that runs a journaled sweep, sends
// the child SIGKILL once the journal shows progress (so the kill lands
// mid-sweep, possibly mid-append and mid-cell), then resumes the sweep over
// the surviving journal in the parent and checks every cell's result is
// bit-identical to an uninterrupted reference sweep. This is the end-to-end
// crash-recovery guarantee, exercised with an actual process death.
//
// Usage:
//   sweep_resume selftest          fork, SIGKILL mid-sweep, resume, compare
//   sweep_resume run <journal>     run the demo sweep over <journal>
//                                  (kill it yourself; rerun to resume)

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace {

using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::experiment::SweepRunner;

/// The demo sweep: 8 replicates of a small GLR scenario, a few hundred
/// milliseconds per cell — long enough for a kill to land mid-sweep, short
/// enough for CI.
std::vector<ScenarioConfig> demoCells() {
  std::vector<ScenarioConfig> cells;
  for (int s = 0; s < 8; ++s) {
    ScenarioConfig cfg;
    cfg.numNodes = 25;
    cfg.trafficNodes = 20;
    cfg.simTime = 150.0;
    cfg.numMessages = 40;
    cfg.seed = glr::experiment::seedForRun(61, s);
    cells.push_back(cfg);
  }
  return cells;
}

SweepRunner::Options demoOptions(const std::string& journal, bool progress) {
  SweepRunner::Options opts;
  opts.threads = 2;
  opts.progress = progress;
  opts.label = "sweep_resume";
  opts.journalPath = journal;
  opts.cellCheckpointEvery = 60.0;  // in-cell snapshots for mid-cell kills
  return opts;
}

int cmdRun(const std::string& journal) {
  SweepRunner runner{demoOptions(journal, true)};
  const std::vector<ScenarioResult> results = runner.runCells(demoCells());
  std::printf("done: %zu cells (%zu resumed, %zu restored mid-cell)\n",
              results.size(), runner.stats().cellsResumed,
              runner.stats().cellsRestored);
  return 0;
}

long fileSize(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : -1;
}

int cmdSelftest() {
  const std::string journal = "sweep_resume_selftest.journal";
  std::remove(journal.c_str());
  const std::vector<ScenarioConfig> cells = demoCells();

  // Uninterrupted reference, under the same crash-safety wiring (the
  // in-cell snapshot cadence shapes each cell's event sequence). The pool
  // joins all its threads before runCells returns, so the fork below is
  // taken from a single-threaded process.
  SweepRunner::Options opts = demoOptions(journal + ".golden", false);
  SweepRunner goldenRunner{opts};
  const std::vector<ScenarioResult> golden = goldenRunner.runCells(cells);
  std::remove((journal + ".golden").c_str());

  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    // Child: run the journaled sweep to completion (the parent will
    // normally kill us first). _exit, never exit: no parent-state teardown.
    try {
      (void)SweepRunner{demoOptions(journal, false)}.runCells(cells);
    } catch (...) {
      ::_exit(3);
    }
    ::_exit(0);
  }

  // Parent: SIGKILL the child once the journal holds at least two complete
  // records — mid-sweep, with cells in flight. If the child finishes first
  // the resume below degenerates to "all cells from journal", which must
  // still compare equal.
  const long headerSize = 24;
  const long recordSize = 8 + static_cast<long>(sizeof(ScenarioResult));
  const long killAt = headerSize + 2 * recordSize;
  bool killed = false;
  for (int spin = 0; spin < 30000; ++spin) {
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) break;  // finished
    if (fileSize(journal) >= killAt) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
      killed = true;
      break;
    }
    ::usleep(1000);
  }
  if (!killed) {
    int status = 0;
    ::waitpid(child, &status, 0);  // reap if the loop broke via WNOHANG
  }

  // Resume over whatever the kill left behind.
  SweepRunner resumeRunner{demoOptions(journal, false)};
  const std::vector<ScenarioResult> resumed = resumeRunner.runCells(cells);

  bool ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!bitIdenticalIgnoringWall(golden[i], resumed[i])) {
      std::fprintf(stderr,
                   "selftest FAILED: cell %zu diverged after kill+resume "
                   "(delivered %llu vs %llu, events %llu vs %llu)\n",
                   i, static_cast<unsigned long long>(resumed[i].delivered),
                   static_cast<unsigned long long>(golden[i].delivered),
                   static_cast<unsigned long long>(resumed[i].eventsExecuted),
                   static_cast<unsigned long long>(golden[i].eventsExecuted));
      ok = false;
    }
  }
  std::remove(journal.c_str());
  // A kill mid-snapshot-write can leave a detectable .tmp beside a cell
  // snapshot; sweep away any such litter.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string snap = journal + ".cell" + std::to_string(i) + ".ckpt";
    std::remove(snap.c_str());
    std::remove((snap + ".tmp").c_str());
  }
  if (!ok) return 1;
  std::printf(
      "selftest ok: %s, resumed %zu/%zu cells from journal (%zu continued "
      "mid-cell), all 8 bit-identical to the uninterrupted sweep\n",
      killed ? "child SIGKILLed mid-sweep" : "child finished before the kill",
      resumeRunner.stats().cellsResumed, cells.size(),
      resumeRunner.stats().cellsRestored);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: sweep_resume <command> ...\n"
               "  selftest          fork, SIGKILL mid-sweep, resume, compare\n"
               "  run <journal>     run the demo sweep over <journal>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "selftest") return cmdSelftest();
    if (cmd == "run" && argc >= 3) return cmdRun(argv[2]);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
