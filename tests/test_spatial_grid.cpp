// Tests for the uniform-grid spatial index: radius queries and the all-pairs
// sweep against brute-force references, argument validation, degenerate
// inputs, and the headline property — buildUnitDiskGraph through the grid
// produces an edge set identical to the O(n^2) reference on random point
// sets (10 seeds), so every spanner/scenario built on top is unaffected by
// the indexing change.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/spatial_grid.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "spanner/udg.hpp"

namespace {

using glr::geom::dist2;
using glr::geom::Point2;
using glr::geom::SpatialGrid;
using glr::graph::Graph;
using glr::spanner::buildUnitDiskGraph;

std::vector<Point2> randomPoints(std::uint64_t seed, int n, double w,
                                 double h) {
  glr::sim::Rng rng{seed};
  std::vector<Point2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, w), rng.uniform(0, h)});
  }
  return pts;
}

std::vector<int> bruteQuery(const std::vector<Point2>& pts, Point2 c,
                            double r) {
  std::vector<int> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (dist2(pts[i], c) <= r * r) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(SpatialGrid, QueryRadiusMatchesBruteForce) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto pts = randomPoints(seed, 300, 1000, 400);
    const SpatialGrid grid{pts, 120.0};
    glr::sim::Rng rng{seed + 100};
    for (int q = 0; q < 50; ++q) {
      const Point2 c{rng.uniform(-50, 1050), rng.uniform(-50, 450)};
      auto got = grid.queryRadius(c, 120.0);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, bruteQuery(pts, c, 120.0)) << "seed=" << seed;
    }
  }
}

TEST(SpatialGrid, QueryRadiusLargerThanCellSize) {
  // queryRadius supports any radius; the scanned block just grows.
  const auto pts = randomPoints(5, 200, 500, 500);
  const SpatialGrid grid{pts, 50.0};
  const Point2 c{250, 250};
  auto got = grid.queryRadius(c, 400.0);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, bruteQuery(pts, c, 400.0));
}

TEST(SpatialGrid, QueryIsInclusiveAtTheBoundary) {
  const std::vector<Point2> pts{{0, 0}, {10, 0}, {10.001, 0}};
  const SpatialGrid grid{pts, 10.0};
  const auto got = grid.queryRadius({0, 0}, 10.0);
  EXPECT_EQ(std::set<int>(got.begin(), got.end()), (std::set<int>{0, 1}));
}

TEST(SpatialGrid, EmptyAndSinglePoint) {
  const SpatialGrid empty{{}, 10.0};
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.queryRadius({0, 0}, 10.0).empty());

  const SpatialGrid one{{{5, 5}}, 10.0};
  EXPECT_EQ(one.queryRadius({0, 0}, 10.0), (std::vector<int>{0}));
  EXPECT_TRUE(one.queryRadius({100, 100}, 10.0).empty());
}

TEST(SpatialGrid, CoincidentPoints) {
  const std::vector<Point2> pts{{1, 1}, {1, 1}, {1, 1}};
  const SpatialGrid grid{pts, 1.0};
  EXPECT_EQ(grid.queryRadius({1, 1}, 0.0).size(), 3u);
  std::vector<std::pair<int, int>> pairs;
  grid.forEachPairWithin(0.0, [&](int i, int j) { pairs.emplace_back(i, j); });
  EXPECT_EQ(pairs.size(), 3u);  // all three coincident pairs
}

TEST(SpatialGrid, ForEachPairMatchesBruteForceAndVisitsOnce) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const auto pts = randomPoints(seed, 250, 800, 800);
    const double r = 90.0;
    const SpatialGrid grid{pts, r};

    using PairSet = std::set<std::pair<int, int>>;
    PairSet want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        if (dist2(pts[i], pts[j]) <= r * r) {
          want.emplace(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }

    std::vector<std::pair<int, int>> got;
    grid.forEachPairWithin(r, [&](int i, int j) {
      EXPECT_LT(i, j);
      got.emplace_back(i, j);
    });
    EXPECT_EQ(got.size(), want.size()) << "seed=" << seed;  // no duplicates
    EXPECT_EQ(PairSet(got.begin(), got.end()), want);
  }
}

TEST(SpatialGrid, SparseInputCellCapStaysCorrect) {
  // Huge extent + tiny radius would want billions of fine cells; the cap
  // enlarges the cell size instead. Queries must stay exact.
  std::vector<Point2> pts;
  glr::sim::Rng rng{99};
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0, 1e7), rng.uniform(0, 1e7)});
  }
  const SpatialGrid grid{pts, 1.0};
  EXPECT_GE(grid.cellSize(), 1.0);
  for (int i = 0; i < 100; ++i) {
    auto got = grid.queryRadius(pts[static_cast<std::size_t>(i)], 1.0);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, bruteQuery(pts, pts[static_cast<std::size_t>(i)], 1.0));
  }
}

TEST(SpatialGrid, BadArgumentsThrow) {
  EXPECT_THROW(SpatialGrid({}, 0.0), std::invalid_argument);
  EXPECT_THROW(SpatialGrid({}, -1.0), std::invalid_argument);
  const SpatialGrid grid{{{0, 0}}, 10.0};
  EXPECT_THROW((void)grid.queryRadius({0, 0}, -1.0), std::invalid_argument);
  EXPECT_THROW(grid.forEachPairWithin(-1.0, [](int, int) {}),
               std::invalid_argument);
  EXPECT_THROW(grid.forEachPairWithin(10.5, [](int, int) {}),
               std::invalid_argument);
}

// The headline property: UDG built through the grid == brute-force UDG,
// edge-for-edge and adjacency-order-for-adjacency-order, on 10 random seeds.
class UdgGridEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(UdgGridEquivalence, IdenticalEdgeSetToBruteForce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto pts = randomPoints(seed, 120, 1500, 300);
  for (const double r : {50.0, 100.0, 250.0}) {
    Graph brute{pts.size()};
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        if (dist2(pts[i], pts[j]) <= r * r) {
          brute.addEdge(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
    const Graph grid = buildUnitDiskGraph(pts, r);
    ASSERT_EQ(grid.numEdges(), brute.numEdges()) << "r=" << r;
    EXPECT_EQ(grid.edges(), brute.edges()) << "r=" << r;
    for (std::size_t u = 0; u < pts.size(); ++u) {
      EXPECT_EQ(grid.neighbors(static_cast<int>(u)),
                brute.neighbors(static_cast<int>(u)))
          << "u=" << u << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgGridEquivalence, ::testing::Range(1, 11));

}  // namespace
