// Tests for the IMEP-like neighbor/location sensing service on a small
// simulated network: discovery, expiry, 2-hop knowledge and contact events.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/neighbor.hpp"
#include "net/world.hpp"
#include "phy/propagation.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using glr::geom::Point2;
using glr::mobility::StaticMobility;
using glr::net::NeighborService;
using glr::net::Packet;
using glr::net::World;
using glr::phy::RadioParams;
using glr::phy::TwoRayGround;
using glr::sim::Rng;
using glr::sim::Simulator;

/// Minimal agent that runs only the neighbor service.
class BeaconAgent final : public glr::net::Agent {
 public:
  BeaconAgent(World& world, int self, NeighborService::Params params)
      : service_(world.sim(), world.macOf(self), self,
                 [&world, self] { return world.positionOf(self); }, params,
                 Rng{500 + static_cast<std::uint64_t>(self)}) {}

  void start() override { service_.start(); }
  void onPacket(const Packet& p, int from) override {
    service_.handlePacket(p, from);
  }

  NeighborService& service() { return service_; }

 private:
  NeighborService service_;
};

struct Harness {
  Simulator sim;
  TwoRayGround model;
  std::unique_ptr<World> world;
  std::vector<BeaconAgent*> agents;

  explicit Harness(const std::vector<Point2>& positions, double range = 250.0,
                   NeighborService::Params params = {}) {
    RadioParams radio;
    radio.nominalRange = range;
    world = std::make_unique<World>(sim, model, radio, glr::mac::MacParams{});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      world->addNode(std::make_unique<StaticMobility>(positions[i]),
                     Rng{900 + i});
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
      auto agent = std::make_unique<BeaconAgent>(*world, static_cast<int>(i),
                                                 params);
      agents.push_back(agent.get());
      world->setAgent(static_cast<int>(i), std::move(agent));
    }
    world->start();
  }
};

TEST(Neighbor, DiscoversNodesInRange) {
  Harness h{{{0, 0}, {100, 0}, {600, 0}}};
  h.sim.run(3.0);
  EXPECT_EQ(h.agents[0]->service().currentNeighbors(), (std::vector<int>{1}));
  EXPECT_EQ(h.agents[1]->service().currentNeighbors(), (std::vector<int>{0}));
  EXPECT_TRUE(h.agents[2]->service().currentNeighbors().empty());
  EXPECT_TRUE(h.agents[0]->service().isNeighbor(1));
  EXPECT_FALSE(h.agents[0]->service().isNeighbor(2));
}

TEST(Neighbor, PositionsReported) {
  Harness h{{{0, 0}, {100, 0}}};
  h.sim.run(3.0);
  const auto pos = h.agents[0]->service().neighborPosition(1);
  ASSERT_TRUE(pos.has_value());
  EXPECT_NEAR(pos->x, 100.0, 1e-9);
  EXPECT_FALSE(h.agents[0]->service().neighborPosition(9).has_value());
}

TEST(Neighbor, TwoHopKnowledgeViaPiggyback) {
  // 0 -- 1 -- 2 in a line; 0 and 2 are out of range of each other but learn
  // about each other through 1's hello neighbor list.
  Harness h{{{0, 0}, {200, 0}, {400, 0}}};
  h.sim.run(4.0);
  const auto knowledge = h.agents[0]->service().knowledge();
  bool saw1 = false, saw2 = false;
  for (const auto& kn : knowledge) {
    if (kn.id == 1) {
      saw1 = true;
      EXPECT_TRUE(kn.oneHop);
    }
    if (kn.id == 2) {
      saw2 = true;
      EXPECT_FALSE(kn.oneHop);
      EXPECT_NEAR(kn.pos.x, 400.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
}

TEST(Neighbor, ContactCallbackFiresOncePerContact) {
  Harness h{{{0, 0}, {100, 0}}};
  int contacts = 0;
  h.agents[0]->service().setContactCallback([&](int id) {
    EXPECT_EQ(id, 1);
    ++contacts;
  });
  h.sim.run(10.0);
  EXPECT_EQ(contacts, 1);  // steady beacons refresh, not re-contact
}

TEST(Neighbor, LocationSamplesIncludeTwoHop) {
  Harness h{{{0, 0}, {200, 0}, {400, 0}}};
  std::vector<int> sampleIds;
  h.agents[0]->service().setLocationSampleCallback(
      [&](int id, Point2, glr::sim::SimTime) { sampleIds.push_back(id); });
  h.sim.run(4.0);
  EXPECT_TRUE(std::find(sampleIds.begin(), sampleIds.end(), 1) !=
              sampleIds.end());
  EXPECT_TRUE(std::find(sampleIds.begin(), sampleIds.end(), 2) !=
              sampleIds.end());
}

TEST(Neighbor, HelloTrafficCounted) {
  Harness h{{{0, 0}, {100, 0}}};
  h.sim.run(5.0);
  EXPECT_GE(h.agents[0]->service().hellosSent(), 5u);
  EXPECT_GE(h.agents[0]->service().hellosReceived(), 5u);
}

TEST(Neighbor, BadParamsThrow) {
  Simulator sim;
  TwoRayGround model;
  RadioParams radio;
  World world{sim, model, radio, glr::mac::MacParams{}};
  world.addNode(std::make_unique<StaticMobility>(Point2{0, 0}), Rng{1});
  NeighborService::Params bad;
  bad.helloInterval = 0.0;
  EXPECT_THROW(NeighborService(sim, world.macOf(0), 0,
                               [] { return Point2{0, 0}; }, bad, Rng{2}),
               std::invalid_argument);
}

}  // namespace
