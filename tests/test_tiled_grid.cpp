// Property tests for the incremental tiled spatial index: queries over the
// recorded point set must be bit-identical to a from-scratch SpatialGrid
// built over the same recorded positions — across every registered mobility
// model, under churn (remove/re-insert), and under partial (tile-like)
// refresh where recorded positions have mixed staleness. Plus the
// scenario-level pin: a full run with the tiled receiver index must
// reproduce the snapshot index's ScenarioResult bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "geometry/point.hpp"
#include "geometry/spatial_grid.hpp"
#include "geometry/tiled_grid.hpp"
#include "mobility/mobility.hpp"
#include "mobility/registry.hpp"
#include "sim/rng.hpp"

namespace {

using glr::geom::Point2;
using glr::geom::SpatialGrid;
using glr::geom::TiledSpatialGrid;
using glr::sim::Rng;

constexpr double kW = 1000.0;
constexpr double kH = 400.0;
constexpr double kRadius = 110.0;

/// Sorted ids within `radius` of `center` per the incremental grid.
std::vector<int> tiledQuery(const TiledSpatialGrid& grid, Point2 center,
                            double radius) {
  std::vector<int> out;
  grid.queryRadius(center, radius, out);
  std::sort(out.begin(), out.end());
  return out;
}

/// Sorted ids within `radius` of `center` per a from-scratch SpatialGrid
/// built over exactly the grid's live recorded positions.
std::vector<int> scratchQuery(const TiledSpatialGrid& grid, Point2 center,
                              double radius) {
  std::vector<int> ids;
  std::vector<Point2> pts;
  for (int i = 0; i < static_cast<int>(grid.capacity()); ++i) {
    if (!grid.contains(i)) continue;
    ids.push_back(i);
    pts.push_back(grid.recordedPos(i));
  }
  SpatialGrid fresh{std::move(pts), radius};
  std::vector<int> idx;
  fresh.queryRadius(center, radius, idx);
  std::vector<int> out;
  out.reserve(idx.size());
  for (int k : idx) out.push_back(ids[static_cast<std::size_t>(k)]);
  std::sort(out.begin(), out.end());
  return out;
}

void expectMatchesScratch(const TiledSpatialGrid& grid, Rng& rng,
                          const std::string& label) {
  for (int q = 0; q < 12; ++q) {
    const Point2 center{rng.uniform(-50.0, kW + 50.0),
                        rng.uniform(-50.0, kH + 50.0)};
    const double radius = rng.uniform(0.0, kRadius);
    EXPECT_EQ(tiledQuery(grid, center, radius),
              scratchQuery(grid, center, radius))
        << label << " center (" << center.x << ", " << center.y
        << ") radius " << radius;
  }
}

TEST(TiledSpatialGrid, MatchesScratchRebuildAcrossAllMobilityModelsAndChurn) {
  constexpr int kNodes = 70;
  for (const std::string& model : glr::mobility::mobilityModelNames()) {
    glr::mobility::ModelParams params;
    params.area = {kW, kH};
    params.speedMin = 0.5;
    params.speedMax = 20.0;
    params.pause = 0.5;
    Rng master{static_cast<std::uint64_t>(
        std::hash<std::string>{}(model) | 1u)};
    params.home = {kW / 2.0, kH / 2.0};

    std::vector<std::unique_ptr<glr::mobility::MobilityModel>> nodes;
    TiledSpatialGrid grid{{0.0, 0.0}, {kW, kH}, kRadius, kNodes};
    Rng placement = master.fork(1);
    for (int i = 0; i < kNodes; ++i) {
      const Point2 start = glr::mobility::randomPosition(params.area,
                                                         placement);
      nodes.push_back(glr::mobility::makeMobilityModel(
          model, params, start, master.fork(100 + i)));
      grid.update(i, start, 0.0);
    }

    Rng churnRng = master.fork(2);
    Rng queryRng = master.fork(3);
    std::vector<bool> up(kNodes, true);
    for (int step = 1; step <= 20; ++step) {
      const double t = 0.7 * step;
      // Churn: toggle a few nodes each step; down nodes leave the index,
      // returning nodes re-enter at their current position.
      for (int k = 0; k < 4; ++k) {
        const int i = static_cast<int>(churnRng.below(kNodes));
        up[static_cast<std::size_t>(i)] = !up[static_cast<std::size_t>(i)];
        if (!up[static_cast<std::size_t>(i)]) grid.remove(i);
      }
      // Partial refresh — only a staggered third of the up nodes re-record
      // each step (mirroring tile-wise refresh), so recorded positions have
      // mixed staleness when the comparison runs.
      for (int i = 0; i < kNodes; ++i) {
        if (!up[static_cast<std::size_t>(i)]) continue;
        const bool due = (i + step) % 3 == 0 || !grid.contains(i);
        if (due) {
          grid.update(i, nodes[static_cast<std::size_t>(i)]->positionAt(t),
                      t);
        }
      }
      expectMatchesScratch(grid, queryRng, model + " step " +
                                               std::to_string(step));
    }
  }
}

TEST(TiledSpatialGrid, HandlesPointsOutsideConstructionBounds) {
  TiledSpatialGrid grid{{0.0, 0.0}, {100.0, 100.0}, 25.0, 8};
  // Points beyond the bounds clamp into edge tiles but keep exact recorded
  // positions, so membership answers stay exact.
  grid.update(0, {-40.0, 50.0}, 0.0);
  grid.update(1, {140.0, 50.0}, 0.0);
  grid.update(2, {50.0, 50.0}, 0.0);
  std::vector<int> out;
  grid.queryRadius({-35.0, 50.0}, 10.0, out);
  EXPECT_EQ(out, (std::vector<int>{0}));
  out.clear();
  grid.queryRadius({50.0, 50.0}, 300.0, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(TiledSpatialGrid, RemoveAndRelinkKeepListsConsistent) {
  TiledSpatialGrid grid{{0.0, 0.0}, {100.0, 100.0}, 10.0, 16};
  Rng rng{99};
  std::vector<bool> in(16, false);
  for (int op = 0; op < 2000; ++op) {
    const int i = static_cast<int>(rng.below(16));
    if (rng.below(4) == 0 && in[static_cast<std::size_t>(i)]) {
      grid.remove(i);
      in[static_cast<std::size_t>(i)] = false;
    } else {
      grid.update(i, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                  static_cast<double>(op));
      in[static_cast<std::size_t>(i)] = true;
    }
    const auto live = static_cast<std::size_t>(
        std::count(in.begin(), in.end(), true));
    ASSERT_EQ(grid.size(), live);
    // Full-area query must see exactly the live set.
    std::vector<int> out;
    grid.queryRadius({50.0, 50.0}, 1000.0, out);
    ASSERT_EQ(out.size(), live);
  }
}

// Scenario-level pin: the activity-driven tiled index must reproduce the
// snapshot index bit for bit on a mid-size run with churn (mobility models
// here are pure functions of sim time; RandomWalk is excluded by the same
// FP-replay caveat the snapshot index documents).
TEST(TiledSpatialGrid, ScenarioResultsBitIdenticalToSnapshotIndex) {
  for (const char* model : {"waypoint", "gauss_markov"}) {
    glr::experiment::ScenarioConfig cfg;
    cfg.numNodes = 80;
    cfg.trafficNodes = 60;
    cfg.simTime = 60.0;
    cfg.numMessages = 40;
    cfg.seed = 11;
    cfg.mobility.model = model;
    cfg.churn = glr::experiment::churnPreset("moderate");
    const auto snapshot = glr::experiment::runScenario(cfg);
    cfg.spatialIndex = glr::experiment::SpatialIndexMode::kTiled;
    const auto tiled = glr::experiment::runScenario(cfg);
    EXPECT_TRUE(glr::experiment::bitIdenticalIgnoringWall(snapshot, tiled))
        << model;
    EXPECT_EQ(snapshot.eventsExecuted, tiled.eventsExecuted) << model;
    EXPECT_GT(snapshot.delivered, 0u) << model;
  }
}

}  // namespace
