// Tests for the overload-survival layer: the pluggable traffic-generator
// subsystem (experiment/traffic.*), the fault-injection layer (net/faults.*),
// and GLR's buffer-pressure custody controls.
//
// The anchor test pins the PR-2 kernel golden bit-identically with every new
// knob spelled out at its default — the refactor that moved the paper
// workload out of runScenario and threaded TrafficSpec / FaultSpec /
// custodyWatermark / congestionControl through the config must be invisible
// until a knob is turned.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "experiment/traffic.hpp"
#include "mobility/registry.hpp"
#include "net/faults.hpp"
#include "net/world.hpp"
#include "phy/propagation.hpp"
#include "routing/dtn_agent.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using glr::experiment::Protocol;
using glr::experiment::runScenario;
using glr::experiment::ScenarioConfig;
using glr::experiment::TrafficProcess;
using glr::experiment::TrafficSpec;
using glr::sim::Rng;
using glr::sim::Simulator;

// ---------------------------------------------------------------------------
// Differential golden: all new knobs at defaults == the pinned kernel run.
// ---------------------------------------------------------------------------

TEST(TrafficOverload, DefaultKnobsReproduceKernelGoldenBitIdentically) {
  // Spell out every overload-survival knob at its default; this must be the
  // exact scenario KernelRegression pins (golden from commit 2ba2f4a).
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.simTime = 400.0;
  cfg.numMessages = 200;
  cfg.radius = 100.0;
  cfg.seed = 7;
  cfg.traffic.model = "paper";
  cfg.traffic.rate = 4.0;
  cfg.traffic.maxMessages = 0;
  cfg.traffic.onMean = 10.0;
  cfg.traffic.offMean = 30.0;
  cfg.traffic.hotspotFraction = 0.1;
  cfg.traffic.hotspotWeight = 0.9;
  cfg.traffic.flashStart = 0.4;
  cfg.traffic.flashDuration = 0.1;
  cfg.traffic.flashMultiplier = 8.0;
  cfg.faults.enabled = false;
  cfg.faults.params = glr::net::FaultProcess::Params{};
  cfg.custodyWatermark = 0;
  cfg.congestionControl = false;
  const auto r = runScenario(cfg);

  EXPECT_EQ(r.created, 200u);
  EXPECT_EQ(r.delivered, 198u);
  EXPECT_EQ(r.deliveryRatio, 0.98999999999999999);
  EXPECT_EQ(r.avgLatency, 45.265223520228908);
  EXPECT_EQ(r.avgHops, 55.247474747474747);
  EXPECT_EQ(r.maxPeakStorage, 47.0);
  EXPECT_EQ(r.avgPeakStorage, 20.920000000000005);
  EXPECT_EQ(r.macDataTx, 130109u);
  EXPECT_EQ(r.collisions, 3044u);
  EXPECT_EQ(r.airTimeSeconds, 543.48595200198486);
  EXPECT_EQ(r.glrDataSent, 50662u);
  EXPECT_EQ(r.glrCustodyAcksSent, 50526u);
  EXPECT_EQ(r.eventsExecuted, 2385279u);
  // Mechanisms that are off leave their counters at zero.
  EXPECT_EQ(r.faultFrameDrops, 0u);
  EXPECT_EQ(r.custodyRefusals, 0u);
  EXPECT_EQ(r.bufferEvictions, 0u);

  // And the explicit-default run must be bit-identical to a plain
  // default-constructed config of the same scenario.
  ScenarioConfig defaults;
  defaults.protocol = Protocol::kGlr;
  defaults.simTime = 400.0;
  defaults.numMessages = 200;
  defaults.radius = 100.0;
  defaults.seed = 7;
  EXPECT_TRUE(
      glr::experiment::bitIdenticalIgnoringWall(r, runScenario(defaults)));
}

// ---------------------------------------------------------------------------
// TrafficProcess unit tests against a counting stub agent.
// ---------------------------------------------------------------------------

/// Records originations (and their times) without any network below.
class CountingAgent final : public glr::routing::DtnAgent {
 public:
  explicit CountingAgent(Simulator& sim, std::vector<double>* times)
      : sim_(sim), times_(times) {}
  void start() override {}
  void onPacket(const glr::net::Packet&, int) override {}
  void originate(int dstNode) override {
    ++originated;
    lastDst = dstNode;
    if (times_ != nullptr) times_->push_back(sim_.now());
  }
  [[nodiscard]] std::size_t storageUsed() const override { return 0; }
  [[nodiscard]] std::size_t storagePeak() const override { return 0; }

  std::uint64_t originated = 0;
  int lastDst = -1;

 private:
  Simulator& sim_;
  std::vector<double>* times_;
};

struct Harness {
  Simulator sim;
  std::vector<double> times;
  std::vector<std::unique_ptr<CountingAgent>> owned;
  std::vector<glr::routing::DtnAgent*> agents;

  explicit Harness(int n) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<CountingAgent>(sim, &times));
      agents.push_back(owned.back().get());
    }
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& a : owned) t += a->originated;
    return t;
  }
};

TrafficProcess::Params makeParams(const TrafficSpec& spec, int trafficNodes,
                                  double start = 10.0,
                                  double horizon = 110.0) {
  TrafficProcess::Params p;
  p.spec = spec;
  p.start = start;
  p.horizon = horizon;
  p.trafficNodes = trafficNodes;
  return p;
}

TEST(TrafficProcessTest, PoissonCountMatchesOfferedLoad) {
  Harness h{20};
  TrafficSpec spec;
  spec.model = "poisson";
  spec.rate = 50.0;  // 50 msg/s over a 100 s window -> ~5000
  TrafficProcess proc{h.sim, h.agents, makeParams(spec, 20), Rng{123}};
  proc.start();
  h.sim.run(200.0);
  EXPECT_GT(h.total(), 4200u);
  EXPECT_LT(h.total(), 5800u);
  EXPECT_EQ(proc.generated(), h.total());
  // Arrivals respect the [start, horizon) window.
  for (const double t : h.times) {
    EXPECT_GE(t, 10.0);
    EXPECT_LT(t, 110.0);
  }
}

TEST(TrafficProcessTest, MaxMessagesCapsEveryModel) {
  for (const char* model : {"poisson", "onoff", "hotspot", "flashcrowd"}) {
    SCOPED_TRACE(model);
    Harness h{12};
    TrafficSpec spec;
    spec.model = model;
    spec.rate = 80.0;  // would generate thousands without the cap
    spec.maxMessages = 100;
    TrafficProcess proc{h.sim, h.agents, makeParams(spec, 12), Rng{9}};
    proc.start();
    h.sim.run(200.0);
    EXPECT_EQ(proc.generated(), 100u);
    EXPECT_EQ(h.total(), 100u);
  }
}

TEST(TrafficProcessTest, DeterministicForSameSeedAcrossModels) {
  for (const char* model : {"poisson", "onoff", "hotspot", "flashcrowd"}) {
    SCOPED_TRACE(model);
    TrafficSpec spec;
    spec.model = model;
    spec.rate = 30.0;
    std::vector<std::vector<double>> runs;
    for (int rep = 0; rep < 2; ++rep) {
      Harness h{15};
      TrafficProcess proc{h.sim, h.agents, makeParams(spec, 15), Rng{77}};
      proc.start();
      h.sim.run(200.0);
      runs.push_back(h.times);
    }
    EXPECT_EQ(runs[0], runs[1]);  // identical arrival times, message for message

    Harness other{15};
    TrafficProcess proc{other.sim, other.agents, makeParams(spec, 15),
                        Rng{78}};
    proc.start();
    other.sim.run(200.0);
    EXPECT_NE(runs[0], other.times);  // a different seed actually differs
  }
}

TEST(TrafficProcessTest, OnOffLongRunRateMatchesOffer) {
  Harness h{20};
  TrafficSpec spec;
  spec.model = "onoff";
  spec.rate = 20.0;
  spec.onMean = 10.0;
  spec.offMean = 30.0;
  // Long window so per-source ON/OFF cycles average out.
  TrafficProcess proc{h.sim, h.agents, makeParams(spec, 20, 10.0, 810.0),
                      Rng{5}};
  proc.start();
  h.sim.run(1000.0);
  const double expected = 20.0 * 800.0;
  EXPECT_GT(static_cast<double>(h.total()), 0.6 * expected);
  EXPECT_LT(static_cast<double>(h.total()), 1.4 * expected);
}

TEST(TrafficProcessTest, HotspotSkewsSenders) {
  Harness h{20};
  TrafficSpec spec;
  spec.model = "hotspot";
  spec.rate = 40.0;
  spec.hotspotFraction = 0.1;  // 2 hot senders out of 20
  spec.hotspotWeight = 0.9;
  TrafficProcess proc{h.sim, h.agents, makeParams(spec, 20), Rng{31}};
  proc.start();
  h.sim.run(200.0);
  std::uint64_t hot = h.owned[0]->originated + h.owned[1]->originated;
  // The two hot senders carry ~90% + their uniform share of the rest.
  EXPECT_GT(static_cast<double>(hot),
            0.75 * static_cast<double>(h.total()));
}

TEST(TrafficProcessTest, FlashCrowdSpikesInsideItsWindow) {
  Harness h{20};
  TrafficSpec spec;
  spec.model = "flashcrowd";
  spec.rate = 10.0;
  spec.flashStart = 0.4;     // window [10, 110): flash = [50, 60)
  spec.flashDuration = 0.1;
  spec.flashMultiplier = 8.0;
  TrafficProcess proc{h.sim, h.agents, makeParams(spec, 20), Rng{64}};
  proc.start();
  h.sim.run(200.0);
  double inFlash = 0;
  double outside = 0;
  for (const double t : h.times) {
    if (t >= 50.0 && t < 60.0) {
      inFlash += 1;
    } else {
      outside += 1;
    }
  }
  const double flashRate = inFlash / 10.0;
  const double baseRate = outside / 90.0;
  EXPECT_GT(flashRate, 3.0 * baseRate);  // ~8x in expectation
  EXPECT_GT(proc.thinned(), 0u);  // thinning actually rejected candidates
}

TEST(TrafficProcessTest, ValidationRejectsBadSpecs) {
  Harness h{10};
  const auto make = [&](const TrafficSpec& spec) {
    TrafficProcess proc{h.sim, h.agents, makeParams(spec, 10), Rng{1}};
  };
  TrafficSpec spec;
  spec.model = "does_not_exist";
  EXPECT_THROW(make(spec), std::invalid_argument);
  spec.model = "poisson";
  spec.rate = 0.0;
  EXPECT_THROW(make(spec), std::invalid_argument);
  spec.rate = 4.0;
  spec.model = "onoff";
  spec.onMean = 0.0;
  EXPECT_THROW(make(spec), std::invalid_argument);
  spec.onMean = 10.0;
  spec.model = "hotspot";
  spec.hotspotFraction = 0.0;
  EXPECT_THROW(make(spec), std::invalid_argument);
  spec.hotspotFraction = 0.1;
  spec.model = "flashcrowd";
  spec.flashStart = 0.7;
  spec.flashDuration = 0.5;  // start + duration > 1
  EXPECT_THROW(make(spec), std::invalid_argument);

  // Bad windows / populations.
  spec = TrafficSpec{};
  spec.model = "poisson";
  EXPECT_THROW(
      (TrafficProcess{h.sim, h.agents, makeParams(spec, 1), Rng{1}}),
      std::invalid_argument);
  EXPECT_THROW(
      (TrafficProcess{h.sim, h.agents, makeParams(spec, 10, 50.0, 50.0),
                      Rng{1}}),
      std::invalid_argument);

  // An unknown model is also rejected end-to-end by the scenario driver.
  ScenarioConfig cfg;
  cfg.numNodes = 12;
  cfg.trafficNodes = 10;
  cfg.simTime = 30.0;
  cfg.traffic.model = "typo";
  EXPECT_THROW((void)runScenario(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end overload behavior: watermark custody, congestion control.
// ---------------------------------------------------------------------------

ScenarioConfig saturatedGlrConfig() {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.numNodes = 20;
  cfg.trafficNodes = 18;
  cfg.radius = 150.0;
  cfg.simTime = 120.0;
  cfg.storageLimit = 16;
  cfg.queueLimit = 40;
  cfg.traffic.model = "poisson";
  cfg.traffic.rate = 30.0;  // far past what this world can carry
  cfg.seed = 11;
  return cfg;
}

TEST(OverloadBehavior, WatermarkRefusesCustodyUnderSaturation) {
  auto cfg = saturatedGlrConfig();
  cfg.custodyWatermark = 6;
  const auto r = runScenario(cfg);
  EXPECT_GT(r.custodyRefusals, 0u);  // the watermark actually bites
  EXPECT_GT(r.delivered, 0u);       // and the network still delivers
  // Refusals never exceed received custody transfers.
  EXPECT_LE(r.glrCustodyAcksSent + r.custodyRefusals, r.glrDataReceived);
}

TEST(OverloadBehavior, WatermarkOffNeverRefuses) {
  const auto r = runScenario(saturatedGlrConfig());
  EXPECT_EQ(r.custodyRefusals, 0u);
}

TEST(OverloadBehavior, CongestionControlShapesASaturatedRun) {
  auto cfg = saturatedGlrConfig();
  const auto fixedWindow = runScenario(cfg);
  cfg.congestionControl = true;
  const auto aimd = runScenario(cfg);
  // The AIMD window replaces the fixed custody window, which must be
  // observable under saturation; both variants keep delivering.
  EXPECT_NE(fixedWindow.eventsExecuted, aimd.eventsExecuted);
  EXPECT_GT(fixedWindow.delivered, 0u);
  EXPECT_GT(aimd.delivered, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection end-to-end.
// ---------------------------------------------------------------------------

TEST(FaultInjection, FullCorruptionKillsDeliveryAndIsCounted) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kEpidemic;
  cfg.numNodes = 16;
  cfg.trafficNodes = 14;
  cfg.numMessages = 30;
  cfg.radius = 150.0;
  cfg.simTime = 120.0;
  cfg.seed = 3;
  cfg.faults.enabled = true;
  cfg.faults.params.corruptProb = 1.0;  // every delivery fails its checksum
  const auto r = runScenario(cfg);
  EXPECT_GT(r.created, 0u);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_GT(r.faultFrameDrops, 0u);
}

TEST(FaultInjection, BurstLossDegradesButDoesNotKillDelivery) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kEpidemic;
  cfg.numNodes = 16;
  cfg.trafficNodes = 14;
  cfg.numMessages = 30;
  cfg.radius = 150.0;
  cfg.simTime = 180.0;
  cfg.seed = 3;
  const auto clean = runScenario(cfg);
  cfg.faults.enabled = true;
  cfg.faults.params.burstRate = 0.1;
  cfg.faults.params.burstMean = 10.0;
  cfg.faults.params.lossProb = 0.5;
  const auto lossy = runScenario(cfg);
  EXPECT_GT(lossy.faultFrameDrops, 0u);
  EXPECT_GT(lossy.delivered, 0u);  // DTN retries ride out the bursts
  EXPECT_LE(lossy.delivered, clean.delivered);
}

TEST(FaultInjection, StallsGateRadiosLikeChurn) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.numNodes = 16;
  cfg.trafficNodes = 14;
  cfg.numMessages = 30;
  cfg.radius = 150.0;
  cfg.simTime = 180.0;
  cfg.seed = 5;
  cfg.faults.enabled = true;
  cfg.faults.params.stallRate = 0.2;
  cfg.faults.params.stallMean = 8.0;
  const auto r = runScenario(cfg);
  // Stalled radios refuse sends through the same counted gate churn uses.
  EXPECT_GT(r.macRadioDownDrops, 0u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(FaultInjection, BadParamsThrow) {
  glr::sim::Simulator sim;
  glr::phy::TwoRayGround model;
  glr::phy::RadioParams radio;
  glr::net::World world{sim, model, radio, glr::mac::MacParams{}};
  world.addNode(
      std::make_unique<glr::mobility::StaticMobility>(glr::geom::Point2{}),
      Rng{1});
  glr::net::FaultProcess::Params p;
  p.lossProb = 1.5;
  EXPECT_THROW((glr::net::FaultProcess{world, p, Rng{1}}),
               std::invalid_argument);
  p = {};
  p.burstRate = -1.0;
  EXPECT_THROW((glr::net::FaultProcess{world, p, Rng{1}}),
               std::invalid_argument);
  p = {};
  p.stallRate = 1.0;
  p.stallMean = 0.0;
  EXPECT_THROW((glr::net::FaultProcess{world, p, Rng{1}}),
               std::invalid_argument);
}

}  // namespace
