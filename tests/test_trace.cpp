// Flight-recorder tests (src/trace/): the round-trip differential that
// pins the recorder's losslessness, the structural error paths of the
// reader, and the TracingOff golden differential that pins tracing as
// default-off and invisible.
//
// The round-trip is the load-bearing test: a mid-size GLR scenario with
// every event source active (custody, watermark refusals, evictions, TTL
// expiries, adversary-driven suspicion) is recorded, the file replayed, and
// the reconstructed totals must equal the live ScenarioResult *exactly* —
// the recorder never drops a record (it back-pressures instead), so replay
// is not a sample, it is the run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "sim/simulator.hpp"
#include "trace/reader.hpp"
#include "trace/recorder.hpp"

namespace {

using glr::experiment::Protocol;
using glr::experiment::runScenario;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;
using glr::trace::EventType;
using glr::trace::Record;

/// Unique-ish temp path under the build dir (tests run from build/).
std::string tempPath(const char* name) {
  return std::string("test_trace_") + name + ".bin";
}

struct PathGuard {
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { std::remove(path.c_str()); }
  std::string path;
};

/// Mid-size GLR scenario with every trace event source active: bounded
/// storage (evictions), TTL (expiries), custody watermark (refusals), and
/// misbehaving nodes + recovery (suspicions, recovery-spray sends).
ScenarioConfig tracedScenario() {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.numNodes = 40;
  cfg.trafficNodes = 35;
  cfg.simTime = 200.0;
  cfg.numMessages = 250;
  cfg.radius = 100.0;
  cfg.seed = 11;
  cfg.storageLimit = 12;
  cfg.messageTtl = 80.0;
  cfg.custodyWatermark = 11;
  cfg.glrRecovery = true;
  cfg.faults.enabled = true;
  cfg.faults.params.adversary.blackholeFraction = 0.15;
  return cfg;
}

// ---------------------------------------------------------------------------
// Round-trip differential: replayed totals == live ScenarioResult, exactly.
// ---------------------------------------------------------------------------

TEST(TraceRoundTrip, ReplayedTotalsEqualLiveResultExactly) {
  const PathGuard guard{tempPath("roundtrip")};
  ScenarioConfig cfg = tracedScenario();
  cfg.tracePath = guard.path;
  const ScenarioResult r = runScenario(cfg);

  const std::vector<Record> records = glr::trace::readTraceFile(guard.path);
  EXPECT_EQ(records.size(), r.traceEventsRecorded);
  const auto totals = glr::trace::replayTotals(records);

  EXPECT_EQ(totals.created, r.created);
  EXPECT_EQ(totals.delivered, r.delivered);
  EXPECT_EQ(totals.duplicates, r.duplicateDeliveries);
  EXPECT_EQ(totals.sends, r.glrDataSent);
  EXPECT_EQ(totals.custodyAccepts, r.glrCustodyAcksSent);
  EXPECT_EQ(totals.custodyRefusals, r.custodyRefusals);
  EXPECT_EQ(totals.drops, r.bufferEvictions);
  EXPECT_EQ(totals.expiries, r.expiredDrops);
  EXPECT_EQ(totals.suspicions, r.glrSuspicionsRaised);

  // The scenario must actually exercise every event source, or the
  // equalities above are vacuous.
  EXPECT_GT(totals.created, 0u);
  EXPECT_GT(totals.delivered, 0u);
  EXPECT_GT(totals.sends, 0u);
  EXPECT_GT(totals.custodyAccepts, 0u);
  EXPECT_GT(totals.drops, 0u);
  EXPECT_GT(totals.expiries, 0u);
  EXPECT_GT(totals.suspicions, 0u);

  // Records are stamped at the recording event's sim time, so they are
  // nondecreasing in file order and inside the horizon.
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_LE(records[i - 1].time, records[i].time) << "at record " << i;
  }
  EXPECT_LE(records.back().time, cfg.simTime);

  // Latency reconstruction: kCreated is recorded in the same simulator
  // event that stamps Message::created, and kDelivered in the same event
  // as the metrics update, so creation-to-delivery spans rebuilt from the
  // trace are bit-exact — summed in file order (== delivery order) they
  // reproduce avgLatency to the last bit, and their exact quantiles bound
  // the sketch estimates (ISSUE acceptance: within 1% relative).
  std::unordered_map<std::uint64_t, double> createdAt;
  std::vector<double> latencies;
  const auto keyOf = [](const Record& rec) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                rec.msgSrc))
            << 32) |
           static_cast<std::uint32_t>(rec.msgSeq);
  };
  for (const Record& rec : records) {
    if (rec.type == static_cast<std::uint8_t>(EventType::kCreated)) {
      createdAt.emplace(keyOf(rec), rec.time);
    } else if (rec.type ==
               static_cast<std::uint8_t>(EventType::kDelivered)) {
      const auto it = createdAt.find(keyOf(rec));
      ASSERT_NE(it, createdAt.end()) << "delivery without creation";
      latencies.push_back(rec.time - it->second);
    }
  }
  ASSERT_EQ(latencies.size(), r.delivered);
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  EXPECT_DOUBLE_EQ(sum / static_cast<double>(latencies.size()),
                   r.avgLatency);

  std::sort(latencies.begin(), latencies.end());
  const auto exactQ = [&](double q) {
    const double target = q * static_cast<double>(latencies.size());
    if (target <= 0.5) return latencies.front();
    if (target >= static_cast<double>(latencies.size()) - 0.5) {
      return latencies.back();
    }
    const auto lo = static_cast<std::size_t>(target - 0.5);
    const double frac = (target - 0.5) - static_cast<double>(lo);
    return latencies[lo] + frac * (latencies[lo + 1] - latencies[lo]);
  };
  EXPECT_NEAR(r.latencyP50, exactQ(0.50), 0.01 * exactQ(0.50));
  EXPECT_NEAR(r.latencyP90, exactQ(0.90), 0.01 * exactQ(0.90));
  EXPECT_NEAR(r.latencyP99, exactQ(0.99), 0.01 * exactQ(0.99));
  EXPECT_EQ(r.latencyMin, latencies.front());
  EXPECT_EQ(r.latencyMax, latencies.back());
}

TEST(TraceRoundTrip, TracedRunResultsMatchUntracedBitIdentically) {
  // Tracing observes; it must not perturb. Same scenario with and without
  // the recorder: every result field except traceEventsRecorded identical.
  const PathGuard guard{tempPath("perturb")};
  ScenarioConfig traced = tracedScenario();
  traced.tracePath = guard.path;
  ScenarioResult a = runScenario(traced);
  const ScenarioResult b = runScenario(tracedScenario());
  EXPECT_GT(a.traceEventsRecorded, 0u);
  EXPECT_EQ(b.traceEventsRecorded, 0u);
  a.traceEventsRecorded = 0;  // the only legitimate difference
  EXPECT_TRUE(glr::experiment::bitIdenticalIgnoringWall(a, b));
}

TEST(TraceRoundTrip, MessageTimelineIsCoherent) {
  const PathGuard guard{tempPath("timeline")};
  ScenarioConfig cfg = tracedScenario();
  cfg.tracePath = guard.path;
  (void)runScenario(cfg);
  const auto records = glr::trace::readTraceFile(guard.path);

  // Pick the first delivered message and replay its hop timeline.
  std::int32_t src = -1;
  std::int32_t seq = -1;
  for (const Record& rec : records) {
    if (rec.type == static_cast<std::uint8_t>(EventType::kDelivered)) {
      src = rec.msgSrc;
      seq = rec.msgSeq;
      break;
    }
  }
  ASSERT_GE(src, 0);
  const auto timeline = glr::trace::messageTimeline(records, src, seq);
  ASSERT_FALSE(timeline.empty());
  // Starts with creation at the origin, contains at least one send, and
  // every event names this message.
  EXPECT_EQ(timeline.front().type,
            static_cast<std::uint8_t>(EventType::kCreated));
  EXPECT_EQ(timeline.front().node, src);
  bool sawSend = false;
  bool sawDelivery = false;
  for (const Record& rec : timeline) {
    EXPECT_EQ(rec.msgSrc, src);
    EXPECT_EQ(rec.msgSeq, seq);
    sawSend |= rec.type == static_cast<std::uint8_t>(EventType::kSend);
    sawDelivery |=
        rec.type == static_cast<std::uint8_t>(EventType::kDelivered);
  }
  EXPECT_TRUE(sawSend);
  EXPECT_TRUE(sawDelivery);
}

// ---------------------------------------------------------------------------
// Structural error paths: truncation and corruption are loud, not silent.
// ---------------------------------------------------------------------------

/// Writes a small valid trace via the real recorder and returns its bytes.
std::vector<unsigned char> smallValidTrace(const std::string& path) {
  glr::sim::Simulator sim;
  glr::trace::Recorder rec(sim, path, 64);
  rec.record(EventType::kCreated, 0, 9, 0, 0);
  rec.record(EventType::kSend, 0, 1, 0, 0);
  rec.record(EventType::kSend, 1, 9, 0, 0, 1);
  rec.record(EventType::kDelivered, 9, 0, 0, 0, 2);
  rec.close();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) {
    bytes.push_back(static_cast<unsigned char>(c));
  }
  std::fclose(f);
  return bytes;
}

void writeBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(TraceErrors, ValidFileReadsBack) {
  const PathGuard guard{tempPath("valid")};
  const auto bytes = smallValidTrace(guard.path);
  ASSERT_FALSE(bytes.empty());
  const auto records = glr::trace::readTraceFile(guard.path);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(glr::trace::replayTotals(records).sends, 2u);
}

TEST(TraceErrors, TruncatedFileThrows) {
  const PathGuard guard{tempPath("truncated")};
  auto bytes = smallValidTrace(guard.path);
  // Drop the last record (and a bit more, landing mid-record).
  bytes.resize(bytes.size() - 40);
  writeBytes(guard.path, bytes);
  EXPECT_THROW((void)glr::trace::readTraceFile(guard.path),
               std::runtime_error);
}

TEST(TraceErrors, UnfinalizedHeaderThrows) {
  const PathGuard guard{tempPath("unfinalized")};
  auto bytes = smallValidTrace(guard.path);
  // Restore the live-writer sentinel count (~0) at header offset 8.
  for (int i = 0; i < 8; ++i) bytes[8 + i] = 0xFF;
  writeBytes(guard.path, bytes);
  EXPECT_THROW((void)glr::trace::readTraceFile(guard.path),
               std::runtime_error);
}

TEST(TraceErrors, CorruptLengthPrefixThrows) {
  const PathGuard guard{tempPath("corrupt-len")};
  auto bytes = smallValidTrace(guard.path);
  // Second record's length prefix: header(24) + rec0(4 + 32) = offset 60.
  bytes[60] = 0x99;
  writeBytes(guard.path, bytes);
  EXPECT_THROW((void)glr::trace::readTraceFile(guard.path),
               std::runtime_error);
}

TEST(TraceErrors, CorruptEventTypeThrows) {
  const PathGuard guard{tempPath("corrupt-type")};
  auto bytes = smallValidTrace(guard.path);
  // First record starts at 28; type is at offset 24 within the record
  // (time 8 + four int32s 16 = 24, then aux 2, then type).
  bytes[28 + 26] = 0xEE;
  writeBytes(guard.path, bytes);
  EXPECT_THROW((void)glr::trace::readTraceFile(guard.path),
               std::runtime_error);
}

TEST(TraceErrors, BadMagicThrows) {
  const PathGuard guard{tempPath("magic")};
  auto bytes = smallValidTrace(guard.path);
  bytes[0] = 'X';
  writeBytes(guard.path, bytes);
  EXPECT_THROW((void)glr::trace::readTraceFile(guard.path),
               std::runtime_error);
}

TEST(TraceErrors, TrailingGarbageThrows) {
  const PathGuard guard{tempPath("trailing")};
  auto bytes = smallValidTrace(guard.path);
  bytes.push_back(0xAB);
  writeBytes(guard.path, bytes);
  EXPECT_THROW((void)glr::trace::readTraceFile(guard.path),
               std::runtime_error);
}

TEST(TraceErrors, MissingFileThrows) {
  EXPECT_THROW((void)glr::trace::readTraceFile("no_such_trace_file.bin"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// TracingOff golden differential (PR 7/8 pattern): the observability knobs
// at their defaults reproduce the pinned kernel golden bit-identically.
// ---------------------------------------------------------------------------

TEST(TracingOff, DefaultKnobsReproduceKernelGoldenBitIdentically) {
  // Spell out every observability knob at its default; this must be the
  // exact scenario KernelRegression pins (golden from commit 2ba2f4a).
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.simTime = 400.0;
  cfg.numMessages = 200;
  cfg.radius = 100.0;
  cfg.seed = 7;
  cfg.tracePath.clear();
  cfg.traceRingCapacity = 1 << 16;
  cfg.nodeCountersPath.clear();
  const ScenarioResult r = runScenario(cfg);

  EXPECT_EQ(r.created, 200u);
  EXPECT_EQ(r.delivered, 198u);
  EXPECT_EQ(r.deliveryRatio, 0.98999999999999999);
  EXPECT_EQ(r.avgLatency, 45.265223520228908);
  EXPECT_EQ(r.avgHops, 55.247474747474747);
  EXPECT_EQ(r.maxPeakStorage, 47.0);
  EXPECT_EQ(r.avgPeakStorage, 20.920000000000005);
  EXPECT_EQ(r.macDataTx, 130109u);
  EXPECT_EQ(r.collisions, 3044u);
  EXPECT_EQ(r.airTimeSeconds, 543.48595200198486);
  EXPECT_EQ(r.glrDataSent, 50662u);
  EXPECT_EQ(r.glrCustodyAcksSent, 50526u);
  EXPECT_EQ(r.eventsExecuted, 2385279u);
  // Mechanisms that are off leave their counters at zero.
  EXPECT_EQ(r.traceEventsRecorded, 0u);

  // The latency sketch is always on (it replaced the stored state), so its
  // fields are live even with tracing off — and internally consistent.
  EXPECT_GT(r.latencyP50, 0.0);
  EXPECT_GE(r.latencyP90, r.latencyP50);
  EXPECT_GE(r.latencyP99, r.latencyP90);
  EXPECT_GE(r.latencyMax, r.latencyP99);
  EXPECT_GE(r.latencyP50, r.latencyMin);
  EXPECT_GT(r.latencyStddev, 0.0);

  // And the explicit-default run must be bit-identical to a plain
  // default-constructed config of the same scenario.
  ScenarioConfig defaults;
  defaults.protocol = Protocol::kGlr;
  defaults.simTime = 400.0;
  defaults.numMessages = 200;
  defaults.radius = 100.0;
  defaults.seed = 7;
  EXPECT_TRUE(
      glr::experiment::bitIdenticalIgnoringWall(r, runScenario(defaults)));
}

// ---------------------------------------------------------------------------
// Per-node counter export rides the same wiring; smoke its formats here.
// ---------------------------------------------------------------------------

TEST(NodeExport, WritesJsonAndCsv) {
  const PathGuard json{std::string("test_trace_nodes.json")};
  const PathGuard csv{std::string("test_trace_nodes.csv")};
  ScenarioConfig cfg;
  cfg.numNodes = 12;
  cfg.trafficNodes = 10;
  cfg.simTime = 60.0;
  cfg.numMessages = 20;
  cfg.radius = 120.0;
  cfg.seed = 3;
  cfg.nodeCountersPath = json.path;
  (void)runScenario(cfg);
  cfg.nodeCountersPath = csv.path;
  const ScenarioResult r = runScenario(cfg);

  // CSV: header + one row per node; the dataSent column sums to the
  // scenario total.
  std::FILE* f = std::fopen(csv.path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[2048];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line).rfind("node,", 0), 0u);
  int rows = 0;
  std::uint64_t dataSentSum = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++rows;
    // dataSent is column 11 (0-based 10).
    std::string s{line};
    std::size_t pos = 0;
    for (int c = 0; c < 10; ++c) pos = s.find(',', pos) + 1;
    dataSentSum += std::strtoull(s.c_str() + pos, nullptr, 10);
  }
  std::fclose(f);
  EXPECT_EQ(rows, cfg.numNodes);
  EXPECT_EQ(dataSentSum, r.glrDataSent);

  // JSON: parses far enough to count rows.
  f = std::fopen(json.path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  int jsonRows = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::string(line).find("\"node\":") != std::string::npos) ++jsonRows;
  }
  std::fclose(f);
  EXPECT_EQ(jsonRows, cfg.numNodes);
}

TEST(NodeExport, RejectsUnknownExtension) {
  ScenarioConfig cfg;
  cfg.numNodes = 5;
  cfg.trafficNodes = 4;
  cfg.simTime = 5.0;
  cfg.numMessages = 2;
  cfg.nodeCountersPath = "nodes.xml";
  EXPECT_THROW((void)runScenario(cfg), std::invalid_argument);
}

TEST(NodeExport, UnwritablePathFailsLoudlyWithPathAndErrno) {
  // An export that cannot be written must throw naming the path and the OS
  // error — a run that "succeeds" while silently dropping its artifact is a
  // debugging trap.
  ScenarioConfig cfg;
  cfg.numNodes = 5;
  cfg.trafficNodes = 4;
  cfg.simTime = 5.0;
  cfg.numMessages = 2;
  cfg.nodeCountersPath =
      testing::TempDir() + "no_such_export_dir/nodes.csv";
  try {
    (void)runScenario(cfg);
    FAIL() << "unwritable export path not detected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(cfg.nodeCountersPath), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

}  // namespace
