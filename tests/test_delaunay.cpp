// Tests for the Bowyer–Watson Delaunay triangulation: correctness of the
// empty-circumcircle property, degenerate inputs, duplicates, and structural
// invariants (Euler's formula, hull edges present).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "geometry/delaunay.hpp"
#include "geometry/point.hpp"
#include "geometry/predicates.hpp"
#include "sim/rng.hpp"

namespace {

using glr::geom::convexHull;
using glr::geom::Delaunay;
using glr::geom::incircle;
using glr::geom::orient2d;
using glr::geom::Point2;

// Checks the defining property: no input point strictly inside any
// triangle's circumcircle.
void expectEmptyCircumcircles(const Delaunay& dt,
                              const std::vector<Point2>& pts) {
  for (const auto& tri : dt.triangles()) {
    const Point2 a = pts[tri[0]], b = pts[tri[1]], c = pts[tri[2]];
    ASSERT_GT(orient2d(a, b, c), 0.0) << "triangle must be CCW";
    for (std::size_t p = 0; p < pts.size(); ++p) {
      if (static_cast<int>(p) == tri[0] || static_cast<int>(p) == tri[1] ||
          static_cast<int>(p) == tri[2]) {
        continue;
      }
      EXPECT_LE(incircle(a, b, c, pts[p]), 0.0)
          << "point " << p << " violates empty circumcircle";
    }
  }
}

TEST(Delaunay, EmptyAndSingle) {
  const Delaunay d0 = Delaunay::build({});
  EXPECT_TRUE(d0.edges().empty());
  EXPECT_TRUE(d0.triangles().empty());

  const Delaunay d1 = Delaunay::build({{1, 2}});
  EXPECT_TRUE(d1.edges().empty());
}

TEST(Delaunay, TwoPointsMakeOneEdge) {
  const Delaunay d = Delaunay::build({{0, 0}, {3, 4}});
  ASSERT_EQ(d.edges().size(), 1u);
  EXPECT_EQ(d.edges()[0], std::make_pair(0, 1));
  EXPECT_TRUE(d.hasEdge(0, 1));
  EXPECT_TRUE(d.hasEdge(1, 0));
}

TEST(Delaunay, TriangleIsItself) {
  const std::vector<Point2> pts{{0, 0}, {4, 0}, {2, 3}};
  const Delaunay d = Delaunay::build(pts);
  EXPECT_EQ(d.triangles().size(), 1u);
  EXPECT_EQ(d.edges().size(), 3u);
  expectEmptyCircumcircles(d, pts);
}

TEST(Delaunay, SquareHasDiagonal) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const Delaunay d = Delaunay::build(pts);
  EXPECT_EQ(d.triangles().size(), 2u);
  EXPECT_EQ(d.edges().size(), 5u);  // 4 sides + 1 diagonal
  // Exactly one diagonal (cocircular: either is valid).
  const bool d1 = d.hasEdge(0, 2);
  const bool d2 = d.hasEdge(1, 3);
  EXPECT_TRUE(d1 != d2);
  expectEmptyCircumcircles(d, pts);
}

TEST(Delaunay, CollinearPointsFormPath) {
  // No triangles exist; the triangulation's real edges must form the path
  // of consecutive points along the line.
  const std::vector<Point2> pts{{0, 0}, {3, 0}, {1, 0}, {2, 0}, {5, 0}};
  const Delaunay d = Delaunay::build(pts);
  EXPECT_TRUE(d.triangles().empty());
  const std::set<std::pair<int, int>> want{{0, 2}, {2, 3}, {1, 3}, {1, 4}};
  const std::set<std::pair<int, int>> got(d.edges().begin(), d.edges().end());
  EXPECT_EQ(got, want);
}

TEST(Delaunay, DuplicatePointsMerged) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {0, 0}, {0.5, 1}};
  const Delaunay d = Delaunay::build(pts);
  EXPECT_EQ(d.canonicalIndex(2), 0);
  EXPECT_EQ(d.canonicalIndex(0), 0);
  EXPECT_EQ(d.canonicalIndex(1), 1);
  // Triangulation of the three distinct points.
  EXPECT_EQ(d.triangles().size(), 1u);
}

TEST(Delaunay, GridIsHandledExactly) {
  // Regular grids maximize cocircular degeneracies.
  std::vector<Point2> pts;
  for (int x = 0; x < 5; ++x)
    for (int y = 0; y < 5; ++y)
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
  const Delaunay d = Delaunay::build(pts);
  expectEmptyCircumcircles(d, pts);
  // Euler: for n points with h on the hull: triangles = 2n - h - 2,
  // edges = 3n - h - 3. Hull of the 5x5 grid has 16 boundary points, but
  // collinear hull points are interior to hull edges; for triangulation
  // counting, h counts all points on the boundary = 16.
  EXPECT_EQ(d.triangles().size(), 2u * 25 - 16 - 2);
  EXPECT_EQ(d.edges().size(), 3u * 25 - 16 - 3);
}

TEST(Delaunay, HullEdgesArePresent) {
  glr::sim::Rng rng{7};
  std::vector<Point2> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  const Delaunay d = Delaunay::build(pts);
  const auto hull = convexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const int u = hull[i];
    const int v = hull[(i + 1) % hull.size()];
    EXPECT_TRUE(d.hasEdge(u, v)) << "hull edge " << u << "-" << v;
  }
}

TEST(Delaunay, NeighborsConsistentWithEdges) {
  glr::sim::Rng rng{11};
  std::vector<Point2> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  const Delaunay d = Delaunay::build(pts);
  std::size_t degSum = 0;
  for (int v = 0; v < 40; ++v) {
    for (int u : d.neighborsOf(v)) {
      EXPECT_TRUE(d.hasEdge(v, u));
    }
    degSum += d.neighborsOf(v).size();
  }
  EXPECT_EQ(degSum, 2 * d.edges().size());
}

class DelaunayRandom : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayRandom, EmptyCircumcirclePropertyHolds) {
  glr::sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const int n = 10 + static_cast<int>(rng.below(70));
  std::vector<Point2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 500), rng.uniform(0, 500)});
  }
  const Delaunay d = Delaunay::build(pts);
  expectEmptyCircumcircles(d, pts);

  // Euler sanity: with h hull points (general position assumed at random),
  // triangles = 2n - h - 2 and edges = 3n - h - 3.
  const auto hull = convexHull(pts);
  const std::size_t h = hull.size();
  EXPECT_EQ(d.triangles().size(), 2 * static_cast<std::size_t>(n) - h - 2);
  EXPECT_EQ(d.edges().size(), 3 * static_cast<std::size_t>(n) - h - 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayRandom, ::testing::Range(1, 26));

TEST(Delaunay, ClusteredPointsStressFilter) {
  // Tight clusters + far satellites stress the incircle filter.
  glr::sim::Rng rng{13};
  std::vector<Point2> pts;
  for (int c = 0; c < 5; ++c) {
    const Point2 center{rng.uniform(0, 1e6), rng.uniform(0, 1e6)};
    for (int i = 0; i < 12; ++i) {
      pts.push_back(
          {center.x + rng.uniform(-1e-3, 1e-3),
           center.y + rng.uniform(-1e-3, 1e-3)});
    }
  }
  const Delaunay d = Delaunay::build(pts);
  expectEmptyCircumcircles(d, pts);
}

TEST(ConvexHull, KnownSquare) {
  const std::vector<Point2> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}};
  const auto hull = convexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
  const std::set<int> hullSet(hull.begin(), hull.end());
  EXPECT_EQ(hullSet, (std::set<int>{0, 1, 2, 3}));
}

TEST(ConvexHull, CollinearExcluded) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {2, 0}, {2, 2}};
  const auto hull = convexHull(pts);
  EXPECT_EQ(hull.size(), 3u);
  const std::set<int> hullSet(hull.begin(), hull.end());
  EXPECT_EQ(hullSet, (std::set<int>{0, 2, 3}));
}

}  // namespace
