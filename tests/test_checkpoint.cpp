// Tests for the crash-safety layer: whole-scenario checkpoint/restore
// (checkpoint/scenario_checkpoint.*, checkpoint/file.*).
//
// The differentials are the contract: a run snapshotted at t and restored
// into a fresh process must finish bit-identically to the uninterrupted run
// — including with saturation traffic, fault injection, adversarial nodes,
// churn and GLR recovery all live. The error-path tests pin the reader's
// loud-refusal behavior: truncation, corruption, version skew and config
// mismatch must throw, never limp.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "checkpoint/file.hpp"
#include "checkpoint/scenario_checkpoint.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace {

using glr::experiment::bitIdenticalIgnoringWall;
using glr::experiment::Protocol;
using glr::experiment::runScenario;
using glr::experiment::ScenarioConfig;
using glr::experiment::ScenarioResult;

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + name;
}

/// Golden vs snapshot-and-restore differential. Runs `cfg` once writing a
/// mid-run snapshot, then restores that snapshot into a fresh scenario and
/// checks the continued run is bit-identical to the uninterrupted one.
void expectRestoreBitIdentical(ScenarioConfig cfg, const std::string& name) {
  const std::string path = tmpPath(name);
  cfg.checkpointPath = path;
  const ScenarioResult golden = runScenario(cfg);

  ScenarioConfig resumed = cfg;
  resumed.checkpointPath.clear();
  resumed.restoreFrom = path;
  const ScenarioResult tail = runScenario(resumed);
  EXPECT_TRUE(bitIdenticalIgnoringWall(golden, tail))
      << name << ": restored run diverged from the uninterrupted golden "
      << "(delivered " << tail.delivered << " vs " << golden.delivered
      << ", events " << tail.eventsExecuted << " vs "
      << golden.eventsExecuted << ")";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Restore differentials, one per protocol family. checkpointEvery is chosen
// so exactly one snapshot fires past mid-run: the restored run replays a
// long tail with every subsystem still active.
// ---------------------------------------------------------------------------

TEST(Checkpoint, GlrFullStackRestoreBitIdentical) {
  // Everything on at once: saturating ON/OFF traffic, burst loss +
  // corruption + stalls, blackhole/greyhole/selfish/flapping adversaries,
  // churn, TTLs, custody watermark + AIMD congestion control, and the GLR
  // recovery layer the faults keep busy.
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.numNodes = 40;
  cfg.trafficNodes = 36;
  cfg.simTime = 400.0;
  cfg.seed = 11;
  cfg.traffic.model = "onoff";
  cfg.traffic.rate = 12.0;
  cfg.queueLimit = 40;
  cfg.storageLimit = 60;
  cfg.custodyWatermark = 45;
  cfg.congestionControl = true;
  cfg.messageTtl = 120.0;
  cfg.churn.enabled = true;
  cfg.churn.params.fraction = 0.3;
  cfg.churn.params.upMean = 120.0;
  cfg.churn.params.downMean = 20.0;
  cfg.churn.params.start = 30.0;
  cfg.faults.enabled = true;
  cfg.faults.params.start = 40.0;
  cfg.faults.params.burstRate = 0.05;
  cfg.faults.params.burstMean = 3.0;
  cfg.faults.params.lossProb = 0.5;
  cfg.faults.params.corruptProb = 0.01;
  cfg.faults.params.stallRate = 0.02;
  cfg.faults.params.stallMean = 5.0;
  cfg.faults.params.adversary.blackholeFraction = 0.08;
  cfg.faults.params.adversary.greyholeFraction = 0.08;
  cfg.faults.params.adversary.greyholeDropProb = 0.6;
  cfg.faults.params.adversary.selfishFraction = 0.08;
  cfg.faults.params.adversary.flappingFraction = 0.08;
  cfg.glrRecovery = true;
  cfg.checkpointEvery = 250.0;  // one snapshot at t=250, 150 s tail
  expectRestoreBitIdentical(cfg, "ckpt_glr_fullstack.bin");
}

TEST(Checkpoint, GlrPaperWorkloadRestoreBitIdentical) {
  // The paper's fixed schedule: the snapshot carries every not-yet-fired
  // origination as a pending event (no traffic process to restore).
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.simTime = 400.0;
  cfg.numMessages = 200;
  cfg.seed = 7;
  cfg.checkpointEvery = 250.0;
  expectRestoreBitIdentical(cfg, "ckpt_glr_paper.bin");
}

TEST(Checkpoint, EpidemicRestoreBitIdentical) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kEpidemic;
  cfg.numNodes = 30;
  cfg.trafficNodes = 25;
  cfg.simTime = 300.0;
  cfg.seed = 5;
  cfg.traffic.model = "poisson";
  cfg.traffic.rate = 6.0;
  cfg.storageLimit = 80;
  cfg.messageTtl = 90.0;
  cfg.faults.enabled = true;
  cfg.faults.params.start = 30.0;
  cfg.faults.params.burstRate = 0.05;
  cfg.faults.params.lossProb = 0.4;
  cfg.checkpointEvery = 180.0;  // one snapshot at t=180, 120 s tail
  expectRestoreBitIdentical(cfg, "ckpt_epidemic.bin");
}

TEST(Checkpoint, SprayAndWaitRestoreBitIdentical) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kSprayAndWait;
  cfg.numNodes = 30;
  cfg.trafficNodes = 25;
  cfg.simTime = 300.0;
  cfg.seed = 9;
  cfg.sprayBudget = 6;
  cfg.traffic.model = "hotspot";
  cfg.traffic.rate = 5.0;
  cfg.messageTtl = 80.0;
  cfg.checkpointEvery = 180.0;
  expectRestoreBitIdentical(cfg, "ckpt_spray.bin");
}

TEST(Checkpoint, DirectDeliveryRestoreBitIdentical) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kDirectDelivery;
  cfg.numNodes = 25;
  cfg.trafficNodes = 20;
  cfg.simTime = 300.0;
  cfg.seed = 3;
  cfg.traffic.model = "flashcrowd";
  cfg.traffic.rate = 4.0;
  cfg.checkpointEvery = 180.0;
  expectRestoreBitIdentical(cfg, "ckpt_direct.bin");
}

TEST(Checkpoint, CalendarQueueRestoreBitIdentical) {
  // The snapshot stores (timeBits, seq) keys, so restore must be mode-
  // agnostic; pin the calendar kernel explicitly.
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.simTime = 300.0;
  cfg.numMessages = 150;
  cfg.seed = 13;
  cfg.kernelQueue = glr::experiment::KernelQueue::kCalendar;
  cfg.checkpointEvery = 180.0;
  expectRestoreBitIdentical(cfg, "ckpt_calendar.bin");
}

// ---------------------------------------------------------------------------
// Error paths: the reader refuses loudly, never limps.
// ---------------------------------------------------------------------------

/// Small scenario that leaves a valid snapshot at `path`.
ScenarioConfig snapshotScenario(const std::string& path) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kGlr;
  cfg.numNodes = 20;
  cfg.trafficNodes = 16;
  cfg.simTime = 120.0;
  cfg.numMessages = 40;
  cfg.seed = 21;
  cfg.checkpointEvery = 80.0;
  cfg.checkpointPath = path;
  return cfg;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(Checkpoint, TruncatedFileRefused) {
  const std::string path = tmpPath("ckpt_truncated.bin");
  ScenarioConfig cfg = snapshotScenario(path);
  (void)runScenario(cfg);

  std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() / 2);
  spit(path, bytes);

  ScenarioConfig resumed = cfg;
  resumed.checkpointPath.clear();
  resumed.restoreFrom = path;
  EXPECT_THROW((void)runScenario(resumed), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptByteRefused) {
  const std::string path = tmpPath("ckpt_corrupt.bin");
  ScenarioConfig cfg = snapshotScenario(path);
  (void)runScenario(cfg);

  std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 128u);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit -> checksum fails
  spit(path, bytes);

  ScenarioConfig resumed = cfg;
  resumed.checkpointPath.clear();
  resumed.restoreFrom = path;
  EXPECT_THROW((void)runScenario(resumed), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, VersionMismatchRefused) {
  const std::string path = tmpPath("ckpt_version.bin");
  ScenarioConfig cfg = snapshotScenario(path);
  (void)runScenario(cfg);

  // Bump the version field (offset 4, u16 LE) and re-seal the checksum so
  // the version check itself — not the integrity check — is what fires.
  std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[4] = static_cast<char>(glr::ckpt::kCheckpointVersion + 1);
  const std::uint64_t sum =
      glr::ckpt::fnv1a64(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  spit(path, bytes);

  ScenarioConfig resumed = cfg;
  resumed.checkpointPath.clear();
  resumed.restoreFrom = path;
  try {
    runScenario(resumed);
    FAIL() << "version mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, DifferentConfigRefused) {
  const std::string path = tmpPath("ckpt_digest.bin");
  ScenarioConfig cfg = snapshotScenario(path);
  (void)runScenario(cfg);

  ScenarioConfig other = cfg;
  other.checkpointPath.clear();
  other.restoreFrom = path;
  other.seed = cfg.seed + 1;  // any digested field: refuse
  try {
    runScenario(other);
    FAIL() << "config digest mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("different configuration"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoreWithTracingArmedRefused) {
  const std::string path = tmpPath("ckpt_traced.bin");
  ScenarioConfig cfg = snapshotScenario(path);
  (void)runScenario(cfg);

  ScenarioConfig resumed = cfg;
  resumed.checkpointPath.clear();
  resumed.restoreFrom = path;
  resumed.tracePath = tmpPath("ckpt_traced.trace");
  EXPECT_THROW((void)runScenario(resumed), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, CheckpointPathWithoutPeriodRefused) {
  ScenarioConfig cfg;
  cfg.checkpointPath = tmpPath("ckpt_noperiod.bin");
  cfg.checkpointEvery = 0.0;
  EXPECT_THROW((void)runScenario(cfg), std::invalid_argument);
}

TEST(Checkpoint, MissingFileRefused) {
  ScenarioConfig cfg;
  cfg.simTime = 60.0;
  cfg.numMessages = 10;
  cfg.checkpointEvery = 40.0;
  cfg.restoreFrom = tmpPath("ckpt_does_not_exist.bin");
  EXPECT_THROW((void)runScenario(cfg), std::runtime_error);
}

}  // namespace
