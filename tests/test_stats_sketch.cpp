// Property tests for the online statistics layer (stats/sketch.hpp): the
// t-digest-style quantile sketch and the streaming moment accumulator that
// replaced MetricsCollector's stored per-message latency state.
//
// The sketch's contract has three parts, each pinned here:
//  1. Accuracy: quantile estimates stay within a tight *rank* error of the
//     exact sorted order statistics across adversarial distributions
//     (uniform, bimodal, heavy-tail, constant, n < 5) — rank error is the
//     right metric for a t-digest, whose value error on a flat region can
//     be arbitrary while the rank stays exact.
//  2. Merge: merging partial sketches is associative up to a pinned rank-
//     error bound, and merge(A, B) sees every sample of both.
//  3. Determinism: results are a pure function of the add() sequence, so
//     scenario latency quantiles are bit-identical across sweep thread
//     counts (the PR-3 contract, checked end-to-end through SweepRunner —
//     bitIdenticalIgnoringWall now covers the latency sketch fields).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "sim/rng.hpp"
#include "stats/sketch.hpp"

namespace {

using glr::stats::Moments;
using glr::stats::QuantileSketch;

// Exact quantile with the midpoint-interpolation convention the sketch
// uses: sample i (sorted) sits at cumulative rank i + 0.5 of n, linear in
// between, clamped to min/max at the ends.
double exactQuantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  const double target = q * n;
  if (target <= 0.5) return v.front();
  if (target >= n - 0.5) return v.back();
  const auto lo = static_cast<std::size_t>(target - 0.5);
  const double frac = (target - 0.5) - static_cast<double>(lo);
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

// Fraction of samples <= x: the empirical CDF used for rank-error checks.
double empiricalRank(const std::vector<double>& sorted, double x) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

constexpr double kProbes[] = {0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99};

// Rank error of every probe quantile against the exact empirical CDF. The
// bound (1.5%) is far looser than t-digest theory promises at compression
// 200 (~0.1% at the median, tighter at the tails) but tight enough to catch
// a broken scale function or a mis-weighted merge instantly.
void expectAccurate(const QuantileSketch& sketch, std::vector<double> samples,
                    const char* label) {
  std::sort(samples.begin(), samples.end());
  for (const double q : kProbes) {
    const double est = sketch.quantile(q);
    const double rank = empiricalRank(samples, est);
    EXPECT_NEAR(rank, q, 0.015)
        << label << ": quantile(" << q << ") = " << est
        << " has empirical rank " << rank;
    EXPECT_GE(est, samples.front()) << label;
    EXPECT_LE(est, samples.back()) << label;
  }
}

std::vector<double> uniformSamples(std::size_t n, std::uint64_t seed) {
  glr::sim::Rng rng{seed};
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.uniform(0.0, 100.0));
  return v;
}

std::vector<double> bimodalSamples(std::size_t n, std::uint64_t seed) {
  glr::sim::Rng rng{seed};
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Two well-separated modes, 70/30 — the shape that breaks naive
    // histogram-bucket estimators.
    v.push_back(rng.uniform01() < 0.7 ? rng.uniform(1.0, 2.0)
                                      : rng.uniform(1000.0, 1001.0));
  }
  return v;
}

std::vector<double> heavyTailSamples(std::size_t n, std::uint64_t seed) {
  glr::sim::Rng rng{seed};
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Pareto(alpha = 1.2): infinite variance, the tail that matters for
    // p99 latency estimation.
    const double u = std::max(rng.uniform01(), 1e-12);
    v.push_back(std::pow(u, -1.0 / 1.2));
  }
  return v;
}

QuantileSketch sketchOf(const std::vector<double>& samples) {
  QuantileSketch s;
  for (const double x : samples) s.add(x);
  return s;
}

// ---------------------------------------------------------------------------
// Accuracy across adversarial distributions.
// ---------------------------------------------------------------------------

TEST(QuantileSketchAccuracy, Uniform) {
  const auto samples = uniformSamples(100000, 42);
  expectAccurate(sketchOf(samples), samples, "uniform");
}

TEST(QuantileSketchAccuracy, Bimodal) {
  const auto samples = bimodalSamples(100000, 43);
  expectAccurate(sketchOf(samples), samples, "bimodal");
}

TEST(QuantileSketchAccuracy, HeavyTail) {
  const auto samples = heavyTailSamples(100000, 44);
  expectAccurate(sketchOf(samples), samples, "heavy-tail");
}

TEST(QuantileSketchAccuracy, ConstantIsExact) {
  QuantileSketch s;
  for (int i = 0; i < 50000; ++i) s.add(7.25);
  for (const double q : kProbes) EXPECT_EQ(s.quantile(q), 7.25);
  EXPECT_EQ(s.min(), 7.25);
  EXPECT_EQ(s.max(), 7.25);
}

TEST(QuantileSketchAccuracy, TinyInputsAreExact) {
  // n < 5: every sample is its own centroid, so the sketch must reproduce
  // exact order-statistic interpolation (midpoint convention).
  const std::vector<std::vector<double>> corpora = {
      {3.0},
      {3.0, 1.0},
      {10.0, -5.0, 2.5},
      {4.0, 4.0, 1.0, 9.0},
  };
  for (const auto& values : corpora) {
    const QuantileSketch s = sketchOf(values);
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      EXPECT_DOUBLE_EQ(s.quantile(q), exactQuantile(values, q))
          << "n=" << values.size() << " q=" << q;
    }
  }
}

TEST(QuantileSketchAccuracy, EmptySketchReturnsZero) {
  const QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(QuantileSketchAccuracy, MemoryStaysBounded) {
  // The whole point: centroid count is bounded by compression, not n.
  QuantileSketch s;
  std::vector<double> samples;
  samples.reserve(1000000);
  glr::sim::Rng rng{7};
  for (int i = 0; i < 1000000; ++i) {
    const double x = rng.uniform(0.0, 1e6);
    samples.push_back(x);
    s.add(x);
  }
  EXPECT_EQ(s.count(), 1000000u);
  EXPECT_LE(s.centroidCount(), s.maxCentroids());
  expectAccurate(s, samples, "1M uniform");
}

// ---------------------------------------------------------------------------
// Merge laws.
// ---------------------------------------------------------------------------

TEST(QuantileSketchMerge, SeesEverySample) {
  const auto a = uniformSamples(30000, 1);
  const auto b = heavyTailSamples(30000, 2);
  QuantileSketch sa = sketchOf(a);
  const QuantileSketch sb = sketchOf(b);
  sa.merge(sb);
  EXPECT_EQ(sa.count(), 60000u);
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  expectAccurate(sa, all, "merged");
}

TEST(QuantileSketchMerge, AssociativeUpToRankError) {
  // (A + B) + C vs A + (B + C): both orders must land within the pinned
  // rank-error bound of the pooled exact quantiles — floating-point merge
  // order may differ, statistical content may not.
  const auto a = uniformSamples(20000, 11);
  const auto b = bimodalSamples(20000, 12);
  const auto c = heavyTailSamples(20000, 13);

  QuantileSketch left = sketchOf(a);
  left.merge(sketchOf(b));
  left.merge(sketchOf(c));

  QuantileSketch bc = sketchOf(b);
  bc.merge(sketchOf(c));
  QuantileSketch right = sketchOf(a);
  right.merge(bc);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  expectAccurate(left, all, "(a+b)+c");
  expectAccurate(right, all, "a+(b+c)");
  std::sort(all.begin(), all.end());
  for (const double q : kProbes) {
    EXPECT_NEAR(empiricalRank(all, left.quantile(q)),
                empiricalRank(all, right.quantile(q)), 0.02)
        << "associativity drift at q=" << q;
  }
}

TEST(QuantileSketchMerge, DeterministicGivenSameSequence) {
  // Two sketches fed the identical sequence answer identically, bit for
  // bit — the property the sweep determinism contract rides on.
  const auto samples = heavyTailSamples(50000, 99);
  const QuantileSketch s1 = sketchOf(samples);
  const QuantileSketch s2 = sketchOf(samples);
  for (const double q : kProbes) EXPECT_EQ(s1.quantile(q), s2.quantile(q));
}

// ---------------------------------------------------------------------------
// Streaming moments.
// ---------------------------------------------------------------------------

TEST(MomentsLaws, MatchesTwoPassReference) {
  const auto samples = bimodalSamples(20000, 5);
  Moments m;
  for (const double x : samples) m.add(x);

  double mean = 0.0;
  for (const double x : samples) mean += x;
  mean /= static_cast<double>(samples.size());
  double m2 = 0.0;
  for (const double x : samples) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(samples.size() - 1);

  EXPECT_EQ(m.count(), samples.size());
  EXPECT_NEAR(m.mean(), mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(m.variance(), var, 1e-9 * var);
  EXPECT_EQ(m.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(m.max(), *std::max_element(samples.begin(), samples.end()));
  // Bimodal 70/30 with the high mode far right: strong positive skew.
  EXPECT_GT(m.skewness(), 0.5);
}

TEST(MomentsLaws, MergeEqualsSequential) {
  const auto a = uniformSamples(10000, 21);
  const auto b = heavyTailSamples(10000, 22);
  Moments whole;
  for (const double x : a) whole.add(x);
  for (const double x : b) whole.add(x);

  Moments ma;
  for (const double x : a) ma.add(x);
  Moments mb;
  for (const double x : b) mb.add(x);
  ma.merge(mb);

  EXPECT_EQ(ma.count(), whole.count());
  EXPECT_NEAR(ma.mean(), whole.mean(), 1e-9 * std::abs(whole.mean()));
  EXPECT_NEAR(ma.variance(), whole.variance(), 1e-6 * whole.variance());
  EXPECT_EQ(ma.min(), whole.min());
  EXPECT_EQ(ma.max(), whole.max());
}

TEST(MomentsLaws, DegenerateInputs) {
  Moments empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.variance(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);
  EXPECT_EQ(empty.skewness(), 0.0);
  EXPECT_EQ(empty.kurtosisExcess(), 0.0);

  Moments one;
  one.add(3.0);
  EXPECT_EQ(one.mean(), 3.0);
  EXPECT_EQ(one.variance(), 0.0);

  Moments constant;
  for (int i = 0; i < 100; ++i) constant.add(5.0);
  EXPECT_EQ(constant.mean(), 5.0);
  EXPECT_EQ(constant.variance(), 0.0);
  EXPECT_EQ(constant.skewness(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: scenario latency quantiles across thread counts.
// ---------------------------------------------------------------------------

TEST(SketchSweepDeterminism, LatencyQuantilesBitIdenticalAcrossThreadCounts) {
  using glr::experiment::ScenarioConfig;
  using glr::experiment::ScenarioResult;
  using glr::experiment::SweepRunner;

  ScenarioConfig cfg;
  cfg.simTime = 120.0;
  cfg.numMessages = 60;
  cfg.radius = 100.0;
  cfg.numNodes = 30;
  cfg.trafficNodes = 25;
  cfg.seed = 7;

  SweepRunner::Options serialOpts;
  serialOpts.threads = 1;
  SweepRunner serial{serialOpts};
  const std::vector<ScenarioResult> base = serial.run({cfg}, 3).front();

  SweepRunner::Options poolOpts;
  poolOpts.threads = 3;
  SweepRunner pool{poolOpts};
  const std::vector<ScenarioResult> parallel = pool.run({cfg}, 3).front();

  ASSERT_EQ(parallel.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    // bitIdenticalIgnoringWall covers latencyP50/P90/P99/min/max/stddev
    // since the sketch landed in ScenarioResult; spell the key ones out
    // anyway so a comparator regression cannot mask a sketch one.
    EXPECT_EQ(base[i].latencyP50, parallel[i].latencyP50) << i;
    EXPECT_EQ(base[i].latencyP99, parallel[i].latencyP99) << i;
    EXPECT_EQ(base[i].latencyStddev, parallel[i].latencyStddev) << i;
    EXPECT_TRUE(glr::experiment::bitIdenticalIgnoringWall(base[i],
                                                          parallel[i]))
        << "replicate " << i << " diverged across thread counts";
  }
  // A delivered run actually exercises the sketch.
  ASSERT_GT(base.front().delivered, 0u);
  EXPECT_GT(base.front().latencyP99, 0.0);
  EXPECT_GE(base.front().latencyP99, base.front().latencyP50);
  EXPECT_GE(base.front().latencyMax, base.front().latencyP99);
  EXPECT_GE(base.front().latencyP50, base.front().latencyMin);
}

}  // namespace
