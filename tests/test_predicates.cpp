// Tests for exact geometric predicates and the expansion arithmetic that
// backs their slow path. Degenerate/adversarial cases matter most here: the
// Delaunay construction's termination depends on exact signs.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/expansion.hpp"
#include "geometry/point.hpp"
#include "geometry/predicates.hpp"
#include "sim/rng.hpp"

namespace {

using glr::geom::incircle;
using glr::geom::onSegment;
using glr::geom::orient2d;
using glr::geom::Point2;
using glr::geom::segmentsCrossProperly;
using glr::geom::segmentsIntersect;
namespace detail = glr::geom::detail;

TEST(Expansion, TwoSumExact) {
  double hi, lo;
  detail::twoSum(1e16, 1.0, hi, lo);
  // 1e16 + 1 is not representable; hi+lo must reproduce it exactly.
  EXPECT_EQ(hi, 1e16);
  EXPECT_EQ(lo, 1.0);
}

TEST(Expansion, TwoProductExact) {
  double hi, lo;
  const double a = 1.0 + 0x1.0p-30;
  const double b = 1.0 - 0x1.0p-30;
  detail::twoProduct(a, b, hi, lo);
  // a*b = 1 - 2^-60 exactly; check hi+lo reconstructs it.
  EXPECT_EQ(hi, 1.0);
  EXPECT_EQ(lo, -0x1.0p-60);
}

TEST(Expansion, SumAndSign) {
  auto e = detail::exactProduct(1e20, 1.0);
  e = detail::growExpansion(e, -1e20);
  e = detail::growExpansion(e, 1.0);
  EXPECT_EQ(detail::expansionSign(e), 1);
  EXPECT_DOUBLE_EQ(detail::expansionEstimate(e), 1.0);

  auto z = detail::exactDiff(5.0, 5.0);
  EXPECT_EQ(detail::expansionSign(z), 0);
}

TEST(Expansion, ProductDistributes) {
  // (1e17 + 3) * (1e17 - 3) = 1e34 - 9 exactly.
  auto a = detail::growExpansion(detail::Expansion{}, 3.0);
  a = detail::growExpansion(a, 1e17);
  auto b = detail::growExpansion(detail::Expansion{}, -3.0);
  b = detail::growExpansion(b, 1e17);
  auto prod = detail::expansionProduct(a, b);
  auto expect = detail::exactProduct(1e17, 1e17);
  expect = detail::growExpansion(expect, -9.0);
  const auto diff = detail::expansionDiff(prod, expect);
  EXPECT_EQ(detail::expansionSign(diff), 0);
}

TEST(Orient2d, BasicSigns) {
  const Point2 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(orient2d(a, b, c), 0.0);  // CCW
  EXPECT_LT(orient2d(a, c, b), 0.0);  // CW
  EXPECT_EQ(orient2d(a, b, Point2{2, 0}), 0.0);  // collinear
}

TEST(Orient2d, ExactOnNearlyCollinear) {
  // Classic filter-breaking configuration: points almost on a line, with
  // perturbations far below the naive double-precision noise floor.
  const Point2 a{0.5, 0.5};
  const Point2 b{12.0, 12.0};
  for (int i = -2; i <= 2; ++i) {
    // ulp(24) = 2^-48: the perturbation must be representable in c.y.
    const double eps = static_cast<double>(i) * 0x1.0p-44;
    const Point2 c{24.0, 24.0 + eps};
    const double s = orient2d(a, b, c);
    if (i > 0) {
      EXPECT_GT(s, 0.0) << "i=" << i;
    } else if (i < 0) {
      EXPECT_LT(s, 0.0) << "i=" << i;
    } else {
      EXPECT_EQ(s, 0.0);
    }
  }
}

TEST(Orient2d, AntiSymmetry) {
  glr::sim::Rng rng{42};
  for (int iter = 0; iter < 2000; ++iter) {
    const Point2 a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point2 b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point2 c{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const double s1 = orient2d(a, b, c);
    const double s2 = orient2d(b, a, c);
    EXPECT_EQ(s1 > 0, s2 < 0);
    EXPECT_EQ(s1 == 0, s2 == 0);
    // Cyclic permutation preserves the sign.
    const double s3 = orient2d(b, c, a);
    EXPECT_EQ(s1 > 0, s3 > 0);
    EXPECT_EQ(s1 < 0, s3 < 0);
  }
}

TEST(Incircle, BasicInsideOutside) {
  // Unit circle through (1,0), (0,1), (-1,0).
  const Point2 a{1, 0}, b{0, 1}, c{-1, 0};
  ASSERT_GT(orient2d(a, b, c), 0.0);
  EXPECT_GT(incircle(a, b, c, Point2{0, 0}), 0.0);       // center: inside
  EXPECT_LT(incircle(a, b, c, Point2{2, 2}), 0.0);       // far: outside
  EXPECT_EQ(incircle(a, b, c, Point2{0, -1}), 0.0);      // on circle
}

TEST(Incircle, ExactOnCocircular) {
  // Four points of an axis-aligned square are exactly cocircular.
  const Point2 a{0, 0}, b{2, 0}, c{2, 2}, d{0, 2};
  EXPECT_EQ(incircle(a, b, c, d), 0.0);
  // Nudge the query point by one ulp each way: the sign must track it.
  EXPECT_GT(incircle(a, b, c, Point2{0 + 0x1.0p-50, 2 - 0x1.0p-50}), 0.0);
  EXPECT_LT(incircle(a, b, c, Point2{0 - 0x1.0p-50, 2 + 0x1.0p-50}), 0.0);
}

TEST(Incircle, OrientationFlipsSign) {
  const Point2 a{1, 0}, b{0, 1}, c{-1, 0}, q{0, 0.5};
  const double ccw = incircle(a, b, c, q);
  const double cw = incircle(a, c, b, q);
  EXPECT_GT(ccw, 0.0);
  EXPECT_LT(cw, 0.0);
}

TEST(Incircle, SymmetricUnderCyclicPermutation) {
  glr::sim::Rng rng{43};
  for (int iter = 0; iter < 1000; ++iter) {
    const Point2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Point2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Point2 c{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Point2 d{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double s1 = incircle(a, b, c, d);
    const double s2 = incircle(b, c, a, d);
    EXPECT_EQ(s1 > 0, s2 > 0);
    EXPECT_EQ(s1 < 0, s2 < 0);
  }
}

TEST(Segments, ProperCrossing) {
  EXPECT_TRUE(segmentsCrossProperly({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segmentsCrossProperly({0, 0}, {1, 1}, {2, 2}, {3, 3}));
}

TEST(Segments, SharedEndpointIsNotProper) {
  EXPECT_FALSE(segmentsCrossProperly({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_TRUE(segmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Segments, TTouchIsProper) {
  // Endpoint of one segment interior to the other: violates planarity.
  EXPECT_TRUE(segmentsCrossProperly({0, 0}, {2, 0}, {1, 0}, {1, 1}));
}

TEST(Segments, CollinearOverlap) {
  EXPECT_TRUE(segmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_TRUE(segmentsCrossProperly({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Disjoint collinear segments do not intersect.
  EXPECT_FALSE(segmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Segments, ParallelNonIntersecting) {
  EXPECT_FALSE(segmentsIntersect({0, 0}, {2, 0}, {0, 1}, {2, 1}));
  EXPECT_FALSE(segmentsCrossProperly({0, 0}, {2, 0}, {0, 1}, {2, 1}));
}

TEST(OnSegment, EndpointsAndInterior) {
  EXPECT_TRUE(onSegment({0, 0}, {2, 2}, {1, 1}));
  EXPECT_TRUE(onSegment({0, 0}, {2, 2}, {0, 0}));
  EXPECT_TRUE(onSegment({0, 0}, {2, 2}, {2, 2}));
  EXPECT_FALSE(onSegment({0, 0}, {2, 2}, {3, 3}));
  EXPECT_FALSE(onSegment({0, 0}, {2, 2}, {1, 1.0000001}));
}

// Property sweep: the filtered predicate must agree with a brute-force
// exact evaluation on a grid of small-integer coordinates (where doubles
// are exact and the naive formula is reliable).
TEST(PredicateProperty, AgreesWithNaiveOnExactGrid) {
  for (int ax = -3; ax <= 3; ++ax)
    for (int ay = -3; ay <= 3; ++ay)
      for (int bx = -3; bx <= 3; bx += 2)
        for (int by = -3; by <= 3; by += 2)
          for (int cx = -3; cx <= 3; cx += 3)
            for (int cy = -3; cy <= 3; cy += 3) {
              const Point2 a{static_cast<double>(ax), static_cast<double>(ay)};
              const Point2 b{static_cast<double>(bx), static_cast<double>(by)};
              const Point2 c{static_cast<double>(cx), static_cast<double>(cy)};
              const long long naive =
                  static_cast<long long>(ax - cx) * (by - cy) -
                  static_cast<long long>(ay - cy) * (bx - cx);
              const double got = orient2d(a, b, c);
              EXPECT_EQ(naive > 0, got > 0);
              EXPECT_EQ(naive < 0, got < 0);
              EXPECT_EQ(naive == 0, got == 0);
            }
}

}  // namespace
