// Tests for the graph module: adjacency bookkeeping, BFS/Dijkstra,
// components, planarity checking and stretch factors.

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph.hpp"
#include "geometry/point.hpp"

namespace {

using glr::geom::Point2;
using glr::graph::bfsHops;
using glr::graph::componentCount;
using glr::graph::connectedComponents;
using glr::graph::dijkstra;
using glr::graph::DisjointSet;
using glr::graph::Graph;
using glr::graph::isConnected;
using glr::graph::isPlanarEmbedding;
using glr::graph::kInfDist;
using glr::graph::stretchFactor;

TEST(Graph, AddEdgeBasics) {
  Graph g{4};
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, DuplicateAndSelfLoopIgnored) {
  Graph g{3};
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  g.addEdge(0, 0);
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, OutOfRangeThrows) {
  Graph g{2};
  EXPECT_THROW(g.addEdge(0, 2), std::out_of_range);
  EXPECT_THROW(g.addEdge(-1, 0), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(5), std::out_of_range);
}

TEST(Graph, EdgesListIsCanonical) {
  Graph g{4};
  g.addEdge(2, 0);
  g.addEdge(3, 1);
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  for (const auto& [u, v] : es) EXPECT_LT(u, v);
}

TEST(BfsHops, PathGraph) {
  Graph g{5};
  for (int i = 0; i < 4; ++i) g.addEdge(i, i + 1);
  const auto h = bfsHops(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(h[i], i);
}

TEST(BfsHops, UnreachableIsMinusOne) {
  Graph g{4};
  g.addEdge(0, 1);
  const auto h = bfsHops(g, 0);
  EXPECT_EQ(h[2], -1);
  EXPECT_EQ(h[3], -1);
}

TEST(Dijkstra, TriangleShortcut) {
  // 0-1-2 path vs direct 0-2 edge: geometry decides.
  Graph g{3};
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  const std::vector<Point2> pos{{0, 0}, {1, 1}, {2, 0}};
  const auto d = dijkstra(g, pos, 0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);  // direct edge wins over 2*sqrt(2)
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(Dijkstra, DisconnectedInfinite) {
  Graph g{3};
  g.addEdge(0, 1);
  const std::vector<Point2> pos{{0, 0}, {1, 0}, {9, 9}};
  const auto d = dijkstra(g, pos, 0);
  EXPECT_EQ(d[2], kInfDist);
}

TEST(Dijkstra, SizeMismatchThrows) {
  Graph g{3};
  const std::vector<Point2> pos{{0, 0}};
  EXPECT_THROW((void)dijkstra(g, pos, 0), std::invalid_argument);
}

TEST(Components, LabelsAndCount) {
  Graph g{6};
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  const auto labels = connectedComponents(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
  EXPECT_EQ(componentCount(g), 3u);
  EXPECT_FALSE(isConnected(g));
  g.addEdge(2, 3);
  g.addEdge(4, 5);
  EXPECT_TRUE(isConnected(g));
}

TEST(Components, EmptyAndSingletonConnected) {
  EXPECT_TRUE(isConnected(Graph{0}));
  EXPECT_TRUE(isConnected(Graph{1}));
}

TEST(Planarity, CrossingDetected) {
  Graph g{4};
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const std::vector<Point2> cross{{0, 0}, {2, 2}, {0, 2}, {2, 0}};
  EXPECT_FALSE(isPlanarEmbedding(g, cross));
  const std::vector<Point2> apart{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  EXPECT_TRUE(isPlanarEmbedding(g, apart));
}

TEST(Planarity, SharedEndpointAllowed) {
  Graph g{3};
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const std::vector<Point2> pos{{0, 0}, {1, 1}, {2, 0}};
  EXPECT_TRUE(isPlanarEmbedding(g, pos));
}

TEST(Stretch, CompleteGraphIsOne) {
  Graph g{3};
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  const std::vector<Point2> pos{{0, 0}, {1, 0}, {0.5, 1}};
  EXPECT_DOUBLE_EQ(stretchFactor(g, pos), 1.0);
}

TEST(Stretch, DetourMeasured) {
  // 0 and 2 connected only via 1, which sits off the line.
  Graph g{3};
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const std::vector<Point2> pos{{0, 0}, {1, 1}, {2, 0}};
  EXPECT_DOUBLE_EQ(stretchFactor(g, pos), std::sqrt(2.0));
}

TEST(DisjointSet, UniteAndFind) {
  DisjointSet ds{5};
  EXPECT_EQ(ds.setCount(), 5u);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_TRUE(ds.unite(2, 3));
  EXPECT_FALSE(ds.unite(1, 0));
  EXPECT_EQ(ds.setCount(), 3u);
  EXPECT_EQ(ds.find(0), ds.find(1));
  EXPECT_NE(ds.find(0), ds.find(2));
  EXPECT_TRUE(ds.unite(1, 3));
  EXPECT_EQ(ds.find(0), ds.find(2));
  EXPECT_EQ(ds.setCount(), 2u);
}

}  // namespace
