// Cross-module property and fuzz tests: randomized operation sequences
// checked against brute-force models, and system-level invariants that must
// hold for any seed. These are the "no seed can break this" guarantees the
// protocol's correctness arguments lean on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "dtn/buffer.hpp"
#include "core/trees.hpp"
#include "experiment/scenario.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/predicates.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "spanner/ldtg.hpp"
#include "spanner/udg.hpp"

namespace {

using glr::dtn::CopyKey;
using glr::dtn::Message;
using glr::dtn::MessageBuffer;
using glr::dtn::TreeFlag;
using glr::geom::Point2;
using glr::sim::Rng;

// ---------------------------------------------------------------------------
// MessageBuffer fuzz: random add/move/ack/timeout/erase sequences vs a
// brute-force model of the two areas; sizes, membership and capacity
// invariants must agree at every step.
// ---------------------------------------------------------------------------

class BufferFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BufferFuzz, MatchesBruteForceModel) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919};
  const std::size_t capacity = 1 + rng.below(12);
  MessageBuffer buf{capacity};

  // Model: ordered lists of keys (FIFO).
  std::vector<CopyKey> store, cache;
  const auto makeKey = [&rng]() -> CopyKey {
    return {{static_cast<int>(rng.below(3)), static_cast<int>(rng.below(8))},
            static_cast<TreeFlag>(rng.below(4))};
  };
  const auto modelContains = [&](const CopyKey& k) {
    return std::find(store.begin(), store.end(), k) != store.end() ||
           std::find(cache.begin(), cache.end(), k) != cache.end();
  };
  const auto modelEvict = [&]() {
    if (!cache.empty()) {
      cache.erase(cache.begin());
    } else if (!store.empty()) {
      store.erase(store.begin());
    }
  };

  for (int step = 0; step < 400; ++step) {
    const auto op = rng.below(5);
    const CopyKey k = makeKey();
    switch (op) {
      case 0: {  // addToStore
        Message m;
        m.id = k.id;
        m.flag = k.flag;
        const bool expect = !modelContains(k) && capacity > 0;
        if (expect) {
          while (store.size() + cache.size() >= capacity) modelEvict();
          store.push_back(k);
        }
        EXPECT_EQ(buf.addToStore(m), expect) << "step " << step;
        break;
      }
      case 1: {  // moveToCache
        const auto it = std::find(store.begin(), store.end(), k);
        const bool expect = it != store.end();
        if (expect) {
          store.erase(it);
          cache.push_back(k);
        }
        EXPECT_EQ(buf.moveToCache(k, 1, static_cast<double>(step)), expect);
        break;
      }
      case 2: {  // removeFromCache (custody ack)
        const auto it = std::find(cache.begin(), cache.end(), k);
        const bool expect = it != cache.end();
        if (expect) cache.erase(it);
        EXPECT_EQ(buf.removeFromCache(k).has_value(), expect);
        break;
      }
      case 3: {  // returnToStore (timeout)
        const auto it = std::find(cache.begin(), cache.end(), k);
        const bool expect = it != cache.end();
        if (expect) {
          cache.erase(it);
          store.push_back(k);
        }
        EXPECT_EQ(buf.returnToStore(k), expect);
        break;
      }
      case 4: {  // erase
        const bool expect = modelContains(k);
        auto it = std::find(store.begin(), store.end(), k);
        if (it != store.end()) {
          store.erase(it);
        } else {
          it = std::find(cache.begin(), cache.end(), k);
          if (it != cache.end()) cache.erase(it);
        }
        EXPECT_EQ(buf.erase(k), expect);
        break;
      }
      default:
        break;
    }
    // Invariants after every operation.
    ASSERT_EQ(buf.storeSize(), store.size()) << "step " << step;
    ASSERT_EQ(buf.cacheSize(), cache.size()) << "step " << step;
    ASSERT_LE(buf.size(), capacity);
    for (const CopyKey& key : store) ASSERT_TRUE(buf.inStore(key));
    for (const CopyKey& key : cache) ASSERT_TRUE(buf.inCache(key));
    // FIFO order of the store is preserved.
    ASSERT_EQ(buf.storeKeys(), store);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferFuzz, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Predicate fuzz: orient2d must agree with exact integer arithmetic on
// random integer-coordinate triples, including near-degenerate ones.
// ---------------------------------------------------------------------------

class PredicateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PredicateFuzz, Orient2dMatchesIntegerArithmetic) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 104729};
  for (int iter = 0; iter < 4000; ++iter) {
    // Mix wide-range and clustered coordinates to hit the filter both ways.
    const long long lim = iter % 2 == 0 ? 1000000 : 8;
    const auto coord = [&]() {
      return static_cast<long long>(rng.range(-lim, lim));
    };
    const long long ax = coord(), ay = coord(), bx = coord(), by = coord(),
                    cx = coord(), cy = coord();
    const Point2 a{static_cast<double>(ax), static_cast<double>(ay)};
    const Point2 b{static_cast<double>(bx), static_cast<double>(by)};
    const Point2 c{static_cast<double>(cx), static_cast<double>(cy)};
    // Exact via __int128: coordinates <= 1e6 keep products in range.
    const __int128 det = static_cast<__int128>(ax - cx) * (by - cy) -
                         static_cast<__int128>(ay - cy) * (bx - cx);
    const double got = glr::geom::orient2d(a, b, c);
    ASSERT_EQ(det > 0, got > 0.0) << iter;
    ASSERT_EQ(det < 0, got < 0.0) << iter;
    ASSERT_EQ(det == 0, got == 0.0) << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateFuzz, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Delaunay + LDTG property sweep across densities: the structural
// guarantees GLR relies on, for any seed.
// ---------------------------------------------------------------------------

struct SpannerCase {
  int seed;
  int n;
  double radius;
};

class SpannerSweep : public ::testing::TestWithParam<SpannerCase> {};

TEST_P(SpannerSweep, StructuralInvariants) {
  const auto [seed, n, radius] = GetParam();
  Rng rng{static_cast<std::uint64_t>(seed) * 31337};
  std::vector<Point2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 600)});
  }
  const auto udg = glr::spanner::buildUnitDiskGraph(pts, radius);
  const auto ldtg = glr::spanner::buildLdtg(pts, radius, 2);

  // 1. Subgraph of the UDG.
  for (const auto& [u, v] : ldtg.edges()) {
    ASSERT_TRUE(udg.hasEdge(u, v));
  }
  // 2. Planar straight-line embedding.
  ASSERT_TRUE(glr::graph::isPlanarEmbedding(ldtg, pts));
  // 3. Component-preserving.
  const auto cu = glr::graph::connectedComponents(udg);
  const auto cl = glr::graph::connectedComponents(ldtg);
  for (std::size_t a = 0; a < pts.size(); ++a) {
    for (std::size_t b = a + 1; b < pts.size(); ++b) {
      ASSERT_EQ(cu[a] == cu[b], cl[a] == cl[b]);
    }
  }
  // 4. Delaunay of the local view never contains a UDG-length edge crossing
  //    (implied by planarity; spot-check edge lengths).
  for (const auto& [u, v] : ldtg.edges()) {
    ASSERT_LE(glr::geom::dist(pts[u], pts[v]), radius + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpannerSweep,
    ::testing::Values(SpannerCase{1, 30, 150.0}, SpannerCase{2, 30, 300.0},
                      SpannerCase{3, 60, 120.0}, SpannerCase{4, 60, 250.0},
                      SpannerCase{5, 90, 100.0}, SpannerCase{6, 90, 200.0},
                      SpannerCase{7, 40, 80.0}, SpannerCase{8, 40, 500.0}));

// ---------------------------------------------------------------------------
// Scenario-level invariants for any protocol and seed: conservation-style
// checks the metrics must satisfy.
// ---------------------------------------------------------------------------

struct ScenarioCase {
  glr::experiment::Protocol protocol;
  double radius;
  int seed;
};

class ScenarioInvariants : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioInvariants, HoldForAnySeed) {
  const auto [protocol, radius, seed] = GetParam();
  glr::experiment::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.radius = radius;
  cfg.numMessages = 30;
  cfg.simTime = 200.0;
  cfg.seed = static_cast<std::uint64_t>(seed);
  const auto r = glr::experiment::runScenario(cfg);

  EXPECT_EQ(r.created, 30u);
  EXPECT_LE(r.delivered, r.created);
  EXPECT_GE(r.deliveryRatio, 0.0);
  EXPECT_LE(r.deliveryRatio, 1.0);
  if (r.delivered > 0) {
    EXPECT_GT(r.avgLatency, 0.0);
    EXPECT_LT(r.avgLatency, cfg.simTime);
    EXPECT_GE(r.avgHops, 1.0);
  }
  // Storage peaks: max >= avg >= 0; bounded by messages (x copies).
  EXPECT_GE(r.maxPeakStorage, r.avgPeakStorage);
  EXPECT_LE(r.maxPeakStorage,
            static_cast<double>(cfg.numMessages) * glr::core::kMaxCopies);
  EXPECT_GT(r.eventsExecuted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioInvariants,
    ::testing::Values(
        ScenarioCase{glr::experiment::Protocol::kGlr, 60.0, 11},
        ScenarioCase{glr::experiment::Protocol::kGlr, 150.0, 12},
        ScenarioCase{glr::experiment::Protocol::kGlr, 250.0, 13},
        ScenarioCase{glr::experiment::Protocol::kEpidemic, 60.0, 14},
        ScenarioCase{glr::experiment::Protocol::kEpidemic, 200.0, 15},
        ScenarioCase{glr::experiment::Protocol::kDirectDelivery, 150.0, 16},
        ScenarioCase{glr::experiment::Protocol::kSprayAndWait, 100.0, 17}));

// ---------------------------------------------------------------------------
// Simulator stress: deterministic replay under heavy random scheduling and
// cancellation from within callbacks.
// ---------------------------------------------------------------------------

TEST(SimulatorStress, RandomScheduleCancelReplay) {
  const auto run = [](std::uint64_t seed) {
    glr::sim::Simulator sim;
    Rng rng{seed};
    std::vector<glr::sim::EventHandle> handles;
    std::uint64_t checksum = 0;
    std::function<void(int)> spawn = [&](int depth) {
      checksum = checksum * 1099511628211ULL + sim.eventsExecuted();
      if (depth < 3) {
        for (int i = 0; i < 3; ++i) {
          handles.push_back(sim.schedule(rng.uniform(0.0, 5.0),
                                         [&spawn, depth] { spawn(depth + 1); }));
        }
      }
      if (!handles.empty() && rng.bernoulli(0.3)) {
        handles[rng.below(handles.size())].cancel();
      }
    };
    for (int i = 0; i < 50; ++i) {
      handles.push_back(
          sim.schedule(rng.uniform(0.0, 10.0), [&spawn] { spawn(0); }));
    }
    sim.run(100.0);
    return checksum ^ sim.eventsExecuted();
  };
  EXPECT_EQ(run(99), run(99));  // deterministic replay
  EXPECT_NE(run(99), run(100));
}

}  // namespace
